#!/usr/bin/env bash
# Distributed sweep chaos smoke test (make smoke-dist, CI job dist-smoke):
# build the binary, launch a coordinator plus two worker processes on
# localhost, submit the same short fig8 spec `make smoke` runs — then,
# mid-sweep, kill -9 one worker (its lease must be re-issued via TTL
# expiry), kill -9 the COORDINATOR itself (a replacement over the same
# store dir must replay the job from the store — stored points count as
# cpr_store hits and are never re-leased — while the submit stream and
# the surviving worker reconnect on their own), kill -TERM the other
# worker (the SIGTERM drain path: it must finish its in-flight lease,
# deregister and exit on its own), and join a replacement worker that
# carries the sweep home. The streamed run's final table must still be
# byte-identical to the single-process engine's output.
#
# A second leg exercises the autoscaling supervisor (-supervisor): a
# fresh coordinator, a supervisor that must scale the fleet up from
# nothing for a second sweep, a kill -9'd spawned worker that must be
# replaced, and a SIGSTOPped one that must trip the stuck-lease
# detector (drain, then revocation, then reap). The supervised sweep's
# table must again be byte-identical to the single engine's.
set -eu

GO=${GO:-go}
PORT=${SMOKE_DIST_PORT:-18473}
OBS_PORT=$((PORT + 1))
TOKEN=smoke-dist-token
SPEC_FLAGS="-experiment fig8 -packets 8 -bytes 60 -seed 1 -pool"

TMP=$(mktemp -d)
BIN="$TMP/cprecycle-bench"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== building =="
$GO build -o "$BIN" ./cmd/cprecycle-bench

echo "== starting coordinator + 2 workers on 127.0.0.1:$PORT =="
# Short lease TTL so the kill -9'd worker's lease re-queues within the
# smoke budget instead of the 30s default.
"$BIN" -coordinator "127.0.0.1:$PORT" -store "$TMP/jobs" -token "$TOKEN" \
    -lease-ttl 3s >"$TMP/coord.log" 2>&1 &
COORD=$!
PIDS="$PIDS $COORD"
"$BIN" -worker -join "http://127.0.0.1:$PORT" -token "$TOKEN" >"$TMP/w1.log" 2>&1 &
W1=$!
PIDS="$PIDS $W1"
# Worker 2 also serves its observability side endpoint so the smoke can
# scrape a live worker mid-sweep.
"$BIN" -worker -join "http://127.0.0.1:$PORT" -token "$TOKEN" \
    -obs "127.0.0.1:$OBS_PORT" >"$TMP/w2.log" 2>&1 &
W2=$!
PIDS="$PIDS $W2"

up=0
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
        up=1
        break
    fi
    sleep 0.1
done
if [ "$up" != 1 ]; then
    echo "coordinator never came up" >&2
    cat "$TMP/coord.log" >&2
    exit 1
fi

echo "== submitting distributed job (SSE stream in background) =="
# shellcheck disable=SC2086
"$BIN" -submit -join "http://127.0.0.1:$PORT" -token "$TOKEN" $SPEC_FLAGS \
    >"$TMP/dist.out" 2>"$TMP/submit.log" &
SUBMIT=$!
PIDS="$PIDS $SUBMIT"

dump_logs() {
    cat "$TMP/submit.log" "$TMP/coord.log" "$TMP/coord2.log" "$TMP/w1.log" \
        "$TMP/w2.log" "$TMP/w3.log" 2>/dev/null >&2 || true
}

# wait_points N: block until the SSE consumer has logged >= N completed
# points (or the submit client exits, meaning the sweep settled early).
wait_points() {
    want=$1
    for _ in $(seq 1 600); do
        got=$(grep -c '^point ' "$TMP/submit.log" 2>/dev/null || true)
        [ "${got:-0}" -ge "$want" ] && return 0
        kill -0 "$SUBMIT" 2>/dev/null || return 0
        sleep 0.1
    done
    echo "timed out waiting for $want streamed points" >&2
    dump_logs
    exit 1
}

wait_points 3
echo "== chaos: kill -9 worker 1 (lease abandoned to TTL re-issue) =="
kill -9 "$W1" 2>/dev/null || true

wait_points 6
echo "== scraping /metrics mid-sweep (coordinator + worker 2) =="
# Both scrapes must be valid Prometheus text with real activity: the
# coordinator has granted leases, and worker 2 — the only live worker
# since w1 died — has completed sweep points. promcheck retries absorb
# the scrape-vs-progress race.
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$PORT/metrics" -token "$TOKEN" \
    -retries 50 \
    -require cpr_dist_leases_granted_total \
    -require cpr_dist_fleet_events_total || {
    echo "coordinator /metrics scrape failed" >&2
    dump_logs
    exit 1
}
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$OBS_PORT/metrics" -token "$TOKEN" \
    -retries 50 \
    -require cpr_sweep_points_done_total \
    -require cpr_sweep_packets_total \
    -require cpr_dist_worker_leases_total || {
    echo "worker /metrics scrape failed" >&2
    dump_logs
    exit 1
}
echo "   both expositions parse; lease + point series are live"

echo "== chaos: kill -9 the coordinator mid-sweep (store replay) =="
kill -9 "$COORD" 2>/dev/null || true
"$BIN" -coordinator "127.0.0.1:$PORT" -store "$TMP/jobs" -token "$TOKEN" \
    -lease-ttl 3s >"$TMP/coord2.log" 2>&1 &
COORD2=$!
PIDS="$PIDS $COORD2"
# The replacement coordinator must replay the job from the store index:
# every already-completed point restores as a cpr_store hit instead of
# going back to the fleet. promcheck's retries double as the
# wait-until-restarted loop.
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$PORT/metrics" -token "$TOKEN" \
    -retries 100 \
    -require cpr_store_hits_total || {
    echo "restarted coordinator reported no store hits (points re-leased instead of restored?)" >&2
    dump_logs
    exit 1
}
echo "   coordinator replaced; stored points restored as store hits"

echo "== chaos: kill -TERM worker 2 (graceful drain) =="
kill -TERM "$W2" 2>/dev/null || true

echo "== joining replacement worker =="
"$BIN" -worker -join "http://127.0.0.1:$PORT" -token "$TOKEN" >"$TMP/w3.log" 2>&1 &
W3=$!
PIDS="$PIDS $W3"

# The drained worker must exit on its own once its in-flight lease is
# done and it has deregistered — no second signal, no kill -9.
drained=0
for _ in $(seq 1 600); do
    if ! kill -0 "$W2" 2>/dev/null; then
        drained=1
        break
    fi
    sleep 0.1
done
if [ "$drained" != 1 ]; then
    echo "drained worker never exited" >&2
    dump_logs
    exit 1
fi
if ! grep -q 'draining' "$TMP/w2.log"; then
    echo "drained worker log is missing the SIGTERM drain message:" >&2
    dump_logs
    exit 1
fi
echo "   worker 2 drained and exited cleanly"

if ! wait "$SUBMIT"; then
    echo "distributed submit failed:" >&2
    dump_logs
    exit 1
fi

points=$(grep -c '^point ' "$TMP/submit.log" || true)
echo "   streamed $points point events"
if [ "$points" != 30 ]; then
    echo "expected 30 SSE point events for the fig8 spec, saw $points:" >&2
    cat "$TMP/submit.log" >&2
    exit 1
fi

echo "== fleet registry after the dust settles =="
"$BIN" -fleet -join "http://127.0.0.1:$PORT" -token "$TOKEN" || true

echo "== running the single-process engine reference =="
# shellcheck disable=SC2086
"$BIN" $SPEC_FLAGS | grep -v -e '^\[' -e '^$' >"$TMP/direct.out"

if ! diff -u "$TMP/direct.out" "$TMP/dist.out"; then
    echo "distributed table differs from the single-engine table" >&2
    exit 1
fi

echo "== re-submitting the identical sweep (must complete from the store) =="
# Content addressing makes the re-run lease-free: every point restores
# from the store, and the table must still be byte-identical.
# shellcheck disable=SC2086
if ! "$BIN" -submit -join "http://127.0.0.1:$PORT" -token "$TOKEN" $SPEC_FLAGS \
    >"$TMP/dist2.out" 2>"$TMP/submit2.log"; then
    echo "store-replay submit failed:" >&2
    cat "$TMP/submit2.log" >&2
    dump_logs
    exit 1
fi
if ! diff -u "$TMP/dist.out" "$TMP/dist2.out"; then
    echo "store-replayed table differs from the first run" >&2
    exit 1
fi

echo "== querying the results-history surface =="
hcurl() { curl -sf -H "Authorization: Bearer $TOKEN" "http://127.0.0.1:$PORT$1"; }
# No jq in CI: the fingerprint is a 32-hex token on its own indented
# JSON line, extractable with sed.
FP=$(hcurl "/v1/history/sweeps?experiment=fig8" |
    sed -n 's/.*"fingerprint": "\([0-9a-f]\{32\}\)".*/\1/p' | head -1)
if [ -z "$FP" ]; then
    echo "history index has no recorded fig8 sweep" >&2
    hcurl "/v1/history/sweeps" >&2 || true
    dump_logs
    exit 1
fi
if ! hcurl "/v1/history/sweeps/$FP/table" >"$TMP/hist.out"; then
    echo "history table endpoint failed for $FP" >&2
    dump_logs
    exit 1
fi
if ! diff -u "$TMP/dist.out" "$TMP/hist.out"; then
    echo "history-reassembled table differs from the live run" >&2
    exit 1
fi
if ! hcurl "/v1/history/diff?a=$FP&b=$FP" | grep -q '"equal": true'; then
    echo "self-diff of sweep $FP reported deltas:" >&2
    hcurl "/v1/history/diff?a=$FP&b=$FP" >&2 || true
    exit 1
fi
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$PORT/metrics" -token "$TOKEN" \
    -retries 50 \
    -require cpr_history_runs_recorded_total \
    -require cpr_history_queries_total || {
    echo "history metrics missing from coordinator /metrics" >&2
    dump_logs
    exit 1
}
echo "   history table byte-identical, self-diff clean, cpr_history_* live"

echo "== supervisor leg: fresh coordinator with a fast long-poll bound =="
# Retire the manually-run fleet: the supervisor owns worker lifecycle
# from here. The coordinator restarts with -long-poll 2s so the stuck
# detector's idle bound (stuck-after + long-poll) is smoke-sized, with
# -seed 2 so its pinned waveform-pool identity matches the seed-2
# direct reference below, and with a fresh store so leg-1 manifests do
# not replay under the new pool identity.
kill -9 "$COORD2" "$W3" 2>/dev/null || true
"$BIN" -coordinator "127.0.0.1:$PORT" -store "$TMP/jobs2" -token "$TOKEN" \
    -lease-ttl 3s -long-poll 2s -seed 2 >"$TMP/coord3.log" 2>&1 &
PIDS="$PIDS $!"

SUP_OBS_PORT=$((PORT + 2))
SPEC2_FLAGS="-experiment fig8 -packets 8 -bytes 60 -seed 2 -pool"

dump_sup_logs() {
    dump_logs
    cat "$TMP/sup.log" "$TMP/coord3.log" "$TMP/sup"/*.log 2>/dev/null >&2 || true
}

echo "== starting supervisor (min 1, max 3, stuck-after 4s) =="
"$BIN" -supervisor -join "http://127.0.0.1:$PORT" -token "$TOKEN" \
    -min-workers 1 -max-workers 3 -stuck-after 4s \
    -worker-logs "$TMP/sup" -obs "127.0.0.1:$SUP_OBS_PORT" >"$TMP/sup.log" 2>&1 &
SUP=$!
PIDS="$PIDS $SUP"
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$SUP_OBS_PORT/metrics" -token "$TOKEN" \
    -retries 150 \
    -require cpr_supervisor_converges_total || {
    echo "supervisor never converged" >&2
    dump_sup_logs
    exit 1
}

echo "== submitting second sweep (supervisor must scale up from nothing) =="
# shellcheck disable=SC2086
"$BIN" -submit -join "http://127.0.0.1:$PORT" -token "$TOKEN" $SPEC2_FLAGS \
    >"$TMP/sup-dist.out" 2>"$TMP/sup-submit.log" &
SUBMIT2=$!
PIDS="$PIDS $SUBMIT2"

# first_live_sup_pid [exclude]: newest spawned worker pid that is alive
# and not the excluded one.
first_live_sup_pid() {
    for f in "$TMP/sup"/*.pid; do
        [ -e "$f" ] || continue
        pid=$(cat "$f")
        [ "$pid" = "${1:-}" ] && continue
        kill -0 "$pid" 2>/dev/null && { echo "$pid"; return 0; }
    done
    return 1
}

WA=""
for _ in $(seq 1 300); do
    WA=$(first_live_sup_pid) && break
    sleep 0.1
done
if [ -z "$WA" ]; then
    echo "supervisor never spawned a worker" >&2
    dump_sup_logs
    exit 1
fi
echo "== chaos: kill -9 spawned worker (pid $WA) — supervisor must replace it =="
kill -9 "$WA" 2>/dev/null || true
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$SUP_OBS_PORT/metrics" -token "$TOKEN" \
    -retries 150 \
    -require cpr_supervisor_crashes_total || {
    echo "supervisor never recorded the kill -9 as a crash" >&2
    dump_sup_logs
    exit 1
}
WB=""
for _ in $(seq 1 300); do
    WB=$(first_live_sup_pid "$WA") && break
    sleep 0.1
done
if [ -z "$WB" ]; then
    echo "killed worker was never replaced" >&2
    dump_sup_logs
    exit 1
fi
echo "   replaced (pid $WB)"

echo "== chaos: SIGSTOP worker $WB — stuck detector must drain, revoke, reap =="
kill -STOP "$WB" 2>/dev/null || true
# Worst case: lease TTL (3s) + idle past stuck-after+long-poll (6s) +
# stuck grace (4s) before the revocation, then the reap. 300 promcheck
# retries = 60s absorbs all of it.
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$SUP_OBS_PORT/metrics" -token "$TOKEN" \
    -retries 300 \
    -require cpr_supervisor_spawns_total \
    -require cpr_supervisor_stuck_drains_total \
    -require cpr_supervisor_stuck_revokes_total || {
    echo "stuck detector never drained+revoked the SIGSTOPped worker" >&2
    dump_sup_logs
    exit 1
}
reaped=0
for _ in $(seq 1 300); do
    if ! kill -0 "$WB" 2>/dev/null; then
        reaped=1
        break
    fi
    sleep 0.1
done
if [ "$reaped" != 1 ]; then
    echo "revoked SIGSTOPped worker was never reaped" >&2
    dump_sup_logs
    exit 1
fi
echo "   stuck worker drained, revoked and reaped"

if ! wait "$SUBMIT2"; then
    echo "supervised submit failed:" >&2
    dump_sup_logs
    exit 1
fi
points2=$(grep -c '^point ' "$TMP/sup-submit.log" || true)
if [ "$points2" != 30 ]; then
    echo "expected 30 SSE point events for the supervised sweep, saw $points2:" >&2
    cat "$TMP/sup-submit.log" >&2
    exit 1
fi

echo "== supervised sweep vs single-process engine reference =="
# shellcheck disable=SC2086
"$BIN" $SPEC2_FLAGS | grep -v -e '^\[' -e '^$' >"$TMP/sup-direct.out"
if ! diff -u "$TMP/sup-direct.out" "$TMP/sup-dist.out"; then
    echo "supervised table differs from the single-engine table" >&2
    exit 1
fi

echo "== SIGTERM supervisor (must drain its spawns and exit) =="
kill -TERM "$SUP" 2>/dev/null || true
stopped=0
for _ in $(seq 1 600); do
    if ! kill -0 "$SUP" 2>/dev/null; then
        stopped=1
        break
    fi
    sleep 0.1
done
if [ "$stopped" != 1 ]; then
    echo "supervisor never exited after SIGTERM" >&2
    dump_sup_logs
    exit 1
fi
if leftover=$(first_live_sup_pid); then
    echo "supervisor exited but left spawned worker $leftover running" >&2
    dump_sup_logs
    exit 1
fi
echo "   supervisor drained its fleet and exited"

echo "== smoke-dist OK: table byte-identical to single engine despite worker kill, coordinator kill -9 + store replay, drain and replacement; store re-run and history surface verified; supervisor scaled, replaced a kill -9, reaped a SIGSTOP zombie, drained on SIGTERM =="
