#!/usr/bin/env bash
# Distributed sweep smoke test (make smoke-dist, CI job dist-smoke):
# build the binary, launch a coordinator plus two worker processes on
# localhost, submit the same short fig8 spec `make smoke` runs, consume
# the SSE stream to completion, and require the streamed run's final
# table to be byte-identical to the single-process engine's output.
set -eu

GO=${GO:-go}
PORT=${SMOKE_DIST_PORT:-18473}
TOKEN=smoke-dist-token
SPEC_FLAGS="-experiment fig8 -packets 8 -bytes 60 -seed 1 -pool"

TMP=$(mktemp -d)
BIN="$TMP/cprecycle-bench"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== building =="
$GO build -o "$BIN" ./cmd/cprecycle-bench

echo "== starting coordinator + 2 workers on 127.0.0.1:$PORT =="
"$BIN" -coordinator "127.0.0.1:$PORT" -journal "$TMP/jobs" -token "$TOKEN" \
    >"$TMP/coord.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN" -worker -join "http://127.0.0.1:$PORT" -token "$TOKEN" >"$TMP/w1.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN" -worker -join "http://127.0.0.1:$PORT" -token "$TOKEN" >"$TMP/w2.log" 2>&1 &
PIDS="$PIDS $!"

up=0
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
        up=1
        break
    fi
    sleep 0.1
done
if [ "$up" != 1 ]; then
    echo "coordinator never came up" >&2
    cat "$TMP/coord.log" >&2
    exit 1
fi

echo "== submitting distributed job and consuming its SSE stream =="
# shellcheck disable=SC2086
"$BIN" -submit -join "http://127.0.0.1:$PORT" -token "$TOKEN" $SPEC_FLAGS \
    >"$TMP/dist.out" 2>"$TMP/submit.log" || {
    echo "distributed submit failed:" >&2
    cat "$TMP/submit.log" "$TMP/coord.log" "$TMP/w1.log" "$TMP/w2.log" >&2
    exit 1
}

points=$(grep -c '^point ' "$TMP/submit.log" || true)
echo "   streamed $points point events"
if [ "$points" != 30 ]; then
    echo "expected 30 SSE point events for the fig8 spec, saw $points:" >&2
    cat "$TMP/submit.log" >&2
    exit 1
fi

echo "== running the single-process engine reference =="
# shellcheck disable=SC2086
"$BIN" $SPEC_FLAGS | grep -v -e '^\[' -e '^$' >"$TMP/direct.out"

if ! diff -u "$TMP/direct.out" "$TMP/dist.out"; then
    echo "distributed table differs from the single-engine table" >&2
    exit 1
fi
echo "== smoke-dist OK: distributed table byte-identical to single engine =="
