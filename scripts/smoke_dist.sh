#!/usr/bin/env bash
# Distributed sweep chaos smoke test (make smoke-dist, CI job dist-smoke):
# build the binary, launch a coordinator plus two worker processes on
# localhost, submit the same short fig8 spec `make smoke` runs — then,
# mid-sweep, kill -9 one worker (its lease must be re-issued via TTL
# expiry), kill -9 the COORDINATOR itself (a replacement over the same
# store dir must replay the job from the store — stored points count as
# cpr_store hits and are never re-leased — while the submit stream and
# the surviving worker reconnect on their own), kill -TERM the other
# worker (the SIGTERM drain path: it must finish its in-flight lease,
# deregister and exit on its own), and join a replacement worker that
# carries the sweep home. The streamed run's final table must still be
# byte-identical to the single-process engine's output.
set -eu

GO=${GO:-go}
PORT=${SMOKE_DIST_PORT:-18473}
OBS_PORT=$((PORT + 1))
TOKEN=smoke-dist-token
SPEC_FLAGS="-experiment fig8 -packets 8 -bytes 60 -seed 1 -pool"

TMP=$(mktemp -d)
BIN="$TMP/cprecycle-bench"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== building =="
$GO build -o "$BIN" ./cmd/cprecycle-bench

echo "== starting coordinator + 2 workers on 127.0.0.1:$PORT =="
# Short lease TTL so the kill -9'd worker's lease re-queues within the
# smoke budget instead of the 30s default.
"$BIN" -coordinator "127.0.0.1:$PORT" -store "$TMP/jobs" -token "$TOKEN" \
    -lease-ttl 3s >"$TMP/coord.log" 2>&1 &
COORD=$!
PIDS="$PIDS $COORD"
"$BIN" -worker -join "http://127.0.0.1:$PORT" -token "$TOKEN" >"$TMP/w1.log" 2>&1 &
W1=$!
PIDS="$PIDS $W1"
# Worker 2 also serves its observability side endpoint so the smoke can
# scrape a live worker mid-sweep.
"$BIN" -worker -join "http://127.0.0.1:$PORT" -token "$TOKEN" \
    -obs "127.0.0.1:$OBS_PORT" >"$TMP/w2.log" 2>&1 &
W2=$!
PIDS="$PIDS $W2"

up=0
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
        up=1
        break
    fi
    sleep 0.1
done
if [ "$up" != 1 ]; then
    echo "coordinator never came up" >&2
    cat "$TMP/coord.log" >&2
    exit 1
fi

echo "== submitting distributed job (SSE stream in background) =="
# shellcheck disable=SC2086
"$BIN" -submit -join "http://127.0.0.1:$PORT" -token "$TOKEN" $SPEC_FLAGS \
    >"$TMP/dist.out" 2>"$TMP/submit.log" &
SUBMIT=$!
PIDS="$PIDS $SUBMIT"

dump_logs() {
    cat "$TMP/submit.log" "$TMP/coord.log" "$TMP/coord2.log" "$TMP/w1.log" \
        "$TMP/w2.log" "$TMP/w3.log" 2>/dev/null >&2 || true
}

# wait_points N: block until the SSE consumer has logged >= N completed
# points (or the submit client exits, meaning the sweep settled early).
wait_points() {
    want=$1
    for _ in $(seq 1 600); do
        got=$(grep -c '^point ' "$TMP/submit.log" 2>/dev/null || true)
        [ "${got:-0}" -ge "$want" ] && return 0
        kill -0 "$SUBMIT" 2>/dev/null || return 0
        sleep 0.1
    done
    echo "timed out waiting for $want streamed points" >&2
    dump_logs
    exit 1
}

wait_points 3
echo "== chaos: kill -9 worker 1 (lease abandoned to TTL re-issue) =="
kill -9 "$W1" 2>/dev/null || true

wait_points 6
echo "== scraping /metrics mid-sweep (coordinator + worker 2) =="
# Both scrapes must be valid Prometheus text with real activity: the
# coordinator has granted leases, and worker 2 — the only live worker
# since w1 died — has completed sweep points. promcheck retries absorb
# the scrape-vs-progress race.
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$PORT/metrics" -token "$TOKEN" \
    -retries 50 \
    -require cpr_dist_leases_granted_total \
    -require cpr_dist_fleet_events_total || {
    echo "coordinator /metrics scrape failed" >&2
    dump_logs
    exit 1
}
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$OBS_PORT/metrics" -token "$TOKEN" \
    -retries 50 \
    -require cpr_sweep_points_done_total \
    -require cpr_sweep_packets_total \
    -require cpr_dist_worker_leases_total || {
    echo "worker /metrics scrape failed" >&2
    dump_logs
    exit 1
}
echo "   both expositions parse; lease + point series are live"

echo "== chaos: kill -9 the coordinator mid-sweep (store replay) =="
kill -9 "$COORD" 2>/dev/null || true
"$BIN" -coordinator "127.0.0.1:$PORT" -store "$TMP/jobs" -token "$TOKEN" \
    -lease-ttl 3s >"$TMP/coord2.log" 2>&1 &
PIDS="$PIDS $!"
# The replacement coordinator must replay the job from the store index:
# every already-completed point restores as a cpr_store hit instead of
# going back to the fleet. promcheck's retries double as the
# wait-until-restarted loop.
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$PORT/metrics" -token "$TOKEN" \
    -retries 100 \
    -require cpr_store_hits_total || {
    echo "restarted coordinator reported no store hits (points re-leased instead of restored?)" >&2
    dump_logs
    exit 1
}
echo "   coordinator replaced; stored points restored as store hits"

echo "== chaos: kill -TERM worker 2 (graceful drain) =="
kill -TERM "$W2" 2>/dev/null || true

echo "== joining replacement worker =="
"$BIN" -worker -join "http://127.0.0.1:$PORT" -token "$TOKEN" >"$TMP/w3.log" 2>&1 &
PIDS="$PIDS $!"

# The drained worker must exit on its own once its in-flight lease is
# done and it has deregistered — no second signal, no kill -9.
drained=0
for _ in $(seq 1 600); do
    if ! kill -0 "$W2" 2>/dev/null; then
        drained=1
        break
    fi
    sleep 0.1
done
if [ "$drained" != 1 ]; then
    echo "drained worker never exited" >&2
    dump_logs
    exit 1
fi
if ! grep -q 'draining' "$TMP/w2.log"; then
    echo "drained worker log is missing the SIGTERM drain message:" >&2
    dump_logs
    exit 1
fi
echo "   worker 2 drained and exited cleanly"

if ! wait "$SUBMIT"; then
    echo "distributed submit failed:" >&2
    dump_logs
    exit 1
fi

points=$(grep -c '^point ' "$TMP/submit.log" || true)
echo "   streamed $points point events"
if [ "$points" != 30 ]; then
    echo "expected 30 SSE point events for the fig8 spec, saw $points:" >&2
    cat "$TMP/submit.log" >&2
    exit 1
fi

echo "== fleet registry after the dust settles =="
"$BIN" -fleet -join "http://127.0.0.1:$PORT" -token "$TOKEN" || true

echo "== running the single-process engine reference =="
# shellcheck disable=SC2086
"$BIN" $SPEC_FLAGS | grep -v -e '^\[' -e '^$' >"$TMP/direct.out"

if ! diff -u "$TMP/direct.out" "$TMP/dist.out"; then
    echo "distributed table differs from the single-engine table" >&2
    exit 1
fi

echo "== re-submitting the identical sweep (must complete from the store) =="
# Content addressing makes the re-run lease-free: every point restores
# from the store, and the table must still be byte-identical.
# shellcheck disable=SC2086
if ! "$BIN" -submit -join "http://127.0.0.1:$PORT" -token "$TOKEN" $SPEC_FLAGS \
    >"$TMP/dist2.out" 2>"$TMP/submit2.log"; then
    echo "store-replay submit failed:" >&2
    cat "$TMP/submit2.log" >&2
    dump_logs
    exit 1
fi
if ! diff -u "$TMP/dist.out" "$TMP/dist2.out"; then
    echo "store-replayed table differs from the first run" >&2
    exit 1
fi

echo "== querying the results-history surface =="
hcurl() { curl -sf -H "Authorization: Bearer $TOKEN" "http://127.0.0.1:$PORT$1"; }
# No jq in CI: the fingerprint is a 32-hex token on its own indented
# JSON line, extractable with sed.
FP=$(hcurl "/v1/history/sweeps?experiment=fig8" |
    sed -n 's/.*"fingerprint": "\([0-9a-f]\{32\}\)".*/\1/p' | head -1)
if [ -z "$FP" ]; then
    echo "history index has no recorded fig8 sweep" >&2
    hcurl "/v1/history/sweeps" >&2 || true
    dump_logs
    exit 1
fi
if ! hcurl "/v1/history/sweeps/$FP/table" >"$TMP/hist.out"; then
    echo "history table endpoint failed for $FP" >&2
    dump_logs
    exit 1
fi
if ! diff -u "$TMP/dist.out" "$TMP/hist.out"; then
    echo "history-reassembled table differs from the live run" >&2
    exit 1
fi
if ! hcurl "/v1/history/diff?a=$FP&b=$FP" | grep -q '"equal": true'; then
    echo "self-diff of sweep $FP reported deltas:" >&2
    hcurl "/v1/history/diff?a=$FP&b=$FP" >&2 || true
    exit 1
fi
"$GO" run ./cmd/promcheck -url "http://127.0.0.1:$PORT/metrics" -token "$TOKEN" \
    -retries 50 \
    -require cpr_history_runs_recorded_total \
    -require cpr_history_queries_total || {
    echo "history metrics missing from coordinator /metrics" >&2
    dump_logs
    exit 1
}
echo "   history table byte-identical, self-diff clean, cpr_history_* live"

echo "== smoke-dist OK: table byte-identical to single engine despite worker kill, coordinator kill -9 + store replay, drain and replacement; store re-run and history surface verified =="
