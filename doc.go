// Package repro is a from-scratch Go reproduction of "CPRecycle: Recycling
// Cyclic Prefix for Versatile Interference Mitigation in OFDM based
// Wireless Systems" (Rathinakumar, Radunovic, Marina — CoNEXT 2016).
//
// The paper's contribution lives in internal/core; every substrate it
// depends on (FFT/DSP primitives, 802.11a/g modulation and coding, OFDM
// framing, channel models, interference scenarios, kernel density
// estimation, a standard receiver chain, and a network-level deployment
// simulator) is implemented in the other internal packages. See README.md
// for the architecture overview, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation at reduced fidelity;
// cmd/cprecycle-bench runs them at full fidelity.
//
// The receiver hot path is incremental, planar and allocation-free: the
// paper's P FFT windows per OFDM symbol — the scheme's main compute
// overhead — are produced by one seed FFT plus O(N·stride) sliding-DFT
// updates running entirely on split re/im planes (dsp.Planar,
// ofdm.Demodulator.SegmentsOnPlanar), updated sparsely at the 52 used
// subcarrier bins through precomputed per-slide twiddle schedules
// (dsp.SlideTab), with cached Eq. 2 phase-ramp tables, process-wide FFT
// plans (dsp.PlanFor), precomputed per-subcarrier equalisation dividers
// (dsp.Divisor) and per-frame/per-receiver scratch buffers throughout
// (rx.Frame.ObserveSegments, core.Receiver). Values convert to
// complex128 only at the equalizer/constellation boundary, and every
// planar kernel is pinned value-identical to its interleaved twin.
// The hottest planar kernels additionally run hand-written SIMD — AVX2
// on amd64 (runtime CPUID dispatch) and NEON on arm64 — with the Go
// loops kept as a complete scalar fallback (purego build tag,
// dsp.ForceScalar hook) and a bit-exactness contract (no FMA, scalar
// operation order) pinned by equivalence tests and fuzzing; see the
// internal/dsp package comment. Viterbi survivor memory is bounded by a
// sliding traceback window for long PSDUs (internal/coding,
// bit-identical by survivor-merge finalisation, pooled buffers below
// the window).
//
// Within one packet, rx.DecodeDataParallel fans the per-symbol decisions
// across a bounded worker pool — each worker on its own Frame.ScratchFork
// observation scratch and rx.ParallelDecider fork — merging coded bits in
// symbol order; rx.DecodeDataSoftParallel does the same for the
// soft-decision path, merging each symbol's deinterleaved Viterbi bit
// weights into its slot of the packet-wide LLR stream. The determinism
// contract: parallel decode is bit-identical to serial decode at any
// worker count; deciders whose state makes decisions order-dependent
// (CPRecycle's §4.3 continuous model update) refuse to fork and run
// serially. experiments.RunPacket engages both with the cores
// packet-level sharding leaves idle. A same-seed regression test
// (internal/experiments) pins every receiver arm's packet decisions to
// the pre-optimisation implementation, with parallel decode both off
// and forced on.
//
// The PSR sweep experiments run as a batch service: internal/sweep is a
// sharded engine that decomposes each figure into independent measurement
// points (experiments.SweepPlan / PlanPSR), schedules packet-range shards
// of all concurrent jobs over one bounded worker pool, and shares
// process-wide resources across shards — a pre-encoded interferer
// waveform pool (wifi.WaveformPool), per-point segment plans, and
// per-packet preamble trainings with lazily-fitted KDE models
// (core.Training) reused across receiver arms. Engine sharding is
// bit-identical to the sequential path; jobs offer progress counters,
// per-point event subscriptions, context cancellation, and durable
// resume through a content-addressed result store (internal/sweep/store:
// bit-packed CRC-guarded records keyed by plan fingerprint, pool
// identity and point identity; torn tails and corrupt records salvage
// every intact prefix record). The store can run on a size budget
// (-store-max-bytes): least-recently-hit segments are evicted whole,
// never touching records a live job has pinned. A results-history index
// (internal/sweep/history) records every sweep submitted against a
// store — experiment, plan fingerprint, spec, pool identity, run times
// — and serves the read-only GET /v1/history/* query surface: past
// sweeps listed and filtered, any fully-stored sweep re-assembled into
// its byte-identical table without re-running a packet, and two sweeps
// diffed point-by-point from stored tallies alone. The HTTP plumbing
// every /v1 tier shares — the {"error":{"code","message"}} envelope,
// bearer auth, limit/cursor pagination — lives in internal/api.
//
// The service scales across processes and machines through
// internal/sweep/dist: a coordinator decomposes each job into point-range
// leases (identified against the plan's fingerprint,
// experiments.SweepPlan.Fingerprint); workers exchange the cluster join
// secret for a per-worker revocable token at registration, then draw
// leases over a long-polling dispatch endpoint — the coordinator parks
// the request until work or a directive arrives, so an idle fleet issues
// no fixed-interval polls — and run them on local engines
// (Engine.SubmitPoints) with their waveform pool rebuilt from the lease's
// pool identity. Lease sizes adapt to observed per-point latency and the
// live worker count, targeting a fixed slice of wall-clock work per
// lease; workers heartbeat while running and report per-point tallies
// that merge bit-identically to a single in-process engine. Leases that
// miss their TTL are re-issued, results are idempotent, transient
// transport faults retry under jittered exponential backoff, and
// completed points persist in the shared result store so a kill -9'd
// coordinator rebuilds every job from its manifest plus the store index
// and re-leases only the missing points (workers re-register
// transparently); a late result from a slow re-leased worker is
// accepted exactly once and the redundant re-run in flight is
// cancelled, while repeated or cross-job identical sweeps complete from
// the store without touching the fleet. Workers leave the fleet two
// ways: graceful drain
// (admin endpoint or SIGTERM, piggy-backed on heartbeat and lease
// responses — the worker finishes its in-flight lease, deregisters, and
// nothing is re-queued via TTL expiry) and revocation (the token dies
// immediately, live leases re-queue, late results are refused). Workers
// also police their own resource budgets, self-draining when live heap
// exceeds -mem-budget or sustained process CPU (sampled from
// /proc/self/stat, falling back to the runtime's scheduler accounting)
// exceeds -cpu-budget. The determinism contract — coordinator + N
// workers renders the byte-identical table of one direct engine,
// including under injected transport chaos, mid-sweep worker death,
// drain and revocation — is pinned by the dist package tests and the
// end-to-end chaos smoke (make smoke-dist).
//
// The fleet drives itself through internal/sweep/supervise: an
// autoscaling supervisor — a stateless observe/decide/actuate control
// loop over the coordinator's admin API and fleet event stream — spawns
// and drains worker processes so the pending queue drains in a target
// wall-clock at the observed per-point latency, replaces crashed
// workers under jittered exponential backoff behind a crash-loop
// circuit breaker, and detects stuck workers the TTL machinery cannot
// see (heartbeating leases with zero point progress, registered
// workers silent beyond the long-poll bound), draining them and
// escalating ignored drains to revocation. Scale-down is always
// graceful drain, never revocation; kill -9 the supervisor and a
// successor rebuilds its world view from the registry, adopting
// orphans instead of duplicating them. The cmd/cprecycle-bench command
// routes the sweep figures
// through the engine and serves both tiers over HTTP (-serve,
// -coordinator / -worker / -submit / -supervisor, fleet admin via
// -fleet / -drain /
// -revoke), with per-point SSE streaming on /v1/jobs/{id}/events and a
// fleet-wide lifecycle stream on /v1/dist/events (events carry their seq
// as the SSE id; reconnecting consumers present Last-Event-ID and resume
// mid-stream instead of replaying every event); see that package's
// comment for the spec format, endpoints, protocol and quickstart.
//
// The whole service is observable without perturbing it: internal/obs
// is a dependency-free metrics core — counters, gauges and fixed-bucket
// histograms registered once at init, updated with atomic operations
// only (zero allocations on the hot path, enforced by test), rendered
// in Prometheus text format. The receiver and sweep layers record
// per-stage wall-clock histograms per packet
// (cpr_sweep_stage_seconds{stage="tx"|"observe"|"train"|"decode"},
// cpr_sweep_packet_seconds) plus engine job/point counters; the
// coordinator and worker render instance-scoped fleet series (cpr_dist_*:
// workers by state, in-flight leases, queue depth, the adaptive lease
// estimate, oldest lease-progress age, expiry/re-queue/revocation and
// SSE-drop counters), and the supervisor its control-loop series
// (cpr_supervisor_*: target/live worker gauges, spawn/crash/quarantine,
// scale-down and stuck-detection counters). Every
// serving mode exposes GET /metrics and authenticated /debug/pprof
// handlers, plus GET /v1/status — a one-call JSON dashboard that
// `cprecycle-bench -fleet` renders. Logging is structured (log/slog)
// with component/job/worker/lease attributes (-log-level, -log-json).
// Because instrumentation is pure timing — no RNG interaction, no
// decision input — the same-seed regression tests hold unchanged, and
// the smoke chaos run scrapes live coordinator and worker endpoints
// mid-sweep (scripts/smoke_dist.sh, cmd/promcheck).
package repro
