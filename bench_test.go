package repro

// One benchmark per table and figure of the paper's evaluation (DESIGN.md
// §4), each running a scaled-down version of the corresponding experiment
// and logging the regenerated rows. Full-fidelity runs (2000 packets of
// 400 bytes per point, as in the paper): go run ./cmd/cprecycle-bench.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kde"
	"repro/internal/wifi"
)

// benchOpts is the reduced fidelity used by the benchmark suite.
func benchOpts() experiments.Options {
	return experiments.Options{Packets: 20, PSDUBytes: 150, Seed: 1}
}

// runTable executes an experiment once per iteration and logs the rows on
// the first.
func runTable(b *testing.B, f func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

func BenchmarkTable1CPConstants(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Table1(), nil })
}

func BenchmarkFig4aOracleSpectrum(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig4a(1) })
}

func BenchmarkFig4bSegmentPower(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig4b(1) })
}

func BenchmarkFig4cConstellation(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig4c(1) })
}

func BenchmarkFig5NaiveVsOracle(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig5(benchOpts()) })
}

func BenchmarkFig6aKDEBandwidth(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig6a() })
}

func BenchmarkFig6bDensityAccuracy(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig6b(1) })
}

func BenchmarkFig8ACISingle(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig8(benchOpts()) })
}

func BenchmarkFig9ACIDouble(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig9(benchOpts()) })
}

func BenchmarkFig10GuardBand(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig10(benchOpts()) })
}

func BenchmarkFig11CCISingle(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig11(benchOpts()) })
}

func BenchmarkFig12CCIDouble(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig12(benchOpts()) })
}

func BenchmarkFig13Neighbors(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig13(7, 15) })
}

func BenchmarkFig14SegmentSweep(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.Fig14(benchOpts()) })
}

func BenchmarkDelaySpreadSweep(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.DelaySpreadSweep(benchOpts()) })
}

func BenchmarkAblationDecisionRules(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.AblationDecision(benchOpts()) })
}

// ablationSweep measures CPRecycle PSR at a fixed hard ACI point while one
// design knob varies.
func ablationSweep(b *testing.B, title string, labels []string, tweaks []func(*core.Config)) {
	b.Helper()
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		b.Fatal(err)
	}
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		t := &experiments.Table{Title: title, Header: []string{"variant", "PSR(%)"}}
		for vi, tweak := range tweaks {
			cfg := experiments.LinkConfig{
				Scenario:  experiments.ACIScenario(-15, 57, experiments.OperatingSNR(m.Name)),
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   o.Packets,
				Seed:      o.Seed,
				Receivers: []experiments.ReceiverKind{experiments.CPRecycle},
				CoreTweak: tweak,
			}
			pts, err := experiments.RunPSR(cfg)
			if err != nil {
				b.Fatal(err)
			}
			t.AddFloatRow(labels[vi], 100*pts[0].Rate())
		}
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

func BenchmarkAblationSoftDecoding(b *testing.B) {
	runTable(b, func() (*experiments.Table, error) { return experiments.AblationSoftDecoding(benchOpts()) })
}

func BenchmarkAblationSphereRadius(b *testing.B) {
	radii := []float64{0.5, 1.0, 1.5, 2.5, 4.0}
	labels := make([]string, len(radii))
	tweaks := make([]func(*core.Config), len(radii))
	for i, r := range radii {
		r := r
		labels[i] = fmt.Sprintf("radius=%.1f", r)
		tweaks[i] = func(c *core.Config) { c.Radius = r }
	}
	ablationSweep(b, "Ablation: sphere radius R (× constellation units), ACI -15 dB QPSK", labels, tweaks)
}

func BenchmarkAblationBandwidth(b *testing.B) {
	ablationSweep(b, "Ablation: KDE bandwidth selector (sphere-KDE decision), ACI -15 dB QPSK",
		[]string{"silverman", "lscv", "fixed=0.5"},
		[]func(*core.Config){
			func(c *core.Config) { c.Decision = core.DecisionSphereKDE; c.Bandwidth = kde.Silverman },
			func(c *core.Config) { c.Decision = core.DecisionSphereKDE; c.Bandwidth = kde.LSCV },
			func(c *core.Config) { c.Decision = core.DecisionSphereKDE; c.Bandwidth = kde.FixedBandwidth(0.5) },
		})
}

func BenchmarkAblationKDEPooling(b *testing.B) {
	ablationSweep(b, "Ablation: pooled vs per-segment KDE (sphere-KDE decision), ACI -15 dB QPSK",
		[]string{"pooled", "per-segment"},
		[]func(*core.Config){
			func(c *core.Config) { c.Decision = core.DecisionSphereKDE },
			func(c *core.Config) { c.Decision = core.DecisionSphereKDE; c.PerSegment = true },
		})
}

func BenchmarkAblationModelUpdate(b *testing.B) {
	ablationSweep(b, "Ablation: continuous model update, ACI -15 dB QPSK",
		[]string{"updating", "frozen"},
		[]func(*core.Config){
			func(c *core.Config) {},
			func(c *core.Config) { c.NoModelUpdate = true },
		})
}

func BenchmarkAblationOversampledSegments(b *testing.B) {
	// §6: P can exceed the CP sample count through oversampling. The wide
	// composite grid runs at 4× the victim rate, so halving the stride
	// doubles the usable segments.
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		b.Fatal(err)
	}
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		t := &experiments.Table{
			Title:  "Ablation: segment count incl. oversampled (ACI -15 dB, 16-QAM)",
			Header: []string{"segments", "PSR(%)"},
		}
		for _, nseg := range []int{8, 16, 32} {
			cfg := experiments.LinkConfig{
				Scenario:    experiments.ACIScenario(-15, 57, experiments.OperatingSNR(m.Name)),
				MCS:         m,
				PSDUBytes:   o.PSDUBytes,
				Packets:     o.Packets,
				Seed:        o.Seed,
				NumSegments: nseg,
				Receivers:   []experiments.ReceiverKind{experiments.CPRecycle},
			}
			if nseg > 16 {
				// Oversampled: half-native stride on the composite grid.
				cfg.StrideDivisor = 2
			}
			pts, err := experiments.RunPSR(cfg)
			if err != nil {
				b.Fatal(err)
			}
			t.AddFloatRow(fmt.Sprintf("%d", nseg), 100*pts[0].Rate())
		}
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}
