# Tier-1 verification: everything CI runs, runnable locally with `make`.

GO ?= go

.PHONY: all verify build vet test test-race-sweep smoke bench bench-hotpath fmt-check

all: verify

verify: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent sweep engine (and the packages
# whose shared caches it exercises).
test-race-sweep:
	$(GO) test -race ./internal/sweep/ ./internal/wifi/ ./internal/experiments/

# Short end-to-end sweep through the engine (sharded workers + waveform
# pool), as run in CI.
smoke:
	$(GO) run ./cmd/cprecycle-bench -experiment fig8 -packets 8 -bytes 60 -pool

# Full benchmark suite (regenerates every paper table/figure at reduced
# fidelity; slow).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Hot-path micro-benchmarks with allocation reporting: segment
# demodulation (old FFT-per-window vs sliding-DFT batch), multi-segment
# observation, Viterbi, sliding kernels.
bench-hotpath:
	$(GO) test -bench 'BenchmarkSegment' -benchtime 2000x -run '^$$' ./internal/ofdm/
	$(GO) test -bench 'BenchmarkObserve' -benchtime 2000x -run '^$$' ./internal/rx/
	$(GO) test -bench 'BenchmarkViterbiDecode' -benchtime 500x -run '^$$' ./internal/coding/
	$(GO) test -bench 'BenchmarkSliding|BenchmarkForward|BenchmarkFreqShift' -run '^$$' ./internal/dsp/

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
