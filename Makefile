# Tier-1 verification: everything CI runs, runnable locally with `make`.

GO ?= go

.PHONY: all verify build vet test test-purego test-race-sweep smoke smoke-dist bench bench-hotpath bench-json bench-gate fmt-check lint staticcheck

all: verify

verify: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full build + test with the SIMD kernels compiled out (the purego build
# tag), proving the scalar fallback path is complete — this is what
# machines without AVX2/NEON (or any other GOARCH) run.
test-purego:
	$(GO) build -tags purego ./...
	$(GO) test -tags purego ./...

# Race-detector pass over the concurrent paths: the sweep engine and the
# distributed coordinator/worker tier (and the packages whose shared
# caches they exercise), the intra-packet parallel symbol decode in rx
# (hard and soft), and the dsp kernel dispatch (shared SlideTab/FFT-plan
# caches + the ForceScalar toggle).
test-race-sweep:
	$(GO) test -race ./internal/sweep/... ./internal/wifi/ ./internal/experiments/ ./internal/rx/ ./internal/dsp/

# Short end-to-end sweep through the engine (sharded workers + waveform
# pool) plus a 2-worker parallel-decode equivalence check, as run in CI.
smoke:
	$(GO) run ./cmd/cprecycle-bench -experiment fig8 -packets 8 -bytes 60 -pool
	$(GO) test -run 'TestDecodeDataParallelMatchesSerial|TestRunPSRParallelDecodeRegression' ./internal/rx/ ./internal/experiments/

# Distributed smoke: coordinator + two worker processes on localhost run
# the same short fig8 sweep, streamed over SSE, and the final table must
# be byte-identical to the single-process engine's.
smoke-dist:
	scripts/smoke_dist.sh

# Full benchmark suite (regenerates every paper table/figure at reduced
# fidelity; slow).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Hot-path micro-benchmarks with allocation reporting: segment
# demodulation (old FFT-per-window vs sliding-DFT batch), multi-segment
# observation, Viterbi, sliding kernels.
bench-hotpath:
	$(GO) test -bench 'BenchmarkSegment' -benchtime 2000x -run '^$$' ./internal/ofdm/
	$(GO) test -bench 'BenchmarkObserve' -benchtime 2000x -run '^$$' ./internal/rx/
	$(GO) test -bench 'BenchmarkViterbiDecode' -benchtime 500x -run '^$$' ./internal/coding/
	$(GO) test -bench 'BenchmarkSliding|BenchmarkForward|BenchmarkFreqShift' -run '^$$' ./internal/dsp/

# Machine-readable perf trajectory: run the hot-path benchmarks with
# allocation reporting and write ns/op, B/op and allocs/op per benchmark
# to BENCH_PR9.json (CI archives it so future PRs can diff against it).
# Each suite runs -count=3 and benchjson keeps the fastest run per
# benchmark (min ns/op), so one noisy-neighbour blip cannot poison the
# trajectory or trip the regression gate; the store suite runs -count=6
# because its Put benchmarks are filesystem-bound and need more samples
# for a stable minimum. The dsp suite includes the
# SIMD kernel benchmarks (BenchmarkPlanar*) and their ForceScalar twins;
# the obs suite pins the metrics layer at 0 allocs per hot-path update;
# the store suite covers the result store's encode/decode/lookup path.
bench-json:
	set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -bench 'BenchmarkObserve' -benchtime 2000x -count 3 -benchmem -run '^$$' ./internal/rx/ >> "$$tmp"; \
	$(GO) test -bench 'BenchmarkSegment' -benchtime 2000x -count 3 -benchmem -run '^$$' ./internal/ofdm/ >> "$$tmp"; \
	$(GO) test -bench 'BenchmarkViterbiDecode' -benchtime 500x -count 3 -benchmem -run '^$$' ./internal/coding/ >> "$$tmp"; \
	$(GO) test -bench 'BenchmarkSliding|BenchmarkForward|BenchmarkFreqShift|BenchmarkPlanar' -count 3 -benchmem -run '^$$' ./internal/dsp/ >> "$$tmp"; \
	$(GO) test -bench 'BenchmarkMetric|BenchmarkPacketMetrics' -benchtime 100000x -count 3 -benchmem -run '^$$' ./internal/obs/ >> "$$tmp"; \
	$(GO) test -bench 'BenchmarkStore' -count 6 -benchmem -run '^$$' ./internal/sweep/store/ >> "$$tmp"; \
	$(GO) run ./cmd/benchjson -out BENCH_PR9.json < "$$tmp"
	@echo "wrote BENCH_PR9.json"

# Perf regression gate: regenerate the trajectory on this machine and
# fail when any hot-path benchmark shared with the committed PR8
# trajectory regresses ns/op by more than 25%.
bench-gate: bench-json
	$(GO) run ./cmd/benchjson -baseline BENCH_PR8.json -compare BENCH_PR9.json -max-regress 25

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis: vet + gofmt always; staticcheck when installed (the
# CI lint job installs it, local runs skip gracefully).
lint: vet fmt-check staticcheck

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it)"; \
	fi
