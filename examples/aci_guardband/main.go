// aci_guardband sizes the guard band a cognitive radio needs next to a
// stronger legacy OFDM transmitter (the paper's Fig. 10 scenario): it
// sweeps the edge-to-edge guard band and reports the packet success rate
// with and without CPRecycle, then prints the smallest guard achieving 90 %
// delivery for each receiver — the "15 MHz → <5 MHz" spectrum saving of
// §5.2.1.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/interference"
	"repro/internal/wifi"
)

func main() {
	var (
		packets = flag.Int("packets", 80, "packets per guard-band point")
		sir     = flag.Float64("sir", -10, "signal-to-interference ratio in dB (legacy transmitter 10x stronger = -10)")
	)
	flag.Parse()

	mcs, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guard-band sweep: %s at SIR %.0f dB, %d packets/point\n\n", mcs.Name, *sir, *packets)
	fmt.Printf("%10s  %12s  %12s\n", "guard(MHz)", "standard(%)", "cprecycle(%)")

	firstStd, firstCPR := -1.0, -1.0
	for _, guard := range []float64{0, 1.25, 2.5, 5, 7.5, 10, 15, 20, 25} {
		cfg := experiments.LinkConfig{
			Scenario: experiments.ACIScenario(*sir,
				interference.OffsetForGuardMHz(guard), experiments.OperatingSNR(mcs.Name)),
			MCS:       mcs,
			PSDUBytes: 400,
			Packets:   *packets,
			Seed:      int64(guard*100) + 5,
			Receivers: []experiments.ReceiverKind{experiments.Standard, experiments.CPRecycle},
		}
		pts, err := experiments.RunPSR(cfg)
		if err != nil {
			log.Fatal(err)
		}
		std, cpr := pts[0].Rate(), pts[1].Rate()
		fmt.Printf("%10.2f  %12.1f  %12.1f\n", guard, 100*std, 100*cpr)
		if std >= 0.9 && firstStd < 0 {
			firstStd = guard
		}
		if cpr >= 0.9 && firstCPR < 0 {
			firstCPR = guard
		}
	}

	fmt.Println()
	report := func(name string, g float64) {
		if g < 0 {
			fmt.Printf("%-10s: never reached 90%% delivery in this sweep\n", name)
			return
		}
		fmt.Printf("%-10s: needs ≥ %.2f MHz of guard band for 90%% delivery\n", name, g)
	}
	report("standard", firstStd)
	report("cprecycle", firstCPR)
	if firstCPR >= 0 && (firstStd < 0 || firstCPR < firstStd) {
		fmt.Println("→ CPRecycle lets the cognitive user sit closer to the incumbent.")
	}
}
