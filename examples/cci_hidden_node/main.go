// cci_hidden_node reproduces the hidden-terminal situation that motivates
// the paper's co-channel experiments (Fig. 11): a victim link suffering
// collisions from a transmitter it cannot carrier-sense. The example sweeps
// the interferer's power and reports where each receiver keeps the link
// alive, including the Oracle bound and the per-symbol segment statistics
// CPRecycle exploits.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/wifi"
)

func main() {
	var packets = flag.Int("packets", 60, "packets per SIR point")
	flag.Parse()

	mcs, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hidden-node co-channel sweep (QPSK 1/2, CSMA blind interferer)")
	fmt.Printf("%8s  %12s  %12s  %12s  %12s\n", "SIR(dB)", "standard(%)", "naive(%)", "cprecycle(%)", "oracle(%)")

	lastAlive := map[experiments.ReceiverKind]float64{}
	kinds := []experiments.ReceiverKind{
		experiments.Standard, experiments.Naive, experiments.CPRecycle, experiments.Oracle,
	}
	for _, sir := range []float64{30, 25, 20, 15, 10, 5, 0} {
		cfg := experiments.LinkConfig{
			Scenario:  experiments.CCIScenario(sir, experiments.OperatingSNR(mcs.Name)),
			MCS:       mcs,
			PSDUBytes: 400,
			Packets:   *packets,
			Seed:      int64(sir) + 11,
			Receivers: kinds,
		}
		pts, err := experiments.RunPSR(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f", sir)
		for _, p := range pts {
			fmt.Printf("  %12.1f", 100*p.Rate())
			if p.Rate() >= 0.8 {
				lastAlive[p.Kind] = sir
			}
		}
		fmt.Println()
	}

	fmt.Println()
	for _, k := range kinds {
		if sir, ok := lastAlive[k]; ok {
			fmt.Printf("%-10s survives down to SIR %+.0f dB (80%% delivery)\n", k, sir)
		} else {
			fmt.Printf("%-10s never reached 80%% delivery\n", k)
		}
	}
}
