// netplan runs the paper's network-level analysis (Fig. 13): given a
// five-floor office deployment of 40 access points, how many interfering
// neighbours does each AP see with a standard receiver versus a CPRecycle
// receiver that tolerates 15 dB more co-channel interference?
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/dsp"
	"repro/internal/netsim"
)

func main() {
	var (
		seed      = flag.Int64("seed", 7, "deployment RNG seed")
		threshold = flag.Float64("threshold", -78, "standard interference threshold in dBm")
		gain      = flag.Float64("gain", 15, "CPRecycle tolerable-interference gain in dB (Fig. 11)")
	)
	flag.Parse()

	b := netsim.PaperBuilding()
	r := dsp.NewRand(*seed)
	d, err := netsim.Deploy(b, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d APs across %d floors (%gx%g m)\n\n",
		len(d.APs), b.Floors, b.Width, b.Depth)

	std := d.NeighborCounts(*threshold)
	cpr := d.NeighborCounts(*threshold + *gain)

	fmt.Printf("%-10s median neighbours: %d\n", "standard", netsim.MedianNeighbors(std))
	fmt.Printf("%-10s median neighbours: %d\n\n", "cprecycle", netsim.MedianNeighbors(cpr))

	// ASCII CDF.
	fmt.Println("CDF of interfering neighbours (s = standard, c = cprecycle):")
	cdfAt := func(counts []int, x int) float64 {
		n := 0
		for _, c := range counts {
			if c <= x {
				n++
			}
		}
		return float64(n) / float64(len(counts))
	}
	for x := 0; x <= 24; x += 2 {
		s := cdfAt(std, x)
		c := cdfAt(cpr, x)
		bar := func(f float64, ch byte) string {
			return strings.Repeat(string(ch), int(f*40+0.5))
		}
		fmt.Printf("%3d │ %-42s %.2f\n", x, bar(c, 'c'), c)
		fmt.Printf("    │ %-42s %.2f\n", bar(s, 's'), s)
	}

	// The paper's headline comparison.
	fracAtLeast := func(counts []int, x int) float64 {
		n := 0
		for _, c := range counts {
			if c >= x {
				n++
			}
		}
		return float64(n) / float64(len(counts))
	}
	fmt.Printf("\nstandard : %.0f%% of APs have ≥ 12 interfering neighbours\n", 100*fracAtLeast(std, 12))
	fmt.Printf("cprecycle: %.0f%% of APs have ≤ 6 interfering neighbours\n", 100*cdfAt(cpr, 6))
}
