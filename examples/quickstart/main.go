// Quickstart: an end-to-end 802.11g link through multipath, noise and an
// adjacent-channel interferer, decoded three ways — standard receiver,
// CPRecycle, and the Oracle upper bound — to show the CPRecycle API in its
// smallest complete form.
package main

import (
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/interference"
	"repro/internal/ofdm"
	"repro/internal/rx"
	"repro/internal/wifi"
)

func main() {
	// 1. Describe the radio environment: a 16-QAM victim at its operating
	// SNR with one adjacent-channel interferer 10 dB stronger (SIR −10 dB)
	// separated by a 4-subcarrier guard band.
	scenario := &interference.Scenario{
		Q:            4,  // 80 MHz composite band (4× oversampled view)
		VictimCenter: 64, // victim DC on composite bin 64
		SNRdB:        17,
		Channel:      channel.Indoor2Tap(),
		Interferers: []interference.Interferer{
			{CenterOffset: 57, SIRdB: -10, Channel: channel.Indoor2Tap()},
		},
	}

	// 2. Transmit a burst of 400-byte packets and decode each with three
	// receivers: the standard CP-discarding receiver, CPRecycle, and the
	// Oracle upper bound.
	mcs, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		log.Fatal(err)
	}
	const packets = 20
	ok := map[string]int{}
	order := []string{"standard (discards CP)", "CPRecycle", "oracle (impractical bound)"}
	for pkt := 0; pkt < packets; pkt++ {
		r := dsp.NewRand(int64(1000 + pkt))
		psdu := wifi.BuildPSDU(r.Bytes(396)) // payload + CRC-32 FCS
		comp, err := scenario.Run(r, psdu, mcs)
		if err != nil {
			log.Fatal(err)
		}

		// 3. Bind a receive frame: channel estimation from the preamble.
		frame, err := rx.NewFrame(comp.Grid, comp.Samples, comp.FrameStart)
		if err != nil {
			log.Fatal(err)
		}

		// 4. Build the CPRecycle receiver: 16 FFT segments across the
		// ISI-free cyclic prefix (the paper's P = 16), its interference
		// model trained on this frame's preamble.
		q := comp.Grid.NFFT / 64
		segments, err := ofdm.SegmentPlan(comp.Grid.CP, q, 16, 2*q)
		if err != nil {
			log.Fatal(err)
		}
		cpr, err := core.NewReceiver(frame, core.Config{Segments: segments})
		if err != nil {
			log.Fatal(err)
		}

		// 5. Decode with each receiver.
		deciders := map[string]rx.SymbolDecider{
			order[0]: rx.StandardDecider{},
			order[1]: cpr,
			order[2]: &core.OracleDecider{
				InterferenceOnly: comp.InterferenceOnly, Segments: segments},
		}
		for name, d := range deciders {
			res, err := rx.DecodeData(frame, mcs, len(psdu), d)
			if err != nil {
				log.Fatal(err)
			}
			if res.FCSOK {
				ok[name]++
			}
		}
	}

	fmt.Printf("%s at SIR -10 dB, %d packets of 400 bytes:\n", mcs.Name, packets)
	for _, name := range order {
		fmt.Printf("  %-28s %2d/%d packets delivered\n", name, ok[name], packets)
	}
}
