// Command promcheck validates a Prometheus text-format (0.0.4)
// exposition and optionally asserts that named series are present with
// a positive value. It exists so shell-level smoke tests (see
// scripts/smoke_dist.sh) can scrape a live /metrics endpoint and fail
// loudly on malformed output or missing activity, without pulling a
// Prometheus toolchain into the build.
//
// Usage:
//
//	promcheck -url http://host:8080/metrics -token SECRET \
//	    -require cpr_dist_leases_granted_total -retries 50
//	promcheck metrics.txt
//	curl -s host/metrics | promcheck
//
// Each -require NAME (repeatable) demands at least one sample whose
// metric name is exactly NAME with a value > 0. -retries N re-fetches
// a -url up to N times (200ms apart) until the parse and every
// requirement pass, absorbing scrape-vs-progress races in smoke tests.
// Exit status is 0 on success, 1 with a diagnostic on stderr otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

var metricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// sample is one parsed series: a metric name (label part stripped) and
// its value.
type sample struct {
	name  string
	value float64
}

// parse validates a full exposition and returns its samples. The line
// grammar checked here is the subset every real scraper relies on:
// HELP/TYPE comments with known types, and sample lines
// name[{labels}] value [timestamp] with valid names, quoted/escaped
// label values and float-parseable values.
func parse(text string) ([]sample, error) {
	var samples []sample
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
				if !nameRe.MatchString(fields[2]) {
					return nil, fmt.Errorf("line %d: bad metric name %q in TYPE", lineNo, fields[2])
				}
				if !metricTypes[fields[3]] {
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if prev, ok := typed[fields[2]]; ok {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s (already %s)", lineNo, fields[2], prev)
				}
				typed[fields[2]] = fields[3]
			case "HELP":
				if len(fields) < 3 {
					return nil, fmt.Errorf("line %d: malformed HELP comment: %q", lineNo, line)
				}
				if !nameRe.MatchString(fields[2]) {
					return nil, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, fields[2])
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// parseSample validates one sample line: name[{labels}] value [ts].
func parseSample(line string) (sample, error) {
	rest := line
	// Metric name runs to the first '{' or space.
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return sample{}, fmt.Errorf("no value: %q", line)
	}
	name := rest[:end]
	if !nameRe.MatchString(name) {
		return sample{}, fmt.Errorf("bad metric name %q", name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		close := strings.LastIndex(rest, "}")
		if close < 0 {
			return sample{}, fmt.Errorf("unterminated label set: %q", line)
		}
		if err := checkLabels(rest[1:close]); err != nil {
			return sample{}, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return sample{}, fmt.Errorf("want 'value [timestamp]' after name, got %q", strings.TrimSpace(rest))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return sample{}, fmt.Errorf("bad value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return sample{}, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return sample{name: name, value: v}, nil
}

// checkLabels validates the inside of a {...} label set:
// name="value",... with backslash-escaped quotes in values.
func checkLabels(s string) error {
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("bad label pair %q", s)
		}
		name := s[:eq]
		if !labelRe.MatchString(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("unquoted value for label %q", name)
		}
		s = s[1:]
		// Scan to the closing quote, honouring backslash escapes.
		i, ok := 0, false
		for i < len(s) {
			switch s[i] {
			case '\\':
				i += 2
				continue
			case '"':
				ok = true
			}
			if ok {
				break
			}
			i++
		}
		if !ok {
			return fmt.Errorf("unterminated value for label %q", name)
		}
		s = s[i+1:]
		if s == "" {
			return nil
		}
		if !strings.HasPrefix(s, ",") {
			return fmt.Errorf("junk after label %q", name)
		}
		s = s[1:]
	}
	return nil
}

// check runs the parse plus the -require assertions over one body.
func check(text string, require []string) error {
	samples, err := parse(text)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for _, name := range require {
		found, positive := false, false
		for _, s := range samples {
			if s.name == name {
				found = true
				if s.value > 0 {
					positive = true
					break
				}
			}
		}
		switch {
		case !found:
			return fmt.Errorf("required series %s not present", name)
		case !positive:
			return fmt.Errorf("required series %s present but never > 0", name)
		}
	}
	return nil
}

func fetch(url, token string) (string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return string(body), nil
}

func main() {
	var (
		url     = flag.String("url", "", "scrape this URL instead of reading a file/stdin")
		token   = flag.String("token", "", "bearer token sent with -url")
		retries = flag.Int("retries", 0, "with -url: retry up to N times (200ms apart) until the checks pass")
		require []string
	)
	flag.Func("require", "require a series with this exact name and a value > 0 (repeatable)", func(v string) error {
		require = append(require, v)
		return nil
	})
	flag.Parse()

	run := func() error {
		var text string
		var err error
		switch {
		case *url != "":
			text, err = fetch(*url, *token)
		case flag.NArg() > 0:
			var b []byte
			b, err = os.ReadFile(flag.Arg(0))
			text = string(b)
		default:
			var b []byte
			b, err = io.ReadAll(os.Stdin)
			text = string(b)
		}
		if err != nil {
			return err
		}
		return check(text, require)
	}

	err := run()
	for i := 0; err != nil && *url != "" && i < *retries; i++ {
		time.Sleep(200 * time.Millisecond)
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}
