package main

import (
	"strings"
	"testing"
)

const goodExposition = `# HELP cpr_sweep_packets_total Simulated packets completed.
# TYPE cpr_sweep_packets_total counter
cpr_sweep_packets_total 42
# TYPE cpr_sweep_stage_seconds histogram
cpr_sweep_stage_seconds_bucket{le="0.001",stage="decode"} 10
cpr_sweep_stage_seconds_bucket{le="+Inf",stage="decode"} 12
cpr_sweep_stage_seconds_sum{stage="decode"} 0.034
cpr_sweep_stage_seconds_count{stage="decode"} 12
# TYPE cpr_dist_workers gauge
cpr_dist_workers{state="active"} 3
cpr_dist_workers{state="draining"} 0
escaped{msg="a\"b\\c\nd"} 1 1700000000
`

func TestParseGood(t *testing.T) {
	samples, err := parse(goodExposition)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("parsed %d samples, want 8", len(samples))
	}
	if samples[0].name != "cpr_sweep_packets_total" || samples[0].value != 42 {
		t.Errorf("first sample %+v", samples[0])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad type":          "# TYPE foo sideways\nfoo 1\n",
		"bad name":          "2foo 1\n",
		"no value":          "foo\n",
		"bad value":         "foo twelve\n",
		"bad timestamp":     "foo 1 later\n",
		"unquoted label":    "foo{a=1} 1\n",
		"bad label name":    `foo{2a="x"} 1` + "\n",
		"unterminated set":  `foo{a="x" 1` + "\n",
		"junk after label":  `foo{a="x";b="y"} 1` + "\n",
		"duplicate TYPE":    "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
		"trailing garbage":  "foo 1 2 3\n",
		"unterminated text": `foo{a="x` + "\n",
	}
	for name, text := range cases {
		if _, err := parse(text); err == nil {
			t.Errorf("%s: parse accepted %q", name, text)
		}
	}
}

func TestCheckRequire(t *testing.T) {
	if err := check(goodExposition, []string{"cpr_sweep_packets_total", "cpr_dist_workers"}); err != nil {
		t.Errorf("require present+positive: %v", err)
	}
	err := check(goodExposition, []string{"cpr_missing_total"})
	if err == nil || !strings.Contains(err.Error(), "not present") {
		t.Errorf("require missing: %v", err)
	}
	// Present but never positive: the draining gauge is 0, but the
	// active one is 3, so cpr_dist_workers passes; a strictly-zero
	// family must not.
	zero := "# TYPE z gauge\nz 0\n"
	err = check(zero, []string{"z"})
	if err == nil || !strings.Contains(err.Error(), "never > 0") {
		t.Errorf("require zero: %v", err)
	}
	if err := check("", nil); err == nil {
		t.Error("empty exposition accepted")
	}
}
