// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON perf-trajectory artifact. It reads benchmark
// output on stdin (concatenated across packages; `pkg:` header lines
// attribute the benchmarks that follow them) and writes a JSON document
// with one entry per benchmark carrying ns/op, B/op and allocs/op, so CI
// can archive the numbers and future changes can diff against them:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson -out BENCH.json
//
// Lines that are not benchmark results are ignored, making the tool safe
// to feed raw `go test` output including PASS/ok trailers and logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is the artifact layout.
type Document struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkObserveSegments-8   2000   18384 ns/op   0 B/op   0 allocs/op
//
// with the -N GOMAXPROCS suffix, B/op and allocs/op all optional.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := Document{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Package: pkg, Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
