// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON perf-trajectory artifact. It reads benchmark
// output on stdin (concatenated across packages; `pkg:` header lines
// attribute the benchmarks that follow them) and writes a JSON document
// with one entry per benchmark carrying ns/op, B/op and allocs/op, so CI
// can archive the numbers and future changes can diff against them:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson -out BENCH.json
//
// Lines that are not benchmark results are ignored, making the tool safe
// to feed raw `go test` output including PASS/ok trailers and logs. When
// the same benchmark appears multiple times (go test -count=N), the run
// with the lowest ns/op wins: the minimum is the standard low-noise
// estimator for microbenchmarks on shared machines, and it is what makes
// the regression gate below usable at a tight threshold.
//
// Compare mode turns two trajectory files into a regression gate (no
// stdin involved):
//
//	go run ./cmd/benchjson -baseline BENCH_PR3.json -compare BENCH_PR4.json -max-regress 25
//
// Every benchmark present in both files is diffed on ns/op; the exit
// status is non-zero when any regresses by more than -max-regress
// percent. Benchmarks present in only one file are listed but never
// fail the gate (they are new or retired, not regressed).
//
// Trajectory files are recorded on whatever machine ran the PR's CI, so
// a candidate measured on a uniformly slower machine would trip every
// benchmark at once. Compare mode therefore discounts uniform slowdown:
// when the median candidate/baseline ratio across shared benchmarks is
// above 1, each benchmark is judged relative to that median (the drift
// is printed, never hidden). A real regression moves one benchmark
// against the pack; machine drift moves them all together. Speed-ups
// are never normalized away — a median below 1 is left at 1 so a PR
// that accelerates most of the suite isn't charged for the benchmarks
// it left alone.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is the artifact layout.
type Document struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkObserveSegments-8   2000   18384 ns/op   0 B/op   0 allocs/op
//
// with the -N GOMAXPROCS suffix, B/op and allocs/op all optional.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline trajectory JSON for -compare")
	compare := flag.String("compare", "", "candidate trajectory JSON: diff against -baseline and fail on regression instead of reading stdin")
	maxRegress := flag.Float64("max-regress", 25, "maximum tolerated ns/op regression vs -baseline, in percent")
	flag.Parse()

	if *compare != "" {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -compare requires -baseline")
			os.Exit(1)
		}
		if err := runCompare(*baseline, *compare, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	doc := Document{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	index := make(map[string]int) // benchKey → position in doc.Benchmarks
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Package: pkg, Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if at, seen := index[benchKey(r)]; seen {
			// Repeated run (-count=N): keep the fastest — min ns/op.
			if r.NsPerOp < doc.Benchmarks[at].NsPerOp {
				doc.Benchmarks[at] = r
			}
			continue
		}
		index[benchKey(r)] = len(doc.Benchmarks)
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// loadDoc reads one trajectory file.
func loadDoc(path string) (Document, error) {
	var doc Document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// benchKey identifies a benchmark across trajectories. The package is
// included when both sides record one; trajectories written before
// package attribution fall back to the bare name.
func benchKey(r Result) string {
	if r.Package != "" {
		return r.Package + "." + r.Name
	}
	return r.Name
}

// runCompare diffs candidate against baseline on ns/op and reports every
// shared benchmark; it errors when any regresses beyond maxRegress
// percent after discounting uniform machine drift (see the package
// comment). Deliberately one-sided: speedups and new/retired benchmarks
// are informational only.
func runCompare(baselinePath, candidatePath string, maxRegress float64) error {
	base, err := loadDoc(baselinePath)
	if err != nil {
		return err
	}
	cand, err := loadDoc(candidatePath)
	if err != nil {
		return err
	}
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[benchKey(r)] = r
	}
	drift := medianDrift(base, cand)
	if drift > 1 {
		fmt.Printf("machine drift: candidate median %+.1f%% vs baseline; judging benchmarks relative to it\n", 100*(drift-1))
	}
	var regressed []string
	shared := 0
	for _, r := range cand.Benchmarks {
		b, ok := baseBy[benchKey(r)]
		if !ok {
			fmt.Printf("NEW        %-40s %12.0f ns/op\n", r.Name, r.NsPerOp)
			continue
		}
		shared++
		delete(baseBy, benchKey(r))
		if b.NsPerOp <= 0 {
			continue
		}
		deltaPct := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		relPct := 100 * (r.NsPerOp/(b.NsPerOp*drift) - 1)
		verdict := "ok"
		if relPct > maxRegress {
			verdict = "REGRESSION"
			regressed = append(regressed, fmt.Sprintf("%s %+.1f%%", r.Name, relPct))
		}
		fmt.Printf("%-10s %-40s %12.0f → %12.0f ns/op (%+.1f%%)\n", verdict, r.Name, b.NsPerOp, r.NsPerOp, deltaPct)
	}
	for _, r := range baseBy {
		fmt.Printf("RETIRED    %-40s %12.0f ns/op (baseline only)\n", r.Name, r.NsPerOp)
	}
	if shared == 0 {
		return fmt.Errorf("no shared benchmarks between %s and %s — the gate compared nothing", baselinePath, candidatePath)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s (drift-adjusted): %s",
			len(regressed), maxRegress, baselinePath, strings.Join(regressed, ", "))
	}
	fmt.Printf("gate OK: %d shared benchmarks within %.0f%% of %s\n", shared, maxRegress, baselinePath)
	return nil
}

// medianDrift estimates uniform machine drift as the median
// candidate/baseline ns-per-op ratio over shared benchmarks, floored at
// 1 so only slowdowns are discounted.
func medianDrift(base, cand Document) float64 {
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[benchKey(r)] = r
	}
	var ratios []float64
	for _, r := range cand.Benchmarks {
		if b, ok := baseBy[benchKey(r)]; ok && b.NsPerOp > 0 && r.NsPerOp > 0 {
			ratios = append(ratios, r.NsPerOp/b.NsPerOp)
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	sort.Float64s(ratios)
	m := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		m = (m + ratios[len(ratios)/2-1]) / 2
	}
	if m < 1 {
		return 1
	}
	return m
}
