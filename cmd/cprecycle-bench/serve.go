package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// runServe exposes the sweep engine over a small HTTP API (see the
// package comment for the endpoint list) and blocks serving it.
func runServe(addr string, eng *sweep.Engine) error {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	writeErr := func(w http.ResponseWriter, status int, err error) {
		writeJSON(w, status, map[string]string{"error": err.Error()})
	}

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, experiments.SweepExperiments())
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec sweep.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		// A checkpoint path names a server-side file; accepting one from
		// the network would hand remote clients an arbitrary-path write
		// primitive. Checkpointing stays a CLI feature.
		if spec.Checkpoint != "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("checkpoint paths are not accepted over HTTP"))
			return
		}
		// Jobs outlive the request: they are cancelled via DELETE, not by
		// the submitting connection closing.
		job, err := eng.Submit(context.Background(), spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Progress())
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := eng.Jobs()
		out := make([]sweep.Progress, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, j.Progress())
		}
		writeJSON(w, http.StatusOK, out)
	})

	jobFor := func(w http.ResponseWriter, r *http.Request) *sweep.Job {
		j := eng.Job(r.PathValue("id"))
		if j == nil {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		}
		return j
	}

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if j := jobFor(w, r); j != nil {
			writeJSON(w, http.StatusOK, j.Progress())
		}
	})

	mux.HandleFunc("GET /v1/jobs/{id}/table", func(w http.ResponseWriter, r *http.Request) {
		j := jobFor(w, r)
		if j == nil {
			return
		}
		p := j.Progress()
		switch p.State {
		case "running":
			writeJSON(w, http.StatusAccepted, p)
		case "failed":
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("%s", p.Error))
		default:
			res, err := j.Wait(r.Context())
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, res.Table.Render())
		}
	})

	// DELETE cancels a running job and removes it from the engine either
	// way, so a long-running service's job table can be pruned.
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j := jobFor(w, r)
		if j == nil {
			return
		}
		eng.Remove(j.ID)
		writeJSON(w, http.StatusOK, j.Progress())
	})

	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("sweep engine listening on %s\n", addr)
	return srv.ListenAndServe()
}
