package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/sweep/dist"
	"repro/internal/sweep/history"
	"repro/internal/sweep/store"
)

// The client-facing HTTP API is identical in both serve modes — a local
// engine (-serve) and a distributed coordinator (-coordinator) — so it is
// built once over this pair of interfaces, which sweep.Job and dist.Job
// both satisfy.

// serveJob is one job as the HTTP layer sees it.
type serveJob interface {
	Progress() sweep.Progress
	Subscribe() (past []sweep.PointEvent, ch <-chan sweep.PointEvent, cancel func())
	Done() <-chan struct{}
	Wait(ctx context.Context) (*sweep.Result, error)
}

// serveBackend is the job store behind the API.
type serveBackend interface {
	SubmitSpec(spec sweep.Spec) (serveJob, error)
	LookupJob(id string) (serveJob, bool)
	ListJobs() []serveJob
	RemoveJob(id string) bool
	Status() statusSnapshot
}

// engineBackend adapts the in-process sweep engine. hist, when the
// server has a store, records every accepted submission in the results
// history index.
type engineBackend struct {
	eng  *sweep.Engine
	hist *history.Index
}

func (b engineBackend) SubmitSpec(spec sweep.Spec) (serveJob, error) {
	// Jobs outlive the submitting request: they are cancelled via DELETE,
	// not by the connection closing.
	j, err := asJob(b.eng.Submit(context.Background(), spec))
	if err == nil {
		size, seed := b.eng.PoolIdentity()
		recordHistory(b.hist, spec, size, seed)
	}
	return j, err
}
func (b engineBackend) LookupJob(id string) (serveJob, bool) {
	j := b.eng.Job(id)
	return j, j != nil
}
func (b engineBackend) ListJobs() []serveJob {
	jobs := b.eng.Jobs()
	out := make([]serveJob, len(jobs))
	for i, j := range jobs {
		out[i] = j
	}
	return out
}
func (b engineBackend) RemoveJob(id string) bool { return b.eng.Remove(id) }
func (b engineBackend) Status() statusSnapshot   { return newStatus("engine", b.ListJobs()) }

// coordBackend adapts the distributed coordinator.
type coordBackend struct {
	c    *dist.Coordinator
	hist *history.Index
}

func (b coordBackend) SubmitSpec(spec sweep.Spec) (serveJob, error) {
	j, err := asJob(b.c.Submit(spec))
	if err == nil {
		size, seed := b.c.PoolIdentity()
		recordHistory(b.hist, spec, size, seed)
	}
	return j, err
}
func (b coordBackend) LookupJob(id string) (serveJob, bool) {
	j := b.c.Job(id)
	return j, j != nil
}
func (b coordBackend) ListJobs() []serveJob {
	jobs := b.c.Jobs()
	out := make([]serveJob, len(jobs))
	for i, j := range jobs {
		out[i] = j
	}
	return out
}
func (b coordBackend) RemoveJob(id string) bool { return b.c.Remove(id) }
func (b coordBackend) Status() statusSnapshot {
	s := newStatus("coordinator", b.ListJobs())
	fs := b.c.Stats()
	s.Fleet = &fs
	s.Workers = b.c.WorkerInfos()
	return s
}

// asJob converts a concrete (job, err) pair to the interface without the
// classic non-nil-interface-around-nil-pointer trap.
func asJob[J serveJob](j J, err error) (serveJob, error) {
	if err != nil {
		return nil, err
	}
	return j, nil
}

// recordHistory notes an accepted submission in the results-history
// index, when the server has one. Recording failures are logged, never
// surfaced: history is an observability sidecar, not part of the submit
// contract.
func recordHistory(hist *history.Index, spec sweep.Spec, poolSize int, poolSeed int64) {
	if hist == nil {
		return
	}
	if _, err := hist.Record(spec, poolSize, poolSeed, time.Now()); err != nil {
		lg.Warn("recording sweep history", "err", err)
	}
}

// writeJSON writes one JSON response via the shared api helpers;
// encoding errors (the client went away mid-body, a marshalling bug) are
// logged, not dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	if err := api.WriteJSON(w, status, v); err != nil {
		lg.Warn("writing response", "err", err)
	}
}

// writeErr answers with the shared /v1 error envelope
// ({"error":{"code","message"}}).
func writeErr(w http.ResponseWriter, status int, err error) {
	api.Error(w, status, err)
}

// apiMux builds the client API over a backend. hist, when non-nil,
// mounts the read-only GET /v1/history/* query surface (history.Handler)
// alongside the jobs API. Extra metric collectors (e.g. a coordinator's
// fleet gauges) are appended to /metrics.
func apiMux(b serveBackend, hist http.Handler, extras ...func(io.Writer)) *http.ServeMux {
	mux := http.NewServeMux()

	obsRoutes(mux, b.Status, extras...)

	if hist != nil {
		mux.Handle("/v1/history/", hist)
	}

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, experiments.SweepExperiments())
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec sweep.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		// Durability is server-side only: the store directory is named by
		// the -store flag, never by the spec, so remote clients hold no
		// path-write primitive. (The old "checkpoint" spec field is gone;
		// DisallowUnknownFields above now 400s any spec still sending it.)
		job, err := b.SubmitSpec(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Progress())
	})

	// Newest-submitted first, limit/cursor paginated: a long-running
	// service's job table can be large, and the recent jobs are the ones
	// dashboards ask for.
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		p, err := api.ParsePage(r, 100, 1000)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		jobs := b.ListJobs() // submission order
		out := make([]sweep.Progress, 0, len(jobs))
		for i := len(jobs) - 1; i >= 0; i-- {
			out = append(out, jobs[i].Progress())
		}
		writeJSON(w, http.StatusOK, api.Paginate(out, p))
	})

	jobFor := func(w http.ResponseWriter, r *http.Request) (serveJob, bool) {
		j, ok := b.LookupJob(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		}
		return j, ok
	}

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if j, ok := jobFor(w, r); ok {
			writeJSON(w, http.StatusOK, j.Progress())
		}
	})

	mux.HandleFunc("GET /v1/jobs/{id}/table", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFor(w, r)
		if !ok {
			return
		}
		p := j.Progress()
		switch p.State {
		case "running":
			writeJSON(w, http.StatusAccepted, p)
		case "failed":
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("%s", p.Error))
		default:
			res, err := j.Wait(r.Context())
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if _, err := fmt.Fprint(w, res.Table.Render()); err != nil {
				lg.Warn("writing table", "err", err)
			}
		}
	})

	// SSE stream: every completed point so far is replayed, then each
	// subsequent completion arrives as it lands, then a final terminal
	// event reports the job's outcome and the stream closes. Each point
	// event carries its sequence number as the SSE event id, and a
	// reconnecting consumer that presents the standard Last-Event-ID
	// header resumes mid-stream: points with seq <= Last-Event-ID are
	// not replayed. Schema:
	//
	//	id: 0
	//	event: point
	//	data: {"seq":0,"point":3,"n":2000,"ok":[1523,1892],"done_points":1,"points":30}
	//
	//	event: done
	//	data: {…sweep.Progress, "state":"done"|"failed"…}
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFor(w, r)
		if !ok {
			return
		}
		if _, ok := w.(http.Flusher); !ok {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
			return
		}
		rc := http.NewResponseController(w)
		lastSeq := -1
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			// A malformed id is ignored (full replay) rather than
			// rejected: the header is a resume hint, not a contract.
			if n, err := strconv.Atoi(v); err == nil {
				lastSeq = n
			}
		}
		past, ch, cancel := j.Subscribe()
		defer cancel()
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		// A write error means the subscriber went away; stop streaming
		// (the deferred cancel releases the subscription either way).
		emit := func(event, id string, v any) bool {
			data, err := json.Marshal(v)
			if err != nil {
				lg.Warn("marshalling event", "event", event, "err", err)
				return false
			}
			if id != "" {
				if _, err := fmt.Fprintf(w, "id: %s\n", id); err != nil {
					return false
				}
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
				return false
			}
			// Flush errors mean the client is gone: stop now instead of
			// spinning until the next event's write fails.
			return rc.Flush() == nil
		}
		point := func(ev sweep.PointEvent) bool {
			if ev.Seq <= lastSeq {
				return true // already delivered before the reconnect
			}
			return emit("point", strconv.Itoa(ev.Seq), ev)
		}
		for _, ev := range past {
			if !point(ev) {
				return
			}
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, open := <-ch:
				if !open {
					// Channel closed: the job settled (done or failed).
					emit("done", "", j.Progress())
					return
				}
				if !point(ev) {
					return
				}
			}
		}
	})

	// DELETE is cancel for running jobs and purge for finished ones, and
	// the two are kept distinct: cancelling a running job is always
	// allowed (it stops work), but a terminal job is a recorded result
	// and removing it must be an explicit ?purge=1 opt-in — without it
	// the request answers 409 so an automated cancel sweeping a job
	// table never silently discards finished results.
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFor(w, r)
		if !ok {
			return
		}
		p := j.Progress()
		if p.State != "running" && r.URL.Query().Get("purge") != "1" {
			api.ErrorCode(w, http.StatusConflict, "conflict", fmt.Sprintf(
				"job %s is %s: DELETE cancels running jobs; add ?purge=1 to remove a finished one", p.ID, p.State))
			return
		}
		b.RemoveJob(p.ID)
		writeJSON(w, http.StatusOK, j.Progress())
	})

	return mux
}

func listen(addr string, h http.Handler, what string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("%s listening on %s\n", what, addr)
	return srv.ListenAndServe()
}

// historyHandler builds the /v1/history surface when both halves exist;
// a store-less server simply has no history to serve.
func historyHandler(hist *history.Index, st *store.Store) http.Handler {
	if hist == nil || st == nil {
		return nil
	}
	return history.Handler(hist, st)
}

// runServe exposes an in-process sweep engine over the client API. hist
// (nil without -store) adds the results-history query surface.
func runServe(addr, token string, eng *sweep.Engine, hist *history.Index, st *store.Store) error {
	h := apiMux(engineBackend{eng: eng, hist: hist}, historyHandler(hist, st))
	return listen(addr, dist.BearerAuth(token, h), "sweep engine")
}

// runCoordinator exposes a distributed coordinator: the client API plus
// the /v1/dist/ worker tier. The client API is join-secret-guarded as a
// whole; the worker tier runs its own two-tier auth (join secret on
// registration and admin/fleet endpoints, per-worker minted tokens on
// the long-polling data plane) so it must NOT sit behind BearerAuth.
func runCoordinator(addr, token string, c *dist.Coordinator, hist *history.Index) error {
	root := http.NewServeMux()
	root.Handle("/v1/dist/", c.Handler())
	h := apiMux(coordBackend{c: c, hist: hist}, historyHandler(hist, c.Store()), c.WritePrometheus)
	root.Handle("/", dist.BearerAuth(token, h))
	return listen(addr, root, "sweep coordinator")
}
