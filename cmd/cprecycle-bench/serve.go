package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/sweep/dist"
)

// The client-facing HTTP API is identical in both serve modes — a local
// engine (-serve) and a distributed coordinator (-coordinator) — so it is
// built once over this pair of interfaces, which sweep.Job and dist.Job
// both satisfy.

// serveJob is one job as the HTTP layer sees it.
type serveJob interface {
	Progress() sweep.Progress
	Subscribe() (past []sweep.PointEvent, ch <-chan sweep.PointEvent, cancel func())
	Done() <-chan struct{}
	Wait(ctx context.Context) (*sweep.Result, error)
}

// serveBackend is the job store behind the API.
type serveBackend interface {
	SubmitSpec(spec sweep.Spec) (serveJob, error)
	LookupJob(id string) (serveJob, bool)
	ListJobs() []serveJob
	RemoveJob(id string) bool
	Status() statusSnapshot
}

// engineBackend adapts the in-process sweep engine.
type engineBackend struct{ eng *sweep.Engine }

func (b engineBackend) SubmitSpec(spec sweep.Spec) (serveJob, error) {
	// Jobs outlive the submitting request: they are cancelled via DELETE,
	// not by the connection closing.
	return asJob(b.eng.Submit(context.Background(), spec))
}
func (b engineBackend) LookupJob(id string) (serveJob, bool) {
	j := b.eng.Job(id)
	return j, j != nil
}
func (b engineBackend) ListJobs() []serveJob {
	jobs := b.eng.Jobs()
	out := make([]serveJob, len(jobs))
	for i, j := range jobs {
		out[i] = j
	}
	return out
}
func (b engineBackend) RemoveJob(id string) bool { return b.eng.Remove(id) }
func (b engineBackend) Status() statusSnapshot   { return newStatus("engine", b.ListJobs()) }

// coordBackend adapts the distributed coordinator.
type coordBackend struct{ c *dist.Coordinator }

func (b coordBackend) SubmitSpec(spec sweep.Spec) (serveJob, error) { return asJob(b.c.Submit(spec)) }
func (b coordBackend) LookupJob(id string) (serveJob, bool) {
	j := b.c.Job(id)
	return j, j != nil
}
func (b coordBackend) ListJobs() []serveJob {
	jobs := b.c.Jobs()
	out := make([]serveJob, len(jobs))
	for i, j := range jobs {
		out[i] = j
	}
	return out
}
func (b coordBackend) RemoveJob(id string) bool { return b.c.Remove(id) }
func (b coordBackend) Status() statusSnapshot {
	s := newStatus("coordinator", b.ListJobs())
	fs := b.c.Stats()
	s.Fleet = &fs
	s.Workers = b.c.WorkerInfos()
	return s
}

// asJob converts a concrete (job, err) pair to the interface without the
// classic non-nil-interface-around-nil-pointer trap.
func asJob[J serveJob](j J, err error) (serveJob, error) {
	if err != nil {
		return nil, err
	}
	return j, nil
}

// writeJSON writes one JSON response; encoding errors (the client went
// away mid-body, a marshalling bug) are logged, not dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		lg.Warn("writing response", "err", err)
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// apiMux builds the client API over a backend. Extra metric collectors
// (e.g. a coordinator's fleet gauges) are appended to /metrics.
func apiMux(b serveBackend, extras ...func(io.Writer)) *http.ServeMux {
	mux := http.NewServeMux()

	obsRoutes(mux, b.Status, extras...)

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, experiments.SweepExperiments())
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec sweep.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		// Durability is server-side only: the store directory is named by
		// the -store flag, never by the spec, so remote clients hold no
		// path-write primitive. (The old "checkpoint" spec field is gone;
		// DisallowUnknownFields above now 400s any spec still sending it.)
		job, err := b.SubmitSpec(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Progress())
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := b.ListJobs()
		out := make([]sweep.Progress, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, j.Progress())
		}
		writeJSON(w, http.StatusOK, out)
	})

	jobFor := func(w http.ResponseWriter, r *http.Request) (serveJob, bool) {
		j, ok := b.LookupJob(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		}
		return j, ok
	}

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if j, ok := jobFor(w, r); ok {
			writeJSON(w, http.StatusOK, j.Progress())
		}
	})

	mux.HandleFunc("GET /v1/jobs/{id}/table", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFor(w, r)
		if !ok {
			return
		}
		p := j.Progress()
		switch p.State {
		case "running":
			writeJSON(w, http.StatusAccepted, p)
		case "failed":
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("%s", p.Error))
		default:
			res, err := j.Wait(r.Context())
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if _, err := fmt.Fprint(w, res.Table.Render()); err != nil {
				lg.Warn("writing table", "err", err)
			}
		}
	})

	// SSE stream: every completed point so far is replayed, then each
	// subsequent completion arrives as it lands, then a final terminal
	// event reports the job's outcome and the stream closes. Each point
	// event carries its sequence number as the SSE event id, and a
	// reconnecting consumer that presents the standard Last-Event-ID
	// header resumes mid-stream: points with seq <= Last-Event-ID are
	// not replayed. Schema:
	//
	//	id: 0
	//	event: point
	//	data: {"seq":0,"point":3,"n":2000,"ok":[1523,1892],"done_points":1,"points":30}
	//
	//	event: done
	//	data: {…sweep.Progress, "state":"done"|"failed"…}
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFor(w, r)
		if !ok {
			return
		}
		if _, ok := w.(http.Flusher); !ok {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
			return
		}
		rc := http.NewResponseController(w)
		lastSeq := -1
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			// A malformed id is ignored (full replay) rather than
			// rejected: the header is a resume hint, not a contract.
			if n, err := strconv.Atoi(v); err == nil {
				lastSeq = n
			}
		}
		past, ch, cancel := j.Subscribe()
		defer cancel()
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		// A write error means the subscriber went away; stop streaming
		// (the deferred cancel releases the subscription either way).
		emit := func(event, id string, v any) bool {
			data, err := json.Marshal(v)
			if err != nil {
				lg.Warn("marshalling event", "event", event, "err", err)
				return false
			}
			if id != "" {
				if _, err := fmt.Fprintf(w, "id: %s\n", id); err != nil {
					return false
				}
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
				return false
			}
			// Flush errors mean the client is gone: stop now instead of
			// spinning until the next event's write fails.
			return rc.Flush() == nil
		}
		point := func(ev sweep.PointEvent) bool {
			if ev.Seq <= lastSeq {
				return true // already delivered before the reconnect
			}
			return emit("point", strconv.Itoa(ev.Seq), ev)
		}
		for _, ev := range past {
			if !point(ev) {
				return
			}
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, open := <-ch:
				if !open {
					// Channel closed: the job settled (done or failed).
					emit("done", "", j.Progress())
					return
				}
				if !point(ev) {
					return
				}
			}
		}
	})

	// DELETE cancels a running job and removes it from the backend either
	// way, so a long-running service's job table can be pruned.
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFor(w, r)
		if !ok {
			return
		}
		p := j.Progress()
		b.RemoveJob(p.ID)
		writeJSON(w, http.StatusOK, j.Progress())
	})

	return mux
}

func listen(addr string, h http.Handler, what string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("%s listening on %s\n", what, addr)
	return srv.ListenAndServe()
}

// runServe exposes an in-process sweep engine over the client API.
func runServe(addr, token string, eng *sweep.Engine) error {
	return listen(addr, dist.BearerAuth(token, apiMux(engineBackend{eng})), "sweep engine")
}

// runCoordinator exposes a distributed coordinator: the client API plus
// the /v1/dist/ worker tier. The client API is join-secret-guarded as a
// whole; the worker tier runs its own two-tier auth (join secret on
// registration and admin/fleet endpoints, per-worker minted tokens on
// the long-polling data plane) so it must NOT sit behind BearerAuth.
func runCoordinator(addr, token string, c *dist.Coordinator) error {
	root := http.NewServeMux()
	root.Handle("/v1/dist/", c.Handler())
	root.Handle("/", dist.BearerAuth(token, apiMux(coordBackend{c}, c.WritePrometheus)))
	return listen(addr, root, "sweep coordinator")
}
