package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/sweep/dist"
)

// TestServeAPI exercises the client API over the in-process engine
// backend: bearer auth, job submission, the SSE stream (every point then
// a terminal event), the rendered table, and the rejection of specs
// that try to smuggle server-side paths.
func TestServeAPI(t *testing.T) {
	eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2})
	defer eng.Close()
	srv := httptest.NewServer(dist.BearerAuth("tok", apiMux(engineBackend{eng: eng}, nil)))
	defer srv.Close()

	get := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := get("/v1/jobs", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless list: HTTP %d, want 401", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	post := func(body string) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer tok")
		req.Header.Set("Content-Type", "application/json")
		return http.DefaultClient.Do(req)
	}

	// Server-side paths must be refused over the network: the legacy
	// "checkpoint" spec field no longer exists, so a client still sending
	// one trips DisallowUnknownFields and gets a 400.
	resp, err := post(`{"experiment":"fig8","packets":2,"psdu_bytes":60,"checkpoint":"/etc/pwned"}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("path-smuggling spec: HTTP %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = post(`{"experiment":"fig8","packets":3,"psdu_bytes":60,"seed":3,"axis":[-10,-20]}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	var prog sweep.Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if prog.Points != 6 {
		t.Fatalf("submitted job plans %d points, want 6", prog.Points)
	}

	// The SSE stream must deliver one point event per point and then the
	// terminal event, regardless of when the consumer connects.
	resp = get("/v1/jobs/"+prog.ID+"/events", "tok")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	var points, dones int
	var final sweep.Progress
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "point":
				points++
			case "done":
				dones++
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if points != 6 || dones != 1 {
		t.Fatalf("stream delivered %d point events and %d terminal events, want 6 and 1", points, dones)
	}
	if final.State != "done" || final.DonePoints != 6 {
		t.Fatalf("terminal event %+v", final)
	}

	resp = get("/v1/jobs/"+prog.ID+"/table", "tok")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table: HTTP %d", resp.StatusCode)
	}
	var table strings.Builder
	sc2 := bufio.NewScanner(resp.Body)
	for sc2.Scan() {
		table.WriteString(sc2.Text())
		table.WriteByte('\n')
	}
	if !strings.HasPrefix(table.String(), "== Fig 8") {
		t.Fatalf("table output starts %q", strings.SplitN(table.String(), "\n", 2)[0])
	}
}

// TestServeSSELastEventID pins the SSE resume contract: every point event
// carries its seq as the event id, and a reconnect presenting
// Last-Event-ID receives only the points after it (plus the terminal
// event) instead of the full per-point replay. A malformed id falls back
// to full replay.
func TestServeSSELastEventID(t *testing.T) {
	eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2})
	defer eng.Close()
	srv := httptest.NewServer(apiMux(engineBackend{eng: eng}, nil))
	defer srv.Close()

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs",
		strings.NewReader(`{"experiment":"fig8","packets":3,"psdu_bytes":60,"seed":3,"axis":[-10,-20]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var prog sweep.Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// stream connects with the given Last-Event-ID header and returns the
	// ids of the point events received plus the number of terminal events.
	stream := func(lastID string) (ids []string, dones int) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+prog.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events: HTTP %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		event, id := "", ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				switch event {
				case "point":
					ids = append(ids, id)
				case "done":
					dones++
				}
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return ids, dones
	}

	// First consumer: full replay, ids 0..5 in order.
	ids, dones := stream("")
	if len(ids) != 6 || dones != 1 {
		t.Fatalf("full stream: %d point events (%v), %d terminal", len(ids), ids, dones)
	}
	for i, id := range ids {
		if id != strconv.Itoa(i) {
			t.Fatalf("event %d carried id %q", i, id)
		}
	}

	// Reconnect mid-stream: only the points after Last-Event-ID replay.
	ids, dones = stream("3")
	if len(ids) != 2 || ids[0] != "4" || ids[1] != "5" || dones != 1 {
		t.Fatalf("resume after 3: ids %v, %d terminal", ids, dones)
	}

	// Reconnect at the end: no replay, just the terminal event.
	ids, dones = stream("5")
	if len(ids) != 0 || dones != 1 {
		t.Fatalf("resume after 5: ids %v, %d terminal", ids, dones)
	}

	// A malformed id is ignored: full replay.
	ids, _ = stream("not-a-number")
	if len(ids) != 6 {
		t.Fatalf("malformed Last-Event-ID: %d point events", len(ids))
	}
}

// TestServeMetricsAndStatus checks the observability surface of the
// engine backend: /metrics serves valid-looking Prometheus text with
// the engine families present, and /v1/status returns a coherent
// snapshot after a job has run.
func TestServeMetricsAndStatus(t *testing.T) {
	eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2})
	defer eng.Close()
	mux := apiMux(engineBackend{eng: eng}, nil)

	job, err := eng.Submit(context.Background(), sweep.Spec{
		Experiment: "fig8", Packets: 2, PSDUBytes: 60, Seed: 3, Axis: []float64{-10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE cpr_sweep_packets_total counter",
		"# TYPE cpr_sweep_stage_seconds histogram",
		`cpr_sweep_stage_seconds_bucket{le="+Inf",stage="decode"}`,
		"# TYPE cpr_sweep_jobs_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics body missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/status: HTTP %d", rec.Code)
	}
	var s statusSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Mode != "engine" {
		t.Errorf("status mode %q, want engine", s.Mode)
	}
	if s.Jobs.Done != 1 || s.Jobs.Running != 0 {
		t.Errorf("status jobs %+v, want 1 done", s.Jobs)
	}
	if s.Metrics["cpr_sweep_packets_total"] <= 0 {
		t.Errorf("status metrics cpr_sweep_packets_total = %v, want > 0", s.Metrics["cpr_sweep_packets_total"])
	}
	if s.Runtime.GoVersion == "" || s.UptimeSec <= 0 {
		t.Errorf("status runtime %+v uptime %v", s.Runtime, s.UptimeSec)
	}
}

// TestServeCoordinatorStatusHasFleet checks the coordinator backend's
// status snapshot carries the fleet section.
func TestServeCoordinatorStatusHasFleet(t *testing.T) {
	c, err := dist.New(dist.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := coordBackend{c: c}.Status()
	if s.Mode != "coordinator" {
		t.Errorf("status mode %q, want coordinator", s.Mode)
	}
	if s.Fleet == nil {
		t.Fatal("coordinator status has no fleet section")
	}
	if s.Fleet.WorkersActive != 0 || s.Fleet.JobsRunning != 0 {
		t.Errorf("idle coordinator fleet stats %+v", *s.Fleet)
	}
}

// sseFailFlushWriter implements http.ResponseWriter, http.Flusher and
// FlushError; every flush fails, simulating a disconnected SSE client
// whose writes still land in the kernel buffer.
type sseFailFlushWriter struct {
	hdr     http.Header
	code    int
	writes  int
	flushes int
}

func (w *sseFailFlushWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = make(http.Header)
	}
	return w.hdr
}
func (w *sseFailFlushWriter) Write(p []byte) (int, error) { w.writes++; return len(p), nil }
func (w *sseFailFlushWriter) WriteHeader(code int)        { w.code = code }
func (w *sseFailFlushWriter) Flush()                      {}
func (w *sseFailFlushWriter) FlushError() error {
	w.flushes++
	return errors.New("client gone")
}

// TestServeSSEStopsOnFlushError pins the disconnect fix: when the
// client is gone (every flush fails), the job event stream ends at the
// first failed flush instead of replaying the remaining points — or
// worse, parking in the live-tail select until the next point lands.
func TestServeSSEStopsOnFlushError(t *testing.T) {
	eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2})
	defer eng.Close()
	mux := apiMux(engineBackend{eng: eng}, nil)

	job, err := eng.Submit(context.Background(), sweep.Spec{
		Experiment: "fig8", Packets: 2, PSDUBytes: 60, Seed: 3, Axis: []float64{-10, -20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	w := &sseFailFlushWriter{}
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+job.Progress().ID+"/events", nil)
	mux.ServeHTTP(w, req)
	if w.flushes != 1 {
		t.Errorf("flush attempts = %d, want 1 (stream must end at the first failed flush)", w.flushes)
	}
	// One replayed point is two writes (id line, then event+data); the
	// second point must never be written.
	if w.writes != 2 {
		t.Errorf("event writes = %d, want 2 (id + body of the first point only)", w.writes)
	}
}
