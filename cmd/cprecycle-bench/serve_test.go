package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/sweep/dist"
)

// TestServeAPI exercises the client API over the in-process engine
// backend: bearer auth, job submission, the SSE stream (every point then
// a terminal event), the rendered table, and the checkpoint rejection.
func TestServeAPI(t *testing.T) {
	eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2})
	defer eng.Close()
	srv := httptest.NewServer(dist.BearerAuth("tok", apiMux(engineBackend{eng})))
	defer srv.Close()

	get := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := get("/v1/jobs", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless list: HTTP %d, want 401", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	post := func(body string) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer tok")
		req.Header.Set("Content-Type", "application/json")
		return http.DefaultClient.Do(req)
	}

	// Checkpoint paths must be refused over the network.
	resp, err := post(`{"experiment":"fig8","packets":2,"psdu_bytes":60,"checkpoint":"/etc/pwned"}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("checkpoint spec: HTTP %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = post(`{"experiment":"fig8","packets":3,"psdu_bytes":60,"seed":3,"axis":[-10,-20]}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	var prog sweep.Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if prog.Points != 6 {
		t.Fatalf("submitted job plans %d points, want 6", prog.Points)
	}

	// The SSE stream must deliver one point event per point and then the
	// terminal event, regardless of when the consumer connects.
	resp = get("/v1/jobs/"+prog.ID+"/events", "tok")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	var points, dones int
	var final sweep.Progress
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "point":
				points++
			case "done":
				dones++
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if points != 6 || dones != 1 {
		t.Fatalf("stream delivered %d point events and %d terminal events, want 6 and 1", points, dones)
	}
	if final.State != "done" || final.DonePoints != 6 {
		t.Fatalf("terminal event %+v", final)
	}

	resp = get("/v1/jobs/"+prog.ID+"/table", "tok")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table: HTTP %d", resp.StatusCode)
	}
	var table strings.Builder
	sc2 := bufio.NewScanner(resp.Body)
	for sc2.Scan() {
		table.WriteString(sc2.Text())
		table.WriteByte('\n')
	}
	if !strings.HasPrefix(table.String(), "== Fig 8") {
		t.Fatalf("table output starts %q", strings.SplitN(table.String(), "\n", 2)[0])
	}
}
