// Command cprecycle-bench regenerates the paper's tables and figures at
// configurable fidelity. Each experiment prints an aligned text table whose
// rows mirror the corresponding figure's series (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// The packet-success-rate sweeps (fig5, fig8-fig12, fig14, the ablations
// and delay-spread) run on the sharded sweep engine (internal/sweep): each
// measurement point is split into packet-range shards scheduled across a
// bounded worker pool, with segment plans and per-packet preamble
// trainings shared across shards. Engine sharding is bit-identical to the
// sequential path at the same flags, so default invocations reproduce the
// regression-pinned numbers exactly. -pool additionally shares a
// pre-encoded interferer waveform pool across all points and experiments
// of the invocation: much faster and deterministic per seed, but it
// replaces the per-tile payload draws with pool picks, so pooled tables
// are statistically equivalent rather than packet-identical to the
// default path. Analysis experiments (table1, fig4*, fig6*, fig13) always
// run directly.
//
// Usage:
//
//	cprecycle-bench -experiment fig8 -packets 2000 -bytes 400
//	cprecycle-bench -experiment all -packets 200
//	cprecycle-bench -experiment fig8 -store results/         # resumable
//	cprecycle-bench -serve :8080                             # HTTP service
//	cprecycle-bench -coordinator :8080 -store jobs/          # distributed
//	cprecycle-bench -worker -join http://host:8080           # …its workers
//	cprecycle-bench -submit -join http://host:8080 -experiment fig8
//	cprecycle-bench -fleet -join http://host:8080            # list workers
//	cprecycle-bench -drain w1 -join http://host:8080         # graceful scale-down
//	cprecycle-bench -supervisor -join http://host:8080       # self-scaling fleet
//	cprecycle-bench -list
//
// # The result store
//
// -store DIR names a content-addressed result store (see
// internal/sweep/store for the binary format): as each measurement
// point completes, its tally is persisted under a key derived from the
// sweep plan's fingerprint, the pool identity and the point's identity.
// Re-running any sweep over the same directory restores every stored
// point without recomputing it — a kill -9 mid-sweep loses at most the
// points in flight, and a finished sweep replays entirely from the
// store. Because records are content-addressed, one directory serves
// every experiment, seed and fidelity safely ('-experiment all -store
// results/' just works); changing any spec knob simply misses the store
// and computes fresh. Stored tallies are bit-identical to a direct run,
// so resumed tables match uninterrupted ones byte for byte.
//
// Resumable quickstart (interrupt and re-run at will):
//
//	$ cprecycle-bench -experiment fig8 -packets 2000 -store results/
//	^C                                      # or kill -9, power loss, …
//	$ cprecycle-bench -experiment fig8 -packets 2000 -store results/
//	                                        # finished points restore, rest resume
//
// -store-max-bytes N puts the store on a size budget: when a Put pushes
// it past N bytes, whole least-recently-hit segments are evicted (LRU by
// last store hit, cpr_store_evicted_* counters) — except segments whose
// records a live job still references, which are pinned until the job
// settles. An evicted point simply recomputes on its next sweep; a
// stored sweep whose points were evicted reports the exact gaps on its
// history table endpoint instead of fabricating a table.
//
// Every run against a store is also recorded in a results-history index
// (history.jsonl beside the segments): experiment, plan fingerprint,
// normalised spec, pool identity and submission time. The read-only
// GET /v1/history/* endpoints above answer from this index plus the
// store's in-memory key index — listing past sweeps, re-assembling any
// fully-stored sweep into its exact table without re-running a packet,
// and diffing two sweeps point-by-point. History quickstart:
//
//	$ cprecycle-bench -serve :8080 -store results/
//	$ curl :8080/v1/history/experiments
//	$ curl :8080/v1/history/sweeps?experiment=fig8
//	$ curl :8080/v1/history/sweeps/$FP/table      # byte-identical to the live run
//	$ curl ':8080/v1/history/diff?a=FP1&b=FP2'    # per-point tally deltas
//
// Migrating from pre-store versions: point -store at the old -journal
// directory. Any legacy JSON-lines journals (*.jsonl) found there are
// imported into the store once and renamed *.jsonl.migrated; unparsable
// files are left untouched and logged. The deprecated -journal flag is
// an alias for -store during the transition.
//
// Serve mode (-serve ADDR) exposes an in-process engine over HTTP;
// coordinator mode (-coordinator ADDR) serves the identical client API
// but executes nothing itself, handing point-range leases to -worker
// processes instead. The complete /v1 surface (jobs + history + worker
// tier + observability — the history and dist endpoints appear only on
// servers run with -store / -coordinator respectively):
//
//	POST   /v1/jobs        submit a sweep.Spec (JSON body) → 202 {"id":"j1",…}
//	GET    /v1/jobs        jobs' progress, newest-submitted first;
//	                       ?limit= & ?cursor= paginate ({"items":[…],
//	                       "next_cursor":"…"}; an exhausted listing has
//	                       no next_cursor)
//	GET    /v1/jobs/{id}   one job's progress
//	GET    /v1/jobs/{id}/table   the rendered table (202 while running)
//	GET    /v1/jobs/{id}/events  SSE stream: one "point" event per
//	                             completed point (completed ones replay
//	                             first), then one terminal "done" event
//	                             carrying the final progress/state. Each
//	                             point event's SSE id is its seq; a
//	                             reconnect presenting Last-Event-ID
//	                             resumes after that seq instead of
//	                             replaying every completed point
//	DELETE /v1/jobs/{id}   cancel-vs-purge: a running job is cancelled
//	                       and removed (200); a finished job is a
//	                       recorded result, so removing it demands an
//	                       explicit ?purge=1 — without it the request is
//	                       refused with 409; unknown ids 404
//	GET    /v1/experiments list accepted experiment ids
//
//	GET    /v1/history/experiments       per-experiment history: distinct
//	                                     sweeps, total runs, the latest
//	                                     plan fingerprint
//	GET    /v1/history/sweeps            recorded sweeps, newest first;
//	                                     ?experiment= ?fingerprint=
//	                                     ?since=UNIX ?until=UNIX filter,
//	                                     ?limit=/?cursor= paginate
//	GET    /v1/history/sweeps/{fp}/table the stored sweep re-assembled
//	                                     into its table without re-running
//	                                     a packet — byte-identical to the
//	                                     live /v1/jobs/{id}/table output;
//	                                     409 names the exact missing
//	                                     point indices when the store
//	                                     holds only part of the sweep
//	GET    /v1/history/diff?a=FP&b=FP    per-point tally deltas between
//	                                     two recorded sweeps (points
//	                                     matched by identity; mismatched
//	                                     point sets reported explicitly
//	                                     as only_a/only_b)
//
//	POST   /v1/dist/register             join secret → worker token
//	POST   /v1/dist/lease                long-poll for a point-range lease
//	POST   /v1/dist/result | /heartbeat | /deregister   worker data plane
//	GET    /v1/dist/workers              registry, newest first, paginated
//	POST   /v1/dist/workers/{id}/drain | /revoke        fleet admin
//	GET    /v1/dist/events               fleet lifecycle SSE stream
//
//	GET    /v1/status      one-shot JSON dashboard: mode, uptime, runtime
//	                       stats, job summary, fleet stats (coordinator)
//	                       and a flat dump of every registered metric
//	GET    /metrics        Prometheus text exposition (0.0.4)
//	GET    /debug/pprof/   live profiling (heap, profile, trace, …)
//
// Every endpoint answers failures with one envelope —
// {"error":{"code":"not_found","message":"no job \"j9\""}}, Content-Type
// application/json — with stable snake_case codes derived from the HTTP
// status (see internal/api). The spec JSON mirrors sweep.Spec:
// {"experiment":"fig8","packets":2000,"psdu_bytes":400,"seed":1,
// "axis":[…],"receivers":[…],"mcs":[…],"pool":true}. Specs never name
// server-side paths; durability comes from the server's own -store flag
// in both serve and coordinator mode.
//
// # Distributed mode
//
// Workers join the fleet with POST /v1/dist/register, exchanging the
// join secret (-token) for a per-worker revocable bearer token, then
// long-poll POST /v1/dist/lease for work: the coordinator parks the
// request (bounded, ~30s) and wakes it the moment work appears — no
// fixed-interval polling anywhere. Leases are sized adaptively from the
// job's observed per-point latency toward a wall-clock target (~4× the
// heartbeat interval); -lease-points pins a fixed size instead. Workers
// run leases on a local sweep engine (with their own waveform pool built
// from the lease's pool identity), heartbeat on /v1/dist/heartbeat, and
// report per-point tallies on /v1/dist/result, retrying transient
// transport failures with capped jittered backoff. A lease that misses
// its TTL — worker crash, kill -9, partition — is re-issued; results are
// idempotent and tallies deterministic, so duplicated work merges
// bit-identically. Leases carry the sweep plan's fingerprint and workers
// refuse leases their own build plans differently, so coordinator/worker
// version skew is rejected instead of silently blended. The determinism
// contract (pinned by internal/sweep/dist chaos tests): a coordinator
// plus any number of workers — under transport faults, kills, drains and
// revocations — renders the byte-identical table a single in-process
// engine produces for the same spec and seed. See internal/sweep/dist
// for the full protocol.
//
// -token S sets the fleet join secret: the coordinator requires it on
// registration and admin calls (and -serve requires it on everything),
// -worker presents it to register, and -submit/-fleet/-drain/-revoke
// send it. -store DIR makes coordinator jobs durable — completed points
// land in the shared content-addressed store and a small JSON manifest
// per job records its spec, so a restarted (even kill -9'd) coordinator
// rebuilds every job from the store index and re-leases only the
// missing points (workers notice the restart via 401 and re-register on
// their own). Because the store is content-addressed, resubmitting an
// identical sweep — same process or weeks later — completes from the
// store without granting a single lease, and a point another job
// already computed is never sent to the fleet twice.
//
// Two-machine quickstart (machine A coordinates and serves results,
// machine B computes; add workers anywhere for more throughput):
//
//	A$ cprecycle-bench -coordinator :8080 -store /var/lib/cpr -token S
//	B$ cprecycle-bench -worker -join http://A:8080 -token S
//	A$ cprecycle-bench -submit -join http://localhost:8080 -token S \
//	       -experiment fig8 -packets 2000 -bytes 400
//
// -submit streams per-point progress to stderr as SSE events arrive and
// prints the final table to stdout, exactly like a local run of the same
// experiment; if the stream drops mid-sweep it reconnects with
// Last-Event-ID and resumes where it left off.
//
// Scale-down is graceful: either signal the worker —
//
//	B$ kill -TERM <worker pid>    # finish in-flight lease, deregister, exit
//
// — or drive it from the coordinator side:
//
//	A$ cprecycle-bench -fleet -join http://localhost:8080 -token S
//	w1  B:4242  active    leases=1  granted=12  age=1h2m
//	A$ cprecycle-bench -drain w1 -join http://localhost:8080 -token S
//
// Either way the worker completes its in-flight lease (the result is
// accepted), takes no new ones, and deregisters — nothing waits for a
// lease TTL. -mem-budget N (MiB) makes a worker police itself: it
// samples its own heap via runtime/metrics and triggers the same
// graceful drain when live heap exceeds the budget, trading capacity
// for not meeting the kernel's OOM killer. A slow worker whose lease
// was re-issued elsewhere may still deliver its result late; the
// coordinator accepts the first completion of each point, counts the
// rest as dedupes, and cancels redundant in-flight leases whose points
// have all completed elsewhere. -revoke w1 is the abrupt variant for a
// misbehaving worker:
// its token dies immediately, its leases re-queue, and any late result
// it sends is refused. GET /v1/dist/events (join-secret auth) streams
// fleet-wide lifecycle events (worker join/drain/revoke/leave, lease
// grant/expiry, job submit/done) as SSE with Last-Event-ID resume, for
// dashboards.
//
// # Running a self-scaling fleet
//
// -supervisor turns the manual scale-up/scale-down above into a control
// loop (internal/sweep/supervise): the supervisor watches the
// coordinator's queue depth and per-point latency estimate and spawns
// or drains local -worker processes so the pending queue drains in
// roughly half a minute, between -min-workers and -max-workers:
//
//	A$ cprecycle-bench -coordinator :8080 -store /var/lib/cpr -token S
//	A$ cprecycle-bench -supervisor -join http://localhost:8080 -token S \
//	       -max-workers 8 -worker-logs /var/log/cpr -obs :9091
//	A$ cprecycle-bench -submit -join http://localhost:8080 -token S \
//	       -experiment fig8 -packets 2000 -bytes 400
//
// Submitting work scales the fleet up (the supervisor reacts to the
// fleet event stream, not a polling interval); an idle fleet scales
// back down to -min-workers, 0 by default. Spawned workers are this
// binary re-invoked in -worker mode — -token, -workers, -shard,
// -mem-budget, -cpu-budget and the logging flags propagate — each
// logging to <worker-logs>/<name>.log with its pid in <name>.pid.
// Scale-down always uses graceful drain, never revocation, so
// completed work is never re-queued by the autoscaler.
//
// The supervisor also heals the fleet. A worker process that dies is
// replaced after a jittered exponential backoff; a worker that crashes
// repeatedly (-max-workers instant-exit loops, a bad binary) trips a
// circuit breaker that quarantines spawning for a few minutes instead
// of thrashing. A worker that heartbeats dutifully while its lease
// makes zero point progress — deadlocked, SIGSTOPped, livelocked; the
// failure TTLs cannot see — is drained after -stuck-after, and revoked
// if it ignores the drain, re-queueing its lease (`-fleet` shows each
// worker's progress age in the prog= column). The supervisor itself is
// stateless: kill -9 it, restart it, and it re-adopts the workers it
// finds registered — never spawning duplicates — because the
// coordinator's registry and event stream are the only state it reads.
// SIGTERM drains every worker it spawned, then exits; workers it
// merely adopted keep running.
//
// -cpu-budget N (cores) is the CPU twin of -mem-budget: the worker
// samples its own process CPU time (/proc/self/stat on Linux, the Go
// runtime's scheduler accounting elsewhere) and gracefully self-drains
// when its sustained rate exceeds the budget — capacity handed back
// before the kernel or a cgroup throttle does it un-gracefully.
//
// # Observability
//
// Every serving mode exposes GET /metrics (Prometheus text format,
// version 0.0.4) and GET /debug/pprof/ behind the same bearer auth as
// the rest of its API. Metric families follow a fixed naming scheme:
// cpr_sweep_* for the engine hot path (per-stage latency histograms
// cpr_sweep_stage_seconds{stage="tx"|"observe"|"train"|"decode"},
// per-packet cpr_sweep_packet_seconds, cpr_sweep_packets_total, job
// counters cpr_sweep_jobs_total{state=…}), cpr_dist_* for the
// coordinator's fleet view (workers by state, in-flight leases, queue
// depth, the adaptive lease estimate, expiry/re-queue/revocation
// counters, SSE subscriber gauges), cpr_store_* for the result store
// (hits, misses, dedupes, late_accepts, corrupt_records and the
// evicted_segments/records/bytes GC counters), cpr_history_* for the
// results-history index (runs recorded, queries, table re-assemblies,
// diffs) and cpr_dist_worker_* for a
// worker's own lease/poll/retry/re-registration counters. Workers have
// no API address of their own, so -obs ADDR starts a metrics side
// server on the worker:
//
//	B$ cprecycle-bench -worker -join http://A:8080 -token S -obs :9090
//	$ curl -H "Authorization: Bearer S" http://B:9090/metrics
//	$ go tool pprof -H "Authorization: Bearer S" http://B:9090/debug/pprof/profile
//
// GET /v1/status returns the same state as one JSON document (plus
// process runtime stats), which is what `cprecycle-bench -fleet`
// renders as its dashboard header. Logging is structured (log/slog)
// with component/job/worker/lease attributes; -log-level sets the
// threshold and -log-json switches the encoding for log shippers.
//
// The metrics layer (internal/obs) is allocation-free on the hot path
// — registration happens once at init, updates are atomic adds — so
// instrumented sweeps stay bit-identical and within noise of
// uninstrumented throughput (see BenchmarkPacketMetrics).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/sweep/dist"
	"repro/internal/sweep/history"
	"repro/internal/sweep/store"
	"repro/internal/sweep/supervise"
)

// lg is the process logger, reconfigured in main from -log-level and
// -log-json; the default keeps package-main helpers usable from tests.
var lg = slog.New(slog.NewTextHandler(os.Stderr, nil))

type runner func(experiments.Options) (*experiments.Table, error)

// registry maps every experiment id to its direct runner; the sweep
// experiments among them (experiments.IsSweepExperiment) are routed
// through the engine unless -direct is set.
func registry() map[string]runner {
	return map[string]runner{
		"table1":            func(experiments.Options) (*experiments.Table, error) { return experiments.Table1(), nil },
		"fig4a":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig4a(o.Seed) },
		"fig4b":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig4b(o.Seed) },
		"fig4c":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig4c(o.Seed) },
		"fig5":              experiments.Fig5,
		"fig6a":             func(experiments.Options) (*experiments.Table, error) { return experiments.Fig6a() },
		"fig6b":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig6b(o.Seed) },
		"fig8":              experiments.Fig8,
		"fig9":              experiments.Fig9,
		"fig10":             experiments.Fig10,
		"fig11":             experiments.Fig11,
		"fig12":             experiments.Fig12,
		"fig13":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig13(o.Seed, 15) },
		"fig14":             experiments.Fig14,
		"ablation-decision": experiments.AblationDecision,
		"delay-spread":      experiments.DelaySpreadSweep,
		"ablation-soft":     experiments.AblationSoftDecoding,
	}
}

func main() {
	var (
		name    = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		packets = flag.Int("packets", 2000, "packets per measurement point (paper: 2000)")
		bytes   = flag.Int("bytes", 400, "PSDU size in bytes (paper: 400)")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")

		direct   = flag.Bool("direct", false, "run sweeps on the sequential path without the engine or waveform pool")
		pool     = flag.Bool("pool", false, "share pre-encoded interferer waveforms across sweep points (much faster, deterministic per seed, statistically equivalent — but not packet-identical to the default tx draws)")
		poolSize = flag.Int("pool-size", 0, "pre-encoded waveforms per (grid, MCS); 0 = default")
		workers  = flag.Int("workers", 0, "engine worker goroutines; 0 = GOMAXPROCS")
		shardPk  = flag.Int("shard", 0, "packets per engine shard; 0 = default")
		storeDir = flag.String("store", "", "content-addressed result store directory: sweep experiments checkpoint per-point tallies here and resume from them; legacy *.jsonl journals found in the directory are migrated once")
		storeMax = flag.Int64("store-max-bytes", 0, "result store size budget in bytes: when Puts push the store past it, least-recently-hit segments are evicted (records pinned by live jobs are never evicted); 0 = unlimited")
		serve    = flag.String("serve", "", "serve the sweep engine over HTTP on this address instead of running experiments")

		coordAddr = flag.String("coordinator", "", "serve a distributed sweep coordinator on this address (no local compute; workers join with -worker -join)")
		workerFlg = flag.Bool("worker", false, "run as a distributed sweep worker polling the -join coordinator")
		submitFlg = flag.Bool("submit", false, "submit the selected sweep experiment to the -join server, stream per-point progress and print the table")
		join      = flag.String("join", "", "server base URL (e.g. http://host:8080) for -worker, -submit and the fleet admin flags")
		token     = flag.String("token", "", "fleet join secret: enforced by -serve/-coordinator when set, presented by -worker/-submit and the fleet admin flags")
		journal   = flag.String("journal", "", "deprecated alias for -store (the JSON-lines journal was replaced by the binary result store)")
		memBudget = flag.Int64("mem-budget", 0, "worker heap budget in MiB: the worker samples runtime/metrics heap use and gracefully self-drains when it exceeds the budget; 0 = unlimited")
		cpuBudget = flag.Float64("cpu-budget", 0, "worker CPU budget in cores: the worker samples its own process CPU time (/proc/self/stat, falling back to runtime metrics) and gracefully self-drains when the rate stays over budget; 0 = unlimited")
		wkrName   = flag.String("worker-name", "", "worker: self-reported fleet name (default host:pid); the supervisor names its spawns with this")
		longPoll  = flag.Duration("long-poll", 0, "coordinator: park lease requests up to this long waiting for work; 0 = default (30s)")
		leasePts  = flag.Int("lease-points", 0, "pin every worker lease to this many plan points; 0 = adaptive sizing toward -lease-target of wall-clock work")
		leaseTgt  = flag.Duration("lease-target", 0, "wall-clock work an adaptive lease aims for; 0 = default (4× heartbeat interval)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "re-issue a lease after this long without a heartbeat; 0 = default (30s)")

		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		obsAddr  = flag.String("obs", "", "worker/supervisor: serve /metrics, /debug/pprof and /v1/status on this address (guarded by -token; -serve and -coordinator expose them on their API address)")

		supFlg     = flag.Bool("supervisor", false, "run the autoscaling fleet supervisor against the -join coordinator: spawn and drain local -worker processes to track queue demand, detect stuck leases, quarantine crash loops")
		minWorkers = flag.Int("min-workers", 0, "supervisor: never scale the fleet below this many workers (0 lets an idle fleet scale to zero)")
		maxWorkers = flag.Int("max-workers", 4, "supervisor: ceiling on concurrently running workers")
		workerLogs = flag.String("worker-logs", "", "supervisor: directory for spawned workers' per-worker .log and .pid files (empty: workers inherit the supervisor's stdout/stderr, no pid files)")
		stuckAfter = flag.Duration("stuck-after", 0, "supervisor: drain a worker whose lease makes zero point progress for this long, escalating to revocation if the drain is ignored; 0 = default (2m)")

		fleetFlg = flag.Bool("fleet", false, "list the -join coordinator's registered workers and exit")
		drainID  = flag.String("drain", "", "gracefully drain worker ID on the -join coordinator (finish in-flight lease, deregister) and exit")
		revokeID = flag.String("revoke", "", "revoke worker ID on the -join coordinator (cut it off, re-queue its leases now) and exit")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bad -log-level %q (want debug, info, warn or error)\n", *logLevel)
		os.Exit(1)
	}
	hopts := &slog.HandlerOptions{Level: level}
	if *logJSON {
		lg = slog.New(slog.NewJSONHandler(os.Stderr, hopts))
	} else {
		lg = slog.New(slog.NewTextHandler(os.Stderr, hopts))
	}

	if *storeDir == "" && *journal != "" {
		*storeDir = *journal
		lg.Warn("-journal is deprecated: treating it as -store (journals are migrated into the binary store)", "dir", *storeDir)
	}

	reg := registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	engCfg := sweep.Config{Workers: *workers, ShardPackets: *shardPk, PoolSize: *poolSize, PoolSeed: *seed}

	if *coordAddr != "" {
		c, err := dist.New(dist.Config{
			LeasePoints:   *leasePts,
			LeaseTarget:   *leaseTgt,
			LeaseTTL:      *leaseTTL,
			LongPoll:      *longPoll,
			PoolSize:      *poolSize,
			PoolSeed:      *seed,
			StoreDir:      *storeDir,
			StoreMaxBytes: *storeMax,
			Token:         *token,
			Log:           lg,
		})
		if err == nil {
			defer c.Close()
			var hist *history.Index
			if *storeDir != "" {
				hist, err = openHistory(*storeDir)
			}
			if err == nil {
				err = runCoordinator(*coordAddr, *token, c, hist)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *workerFlg {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "-worker requires -join URL")
			os.Exit(1)
		}
		w, err := dist.StartWorker(dist.WorkerConfig{
			Coordinator: *join,
			Token:       *token,
			ID:          *wkrName,
			Engine:      sweep.Config{Workers: *workers, ShardPackets: *shardPk},
			MemBudget:   *memBudget << 20,
			CPUBudget:   *cpuBudget,
			Log:         lg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer w.Close()
		if *obsAddr != "" {
			go func() {
				if err := listen(*obsAddr, dist.BearerAuth(*token, workerObsHandler(w)), "worker observability"); err != nil {
					lg.Error("worker observability server", "err", err)
				}
			}()
		}
		fmt.Printf("worker serving %s (SIGTERM drains: in-flight lease finishes, then deregister)\n", *join)
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
		for {
			select {
			case s := <-sigc:
				if s == syscall.SIGTERM && !w.Draining() {
					lg.Info("SIGTERM, draining (send again or SIGINT to hard-stop)", "component", "worker")
					w.Drain()
					continue
				}
				lg.Warn("hard stop (in-flight lease abandoned to TTL re-issue)", "component", "worker")
				return // deferred Close cancels the lease loop
			case <-w.Done():
				return // drained (or revoked) and deregistered
			}
		}
	}

	if *supFlg {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "-supervisor requires -join URL")
			os.Exit(1)
		}
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Spawned workers are this binary re-invoked in -worker mode, with
		// the resource and logging flags propagated; the spawner appends
		// each worker's -worker-name.
		cmd := []string{self, "-worker", "-join", *join, "-log-level", *logLevel}
		if *token != "" {
			cmd = append(cmd, "-token", *token)
		}
		if *logJSON {
			cmd = append(cmd, "-log-json")
		}
		if *workers > 0 {
			cmd = append(cmd, "-workers", strconv.Itoa(*workers))
		}
		if *shardPk > 0 {
			cmd = append(cmd, "-shard", strconv.Itoa(*shardPk))
		}
		if *memBudget > 0 {
			cmd = append(cmd, "-mem-budget", strconv.FormatInt(*memBudget, 10))
		}
		if *cpuBudget > 0 {
			cmd = append(cmd, "-cpu-budget", strconv.FormatFloat(*cpuBudget, 'g', -1, 64))
		}
		s, err := supervise.Start(supervise.Config{
			Coordinator: *join,
			Token:       *token,
			Spawner:     &supervise.LocalSpawner{Command: cmd, LogDir: *workerLogs},
			MinWorkers:  *minWorkers,
			MaxWorkers:  *maxWorkers,
			StuckAfter:  *stuckAfter,
			Log:         lg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *obsAddr != "" {
			go func() {
				if err := listen(*obsAddr, dist.BearerAuth(*token, supervisorObsHandler(s)), "supervisor observability"); err != nil {
					lg.Error("supervisor observability server", "err", err)
				}
			}()
		}
		fmt.Printf("supervising %s (min %d, max %d workers; SIGTERM drains spawned workers and exits)\n",
			*join, *minWorkers, *maxWorkers)
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
		<-sigc
		lg.Info("signal: draining spawned workers (send again to hard-stop)", "component", "supervisor")
		done := make(chan struct{})
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			s.Shutdown(ctx)
			close(done)
		}()
		select {
		case <-done:
		case <-sigc:
			lg.Warn("hard stop: spawned workers left running (a successor supervisor will adopt them)", "component", "supervisor")
		}
		return
	}

	if *fleetFlg || *drainID != "" || *revokeID != "" {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "fleet admin flags require -join URL")
			os.Exit(1)
		}
		cl := newSubmitClient(*join, *token)
		var err error
		switch {
		case *drainID != "":
			err = cl.drainWorker(*drainID)
		case *revokeID != "":
			err = cl.revokeWorker(*revokeID)
		default:
			if err = cl.showStatus(); err == nil {
				err = cl.listWorkers()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *submitFlg {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "-submit requires -join URL")
			os.Exit(1)
		}
		if !experiments.IsSweepExperiment(*name) {
			fmt.Fprintln(os.Stderr, "-submit requires a single sweep experiment (see -list)")
			os.Exit(1)
		}
		spec := sweep.Spec{Experiment: *name, Packets: *packets, PSDUBytes: *bytes, Seed: *seed, Pool: *pool}
		if err := newSubmitClient(*join, *token).run(spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var st *store.Store
	var hist *history.Index
	if *storeDir != "" {
		if *direct {
			fmt.Fprintln(os.Stderr, "-store requires the engine path; drop -direct")
			os.Exit(1)
		}
		var err error
		if st, err = openStore(*storeDir, *storeMax); err == nil {
			hist, err = openHistory(*storeDir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		engCfg.Store = st
	}

	if *serve != "" {
		eng := sweep.New(engCfg)
		defer eng.Close()
		if err := runServe(*serve, *token, eng, hist, st); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{Packets: *packets, PSDUBytes: *bytes, Seed: *seed}

	// One engine (and waveform pool) shared by every sweep of the
	// invocation; created lazily so analysis-only runs skip it.
	var eng *sweep.Engine
	defer func() {
		if eng != nil {
			eng.Close()
		}
	}()

	run := func(n string) error {
		r, ok := reg[n]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", n)
		}
		start := time.Now()
		var tb *experiments.Table
		var err error
		if experiments.IsSweepExperiment(n) && !*direct {
			if eng == nil {
				eng = sweep.New(engCfg)
			}
			spec := sweep.Spec{
				Experiment: n,
				Packets:    *packets,
				PSDUBytes:  *bytes,
				Seed:       *seed,
				Pool:       *pool,
			}
			var job *sweep.Job
			if job, err = eng.Submit(context.Background(), spec); err == nil {
				if hist != nil {
					size, pseed := eng.PoolIdentity()
					recordHistory(hist, spec, size, pseed)
				}
				var res *sweep.Result
				if res, err = job.Wait(context.Background()); err == nil {
					tb = res.Table
				}
			}
		} else {
			tb, err = r(opts)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		fmt.Print(tb.Render())
		fmt.Printf("[%s completed in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		return nil
	}

	// Flag-conflict guards apply to 'all' and single experiments alike.
	// (-store works with 'all': records are content-addressed, so every
	// sweep of the invocation shares the one directory safely.)
	if *pool && *direct {
		fmt.Fprintln(os.Stderr, "-pool requires the engine path; drop -direct")
		os.Exit(1)
	}
	if *name == "all" {
		for _, n := range names {
			if err := run(n); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*name); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// openStore opens (creating if needed) the result store at dir and runs
// the one-shot migration of any legacy *.jsonl journals found there.
// maxBytes > 0 arms the store's LRU segment eviction.
func openStore(dir string, maxBytes int64) (*store.Store, error) {
	st, stats, err := store.Open(dir, store.Options{MaxBytes: maxBytes})
	if err != nil {
		return nil, err
	}
	if stats.DamagedSegments > 0 {
		lg.Warn("store recovered past damage", "dir", dir,
			"segments", stats.Segments, "damaged", stats.DamagedSegments, "records", stats.Records)
	}
	res, err := sweep.MigrateDir(dir, st)
	if err != nil {
		return nil, err
	}
	if res.Journals > 0 {
		lg.Info("migrated legacy journals into store", "dir", dir, "journals", res.Journals, "points", res.Points)
	}
	for _, s := range res.Skipped {
		lg.Warn("unparsable legacy journal left in place", "journal", s)
	}
	return st, nil
}

// openHistory opens the results-history index sidecar in the store
// directory (creating it if absent).
func openHistory(dir string) (*history.Index, error) {
	hist, skipped, err := history.Open(dir, history.Options{})
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		lg.Warn("history index salvaged past damage", "dir", dir, "skipped_lines", skipped)
	}
	return hist, nil
}
