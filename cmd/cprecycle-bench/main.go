// Command cprecycle-bench regenerates the paper's tables and figures at
// configurable fidelity. Each experiment prints an aligned text table whose
// rows mirror the corresponding figure's series (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	cprecycle-bench -experiment fig8 -packets 2000 -bytes 400
//	cprecycle-bench -experiment all -packets 200
//	cprecycle-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
)

type runner func(experiments.Options) (*experiments.Table, error)

func registry() map[string]runner {
	return map[string]runner{
		"table1":            func(experiments.Options) (*experiments.Table, error) { return experiments.Table1(), nil },
		"fig4a":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig4a(o.Seed) },
		"fig4b":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig4b(o.Seed) },
		"fig4c":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig4c(o.Seed) },
		"fig5":              experiments.Fig5,
		"fig6a":             func(experiments.Options) (*experiments.Table, error) { return experiments.Fig6a() },
		"fig6b":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig6b(o.Seed) },
		"fig8":              experiments.Fig8,
		"fig9":              experiments.Fig9,
		"fig10":             experiments.Fig10,
		"fig11":             experiments.Fig11,
		"fig12":             experiments.Fig12,
		"fig13":             func(o experiments.Options) (*experiments.Table, error) { return experiments.Fig13(o.Seed, 15) },
		"fig14":             experiments.Fig14,
		"ablation-decision": experiments.AblationDecision,
		"delay-spread":      experiments.DelaySpreadSweep,
		"ablation-soft":     experiments.AblationSoftDecoding,
	}
}

func main() {
	var (
		name    = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		packets = flag.Int("packets", 2000, "packets per measurement point (paper: 2000)")
		bytes   = flag.Int("bytes", 400, "PSDU size in bytes (paper: 400)")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	reg := registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	opts := experiments.Options{Packets: *packets, PSDUBytes: *bytes, Seed: *seed}
	run := func(n string) error {
		r, ok := reg[n]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", n)
		}
		start := time.Now()
		tb, err := r(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		fmt.Print(tb.Render())
		fmt.Printf("[%s completed in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *name == "all" {
		for _, n := range names {
			if err := run(n); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*name); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
