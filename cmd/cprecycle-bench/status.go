package main

import (
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/sweep/dist"
	"repro/internal/sweep/supervise"
)

// processStart anchors the uptime reported by /v1/status.
var processStart = time.Now()

// runtimeStats is the process-level slice of a status snapshot.
type runtimeStats struct {
	GoVersion      string `json:"go_version"`
	Goroutines     int    `json:"goroutines"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
	NumCPU         int    `json:"num_cpu"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

// jobsSummary aggregates the backend's job table.
type jobsSummary struct {
	Running int              `json:"running"`
	Done    int              `json:"done"`
	Failed  int              `json:"failed"`
	Jobs    []sweep.Progress `json:"jobs,omitempty"`
}

// statusSnapshot is the one-call dashboard served at GET /v1/status:
// engine + fleet + runtime state plus a flat dump of every registered
// metric, so `cprecycle-bench -fleet` (or curl | jq) sees the whole
// process in one read.
type statusSnapshot struct {
	Mode       string             `json:"mode"` // "engine" | "coordinator" | "worker" | "supervisor"
	UptimeSec  float64            `json:"uptime_sec"`
	Runtime    runtimeStats       `json:"runtime"`
	Jobs       jobsSummary        `json:"jobs"`
	Fleet      *dist.FleetStats   `json:"fleet,omitempty"`
	Workers    []dist.WorkerInfo  `json:"workers,omitempty"`
	Worker     *dist.WorkerStats  `json:"worker,omitempty"`
	Supervisor *supervise.Stats   `json:"supervisor,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

func runtimeSnapshot() runtimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeStats{
		GoVersion:      runtime.Version(),
		Goroutines:     runtime.NumGoroutine(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
	}
}

// newStatus assembles the parts every mode shares.
func newStatus(mode string, jobs []serveJob) statusSnapshot {
	s := statusSnapshot{
		Mode:      mode,
		UptimeSec: time.Since(processStart).Seconds(),
		Runtime:   runtimeSnapshot(),
		Metrics:   obs.Snapshot(),
	}
	for _, j := range jobs {
		p := j.Progress()
		switch p.State {
		case "running":
			s.Jobs.Running++
		case "failed":
			s.Jobs.Failed++
		default:
			s.Jobs.Done++
		}
		s.Jobs.Jobs = append(s.Jobs.Jobs, p)
	}
	return s
}

// obsRoutes mounts the observability surface — GET /metrics (the obs
// registry plus any instance-scoped extras), /debug/pprof/* and GET
// /v1/status — onto a mux that is already behind bearer auth; pprof in
// particular must never be mounted on an unauthenticated mux (heap and
// CPU profiles leak source paths and timing).
func obsRoutes(mux *http.ServeMux, status func() statusSnapshot, extras ...func(io.Writer)) {
	mux.Handle("GET /metrics", obs.Handler(extras...))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if status != nil {
		mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, status())
		})
	}
}

// supervisorObsHandler is the supervisor's -obs side server: the
// cpr_supervisor_* families next to the registry metrics, pprof and a
// supervisor-mode status snapshot (control-loop gauges and counters).
func supervisorObsHandler(s *supervise.Supervisor) http.Handler {
	mux := http.NewServeMux()
	obsRoutes(mux, func() statusSnapshot {
		snap := newStatus("supervisor", nil)
		st := s.Stats()
		snap.Supervisor = &st
		return snap
	}, s.WritePrometheus)
	return mux
}

// workerObsHandler is the worker's -obs side server: metrics (engine
// hot-path series plus the worker's own lease/retry counters), pprof
// and a worker-mode status snapshot.
func workerObsHandler(w *dist.Worker) http.Handler {
	mux := http.NewServeMux()
	obsRoutes(mux, func() statusSnapshot {
		s := newStatus("worker", nil)
		ws := w.Stats()
		s.Worker = &ws
		return s
	}, w.WritePrometheus)
	return mux
}
