package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/sweep"
	"repro/internal/sweep/dist"
	"repro/internal/sweep/history"
	"repro/internal/sweep/store"
)

// decodeEnvelope asserts resp is the shared /v1 error envelope with the
// expected code and returns its message.
func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) string {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("HTTP %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type %q, want application/json", ct)
	}
	var e api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not the envelope: %v", err)
	}
	if e.Error.Code != wantCode || e.Error.Message == "" {
		t.Fatalf("envelope %+v, want code %q with a message", e, wantCode)
	}
	return e.Error.Message
}

// TestServeErrorEnvelope pins the envelope shape on every jobs-API
// failure path: auth, malformed spec, unknown job.
func TestServeErrorEnvelope(t *testing.T) {
	eng := sweep.New(sweep.Config{Workers: 1, ShardPackets: 2})
	defer eng.Close()
	srv := httptest.NewServer(dist.BearerAuth("tok", apiMux(engineBackend{eng: eng}, nil)))
	defer srv.Close()

	do := func(method, path, token, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := do(http.MethodGet, "/v1/jobs", "", "")
	decodeEnvelope(t, resp, http.StatusUnauthorized, "unauthorized")
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate")
	}
	decodeEnvelope(t, do(http.MethodPost, "/v1/jobs", "tok", `{"experiment":`), http.StatusBadRequest, "bad_request")
	decodeEnvelope(t, do(http.MethodPost, "/v1/jobs", "tok", `{"experiment":"nope"}`), http.StatusBadRequest, "bad_request")
	decodeEnvelope(t, do(http.MethodGet, "/v1/jobs/j999", "tok", ""), http.StatusNotFound, "not_found")
	decodeEnvelope(t, do(http.MethodGet, "/v1/jobs/j999/table", "tok", ""), http.StatusNotFound, "not_found")
	decodeEnvelope(t, do(http.MethodDelete, "/v1/jobs/j999", "tok", ""), http.StatusNotFound, "not_found")
	decodeEnvelope(t, do(http.MethodGet, "/v1/jobs?limit=zero", "tok", ""), http.StatusBadRequest, "bad_request")
	decodeEnvelope(t, do(http.MethodGet, "/v1/jobs?cursor=-2", "tok", ""), http.StatusBadRequest, "bad_request")
}

// TestServeJobsPagination pins the listing contract: newest-submitted
// first, limit/cursor pages, and a cursor past the end answering an
// empty page rather than an error.
func TestServeJobsPagination(t *testing.T) {
	eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2})
	defer eng.Close()
	srv := httptest.NewServer(apiMux(engineBackend{eng: eng}, nil))
	defer srv.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"experiment":"fig8","packets":2,"psdu_bytes":60,"seed":`+string(rune('3'+i))+`,"axis":[-10]}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		var p sweep.Progress
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, p.ID)
	}

	page := func(query string) api.List[sweep.Progress] {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list%s: HTTP %d", query, resp.StatusCode)
		}
		var l api.List[sweep.Progress]
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			t.Fatal(err)
		}
		return l
	}

	all := page("")
	if len(all.Items) != 3 || all.NextCursor != "" {
		t.Fatalf("full listing %+v", all)
	}
	// Newest-submitted first.
	if all.Items[0].ID != ids[2] || all.Items[2].ID != ids[0] {
		t.Fatalf("order %v, want reverse of %v", []string{all.Items[0].ID, all.Items[1].ID, all.Items[2].ID}, ids)
	}

	first := page("?limit=2")
	if len(first.Items) != 2 || first.NextCursor == "" {
		t.Fatalf("first page %+v", first)
	}
	second := page("?limit=2&cursor=" + first.NextCursor)
	if len(second.Items) != 1 || second.NextCursor != "" || second.Items[0].ID != ids[0] {
		t.Fatalf("second page %+v", second)
	}
	if empty := page("?cursor=50"); len(empty.Items) != 0 || empty.NextCursor != "" {
		t.Fatalf("past-the-end page %+v", empty)
	}
}

// TestServeDeleteSemantics pins cancel-vs-purge: DELETE cancels a
// running job outright, refuses a finished one with 409 unless ?purge=1
// makes the removal explicit, and 404s an unknown id (covered in
// TestServeErrorEnvelope).
func TestServeDeleteSemantics(t *testing.T) {
	eng := sweep.New(sweep.Config{Workers: 1, ShardPackets: 50})
	defer eng.Close()
	srv := httptest.NewServer(apiMux(engineBackend{eng: eng}, nil))
	defer srv.Close()

	submit := func(body string) sweep.Progress {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", resp.StatusCode)
		}
		var p sweep.Progress
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	del := func(path string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A big slow job: DELETE while running cancels and removes, no purge
	// flag needed.
	running := submit(`{"experiment":"fig8","packets":2000,"psdu_bytes":60,"seed":3}`)
	resp := del("/v1/jobs/" + running.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	if eng.Job(running.ID) != nil {
		t.Fatal("cancelled job still listed")
	}

	// A finished job is a recorded result: DELETE without ?purge=1 is a
	// conflict that explains the distinction, with it the removal sticks.
	finished := submit(`{"experiment":"fig8","packets":2,"psdu_bytes":60,"seed":3,"axis":[-10]}`)
	if _, err := eng.Job(finished.ID).Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	msg := decodeEnvelope(t, del("/v1/jobs/"+finished.ID), http.StatusConflict, "conflict")
	if !strings.Contains(msg, "purge") {
		t.Fatalf("conflict message %q does not mention ?purge", msg)
	}
	if eng.Job(finished.ID) == nil {
		t.Fatal("409 DELETE removed the job anyway")
	}
	resp = del("/v1/jobs/" + finished.ID + "?purge=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("purge finished: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	if eng.Job(finished.ID) != nil {
		t.Fatal("purged job still listed")
	}
}

// TestServeHistorySurface is the end-to-end acceptance check for the
// results-history tier in serve mode: a sweep runs once against a
// store, and the stored sweep's /v1/history table is byte-identical to
// the live job's /v1/jobs/{id}/table — re-assembled from the store
// without re-running — while the self-diff reports zero deltas.
func TestServeHistorySurface(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	hist, _, err := history.Open(dir, history.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2, Store: st})
	defer eng.Close()
	srv := httptest.NewServer(apiMux(engineBackend{eng: eng, hist: hist}, historyHandler(hist, st)))
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// With no sweeps recorded yet, the history surface answers empty
	// collections and 404s, never 500s.
	if resp, body := get("/v1/history/experiments"); resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("empty experiments: %d %s", resp.StatusCode, body)
	}
	resp, body := get("/v1/history/sweeps")
	var empty api.List[history.Sweep]
	if err := json.Unmarshal(body, &empty); err != nil || len(empty.Items) != 0 {
		t.Fatalf("empty sweeps: %d %s", resp.StatusCode, body)
	}

	// Run one sweep to completion through the API.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig8","packets":3,"psdu_bytes":60,"seed":3,"axis":[-10,-20]}`))
	if err != nil {
		t.Fatal(err)
	}
	var prog sweep.Progress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := eng.Job(prog.ID).Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The submission is in the history index.
	resp, body = get("/v1/history/sweeps?experiment=fig8")
	var sweeps api.List[history.Sweep]
	if err := json.Unmarshal(body, &sweeps); err != nil || len(sweeps.Items) != 1 {
		t.Fatalf("recorded sweeps: %d %s", resp.StatusCode, body)
	}
	fp := sweeps.Items[0].Fingerprint
	if sweeps.Items[0].Runs != 1 || len(fp) != 32 {
		t.Fatalf("recorded sweep %+v", sweeps.Items[0])
	}

	// Byte-identity: the stored sweep's table is exactly the live one.
	liveResp, live := get("/v1/jobs/" + prog.ID + "/table")
	histResp, stored := get("/v1/history/sweeps/" + fp + "/table")
	if liveResp.StatusCode != http.StatusOK || histResp.StatusCode != http.StatusOK {
		t.Fatalf("tables: live %d history %d (%s)", liveResp.StatusCode, histResp.StatusCode, stored)
	}
	if string(live) != string(stored) {
		t.Fatalf("stored table diverges from live table:\n--- live\n%s--- stored\n%s", live, stored)
	}
	if got, want := histResp.Header.Get("Content-Type"), liveResp.Header.Get("Content-Type"); got != want {
		t.Fatalf("table Content-Type %q vs live %q", got, want)
	}

	// A sweep diffed against itself has zero deltas.
	resp, body = get("/v1/history/diff?a=" + fp + "&b=" + fp)
	var d history.Diff
	if err := json.Unmarshal(body, &d); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("diff: %d %s", resp.StatusCode, body)
	}
	if !d.Equal || len(d.Points) != 0 || d.Shared != prog.Points {
		t.Fatalf("self-diff %+v", d)
	}

	// Unknown fingerprints are envelope 404s on both endpoints.
	resp, _ = get("/v1/history/sweeps/ffffffffffffffffffffffffffffffff/table")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fp table: %d", resp.StatusCode)
	}
	resp, _ = get("/v1/history/diff?a=" + fp + "&b=ffffffffffffffffffffffffffffffff")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fp diff: %d", resp.StatusCode)
	}
}
