package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/sweep"
)

// submitClient drives a remote serve-mode or coordinator instance: it
// POSTs the spec, consumes the job's SSE stream end to end (one line of
// progress per completed point on stderr), and prints the final table on
// stdout — so `-submit -join URL` composes with shell pipelines exactly
// like a local run. Exit is non-nil when the job fails server-side or
// the stream breaks.
type submitClient struct {
	base  string
	token string
	http  *http.Client
}

func newSubmitClient(base, token string) *submitClient {
	return &submitClient{
		base:  strings.TrimRight(base, "/"),
		token: token,
		// No overall timeout: the SSE stream legitimately lasts as long
		// as the sweep. Dial/TLS limits come from the default transport.
		http: &http.Client{},
	}
}

func (c *submitClient) request(method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return c.http.Do(req)
}

// fail decodes the server's {"error": …} body into an error.
func fail(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("HTTP %d", resp.StatusCode)
}

// run submits the spec and follows it to completion.
func (c *submitClient) run(spec sweep.Spec) error {
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := c.request(http.MethodPost, "/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fail(resp)
	}
	var prog sweep.Progress
	err = json.NewDecoder(resp.Body).Decode(&prog)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding job submission: %w", err)
	}
	fmt.Fprintf(os.Stderr, "job %s: %s, %d points, %d packets\n", prog.ID, prog.Experiment, prog.Points, prog.Packets)

	final, err := c.follow(prog.ID)
	if err != nil {
		return err
	}
	if final.State != "done" {
		return fmt.Errorf("job %s %s: %s", prog.ID, final.State, final.Error)
	}
	return c.printTable(prog.ID)
}

// follow consumes the job's SSE stream to its terminal event.
func (c *submitClient) follow(id string) (sweep.Progress, error) {
	var final sweep.Progress
	resp, err := c.request(http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return final, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return final, fail(resp)
	}
	start := time.Now()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "" && data == "" {
				continue
			}
			switch event {
			case "point":
				var ev sweep.PointEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return final, fmt.Errorf("bad point event %q: %w", data, err)
				}
				fmt.Fprintf(os.Stderr, "point %d done (%d/%d, %v)\n", ev.Point, ev.DonePoints, ev.Points, time.Since(start).Round(time.Millisecond))
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					return final, fmt.Errorf("bad terminal event %q: %w", data, err)
				}
				return final, nil
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return final, fmt.Errorf("event stream: %w", err)
	}
	return final, fmt.Errorf("event stream ended without a terminal event")
}

// printTable fetches the finished job's rendered table to stdout.
func (c *submitClient) printTable(id string) error {
	resp, err := c.request(http.MethodGet, "/v1/jobs/"+id+"/table", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
