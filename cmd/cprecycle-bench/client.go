package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/sweep"
	"repro/internal/sweep/dist"
)

// submitClient drives a remote serve-mode or coordinator instance: it
// POSTs the spec, consumes the job's SSE stream end to end (one line of
// progress per completed point on stderr), and prints the final table on
// stdout — so `-submit -join URL` composes with shell pipelines exactly
// like a local run. Exit is non-nil when the job fails server-side or
// the stream breaks.
type submitClient struct {
	base  string
	token string
	http  *http.Client
}

func newSubmitClient(base, token string) *submitClient {
	return &submitClient{
		base:  strings.TrimRight(base, "/"),
		token: token,
		// No overall timeout: the SSE stream legitimately lasts as long
		// as the sweep. Dial/TLS limits come from the default transport.
		http: &http.Client{},
	}
}

func (c *submitClient) request(method, path string, body io.Reader, headers ...string) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	for i := 0; i+1 < len(headers); i += 2 {
		req.Header.Set(headers[i], headers[i+1])
	}
	return c.http.Do(req)
}

// fail decodes the server's {"error":{"code","message"}} envelope into
// an error (see internal/api).
func fail(resp *http.Response) error {
	defer resp.Body.Close()
	var e api.ErrorBody
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error.Message != "" {
		return fmt.Errorf("HTTP %d (%s): %s", resp.StatusCode, e.Error.Code, e.Error.Message)
	}
	return fmt.Errorf("HTTP %d", resp.StatusCode)
}

// run submits the spec and follows it to completion.
func (c *submitClient) run(spec sweep.Spec) error {
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := c.request(http.MethodPost, "/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fail(resp)
	}
	var prog sweep.Progress
	err = json.NewDecoder(resp.Body).Decode(&prog)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding job submission: %w", err)
	}
	fmt.Fprintf(os.Stderr, "job %s: %s, %d points, %d packets\n", prog.ID, prog.Experiment, prog.Points, prog.Packets)

	final, err := c.follow(prog.ID)
	if err != nil {
		return err
	}
	if final.State != "done" {
		return fmt.Errorf("job %s %s: %s", prog.ID, final.State, final.Error)
	}
	return c.printTable(prog.ID)
}

// follow consumes the job's SSE stream to its terminal event. A broken
// stream (the connection dropped mid-sweep) is re-dialled with the
// standard Last-Event-ID header carrying the last point id seen, so the
// server resumes mid-stream instead of replaying every completed point.
func (c *submitClient) follow(id string) (sweep.Progress, error) {
	start := time.Now()
	lastEventID := ""
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			fmt.Fprintf(os.Stderr, "event stream broke (%v); reconnecting after %q\n", lastErr, lastEventID)
			time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		final, done, err := c.followOnce(id, &lastEventID, start)
		if done || err == nil {
			return final, err
		}
		lastErr = err
	}
	return sweep.Progress{}, fmt.Errorf("event stream: %w", lastErr)
}

// followOnce dials the event stream once, resuming after lastEventID if
// set, and consumes it until the terminal event (done == true), a fatal
// error (done == true with err), or a retriable stream break (done ==
// false). lastEventID is updated as point events arrive.
func (c *submitClient) followOnce(id string, lastEventID *string, start time.Time) (final sweep.Progress, done bool, err error) {
	var headers []string
	if *lastEventID != "" {
		headers = append(headers, "Last-Event-ID", *lastEventID)
	}
	resp, err := c.request(http.MethodGet, "/v1/jobs/"+id+"/events", nil, headers...)
	if err != nil {
		return final, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The server answered: a non-OK status (job pruned, auth) will
		// not improve on retry.
		return final, true, fail(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	event, data, evID := "", "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			evID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "" && data == "" {
				continue
			}
			switch event {
			case "point":
				var ev sweep.PointEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return final, true, fmt.Errorf("bad point event %q: %w", data, err)
				}
				if evID != "" {
					*lastEventID = evID
				}
				fmt.Fprintf(os.Stderr, "point %d done (%d/%d, %v)\n", ev.Point, ev.DonePoints, ev.Points, time.Since(start).Round(time.Millisecond))
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					return final, true, fmt.Errorf("bad terminal event %q: %w", data, err)
				}
				return final, true, nil
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return final, false, err
	}
	return final, false, fmt.Errorf("stream ended without a terminal event")
}

// showStatus renders the /v1/status snapshot as a dashboard header for
// -fleet. A 404 means an older server without the endpoint: skip
// silently, the worker table below still works.
func (c *submitClient) showStatus() error {
	resp, err := c.request(http.MethodGet, "/v1/status", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fail(resp)
	}
	var s statusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return fmt.Errorf("decoding status: %w", err)
	}
	fmt.Printf("%s up %s  jobs: %d running / %d done / %d failed\n",
		s.Mode, (time.Duration(s.UptimeSec) * time.Second).Round(time.Second),
		s.Jobs.Running, s.Jobs.Done, s.Jobs.Failed)
	if f := s.Fleet; f != nil {
		fmt.Printf("workers: %d active / %d draining  leases: %d in flight (%d granted, %d expired, %d pts re-queued)\n",
			f.WorkersActive, f.WorkersDraining, f.LeasesInflight, f.LeasesGranted, f.LeaseExpiries, f.RequeuedPoints)
		fmt.Printf("queue: %d points pending", f.QueueDepth)
		if f.LeaseEstSeconds > 0 {
			fmt.Printf("  est %.2gs/point", f.LeaseEstSeconds)
		}
		fmt.Println()
	}
	return nil
}

// listWorkers prints the coordinator's worker registry (-fleet),
// following the listing's pagination cursor until it is exhausted.
func (c *submitClient) listWorkers() error {
	var infos []dist.WorkerInfo
	cursor := ""
	for {
		path := "/v1/dist/workers"
		if cursor != "" {
			path += "?cursor=" + cursor
		}
		resp, err := c.request(http.MethodGet, path, nil)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fail(resp)
		}
		var page api.List[dist.WorkerInfo]
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding worker list: %w", err)
		}
		infos = append(infos, page.Items...)
		if cursor = page.NextCursor; cursor == "" {
			break
		}
	}
	if len(infos) == 0 {
		fmt.Println("no registered workers")
		return nil
	}
	for _, wi := range infos {
		// prog is how long since the worker's freshest lease advanced a
		// packet — the wedged-worker tell the supervisor's stuck detector
		// keys on; "-" for workers holding no live lease.
		prog := "-"
		if wi.LastProgressSec >= 0 {
			prog = (time.Duration(wi.LastProgressSec) * time.Second).Round(time.Second).String()
		}
		fmt.Printf("%-4s %-20s %-9s leases=%-3d granted=%-5d age=%-8s idle=%-8s prog=%s\n",
			wi.ID, wi.Name, wi.State, wi.Leases, wi.Granted,
			(time.Duration(wi.AgeSec) * time.Second).Round(time.Second),
			(time.Duration(wi.IdleSec) * time.Second).Round(time.Second), prog)
	}
	return nil
}

// drainWorker / revokeWorker drive the coordinator's worker-lifecycle
// admin endpoints (-drain / -revoke).
func (c *submitClient) drainWorker(id string) error {
	return c.workerAction(id, "drain", "draining (finishes its in-flight lease, then deregisters)")
}

func (c *submitClient) revokeWorker(id string) error {
	return c.workerAction(id, "revoke", "revoked (token dead, leases re-queued)")
}

func (c *submitClient) workerAction(id, action, desc string) error {
	resp, err := c.request(http.MethodPost, "/v1/dist/workers/"+id+"/"+action, strings.NewReader("{}"))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(resp)
	}
	fmt.Printf("worker %s %s\n", id, desc)
	return nil
}

// printTable fetches the finished job's rendered table to stdout.
func (c *submitClient) printTable(id string) error {
	resp, err := c.request(http.MethodGet, "/v1/jobs/"+id+"/table", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
