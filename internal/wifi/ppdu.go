package wifi

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/ofdm"
)

// TxConfig configures a PPDU transmitter.
type TxConfig struct {
	// Grid is the OFDM numerology/placement (native or wide-band embedded).
	Grid ofdm.Grid
	// MCS selects modulation and code rate for the DATA field.
	MCS MCS
	// ScramblerSeed is the 7-bit scrambler initial state; 0 selects the
	// default seed.
	ScramblerSeed uint8
	// Gain scales the output waveform; 0 selects the gain that gives unit
	// average transmit power.
	Gain float64
}

// PPDU is an encoded 802.11a/g frame: baseband samples plus the layout
// metadata receivers and experiments need.
type PPDU struct {
	Samples []complex128
	Cfg     TxConfig
	PSDULen int
	// NumDataSymbols counts DATA OFDM symbols (excluding SIGNAL).
	NumDataSymbols int
	// PreambleLen is the STF+LTF length in samples.
	PreambleLen int
	// SignalStart is the sample index of the SIGNAL symbol's CP start.
	SignalStart int
	// DataStart is the sample index of the first DATA symbol's CP start.
	DataStart int
}

// DataSymbolStart returns the sample index of DATA symbol k's CP start.
func (p *PPDU) DataSymbolStart(k int) int {
	return p.DataStart + k*p.Cfg.Grid.SymLen()
}

// BuildPSDU appends the CRC-32 FCS to a payload, forming the PSDU whose
// success/failure defines the paper's packet success rate.
func BuildPSDU(payload []byte) []byte { return coding.AppendFCS(payload) }

// DataAnchorBit returns the information-bit position at which the DATA
// field's convolutional encoder register is back in the all-zero state:
// after SERVICE(16) + PSDU + the six zero tail bits, clamped to nInfo for
// degenerate layouts. Decoders anchor their payload traceback there
// (coding.Viterbi.DecodeAnchored) so errors on the scrambled pad bits
// cannot corrupt the payload.
func DataAnchorBit(psduLen, nInfo int) int {
	a := 16 + 8*psduLen + 6
	if a > nInfo {
		a = nInfo
	}
	return a
}

// BuildPPDU encodes a PSDU into a complete PPDU waveform.
func BuildPPDU(cfg TxConfig, psdu []byte) (*PPDU, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if len(psdu) < 1 || len(psdu) > MaxPSDULen {
		return nil, fmt.Errorf("wifi: PSDU length %d outside [1,%d]", len(psdu), MaxPSDULen)
	}
	mod, err := ofdm.NewModulator(cfg.Grid)
	if err != nil {
		return nil, err
	}
	gain := cfg.Gain
	if gain == 0 {
		gain = mod.GainForUnitPower(52)
	}

	p := &PPDU{Cfg: cfg, PSDULen: len(psdu)}
	p.NumDataSymbols = cfg.MCS.SymbolsForPSDU(len(psdu))
	p.PreambleLen = ofdm.PreambleLen(cfg.Grid)
	p.SignalStart = p.PreambleLen
	p.DataStart = p.SignalStart + cfg.Grid.SymLen()

	total := p.DataStart + p.NumDataSymbols*cfg.Grid.SymLen()
	p.Samples = make([]complex128, total)
	symLen := cfg.Grid.SymLen()

	// Preamble: scale the cached waveform directly into place.
	gc := complex(gain, 0)
	for i, v := range ofdm.Preamble(mod) {
		p.Samples[i] = v * gc
	}

	// SIGNAL symbol: BPSK, pilot polarity p₀.
	sigBits, err := EncodeSignalSymbolBits(cfg.MCS, len(psdu))
	if err != nil {
		return nil, err
	}
	bins := make([]complex128, cfg.Grid.NFFT)
	bpsk := modem.New(modem.BPSK)
	assembleSymbolInto(p.Samples[p.SignalStart:p.SignalStart+symLen], bins, mod, bpsk, sigBits, 0, gain)

	// DATA field bit pipeline (§18.3.5.4-7).
	nBits := p.NumDataSymbols * cfg.MCS.Ndbps
	bits := make([]byte, nBits) // SERVICE(16 zeros) + PSDU + tail + pad
	copy(bits[16:], coding.BytesToBits(psdu))
	tailPos := 16 + 8*len(psdu)
	coding.NewScrambler(cfg.ScramblerSeed).Apply(bits)
	for i := 0; i < 6; i++ { // tail bits are forced to zero after scrambling
		bits[tailPos+i] = 0
	}
	coded := coding.Puncture(coding.ConvEncode(bits), cfg.MCS.Rate)
	il := coding.MustInterleaver(cfg.MCS.Ncbps, cfg.MCS.Nbpsc)
	cons := modem.New(cfg.MCS.Scheme)

	blk := make([]byte, cfg.MCS.Ncbps)
	for k := 0; k < p.NumDataSymbols; k++ {
		il.InterleaveInto(blk, coded[k*cfg.MCS.Ncbps:(k+1)*cfg.MCS.Ncbps])
		start := p.DataStart + k*symLen
		assembleSymbolInto(p.Samples[start:start+symLen], bins, mod, cons, blk, k+1, gain)
	}
	return p, nil
}

// assembleSymbolInto maps one symbol's interleaved coded bits onto the 48
// data subcarriers, adds the four pilots for symbol counter n, modulates
// and scales, writing the SymLen samples into out. bins is caller scratch
// of length NFFT.
func assembleSymbolInto(out, bins []complex128, mod *ofdm.Modulator, cons *modem.Constellation, bits []byte, n int, gain float64) {
	scs := ofdm.DataSubcarriers()
	nb := cons.BitsPerSymbol()
	if len(bits) != len(scs)*nb {
		panic(fmt.Sprintf("wifi: %d bits for %d subcarriers at %d bpsc", len(bits), len(scs), nb))
	}
	g := mod.Grid()
	for i := range bins {
		bins[i] = 0
	}
	for _, sc := range ofdm.PilotSubcarriers() {
		bins[g.Bin(sc)] = ofdm.PilotValue(n, sc)
	}
	for i, sc := range scs {
		bins[g.Bin(sc)] = cons.Map(bits[i*nb : (i+1)*nb])
	}
	mod.SymbolFromBinsInto(out, bins)
	dsp.Scale(out, gain)
}

// SymbolBitsToSubcarriers returns, for a constellation, the subcarrier order
// used by assembleSymbol so receivers can invert the mapping.
func SymbolBitsToSubcarriers() []int { return ofdm.DataSubcarriers() }
