package wifi

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/ofdm"
)

// TxConfig configures a PPDU transmitter.
type TxConfig struct {
	// Grid is the OFDM numerology/placement (native or wide-band embedded).
	Grid ofdm.Grid
	// MCS selects modulation and code rate for the DATA field.
	MCS MCS
	// ScramblerSeed is the 7-bit scrambler initial state; 0 selects the
	// default seed.
	ScramblerSeed uint8
	// Gain scales the output waveform; 0 selects the gain that gives unit
	// average transmit power.
	Gain float64
}

// PPDU is an encoded 802.11a/g frame: baseband samples plus the layout
// metadata receivers and experiments need.
type PPDU struct {
	Samples []complex128
	Cfg     TxConfig
	PSDULen int
	// NumDataSymbols counts DATA OFDM symbols (excluding SIGNAL).
	NumDataSymbols int
	// PreambleLen is the STF+LTF length in samples.
	PreambleLen int
	// SignalStart is the sample index of the SIGNAL symbol's CP start.
	SignalStart int
	// DataStart is the sample index of the first DATA symbol's CP start.
	DataStart int
}

// DataSymbolStart returns the sample index of DATA symbol k's CP start.
func (p *PPDU) DataSymbolStart(k int) int {
	return p.DataStart + k*p.Cfg.Grid.SymLen()
}

// BuildPSDU appends the CRC-32 FCS to a payload, forming the PSDU whose
// success/failure defines the paper's packet success rate.
func BuildPSDU(payload []byte) []byte { return coding.AppendFCS(payload) }

// BuildPPDU encodes a PSDU into a complete PPDU waveform.
func BuildPPDU(cfg TxConfig, psdu []byte) (*PPDU, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	if len(psdu) < 1 || len(psdu) > MaxPSDULen {
		return nil, fmt.Errorf("wifi: PSDU length %d outside [1,%d]", len(psdu), MaxPSDULen)
	}
	mod, err := ofdm.NewModulator(cfg.Grid)
	if err != nil {
		return nil, err
	}
	gain := cfg.Gain
	if gain == 0 {
		gain = mod.GainForUnitPower(52)
	}

	p := &PPDU{Cfg: cfg, PSDULen: len(psdu)}
	p.NumDataSymbols = cfg.MCS.SymbolsForPSDU(len(psdu))
	p.PreambleLen = ofdm.PreambleLen(cfg.Grid)
	p.SignalStart = p.PreambleLen
	p.DataStart = p.SignalStart + cfg.Grid.SymLen()

	total := p.DataStart + p.NumDataSymbols*cfg.Grid.SymLen()
	p.Samples = make([]complex128, 0, total)

	// Preamble.
	pre := ofdm.Preamble(mod)
	dsp.Scale(pre, gain)
	p.Samples = append(p.Samples, pre...)

	// SIGNAL symbol: BPSK, pilot polarity p₀.
	sigBits, err := EncodeSignalSymbolBits(cfg.MCS, len(psdu))
	if err != nil {
		return nil, err
	}
	bpsk := modem.New(modem.BPSK)
	sigSym := assembleSymbol(mod, bpsk, sigBits, 0, gain)
	p.Samples = append(p.Samples, sigSym...)

	// DATA field bit pipeline (§18.3.5.4-7).
	nBits := p.NumDataSymbols * cfg.MCS.Ndbps
	bits := make([]byte, nBits) // SERVICE(16 zeros) + PSDU + tail + pad
	copy(bits[16:], coding.BytesToBits(psdu))
	tailPos := 16 + 8*len(psdu)
	coding.NewScrambler(cfg.ScramblerSeed).Apply(bits)
	for i := 0; i < 6; i++ { // tail bits are forced to zero after scrambling
		bits[tailPos+i] = 0
	}
	coded := coding.Puncture(coding.ConvEncode(bits), cfg.MCS.Rate)
	il := coding.MustInterleaver(cfg.MCS.Ncbps, cfg.MCS.Nbpsc)
	cons := modem.New(cfg.MCS.Scheme)

	for k := 0; k < p.NumDataSymbols; k++ {
		blk := il.Interleave(coded[k*cfg.MCS.Ncbps : (k+1)*cfg.MCS.Ncbps])
		sym := assembleSymbol(mod, cons, blk, k+1, gain)
		p.Samples = append(p.Samples, sym...)
	}
	if len(p.Samples) != total {
		return nil, fmt.Errorf("wifi: internal layout error: %d samples, want %d", len(p.Samples), total)
	}
	return p, nil
}

// assembleSymbol maps one symbol's interleaved coded bits onto the 48 data
// subcarriers, adds the four pilots for symbol counter n, modulates and
// scales.
func assembleSymbol(mod *ofdm.Modulator, cons *modem.Constellation, bits []byte, n int, gain float64) []complex128 {
	scs := ofdm.DataSubcarriers()
	nb := cons.BitsPerSymbol()
	if len(bits) != len(scs)*nb {
		panic(fmt.Sprintf("wifi: %d bits for %d subcarriers at %d bpsc", len(bits), len(scs), nb))
	}
	values := ofdm.PilotValues(n)
	for i, sc := range scs {
		values[sc] = cons.Map(bits[i*nb : (i+1)*nb])
	}
	sym := mod.Symbol(values)
	dsp.Scale(sym, gain)
	return sym
}

// SymbolBitsToSubcarriers returns, for a constellation, the subcarrier order
// used by assembleSymbol so receivers can invert the mapping.
func SymbolBitsToSubcarriers() []int { return ofdm.DataSubcarriers() }
