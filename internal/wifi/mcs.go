// Package wifi implements the IEEE 802.11a/g OFDM PHY framing: the
// modulation-and-coding-scheme table, the SIGNAL field, and the full PPDU
// encoder (preamble, SIGNAL, scrambled/coded/interleaved DATA symbols).
// It plays the role of the off-the-shelf 802.11g transmitters and USRP
// interferers in the paper's testbed.
package wifi

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/modem"
)

// MCS describes one 802.11a/g modulation and coding scheme.
type MCS struct {
	Name     string
	Mbps     float64
	Scheme   modem.Scheme
	Rate     coding.CodeRate
	RateBits byte // 4-bit RATE field value (R1-R4, R1 first)
	Nbpsc    int  // coded bits per subcarrier
	Ncbps    int  // coded bits per OFDM symbol
	Ndbps    int  // data bits per OFDM symbol
}

// StandardMCS lists all eight 802.11a/g rates in ascending order.
func StandardMCS() []MCS {
	return []MCS{
		{"BPSK 1/2", 6, modem.BPSK, coding.Rate1_2, 0b1101, 1, 48, 24},
		{"BPSK 3/4", 9, modem.BPSK, coding.Rate3_4, 0b1111, 1, 48, 36},
		{"QPSK 1/2", 12, modem.QPSK, coding.Rate1_2, 0b0101, 2, 96, 48},
		{"QPSK 3/4", 18, modem.QPSK, coding.Rate3_4, 0b0111, 2, 96, 72},
		{"16-QAM 1/2", 24, modem.QAM16, coding.Rate1_2, 0b1001, 4, 192, 96},
		{"16-QAM 3/4", 36, modem.QAM16, coding.Rate3_4, 0b1011, 4, 192, 144},
		{"64-QAM 2/3", 48, modem.QAM64, coding.Rate2_3, 0b0001, 6, 288, 192},
		{"64-QAM 3/4", 54, modem.QAM64, coding.Rate3_4, 0b0011, 6, 288, 216},
	}
}

// MCSByName returns the MCS with the given Name.
func MCSByName(name string) (MCS, error) {
	for _, m := range StandardMCS() {
		if m.Name == name {
			return m, nil
		}
	}
	return MCS{}, fmt.Errorf("wifi: unknown MCS %q", name)
}

// MCSByRateBits returns the MCS encoded by a SIGNAL field RATE value.
func MCSByRateBits(bits byte) (MCS, error) {
	for _, m := range StandardMCS() {
		if m.RateBits == bits&0xF {
			return m, nil
		}
	}
	return MCS{}, fmt.Errorf("wifi: invalid RATE bits %04b", bits&0xF)
}

// PaperMCS returns the three schemes the paper evaluates (§5.1):
// QPSK 1/2, 16-QAM 1/2 and 64-QAM 2/3.
func PaperMCS() []MCS {
	out := make([]MCS, 0, 3)
	for _, name := range []string{"QPSK 1/2", "16-QAM 1/2", "64-QAM 2/3"} {
		m, err := MCSByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, m)
	}
	return out
}

// SymbolsForPSDU returns the number of DATA OFDM symbols needed for a PSDU
// of n octets: ceil((16 + 8n + 6) / Ndbps) per §18.3.5.4.
func (m MCS) SymbolsForPSDU(n int) int {
	bits := 16 + 8*n + 6
	return (bits + m.Ndbps - 1) / m.Ndbps
}
