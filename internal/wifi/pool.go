package wifi

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/ofdm"
)

// PPDULen returns the sample length of a PPDU carrying an n-octet PSDU on
// the grid at the given MCS, without encoding it: preamble + SIGNAL +
// data symbols.
func PPDULen(g ofdm.Grid, mcs MCS, psduLen int) int {
	return ofdm.PreambleLen(g) + (1+mcs.SymbolsForPSDU(psduLen))*g.SymLen()
}

// WaveformPool is a process-wide cache of pre-encoded PPDU waveforms,
// keyed by (grid, MCS). The experiment harness's interferer tiles are
// random payloads whose only role is to radiate realistically-coded OFDM
// energy; encoding a fresh PPDU per tile per packet costs an IFFT per
// symbol and was ~20% of a Fig. 8 sweep. A pool instead pre-encodes Size
// waveforms per key from its own deterministic RNG and lets each packet
// pick tiles with a single draw from the packet RNG (Pick), so any two
// runs of the same packet seed — e.g. the sweep engine's shards and a
// direct RunPSR — select bit-identical waveforms.
//
// Because pool waveforms replace the per-tile payload/scrambler draws,
// results with a pool differ from the pool-less path (which remains the
// default and is pinned by the same-seed regression tests); they are
// statistically equivalent, and deterministic for a fixed pool seed.
//
// A WaveformPool is safe for concurrent use; entries are encoded lazily,
// once, under per-key initialisation.
type WaveformPool struct {
	size      int
	psduBytes int
	seed      int64

	mu      sync.Mutex
	entries map[poolKey]*poolEntry
}

type poolKey struct {
	grid ofdm.Grid
	mcs  string
}

type poolEntry struct {
	once  sync.Once
	ppdus []*PPDU
	err   error

	mu       sync.Mutex
	filtered map[filterKey][][]complex128
}

// filterKey identifies a multipath channel by its exact tap values, so
// channel-applied variants of pool waveforms can be cached too (the
// canonical scenarios reuse a handful of fixed tap profiles).
type filterKey string

// DefaultPoolSize is the number of pre-encoded waveforms per (grid, MCS)
// the benches use: large enough that a 2000-packet point never sees a tile
// repeated often enough to bias the PSR estimate, small enough to encode
// in milliseconds.
const DefaultPoolSize = 64

// poolPayloadBytes mirrors the 396-byte (+FCS) interferer payloads the
// pool-less path draws.
const poolPayloadBytes = 396

// NewWaveformPool returns a pool with size pre-encoded waveforms per
// (grid, MCS) key, generated from the deterministic pool seed. size <= 0
// selects DefaultPoolSize.
func NewWaveformPool(size int, seed int64) *WaveformPool {
	if size <= 0 {
		size = DefaultPoolSize
	}
	return &WaveformPool{
		size:      size,
		psduBytes: poolPayloadBytes + 4,
		seed:      seed,
		entries:   make(map[poolKey]*poolEntry),
	}
}

// Size returns the number of waveforms per key.
func (p *WaveformPool) Size() int { return p.size }

// PSDUBytes returns the PSDU size of the pooled waveforms.
func (p *WaveformPool) PSDUBytes() int { return p.psduBytes }

func (p *WaveformPool) entry(g ofdm.Grid, mcs MCS) (*poolEntry, error) {
	key := poolKey{grid: g, mcs: mcs.Name}
	p.mu.Lock()
	e, ok := p.entries[key]
	if !ok {
		e = &poolEntry{}
		p.entries[key] = e
	}
	p.mu.Unlock()

	e.once.Do(func() {
		// Entry RNG: deterministic in (pool seed, key, index) only — the
		// encoded waveforms do not depend on which packet first touches
		// the key.
		h := p.seed
		for _, v := range []int64{int64(g.NFFT), int64(g.CP), int64(g.Center), int64(mcs.Mbps)} {
			h = h*1_000_000_007 + v
		}
		ppdus := make([]*PPDU, p.size)
		for i := range ppdus {
			r := dsp.NewRand(h + int64(i)*2_654_435_761)
			cfg := TxConfig{Grid: g, MCS: mcs, ScramblerSeed: uint8(1 + r.Intn(127))}
			ppdu, err := BuildPPDU(cfg, BuildPSDU(r.Bytes(poolPayloadBytes)))
			if err != nil {
				e.err = fmt.Errorf("wifi: waveform pool: %w", err)
				return
			}
			ppdus[i] = ppdu
		}
		e.ppdus = ppdus
	})
	return e, e.err
}

// Pick selects one pooled waveform for (g, mcs) using a single r.Intn(Size)
// draw — the pool's entire consumption of the packet RNG — and returns its
// samples. The returned slice is shared and must not be modified.
func (p *WaveformPool) Pick(r *dsp.Rand, g ofdm.Grid, mcs MCS) ([]complex128, error) {
	e, err := p.entry(g, mcs)
	if err != nil {
		return nil, err
	}
	return e.ppdus[r.Intn(p.size)].Samples, nil
}

// maxFilteredProfiles bounds the distinct channel-tap profiles cached per
// (grid, MCS) entry. The canonical scenarios reuse a handful of fixed
// profiles (cache hits); sweeps that draw fresh random channels per point
// (delay-spread) would otherwise grow the cache for the lifetime of a
// long-running engine, so profiles beyond the bound are filtered on the
// fly without caching.
const maxFilteredProfiles = 16

// PickFiltered is Pick with the multipath channel pre-applied: the
// channel-filtered variant of each picked waveform is computed once per
// (key, index, taps) and cached (up to maxFilteredProfiles distinct tap
// profiles per key), so steady-state packets skip both the encode and the
// convolution. ch == nil returns the unfiltered waveform.
func (p *WaveformPool) PickFiltered(r *dsp.Rand, g ofdm.Grid, mcs MCS, ch *channel.Multipath) ([]complex128, error) {
	e, err := p.entry(g, mcs)
	if err != nil {
		return nil, err
	}
	idx := r.Intn(p.size)
	if ch == nil {
		return e.ppdus[idx].Samples, nil
	}
	fk := tapsKey(ch)
	e.mu.Lock()
	if e.filtered == nil {
		e.filtered = make(map[filterKey][][]complex128)
	}
	waves, ok := e.filtered[fk]
	if !ok {
		if len(e.filtered) >= maxFilteredProfiles {
			e.mu.Unlock()
			return ch.Apply(e.ppdus[idx].Samples), nil
		}
		waves = make([][]complex128, p.size)
		e.filtered[fk] = waves
	}
	w := waves[idx]
	e.mu.Unlock()
	if w != nil {
		return w, nil
	}
	// Convolve outside the lock; concurrent first touches of the same
	// index may duplicate the work, but both results are identical and
	// either may win the slot.
	w = ch.Apply(e.ppdus[idx].Samples)
	e.mu.Lock()
	if waves[idx] == nil {
		waves[idx] = w
	} else {
		w = waves[idx]
	}
	e.mu.Unlock()
	return w, nil
}

// tapsKey serialises the channel taps exactly (bit patterns, not rounded
// text) so distinct channels never collide.
func tapsKey(ch *channel.Multipath) filterKey {
	b := make([]byte, 0, 16*len(ch.Taps))
	for _, t := range ch.Taps {
		b = appendFloatBits(b, real(t))
		b = appendFloatBits(b, imag(t))
	}
	return filterKey(b)
}

func appendFloatBits(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	for s := 0; s < 64; s += 8 {
		b = append(b, byte(u>>s))
	}
	return b
}
