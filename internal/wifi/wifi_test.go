package wifi

import (
	"bytes"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/coding"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/ofdm"
)

func TestStandardMCSTable(t *testing.T) {
	all := StandardMCS()
	if len(all) != 8 {
		t.Fatalf("MCS count %d", len(all))
	}
	for _, m := range all {
		if m.Ncbps != 48*m.Nbpsc {
			t.Errorf("%s: Ncbps %d != 48*Nbpsc", m.Name, m.Ncbps)
		}
		wantNdbps := m.Ncbps * m.Rate.Num() / m.Rate.Den()
		if m.Ndbps != wantNdbps {
			t.Errorf("%s: Ndbps %d, want %d", m.Name, m.Ndbps, wantNdbps)
		}
		if m.Scheme.BitsPerSymbol() != m.Nbpsc {
			t.Errorf("%s: scheme bpsc mismatch", m.Name)
		}
		// Mbps = Ndbps / 4 µs.
		if m.Mbps != float64(m.Ndbps)/4 {
			t.Errorf("%s: Mbps %v vs Ndbps %d", m.Name, m.Mbps, m.Ndbps)
		}
	}
}

func TestMCSByNameAndRateBits(t *testing.T) {
	m, err := MCSByName("16-QAM 1/2")
	if err != nil || m.Mbps != 24 {
		t.Fatalf("MCSByName: %v %v", m, err)
	}
	if _, err := MCSByName("nope"); err == nil {
		t.Fatal("expected error")
	}
	for _, m := range StandardMCS() {
		got, err := MCSByRateBits(m.RateBits)
		if err != nil || got.Name != m.Name {
			t.Errorf("RateBits %04b: %v %v", m.RateBits, got.Name, err)
		}
	}
	if _, err := MCSByRateBits(0b0000); err == nil {
		t.Fatal("expected error for invalid rate bits")
	}
}

func TestPaperMCS(t *testing.T) {
	ms := PaperMCS()
	if len(ms) != 3 || ms[0].Name != "QPSK 1/2" || ms[2].Name != "64-QAM 2/3" {
		t.Fatalf("PaperMCS = %v", ms)
	}
}

func TestSymbolsForPSDU(t *testing.T) {
	m, _ := MCSByName("QPSK 1/2") // Ndbps 48
	// 400-byte packet (the paper's size): 16+3200+6 = 3222 bits → 68 symbols.
	if n := m.SymbolsForPSDU(400); n != 68 {
		t.Fatalf("symbols = %d, want 68", n)
	}
	if n := m.SymbolsForPSDU(1); n != 1 {
		t.Fatalf("1-byte PSDU symbols = %d", n)
	}
}

func TestSignalBitsRoundTrip(t *testing.T) {
	for _, m := range StandardMCS() {
		for _, ln := range []int{1, 100, 400, 4095} {
			bits, err := EncodeSignalBits(m, ln)
			if err != nil {
				t.Fatal(err)
			}
			gm, gl, err := DecodeSignalBits(bits)
			if err != nil {
				t.Fatalf("%s len %d: %v", m.Name, ln, err)
			}
			if gm.Name != m.Name || gl != ln {
				t.Fatalf("decoded %s/%d, want %s/%d", gm.Name, gl, m.Name, ln)
			}
		}
	}
}

func TestSignalBitsRejectBadLength(t *testing.T) {
	m := StandardMCS()[0]
	if _, err := EncodeSignalBits(m, 0); err == nil {
		t.Fatal("length 0 should fail")
	}
	if _, err := EncodeSignalBits(m, 4096); err == nil {
		t.Fatal("length 4096 should fail")
	}
}

func TestSignalParityDetection(t *testing.T) {
	m := StandardMCS()[2]
	bits, _ := EncodeSignalBits(m, 50)
	bits[7] ^= 1
	if _, _, err := DecodeSignalBits(bits); err == nil {
		t.Fatal("flipped bit should break parity")
	}
	if _, _, err := DecodeSignalBits(make([]byte, 10)); err == nil {
		t.Fatal("wrong length should fail")
	}
}

func TestSignalSymbolCodedRoundTrip(t *testing.T) {
	v := coding.NewViterbi()
	for _, m := range StandardMCS() {
		coded, err := EncodeSignalSymbolBits(m, 321)
		if err != nil {
			t.Fatal(err)
		}
		if len(coded) != 48 {
			t.Fatalf("coded SIGNAL bits = %d", len(coded))
		}
		gm, gl, err := DecodeSignalSymbolLLRs(coding.HardToLLR(coded), v)
		if err != nil {
			t.Fatal(err)
		}
		if gm.Name != m.Name || gl != 321 {
			t.Fatalf("round trip got %s/%d", gm.Name, gl)
		}
	}
	if _, _, err := DecodeSignalSymbolLLRs(make([]float64, 10), v); err == nil {
		t.Fatal("wrong llr count should fail")
	}
}

func TestBuildPSDUHasValidFCS(t *testing.T) {
	psdu := BuildPSDU([]byte("payload"))
	if body, ok := coding.CheckFCS(psdu); !ok || string(body) != "payload" {
		t.Fatal("BuildPSDU FCS invalid")
	}
}

func mustPPDU(t *testing.T, cfg TxConfig, psdu []byte) *PPDU {
	t.Helper()
	p, err := BuildPPDU(cfg, psdu)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPPDULayout(t *testing.T) {
	m, _ := MCSByName("QPSK 1/2")
	cfg := TxConfig{Grid: ofdm.Native80211Grid(), MCS: m}
	psdu := dsp.NewRand(1).Bytes(100)
	p := mustPPDU(t, cfg, psdu)
	if p.PreambleLen != 320 {
		t.Fatalf("preamble %d", p.PreambleLen)
	}
	if p.SignalStart != 320 || p.DataStart != 400 {
		t.Fatalf("layout: signal %d data %d", p.SignalStart, p.DataStart)
	}
	wantSyms := m.SymbolsForPSDU(100)
	if p.NumDataSymbols != wantSyms {
		t.Fatalf("symbols %d, want %d", p.NumDataSymbols, wantSyms)
	}
	if len(p.Samples) != 400+wantSyms*80 {
		t.Fatalf("total samples %d", len(p.Samples))
	}
	if p.DataSymbolStart(2) != p.DataStart+160 {
		t.Fatal("DataSymbolStart")
	}
}

func TestBuildPPDURejectsBadInput(t *testing.T) {
	m, _ := MCSByName("QPSK 1/2")
	if _, err := BuildPPDU(TxConfig{Grid: ofdm.Grid{NFFT: 48}, MCS: m}, []byte{1}); err == nil {
		t.Fatal("bad grid should fail")
	}
	cfg := TxConfig{Grid: ofdm.Native80211Grid(), MCS: m}
	if _, err := BuildPPDU(cfg, nil); err == nil {
		t.Fatal("empty PSDU should fail")
	}
	if _, err := BuildPPDU(cfg, make([]byte, 5000)); err == nil {
		t.Fatal("oversize PSDU should fail")
	}
}

func TestPPDUUnitPower(t *testing.T) {
	m, _ := MCSByName("16-QAM 1/2")
	cfg := TxConfig{Grid: ofdm.Native80211Grid(), MCS: m}
	p := mustPPDU(t, cfg, dsp.NewRand(2).Bytes(400))
	pw := dsp.Power(p.Samples)
	if pw < 0.7 || pw > 1.4 {
		t.Fatalf("average PPDU power = %v, want ~1", pw)
	}
}

func TestPPDUPilotsMatchSchedule(t *testing.T) {
	m, _ := MCSByName("QPSK 1/2")
	g := ofdm.Native80211Grid()
	cfg := TxConfig{Grid: g, MCS: m, Gain: 1}
	p := mustPPDU(t, cfg, dsp.NewRand(3).Bytes(60))
	d := ofdm.MustDemodulator(g)
	// SIGNAL symbol uses p₀, data symbol k uses p₍k₊₁₎.
	for k := -1; k < p.NumDataSymbols; k++ {
		start := p.SignalStart + (k+1)*g.SymLen()
		bins, err := d.Standard(p.Samples, start)
		if err != nil {
			t.Fatal(err)
		}
		for sc, want := range ofdm.PilotValues(k + 1) {
			if got := bins[g.Bin(sc)]; cmplx.Abs(got-want) > 1e-6 {
				t.Fatalf("symbol %d pilot %d: got %v want %v", k, sc, got, want)
			}
		}
	}
}

// decodePPDU inverts the DATA pipeline with an ideal (zero-channel)
// demodulation; this is the specification the rx package implements.
func decodePPDU(t *testing.T, p *PPDU) []byte {
	t.Helper()
	g := p.Cfg.Grid
	d := ofdm.MustDemodulator(g)
	cons := modem.New(p.Cfg.MCS.Scheme)
	il := coding.MustInterleaver(p.Cfg.MCS.Ncbps, p.Cfg.MCS.Nbpsc)
	scs := ofdm.DataSubcarriers()
	var coded []byte
	for k := 0; k < p.NumDataSymbols; k++ {
		bins, err := d.Standard(p.Samples, p.DataSymbolStart(k))
		if err != nil {
			t.Fatal(err)
		}
		rx := make([]complex128, len(scs))
		for i, sc := range scs {
			rx[i] = bins[g.Bin(sc)]
		}
		blk := cons.HardDemap(rx, nil)
		coded = append(coded, il.Deinterleave(blk)...)
	}
	nInfo := p.NumDataSymbols * p.Cfg.MCS.Ndbps
	v := coding.NewViterbi()
	// Anchor the traceback at the known zero state after the tail bits:
	// the scrambled pad bits leave the encoder in a nonzero state, so a
	// plain terminated traceback can corrupt payload bits when the pad is
	// shorter than the survivor-merge depth.
	bits, err := v.DecodePuncturedAnchored(coding.HardToLLR(coded), p.Cfg.MCS.Rate, nInfo, DataAnchorBit(p.PSDULen, nInfo))
	if err != nil {
		t.Fatal(err)
	}
	coding.NewScrambler(p.Cfg.ScramblerSeed).Apply(bits)
	return coding.BitsToBytes(bits[16 : 16+8*p.PSDULen])
}

func TestPPDUDataRoundTripAllMCS(t *testing.T) {
	r := dsp.NewRand(4)
	for _, m := range StandardMCS() {
		cfg := TxConfig{Grid: ofdm.Native80211Grid(), MCS: m, Gain: 1}
		psdu := BuildPSDU(r.Bytes(120))
		p := mustPPDU(t, cfg, psdu)
		got := decodePPDU(t, p)
		if !bytes.Equal(got, psdu) {
			t.Fatalf("%s: PSDU round trip failed", m.Name)
		}
		if body, ok := coding.CheckFCS(got); !ok || len(body) != 120 {
			t.Fatalf("%s: FCS check failed after round trip", m.Name)
		}
	}
}

func TestPPDURoundTripOnWideGrid(t *testing.T) {
	r := dsp.NewRand(5)
	m, _ := MCSByName("64-QAM 2/3")
	cfg := TxConfig{Grid: ofdm.WideGrid(64, 16, 4, 128), MCS: m, Gain: 1}
	psdu := BuildPSDU(r.Bytes(200))
	p := mustPPDU(t, cfg, psdu)
	if got := decodePPDU(t, p); !bytes.Equal(got, psdu) {
		t.Fatal("wide-grid PSDU round trip failed")
	}
}

func TestPPDURoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		all := StandardMCS()
		m := all[r.Intn(len(all))]
		cfg := TxConfig{
			Grid:          ofdm.Native80211Grid(),
			MCS:           m,
			ScramblerSeed: uint8(r.Intn(128)),
			Gain:          1,
		}
		psdu := r.Bytes(1 + r.Intn(300))
		p, err := BuildPPDU(cfg, psdu)
		if err != nil {
			return false
		}
		return bytes.Equal(decodePPDU(t, p), psdu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestScramblerSeedChangesWaveform(t *testing.T) {
	m, _ := MCSByName("QPSK 1/2")
	cfg1 := TxConfig{Grid: ofdm.Native80211Grid(), MCS: m, ScramblerSeed: 0x5D, Gain: 1}
	cfg2 := cfg1
	cfg2.ScramblerSeed = 0x11
	psdu := make([]byte, 50)
	p1 := mustPPDU(t, cfg1, psdu)
	p2 := mustPPDU(t, cfg2, psdu)
	if dsp.MaxAbsDiff(p1.Samples[p1.DataStart:], p2.Samples[p2.DataStart:]) < 1e-6 {
		t.Fatal("different scrambler seeds should change the data waveform")
	}
	// But both decode to the same PSDU.
	if !bytes.Equal(decodePPDU(t, p1), decodePPDU(t, p2)) {
		t.Fatal("seed must not affect decoded data")
	}
}

func BenchmarkBuildPPDU400B(b *testing.B) {
	m, _ := MCSByName("16-QAM 1/2")
	cfg := TxConfig{Grid: ofdm.Native80211Grid(), MCS: m}
	psdu := BuildPSDU(dsp.NewRand(1).Bytes(396))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPPDU(cfg, psdu); err != nil {
			b.Fatal(err)
		}
	}
}
