package wifi

import (
	"fmt"

	"repro/internal/coding"
)

// The SIGNAL field (§18.3.4) is a single BPSK rate-1/2 OFDM symbol carrying
// 24 bits: RATE(4) | reserved(1) | LENGTH(12, LSB first) | even parity(1) |
// tail(6 zeros). It is convolutionally encoded and interleaved but never
// scrambled or punctured.

// MaxPSDULen is the largest LENGTH value the 12-bit field can carry.
const MaxPSDULen = 4095

// EncodeSignalBits builds the 24 uncoded SIGNAL bits for an MCS and PSDU
// length in octets.
func EncodeSignalBits(m MCS, psduLen int) ([]byte, error) {
	if psduLen < 1 || psduLen > MaxPSDULen {
		return nil, fmt.Errorf("wifi: PSDU length %d outside [1,%d]", psduLen, MaxPSDULen)
	}
	bits := make([]byte, 24)
	for i := 0; i < 4; i++ { // RATE, R1 transmitted first = MSB of RateBits
		bits[i] = (m.RateBits >> (3 - i)) & 1
	}
	// bits[4] reserved = 0
	for i := 0; i < 12; i++ { // LENGTH, LSB first
		bits[5+i] = byte(psduLen>>i) & 1
	}
	var parity byte
	for _, b := range bits[:17] {
		parity ^= b
	}
	bits[17] = parity
	// bits[18:24] tail = 0
	return bits, nil
}

// DecodeSignalBits parses 24 decoded SIGNAL bits, validating parity and the
// RATE field, and returns the MCS and PSDU length.
func DecodeSignalBits(bits []byte) (MCS, int, error) {
	if len(bits) != 24 {
		return MCS{}, 0, fmt.Errorf("wifi: SIGNAL needs 24 bits, got %d", len(bits))
	}
	var parity byte
	for _, b := range bits[:18] {
		parity ^= b & 1
	}
	if parity != 0 {
		return MCS{}, 0, fmt.Errorf("wifi: SIGNAL parity check failed")
	}
	var rate byte
	for i := 0; i < 4; i++ {
		rate = rate<<1 | bits[i]&1
	}
	m, err := MCSByRateBits(rate)
	if err != nil {
		return MCS{}, 0, err
	}
	length := 0
	for i := 0; i < 12; i++ {
		length |= int(bits[5+i]&1) << i
	}
	if length == 0 {
		return MCS{}, 0, fmt.Errorf("wifi: SIGNAL length 0")
	}
	return m, length, nil
}

// signalInterleaver is the BPSK interleaver used by the SIGNAL symbol.
var signalInterleaver = coding.MustInterleaver(48, 1)

// EncodeSignalSymbolBits convolutionally encodes and interleaves the 24
// SIGNAL bits into the 48 coded bits of the SIGNAL OFDM symbol.
func EncodeSignalSymbolBits(m MCS, psduLen int) ([]byte, error) {
	bits, err := EncodeSignalBits(m, psduLen)
	if err != nil {
		return nil, err
	}
	return signalInterleaver.Interleave(coding.ConvEncode(bits)), nil
}

// DecodeSignalSymbolLLRs deinterleaves and Viterbi-decodes the 48 coded
// SIGNAL LLRs, then parses the field.
func DecodeSignalSymbolLLRs(llrs []float64, v *coding.Viterbi) (MCS, int, error) {
	if len(llrs) != 48 {
		return MCS{}, 0, fmt.Errorf("wifi: SIGNAL symbol needs 48 llrs, got %d", len(llrs))
	}
	de := signalInterleaver.DeinterleaveLLR(llrs)
	bits, err := v.Decode(de)
	if err != nil {
		return MCS{}, 0, err
	}
	return DecodeSignalBits(bits)
}
