package wifi

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/ofdm"
)

func TestPPDULenMatchesBuild(t *testing.T) {
	g := ofdm.WideGrid(64, 16, 4, 112)
	for _, name := range []string{"BPSK 1/2", "16-QAM 1/2", "64-QAM 3/4"} {
		m, err := MCSByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{5, 100, 400} {
			ppdu, err := BuildPPDU(TxConfig{Grid: g, MCS: m}, make([]byte, n))
			if err != nil {
				t.Fatal(err)
			}
			if got := PPDULen(g, m, n); got != len(ppdu.Samples) {
				t.Errorf("%s/%dB: PPDULen = %d, built = %d", name, n, got, len(ppdu.Samples))
			}
		}
	}
}

// TestPoolDeterministicAcrossInstances pins that pool contents depend
// only on (seed, size, key, index) — two pools built in different
// processes (here: instances) serve identical waveforms, the property
// that makes pooled sweeps reproducible.
func TestPoolDeterministicAcrossInstances(t *testing.T) {
	g := ofdm.WideGrid(64, 16, 4, 112)
	m, err := MCSByName("16-QAM 1/2")
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewWaveformPool(4, 9)
	p2 := NewWaveformPool(4, 9)
	r1, r2 := dsp.NewRand(3), dsp.NewRand(3)
	for i := 0; i < 8; i++ {
		w1, err := p1.Pick(r1, g, m)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := p2.Pick(r2, g, m)
		if err != nil {
			t.Fatal(err)
		}
		if &w1[0] == &w2[0] {
			t.Fatal("pools share storage")
		}
		if dsp.MaxAbsDiff(w1, w2) != 0 {
			t.Fatalf("pick %d differs across identically-seeded pools", i)
		}
	}
	// A different pool seed yields different waveforms.
	p3 := NewWaveformPool(4, 10)
	w1, _ := p1.Pick(dsp.NewRand(3), g, m)
	w3, err := p3.Pick(dsp.NewRand(3), g, m)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.MaxAbsDiff(w1, w3) == 0 {
		t.Fatal("pool seed has no effect")
	}
}

// TestPoolSingleDraw pins the RNG contract: Pick consumes exactly one
// Intn draw from the packet RNG — what keeps engine shards and direct
// runs aligned.
func TestPoolSingleDraw(t *testing.T) {
	g := ofdm.Native80211Grid()
	m, err := MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	p := NewWaveformPool(8, 1)
	ra, rb := dsp.NewRand(42), dsp.NewRand(42)
	if _, err := p.Pick(ra, g, m); err != nil {
		t.Fatal(err)
	}
	rb.Intn(p.Size())
	for i := 0; i < 4; i++ {
		if a, b := ra.Intn(1_000_003), rb.Intn(1_000_003); a != b {
			t.Fatalf("draw %d: Pick consumed more than one Intn (%d vs %d)", i, a, b)
		}
	}
}

// TestPickFilteredMatchesApply pins that the cached channel-filtered
// variant equals filtering the picked waveform directly.
func TestPickFilteredMatchesApply(t *testing.T) {
	g := ofdm.Native80211Grid()
	m, err := MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	ch := channel.Indoor2Tap()
	p := NewWaveformPool(3, 5)
	for i := 0; i < 6; i++ {
		seed := int64(100 + i)
		plain, err := p.Pick(dsp.NewRand(seed), g, m)
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := p.PickFiltered(dsp.NewRand(seed), g, m, ch)
		if err != nil {
			t.Fatal(err)
		}
		if dsp.MaxAbsDiff(filtered, ch.Apply(plain)) != 0 {
			t.Fatalf("pick %d: filtered variant differs from Apply", i)
		}
		// nil channel returns the unfiltered waveform.
		raw, err := p.PickFiltered(dsp.NewRand(seed), g, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dsp.MaxAbsDiff(raw, plain) != 0 {
			t.Fatalf("pick %d: nil-channel variant differs from Pick", i)
		}
	}
}
