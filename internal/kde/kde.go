// Package kde implements the kernel density estimation machinery of the
// paper's interference model (§4.1, Eq. 4): a bivariate Gaussian *product*
// kernel over decoupled amplitude and phase deviations, with per-dimension
// bandwidths selected either by Silverman's rule of thumb or by the
// data-driven least-squares cross-validation the paper invokes ("we use the
// data driven approach to determine the best bandwidth").
//
// A univariate estimator is also provided for the illustrative analyses
// (Fig. 6a bandwidth sensitivity, Fig. 6b CDF accuracy).
package kde

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
)

const invSqrt2Pi = 0.3989422804014327 // 1/√(2π)

// MinBandwidth floors every selected bandwidth so a degenerate sample set
// (all identical deviations, e.g. no interference at all) still yields a
// proper, sharply peaked density instead of a delta.
const MinBandwidth = 1e-3

// Bivariate is the paper's product-kernel density over (amplitude, phase)
// deviations. Phase distances are wrapped to (−π, π] so the phase dimension
// is treated circularly. Immutable after construction; safe for concurrent
// use.
type Bivariate struct {
	amp   []float64
	phase []float64
	ba    float64
	bphi  float64
	norm  float64 // 1 / (n · 2π · ba · bphi)
	// Variable-bandwidth (Abramson) factors: kernel i uses bandwidths
	// (λᵢ·ba, λᵢ·bphi). nil means fixed bandwidth (λᵢ ≡ 1).
	lambda []float64
	weight []float64 // per-kernel normalisation 1/(2π·ba·bphi·λᵢ²·n)
	// Uniform background mixture (SetBackground).
	bgWeight float64
	bgLevel  float64
}

// NewBivariate builds the estimator from paired amplitude/phase deviation
// samples with explicit bandwidths. Bandwidths are floored at MinBandwidth.
func NewBivariate(amp, phase []float64, ba, bphi float64) (*Bivariate, error) {
	if len(amp) == 0 || len(amp) != len(phase) {
		return nil, fmt.Errorf("kde: need equal, non-empty sample sets (got %d, %d)", len(amp), len(phase))
	}
	if ba < MinBandwidth {
		ba = MinBandwidth
	}
	if bphi < MinBandwidth {
		bphi = MinBandwidth
	}
	b := &Bivariate{
		amp:   append([]float64(nil), amp...),
		phase: append([]float64(nil), phase...),
		ba:    ba,
		bphi:  bphi,
	}
	b.norm = 1 / (float64(len(amp)) * 2 * math.Pi * ba * bphi)
	return b, nil
}

// NewBivariateAuto builds the estimator with per-dimension bandwidths
// chosen by the selector.
func NewBivariateAuto(amp, phase []float64, sel BandwidthSelector) (*Bivariate, error) {
	return NewBivariate(amp, phase, sel(amp), sel(phase))
}

// NewBivariateAdaptive builds the variable-bandwidth estimator the paper
// uses ("a bivariate gaussian product kernel density estimation function
// with a variable bandwidth", citing Terrell & Scott [47]): Abramson's
// two-stage scheme, where a fixed-bandwidth pilot density f̃ sets a
// per-sample factor λᵢ = (g/f̃(xᵢ))^½ (g = geometric mean of the pilot
// densities), so kernels in dense regions sharpen and isolated outliers —
// deviations from heavily interfered segments — spread out. This matches
// the paper's observation that "it is beneficial to have a larger bandwidth
// at low densities and a smaller bandwidth at high densities of data".
func NewBivariateAdaptive(amp, phase []float64, sel BandwidthSelector) (*Bivariate, error) {
	pilot, err := NewBivariateAuto(amp, phase, sel)
	if err != nil {
		return nil, err
	}
	n := len(amp)
	dens := make([]float64, n)
	logSum := 0.0
	for i := range amp {
		d := pilot.Density(amp[i], phase[i])
		if d < math.SmallestNonzeroFloat64 {
			d = math.SmallestNonzeroFloat64
		}
		dens[i] = d
		logSum += math.Log(d)
	}
	g := math.Exp(logSum / float64(n))
	b := &Bivariate{
		amp:    pilot.amp,
		phase:  pilot.phase,
		ba:     pilot.ba,
		bphi:   pilot.bphi,
		norm:   pilot.norm,
		lambda: make([]float64, n),
		weight: make([]float64, n),
	}
	for i := range dens {
		l := math.Sqrt(g / dens[i])
		// Clamp so a single extreme outlier neither collapses nor explodes.
		if l < 0.25 {
			l = 0.25
		} else if l > 8 {
			l = 8
		}
		b.lambda[i] = l
		b.weight[i] = 1 / (float64(n) * 2 * math.Pi * b.ba * b.bphi * l * l)
	}
	return b, nil
}

// Adaptive reports whether the estimator uses variable bandwidths.
func (b *Bivariate) Adaptive() bool { return b.lambda != nil }

// SetBackground mixes a uniform background component into the density:
// Density becomes (1−weight)·f̂ + weight·U, with U uniform over amplitude
// ∈ [0, maxAmp] × phase ∈ (−π, π]. The background makes the likelihood
// degrade gracefully for deviations far from every training sample —
// observations from heavily interfered FFT segments then contribute a
// near-constant term to every candidate's score instead of a numerically
// floored log-density that randomises maximum-likelihood comparisons.
func (b *Bivariate) SetBackground(weight, maxAmp float64) {
	if weight <= 0 || maxAmp <= 0 {
		b.bgWeight, b.bgLevel = 0, 0
		return
	}
	if weight > 0.5 {
		weight = 0.5
	}
	b.bgWeight = weight
	b.bgLevel = 1 / (2 * math.Pi * maxAmp)
}

// Background returns the mixture weight and uniform level in use.
func (b *Bivariate) Background() (weight, level float64) {
	return b.bgWeight, b.bgLevel
}

// Bandwidths returns the amplitude and phase bandwidths in use.
func (b *Bivariate) Bandwidths() (ba, bphi float64) { return b.ba, b.bphi }

// NumSamples returns the training sample count (P·Np in the paper).
func (b *Bivariate) NumSamples() int { return len(b.amp) }

// Density evaluates the estimated probability density at an observed
// (amplitude, phase) deviation. This is Eq. 4 of the paper (with the
// per-sample variable-bandwidth factors when built adaptively).
func (b *Bivariate) Density(aObs, pObs float64) float64 {
	d := b.kernelDensity(aObs, pObs)
	if b.bgWeight > 0 {
		return (1-b.bgWeight)*d + b.bgWeight*b.bgLevel
	}
	return d
}

func (b *Bivariate) kernelDensity(aObs, pObs float64) float64 {
	inv2a := 1 / (2 * b.ba * b.ba)
	inv2p := 1 / (2 * b.bphi * b.bphi)
	var sum float64
	if b.lambda == nil {
		for i, sa := range b.amp {
			da := aObs - sa
			dp := dsp.WrapPhase(pObs - b.phase[i])
			e := da*da*inv2a + dp*dp*inv2p
			if e < 40 { // exp(-40) ≈ 4e-18: numerically irrelevant
				sum += math.Exp(-e)
			}
		}
		return sum * b.norm
	}
	for i, sa := range b.amp {
		da := aObs - sa
		dp := dsp.WrapPhase(pObs - b.phase[i])
		il2 := 1 / (b.lambda[i] * b.lambda[i])
		e := (da*da*inv2a + dp*dp*inv2p) * il2
		if e < 40 {
			sum += b.weight[i] * math.Exp(-e)
		}
	}
	return sum
}

// LogDensity returns log(Density), floored so that a zero density (possible
// only through floating-point underflow) yields a large negative value
// rather than −Inf, keeping ML comparisons well ordered.
func (b *Bivariate) LogDensity(aObs, pObs float64) float64 {
	d := b.Density(aObs, pObs)
	if d < math.SmallestNonzeroFloat64 {
		return -750 // ≈ log of the smallest positive float64
	}
	return math.Log(d)
}

// BandwidthSelector maps a sample set to a kernel bandwidth.
type BandwidthSelector func(samples []float64) float64

// Silverman implements the robust form of Silverman's rule of thumb,
// h = 0.9·min(σ̂, IQR/1.349)·n^(−1/5). The IQR guard keeps a few extreme
// outliers (e.g. the deviations from heavily interfered FFT segments pooled
// with many clean ones) from inflating the bandwidth and washing out the
// density's discriminating structure.
func Silverman(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return MinBandwidth
	}
	spread := dsp.StdDev(samples)
	if iqr := IQR(samples) / 1.349; iqr > 0 && iqr < spread {
		spread = iqr
	}
	h := 0.9 * spread * math.Pow(float64(n), -0.2)
	if h < MinBandwidth {
		h = MinBandwidth
	}
	return h
}

// IQR returns the interquartile range of the samples.
func IQR(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return quantile(sorted, 0.75) - quantile(sorted, 0.25)
}

// quantile interpolates the q-quantile of an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// LSCV selects the bandwidth minimising the least-squares cross-validation
// score over a multiplicative grid around the Silverman bandwidth. This is
// the "data driven approach" of §4.1; it needs at least two samples (the
// paper: "possible in the presence of at least two preambles").
func LSCV(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return MinBandwidth
	}
	base := Silverman(samples)
	best, bestScore := base, math.Inf(1)
	for _, mult := range []float64{0.25, 0.35, 0.5, 0.7, 1, 1.4, 2, 2.8, 4} {
		h := base * mult
		if h < MinBandwidth {
			h = MinBandwidth
		}
		if s := lscvScore(samples, h); s < bestScore {
			bestScore, best = s, h
		}
	}
	return best
}

// lscvScore computes the exact Gaussian-kernel LSCV objective
// ∫f̂² − 2/n Σ f̂₋ᵢ(xᵢ) up to terms independent of h.
func lscvScore(x []float64, h float64) float64 {
	n := float64(len(x))
	var cross float64
	for i := range x {
		for j := range x {
			if i == j {
				continue
			}
			d := (x[i] - x[j]) / h
			// K⁽²⁾(d) − 2K(d): Gaussian self-convolution minus twice kernel.
			cross += math.Exp(-d*d/4)/math.Sqrt2 - 2*math.Exp(-d*d/2)
		}
	}
	return invSqrt2Pi/(n*n*h)*cross*1 /* ΣΣ term */ +
		2*invSqrt2Pi/(n*h) /* diagonal of ∫f̂² */
}

// FixedBandwidth returns a selector that always picks h (for the Fig. 6a
// bandwidth-sensitivity analysis and ablations).
func FixedBandwidth(h float64) BandwidthSelector {
	return func([]float64) float64 { return h }
}

// Univariate is a one-dimensional Gaussian KDE.
type Univariate struct {
	samples []float64
	h       float64
}

// NewUnivariate builds a 1-D estimator with explicit bandwidth.
func NewUnivariate(samples []float64, h float64) (*Univariate, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	if h < MinBandwidth {
		h = MinBandwidth
	}
	return &Univariate{samples: append([]float64(nil), samples...), h: h}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (u *Univariate) Bandwidth() float64 { return u.h }

// Density evaluates the estimated density at x.
func (u *Univariate) Density(x float64) float64 {
	inv2 := 1 / (2 * u.h * u.h)
	var sum float64
	for _, s := range u.samples {
		d := x - s
		sum += math.Exp(-d * d * inv2)
	}
	return sum * invSqrt2Pi / (float64(len(u.samples)) * u.h)
}

// CDF evaluates the estimated cumulative distribution at x using the
// Gaussian kernel's exact integral (Φ of the standardised distance).
func (u *Univariate) CDF(x float64) float64 {
	var sum float64
	for _, s := range u.samples {
		sum += phi((x - s) / u.h)
	}
	return sum / float64(len(u.samples))
}

// phi is the standard normal CDF.
func phi(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
