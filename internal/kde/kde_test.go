package kde

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestNewBivariateValidation(t *testing.T) {
	if _, err := NewBivariate(nil, nil, 1, 1); err == nil {
		t.Fatal("empty samples should fail")
	}
	if _, err := NewBivariate([]float64{1}, []float64{1, 2}, 1, 1); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	b, err := NewBivariate([]float64{1}, []float64{0}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ba, bp := b.Bandwidths()
	if ba != MinBandwidth || bp != MinBandwidth {
		t.Fatal("zero bandwidths must be floored")
	}
}

func TestBivariateCopiesSamples(t *testing.T) {
	amp := []float64{1, 2}
	ph := []float64{0, 0.5}
	b, _ := NewBivariate(amp, ph, 1, 1)
	before := b.Density(1, 0)
	amp[0] = 100
	if b.Density(1, 0) != before {
		t.Fatal("estimator must copy its samples")
	}
	if b.NumSamples() != 2 {
		t.Fatal("NumSamples")
	}
}

func TestBivariateIntegratesToOne(t *testing.T) {
	r := dsp.NewRand(1)
	amp := make([]float64, 20)
	ph := make([]float64, 20)
	for i := range amp {
		amp[i] = math.Abs(r.NormFloat64())
		ph[i] = r.NormFloat64() * 0.5
	}
	b, err := NewBivariate(amp, ph, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Numerically integrate over a generous rectangle.
	const da, dp = 0.02, 0.02
	var integral float64
	for a := -4.0; a < 6.0; a += da {
		for p := -3.0; p < 3.0; p += dp {
			integral += b.Density(a, p) * da * dp
		}
	}
	if math.Abs(integral-1) > 0.03 {
		t.Fatalf("density integrates to %v, want ~1", integral)
	}
}

func TestBivariatePeaksAtSamples(t *testing.T) {
	b, _ := NewBivariate([]float64{1.0}, []float64{0.5}, 0.1, 0.1)
	at := b.Density(1.0, 0.5)
	off := b.Density(1.5, 0.5)
	if at <= off {
		t.Fatal("density should peak at the sample")
	}
	far := b.Density(10, 3)
	if far >= off {
		t.Fatal("density should decay with distance")
	}
}

func TestBivariatePhaseWrapping(t *testing.T) {
	// A sample at phase π−0.01 must give nearly the same density at
	// −π+0.01 (circular distance 0.02), not treat it as ~2π away.
	b, _ := NewBivariate([]float64{1}, []float64{math.Pi - 0.01}, 0.2, 0.2)
	near := b.Density(1, -math.Pi+0.01)
	at := b.Density(1, math.Pi-0.01)
	if near < at*0.9 {
		t.Fatalf("phase wrapping broken: at=%v near=%v", at, near)
	}
}

func TestBivariateSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		n := 5 + r.Intn(20)
		amp := make([]float64, n)
		ph := make([]float64, n)
		for i := range amp {
			amp[i] = r.NormFloat64()
			ph[i] = dsp.WrapPhase(r.NormFloat64())
		}
		b, err := NewBivariate(amp, ph, 0.5, 0.5)
		if err != nil {
			return false
		}
		// Density must be non-negative everywhere and finite.
		for trial := 0; trial < 10; trial++ {
			d := b.Density(r.NormFloat64()*3, dsp.WrapPhase(r.NormFloat64()*3))
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLogDensityFloor(t *testing.T) {
	b, _ := NewBivariate([]float64{0}, []float64{0}, 0.01, 0.01)
	ld := b.LogDensity(1e6, 0)
	if math.IsInf(ld, -1) || ld > -100 {
		t.Fatalf("LogDensity far away = %v, want large negative finite", ld)
	}
	near := b.LogDensity(0, 0)
	if near <= ld {
		t.Fatal("LogDensity ordering broken")
	}
}

func TestSilvermanScaling(t *testing.T) {
	r := dsp.NewRand(2)
	x := make([]float64, 100)
	for i := range x {
		x[i] = r.NormFloat64() * 2 // σ = 2
	}
	h := Silverman(x)
	spread := dsp.StdDev(x)
	if iqr := IQR(x) / 1.349; iqr < spread {
		spread = iqr
	}
	want := 0.9 * spread * math.Pow(100, -0.2)
	if math.Abs(h-want) > 1e-12 {
		t.Fatalf("Silverman = %v, want %v", h, want)
	}
	if Silverman([]float64{1}) != MinBandwidth {
		t.Fatal("single sample should floor")
	}
	if Silverman([]float64{3, 3, 3}) != MinBandwidth {
		t.Fatal("zero-variance samples should floor")
	}
}

func TestSilvermanRobustToOutliers(t *testing.T) {
	// A handful of extreme outliers (interfered-segment deviations pooled
	// with clean ones) must not inflate the bandwidth.
	clean := make([]float64, 26)
	r := dsp.NewRand(21)
	for i := range clean {
		clean[i] = r.NormFloat64() * 0.05
	}
	withOutliers := append(append([]float64{}, clean...), 10, 11, 9.5, 10.5, 9.8, 10.2)
	hc := Silverman(clean)
	ho := Silverman(withOutliers)
	if ho > 4*hc {
		t.Fatalf("outliers inflated bandwidth %vx", ho/hc)
	}
}

func TestIQR(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := IQR(x); math.Abs(got-4) > 1e-12 {
		t.Fatalf("IQR = %v, want 4", got)
	}
	if IQR([]float64{5}) != 0 {
		t.Fatal("single-sample IQR should be 0")
	}
}

func TestAdaptiveBivariate(t *testing.T) {
	// Mixture of a tight cluster and distant outliers: the adaptive
	// estimator must keep a sharp peak at the cluster while the fixed one
	// over-smooths (or, with robust bandwidth, under-covers the outliers).
	r := dsp.NewRand(22)
	amp := make([]float64, 0, 32)
	ph := make([]float64, 0, 32)
	for i := 0; i < 26; i++ {
		amp = append(amp, math.Abs(r.NormFloat64())*0.05)
		ph = append(ph, r.NormFloat64()*0.3)
	}
	for i := 0; i < 6; i++ {
		amp = append(amp, 10+r.NormFloat64()*0.1)
		ph = append(ph, r.NormFloat64())
	}
	adap, err := NewBivariateAdaptive(amp, ph, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	if !adap.Adaptive() {
		t.Fatal("adaptive flag not set")
	}
	fixed, err := NewBivariateAuto(amp, ph, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Adaptive() {
		t.Fatal("fixed estimator should not be adaptive")
	}
	// Sharp discrimination near the cluster for both.
	if adap.Density(0.05, 0) <= adap.Density(1.5, 0) {
		t.Fatal("adaptive density should peak at the cluster")
	}
	// The outlier region keeps meaningful mass under the adaptive kernel.
	if adap.Density(10, 0) <= 0 {
		t.Fatal("adaptive density should cover the outliers")
	}
	// Integrates to ~1.
	var integral float64
	const da, dp = 0.05, 0.05
	for a := -2.0; a < 13.0; a += da {
		for p := -3.1; p < 3.1; p += dp {
			integral += adap.Density(a, p) * da * dp
		}
	}
	if math.Abs(integral-1) > 0.08 {
		t.Fatalf("adaptive density integrates to %v", integral)
	}
}

func TestLSCVPicksReasonableBandwidth(t *testing.T) {
	r := dsp.NewRand(3)
	x := make([]float64, 60)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	h := LSCV(x)
	s := Silverman(x)
	if h < s/5 || h > s*5 {
		t.Fatalf("LSCV = %v far from Silverman %v", h, s)
	}
	if LSCV([]float64{1}) != MinBandwidth {
		t.Fatal("degenerate LSCV should floor")
	}
}

func TestLSCVAdaptsToBimodal(t *testing.T) {
	// For well-separated bimodal data the CV bandwidth should be smaller
	// than what the (variance-inflated) Silverman rule suggests.
	r := dsp.NewRand(4)
	x := make([]float64, 80)
	for i := range x {
		x[i] = r.NormFloat64() * 0.1
		if i%2 == 0 {
			x[i] += 10
		}
	}
	if h, s := LSCV(x), Silverman(x); h >= s {
		t.Fatalf("LSCV %v should undercut Silverman %v on bimodal data", h, s)
	}
}

func TestFixedBandwidth(t *testing.T) {
	sel := FixedBandwidth(2.5)
	if sel(nil) != 2.5 || sel([]float64{1, 2, 3}) != 2.5 {
		t.Fatal("FixedBandwidth should ignore data")
	}
}

func TestNewBivariateAuto(t *testing.T) {
	r := dsp.NewRand(5)
	amp := make([]float64, 32)
	ph := make([]float64, 32)
	for i := range amp {
		amp[i] = r.NormFloat64()
		ph[i] = r.NormFloat64() * 0.3
	}
	b, err := NewBivariateAuto(amp, ph, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	ba, bp := b.Bandwidths()
	if math.Abs(ba-Silverman(amp)) > 1e-12 || math.Abs(bp-Silverman(ph)) > 1e-12 {
		t.Fatal("auto bandwidths should match selector output")
	}
}

func TestUnivariateDensityAndCDF(t *testing.T) {
	u, err := NewUnivariate([]float64{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Single standard-normal kernel: density at 0 is 1/√(2π).
	if d := u.Density(0); math.Abs(d-invSqrt2Pi) > 1e-12 {
		t.Fatalf("Density(0) = %v", d)
	}
	if c := u.CDF(0); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("CDF(0) = %v", c)
	}
	if c := u.CDF(10); math.Abs(c-1) > 1e-9 {
		t.Fatalf("CDF(10) = %v", c)
	}
	if c := u.CDF(-10); c > 1e-9 {
		t.Fatalf("CDF(-10) = %v", c)
	}
	if _, err := NewUnivariate(nil, 1); err == nil {
		t.Fatal("empty samples should fail")
	}
	if u.Bandwidth() != 1 {
		t.Fatal("Bandwidth accessor")
	}
}

func TestUnivariateCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		x := make([]float64, 10+r.Intn(30))
		for i := range x {
			x[i] = r.NormFloat64() * 3
		}
		u, err := NewUnivariate(x, Silverman(x))
		if err != nil {
			return false
		}
		prev := -1.0
		for q := -10.0; q <= 10.0; q += 0.5 {
			c := u.CDF(q)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnivariateRecoversGaussianCDF(t *testing.T) {
	// With many samples from N(0,1), the KDE CDF approximates Φ.
	r := dsp.NewRand(6)
	x := make([]float64, 2000)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	u, _ := NewUnivariate(x, Silverman(x))
	for _, q := range []float64{-2, -1, 0, 1, 2} {
		want := phi(q)
		if got := u.CDF(q); math.Abs(got-want) > 0.03 {
			t.Fatalf("CDF(%v) = %v, want ~%v", q, got, want)
		}
	}
}

func TestBandwidthSensitivitySmoothing(t *testing.T) {
	// Fig. 6a's message: larger bandwidths over-smooth. Quantify as lower
	// peak density at the modes.
	samples := []float64{-3, -2.8, -2.6, 2.6, 2.8, 3}
	u1, _ := NewUnivariate(samples, 0.3)
	u3, _ := NewUnivariate(samples, 3)
	if u1.Density(2.8) <= u3.Density(2.8) {
		t.Fatal("small bandwidth should have sharper peak at mode")
	}
	if u1.Density(0) >= u3.Density(0) {
		t.Fatal("large bandwidth should fill the valley")
	}
}

func BenchmarkBivariateDensity32Samples(b *testing.B) {
	r := dsp.NewRand(1)
	amp := make([]float64, 32)
	ph := make([]float64, 32)
	for i := range amp {
		amp[i] = r.NormFloat64()
		ph[i] = r.NormFloat64()
	}
	kd, err := NewBivariate(amp, ph, 0.3, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kd.Density(0.5, 0.2)
	}
}
