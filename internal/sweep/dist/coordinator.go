package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/wifi"
)

// Config parameterises a Coordinator.
type Config struct {
	// LeasePoints is the maximum plan points per lease (default 1): the
	// load-balancing granularity. Larger leases amortise HTTP round trips
	// for cheap points; smaller leases re-distribute faster on failure.
	LeasePoints int
	// LeaseTTL is how long a lease may go without a heartbeat before its
	// points are re-issued (default 30s). Workers heartbeat at a fraction
	// of this.
	LeaseTTL time.Duration
	// PoolSize/PoolSeed pin the waveform-pool identity pooled jobs are
	// computed under; every worker builds its pool from these (default
	// wifi.DefaultPoolSize, seed 0).
	PoolSize int
	PoolSeed int64
	// JournalDir, when set, makes jobs durable: each job appends
	// completed points to <dir>/<id>.jsonl and New replays the directory,
	// resuming interrupted jobs at their first unjournalled point.
	JournalDir string
	// Token, when set, is required as "Authorization: Bearer <Token>" on
	// every worker-tier request.
	Token string
	// Logf receives operational log lines (lease grants, re-issues,
	// failures). Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LeasePoints <= 0 {
		c.LeasePoints = 1
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.PoolSize <= 0 {
		c.PoolSize = wifi.DefaultPoolSize
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator owns distributed sweep jobs: it decomposes submitted specs
// into per-point work, hands point-range leases to polling workers
// (Handler), merges their tallies bit-identically to a single in-process
// engine, journals completed points for crash recovery, and publishes
// per-point events to subscribers. It runs no sweep computation itself
// and spawns no goroutines: all state advances inside worker HTTP
// requests and Submit calls, so a coordinator is cheap enough to colocate
// with anything.
type Coordinator struct {
	cfg Config

	// planPool satisfies Spec.Request for pooled specs at planning time;
	// its entries encode lazily and the coordinator never runs a packet,
	// so it stays empty.
	planPool *wifi.WaveformPool

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	leaseJobs map[string]string // lease id → job id
	nextID    int
	closed    bool
}

// New creates a coordinator. With cfg.JournalDir set the directory is
// created if missing and its journals are replayed: every *.jsonl file
// becomes a job (same ID as its previous life) with its completed points
// restored; fully-journalled jobs come back as done, partial ones resume
// leasing at their first missing point.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		planPool:  wifi.NewWaveformPool(cfg.PoolSize, cfg.PoolSeed),
		jobs:      make(map[string]*Job),
		leaseJobs: make(map[string]string),
	}
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return nil, err
		}
		if err := c.replayJournals(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Close closes every job's journal and stops accepting work. Pending
// points stay journalled (when durable) for the next coordinator life.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.journal != nil {
			j.journal.Close()
		}
		j.mu.Unlock()
	}
}

// journalPath returns the durable state file of job id ("" when the
// coordinator is not durable).
func (c *Coordinator) journalPath(id string) string {
	if c.cfg.JournalDir == "" {
		return ""
	}
	return filepath.Join(c.cfg.JournalDir, id+".jsonl")
}

// replayJournals rebuilds jobs from the journal directory.
func (c *Coordinator) replayJournals() error {
	entries, err := os.ReadDir(c.cfg.JournalDir)
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if id, ok := strings.CutSuffix(e.Name(), ".jsonl"); ok && !e.IsDir() {
			ids = append(ids, id)
		}
	}
	// Replay in submission order (jN ids sort numerically), and continue
	// numbering after the highest replayed id.
	sort.Slice(ids, func(a, b int) bool { return jobSeq(ids[a]) < jobSeq(ids[b]) })
	for _, id := range ids {
		path := c.journalPath(id)
		hdr, restored, validLen, err := sweep.ReadJournal(path)
		if err != nil {
			// Unparsable journals must not crash-loop the coordinator: a
			// kill -9 between file creation and the header write leaves a
			// zero-byte file, and a foreign file can land in the directory.
			// Neither holds any tallies we could resume, so skip it (the
			// file is left for inspection) — but still burn its id so a
			// future Submit cannot collide with the undeleted file.
			c.cfg.Logf("dist: skipping journal %s: %v", path, err)
			if s := jobSeq(id); s > c.nextID {
				c.nextID = s
			}
			continue
		}
		if hdr.Spec.Pool && (hdr.PoolSize != c.cfg.PoolSize || hdr.PoolSeed != c.cfg.PoolSeed) {
			return fmt.Errorf("dist: journal %s: pool identity mismatch (journalled %d/%d, configured %d/%d) — pooled points are only mergeable under one pool",
				path, hdr.PoolSize, hdr.PoolSeed, c.cfg.PoolSize, c.cfg.PoolSeed)
		}
		j, err := c.newJob(hdr.Spec)
		if err != nil {
			return fmt.Errorf("dist: replaying %s: %w", path, err)
		}
		if len(j.points) != hdr.Points {
			return fmt.Errorf("dist: journal %s: %d points journalled but the spec plans %d (version skew?)", path, hdr.Points, len(j.points))
		}
		journal, err := sweep.ResumeJournal(path, validLen)
		if err != nil {
			return err
		}
		j.ID = id
		j.journal = journal
		for idx, p := range restored {
			if err := j.checkPointShape(idx, p); err != nil {
				journal.Close()
				return fmt.Errorf("dist: journal %s: %w", path, err)
			}
		}
		for idx, p := range restored {
			j.markDoneLocked(idx, p, false)
			j.restored++
		}
		j.rebuildPending()
		if j.donePoints == len(j.points) {
			j.finalizeLocked()
		}
		c.jobs[id] = j
		c.order = append(c.order, id)
		if s := jobSeq(id); s >= c.nextID {
			c.nextID = s
		}
		c.cfg.Logf("dist: replayed job %s (%d/%d points journalled)", id, len(restored), len(j.points))
	}
	return nil
}

// jobSeq extracts the numeric part of a "jN" job id (0 when foreign).
func jobSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// newJob plans a spec into an un-registered job (no ID, no journal yet).
func (c *Coordinator) newJob(spec sweep.Spec) (*Job, error) {
	if spec.Checkpoint != "" {
		return nil, fmt.Errorf("dist: checkpoint paths are not accepted (the coordinator journals jobs itself)")
	}
	spec = spec.Normalised()
	req, err := spec.Request(c.planPool)
	if err != nil {
		return nil, err
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		return nil, err
	}
	j := &Job{
		Spec:        spec,
		coord:       c,
		plan:        plan,
		fingerprint: plan.Fingerprint(),
		points:      make([]distPoint, len(plan.Points)),
		leases:      make(map[string]*lease),
		start:       time.Now(),
		done:        make(chan struct{}),
	}
	for i := range plan.Points {
		pkts := plan.Points[i].Cfg.Packets
		j.points[i].packets = pkts
		j.points[i].arms = len(plan.Points[i].Cfg.Receivers)
		j.totalPackets += int64(pkts)
	}
	j.rebuildPending()
	return j, nil
}

// Submit plans and registers a sweep job. The job completes as workers
// lease and report its points; it has no context — a distributed job
// outlives any one connection and is cancelled via Remove.
func (c *Coordinator) Submit(spec sweep.Spec) (*Job, error) {
	j, err := c.newJob(spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: coordinator is closed")
	}
	c.nextID++
	j.ID = fmt.Sprintf("j%d", c.nextID)
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	c.mu.Unlock()

	if path := c.journalPath(j.ID); path != "" {
		hdr := sweep.JournalHeader{V: 1, Spec: j.Spec, Points: len(j.points)}
		if j.Spec.Pool {
			hdr.PoolSize = c.cfg.PoolSize
			hdr.PoolSeed = c.cfg.PoolSeed
		}
		journal, err := sweep.CreateJournal(path, hdr)
		if err != nil {
			c.Remove(j.ID)
			return nil, err
		}
		j.mu.Lock()
		j.journal = journal
		j.mu.Unlock()
	}
	if len(j.points) == 0 {
		j.mu.Lock()
		j.finalizeLocked()
		j.mu.Unlock()
	}
	c.cfg.Logf("dist: job %s submitted (%s, %d points)", j.ID, j.Spec.Experiment, len(j.points))
	return j, nil
}

// Job returns a job by id, or nil.
func (c *Coordinator) Job(id string) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

// Jobs returns every job in submission order.
func (c *Coordinator) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id])
	}
	return out
}

// Remove cancels a running job, forgets it, and deletes its journal file
// (a removed durable job must not resurrect on restart). Reports whether
// the job existed.
func (c *Coordinator) Remove(id string) bool {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if ok {
		delete(c.jobs, id)
		for i, oid := range c.order {
			if oid == id {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		for lid, jid := range c.leaseJobs {
			if jid == id {
				delete(c.leaseJobs, lid)
			}
		}
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	if !j.finished {
		j.failLocked(context.Canceled)
	}
	j.mu.Unlock()
	if path := c.journalPath(id); path != "" {
		os.Remove(path)
	}
	return true
}

// nextLease finds work for a polling worker: jobs are scanned in
// submission order, expired leases are reaped first, and the first job
// with pending points yields a lease.
func (c *Coordinator) nextLease(worker string) *Lease {
	c.mu.Lock()
	jobs := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		jobs = append(jobs, c.jobs[id])
	}
	c.mu.Unlock()
	now := time.Now()
	for _, j := range jobs {
		if l := j.grantLease(worker, now); l != nil {
			c.mu.Lock()
			c.leaseJobs[l.ID] = l.Job
			c.mu.Unlock()
			return l
		}
	}
	return nil
}

// jobForLease resolves a lease id to its job (nil when unknown — e.g.
// granted by a previous coordinator life).
func (c *Coordinator) jobForLease(leaseID string) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	if jid, ok := c.leaseJobs[leaseID]; ok {
		return c.jobs[jid]
	}
	return nil
}

// forgetLease drops a resolved lease from the index.
func (c *Coordinator) forgetLease(leaseID string) {
	c.mu.Lock()
	delete(c.leaseJobs, leaseID)
	c.mu.Unlock()
}

// distPoint is one plan point's coordinator-side state.
type distPoint struct {
	packets int
	arms    int
	done    bool
	n       int
	ok      []int
}

// lease is the coordinator-side record of a granted lease.
type lease struct {
	id      string
	worker  string
	points  []int
	expires time.Time
	// hbPackets is the worker's last heartbeat-reported packet count,
	// folded into Progress.DonePackets while the lease runs.
	hbPackets int64
}

// Job is one distributed sweep job. All methods are safe for concurrent
// use.
type Job struct {
	ID   string
	Spec sweep.Spec // normalised

	coord        *Coordinator
	plan         *experiments.SweepPlan
	fingerprint  string
	totalPackets int64
	start        time.Time

	mu         sync.Mutex
	points     []distPoint
	pending    []int // unleased incomplete point indexes, ascending
	leases     map[string]*lease
	nextLease  int
	donePoints int
	restored   int
	journal    *sweep.Journal
	events     []sweep.PointEvent
	subs       map[int]chan sweep.PointEvent
	nextSub    int
	err        error
	table      *experiments.Table
	results    [][]experiments.PSRPoint
	elapsed    time.Duration
	finished   bool
	done       chan struct{}
}

// Plan returns the job's sweep plan (read-only).
func (j *Job) Plan() *experiments.SweepPlan { return j.plan }

// Fingerprint returns the job's plan fingerprint.
func (j *Job) Fingerprint() string { return j.fingerprint }

// rebuildPending recomputes the pending queue from point states. Callers
// hold j.mu (or own the job exclusively).
func (j *Job) rebuildPending() {
	j.pending = j.pending[:0]
	leased := make(map[int]bool)
	for _, l := range j.leases {
		for _, p := range l.points {
			leased[p] = true
		}
	}
	for i := range j.points {
		if !j.points[i].done && !leased[i] {
			j.pending = append(j.pending, i)
		}
	}
}

// grantLease reaps expired leases and carves the next lease off the
// pending queue: the longest run of consecutive point indexes from its
// head, capped at LeasePoints.
func (j *Job) grantLease(worker string, now time.Time) *Lease {
	cfg := j.coord.cfg
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return nil
	}
	for id, l := range j.leases {
		if now.After(l.expires) {
			cfg.Logf("dist: job %s: lease %s (worker %s) expired, re-issuing %d point(s)", j.ID, id, l.worker, len(l.points))
			delete(j.leases, id)
			j.coord.forgetLease(id)
			j.rebuildPending()
		}
	}
	if len(j.pending) == 0 {
		return nil
	}
	take := 1
	for take < len(j.pending) && take < cfg.LeasePoints && j.pending[take] == j.pending[take-1]+1 {
		take++
	}
	points := append([]int(nil), j.pending[:take]...)
	j.pending = j.pending[take:]
	j.nextLease++
	l := &lease{
		id:      fmt.Sprintf("%s-l%d", j.ID, j.nextLease),
		worker:  worker,
		points:  points,
		expires: now.Add(cfg.LeaseTTL),
	}
	j.leases[l.id] = l
	out := &Lease{
		ID:          l.id,
		Job:         j.ID,
		Spec:        j.Spec,
		Points:      points,
		Fingerprint: j.fingerprint,
		TTLSec:      cfg.LeaseTTL.Seconds(),
	}
	if j.Spec.Pool {
		out.PoolSize = cfg.PoolSize
		out.PoolSeed = cfg.PoolSeed
	}
	cfg.Logf("dist: job %s: leased points %v to %s as %s", j.ID, points, worker, l.id)
	return out
}

// heartbeat re-arms a live lease. It reports false when the lease is
// unknown or already resolved — the worker should abandon that work.
func (j *Job) heartbeat(hb Heartbeat, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	l, ok := j.leases[hb.Lease]
	if !ok || j.finished {
		return false
	}
	l.expires = now.Add(j.coord.cfg.LeaseTTL)
	if hb.DonePackets > l.hbPackets {
		l.hbPackets = hb.DonePackets
	}
	return true
}

// checkPointShape validates a reported point against the plan.
func (j *Job) checkPointShape(idx int, p sweep.JournalPoint) error {
	if idx < 0 || idx >= len(j.points) {
		return fmt.Errorf("point %d outside [0,%d)", idx, len(j.points))
	}
	if p.N != j.points[idx].packets || len(p.OK) != j.points[idx].arms {
		return fmt.Errorf("point %d shape mismatch (%d packets/%d arms reported, want %d/%d)",
			idx, p.N, len(p.OK), j.points[idx].packets, j.points[idx].arms)
	}
	return nil
}

// markDoneLocked records a completed point and publishes its event;
// journal controls whether the point is also appended to the journal
// (replayed points are already on disk). Callers hold j.mu.
func (j *Job) markDoneLocked(idx int, p sweep.JournalPoint, journal bool) {
	pt := &j.points[idx]
	if pt.done {
		return
	}
	pt.done = true
	pt.n = p.N
	pt.ok = append([]int(nil), p.OK...)
	j.donePoints++
	if journal && j.journal != nil {
		if err := j.journal.Append(sweep.JournalPoint{Point: idx, N: pt.n, OK: pt.ok}); err != nil {
			j.failLocked(fmt.Errorf("dist: journal append: %w", err))
			return
		}
	}
	ev := sweep.PointEvent{
		Seq: len(j.events), Point: idx, N: pt.n, OK: pt.ok,
		DonePoints: j.donePoints, Points: len(j.points),
	}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		ch <- ev
	}
}

// result merges a worker's lease result. Success tallies are idempotent
// — a point already completed (by a faster re-lease or a duplicate POST)
// is skipped, which is sound because tallies are deterministic. An error
// result fails the job only while its lease is live; stale errors are
// dropped.
func (j *Job) result(res LeaseResult) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	l, live := j.leases[res.Lease]
	if live {
		delete(j.leases, res.Lease)
		defer j.coord.forgetLease(res.Lease)
	}
	if j.finished {
		return nil
	}
	if res.Error != "" {
		if live {
			j.failLocked(fmt.Errorf("dist: worker %s failed lease %s: %s", res.Worker, res.Lease, res.Error))
		} else {
			j.coord.cfg.Logf("dist: job %s: dropping stale error from %s: %s", j.ID, res.Worker, res.Error)
		}
		return nil
	}
	if res.Fingerprint != j.fingerprint {
		// Defence in depth: workers verify the fingerprint before
		// running, so a mismatch here is a protocol violation, not a
		// recoverable state. Refuse the tallies and put the points back.
		if live {
			j.rebuildPending()
		}
		return fmt.Errorf("dist: job %s: result fingerprint %s does not match plan %s", j.ID, res.Fingerprint, j.fingerprint)
	}
	inLease := make(map[int]bool)
	if live {
		for _, p := range l.points {
			inLease[p] = true
		}
	}
	for _, p := range res.Points {
		if err := j.checkPointShape(p.Point, p); err != nil {
			j.failLocked(fmt.Errorf("dist: worker %s: %w", res.Worker, err))
			return nil
		}
		j.markDoneLocked(p.Point, p, true)
		delete(inLease, p.Point)
		if j.finished {
			return nil
		}
	}
	// Leased points the result did not cover go back to pending.
	if live && len(inLease) > 0 {
		j.rebuildPending()
	}
	if j.donePoints == len(j.points) {
		j.finalizeLocked()
	}
	return nil
}

// finalizeLocked assembles the table once every point is complete.
// Callers hold j.mu.
func (j *Job) finalizeLocked() {
	if j.finished {
		return
	}
	// A lease can outlive its points (a slow worker's stale result
	// finished the job while a re-issue was still running): drop the
	// bookkeeping so heartbeat progress stops inflating DonePackets and
	// the coordinator-level lease index does not leak.
	j.dropLeasesLocked()
	results := make([][]experiments.PSRPoint, len(j.points))
	arms := j.plan.Points
	for i := range j.points {
		kinds := arms[i].Cfg.Receivers
		pts := make([]experiments.PSRPoint, len(kinds))
		for a, k := range kinds {
			pts[a] = experiments.PSRPoint{Kind: k, OK: j.points[i].ok[a], N: j.points[i].n}
		}
		results[i] = pts
	}
	table, err := j.plan.Assemble(results)
	j.finished = true
	j.err = err
	j.table = table
	j.results = results
	j.elapsed = time.Since(j.start)
	j.closeSubsLocked()
	if j.journal != nil {
		j.journal.Close()
	}
	close(j.done)
}

// failLocked records the job's first error. Callers hold j.mu.
func (j *Job) failLocked(err error) {
	if j.finished {
		return
	}
	j.finished = true
	j.err = err
	j.elapsed = time.Since(j.start)
	j.dropLeasesLocked()
	j.closeSubsLocked()
	if j.journal != nil {
		j.journal.Close()
	}
	close(j.done)
}

// dropLeasesLocked forgets every outstanding lease, job- and
// coordinator-side. Callers hold j.mu (the j.mu → c.mu nesting matches
// grantLease's expiry reaping).
func (j *Job) dropLeasesLocked() {
	for id := range j.leases {
		delete(j.leases, id)
		j.coord.forgetLease(id)
	}
}

func (j *Job) closeSubsLocked() {
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
}

// Subscribe mirrors sweep.Job.Subscribe: every completed point so far
// (journal-restored ones first) plus a live channel, closed when the job
// finishes or cancel is called.
func (j *Job) Subscribe() (past []sweep.PointEvent, ch <-chan sweep.PointEvent, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	past = append([]sweep.PointEvent(nil), j.events...)
	c := make(chan sweep.PointEvent, len(j.points)+1)
	if j.finished {
		close(c)
		return past, c, func() {}
	}
	id := j.nextSub
	j.nextSub++
	if j.subs == nil {
		j.subs = make(map[int]chan sweep.PointEvent)
	}
	j.subs[id] = c
	return past, c, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if cc, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(cc)
		}
	}
}

// Done returns a channel closed when the job finishes (any outcome).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes, then returns its result (table
// and raw per-point tallies) or its failure.
func (j *Job) Wait(ctx context.Context) (*sweep.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return &sweep.Result{Table: j.table, Points: j.results, Elapsed: j.elapsed}, nil
}

// Progress reports the job's execution state in the same shape as an
// in-process engine job, so the HTTP API is identical in both modes.
func (j *Job) Progress() sweep.Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := sweep.Progress{
		ID:             j.ID,
		Experiment:     j.Spec.Experiment,
		State:          "running",
		Points:         len(j.points),
		DonePoints:     j.donePoints,
		RestoredPoints: j.restored,
		Packets:        j.totalPackets,
		ElapsedSec:     time.Since(j.start).Seconds(),
	}
	for i := range j.points {
		if j.points[i].done {
			p.DonePackets += int64(j.points[i].n)
		}
	}
	for _, l := range j.leases {
		p.DonePackets += l.hbPackets
	}
	if j.finished {
		p.ElapsedSec = j.elapsed.Seconds()
		if j.err != nil {
			p.State = "failed"
			p.Error = j.err.Error()
		} else {
			p.State = "done"
		}
	}
	return p
}

// Handler returns the worker-tier HTTP API (the /v1/dist/ endpoints),
// guarded by the configured bearer token.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if err := json.NewEncoder(w).Encode(v); err != nil {
			c.cfg.Logf("dist: writing response: %v", err)
		}
	}
	readJSON := func(w http.ResponseWriter, r *http.Request, v any) bool {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return false
		}
		return true
	}

	mux.HandleFunc("POST /v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		l := c.nextLease(req.Worker)
		if l == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})

	mux.HandleFunc("POST /v1/dist/result", func(w http.ResponseWriter, r *http.Request) {
		var res LeaseResult
		if !readJSON(w, r, &res) {
			return
		}
		j := c.Job(res.Job)
		if j == nil {
			// Unknown job: removed, or from a journal-less previous life.
			// Nothing to merge into; the worker's work is simply dropped.
			writeJSON(w, http.StatusOK, map[string]string{"status": "dropped"})
			return
		}
		if err := j.result(res); err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("POST /v1/dist/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var hb Heartbeat
		if !readJSON(w, r, &hb) {
			return
		}
		j := c.jobForLease(hb.Lease)
		if j == nil || !j.heartbeat(hb, time.Now()) {
			writeJSON(w, http.StatusGone, map[string]string{"error": "lease revoked"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return BearerAuth(c.cfg.Token, mux)
}

// BearerAuth wraps h so every request must carry
// "Authorization: Bearer <token>". An empty token disables the check
// (for localhost experimentation; production coordinators set one).
func BearerAuth(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	want := "Bearer " + token
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != want {
			w.Header().Set("WWW-Authenticate", `Bearer realm="cprecycle"`)
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}
