package dist

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/sweep/store"
	"repro/internal/wifi"
)

// Config parameterises a Coordinator.
type Config struct {
	// LeasePoints, when > 0, pins every lease to a fixed point count
	// (the pre-adaptive behaviour; useful to force granularity in
	// tests). Zero — the default — sizes leases adaptively: each lease
	// targets LeaseTarget of wall-clock work based on the job's observed
	// per-point latency, starting from a single-point probe.
	LeasePoints int
	// LeaseTarget is the wall-clock duration an adaptive lease aims for
	// (default 4× Heartbeat): long enough to amortise HTTP round trips,
	// short enough that a worker loss re-queues little work.
	LeaseTarget time.Duration
	// LeaseTTL is how long a lease may go without a heartbeat before its
	// points are re-issued (default 30s).
	LeaseTTL time.Duration
	// Heartbeat is the interval the coordinator advertises to workers at
	// registration (default LeaseTTL/6, at most 5s) — comfortably under
	// LeaseTTL so one dropped heartbeat cannot expire a lease.
	Heartbeat time.Duration
	// LongPoll bounds how long a lease request may be parked waiting for
	// work (default 30s). Workers are told this bound at registration.
	LongPoll time.Duration
	// PoolSize/PoolSeed pin the waveform-pool identity pooled jobs are
	// computed under; every worker builds its pool from these (default
	// wifi.DefaultPoolSize, seed 0).
	PoolSize int
	PoolSeed int64
	// StoreDir, when set, makes jobs durable: completed points land in a
	// content-addressed result store (internal/sweep/store) shared across
	// jobs, and each job writes a small JSON manifest <dir>/<id>.json.
	// New replays the manifests against the store index, resuming
	// interrupted jobs at their first missing point — and because points
	// are keyed by content, repeated sweeps and cross-job duplicate
	// points are served from the store instead of the fleet. Legacy
	// *.jsonl journals found in the directory are migrated into the store
	// once and renamed *.jsonl.migrated.
	StoreDir string
	// StoreNoSync skips the store's fsyncs (tests/benches only).
	StoreNoSync bool
	// StoreMaxBytes bounds the store's segment bytes (0 = unbounded):
	// past it, least-recently-hit segments are evicted — except those
	// holding points of live jobs, which stay pinned until the job
	// finishes. Wired from -store-max-bytes.
	StoreMaxBytes int64
	// Token is the fleet join secret: required (as "Authorization:
	// Bearer <Token>") on registration and on admin calls. Data-plane
	// calls authenticate with the per-worker token minted at
	// registration instead. An empty Token leaves registration and admin
	// open (localhost experimentation).
	Token string
	// Log receives structured operational logs (lease grants, re-issues,
	// failures) with component/job/worker/lease attrs. Nil discards them.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 6
		if c.Heartbeat > 5*time.Second {
			c.Heartbeat = 5 * time.Second
		}
	}
	if c.LeaseTarget <= 0 {
		c.LeaseTarget = 4 * c.Heartbeat
	}
	if c.LongPoll <= 0 {
		c.LongPoll = 30 * time.Second
	}
	if c.PoolSize <= 0 {
		c.PoolSize = wifi.DefaultPoolSize
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	return c
}

// maxAdaptiveLease caps adaptive lease sizing: beyond this the HTTP
// round trip is already fully amortised and a worker loss would re-queue
// too much work.
const maxAdaptiveLease = 128

// Worker lifecycle states.
const (
	workerActive   = "active"
	workerDraining = "draining"
	workerRevoked  = "revoked"
)

// workerState is one registered worker. All fields are guarded by
// Coordinator.wmu.
type workerState struct {
	id       string // coordinator-assigned ("w3")
	name     string // self-reported (host:pid)
	token    string // per-worker bearer token ("w3.<hex>")
	state    string // workerActive | workerDraining | workerRevoked
	joined   time.Time
	lastSeen time.Time
	leases   map[string]string // live lease id → job id
	granted  int64             // leases ever granted
}

// Coordinator owns distributed sweep jobs: it decomposes submitted specs
// into per-point work, hands adaptively-sized point-range leases to
// registered workers over long-polling HTTP (Handler), merges their
// tallies bit-identically to a single in-process engine, journals
// completed points for crash recovery, and publishes per-point and
// fleet-wide events to subscribers. It runs no sweep computation itself
// and spawns no goroutines of its own: all state advances inside worker
// HTTP requests and Submit calls (long-polled lease requests park on the
// caller's goroutine), so a coordinator is cheap enough to colocate with
// anything.
type Coordinator struct {
	cfg Config
	log *slog.Logger

	// Fleet counters, atomically maintained at the event sites and
	// exported by Stats/WritePrometheus. Monotonic over this
	// coordinator's life (journal replay does not reconstruct them).
	leasesGranted atomic.Int64
	leaseExpiries atomic.Int64
	requeuedPts   atomic.Int64
	revocations   atomic.Int64
	sseDropped    atomic.Int64

	// planPool satisfies Spec.Request for pooled specs at planning time;
	// its entries encode lazily and the coordinator never runs a packet,
	// so it stays empty.
	planPool *wifi.WaveformPool

	// store is the content-addressed result store (nil when the
	// coordinator is not durable). Shared across jobs: a point computed
	// by any job — or any previous coordinator life, or a migrated
	// legacy journal — serves every later job that plans the same point.
	store *store.Store

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	leaseJobs map[string]string // lease id → job id
	nextID    int
	closed    bool

	// Worker registry. Lock order: j.mu may be held when taking wmu;
	// never take j.mu or c.mu while holding wmu.
	wmu        sync.Mutex
	workers    map[string]*workerState
	nextWorker int

	// wake broadcast for parked long-poll lease requests: wakeCh is
	// closed and replaced whenever work may have appeared (job submit,
	// points re-queued, drain/revoke) — waiters re-check and re-park.
	wakeMu sync.Mutex
	wakeCh chan struct{}

	// Fleet-wide event stream (fleet.go).
	fmu       sync.Mutex
	fleet     []FleetEvent
	fleetSeq  int // seq of the next event
	fleetSubs map[int]chan FleetEvent
	nextFSub  int
}

// New creates a coordinator. With cfg.StoreDir set the directory is
// created if missing, the content-addressed result store is opened
// (salvaging every intact record a crash left behind), legacy *.jsonl
// journals are migrated into it, and the job manifests are replayed:
// every <id>.json becomes a job (same ID as its previous life) with its
// stored points restored from the index — fully-stored jobs come back as
// done, partial ones resume leasing at their first missing point. The
// worker registry starts empty in every life — workers of a previous
// life re-register on their first 401.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		log:       cfg.Log.With("component", "coordinator"),
		planPool:  wifi.NewWaveformPool(cfg.PoolSize, cfg.PoolSeed),
		jobs:      make(map[string]*Job),
		leaseJobs: make(map[string]string),
		workers:   make(map[string]*workerState),
		wakeCh:    make(chan struct{}),
		fleetSubs: make(map[int]chan FleetEvent),
	}
	if cfg.StoreDir != "" {
		st, stats, err := store.Open(cfg.StoreDir, store.Options{NoSync: cfg.StoreNoSync, MaxBytes: cfg.StoreMaxBytes})
		if err != nil {
			return nil, err
		}
		c.store = st
		if stats.DamagedSegments > 0 {
			c.log.Warn("store recovered with damage", "segments", stats.Segments,
				"records", stats.Records, "damaged", stats.DamagedSegments)
		}
		mig, err := sweep.MigrateDir(cfg.StoreDir, st)
		if err != nil {
			return nil, err
		}
		if mig.Journals > 0 {
			c.log.Info("migrated legacy journals", "journals", mig.Journals, "points", mig.Points)
		}
		for _, skip := range mig.Skipped {
			c.log.Warn("skipping unmigratable journal", "detail", skip)
		}
		if err := c.replayManifests(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Store returns the coordinator's content-addressed result store (nil
// when not durable) — the history surface queries it read-only.
func (c *Coordinator) Store() *store.Store { return c.store }

// PoolIdentity returns the pool size and seed the coordinator keys
// stored results under — what history recording and store lookups
// outside the coordinator must use to reproduce its keys.
func (c *Coordinator) PoolIdentity() (size int, seed int64) {
	return c.cfg.PoolSize, c.cfg.PoolSeed
}

// Close ends the fleet event stream and stops accepting work. Pending
// points stay in the manifests (when durable) for the next coordinator
// life; completed tallies are already durable in the store.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.closeFleetSubs()
	c.wake() // release parked long-polls promptly
}

// wake releases every parked long-poll lease request so it re-checks for
// work (or for a drain/revoke directive).
func (c *Coordinator) wake() {
	c.wakeMu.Lock()
	close(c.wakeCh)
	c.wakeCh = make(chan struct{})
	c.wakeMu.Unlock()
}

// wakeWait returns the channel a parked request should select on. Must
// be fetched BEFORE re-checking for work, so a wake between check and
// park is never lost.
func (c *Coordinator) wakeWait() <-chan struct{} {
	c.wakeMu.Lock()
	defer c.wakeMu.Unlock()
	return c.wakeCh
}

// manifestPath returns the durable manifest file of job id ("" when the
// coordinator is not durable).
func (c *Coordinator) manifestPath(id string) string {
	if c.cfg.StoreDir == "" {
		return ""
	}
	return filepath.Join(c.cfg.StoreDir, id+".json")
}

// replayManifests rebuilds jobs from the manifest files: each names a
// spec whose completed points are then looked up in the store index —
// resume is an index read, not a log replay. Leftover legacy journal
// names (*.jsonl, *.jsonl.migrated) burn their job ids so a future
// Submit cannot collide with them.
func (c *Coordinator) replayManifests() error {
	entries, err := os.ReadDir(c.cfg.StoreDir)
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".migrated")
		if id, ok := strings.CutSuffix(name, ".jsonl"); ok {
			if s := jobSeq(id); s > c.nextID {
				c.nextID = s
			}
			continue
		}
		if id, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			ids = append(ids, id)
		}
	}
	// Replay in submission order (jN ids sort numerically), and continue
	// numbering after the highest replayed id.
	sort.Slice(ids, func(a, b int) bool { return jobSeq(ids[a]) < jobSeq(ids[b]) })
	for _, id := range ids {
		path := c.manifestPath(id)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var hdr sweep.JournalHeader
		if err := json.Unmarshal(data, &hdr); err != nil || hdr.V != 1 {
			// Unparsable manifests must not crash-loop the coordinator: a
			// foreign file can land in the directory. It holds no state we
			// could resume, so skip it (the file is left for inspection) —
			// but still burn its id so a future Submit cannot collide.
			c.log.Warn("skipping unreadable manifest", "path", path, "err", err)
			if s := jobSeq(id); s > c.nextID {
				c.nextID = s
			}
			continue
		}
		if hdr.Spec.Pool && (hdr.PoolSize != c.cfg.PoolSize || hdr.PoolSeed != c.cfg.PoolSeed) {
			return fmt.Errorf("dist: manifest %s: pool identity mismatch (recorded %d/%d, configured %d/%d) — pooled points are only mergeable under one pool",
				path, hdr.PoolSize, hdr.PoolSeed, c.cfg.PoolSize, c.cfg.PoolSeed)
		}
		j, err := c.newJob(hdr.Spec)
		if err != nil {
			return fmt.Errorf("dist: replaying %s: %w", path, err)
		}
		if len(j.points) != hdr.Points {
			return fmt.Errorf("dist: manifest %s: %d points recorded but the spec plans %d (version skew?)", path, hdr.Points, len(j.points))
		}
		j.ID = id
		j.mu.Lock()
		restored := j.absorbStoreLocked(false)
		j.mu.Unlock()
		c.jobs[id] = j
		c.order = append(c.order, id)
		if s := jobSeq(id); s >= c.nextID {
			c.nextID = s
		}
		c.log.Info("replayed job from store", "job", id, "restored", restored, "points", len(j.points))
	}
	return nil
}

// jobSeq extracts the numeric part of a "jN" job id (0 when foreign).
func jobSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// newJob plans a spec into an un-registered job (no ID, no manifest yet).
func (c *Coordinator) newJob(spec sweep.Spec) (*Job, error) {
	spec = spec.Normalised()
	req, err := spec.Request(c.planPool)
	if err != nil {
		return nil, err
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		return nil, err
	}
	j := &Job{
		Spec:        spec,
		coord:       c,
		plan:        plan,
		fingerprint: plan.Fingerprint(),
		points:      make([]distPoint, len(plan.Points)),
		leases:      make(map[string]*lease),
		start:       time.Now(),
		done:        make(chan struct{}),
	}
	for i := range plan.Points {
		pkts := plan.Points[i].Cfg.Packets
		j.points[i].packets = pkts
		j.points[i].arms = len(plan.Points[i].Cfg.Receivers)
		j.totalPackets += int64(pkts)
	}
	if c.store != nil {
		j.keys = sweep.PlanKeys(plan, spec.Pool, c.cfg.PoolSize, c.cfg.PoolSeed)
		// Pin the job's key set so the MaxBytes GC cannot collect records
		// a live job still references; released when the job finishes.
		j.unpin = c.store.Pin(j.keys...)
	}
	j.rebuildPending()
	return j, nil
}

// Submit plans and registers a sweep job. The job completes as workers
// lease and report its points; it has no context — a distributed job
// outlives any one connection and is cancelled via Remove.
func (c *Coordinator) Submit(spec sweep.Spec) (*Job, error) {
	j, err := c.newJob(spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if j.unpin != nil {
			j.unpin()
		}
		return nil, fmt.Errorf("dist: coordinator is closed")
	}
	c.nextID++
	j.ID = fmt.Sprintf("j%d", c.nextID)
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	c.mu.Unlock()

	if path := c.manifestPath(j.ID); path != "" {
		hdr := sweep.JournalHeader{V: 1, Spec: j.Spec, Points: len(j.points)}
		if j.Spec.Pool {
			hdr.PoolSize = c.cfg.PoolSize
			hdr.PoolSeed = c.cfg.PoolSeed
		}
		data, err := json.Marshal(hdr)
		if err == nil {
			err = store.AtomicWrite(path, data, !c.cfg.StoreNoSync)
		}
		if err != nil {
			c.Remove(j.ID)
			return nil, err
		}
	}
	c.emit(FleetEvent{Type: "job-submit", Job: j.ID, Points: len(j.points), Detail: j.Spec.Experiment})
	c.log.Info("job submitted", "job", j.ID, "experiment", j.Spec.Experiment, "points", len(j.points))

	// Serve whatever the store already holds before any lease goes out: a
	// repeated identical sweep — or one sharing points with an earlier
	// job — completes partly or wholly without the fleet. This is the one
	// site that counts store misses: each point starts its fleet life
	// here exactly once.
	j.mu.Lock()
	j.absorbStoreLocked(true)
	if !j.finished && len(j.points) == 0 {
		j.finalizeLocked()
	}
	j.mu.Unlock()
	c.wake() // parked lease requests should see the new work now
	return j, nil
}

// Job returns a job by id, or nil.
func (c *Coordinator) Job(id string) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

// Jobs returns every job in submission order.
func (c *Coordinator) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id])
	}
	return out
}

// Remove cancels a running job, forgets it, and deletes its manifest (a
// removed durable job must not resurrect on restart). Its completed
// tallies stay in the store — they are content-addressed, not owned by
// the job, and still serve future sweeps. Reports whether the job
// existed.
func (c *Coordinator) Remove(id string) bool {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if ok {
		delete(c.jobs, id)
		for i, oid := range c.order {
			if oid == id {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		for lid, jid := range c.leaseJobs {
			if jid == id {
				delete(c.leaseJobs, lid)
			}
		}
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	if !j.finished {
		j.failLocked(context.Canceled)
	}
	j.mu.Unlock()
	if path := c.manifestPath(id); path != "" {
		os.Remove(path)
	}
	return true
}

// ---- worker registry ----

// registerWorker mints a new fleet member: a unique id and a revocable
// bearer token. Exported to the HTTP layer via POST /v1/dist/register.
func (c *Coordinator) registerWorker(name string) (*workerState, RegisterResponse, error) {
	raw := make([]byte, 16)
	if _, err := rand.Read(raw); err != nil {
		return nil, RegisterResponse{}, fmt.Errorf("dist: minting worker token: %w", err)
	}
	now := time.Now()
	c.wmu.Lock()
	c.pruneWorkersLocked(now)
	c.nextWorker++
	ws := &workerState{
		id:       fmt.Sprintf("w%d", c.nextWorker),
		name:     name,
		state:    workerActive,
		joined:   now,
		lastSeen: now,
		leases:   make(map[string]string),
	}
	ws.token = ws.id + "." + hex.EncodeToString(raw)
	c.workers[ws.id] = ws
	c.wmu.Unlock()
	c.emit(FleetEvent{Type: "worker-join", Worker: ws.id, Detail: name})
	c.log.Info("worker registered", "worker", ws.id, "name", name)
	resp := RegisterResponse{
		Worker:       ws.id,
		Token:        ws.token,
		HeartbeatSec: c.cfg.Heartbeat.Seconds(),
		LongPollSec:  c.cfg.LongPoll.Seconds(),
		TTLSec:       c.cfg.LeaseTTL.Seconds(),
	}
	return ws, resp, nil
}

// pruneWorkersLocked forgets workers with no live leases that have not
// been heard from for 10 lease TTLs: crashed workers that never
// deregistered, and old revocation tombstones. Callers hold c.wmu.
func (c *Coordinator) pruneWorkersLocked(now time.Time) {
	horizon := 10 * c.cfg.LeaseTTL
	for id, ws := range c.workers {
		if len(ws.leases) == 0 && now.Sub(ws.lastSeen) > horizon {
			delete(c.workers, id)
			c.log.Warn("pruned silent worker", "worker", id, "name", ws.name, "idle", now.Sub(ws.lastSeen).Round(time.Second))
		}
	}
}

// authWorker resolves a request's bearer token to a registered worker.
// The returned status is 200 on success, 401 for unknown/absent tokens
// (the worker should re-register) and 403 for revoked workers (the
// worker should terminate). Token comparison is constant-time.
func (c *Coordinator) authWorker(r *http.Request) (*workerState, int) {
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if !strings.HasPrefix(h, prefix) {
		return nil, http.StatusUnauthorized
	}
	tok := strings.TrimPrefix(h, prefix)
	id, _, ok := strings.Cut(tok, ".")
	if !ok {
		return nil, http.StatusUnauthorized
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	ws := c.workers[id]
	if ws == nil || subtle.ConstantTimeCompare([]byte(tok), []byte(ws.token)) != 1 {
		return nil, http.StatusUnauthorized
	}
	if ws.state == workerRevoked {
		return nil, http.StatusForbidden
	}
	ws.lastSeen = time.Now()
	return ws, http.StatusOK
}

// workerDirective reports the worker's current lifecycle flags.
func (c *Coordinator) workerDirective(ws *workerState) (draining, revoked bool) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return ws.state == workerDraining, ws.state == workerRevoked
}

// activeWorkers counts workers eligible for new leases.
func (c *Coordinator) activeWorkers() int {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	n := 0
	for _, ws := range c.workers {
		if ws.state == workerActive {
			n++
		}
	}
	return n
}

// trackLease / untrackLease maintain the worker→lease index. Both may
// be called with j.mu held (j.mu → wmu is the sanctioned order).
func (c *Coordinator) trackLease(workerID, leaseID, jobID string) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if ws := c.workers[workerID]; ws != nil {
		ws.leases[leaseID] = jobID
		ws.granted++
	}
}

func (c *Coordinator) untrackLease(workerID, leaseID string) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if ws := c.workers[workerID]; ws != nil {
		delete(ws.leases, leaseID)
	}
}

// WorkerInfos snapshots the registry for the admin API, ordered by
// registration. Each info carries the worker's point-progress age — the
// seconds since the freshest of its live leases last advanced its
// heartbeat packet count (−1 with no live lease) — so the -fleet
// dashboard and the supervisor's stuck-lease detector can tell a busy
// worker from a wedged one. The registry is snapshotted under wmu first
// and lease progress resolved per job afterwards (j.mu must never be
// taken under wmu).
func (c *Coordinator) WorkerInfos() []WorkerInfo {
	now := time.Now()
	type leaseRef struct{ worker, lease, job string }
	var refs []leaseRef
	c.wmu.Lock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, ws := range c.workers {
		out = append(out, WorkerInfo{
			ID: ws.id, Name: ws.name, State: ws.state,
			Leases: len(ws.leases), Granted: ws.granted,
			AgeSec:          now.Sub(ws.joined).Seconds(),
			IdleSec:         now.Sub(ws.lastSeen).Seconds(),
			LastProgressSec: -1,
		})
		for lid, jid := range ws.leases {
			refs = append(refs, leaseRef{worker: ws.id, lease: lid, job: jid})
		}
	}
	c.wmu.Unlock()
	progress := make(map[string]float64, len(refs)) // worker id → min age
	for _, ref := range refs {
		j := c.Job(ref.job)
		if j == nil {
			continue
		}
		j.mu.Lock()
		l, ok := j.leases[ref.lease]
		var age float64
		if ok {
			age = now.Sub(l.progress).Seconds()
		}
		j.mu.Unlock()
		if !ok {
			continue
		}
		if cur, seen := progress[ref.worker]; !seen || age < cur {
			progress[ref.worker] = age
		}
	}
	for i := range out {
		if age, ok := progress[out[i].ID]; ok {
			out[i].LastProgressSec = age
		}
	}
	sort.Slice(out, func(a, b int) bool { return jobSeq(out[a].ID) < jobSeq(out[b].ID) })
	return out
}

// DrainWorker marks a worker draining: it finishes its in-flight lease,
// takes no new ones, deregisters and exits. The signal reaches it on its
// next heartbeat or (immediately, via wake) parked lease request.
// Reports whether the worker is known.
func (c *Coordinator) DrainWorker(id string) bool {
	c.wmu.Lock()
	ws := c.workers[id]
	if ws == nil || ws.state != workerActive {
		known := ws != nil
		c.wmu.Unlock()
		return known
	}
	ws.state = workerDraining
	name := ws.name
	c.wmu.Unlock()
	c.emit(FleetEvent{Type: "worker-drain", Worker: id, Detail: name})
	c.log.Info("worker draining", "worker", id, "name", name)
	c.wake() // its parked long-poll should return the drain directive now
	return true
}

// RevokeWorker cuts a worker off: its token is invalidated (kept as a
// tombstone so late calls see 403, not 401), and its live leases are
// dropped with their points re-queued immediately — a replacement can
// pick them up without waiting for the TTL. Reports whether the worker
// is known.
func (c *Coordinator) RevokeWorker(id string) bool {
	c.wmu.Lock()
	ws := c.workers[id]
	if ws == nil {
		c.wmu.Unlock()
		return false
	}
	ws.state = workerRevoked
	name := ws.name
	orphans := make(map[string]string, len(ws.leases))
	for lid, jid := range ws.leases {
		orphans[lid] = jid
	}
	ws.leases = make(map[string]string)
	c.wmu.Unlock()
	c.emit(FleetEvent{Type: "worker-revoke", Worker: id, Detail: name})
	c.revocations.Add(1)
	c.log.Warn("worker revoked", "worker", id, "name", name, "requeued_leases", len(orphans))
	c.requeueOrphans(orphans, "worker revoked")
	c.wake()
	return true
}

// deregisterWorker removes a worker from the fleet (the drain endgame,
// or an explicit leave). Any leases it still holds re-queue immediately.
func (c *Coordinator) deregisterWorker(ws *workerState) {
	c.wmu.Lock()
	delete(c.workers, ws.id)
	orphans := make(map[string]string, len(ws.leases))
	for lid, jid := range ws.leases {
		orphans[lid] = jid
	}
	ws.leases = make(map[string]string)
	c.wmu.Unlock()
	c.emit(FleetEvent{Type: "worker-leave", Worker: ws.id, Detail: ws.name})
	c.log.Info("worker deregistered", "worker", ws.id, "name", ws.name)
	if len(orphans) > 0 {
		c.requeueOrphans(orphans, "worker deregistered")
		c.wake()
	}
}

// requeueOrphans drops a departed worker's leases job-side so their
// points go back to pending without waiting for the TTL.
func (c *Coordinator) requeueOrphans(orphans map[string]string, reason string) {
	for lid, jid := range orphans {
		if j := c.Job(jid); j != nil {
			j.dropLease(lid, reason)
		} else {
			c.forgetLease(lid)
		}
	}
}

// ---- lease dispatch ----

// awaitLease finds work for a registered worker, parking the request up
// to wait when none is pending. It returns a granted lease, or
// drain=true when the worker should wind down, or (nil, false) when the
// deadline passed with no work. Wakeups: job submit, point re-queue,
// drain/revoke, and lease-TTL expiry (via a timer aimed at the earliest
// outstanding deadline, so expired leases re-issue promptly even on an
// otherwise idle fleet).
func (c *Coordinator) awaitLease(ctx context.Context, ws *workerState, wait time.Duration) (l *Lease, drain bool) {
	deadline := time.Now().Add(wait)
	for {
		wch := c.wakeWait() // fetch before checking: no lost wakeups
		draining, revoked := c.workerDirective(ws)
		if revoked {
			return nil, false
		}
		if draining {
			return nil, true
		}
		if l := c.tryLease(ws); l != nil {
			return l, false
		}
		now := time.Now()
		if !now.Before(deadline) {
			return nil, false
		}
		sleep := deadline.Sub(now)
		if exp := c.nextExpiry(); !exp.IsZero() {
			// Re-check just past the earliest lease deadline so its
			// points re-issue without waiting out the long poll.
			if d := exp.Sub(now) + 5*time.Millisecond; d < sleep {
				if d < time.Millisecond {
					d = time.Millisecond
				}
				sleep = d
			}
		}
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, false
		case <-wch:
			t.Stop()
		case <-t.C:
		}
	}
}

// tryLease scans jobs in submission order (reaping expired leases as it
// goes) and grants the first available work to ws.
func (c *Coordinator) tryLease(ws *workerState) *Lease {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	jobs := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		jobs = append(jobs, c.jobs[id])
	}
	c.mu.Unlock()
	now := time.Now()
	share := c.activeWorkers()
	for _, j := range jobs {
		if l := j.grantLease(ws, now, share); l != nil {
			return l
		}
	}
	return nil
}

// nextExpiry returns the earliest outstanding lease deadline across all
// jobs (zero time when none).
func (c *Coordinator) nextExpiry() time.Time {
	c.mu.Lock()
	jobs := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		jobs = append(jobs, c.jobs[id])
	}
	c.mu.Unlock()
	var min time.Time
	for _, j := range jobs {
		j.mu.Lock()
		for _, l := range j.leases {
			if min.IsZero() || l.expires.Before(min) {
				min = l.expires
			}
		}
		j.mu.Unlock()
	}
	return min
}

// jobForLease resolves a lease id to its job (nil when unknown — e.g.
// granted by a previous coordinator life).
func (c *Coordinator) jobForLease(leaseID string) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	if jid, ok := c.leaseJobs[leaseID]; ok {
		return c.jobs[jid]
	}
	return nil
}

// forgetLease drops a resolved lease from the index.
func (c *Coordinator) forgetLease(leaseID string) {
	c.mu.Lock()
	delete(c.leaseJobs, leaseID)
	c.mu.Unlock()
}

// distPoint is one plan point's coordinator-side state.
type distPoint struct {
	packets int
	arms    int
	done    bool
	n       int
	ok      []int
}

// lease is the coordinator-side record of a granted lease.
type lease struct {
	id      string
	worker  string // assigned worker id
	points  []int
	granted time.Time
	expires time.Time
	// hbPackets is the worker's last heartbeat-reported packet count,
	// folded into Progress.DonePackets while the lease runs.
	hbPackets int64
	// progress is when the lease last made observable point progress: set
	// at grant and advanced only by heartbeats whose DonePackets grew. A
	// lease that keeps heartbeating with a frozen count — a wedged worker
	// the TTL machinery cannot see — shows up as a growing progress age
	// here, which WorkerInfos/Stats expose and the supervisor's
	// stuck-lease detector acts on.
	progress time.Time
}

// Job is one distributed sweep job. All methods are safe for concurrent
// use.
type Job struct {
	ID   string
	Spec sweep.Spec // normalised

	coord        *Coordinator
	plan         *experiments.SweepPlan
	fingerprint  string
	totalPackets int64
	start        time.Time

	mu         sync.Mutex
	points     []distPoint
	pending    []int // unleased incomplete point indexes, ascending
	leases     map[string]*lease
	nextLease  int
	donePoints int
	restored   int
	// estPerPoint is the moving estimate of wall-clock seconds one plan
	// point costs, fed by result timing and heartbeat packet progress;
	// zero until the first observation (adaptive sizing probes with a
	// single point until then).
	estPerPoint float64
	// keys are the per-point content-address store keys (nil when the
	// coordinator is not durable); unpin releases their eviction pins.
	keys     []store.Key
	unpin    func()
	events   []sweep.PointEvent
	subs     map[int]chan sweep.PointEvent
	nextSub  int
	err      error
	table    *experiments.Table
	results  [][]experiments.PSRPoint
	elapsed  time.Duration
	finished bool
	done     chan struct{}
}

// Plan returns the job's sweep plan (read-only).
func (j *Job) Plan() *experiments.SweepPlan { return j.plan }

// Fingerprint returns the job's plan fingerprint.
func (j *Job) Fingerprint() string { return j.fingerprint }

// rebuildPending recomputes the pending queue from point states. Callers
// hold j.mu (or own the job exclusively).
func (j *Job) rebuildPending() {
	j.pending = j.pending[:0]
	leased := make(map[int]bool)
	for _, l := range j.leases {
		for _, p := range l.points {
			leased[p] = true
		}
	}
	for i := range j.points {
		if !j.points[i].done && !leased[i] {
			j.pending = append(j.pending, i)
		}
	}
}

// observeLatencyLocked folds one per-point wall-clock sample (seconds)
// into the adaptive-sizing estimate. Callers hold j.mu.
func (j *Job) observeLatencyLocked(perPoint float64) {
	if perPoint <= 0 {
		return
	}
	if j.estPerPoint <= 0 {
		j.estPerPoint = perPoint
		return
	}
	j.estPerPoint = 0.7*j.estPerPoint + 0.3*perPoint
}

// leaseSizeLocked decides how many points the next lease may carry.
// Fixed when Config.LeasePoints > 0; otherwise sized so the lease runs
// for ~LeaseTarget at the job's observed per-point latency, never more
// than this worker's fair share of the pending queue (activeWorkers
// live workers splitting it), and probing with 1 point until a latency
// estimate exists. Callers hold j.mu.
func (j *Job) leaseSizeLocked(activeWorkers int) int {
	cfg := j.coord.cfg
	if cfg.LeasePoints > 0 {
		return cfg.LeasePoints
	}
	if j.estPerPoint <= 0 {
		return 1
	}
	n := int(cfg.LeaseTarget.Seconds()/j.estPerPoint + 0.5)
	if n < 1 {
		n = 1
	}
	if n > maxAdaptiveLease {
		n = maxAdaptiveLease
	}
	if activeWorkers > 1 {
		share := (len(j.pending) + activeWorkers - 1) / activeWorkers
		if share < 1 {
			share = 1
		}
		if n > share {
			n = share
		}
	}
	return n
}

// grantLease reaps expired leases, absorbs any points another job has
// meanwhile stored, and carves the next lease off the pending queue: the
// longest run of consecutive point indexes from its head, capped at the
// adaptive (or pinned) lease size.
func (j *Job) grantLease(ws *workerState, now time.Time, activeWorkers int) *Lease {
	cfg := j.coord.cfg
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return nil
	}
	j.absorbStoreLocked(false)
	if j.finished {
		return nil
	}
	for id, l := range j.leases {
		if now.After(l.expires) {
			j.coord.leaseExpiries.Add(1)
			j.coord.requeuedPts.Add(int64(len(l.points)))
			j.coord.log.Warn("lease expired, re-issuing", "job", j.ID, "lease", id, "worker", l.worker, "points", len(l.points))
			delete(j.leases, id)
			j.coord.forgetLease(id)
			j.coord.untrackLease(l.worker, id)
			j.coord.emit(FleetEvent{Type: "lease-expire", Worker: l.worker, Job: j.ID, Lease: id, Points: len(l.points), Detail: "ttl expired"})
			j.rebuildPending()
		}
	}
	if len(j.pending) == 0 {
		return nil
	}
	take := 1
	size := j.leaseSizeLocked(activeWorkers)
	for take < len(j.pending) && take < size && j.pending[take] == j.pending[take-1]+1 {
		take++
	}
	points := append([]int(nil), j.pending[:take]...)
	j.pending = j.pending[take:]
	j.nextLease++
	l := &lease{
		id:       fmt.Sprintf("%s-l%d", j.ID, j.nextLease),
		worker:   ws.id,
		points:   points,
		granted:  now,
		expires:  now.Add(cfg.LeaseTTL),
		progress: now,
	}
	j.leases[l.id] = l
	j.coord.mu.Lock()
	j.coord.leaseJobs[l.id] = j.ID
	j.coord.mu.Unlock()
	j.coord.trackLease(ws.id, l.id, j.ID)
	out := &Lease{
		ID:          l.id,
		Job:         j.ID,
		Spec:        j.Spec,
		Points:      points,
		Fingerprint: j.fingerprint,
		TTLSec:      cfg.LeaseTTL.Seconds(),
	}
	if j.Spec.Pool {
		out.PoolSize = cfg.PoolSize
		out.PoolSeed = cfg.PoolSeed
	}
	j.coord.emit(FleetEvent{Type: "lease-grant", Worker: ws.id, Job: j.ID, Lease: l.id, Points: len(points)})
	j.coord.leasesGranted.Add(1)
	j.coord.log.Info("lease granted", "job", j.ID, "lease", l.id, "worker", ws.id, "points", len(points), "first", points[0])
	return out
}

// dropLease removes one live lease (revocation, deregistration) and
// re-queues its points immediately.
func (j *Job) dropLease(leaseID, reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	l, ok := j.leases[leaseID]
	if !ok {
		return
	}
	delete(j.leases, leaseID)
	j.coord.forgetLease(leaseID)
	j.coord.emit(FleetEvent{Type: "lease-expire", Worker: l.worker, Job: j.ID, Lease: leaseID, Points: len(l.points), Detail: reason})
	j.coord.leaseExpiries.Add(1)
	j.coord.requeuedPts.Add(int64(len(l.points)))
	j.coord.log.Warn("lease dropped", "job", j.ID, "lease", leaseID, "reason", reason, "points", len(l.points))
	j.rebuildPending()
}

// avgPacketsLocked is the mean packet count of the lease's points.
// Callers hold j.mu.
func (j *Job) avgPacketsLocked(l *lease) float64 {
	if len(l.points) == 0 {
		return 0
	}
	total := 0
	for _, p := range l.points {
		total += j.points[p].packets
	}
	return float64(total) / float64(len(l.points))
}

// heartbeat re-arms a live lease and feeds packet progress into the
// latency estimate. It reports false when the lease is unknown or
// already resolved — the worker should abandon that work.
func (j *Job) heartbeat(hb Heartbeat, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	l, ok := j.leases[hb.Lease]
	if !ok || j.finished {
		return false
	}
	l.expires = now.Add(j.coord.cfg.LeaseTTL)
	if hb.DonePackets > l.hbPackets {
		l.hbPackets = hb.DonePackets
		l.progress = now
	}
	if hb.DonePackets > 0 {
		if avg := j.avgPacketsLocked(l); avg > 0 {
			perPacket := now.Sub(l.granted).Seconds() / float64(hb.DonePackets)
			j.observeLatencyLocked(perPacket * avg)
		}
	}
	return true
}

// checkPointShape validates a reported point against the plan.
func (j *Job) checkPointShape(idx int, p sweep.PointTally) error {
	if idx < 0 || idx >= len(j.points) {
		return fmt.Errorf("point %d outside [0,%d)", idx, len(j.points))
	}
	if p.N != j.points[idx].packets || len(p.OK) != j.points[idx].arms {
		return fmt.Errorf("point %d shape mismatch (%d packets/%d arms reported, want %d/%d)",
			idx, p.N, len(p.OK), j.points[idx].packets, j.points[idx].arms)
	}
	return nil
}

// markDoneLocked records a completed point and publishes its event,
// reporting whether the point was newly marked (false: it was already
// done — the caller is seeing a duplicate). persist controls whether the
// tally is also written to the store (points absorbed FROM the store are
// already durable). Callers hold j.mu.
func (j *Job) markDoneLocked(idx int, p sweep.PointTally, persist bool) bool {
	pt := &j.points[idx]
	if pt.done {
		return false
	}
	pt.done = true
	pt.n = p.N
	pt.ok = append([]int(nil), p.OK...)
	j.donePoints++
	if persist && j.coord.store != nil {
		rec := store.Record{Key: j.keys[idx], Tally: store.Tally{N: pt.n, OK: pt.ok}}
		if err := j.coord.store.Put(time.Now(), rec); err != nil {
			j.failLocked(fmt.Errorf("dist: store put: %w", err))
			return true
		}
	}
	ev := sweep.PointEvent{
		Seq: len(j.events), Point: idx, N: pt.n, OK: pt.ok,
		DonePoints: j.donePoints, Points: len(j.points),
	}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		ch <- ev
	}
	return true
}

// absorbStoreLocked restores every not-yet-done point whose
// content-address key the store already holds — points computed by
// other jobs, previous coordinator lives, or migrated journals. Returns
// how many points it restored; when any were, the pending queue is
// rebuilt, leases made fully redundant are cancelled, and a now-complete
// job is finalized. countMisses makes absent points count as store
// misses (only the first, submit-time scan does, so each point counts
// its miss exactly once). Callers hold j.mu.
func (j *Job) absorbStoreLocked(countMisses bool) int {
	st := j.coord.store
	if st == nil || j.finished {
		return 0
	}
	restored := 0
	now := time.Now()
	for i := range j.points {
		if j.points[i].done {
			continue
		}
		t, ok := st.Get(j.keys[i])
		if !ok || t.N != j.points[i].packets || len(t.OK) != j.points[i].arms {
			if countMisses {
				store.Misses.Inc()
			}
			continue
		}
		store.Hits.Inc()
		st.Touch(j.keys[i], now)
		j.markDoneLocked(i, sweep.PointTally{Point: i, N: t.N, OK: t.OK}, false)
		j.restored++
		restored++
		if j.finished { // markDoneLocked can fail the job
			return restored
		}
	}
	if restored > 0 {
		j.rebuildPending()
		j.cancelRedundantLocked()
		if j.donePoints == len(j.points) {
			j.finalizeLocked()
		}
	}
	return restored
}

// cancelRedundantLocked drops live leases every one of whose points is
// already done — a slow worker's late result (or a store absorb) just
// completed them, so the re-run in flight is redundant. The dropped
// lease's worker learns on its next heartbeat (410 Gone) and abandons
// the local job. Callers hold j.mu.
func (j *Job) cancelRedundantLocked() {
	for id, l := range j.leases {
		redundant := true
		for _, p := range l.points {
			if !j.points[p].done {
				redundant = false
				break
			}
		}
		if !redundant {
			continue
		}
		delete(j.leases, id)
		j.coord.forgetLease(id)
		j.coord.untrackLease(l.worker, id)
		j.coord.emit(FleetEvent{Type: "lease-cancel", Worker: l.worker, Job: j.ID, Lease: id, Points: len(l.points), Detail: "points completed elsewhere"})
		j.coord.log.Info("lease cancelled, points completed elsewhere", "job", j.ID, "lease", id, "worker", l.worker, "points", len(l.points))
	}
}

// result merges a worker's lease result. Success tallies are idempotent
// — a point already completed (by a faster re-lease or a duplicate POST)
// is skipped and counted as a dedupe, which is sound because tallies are
// deterministic. A result from a lease no longer live (expired or
// re-issued under a slow-but-alive worker) is still accepted for any
// point not yet done — counted as a late accept — and any re-run lease
// made fully redundant by it is cancelled in flight. An error result
// fails the job only while its lease is live; stale errors are dropped.
func (j *Job) result(res LeaseResult) error {
	now := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	l, live := j.leases[res.Lease]
	if live {
		delete(j.leases, res.Lease)
		j.coord.untrackLease(l.worker, res.Lease)
		defer j.coord.forgetLease(res.Lease)
	}
	if j.finished {
		return nil
	}
	if res.Error != "" {
		if live {
			j.failLocked(fmt.Errorf("dist: worker %s failed lease %s: %s", res.Worker, res.Lease, res.Error))
		} else {
			j.coord.log.Warn("dropping stale lease error", "job", j.ID, "worker", res.Worker, "err", res.Error)
		}
		return nil
	}
	if res.Fingerprint != j.fingerprint {
		// Defence in depth: workers verify the fingerprint before
		// running, so a mismatch here is a protocol violation, not a
		// recoverable state. Refuse the tallies and put the points back.
		if live {
			j.rebuildPending()
			j.coord.wake()
		}
		return fmt.Errorf("dist: job %s: result fingerprint %s does not match plan %s", j.ID, res.Fingerprint, j.fingerprint)
	}
	if live && len(l.points) > 0 {
		j.observeLatencyLocked(now.Sub(l.granted).Seconds() / float64(len(l.points)))
	}
	inLease := make(map[int]bool)
	if live {
		for _, p := range l.points {
			inLease[p] = true
		}
	}
	newlyMarked := 0
	for _, p := range res.Points {
		if err := j.checkPointShape(p.Point, p); err != nil {
			j.failLocked(fmt.Errorf("dist: worker %s: %w", res.Worker, err))
			return nil
		}
		if j.markDoneLocked(p.Point, p, true) {
			newlyMarked++
			if !live {
				store.LateAccepts.Inc()
				j.coord.log.Info("late result accepted", "job", j.ID, "lease", res.Lease, "worker", res.Worker, "point", p.Point)
			}
		} else {
			store.Dedupes.Inc()
		}
		delete(inLease, p.Point)
		if j.finished {
			return nil
		}
	}
	// A late result may have completed every point of a re-issued lease
	// still in flight: cancel those so the redundant re-run stops at its
	// next heartbeat instead of burning packets.
	if newlyMarked > 0 {
		j.cancelRedundantLocked()
	}
	// Leased points the result did not cover go back to pending.
	if live && len(inLease) > 0 {
		j.rebuildPending()
		j.coord.wake()
	}
	if j.donePoints == len(j.points) {
		j.finalizeLocked()
	}
	return nil
}

// finalizeLocked assembles the table once every point is complete.
// Callers hold j.mu.
func (j *Job) finalizeLocked() {
	if j.finished {
		return
	}
	// A lease can outlive its points (a slow worker's stale result
	// finished the job while a re-issue was still running): drop the
	// bookkeeping so heartbeat progress stops inflating DonePackets and
	// the coordinator-level lease index does not leak.
	j.dropLeasesLocked()
	results := make([][]experiments.PSRPoint, len(j.points))
	arms := j.plan.Points
	for i := range j.points {
		kinds := arms[i].Cfg.Receivers
		pts := make([]experiments.PSRPoint, len(kinds))
		for a, k := range kinds {
			pts[a] = experiments.PSRPoint{Kind: k, OK: j.points[i].ok[a], N: j.points[i].n}
		}
		results[i] = pts
	}
	table, err := j.plan.Assemble(results)
	j.finished = true
	j.err = err
	j.table = table
	j.results = results
	j.elapsed = time.Since(j.start)
	if j.unpin != nil {
		j.unpin()
	}
	j.closeSubsLocked()
	j.coord.emit(FleetEvent{Type: "job-done", Job: j.ID, Points: len(j.points)})
	close(j.done)
}

// failLocked records the job's first error. Callers hold j.mu.
func (j *Job) failLocked(err error) {
	if j.finished {
		return
	}
	j.finished = true
	j.err = err
	j.elapsed = time.Since(j.start)
	if j.unpin != nil {
		j.unpin()
	}
	j.dropLeasesLocked()
	j.closeSubsLocked()
	j.coord.emit(FleetEvent{Type: "job-failed", Job: j.ID, Detail: err.Error()})
	close(j.done)
}

// dropLeasesLocked forgets every outstanding lease, job-, worker- and
// coordinator-side. Callers hold j.mu (the j.mu → c.mu/c.wmu nesting
// matches grantLease's expiry reaping).
func (j *Job) dropLeasesLocked() {
	for id, l := range j.leases {
		delete(j.leases, id)
		j.coord.forgetLease(id)
		j.coord.untrackLease(l.worker, id)
	}
}

func (j *Job) closeSubsLocked() {
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
}

// Subscribe mirrors sweep.Job.Subscribe: every completed point so far
// (journal-restored ones first) plus a live channel, closed when the job
// finishes or cancel is called.
func (j *Job) Subscribe() (past []sweep.PointEvent, ch <-chan sweep.PointEvent, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	past = append([]sweep.PointEvent(nil), j.events...)
	c := make(chan sweep.PointEvent, len(j.points)+1)
	if j.finished {
		close(c)
		return past, c, func() {}
	}
	id := j.nextSub
	j.nextSub++
	if j.subs == nil {
		j.subs = make(map[int]chan sweep.PointEvent)
	}
	j.subs[id] = c
	return past, c, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if cc, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(cc)
		}
	}
}

// Done returns a channel closed when the job finishes (any outcome).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes, then returns its result (table
// and raw per-point tallies) or its failure.
func (j *Job) Wait(ctx context.Context) (*sweep.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return &sweep.Result{Table: j.table, Points: j.results, Elapsed: j.elapsed}, nil
}

// Progress reports the job's execution state in the same shape as an
// in-process engine job, so the HTTP API is identical in both modes.
func (j *Job) Progress() sweep.Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := sweep.Progress{
		ID:             j.ID,
		Experiment:     j.Spec.Experiment,
		State:          "running",
		Points:         len(j.points),
		DonePoints:     j.donePoints,
		RestoredPoints: j.restored,
		Packets:        j.totalPackets,
		ElapsedSec:     time.Since(j.start).Seconds(),
	}
	for i := range j.points {
		if j.points[i].done {
			p.DonePackets += int64(j.points[i].n)
		}
	}
	for _, l := range j.leases {
		p.DonePackets += l.hbPackets
	}
	if j.finished {
		p.ElapsedSec = j.elapsed.Seconds()
		if j.err != nil {
			p.State = "failed"
			p.Error = j.err.Error()
		} else {
			p.State = "done"
		}
	}
	return p
}

// ---- HTTP layer ----

// Handler returns the worker-tier HTTP API (the /v1/dist/ endpoints).
// Registration and admin routes are guarded by the join secret; the
// data-plane routes by the per-worker tokens it mints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		if err := api.WriteJSON(w, status, v); err != nil {
			c.log.Warn("writing response", "err", err)
		}
	}
	readJSON := func(w http.ResponseWriter, r *http.Request, v any) bool {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			api.Error(w, http.StatusBadRequest, err)
			return false
		}
		return true
	}
	// worker wraps a data-plane handler with per-worker token auth.
	worker := func(h func(ws *workerState, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			ws, status := c.authWorker(r)
			if status != http.StatusOK {
				w.Header().Set("WWW-Authenticate", `Bearer realm="cprecycle-dist"`)
				code, msg := "unauthorized", "unknown worker token (re-register)"
				if status == http.StatusForbidden {
					code, msg = "forbidden", "worker revoked"
				}
				api.ErrorCode(w, status, code, msg)
				return
			}
			h(ws, w, r)
		}
	}
	// admin wraps a control-plane handler with join-secret auth.
	admin := func(h http.HandlerFunc) http.HandlerFunc {
		if c.cfg.Token == "" {
			return h
		}
		return api.BearerAuth(c.cfg.Token, h).ServeHTTP
	}

	mux.HandleFunc("POST /v1/dist/register", admin(func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		_, resp, err := c.registerWorker(req.Worker)
		if err != nil {
			api.Error(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("POST /v1/dist/lease", worker(func(ws *workerState, w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		wait := time.Duration(req.WaitSec * float64(time.Second))
		if wait < 0 {
			wait = 0
		}
		if wait > c.cfg.LongPoll {
			wait = c.cfg.LongPoll
		}
		l, drain := c.awaitLease(r.Context(), ws, wait)
		switch {
		case drain:
			writeJSON(w, http.StatusOK, LeaseResponse{Drain: true})
		case l != nil:
			writeJSON(w, http.StatusOK, LeaseResponse{Lease: l})
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	}))

	mux.HandleFunc("POST /v1/dist/result", worker(func(ws *workerState, w http.ResponseWriter, r *http.Request) {
		var res LeaseResult
		if !readJSON(w, r, &res) {
			return
		}
		res.Worker = ws.id
		j := c.Job(res.Job)
		if j == nil {
			// Unknown job: removed, or from a journal-less previous life.
			// Nothing to merge into; the worker's work is simply dropped.
			writeJSON(w, http.StatusOK, map[string]string{"status": "dropped"})
			return
		}
		if err := j.result(res); err != nil {
			api.Error(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))

	mux.HandleFunc("POST /v1/dist/heartbeat", worker(func(ws *workerState, w http.ResponseWriter, r *http.Request) {
		var hb Heartbeat
		if !readJSON(w, r, &hb) {
			return
		}
		j := c.jobForLease(hb.Lease)
		if j == nil || !j.heartbeat(hb, time.Now()) {
			api.ErrorCode(w, http.StatusGone, "gone", "lease revoked")
			return
		}
		draining, _ := c.workerDirective(ws)
		writeJSON(w, http.StatusOK, HeartbeatResponse{Status: "ok", Drain: draining})
	}))

	mux.HandleFunc("POST /v1/dist/deregister", worker(func(ws *workerState, w http.ResponseWriter, r *http.Request) {
		c.deregisterWorker(ws)
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))

	mux.HandleFunc("GET /v1/dist/workers", admin(func(w http.ResponseWriter, r *http.Request) {
		page, err := api.ParsePage(r, 100, 1000)
		if err != nil {
			api.Error(w, http.StatusBadRequest, err)
			return
		}
		// Newest-first, like /v1/jobs: the workers that just joined are
		// the ones an operator is usually looking for.
		infos := c.WorkerInfos()
		for i, jj := 0, len(infos)-1; i < jj; i, jj = i+1, jj-1 {
			infos[i], infos[jj] = infos[jj], infos[i]
		}
		writeJSON(w, http.StatusOK, api.Paginate(infos, page))
	}))

	mux.HandleFunc("POST /v1/dist/workers/{id}/drain", admin(func(w http.ResponseWriter, r *http.Request) {
		if !c.DrainWorker(r.PathValue("id")) {
			api.ErrorCode(w, http.StatusNotFound, "not_found", "no such worker")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
	}))

	mux.HandleFunc("POST /v1/dist/workers/{id}/revoke", admin(func(w http.ResponseWriter, r *http.Request) {
		if !c.RevokeWorker(r.PathValue("id")) {
			api.ErrorCode(w, http.StatusNotFound, "not_found", "no such worker")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "revoked"})
	}))

	mux.HandleFunc("GET /v1/dist/stats", admin(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	}))

	mux.HandleFunc("POST /v1/dist/annotate", admin(func(w http.ResponseWriter, r *http.Request) {
		var req AnnotateRequest
		if !readJSON(w, r, &req) {
			return
		}
		if !strings.HasPrefix(req.Type, "supervisor-") || len(req.Type) > 64 {
			api.ErrorCode(w, http.StatusBadRequest, "bad_request", `annotation type must start with "supervisor-"`)
			return
		}
		c.emit(FleetEvent{Type: req.Type, Worker: req.Worker, Detail: req.Detail})
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))

	mux.HandleFunc("GET /v1/dist/events", admin(c.fleetEventsHandler))

	return mux
}

// BearerAuth wraps h so every request must carry
// "Authorization: Bearer <token>". An empty token disables the check
// (for localhost experimentation; production coordinators set one).
// Kept as a thin alias over internal/api so existing callers keep
// working; failures answer with the standard JSON error envelope.
func BearerAuth(token string, h http.Handler) http.Handler {
	return api.BearerAuth(token, h)
}
