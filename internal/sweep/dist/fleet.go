package dist

// Fleet-wide event stream: worker lifecycle (join/drain/revoke/leave),
// lease lifecycle (grant/expire) and job milestones
// (submit/done/failed), sequenced and replayable — the dashboard view of
// the whole tier, complementing the per-job point streams served by
// cmd/cprecycle-bench.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// fleetRetain bounds the in-memory fleet event history. A reconnecting
// subscriber whose Last-Event-ID has been trimmed away resumes from the
// oldest retained event instead.
const fleetRetain = 8192

// emit appends a fleet event and fans it out to live subscribers. It is
// a lock leaf (only fmu) and therefore safe to call while holding j.mu,
// c.mu or c.wmu. A subscriber too slow to drain its buffer is dropped
// (its channel closes); the SSE layer's Last-Event-ID replay makes a
// reconnect lossless.
func (c *Coordinator) emit(ev FleetEvent) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	ev.Seq = c.fleetSeq
	c.fleetSeq++
	c.fleet = append(c.fleet, ev)
	if len(c.fleet) > fleetRetain {
		c.fleet = append(c.fleet[:0:0], c.fleet[len(c.fleet)-fleetRetain:]...)
	}
	for id, ch := range c.fleetSubs {
		select {
		case ch <- ev:
		default:
			delete(c.fleetSubs, id)
			close(ch)
			c.sseDropped.Add(1)
		}
	}
}

// SubscribeFleet returns the retained event history and a live channel
// for subsequent events. The channel closes when cancel is called, when
// the coordinator closes, or when the subscriber falls too far behind
// (reconnect and resume by Seq). Events with Seq <= after are omitted
// from the replay; pass -1 for everything retained.
func (c *Coordinator) SubscribeFleet(after int) (past []FleetEvent, ch <-chan FleetEvent, cancel func()) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	for _, ev := range c.fleet {
		if ev.Seq > after {
			past = append(past, ev)
		}
	}
	sub := make(chan FleetEvent, 256)
	if c.fleetSubs == nil {
		// Closed coordinator (closeFleetSubs nils the map): no live
		// tail, just the retained history.
		close(sub)
		return past, sub, func() {}
	}
	id := c.nextFSub
	c.nextFSub++
	c.fleetSubs[id] = sub
	return past, sub, func() {
		c.fmu.Lock()
		defer c.fmu.Unlock()
		if s, ok := c.fleetSubs[id]; ok {
			delete(c.fleetSubs, id)
			close(s)
		}
	}
}

// closeFleetSubs ends every live fleet subscription (coordinator
// shutdown).
func (c *Coordinator) closeFleetSubs() {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	for id, ch := range c.fleetSubs {
		delete(c.fleetSubs, id)
		close(ch)
	}
	c.fleetSubs = nil
}

// fleetEventsHandler serves GET /v1/dist/events: an SSE stream of
// FleetEvents. Each event's SSE id is its sequence number and its SSE
// event name is its type, e.g.
//
//	id: 12
//	event: lease-grant
//	data: {"seq":12,"type":"lease-grant","worker":"w2","job":"j1","lease":"j1-l3","points":4}
//
// A reconnecting consumer presents the standard Last-Event-ID header and
// resumes after that sequence number (subject to the retention bound).
// The stream runs until the client disconnects or the coordinator shuts
// down.
func (c *Coordinator) fleetEventsHandler(w http.ResponseWriter, r *http.Request) {
	if _, ok := w.(http.Flusher); !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	rc := http.NewResponseController(w)
	after := -1
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		// A malformed id is ignored (full replay) rather than rejected:
		// the header is a resume hint, not a contract.
		if n, err := strconv.Atoi(v); err == nil {
			after = n
		}
	}
	past, ch, cancel := c.SubscribeFleet(after)
	defer cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	send := func(ev FleetEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			c.log.Warn("marshalling fleet event", "err", err)
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		// Flush errors mean the client is gone: unsubscribe now instead
		// of spinning until the next event's write fails.
		return rc.Flush() == nil
	}
	for _, ev := range past {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !send(ev) {
				return
			}
		}
	}
}
