package dist

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestFleetRingOldLastEventIDReplaysFromTail pins the retention
// contract: a subscriber resuming after a Seq older than the ring's
// tail replays from the oldest retained event, not from zero and not
// with a gaping error.
func TestFleetRingOldLastEventIDReplaysFromTail(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const extra = 100
	for i := 0; i < fleetRetain+extra; i++ {
		c.emit(FleetEvent{Type: "test"})
	}
	past, _, cancel := c.SubscribeFleet(5) // long since trimmed away
	defer cancel()
	if len(past) != fleetRetain {
		t.Fatalf("replay length = %d, want %d", len(past), fleetRetain)
	}
	if got, want := past[0].Seq, extra; got != want {
		t.Errorf("oldest replayed Seq = %d, want %d", got, want)
	}
	if got, want := past[len(past)-1].Seq, fleetRetain+extra-1; got != want {
		t.Errorf("newest replayed Seq = %d, want %d", got, want)
	}
	if s := c.Stats(); s.FleetEvents != fleetRetain+extra {
		t.Errorf("Stats().FleetEvents = %d, want %d", s.FleetEvents, fleetRetain+extra)
	}
}

// TestFleetSlowSubscriberDroppedOnce: a subscriber that never drains is
// dropped exactly once — channel closed, removed from the registry, the
// drop counter incremented — and later emits neither panic nor re-drop.
func TestFleetSlowSubscriberDroppedOnce(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, ch, cancel := c.SubscribeFleet(-1)
	defer cancel()
	// Fill the subscriber buffer, then overflow it and keep emitting.
	for i := 0; i < cap(ch)+10; i++ {
		c.emit(FleetEvent{Type: "test"})
	}
	if got := c.Stats().SSEDropped; got != 1 {
		t.Errorf("SSEDropped = %d, want 1", got)
	}
	if got := c.Stats().SSESubscribers; got != 0 {
		t.Errorf("SSESubscribers = %d, want 0", got)
	}
	// Drain to the close: exactly cap(ch) buffered events then closed.
	n := 0
	for range ch {
		n++
	}
	if n != cap(ch) {
		t.Errorf("drained %d buffered events, want %d", n, cap(ch))
	}
	// cancel after the drop must not double-close or panic.
	cancel()
	c.emit(FleetEvent{Type: "test"})
}

// TestFleetEventsHandlerOldLastEventID drives the SSE endpoint with a
// Last-Event-ID older than the ring tail against a closed coordinator
// (so the stream ends after replay) and checks the first replayed id.
func TestFleetEventsHandlerOldLastEventID(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	const extra = 7
	for i := 0; i < fleetRetain+extra; i++ {
		c.emit(FleetEvent{Type: "test"})
	}
	c.Close()
	req := httptest.NewRequest(http.MethodGet, "/v1/dist/events", nil)
	req.Header.Set("Last-Event-ID", "2")
	rec := httptest.NewRecorder()
	c.fleetEventsHandler(rec, req)
	body := rec.Body.String()
	if !strings.HasPrefix(body, fmt.Sprintf("id: %d\n", extra)) {
		t.Errorf("first replayed event:\n%.80s\nwant id: %d", body, extra)
	}
	if strings.Count(body, "id: ") != fleetRetain {
		t.Errorf("replayed %d events, want %d", strings.Count(body, "id: "), fleetRetain)
	}
}

// failFlushWriter implements http.ResponseWriter, http.Flusher and
// FlushError; every flush fails, simulating a disconnected SSE client
// whose writes still land in the kernel buffer.
type failFlushWriter struct {
	hdr     http.Header
	writes  int
	flushes int
}

func (w *failFlushWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = make(http.Header)
	}
	return w.hdr
}
func (w *failFlushWriter) Write(p []byte) (int, error) { w.writes++; return len(p), nil }
func (w *failFlushWriter) WriteHeader(int)             {}
func (w *failFlushWriter) Flush()                      {}
func (w *failFlushWriter) FlushError() error {
	w.flushes++
	return errors.New("client gone")
}

// TestFleetEventsHandlerStopsOnFlushError pins the disconnect fix: a
// failing flush ends the stream after the first event instead of
// replaying (or worse, spinning on) the rest.
func TestFleetEventsHandlerStopsOnFlushError(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.emit(FleetEvent{Type: "test"})
	}
	c.Close()
	w := &failFlushWriter{}
	req := httptest.NewRequest(http.MethodGet, "/v1/dist/events", nil)
	c.fleetEventsHandler(w, req)
	if w.flushes != 1 {
		t.Errorf("flush attempts = %d, want 1 (stream must end at the first failed flush)", w.flushes)
	}
	if w.writes != 1 {
		t.Errorf("event writes = %d, want 1", w.writes)
	}
}
