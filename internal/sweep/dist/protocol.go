// Package dist is the distributed sweep tier: a coordinator that
// decomposes sweep.Specs into point-range leases and hands them to
// remote workers over HTTP, and a worker that wraps a local sweep.Engine
// and executes leases against it.
//
// # Determinism contract
//
// A coordinator plus any number of workers produces a byte-identical
// table to one direct in-process engine for the same spec and seed —
// including under transport faults, mid-sweep worker death, drain and
// revocation. The contract rests on three established properties: every
// packet derives its RNG from (point seed, packet index), so any
// executor of a point range tallies identically; pooled sweeps pin the
// waveform pool's (size, seed) identity, which the lease carries so
// every worker builds the same pool; and leases name plan points by
// index against the normalised spec, with a plan fingerprint
// (experiments.SweepPlan.Fingerprint) that both sides must agree on
// before any tallies merge — version skew between binaries is refused,
// not silently blended.
//
// # Registration and authentication
//
// A worker joins the fleet with POST /v1/dist/register, authenticating
// with the fleet's join secret (Config.Token, "Authorization: Bearer
// <secret>"; an empty secret leaves registration open for localhost
// experimentation). The coordinator assigns it an id ("w1", "w2", …)
// and mints a per-worker bearer token, and the response also advertises
// the fleet's heartbeat interval, long-poll bound and lease TTL so the
// whole fleet paces itself from one configuration. Every subsequent
// data-plane call (lease, heartbeat, result, deregister) authenticates
// with the per-worker token; token checks are constant-time. A 401
// means the token is unknown — typically a restarted coordinator whose
// registry died with it — and the worker re-registers and carries on. A
// 403 means the worker was revoked: it cancels any in-flight work and
// exits. Admin calls (worker list, drain, revoke, the fleet event
// stream) authenticate with the join secret.
//
// # Lease lifecycle
//
// A registered worker asks for work with POST /v1/dist/lease. The call
// long-polls: when no work is pending the coordinator parks the request
// (bounded by LeaseRequest.WaitSec, capped by Config.LongPoll) and
// wakes it the moment a job is submitted, points re-queue, or a lease
// expires — there is no fixed-interval idle polling anywhere in the
// tier. The response is a LeaseResponse: a Lease (a job id, the
// normalised spec, a contiguous range of plan point indexes, the plan
// fingerprint, the pool identity for pooled specs, and a TTL), a drain
// directive, or 204 when the deadline passed with no work.
//
// Lease size is adaptive: the coordinator keeps a per-job moving
// estimate of wall-clock seconds per point — fed by result timing and
// by heartbeat packet progress — and sizes each lease so it runs for
// roughly Config.LeaseTarget (default 4× the heartbeat interval),
// capped so one worker cannot starve the rest of the fleet of pending
// points. A job's first lease is a single point (a probe that seeds the
// estimate). Setting Config.LeasePoints > 0 pins the legacy fixed size
// instead.
//
// While running, the worker POSTs /v1/dist/heartbeat at the advertised
// interval; each accepted heartbeat re-arms the TTL deadline and
// reports packet-level progress. A lease whose deadline passes — worker
// crash, network partition, kill -9 — is reaped and its points return
// to the pending queue; a heartbeat arriving after re-issue is answered
// 410 Gone and the worker abandons the work. Results are idempotent: a
// point's tallies are deterministic, so whichever copy lands first wins
// and duplicates are ignored. A worker that hits a real execution error
// reports it in LeaseResult.Error; if its lease is still live the job
// fails — the error is deterministic and would recur on any worker —
// while an error from an already-expired lease is dropped.
//
// # Drain and revocation
//
// Graceful scale-down is a first-class path. A drain signal — POST
// /v1/dist/workers/{id}/drain from an admin, or SIGTERM delivered to
// the worker process — puts the worker into draining: it finishes its
// in-flight lease (the result is accepted normally), takes no new
// leases, POSTs /v1/dist/deregister and exits. Server-side drains reach
// the worker on its next heartbeat response (HeartbeatResponse.Drain)
// or long-poll response (LeaseResponse.Drain), so an idle worker drains
// immediately. Nothing in the drain path waits for a lease TTL.
//
// Revocation (POST /v1/dist/workers/{id}/revoke) is the abrupt cut: the
// worker's token is invalidated, its live leases are dropped and their
// points re-queued immediately, and any late result it sends is
// rejected at the auth layer (403) — the tallies never reach the merge.
//
// # Fault tolerance
//
// Every worker→coordinator call retries transient transport failures
// with capped, jittered exponential backoff (the HTTP client is
// injectable, which is how the chaos tests drive flaky and partitioned
// transports). Retries are safe by construction: leases are granted to
// the requester exactly once per granted id, heartbeats are idempotent,
// and results merge idempotently.
//
// # Durability
//
// With Config.StoreDir set, completed points land in a content-addressed
// binary result store (internal/sweep/store: bit-packed records, CRC32-C
// per record, fsynced atomic segment writes, torn-tail salvage) shared
// across jobs, and each job writes one small JSON manifest
// <dir>/<jobID>.json naming its normalised spec, point count and pool
// identity. A coordinator restarted over the same directory replays the
// manifests against the store index — an index read, not a log replay —
// and resumes every job at its first missing point; completed points are
// never recomputed. Because the store keys points by content (plan
// fingerprint + pool identity + point identity), repeated sweeps and
// cross-job duplicate points are served from the store instead of the
// fleet, late results from slow re-leased workers are accepted once and
// the redundant re-run is cancelled in flight (cpr_store_* counters
// track hits, misses, dedupes, late accepts and corrupt records). Legacy
// *.jsonl journals in the directory are migrated into the store on open.
// The worker registry is deliberately not persisted: workers re-register
// on the first 401 from the new coordinator life.
//
// # Observability
//
// Both sides log through log/slog (Config.Log / WorkerConfig.Log, nil
// discards) with component/job/worker/lease attributes on every event,
// and keep atomic operational counters that cost nothing to the
// protocol paths. Coordinator.Stats() aggregates the fleet view —
// workers by state, in-flight leases, queue depth, the adaptive lease
// estimate, grant/expiry/re-queue/revocation totals, fleet-stream
// subscriber and drop counts — and Coordinator.WritePrometheus renders
// it as cpr_dist_* series; Worker.Stats()/WritePrometheus do the same
// for a worker's lease/poll/retry/re-registration/result counters
// (cpr_dist_worker_*). Both are instance-scoped (not in the process
// registry) so many coordinators can coexist in one test binary;
// cmd/cprecycle-bench mounts them on its authenticated /metrics and
// /v1/status endpoints.
package dist

import "repro/internal/sweep"

// Wire types of the worker tier. All endpoints live under /v1/dist/ on
// the coordinator:
//
//	POST /v1/dist/register    RegisterRequest → 200 RegisterResponse   (join-secret auth)
//	POST /v1/dist/lease       LeaseRequest → 200 LeaseResponse, or 204 after WaitSec with no work
//	POST /v1/dist/result      LeaseResult  → 200 (idempotent)
//	POST /v1/dist/heartbeat   Heartbeat    → 200 HeartbeatResponse, or 410 when the lease was re-issued
//	POST /v1/dist/deregister  → 200 (live leases re-queued immediately)
//	GET  /v1/dist/workers     → 200 {"items":[WorkerInfo…],"next_cursor":…}, newest first (join-secret auth)
//	POST /v1/dist/workers/{id}/drain    → 200                          (join-secret auth)
//	POST /v1/dist/workers/{id}/revoke   → 200                          (join-secret auth)
//	GET  /v1/dist/stats       → 200 FleetStats                         (join-secret auth)
//	POST /v1/dist/annotate    AnnotateRequest → 200                    (join-secret auth)
//	GET  /v1/dist/events      fleet-wide SSE stream (Last-Event-ID resume, join-secret auth)
//
// Failures answer with the shared /v1 envelope
// ({"error":{"code","message"}}, internal/api); workers key on the
// status codes alone (401 re-register, 403 revoked, 410 lease gone).
//
// Data-plane calls (lease, result, heartbeat, deregister) authenticate
// with the per-worker token minted by register; 401 = unknown token
// (re-register), 403 = revoked (terminate).

// RegisterRequest joins a worker to the fleet.
type RegisterRequest struct {
	// Worker is the self-reported name (host:pid by default) — used in
	// logs and fleet events alongside the assigned id.
	Worker string `json:"worker"`
}

// RegisterResponse carries the worker's identity and the fleet pacing
// parameters the coordinator wants every worker to use.
type RegisterResponse struct {
	// Worker is the coordinator-assigned id ("w3"); admin drain/revoke
	// calls name workers by it.
	Worker string `json:"worker"`
	// Token authenticates every subsequent data-plane call.
	Token string `json:"token"`
	// HeartbeatSec is the heartbeat interval the coordinator expects
	// (comfortably under the lease TTL).
	HeartbeatSec float64 `json:"heartbeat_sec"`
	// LongPollSec is the longest the coordinator will park a lease
	// request; workers should ask for this much.
	LongPollSec float64 `json:"long_poll_sec"`
	// TTLSec is the lease TTL, for sizing client-side timeouts.
	TTLSec float64 `json:"ttl_sec"`
}

// LeaseRequest is a worker's (long-polling) request for work.
type LeaseRequest struct {
	// Worker is the self-reported name (logs only; identity travels in
	// the bearer token).
	Worker string `json:"worker"`
	// WaitSec asks the coordinator to park the request for up to this
	// many seconds when no work is pending (capped by Config.LongPoll).
	// Zero means answer immediately.
	WaitSec float64 `json:"wait_sec,omitempty"`
}

// LeaseResponse is the answer to a lease request: work, or a drain
// directive. (No work before the wait deadline is 204, no body.)
type LeaseResponse struct {
	Lease *Lease `json:"lease,omitempty"`
	// Drain tells the worker to stop asking: finish anything in flight,
	// deregister and exit.
	Drain bool `json:"drain,omitempty"`
}

// Lease is one unit of handed-out work: a contiguous point range of one
// job's sweep plan.
type Lease struct {
	ID   string     `json:"id"`
	Job  string     `json:"job"`
	Spec sweep.Spec `json:"spec"`
	// Points lists the leased plan point indexes (contiguous, ascending).
	Points []int `json:"points"`
	// Fingerprint is the coordinator's plan fingerprint; the worker
	// refuses the lease if its locally-built plan disagrees.
	Fingerprint string `json:"fingerprint"`
	// PoolSize/PoolSeed pin the waveform pool identity for pooled specs;
	// zero for pool-less sweeps.
	PoolSize int   `json:"pool_size,omitempty"`
	PoolSeed int64 `json:"pool_seed,omitempty"`
	// TTLSec is the lease deadline: the worker must heartbeat (or finish)
	// within this many seconds or the points are re-issued.
	TTLSec float64 `json:"ttl_sec"`
}

// LeaseResult reports a finished or failed lease. Points carries one
// complete per-point tally per leased point (sweep.PointTally); Error
// marks the whole lease failed.
type LeaseResult struct {
	Lease       string             `json:"lease"`
	Job         string             `json:"job"`
	Worker      string             `json:"worker"`
	Fingerprint string             `json:"fingerprint"`
	Points      []sweep.PointTally `json:"points,omitempty"`
	Error       string             `json:"error,omitempty"`
}

// Heartbeat re-arms a running lease's deadline and reports progress.
type Heartbeat struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
	// DonePackets is the worker's packet count completed within this
	// lease so far. Besides progress reporting, it feeds the
	// coordinator's per-point latency estimate for adaptive lease sizing.
	DonePackets int64 `json:"done_packets"`
}

// HeartbeatResponse acknowledges a heartbeat and piggy-backs fleet
// directives on it.
type HeartbeatResponse struct {
	Status string `json:"status"`
	// Drain tells the worker to finish this lease, take no new ones,
	// deregister and exit.
	Drain bool `json:"drain,omitempty"`
}

// WorkerInfo is one registered worker as reported by GET
// /v1/dist/workers.
type WorkerInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"` // "active", "draining" or "revoked"
	// Leases is the number of currently live leases.
	Leases int `json:"leases"`
	// Granted counts every lease ever granted to this worker.
	Granted int64 `json:"granted"`
	// AgeSec is the time since registration; IdleSec the time since the
	// worker was last heard from.
	AgeSec  float64 `json:"age_sec"`
	IdleSec float64 `json:"idle_sec"`
	// LastProgressSec is the time since the freshest of the worker's live
	// leases last advanced its heartbeat packet count (the lease grant
	// counts as progress), or −1 when the worker holds no live lease. A
	// worker that heartbeats dutifully while this grows is wedged — the
	// failure mode the supervisor's stuck-lease detector keys on.
	LastProgressSec float64 `json:"last_progress_sec"`
}

// AnnotateRequest (POST /v1/dist/annotate, join-secret auth) injects a
// control-plane annotation into the fleet event stream. Only
// "supervisor-" prefixed types are accepted: the supervisor uses it to
// surface spawns, quarantines and stuck-lease actions next to the
// coordinator's own lifecycle events, where stream consumers already
// look.
type AnnotateRequest struct {
	Type   string `json:"type"`
	Worker string `json:"worker,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// FleetEvent is one entry of the fleet-wide event stream (GET
// /v1/dist/events): worker lifecycle, lease lifecycle and job
// milestones, sequenced for Last-Event-ID resume.
type FleetEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // worker-join|worker-drain|worker-revoke|worker-leave|lease-grant|lease-expire|lease-cancel|job-submit|job-done|job-failed|supervisor-*
	// Worker is the assigned worker id (worker and lease events).
	Worker string `json:"worker,omitempty"`
	Job    string `json:"job,omitempty"`
	Lease  string `json:"lease,omitempty"`
	// Points is the point count a lease event covers.
	Points int `json:"points,omitempty"`
	// Detail is a human-oriented annotation (names, reasons).
	Detail string `json:"detail,omitempty"`
}
