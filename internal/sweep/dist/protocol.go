// Package dist is the distributed sweep tier: a coordinator that
// decomposes sweep.Specs into point-range leases and hands them to
// remote workers over HTTP, and a worker that wraps a local sweep.Engine
// and executes leases against it.
//
// # Determinism contract
//
// A coordinator plus any number of workers produces a byte-identical
// table to one direct in-process engine for the same spec and seed. The
// contract rests on three established properties: every packet derives
// its RNG from (point seed, packet index), so any executor of a point
// range tallies identically; pooled sweeps pin the waveform pool's
// (size, seed) identity, which the lease carries so every worker builds
// the same pool; and leases name plan points by index against the
// normalised spec, with a plan fingerprint (experiments.SweepPlan
// Fingerprint) that both sides must agree on before any tallies merge —
// version skew between binaries is refused, not silently blended.
//
// # Lease lifecycle
//
// A worker polls POST /v1/dist/lease and receives a Lease: a job id, the
// normalised spec, a contiguous range of plan point indexes, the plan
// fingerprint, the pool identity for pooled specs, and a TTL. The
// coordinator marks those points leased until time.Now()+TTL. While
// running, the worker POSTs /v1/dist/heartbeat at a fraction of the TTL;
// each accepted heartbeat re-arms the deadline (and reports packet-level
// progress for dashboards). A lease whose deadline passes — worker
// crash, network partition, kill -9 — is reaped at the next lease poll
// and its points return to the pending queue for re-issue; a heartbeat
// or result arriving after re-issue is answered with 410 Gone
// (heartbeat) or merged idempotently (result: a point's tallies are
// deterministic, so whichever copy lands first wins and the second is
// ignored). A worker that hits a real execution error reports it in
// LeaseResult.Error; if its lease is still live the job fails — the
// error is deterministic and would recur on any worker — while an error
// from an already-expired lease is dropped.
//
// # Authentication
//
// When the coordinator is configured with a bearer token, every
// /v1/dist/ request must carry "Authorization: Bearer <token>";
// anything else is 401. Workers take the same token via their config.
// The token authenticates the compute tier; the separate client API
// (cmd/cprecycle-bench -coordinator) can be guarded by the same token.
//
// # Durability
//
// With Config.JournalDir set, every job appends to
// <dir>/<jobID>.jsonl in the sweep journal format (header line with the
// normalised spec, point count and pool identity; one line per completed
// point, torn tails tolerated, duplicate point lines last-wins). A
// coordinator restarted over the same directory replays the journals and
// resumes every job at its first unleased point — completed points are
// never recomputed, in-flight leases from the previous life simply
// expire and re-issue.
package dist

import "repro/internal/sweep"

// Wire types of the worker tier. All endpoints live under /v1/dist/ on
// the coordinator:
//
//	POST /v1/dist/lease      LeaseRequest → 200 Lease, or 204 when no work
//	POST /v1/dist/result     LeaseResult  → 200 (idempotent)
//	POST /v1/dist/heartbeat  Heartbeat    → 200, or 410 when the lease was re-issued

// LeaseRequest is a worker's poll for work.
type LeaseRequest struct {
	// Worker identifies the polling worker (stable per process; shows up
	// in logs and lease bookkeeping).
	Worker string `json:"worker"`
}

// Lease is one unit of handed-out work: a contiguous point range of one
// job's sweep plan.
type Lease struct {
	ID   string     `json:"id"`
	Job  string     `json:"job"`
	Spec sweep.Spec `json:"spec"`
	// Points lists the leased plan point indexes (contiguous, ascending).
	Points []int `json:"points"`
	// Fingerprint is the coordinator's plan fingerprint; the worker
	// refuses the lease if its locally-built plan disagrees.
	Fingerprint string `json:"fingerprint"`
	// PoolSize/PoolSeed pin the waveform pool identity for pooled specs;
	// zero for pool-less sweeps.
	PoolSize int   `json:"pool_size,omitempty"`
	PoolSeed int64 `json:"pool_seed,omitempty"`
	// TTLSec is the lease deadline: the worker must heartbeat (or finish)
	// within this many seconds or the points are re-issued.
	TTLSec float64 `json:"ttl_sec"`
}

// LeaseResult reports a finished or failed lease. Points carries one
// complete per-point tally per leased point (sweep.JournalPoint, exactly
// the journal line shape); Error marks the whole lease failed.
type LeaseResult struct {
	Lease       string               `json:"lease"`
	Job         string               `json:"job"`
	Worker      string               `json:"worker"`
	Fingerprint string               `json:"fingerprint"`
	Points      []sweep.JournalPoint `json:"points,omitempty"`
	Error       string               `json:"error,omitempty"`
}

// Heartbeat re-arms a running lease's deadline and reports progress.
type Heartbeat struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
	// DonePackets is the worker's packet count completed within this
	// lease so far (progress reporting only; tallies travel in the
	// result).
	DonePackets int64 `json:"done_packets"`
}
