package dist

import (
	"os"
	"runtime/metrics"
	"strconv"
	"strings"
)

// processCPUSeconds returns the cumulative CPU time this process has
// consumed, in seconds, across all threads — the quantity the
// -cpu-budget watchdog differences into a rate. Two sources, tried in
// order:
//
//   - /proc/self/stat (Linux): utime + stime in clock ticks, i.e. real
//     user+system CPU as the kernel accounts it, including cgo and
//     syscall time. The tick rate is USER_HZ, fixed at 100 by the Linux
//     ABI for everything exported via /proc (sysconf(_SC_CLK_TCK) — the
//     kernel's internal HZ differs but is rescaled before export), so no
//     cgo is needed to read it.
//   - runtime/metrics /cpu/classes/{user,gc/total}:cpu-seconds
//     (everywhere else): the Go scheduler's own accounting. It misses
//     time spent in cgo or blocked syscalls, but for a pure-Go worker it
//     tracks the kernel's number closely.
//
// ok=false means neither source is usable and the watchdog disarms.
func processCPUSeconds() (float64, bool) {
	if sec, ok := procStatCPUSeconds(); ok {
		return sec, true
	}
	return runtimeCPUSeconds()
}

// userHZ is the /proc clock-tick unit (see processCPUSeconds).
const userHZ = 100

// procStatCPUSeconds parses utime+stime out of /proc/self/stat.
func procStatCPUSeconds() (float64, bool) {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, false
	}
	// Field 2 (comm) is a parenthesised process name that may itself
	// contain spaces and parentheses; everything after the LAST ')' is
	// space-separated. In that remainder utime and stime are fields 12
	// and 13 (1-indexed; fields 14 and 15 of the whole line).
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0, false
	}
	fields := strings.Fields(s[i+1:])
	if len(fields) < 13 {
		return 0, false
	}
	utime, err1 := strconv.ParseUint(fields[11], 10, 64)
	stime, err2 := strconv.ParseUint(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	return float64(utime+stime) / userHZ, true
}

// runtimeCPUSeconds sums the Go runtime's user and GC CPU accounting.
func runtimeCPUSeconds() (float64, bool) {
	samples := []metrics.Sample{
		{Name: "/cpu/classes/user:cpu-seconds"},
		{Name: "/cpu/classes/gc/total:cpu-seconds"},
	}
	metrics.Read(samples)
	total := 0.0
	any := false
	for _, s := range samples {
		if s.Value.Kind() == metrics.KindFloat64 {
			total += s.Value.Float64()
			any = true
		}
	}
	return total, any
}
