package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweep"
)

// WorkerConfig parameterises a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:8080").
	Coordinator string
	// Token is the bearer token the coordinator requires (may be empty
	// for unauthenticated coordinators).
	Token string
	// ID names this worker in leases and logs (default "host:pid").
	ID string
	// Engine configures the local execution engine. Workers and
	// ShardPackets are honoured; PoolSize and PoolSeed are overridden per
	// lease so the worker's waveform pool always matches the
	// coordinator's pool identity.
	Engine sweep.Config
	// Poll is the idle delay between lease polls when the coordinator has
	// no work (default 500ms).
	Poll time.Duration
	// Heartbeat is the interval between lease heartbeats while a lease
	// runs (default 5s; must be comfortably under the coordinator's
	// LeaseTTL).
	Heartbeat time.Duration
	// HTTPClient overrides the default client (tests inject the
	// httptest transport; production tunes timeouts).
	HTTPClient *http.Client
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() (WorkerConfig, error) {
	if c.Coordinator == "" {
		return c, fmt.Errorf("dist: worker needs a coordinator URL")
	}
	c.Coordinator = strings.TrimRight(c.Coordinator, "/")
	if c.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Worker polls a coordinator for point-range leases and executes them on
// a local sweep.Engine. Its waveform pool is rebuilt whenever a lease
// names a different pool identity, so pooled tallies are always drawn
// from the exact pool the coordinator journalled. Start with StartWorker,
// stop with Close; a closed worker abandons its in-flight lease (no
// result is sent) and the coordinator re-issues it after the lease TTL —
// the crash-equivalent path the protocol is built around.
type Worker struct {
	cfg    WorkerConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	leases atomic.Int64

	mu      sync.Mutex
	engine  *sweep.Engine
	poolKey [2]int64 // (size, seed) identity of engine's pool
}

// StartWorker validates cfg and starts the polling loop.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{cfg: cfg, ctx: ctx, cancel: cancel}
	w.wg.Add(1)
	go w.loop()
	return w, nil
}

// Leases reports how many leases this worker has been granted (test and
// monitoring hook).
func (w *Worker) Leases() int64 { return w.leases.Load() }

// Close stops the polling loop, cancels any in-flight lease and shuts
// down the local engine.
func (w *Worker) Close() {
	w.cancel()
	w.wg.Wait()
	w.mu.Lock()
	if w.engine != nil {
		w.engine.Close()
		w.engine = nil
	}
	w.mu.Unlock()
}

func (w *Worker) loop() {
	defer w.wg.Done()
	for w.ctx.Err() == nil {
		lease, err := w.requestLease()
		if err != nil {
			w.cfg.Logf("dist: worker %s: lease poll: %v", w.cfg.ID, err)
		}
		if lease == nil {
			select {
			case <-w.ctx.Done():
				return
			case <-time.After(w.cfg.Poll):
			}
			continue
		}
		w.leases.Add(1)
		w.runLease(lease)
	}
}

// engineFor returns the local engine, rebuilding it when the lease's
// pool identity differs from the current engine's.
func (w *Worker) engineFor(l *Lease) *sweep.Engine {
	key := [2]int64{int64(l.PoolSize), l.PoolSeed}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.engine != nil && w.poolKey != key {
		w.engine.Close()
		w.engine = nil
	}
	if w.engine == nil {
		cfg := w.cfg.Engine
		cfg.PoolSize = l.PoolSize
		cfg.PoolSeed = l.PoolSeed
		w.engine = sweep.New(cfg)
		w.poolKey = key
	}
	return w.engine
}

// runLease executes one lease to completion (or abandonment) and reports
// the result.
func (w *Worker) runLease(l *Lease) {
	eng := w.engineFor(l)
	job, err := eng.SubmitPoints(w.ctx, l.Spec, l.Points)
	if err != nil {
		w.report(&LeaseResult{Lease: l.ID, Job: l.Job, Worker: w.cfg.ID, Fingerprint: l.Fingerprint,
			Error: fmt.Sprintf("submit: %v", err)})
		return
	}
	if fp := job.Plan().Fingerprint(); fp != l.Fingerprint {
		job.Cancel()
		w.report(&LeaseResult{Lease: l.ID, Job: l.Job, Worker: w.cfg.ID, Fingerprint: fp,
			Error: fmt.Sprintf("plan fingerprint %s does not match lease %s (coordinator/worker version skew?)", fp, l.Fingerprint)})
		return
	}

	// Heartbeat until the job settles; a revoked lease (410) cancels the
	// local job — the coordinator has already re-issued its points.
	hbDone := make(chan struct{})
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-w.ctx.Done():
				return
			case <-t.C:
				ok, err := w.heartbeat(Heartbeat{Lease: l.ID, Worker: w.cfg.ID, DonePackets: job.Progress().DonePackets})
				if err != nil {
					w.cfg.Logf("dist: worker %s: heartbeat %s: %v", w.cfg.ID, l.ID, err)
					continue
				}
				if !ok {
					w.cfg.Logf("dist: worker %s: lease %s revoked, abandoning", w.cfg.ID, l.ID)
					job.Cancel()
					return
				}
			}
		}
	}()
	res, err := job.Wait(w.ctx)
	close(hbDone)
	if err != nil {
		if w.ctx.Err() != nil || err == context.Canceled {
			// Worker shutdown or lease revocation: abandon silently; the
			// lease TTL (or the revocation that caused this) handles
			// re-issue.
			return
		}
		w.report(&LeaseResult{Lease: l.ID, Job: l.Job, Worker: w.cfg.ID, Fingerprint: l.Fingerprint,
			Error: err.Error()})
		return
	}
	out := &LeaseResult{Lease: l.ID, Job: l.Job, Worker: w.cfg.ID, Fingerprint: l.Fingerprint}
	for _, i := range l.Points {
		pts := res.Points[i]
		jp := sweep.JournalPoint{Point: i, N: pts[0].N, OK: make([]int, len(pts))}
		for a := range pts {
			jp.OK[a] = pts[a].OK
		}
		out.Points = append(out.Points, jp)
	}
	w.report(out)
}

// report POSTs a lease result, retrying transient failures a few times;
// a result that cannot be delivered is dropped and the lease TTL
// re-issues the work.
func (w *Worker) report(res *LeaseResult) {
	for attempt := 0; ; attempt++ {
		status, err := w.post("/v1/dist/result", res, nil)
		if err == nil && status < 500 {
			if status >= 400 {
				w.cfg.Logf("dist: worker %s: result %s rejected with %d", w.cfg.ID, res.Lease, status)
			}
			return
		}
		if attempt >= 3 || w.ctx.Err() != nil {
			w.cfg.Logf("dist: worker %s: dropping result %s after %d attempts (err=%v status=%d)",
				w.cfg.ID, res.Lease, attempt+1, err, status)
			return
		}
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(w.cfg.Poll):
		}
	}
}

// requestLease polls for work; nil means the coordinator has none.
func (w *Worker) requestLease() (*Lease, error) {
	var l Lease
	status, err := w.post("/v1/dist/lease", LeaseRequest{Worker: w.cfg.ID}, &l)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &l, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("lease poll: HTTP %d", status)
	}
}

// heartbeat reports progress; ok=false means the lease was revoked.
func (w *Worker) heartbeat(hb Heartbeat) (ok bool, err error) {
	status, err := w.post("/v1/dist/heartbeat", hb, nil)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusOK:
		return true, nil
	case http.StatusGone:
		return false, nil
	default:
		return false, fmt.Errorf("heartbeat: HTTP %d", status)
	}
}

// post sends one JSON request to the coordinator and decodes the
// response into out when the status is 200 and out is non-nil.
func (w *Worker) post(path string, body, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(w.ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	resp, err := w.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
