package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime/metrics"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweep"
)

// WorkerConfig parameterises a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:8080").
	Coordinator string
	// Token is the fleet join secret presented at registration (may be
	// empty for unauthenticated coordinators). Data-plane calls use the
	// per-worker token minted in exchange.
	Token string
	// ID is the self-reported worker name, used in logs and fleet events
	// alongside the coordinator-assigned id (default "host:pid").
	ID string
	// Engine configures the local execution engine. Workers and
	// ShardPackets are honoured; PoolSize and PoolSeed are overridden per
	// lease so the worker's waveform pool always matches the
	// coordinator's pool identity.
	Engine sweep.Config
	// Heartbeat overrides the coordinator-advertised heartbeat interval
	// (tests; zero uses the advertised value).
	Heartbeat time.Duration
	// LongPoll overrides the coordinator-advertised long-poll bound the
	// worker asks for on each lease request (tests; zero uses the
	// advertised value).
	LongPoll time.Duration
	// RetryBase/RetryMax bound the jittered exponential backoff applied
	// to failed coordinator calls (defaults 200ms and 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// MemBudget, when positive, is a self-imposed heap ceiling in bytes:
	// the worker samples runtime/metrics heap usage and triggers its own
	// graceful drain (finish the in-flight lease, report it, deregister)
	// the first time live heap objects exceed the budget. Zero disables
	// the watchdog.
	MemBudget int64
	// MemCheckEvery is the heap sampling interval for MemBudget
	// (default 2s; tests shorten it).
	MemCheckEvery time.Duration
	// CPUBudget, when positive, is a self-imposed CPU ceiling in cores —
	// the -mem-budget twin. The worker samples its cumulative process CPU
	// time (from /proc/self/stat where available, falling back to
	// runtime/metrics CPU classes) every CPUCheckEvery, and triggers the
	// same graceful drain as MemBudget once the measured rate stays over
	// budget for CPUSustain consecutive samples. Sustained, not
	// instantaneous: a single busy sampling window (a lease warming its
	// waveform pool, a GC burst) must not cost the fleet a worker. Zero
	// disables the watchdog.
	CPUBudget float64
	// CPUCheckEvery is the CPU sampling interval for CPUBudget (default
	// 2s; tests shorten it).
	CPUCheckEvery time.Duration
	// CPUSustain is how many consecutive over-budget samples trigger the
	// drain (default 3).
	CPUSustain int
	// CPUSample overrides the cumulative process-CPU-seconds source
	// (tests inject a deterministic ramp; nil uses the real process
	// clock).
	CPUSample func() (seconds float64, ok bool)
	// HTTPClient overrides the default client (tests inject the
	// httptest transport or a chaos RoundTripper; production tunes
	// timeouts). Client-level timeouts should exceed the long-poll
	// bound; per-request deadlines are set via contexts.
	HTTPClient *http.Client
	// Log receives structured operational logs with component/worker/
	// lease attrs. Nil discards them.
	Log *slog.Logger
}

func (c WorkerConfig) withDefaults() (WorkerConfig, error) {
	if c.Coordinator == "" {
		return c, fmt.Errorf("dist: worker needs a coordinator URL")
	}
	c.Coordinator = strings.TrimRight(c.Coordinator, "/")
	if c.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.HTTPClient == nil {
		// No client-level timeout: lease requests legitimately park for
		// the long-poll bound. Per-request contexts carry the deadlines.
		c.HTTPClient = &http.Client{}
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	if c.MemCheckEvery <= 0 {
		c.MemCheckEvery = 2 * time.Second
	}
	if c.CPUCheckEvery <= 0 {
		c.CPUCheckEvery = 2 * time.Second
	}
	if c.CPUSustain <= 0 {
		c.CPUSustain = 3
	}
	return c, nil
}

// errRevoked marks a 403 from the coordinator: this worker's token was
// revoked and it must terminate.
var errRevoked = errors.New("dist: worker revoked by coordinator")

// Worker registers with a coordinator, long-polls it for point-range
// leases and executes them on a local sweep.Engine. Its waveform pool is
// rebuilt whenever a lease names a different pool identity, so pooled
// tallies are always drawn from the exact pool the coordinator
// journalled. Every coordinator call retries transient transport
// failures with capped, jittered exponential backoff; a 401 triggers
// transparent re-registration (a restarted coordinator loses its
// registry), and a 403 — revocation — terminates the worker.
//
// Start with StartWorker. Drain stops it gracefully: the in-flight lease
// finishes and is reported, no new leases are taken, the worker
// deregisters (re-queuing nothing) and Done closes. Close is the hard
// stop: the in-flight lease is abandoned without a result and the
// coordinator re-issues it at TTL expiry — the crash-equivalent path the
// protocol is built around.
type Worker struct {
	cfg    WorkerConfig
	log    *slog.Logger
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	doneCh chan struct{}

	leases  atomic.Int64
	polls   atomic.Int64
	retries atomic.Int64 // backoff sleeps taken (failed coordinator calls)
	reregs  atomic.Int64 // transparent re-registrations after a 401
	results atomic.Int64 // lease results delivered
	drain   atomic.Bool
	cpuRate atomic.Uint64 // math.Float64bits of the last CPU rate sample (cores)
	// curLease holds a curLease naming the lease executing right now
	// (zero value when idle) — surfaced by Stats for /v1/status.
	curLease atomic.Value

	// pollCancel interrupts a parked long-poll so a drain takes effect
	// immediately instead of after the poll deadline.
	pollMu     sync.Mutex
	pollCancel context.CancelFunc

	// Registered identity; zero until the first successful registration,
	// cleared on 401 to force a re-register.
	authMu     sync.Mutex
	workerID   string
	token      string
	advHB      time.Duration
	advPoll    time.Duration
	registered bool

	mu      sync.Mutex
	engine  *sweep.Engine
	poolKey [2]int64 // (size, seed) identity of engine's pool
}

// StartWorker validates cfg and starts the lease loop (registration
// happens in-loop, with backoff, so a worker may start before its
// coordinator is up).
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		cfg:    cfg,
		log:    cfg.Log.With("component", "worker", "name", cfg.ID),
		ctx:    ctx,
		cancel: cancel,
		doneCh: make(chan struct{}),
	}
	w.wg.Add(1)
	go w.loop()
	if cfg.MemBudget > 0 {
		w.wg.Add(1)
		go w.memWatch()
	}
	if cfg.CPUBudget > 0 {
		w.wg.Add(1)
		go w.cpuWatch()
	}
	return w, nil
}

// memWatch enforces WorkerConfig.MemBudget: it samples live heap bytes
// from runtime/metrics every MemCheckEvery and triggers the ordinary
// graceful drain the first time the budget is exceeded. Draining (not
// dying) means the in-flight lease still completes and is reported; the
// fleet simply loses this worker's capacity before the kernel's OOM
// killer takes it uncleanly.
func (w *Worker) memWatch() {
	defer w.wg.Done()
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	t := time.NewTicker(w.cfg.MemCheckEvery)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
			if w.drain.Load() {
				return
			}
			metrics.Read(sample)
			if sample[0].Value.Kind() != metrics.KindUint64 {
				return // metric vanished from the runtime; nothing to enforce
			}
			heap := sample[0].Value.Uint64()
			if heap > uint64(w.cfg.MemBudget) {
				w.log.Warn("heap budget exceeded, self-draining",
					"heap_bytes", heap, "budget_bytes", w.cfg.MemBudget)
				w.Drain()
				return
			}
		}
	}
}

// curLease is the value stored in Worker.curLease while a lease runs.
type curLease struct{ lease, job string }

// cpuWatch enforces WorkerConfig.CPUBudget: it differences cumulative
// process CPU seconds across CPUCheckEvery windows into a rate in cores,
// and triggers the same graceful drain as memWatch once the rate has
// stayed over budget for CPUSustain consecutive windows. Like the heap
// watchdog, draining (not dying) lets the in-flight lease complete and
// report before the worker leaves the fleet — capacity is shed before a
// cgroup throttler or a co-tenant starves everything on the box.
func (w *Worker) cpuWatch() {
	defer w.wg.Done()
	sample := w.cfg.CPUSample
	if sample == nil {
		sample = processCPUSeconds
	}
	last, ok := sample()
	if !ok {
		w.log.Warn("no process CPU source; -cpu-budget watchdog disabled")
		return
	}
	lastAt := time.Now()
	over := 0
	t := time.NewTicker(w.cfg.CPUCheckEvery)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
			if w.drain.Load() {
				return
			}
			cur, ok := sample()
			if !ok {
				return // CPU source vanished; nothing to enforce
			}
			now := time.Now()
			window := now.Sub(lastAt).Seconds()
			if window <= 0 {
				continue
			}
			rate := (cur - last) / window
			last, lastAt = cur, now
			w.cpuRate.Store(math.Float64bits(rate))
			if rate > w.cfg.CPUBudget {
				over++
			} else {
				over = 0
			}
			if over >= w.cfg.CPUSustain {
				w.log.Warn("cpu budget exceeded, self-draining",
					"cpu_cores", rate, "budget_cores", w.cfg.CPUBudget, "sustained_samples", over)
				w.Drain()
				return
			}
		}
	}
}

// Leases reports how many leases this worker has been granted (test and
// monitoring hook).
func (w *Worker) Leases() int64 { return w.leases.Load() }

// Polls reports how many lease requests the worker has issued — the
// no-idle-polling pin: an idle long-polling worker issues a handful of
// these per long-poll period, not one per fixed interval.
func (w *Worker) Polls() int64 { return w.polls.Load() }

// WorkerID returns the coordinator-assigned id ("w3"; empty before the
// first successful registration).
func (w *Worker) WorkerID() string {
	w.authMu.Lock()
	defer w.authMu.Unlock()
	return w.workerID
}

// Done closes when the worker's loop has exited — after deregistration
// on a drain, immediately on a hard Close or revocation.
func (w *Worker) Done() <-chan struct{} { return w.doneCh }

// Draining reports whether a drain has been requested.
func (w *Worker) Draining() bool { return w.drain.Load() }

// Drain begins a graceful shutdown: the in-flight lease (if any) runs to
// completion and is reported, no new leases are taken, and the worker
// deregisters and stops (Done closes). Safe to call repeatedly and from
// signal handlers.
func (w *Worker) Drain() {
	if w.drain.Swap(true) {
		return
	}
	w.log.Info("draining")
	// Unpark a waiting long-poll so the drain is immediate.
	w.pollMu.Lock()
	if w.pollCancel != nil {
		w.pollCancel()
	}
	w.pollMu.Unlock()
}

// Close hard-stops the worker: the lease loop ends, any in-flight lease
// is cancelled without a result (the coordinator re-issues it at TTL
// expiry) and the local engine shuts down.
func (w *Worker) Close() {
	w.cancel()
	w.wg.Wait()
	w.mu.Lock()
	if w.engine != nil {
		w.engine.Close()
		w.engine = nil
	}
	w.mu.Unlock()
}

// loop is the worker's life: register (lazily), long-poll for leases,
// run them, drain or die.
func (w *Worker) loop() {
	defer close(w.doneCh)
	defer w.wg.Done()
	attempt := 0
	for w.ctx.Err() == nil && !w.drain.Load() {
		lease, drain, err := w.requestLease()
		switch {
		case err != nil:
			if errors.Is(err, errRevoked) {
				w.log.Warn("revoked, terminating")
				return
			}
			if w.ctx.Err() == nil && !w.drain.Load() {
				w.log.Warn("lease request failed", "err", err)
				w.backoff(&attempt)
			}
		case drain:
			w.log.Info("coordinator requested drain")
			w.drain.Store(true)
		case lease != nil:
			attempt = 0
			w.leases.Add(1)
			w.runLease(lease)
		default:
			// 204: the long poll timed out with no work — ask again
			// immediately; the coordinator parks us, we don't spin.
			attempt = 0
		}
	}
	if w.drain.Load() && w.ctx.Err() == nil {
		w.deregister()
	}
}

// backoff sleeps for a capped, jittered exponential delay:
// d = RetryBase·2^attempt capped at RetryMax, slept in [d/2, d).
func (w *Worker) backoff(attempt *int) {
	d := w.cfg.RetryBase << *attempt
	if d > w.cfg.RetryMax || d <= 0 {
		d = w.cfg.RetryMax
	} else {
		*attempt++
	}
	w.retries.Add(1)
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	select {
	case <-w.ctx.Done():
	case <-time.After(d):
	}
}

// ---- registration ----

// register exchanges the join secret for this worker's identity and
// token, retrying with backoff until it succeeds, the worker stops, or
// the coordinator rejects the join secret outright.
func (w *Worker) register(ctx context.Context) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := w.ctx.Err(); err != nil {
			return err
		}
		var resp RegisterResponse
		status, err := w.rawPost(ctx, "/v1/dist/register", "Bearer "+w.cfg.Token, RegisterRequest{Worker: w.cfg.ID}, &resp)
		if err == nil && status == http.StatusOK {
			w.authMu.Lock()
			w.workerID = resp.Worker
			w.token = resp.Token
			w.advHB = time.Duration(resp.HeartbeatSec * float64(time.Second))
			w.advPoll = time.Duration(resp.LongPollSec * float64(time.Second))
			w.registered = true
			w.authMu.Unlock()
			w.log.Info("registered", "worker", resp.Worker, "heartbeat", w.advHB, "long_poll", w.advPoll)
			return nil
		}
		if err == nil && (status == http.StatusUnauthorized || status == http.StatusForbidden) {
			// The join secret itself was rejected: permanent misconfig.
			return fmt.Errorf("dist: registration rejected with HTTP %d (bad join secret?)", status)
		}
		if ctx.Err() != nil {
			return ctx.Err() // the caller's deadline or a drain unpark, not a coordinator fault
		}
		w.log.Warn("registration failed, retrying", "err", err, "status", status)
		w.backoff(&attempt)
	}
}

// bearer returns the current data-plane token, registering first if
// needed.
func (w *Worker) bearer(ctx context.Context) (string, error) {
	w.authMu.Lock()
	tok, ok := w.token, w.registered
	w.authMu.Unlock()
	if ok {
		return "Bearer " + tok, nil
	}
	if err := w.register(ctx); err != nil {
		return "", err
	}
	w.authMu.Lock()
	tok = w.token
	w.authMu.Unlock()
	return "Bearer " + tok, nil
}

// forgetRegistration clears the worker identity after a 401 so the next
// call re-registers (the coordinator restarted and lost its registry).
func (w *Worker) forgetRegistration() {
	w.authMu.Lock()
	w.registered = false
	w.token = ""
	w.authMu.Unlock()
}

// heartbeatInterval returns the effective heartbeat cadence (config
// override, else advertised, else 5s).
func (w *Worker) heartbeatInterval() time.Duration {
	if w.cfg.Heartbeat > 0 {
		return w.cfg.Heartbeat
	}
	w.authMu.Lock()
	defer w.authMu.Unlock()
	if w.advHB > 0 {
		return w.advHB
	}
	return 5 * time.Second
}

// longPoll returns the effective lease-request park bound (config
// override, else advertised, else 30s).
func (w *Worker) longPoll() time.Duration {
	if w.cfg.LongPoll > 0 {
		return w.cfg.LongPoll
	}
	w.authMu.Lock()
	defer w.authMu.Unlock()
	if w.advPoll > 0 {
		return w.advPoll
	}
	return 30 * time.Second
}

// ---- lease execution ----

// engineFor returns the local engine, rebuilding it when the lease's
// pool identity differs from the current engine's.
func (w *Worker) engineFor(l *Lease) *sweep.Engine {
	key := [2]int64{int64(l.PoolSize), l.PoolSeed}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.engine != nil && w.poolKey != key {
		w.engine.Close()
		w.engine = nil
	}
	if w.engine == nil {
		cfg := w.cfg.Engine
		cfg.PoolSize = l.PoolSize
		cfg.PoolSeed = l.PoolSeed
		w.engine = sweep.New(cfg)
		w.poolKey = key
	}
	return w.engine
}

// runLease executes one lease to completion (or abandonment) and reports
// the result.
func (w *Worker) runLease(l *Lease) {
	w.curLease.Store(curLease{lease: l.ID, job: l.Job})
	defer w.curLease.Store(curLease{})
	eng := w.engineFor(l)
	job, err := eng.SubmitPoints(w.ctx, l.Spec, l.Points)
	if err != nil {
		w.report(&LeaseResult{Lease: l.ID, Job: l.Job, Worker: w.cfg.ID, Fingerprint: l.Fingerprint,
			Error: fmt.Sprintf("submit: %v", err)})
		return
	}
	if fp := job.Plan().Fingerprint(); fp != l.Fingerprint {
		job.Cancel()
		w.report(&LeaseResult{Lease: l.ID, Job: l.Job, Worker: w.cfg.ID, Fingerprint: fp,
			Error: fmt.Sprintf("plan fingerprint %s does not match lease %s (coordinator/worker version skew?)", fp, l.Fingerprint)})
		return
	}

	// Heartbeat until the job settles. A 410 (lease re-issued) cancels
	// the local job; a 403 (revoked) cancels it and terminates the
	// worker; a drain directive piggy-backed on the response lets the
	// lease finish and stops the loop afterwards.
	hbDone := make(chan struct{})
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.heartbeatInterval())
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-w.ctx.Done():
				return
			case <-t.C:
				resp, status, err := w.heartbeat(Heartbeat{Lease: l.ID, Worker: w.cfg.ID, DonePackets: job.Progress().DonePackets})
				switch {
				case errors.Is(err, errRevoked):
					w.log.Warn("revoked mid-lease, abandoning", "lease", l.ID, "job", l.Job)
					job.Cancel()
					w.drain.Store(true) // loop exits; deregister will 403 and be dropped
					w.cancel()
					return
				case err != nil:
					// Transient: the next tick is the retry; the lease TTL
					// is several heartbeats deep, so occasional misses are
					// harmless.
					w.log.Warn("heartbeat failed", "lease", l.ID, "err", err)
				case status == http.StatusGone:
					w.log.Warn("lease re-issued elsewhere, abandoning", "lease", l.ID, "job", l.Job)
					job.Cancel()
					return
				case resp.Drain && !w.drain.Load():
					w.log.Info("drain requested mid-lease, finishing first", "lease", l.ID, "job", l.Job)
					w.drain.Store(true)
				}
			}
		}
	}()
	res, err := job.Wait(w.ctx)
	close(hbDone)
	if err != nil {
		if w.ctx.Err() != nil || err == context.Canceled {
			// Worker shutdown or lease re-issue/revocation: abandon
			// silently; re-issue (already done, or at TTL) covers it.
			return
		}
		w.report(&LeaseResult{Lease: l.ID, Job: l.Job, Worker: w.cfg.ID, Fingerprint: l.Fingerprint,
			Error: err.Error()})
		return
	}
	out := &LeaseResult{Lease: l.ID, Job: l.Job, Worker: w.cfg.ID, Fingerprint: l.Fingerprint}
	for _, i := range l.Points {
		pts := res.Points[i]
		jp := sweep.PointTally{Point: i, N: pts[0].N, OK: make([]int, len(pts))}
		for a := range pts {
			jp.OK[a] = pts[a].OK
		}
		out.Points = append(out.Points, jp)
	}
	w.report(out)
}

// report POSTs a lease result, retrying transient failures with backoff;
// a result that cannot be delivered is dropped and the lease TTL
// re-issues the work.
func (w *Worker) report(res *LeaseResult) {
	attempt := 0
	for tries := 0; ; tries++ {
		ctx, cancelReq := context.WithTimeout(w.ctx, 30*time.Second)
		status, err := w.authPost(ctx, "/v1/dist/result", res, nil)
		cancelReq()
		if errors.Is(err, errRevoked) {
			w.log.Warn("result refused: revoked", "lease", res.Lease)
			return
		}
		if err == nil && status < 500 {
			if status >= 400 {
				w.log.Warn("result rejected", "lease", res.Lease, "status", status)
			} else {
				w.results.Add(1)
			}
			return
		}
		if tries >= 6 || w.ctx.Err() != nil {
			w.log.Warn("dropping undeliverable result", "lease", res.Lease, "attempts", tries+1, "err", err, "status", status)
			return
		}
		w.backoff(&attempt)
	}
}

// requestLease long-polls for work. All three results zero means the
// poll deadline passed with no work (ask again).
func (w *Worker) requestLease() (l *Lease, drain bool, err error) {
	wait := w.longPoll()
	// The request context outlives the asked-for wait by a margin so a
	// healthy-but-busy coordinator isn't cut off mid-park, and it is
	// cancellable so Drain can unpark immediately.
	ctx, cancelPoll := context.WithTimeout(w.ctx, wait+15*time.Second)
	w.pollMu.Lock()
	w.pollCancel = cancelPoll
	w.pollMu.Unlock()
	defer func() {
		w.pollMu.Lock()
		w.pollCancel = nil
		w.pollMu.Unlock()
		cancelPoll()
	}()
	if w.drain.Load() {
		return nil, true, nil
	}
	w.polls.Add(1)
	var resp LeaseResponse
	status, err := w.authPost(ctx, "/v1/dist/lease", LeaseRequest{Worker: w.cfg.ID, WaitSec: wait.Seconds()}, &resp)
	if err != nil {
		if w.drain.Load() && w.ctx.Err() == nil {
			return nil, true, nil // Drain unparked the poll, not a real fault
		}
		return nil, false, err
	}
	switch status {
	case http.StatusOK:
		return resp.Lease, resp.Drain, nil
	case http.StatusNoContent:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("lease request: HTTP %d", status)
	}
}

// heartbeat reports progress and picks up piggy-backed directives.
func (w *Worker) heartbeat(hb Heartbeat) (resp HeartbeatResponse, status int, err error) {
	ctx, cancel := context.WithTimeout(w.ctx, 15*time.Second)
	defer cancel()
	status, err = w.authPost(ctx, "/v1/dist/heartbeat", hb, &resp)
	if err != nil {
		return resp, status, err
	}
	switch status {
	case http.StatusOK, http.StatusGone:
		return resp, status, nil
	default:
		return resp, status, fmt.Errorf("heartbeat: HTTP %d", status)
	}
}

// deregister tells the coordinator this worker is leaving (the drain
// endgame). Best-effort with a short retry: a missed deregister only
// costs the registry a stale entry that prunes itself.
func (w *Worker) deregister() {
	w.authMu.Lock()
	registered := w.registered
	id := w.workerID
	w.authMu.Unlock()
	if !registered {
		return
	}
	attempt := 0
	for tries := 0; tries < 3; tries++ {
		ctx, cancel := context.WithTimeout(w.ctx, 10*time.Second)
		status, err := w.authPost(ctx, "/v1/dist/deregister", struct{}{}, nil)
		cancel()
		if errors.Is(err, errRevoked) || (err == nil && status < 500) {
			w.log.Info("deregistered", "worker", id)
			return
		}
		w.backoff(&attempt)
	}
	w.log.Warn("deregister never reached the coordinator (registry will prune)")
}

// ---- HTTP plumbing ----

// authPost sends one data-plane call with the per-worker token,
// transparently re-registering once on 401 (coordinator restart) and
// mapping 403 to errRevoked.
func (w *Worker) authPost(ctx context.Context, path string, body, out any) (int, error) {
	auth, err := w.bearer(ctx)
	if err != nil {
		return 0, err
	}
	status, err := w.rawPost(ctx, path, auth, body, out)
	if err == nil && status == http.StatusUnauthorized {
		w.log.Warn("token unknown (coordinator restart?), re-registering")
		w.reregs.Add(1)
		w.forgetRegistration()
		if auth, err = w.bearer(ctx); err != nil {
			return 0, err
		}
		status, err = w.rawPost(ctx, path, auth, body, out)
	}
	if err == nil && status == http.StatusForbidden {
		return status, errRevoked
	}
	return status, err
}

// rawPost sends one JSON request and decodes 2xx responses into out
// (when non-nil).
func (w *Worker) rawPost(ctx context.Context, path, auth string, body, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if auth != "Bearer " { // bare prefix: no secret and no token to present
		req.Header.Set("Authorization", auth)
	}
	resp, err := w.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
