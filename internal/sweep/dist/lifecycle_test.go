package dist

// Lifecycle corner cases: drain during an in-flight lease, revocation
// mid-lease, a coordinator restart while a worker is draining, and a
// late result from an already-drained worker — plus the fleet event
// stream they are all observable on.

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweep"
)

// collectFleet subscribes to the fleet stream and returns a fetch
// function that yields every event seen so far.
func collectFleet(t *testing.T, c *Coordinator) func() []FleetEvent {
	t.Helper()
	past, ch, cancel := c.SubscribeFleet(-1)
	t.Cleanup(cancel)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	events := append([]FleetEvent(nil), past...)
	go func() {
		for ev := range ch {
			<-mu
			events = append(events, ev)
			mu <- struct{}{}
		}
	}()
	return func() []FleetEvent {
		<-mu
		out := append([]FleetEvent(nil), events...)
		mu <- struct{}{}
		return out
	}
}

// waitFleet blocks until an event of the given type (and, when non-empty,
// detail substring) has been seen.
func waitFleet(t *testing.T, fetch func() []FleetEvent, typ, detail string) FleetEvent {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		for _, ev := range fetch() {
			if ev.Type == typ && (detail == "" || strings.Contains(ev.Detail, detail)) {
				return ev
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q fleet event (detail~%q); saw %+v", typ, detail, fetch())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainDuringInFlightLease pins the graceful scale-down contract: a
// worker drained (the SIGTERM path) while a lease is in flight finishes
// that lease, has its result accepted, deregisters, and NOTHING goes
// back through TTL expiry — the lease TTL is a minute, so any
// TTL-dependent re-queue would stall the test far past its deadlines.
func TestDrainDuringInFlightLease(t *testing.T) {
	spec := testSpec()
	spec.Packets = 12
	want := directTable(t, spec)

	c, srv := testCoordinator(t, Config{LeasePoints: 2, LeaseTTL: 60 * time.Second})
	fetch := collectFleet(t, c)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorker(t, srv.URL, "")
	grant := waitFleet(t, fetch, "lease-grant", "")
	w.Drain() // SIGTERM equivalent, mid-lease

	select {
	case <-w.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("drained worker never exited")
	}
	leave := waitFleet(t, fetch, "worker-leave", "")
	if leave.Worker != grant.Worker {
		t.Fatalf("worker %s left, expected the drained %s", leave.Worker, grant.Worker)
	}
	// The in-flight lease's result must have been accepted before the
	// deregistration — not dropped, not re-queued.
	if p := j.Progress(); p.DonePoints < 2 {
		t.Fatalf("drained worker's in-flight lease was not merged: %+v", p)
	}
	for _, ev := range fetch() {
		if ev.Type == "lease-expire" {
			t.Fatalf("drain path re-queued a lease: %+v", ev)
		}
	}
	if infos := c.WorkerInfos(); len(infos) != 0 {
		t.Fatalf("drained worker still registered: %+v", infos)
	}

	// A fresh worker finishes the rest; the table is still byte-exact.
	testWorker(t, srv.URL, "")
	if got := waitTable(t, j); got != want {
		t.Fatalf("table after drain differs from direct:\n%s\nvs\n%s", got, want)
	}
}

// TestRevokeMidLease pins the abrupt cut: revoking a worker mid-lease
// re-queues its points immediately (no TTL wait — the TTL here is a
// minute), its late result bounces off the auth layer with 403 and never
// reaches the merge, and the sweep still finishes byte-identical.
func TestRevokeMidLease(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)

	c, srv := testCoordinator(t, Config{LeasePoints: 2, LeaseTTL: 60 * time.Second})
	fetch := collectFleet(t, c)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id, token := registerManual(t, srv.URL, "", "rogue")
	l := manualLease(t, srv.URL, token, "rogue")

	if !c.RevokeWorker(id) {
		t.Fatal("revoke failed")
	}
	waitFleet(t, fetch, "worker-revoke", "")
	requeued := waitFleet(t, fetch, "lease-expire", "revoked")
	if requeued.Lease != l.ID {
		t.Fatalf("re-queued lease %s, want the revoked worker's %s", requeued.Lease, l.ID)
	}

	// The rogue's result — correct tallies or not — must be rejected at
	// the door, and nothing may merge.
	res := LeaseResult{Lease: l.ID, Job: l.Job, Worker: "rogue", Fingerprint: l.Fingerprint}
	if status := postJSON(t, srv.URL, token, "/v1/dist/result", res, nil); status != http.StatusForbidden {
		t.Fatalf("revoked worker's result: HTTP %d, want 403", status)
	}
	if p := j.Progress(); p.DonePoints != 0 {
		t.Fatalf("revoked worker's work merged anyway: %+v", p)
	}

	testWorker(t, srv.URL, "")
	if got := waitTable(t, j); got != want {
		t.Fatalf("table after revocation differs from direct:\n%s\nvs\n%s", got, want)
	}
}

// TestCoordinatorRestartWhileDraining pins the ugliest overlap: the
// coordinator dies (kill -9: no shutdown, registry lost) while a worker
// is mid-drain with a lease in flight. The replacement coordinator
// replays jobs from the store; the draining worker hits 401, re-registers
// transparently, finishes its drain (its lease either merges or is
// re-issued — both are sound) and exits; a fresh worker completes the
// job byte-identically.
func TestCoordinatorRestartWhileDraining(t *testing.T) {
	spec := testSpec()
	spec.Packets = 12
	want := directTable(t, spec)
	dir := t.TempDir()

	// The worker sees one stable URL; the coordinator behind it is
	// swappable — that is what a restart looks like from outside.
	var handler atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	first, err := New(Config{LeasePoints: 2, LeaseTTL: 60 * time.Second, StoreDir: dir, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	handler.Store(first.Handler())
	fetchFirst := collectFleet(t, first)
	j1, err := first.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorker(t, srv.URL, "")
	waitFleet(t, fetchFirst, "lease-grant", "")
	w.Drain()

	// Kill -9 the first coordinator: swap the handler, never Close it.
	second, err := New(Config{LeasePoints: 2, LeaseTTL: 60 * time.Second, StoreDir: dir, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(second.Close)
	handler.Store(second.Handler())

	select {
	case <-w.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("draining worker never exited across the coordinator restart")
	}

	j2 := second.Job(j1.ID)
	if j2 == nil {
		t.Fatalf("job %s not replayed by the second coordinator", j1.ID)
	}
	testWorker(t, srv.URL, "")
	if got := waitTable(t, j2); got != want {
		t.Fatalf("table after restart-while-draining differs from direct:\n%s\nvs\n%s", got, want)
	}
	if infos := second.WorkerInfos(); len(infos) != 1 {
		// Only the finishing worker may remain; the drained one must have
		// deregistered from the NEW coordinator it re-registered with.
		for _, wi := range infos {
			if wi.State == workerDraining {
				t.Fatalf("draining worker leaked into the new registry: %+v", infos)
			}
		}
	}
}

// TestLateResultFromDrainedWorker pins the post-drain door: once a
// drained worker deregisters, its points re-queue immediately and any
// result it still sends is refused (401 — it is no longer registered)
// and never merges.
func TestLateResultFromDrainedWorker(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)

	c, srv := testCoordinator(t, Config{LeasePoints: 2, LeaseTTL: 60 * time.Second})
	fetch := collectFleet(t, c)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id, token := registerManual(t, srv.URL, "", "laggard")
	l := manualLease(t, srv.URL, token, "laggard")

	// Server-side drain; the directive must piggy-back on the heartbeat.
	if !c.DrainWorker(id) {
		t.Fatal("drain failed")
	}
	var hb HeartbeatResponse
	if status := postJSON(t, srv.URL, token, "/v1/dist/heartbeat", Heartbeat{Lease: l.ID, Worker: "laggard"}, &hb); status != http.StatusOK || !hb.Drain {
		t.Fatalf("heartbeat after drain: HTTP %d drain=%v, want 200 with the drain flag", status, hb.Drain)
	}

	// The laggard deregisters WITHOUT reporting (an operator impatient
	// with a wedged lease): its points must re-queue now, not at TTL.
	if status := postJSON(t, srv.URL, token, "/v1/dist/deregister", struct{}{}, nil); status != http.StatusOK {
		t.Fatalf("deregister: HTTP %d", status)
	}
	waitFleet(t, fetch, "lease-expire", "deregistered")

	// Its late result must bounce (the registration is gone) and merge
	// nothing.
	res := LeaseResult{Lease: l.ID, Job: l.Job, Worker: "laggard", Fingerprint: l.Fingerprint}
	if status := postJSON(t, srv.URL, token, "/v1/dist/result", res, nil); status != http.StatusUnauthorized {
		t.Fatalf("late result from drained worker: HTTP %d, want 401", status)
	}
	if p := j.Progress(); p.DonePoints != 0 {
		t.Fatalf("late result merged anyway: %+v", p)
	}

	testWorker(t, srv.URL, "")
	if got := waitTable(t, j); got != want {
		t.Fatalf("table after late-result drop differs from direct:\n%s\nvs\n%s", got, want)
	}
}

// TestMemBudgetSelfDrain pins the worker memory watchdog: a worker with
// an impossibly low heap budget notices the overage on its first
// runtime/metrics sample and takes the ordinary graceful-drain path —
// it deregisters and exits on its own, nothing waits for a lease TTL,
// and the sweep still completes byte-identically on an unconstrained
// worker.
func TestMemBudgetSelfDrain(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)
	c, srv := testCoordinator(t, Config{LeasePoints: 2, LeaseTTL: 60 * time.Second})
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := StartWorker(WorkerConfig{
		Coordinator:   srv.URL,
		Engine:        sweep.Config{Workers: 2, ShardPackets: 2},
		Heartbeat:     50 * time.Millisecond,
		RetryBase:     10 * time.Millisecond,
		RetryMax:      100 * time.Millisecond,
		MemBudget:     1, // one byte: any live heap exceeds it
		MemCheckEvery: 5 * time.Millisecond,
		Log:           testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	select {
	case <-w.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("over-budget worker never drained itself")
	}
	if !w.Draining() {
		t.Fatal("worker exited without its drain flag set")
	}
	if infos := c.WorkerInfos(); len(infos) != 0 {
		t.Fatalf("self-drained worker still registered: %+v", infos)
	}
	testWorker(t, srv.URL, "")
	if got := waitTable(t, j); got != want {
		t.Fatalf("table after mem-budget drain differs from direct:\n%s\nvs\n%s", got, want)
	}
}

// TestCPUBudgetSelfDrain pins the CPU watchdog the same way: a worker
// whose injected CPU sampler reports a rate far over -cpu-budget for
// CPUSustain consecutive checks takes the ordinary graceful-drain path,
// and the sweep completes byte-identically on an unconstrained worker.
func TestCPUBudgetSelfDrain(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)
	c, srv := testCoordinator(t, Config{LeasePoints: 2, LeaseTTL: 60 * time.Second})
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cpu := 0.0
	w, err := StartWorker(WorkerConfig{
		Coordinator:   srv.URL,
		Engine:        sweep.Config{Workers: 2, ShardPackets: 2},
		Heartbeat:     50 * time.Millisecond,
		RetryBase:     10 * time.Millisecond,
		RetryMax:      100 * time.Millisecond,
		CPUBudget:     0.5,
		CPUCheckEvery: 5 * time.Millisecond,
		CPUSustain:    2,
		// Every sample adds 10 CPU-seconds, so the measured rate is
		// thousands of cores against a budget of half a core.
		CPUSample: func() (float64, bool) { cpu += 10; return cpu, true },
		Log:       testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	select {
	case <-w.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("over-CPU-budget worker never drained itself")
	}
	if !w.Draining() {
		t.Fatal("worker exited without its drain flag set")
	}
	if infos := c.WorkerInfos(); len(infos) != 0 {
		t.Fatalf("self-drained worker still registered: %+v", infos)
	}
	testWorker(t, srv.URL, "")
	if got := waitTable(t, j); got != want {
		t.Fatalf("table after cpu-budget drain differs from direct:\n%s\nvs\n%s", got, want)
	}
}

// TestFleetEventStream pins the dashboard surface: the in-process
// subscription replays history with strictly increasing sequence
// numbers, and the SSE endpoint authenticates with the join secret and
// honours Last-Event-ID resume.
func TestFleetEventStream(t *testing.T) {
	c, srv := testCoordinator(t, Config{LeasePoints: 2, Token: "admin"})
	j, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	testWorker(t, srv.URL, "admin")
	waitTable(t, j)

	past, _, cancel := c.SubscribeFleet(-1)
	cancel()
	seen := map[string]bool{}
	for i, ev := range past {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d; want dense increasing seqs", i, ev.Seq)
		}
		seen[ev.Type] = true
	}
	for _, typ := range []string{"job-submit", "worker-join", "lease-grant", "job-done"} {
		if !seen[typ] {
			t.Fatalf("no %q event in %+v", typ, past)
		}
	}

	// SSE: secret-gated, Last-Event-ID honoured, one SSE frame per event
	// with the seq as its id and the type as its event name.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/dist/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("secretless SSE: HTTP %d, want 401", resp.StatusCode)
		}
	}
	ctx, cancelReq := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelReq()
	req = req.Clone(ctx)
	req.Header.Set("Authorization", "Bearer admin")
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("SSE response: HTTP %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	sc := bufio.NewScanner(resp.Body)
	var ids, types []string
	for sc.Scan() && (len(ids) < 3 || len(types) < 3) {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "id: "); ok {
			ids = append(ids, v)
		}
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			types = append(types, v)
		}
	}
	if len(ids) < 3 || len(types) < 3 {
		t.Fatalf("SSE replay too short: ids=%v types=%v", ids, types)
	}
	if ids[0] != "2" {
		t.Fatalf("first replayed id %s, want 2 (Last-Event-ID: 1 must skip 0 and 1)", ids[0])
	}
	for i, typ := range types {
		if typ != past[i+2].Type {
			t.Fatalf("SSE event %d is %q, subscription saw %q", i, typ, past[i+2].Type)
		}
	}
}
