package dist

// Chaos harness: transport fault injection, worker kill/restart, drain
// and revocation layered onto one sweep, pinning the tier's load-bearing
// promise — the merged table stays byte-identical to a single in-process
// engine no matter what the fleet does.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

// chaosEngine is the small local engine config every chaos worker runs.
func chaosEngine() sweep.Config { return sweep.Config{Workers: 2, ShardPackets: 2} }

// chaosTransport wraps a RoundTripper with deterministic fault
// injection: every failNth request errors before it is sent (a
// connection that never happened), and every dropNth response errors
// AFTER the coordinator processed the request (a response lost on the
// wire) — the nastier fault, because the worker must retry a call whose
// effect already landed, exercising idempotent merge.
type chaosTransport struct {
	base    http.RoundTripper
	failNth int
	dropNth int

	mu    sync.Mutex
	calls int
}

func (c *chaosTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	c.mu.Lock()
	c.calls++
	n := c.calls
	c.mu.Unlock()
	if c.failNth > 0 && n%c.failNth == 0 {
		return nil, fmt.Errorf("chaos: injected pre-send failure (call %d)", n)
	}
	resp, err := c.base.RoundTrip(r)
	if err != nil {
		return nil, err
	}
	if c.dropNth > 0 && n%c.dropNth == 0 {
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: response dropped after processing (call %d)", n)
	}
	return resp, nil
}

func (c *chaosTransport) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// chaosWorker starts a worker whose every coordinator call rides the
// chaos transport.
func chaosWorker(t *testing.T, url string, tr *chaosTransport) *Worker {
	t.Helper()
	w, err := StartWorker(WorkerConfig{
		Coordinator: url,
		Engine:      chaosEngine(),
		Heartbeat:   50 * time.Millisecond,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
		HTTPClient:  &http.Client{Transport: tr},
		Log:         testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// TestChaosByteIdentical is the acceptance pin for the hardened tier:
// with injected transport faults (pre-send failures AND post-processing
// response drops), a mid-sweep worker kill, a graceful drain, a
// revocation and a replacement worker joining late, the merged table is
// byte-identical to the direct single-engine run.
func TestChaosByteIdentical(t *testing.T) {
	spec := testSpec()
	spec.Packets = 24 // enough work that the chaos overlaps live leases
	want := directTable(t, spec)
	dir := t.TempDir()

	// Adaptive lease sizing (LeasePoints 0) with a short TTL so the
	// killed worker's lease re-issues quickly; everything lands in a
	// store so the recovery leg below can damage and replay it.
	c, srv := testCoordinator(t, Config{LeaseTTL: 500 * time.Millisecond, StoreDir: dir, StoreNoSync: true})
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, points, cancelSub := j.Subscribe()
	defer cancelSub()
	waitPoint := func(what string) {
		t.Helper()
		select {
		case _, ok := <-points:
			if !ok {
				return // job already finished: chaos just hits idle workers
			}
		case <-time.After(120 * time.Second):
			t.Fatalf("timed out waiting for a point before %s", what)
		}
	}

	victim := chaosWorker(t, srv.URL, &chaosTransport{base: http.DefaultTransport, failNth: 9})
	flaky := chaosWorker(t, srv.URL, &chaosTransport{base: http.DefaultTransport, failNth: 7, dropNth: 11})

	// Kill the victim once work is flowing — no drain, no deregister: its
	// live lease must come back via TTL expiry.
	waitPoint("the kill")
	victimID := victim.WorkerID()
	victim.Close()

	// Revoke a mid-sweep worker the hard way and bring in a clean
	// replacement.
	waitPoint("the revocation")
	replacement := chaosWorker(t, srv.URL, &chaosTransport{base: http.DefaultTransport, failNth: 8, dropNth: 13})
	if id := flaky.WorkerID(); id != "" {
		c.RevokeWorker(id)
	}

	// Drain the replacement near the end: its in-flight lease must land
	// and the job must still finish (the drained worker may be the last
	// one; draining only blocks NEW leases after the current one).
	waitPoint("the drain")
	chaosWorker(t, srv.URL, &chaosTransport{base: http.DefaultTransport, failNth: 10})
	if id := replacement.WorkerID(); id != "" {
		c.DrainWorker(id)
	}

	if got := waitTable(t, j); got != want {
		t.Fatalf("chaos table differs from direct:\n%s\nvs\n%s", got, want)
	}

	// The revoked worker must terminate on its own (403), the drained one
	// must deregister; the killed one's registry entry is tombstoned with
	// zero live leases once its lease expired.
	for name, done := range map[string]<-chan struct{}{"revoked": flaky.Done(), "drained": replacement.Done()} {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s worker never exited", name)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		stale := false
		for _, wi := range c.WorkerInfos() {
			if wi.ID == victimID && wi.Leases > 0 {
				stale = true
			}
			if wi.State == workerDraining {
				stale = true // drained worker should have deregistered
			}
		}
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry never settled: %+v", c.WorkerInfos())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Crash-recovery leg: bit-flip one stored segment and tear another
	// mid-record (what kill -9 under write pressure leaves behind), then
	// rebuild a coordinator over the damaged store and resubmit. The
	// salvaged points restore, the damaged ones recompute on a fresh
	// worker, and the table is STILL byte-identical — corruption can cost
	// work, never correctness.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("store segments after chaos run: %v (err %v)", segs, err)
	}
	sort.Strings(segs)
	flip, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	flip[len(flip)/2] ^= 0x20
	if err := os.WriteFile(segs[0], flip, 0o644); err != nil {
		t.Fatal(err)
	}
	torn, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[1], torn[:len(torn)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	c2, srv2 := testCoordinator(t, Config{StoreDir: dir, StoreNoSync: true})
	j2, err := c2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Before any worker joins, exactly the salvaged records restore: each
	// point lives in its own segment, so the two damaged ones recompute.
	if p := j2.Progress(); p.RestoredPoints != 4 {
		t.Fatalf("recovery restored %d points at submit, want 4 (6 minus the two damaged segments)", p.RestoredPoints)
	}
	testWorker(t, srv2.URL, "")
	if got := waitTable(t, j2); got != want {
		t.Fatalf("table after store corruption differs from direct:\n%s\nvs\n%s", got, want)
	}
}

// TestLateResultAcceptedOnce pins the slow-worker protocol end to end: a
// worker whose lease TTL'd out and was re-issued elsewhere delivers its
// result late; the coordinator accepts it (first completion wins —
// exactly once), cancels the now-redundant re-run in flight (the
// replacement's next heartbeat gets 410), and counts the replacement's
// own eventual result as a dedupe, not a second merge.
func TestLateResultAcceptedOnce(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)
	lateBefore := store.LateAccepts.Value()
	dupBefore := store.Dedupes.Value()

	c, srv := testCoordinator(t, Config{LeasePoints: 1, LeaseTTL: 250 * time.Millisecond,
		StoreDir: t.TempDir(), StoreNoSync: true})
	fetch := collectFleet(t, c)
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The slow worker takes one point and computes it correctly — but
	// will only report after its lease has been re-issued.
	_, slowTok := registerManual(t, srv.URL, "", "slow")
	l1 := manualLease(t, srv.URL, slowTok, "slow")
	eng := sweep.New(chaosEngine())
	defer eng.Close()
	job, err := eng.SubmitPoints(context.Background(), l1.Spec, l1.Points)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	late := LeaseResult{Lease: l1.ID, Job: l1.Job, Worker: "slow", Fingerprint: l1.Fingerprint}
	for _, i := range l1.Points {
		jp := sweep.PointTally{Point: i, N: res.Points[i][0].N}
		for _, p := range res.Points[i] {
			jp.OK = append(jp.OK, p.OK)
		}
		late.Points = append(late.Points, jp)
	}

	// Let the lease TTL out, then re-issue the same point to a second
	// worker — the redundant re-run.
	time.Sleep(400 * time.Millisecond)
	_, fastTok := registerManual(t, srv.URL, "", "fast")
	l2 := manualLease(t, srv.URL, fastTok, "fast")
	if len(l2.Points) != 1 || l2.Points[0] != l1.Points[0] {
		t.Fatalf("re-issued lease covers %v, want the expired lease's %v", l2.Points, l1.Points)
	}

	// The late result lands: accepted exactly once, and the in-flight
	// redundant lease is cancelled rather than left to burn fleet time.
	if status := postJSON(t, srv.URL, slowTok, "/v1/dist/result", late, nil); status != http.StatusOK {
		t.Fatalf("late result: HTTP %d", status)
	}
	waitFleet(t, fetch, "lease-cancel", "")
	if status := postJSON(t, srv.URL, fastTok, "/v1/dist/heartbeat", Heartbeat{Lease: l2.ID, Worker: "fast"}, nil); status != http.StatusGone {
		t.Fatalf("heartbeat on cancelled lease: HTTP %d, want 410", status)
	}
	if got := store.LateAccepts.Value() - lateBefore; got != 1 {
		t.Fatalf("late-accept counter moved %d, want 1", got)
	}
	if p := j.Progress(); p.DonePoints != 1 {
		t.Fatalf("after late accept: %d points done, want exactly 1", p.DonePoints)
	}

	// The replacement finished anyway (cancellation raced its compute)
	// and reports the same point: a dedupe, not a second merge.
	dup := late
	dup.Lease, dup.Worker = l2.ID, "fast"
	if status := postJSON(t, srv.URL, fastTok, "/v1/dist/result", dup, nil); status != http.StatusOK {
		t.Fatalf("redundant result: HTTP %d", status)
	}
	if got := store.Dedupes.Value() - dupBefore; got != 1 {
		t.Fatalf("dedupe counter moved %d, want 1", got)
	}
	if p := j.Progress(); p.DonePoints != 1 {
		t.Fatalf("after dedupe: %d points done, want still 1", p.DonePoints)
	}

	// A real worker completes the rest; the table is byte-identical.
	testWorker(t, srv.URL, "")
	if got := waitTable(t, j); got != want {
		t.Fatalf("table after late accept + dedupe differs from direct:\n%s\nvs\n%s", got, want)
	}
}

// TestNoIdlePolling pins the long-poll dispatch: an idle worker parks
// one lease request on the coordinator instead of polling on a fixed
// interval, and a submitted job is picked up by wakeup — far faster than
// any poll period.
func TestNoIdlePolling(t *testing.T) {
	c, srv := testCoordinator(t, Config{LeasePoints: 1})
	w, err := StartWorker(WorkerConfig{
		Coordinator: srv.URL,
		Engine:      chaosEngine(),
		Heartbeat:   50 * time.Millisecond,
		LongPoll:    10 * time.Second,
		RetryBase:   10 * time.Millisecond,
		Log:         testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	// Idle window: the worker should register and park — a few requests
	// at most, not one per interval.
	time.Sleep(700 * time.Millisecond)
	if polls := w.Polls(); polls > 3 {
		t.Fatalf("idle worker issued %d lease requests in 700ms (long-poll should park; a fixed-interval poller would spin)", polls)
	} else if polls == 0 {
		t.Fatal("worker never asked for work")
	}

	// Submit against the parked poll: the wakeup must beat any plausible
	// poll period (the park bound is 10s; a fixed-interval poller would
	// take up to that long).
	start := time.Now()
	j, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, events, cancel := j.Subscribe()
	defer cancel()
	select {
	case <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("submitted job not picked up by the parked long-poll")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("first point took %v after submit; the parked poll should have woken immediately", waited)
	}
	waitTable(t, j)
}

// TestBackoffOnTransportError pins the jittered exponential backoff: a
// worker facing a dead coordinator spaces its attempts out instead of
// hammering on a tight loop.
func TestBackoffOnTransportError(t *testing.T) {
	tr := &chaosTransport{base: http.DefaultTransport, failNth: 1} // every call fails pre-send
	w, err := StartWorker(WorkerConfig{
		Coordinator: "http://127.0.0.1:9", // discard port; transport fails first anyway
		Engine:      chaosEngine(),
		RetryBase:   25 * time.Millisecond,
		RetryMax:    200 * time.Millisecond,
		HTTPClient:  &http.Client{Transport: tr},
		Log:         testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	time.Sleep(900 * time.Millisecond)
	calls := tr.count()
	// Minimum-jitter spacing (base/2 doubling to max/2) admits ~13
	// attempts in 900ms; a non-backoff retry loop would make hundreds.
	if calls > 20 {
		t.Fatalf("%d attempts in 900ms against a dead coordinator — backoff is not backing off", calls)
	}
	if calls < 3 {
		t.Fatalf("only %d attempts in 900ms — retries seem stuck", calls)
	}
}

// TestAdaptiveLeaseSizing pins the sizing policy at the unit level:
// probe-first, latency-targeted, fleet-fair, clamped, and pinnable back
// to the legacy fixed size.
func TestAdaptiveLeaseSizing(t *testing.T) {
	c, _ := testCoordinator(t, Config{LeaseTarget: time.Second})
	j, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()

	if n := j.leaseSizeLocked(1); n != 1 {
		t.Fatalf("pre-estimate probe size %d, want 1", n)
	}
	j.observeLatencyLocked(0.05) // 50ms/point → 1s target = 20 points
	if j.estPerPoint != 0.05 {
		t.Fatalf("first observation est %v, want 0.05 (taken directly)", j.estPerPoint)
	}
	if n := j.leaseSizeLocked(1); n != 20 {
		t.Fatalf("sized %d at 50ms/point for a 1s target, want 20", n)
	}
	j.observeLatencyLocked(0.15) // EWMA 0.7·0.05 + 0.3·0.15 = 0.08
	if got := j.estPerPoint; got < 0.079 || got > 0.081 {
		t.Fatalf("EWMA est %v, want 0.08", got)
	}

	// Fleet fairness: 4 active workers over 6 pending points → ceil(6/4)
	// = 2 each, even though the latency target asks for more.
	if len(j.pending) != 6 {
		t.Fatalf("pending %d points, want 6", len(j.pending))
	}
	if n := j.leaseSizeLocked(4); n != 2 {
		t.Fatalf("share-capped size %d with 4 workers and 6 pending, want 2", n)
	}

	// Clamp: absurdly fast points must not produce unbounded leases.
	j.estPerPoint = 1e-9
	if n := j.leaseSizeLocked(1); n != maxAdaptiveLease {
		t.Fatalf("clamped size %d, want %d", n, maxAdaptiveLease)
	}

	// Legacy pin: LeasePoints > 0 bypasses the policy entirely.
	cPinned, _ := testCoordinator(t, Config{LeasePoints: 3})
	jp, err := cPinned.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	jp.mu.Lock()
	defer jp.mu.Unlock()
	jp.observeLatencyLocked(10)
	if n := jp.leaseSizeLocked(1); n != 3 {
		t.Fatalf("pinned size %d, want 3", n)
	}
}
