package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// testLogger bridges slog into the test log at debug level.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testSpec is the reduced-fidelity fig8 sweep the package tests run: two
// SIRs × three MCS modes (six points), four packets each.
func testSpec() sweep.Spec {
	return sweep.Spec{Experiment: "fig8", Packets: 4, PSDUBytes: 60, Seed: 3, Axis: []float64{-10, -20}}
}

// directTable runs the spec on the direct, engine-less sequential path —
// the reference every distributed run must match byte for byte.
func directTable(t *testing.T, spec sweep.Spec) string {
	t.Helper()
	req, err := spec.Request(nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := experiments.RunSweepPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	return tb.Render()
}

func testCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	cfg.Log = testLogger(t)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, srv
}

func testWorker(t *testing.T, url, token string) *Worker {
	t.Helper()
	w, err := StartWorker(WorkerConfig{
		Coordinator: url,
		Token:       token,
		Engine:      sweep.Config{Workers: 2, ShardPackets: 2},
		Heartbeat:   50 * time.Millisecond,
		RetryBase:   10 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
		Log:         testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// registerManual registers a hand-driven fake worker and returns its
// assigned id and data-plane token.
func registerManual(t *testing.T, url, secret, name string) (id, token string) {
	t.Helper()
	var resp RegisterResponse
	if status := postJSON(t, url, secret, "/v1/dist/register", RegisterRequest{Worker: name}, &resp); status != http.StatusOK {
		t.Fatalf("registering %s: HTTP %d", name, status)
	}
	return resp.Worker, resp.Token
}

// manualLease asks for work with a manual worker's token (no long-poll)
// and fails the test when none is granted.
func manualLease(t *testing.T, url, token, name string) Lease {
	t.Helper()
	var resp LeaseResponse
	if status := postJSON(t, url, token, "/v1/dist/lease", LeaseRequest{Worker: name}, &resp); status != http.StatusOK {
		t.Fatalf("%s lease request: HTTP %d", name, status)
	}
	if resp.Lease == nil {
		t.Fatalf("%s lease request: no lease granted (drain=%v)", name, resp.Drain)
	}
	return *resp.Lease
}

func waitTable(t *testing.T, j *Job) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table.Render()
}

// postJSON is the raw worker-tier client the zombie/stale tests use.
func postJSON(t *testing.T, url, token, path string, body any, out any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestCoordinatorMatchesDirect pins the tentpole invariant: a coordinator
// plus 1, 2 or 4 workers produces a byte-identical table to the direct
// single-engine path for the same spec and seed, and the event stream
// carries exactly one event per point.
func TestCoordinatorMatchesDirect(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)
	for _, workers := range []int{1, 2, 4} {
		c, srv := testCoordinator(t, Config{LeasePoints: 1})
		j, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		past, events, cancel := j.Subscribe()
		defer cancel()
		if len(past) != 0 {
			t.Fatalf("%d workers: %d events before any worker joined", workers, len(past))
		}
		for i := 0; i < workers; i++ {
			testWorker(t, srv.URL, "")
		}
		got := waitTable(t, j)
		if got != want {
			t.Fatalf("%d workers: table differs from direct:\n%s\nvs\n%s", workers, got, want)
		}
		seen := make(map[int]bool)
		seq := 0
		for ev := range events {
			if ev.Seq != seq {
				t.Fatalf("%d workers: event seq %d, want %d", workers, ev.Seq, seq)
			}
			seq++
			if seen[ev.Point] {
				t.Fatalf("%d workers: point %d reported twice", workers, ev.Point)
			}
			seen[ev.Point] = true
			if ev.Points != 6 || ev.N != spec.Packets {
				t.Fatalf("%d workers: malformed event %+v", workers, ev)
			}
		}
		if len(seen) != 6 {
			t.Fatalf("%d workers: %d point events, want 6", workers, len(seen))
		}
		if p := j.Progress(); p.State != "done" || p.DonePoints != 6 || p.DonePackets != p.Packets {
			t.Fatalf("%d workers: final progress %+v", workers, p)
		}
	}
}

// TestCoordinatorMatchesEnginePooled pins the same invariant for pooled
// sweeps: distributed workers, each building its waveform pool from the
// lease's (size, seed) identity, match an in-process engine configured
// with that identity byte for byte.
func TestCoordinatorMatchesEnginePooled(t *testing.T) {
	spec := testSpec()
	spec.Pool = true

	eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2, PoolSize: 4, PoolSeed: 9})
	defer eng.Close()
	ej, err := eng.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := ej.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := eres.Table.Render()

	c, srv := testCoordinator(t, Config{LeasePoints: 2, PoolSize: 4, PoolSeed: 9})
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	testWorker(t, srv.URL, "")
	testWorker(t, srv.URL, "")
	if got := waitTable(t, j); got != want {
		t.Fatalf("pooled distributed table differs from pooled engine:\n%s\nvs\n%s", got, want)
	}
}

// TestWorkerKilledMidSweep pins re-lease on worker death: a zombie takes
// a lease and never reports (the deterministic stand-in for kill -9), and
// a live worker killed mid-run abandons its lease; the survivors complete
// the sweep and the table still matches the direct path byte for byte.
func TestWorkerKilledMidSweep(t *testing.T) {
	spec := testSpec()
	spec.Packets = 6
	want := directTable(t, spec)

	c, srv := testCoordinator(t, Config{LeasePoints: 1, LeaseTTL: 300 * time.Millisecond})
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The zombie leases one point and goes silent: this lease MUST be
	// re-issued for the job to finish.
	_, zombieToken := registerManual(t, srv.URL, "", "zombie")
	zombieLease := manualLease(t, srv.URL, zombieToken, "zombie")

	// A real worker that is killed once it has work in flight.
	doomed := testWorker(t, srv.URL, "")
	for start := time.Now(); doomed.Leases() == 0; {
		if time.Since(start) > 30*time.Second {
			t.Fatal("doomed worker never acquired a lease")
		}
		time.Sleep(time.Millisecond)
	}
	doomed.Close()

	// The survivor finishes everything, including both orphaned leases.
	testWorker(t, srv.URL, "")
	if got := waitTable(t, j); got != want {
		t.Fatalf("table after worker death differs from direct:\n%s\nvs\n%s", got, want)
	}

	// The zombie's late heartbeat must be told its lease is gone.
	if status := postJSON(t, srv.URL, zombieToken, "/v1/dist/heartbeat", Heartbeat{Lease: zombieLease.ID, Worker: "zombie"}, nil); status != http.StatusGone {
		t.Fatalf("stale heartbeat: HTTP %d, want 410", status)
	}
}

// TestStoreReplayAfterKill pins coordinator durability: a coordinator
// that vanishes without any shutdown path (kill -9) is rebuilt from its
// store directory — the manifest recreates the job and the store index
// supplies the completed points, which are never recomputed — and still
// renders the direct table byte for byte. Crash litter (a torn trailing
// segment and a stray temp file from an interrupted atomic write) must
// be tolerated.
func TestStoreReplayAfterKill(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)
	dir := t.TempDir()

	first, err := New(Config{LeasePoints: 1, LeaseTTL: 10 * time.Second, StoreDir: dir, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(first.Handler())
	j1, err := first.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, events, cancelSub := j1.Subscribe()
	w1 := testWorker(t, srv1.URL, "")
	// Let exactly two points land on disk, then "kill -9": stop the
	// worker, drop the server, and never Close the coordinator.
	for i := 0; i < 2; i++ {
		select {
		case <-events:
		case <-time.After(120 * time.Second):
			t.Fatal("timed out waiting for stored points")
		}
	}
	w1.Close()
	cancelSub()
	srv1.Close()

	// Simulate the crash landing mid-write: a segment cut off inside its
	// first record, plus the temp file an interrupted rename leaves.
	torn := append([]byte{'C', 'P', 'R', 'S', 1}, 0x40, 0xde, 0xad)
	if err := os.WriteFile(filepath.Join(dir, "seg-00999999.seg"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-crash.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := New(Config{LeasePoints: 1, LeaseTTL: 10 * time.Second, StoreDir: dir, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(second.Handler())
	t.Cleanup(func() { srv2.Close(); second.Close() })
	j2 := second.Job(j1.ID)
	if j2 == nil {
		t.Fatalf("job %s not replayed; have %d jobs", j1.ID, len(second.Jobs()))
	}
	if p := j2.Progress(); p.RestoredPoints < 2 || p.State != "running" {
		t.Fatalf("replayed progress %+v, want ≥2 restored points and running", p)
	}
	testWorker(t, srv2.URL, "")
	if got := waitTable(t, j2); got != want {
		t.Fatalf("table after store replay differs from direct:\n%s\nvs\n%s", got, want)
	}
	// A further restart over the finished store restores the job as
	// done without any worker.
	third, err := New(Config{StoreDir: dir, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	j3 := third.Job(j1.ID)
	if j3 == nil {
		t.Fatal("finished job not replayed")
	}
	if p := j3.Progress(); p.State != "done" || p.RestoredPoints != 6 {
		t.Fatalf("finished replay progress %+v", p)
	}
	if got := waitTable(t, j3); got != want {
		t.Fatal("replayed finished table differs from direct")
	}
}

// TestManifestReplaySkipsUnparsable pins that a zero-byte manifest,
// foreign garbage in the store directory, or legacy journal leftovers
// cannot crash-loop the coordinator: each file is skipped with its job
// id burned, so fresh submissions never collide with it.
func TestManifestReplaySkipsUnparsable(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "j7.json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "j3.jsonl"), []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "j5.jsonl.migrated"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{StoreDir: dir, Log: testLogger(t)})
	if err != nil {
		t.Fatalf("unparsable store files crash the coordinator: %v", err)
	}
	defer c.Close()
	if n := len(c.Jobs()); n != 0 {
		t.Fatalf("%d jobs replayed from garbage", n)
	}
	j, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j8" {
		t.Fatalf("fresh job id %s, want j8 (numbering past the skipped files)", j.ID)
	}
}

// TestRepeatedSweepServedFromStore pins store-level deduplication across
// jobs: after one job completes through the fleet, resubmitting the
// identical spec — with every worker gone — completes instantly from the
// store, granting zero leases and rendering the byte-identical table.
func TestRepeatedSweepServedFromStore(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)
	c, srv := testCoordinator(t, Config{LeasePoints: 1, StoreDir: t.TempDir(), StoreNoSync: true})
	j1, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorker(t, srv.URL, "")
	if got := waitTable(t, j1); got != want {
		t.Fatal("fleet table differs from direct")
	}
	w.Close()
	granted := c.leasesGranted.Load()

	j2, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTable(t, j2); got != want {
		t.Fatal("store-served table differs from direct")
	}
	if p := j2.Progress(); p.State != "done" || p.RestoredPoints != 6 {
		t.Fatalf("store-served progress %+v, want done with all 6 points restored", p)
	}
	if g := c.leasesGranted.Load(); g != granted {
		t.Fatalf("repeated sweep took %d fleet leases, want 0", g-granted)
	}
}

// TestLeaseAuth pins the two-tier auth model: the join secret gates
// registration and admin calls, the minted per-worker token gates the
// data plane, and the join secret itself is NOT a data-plane credential.
func TestLeaseAuth(t *testing.T) {
	c, srv := testCoordinator(t, Config{Token: "s3cret"})
	if status := postJSON(t, srv.URL, "", "/v1/dist/register", RegisterRequest{Worker: "w"}, nil); status != http.StatusUnauthorized {
		t.Fatalf("secretless register: HTTP %d, want 401", status)
	}
	if status := postJSON(t, srv.URL, "wrong", "/v1/dist/register", RegisterRequest{Worker: "w"}, nil); status != http.StatusUnauthorized {
		t.Fatalf("wrong-secret register: HTTP %d, want 401", status)
	}
	id, token := registerManual(t, srv.URL, "s3cret", "w")
	if id == "" || !strings.HasPrefix(token, id+".") {
		t.Fatalf("registered as id=%q token=%q, want token prefixed by the id", id, token)
	}
	// The join secret must not work on the data plane, nor a token on no
	// registered worker.
	if status := postJSON(t, srv.URL, "s3cret", "/v1/dist/lease", LeaseRequest{Worker: "w"}, nil); status != http.StatusUnauthorized {
		t.Fatalf("join-secret lease request: HTTP %d, want 401", status)
	}
	if status := postJSON(t, srv.URL, "w99.deadbeef", "/v1/dist/lease", LeaseRequest{Worker: "w"}, nil); status != http.StatusUnauthorized {
		t.Fatalf("unknown-token lease request: HTTP %d, want 401", status)
	}
	if status := postJSON(t, srv.URL, token, "/v1/dist/lease", LeaseRequest{Worker: "w"}, nil); status != http.StatusNoContent {
		t.Fatalf("worker-token idle request: HTTP %d, want 204", status)
	}
	// Admin endpoints take the join secret, not worker tokens.
	if status := postJSON(t, srv.URL, token, "/v1/dist/workers/"+id+"/drain", struct{}{}, nil); status != http.StatusUnauthorized {
		t.Fatalf("worker-token admin call: HTTP %d, want 401", status)
	}
	// Revocation flips the data plane to 403 — distinct from 401 so the
	// worker knows to terminate rather than re-register.
	if !c.RevokeWorker(id) {
		t.Fatalf("revoking %s failed", id)
	}
	if status := postJSON(t, srv.URL, token, "/v1/dist/lease", LeaseRequest{Worker: "w"}, nil); status != http.StatusForbidden {
		t.Fatalf("revoked-token lease request: HTTP %d, want 403", status)
	}
}

// TestResultMergeEdgeCases pins the merge rules a flaky network exercises:
// duplicate results are idempotent, stale errors are dropped, live errors
// fail the job, and a fingerprint-mismatched result is refused.
func TestResultMergeEdgeCases(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)

	t.Run("duplicate and stale", func(t *testing.T) {
		c, srv := testCoordinator(t, Config{LeasePoints: 1})
		j, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Manually work one lease and deliver its result twice.
		_, manualToken := registerManual(t, srv.URL, "", "manual")
		l := manualLease(t, srv.URL, manualToken, "manual")
		eng := sweep.New(sweep.Config{Workers: 2, ShardPackets: 2})
		defer eng.Close()
		job, err := eng.SubmitPoints(context.Background(), l.Spec, l.Points)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := LeaseResult{Lease: l.ID, Job: l.Job, Worker: "manual", Fingerprint: l.Fingerprint}
		for _, i := range l.Points {
			jp := sweep.PointTally{Point: i, N: res.Points[i][0].N}
			for _, p := range res.Points[i] {
				jp.OK = append(jp.OK, p.OK)
			}
			out.Points = append(out.Points, jp)
		}
		for i := 0; i < 2; i++ {
			if status := postJSON(t, srv.URL, manualToken, "/v1/dist/result", out, nil); status != http.StatusOK {
				t.Fatalf("result POST %d: HTTP %d", i, status)
			}
		}
		// A stale error for the now-resolved lease must not fail the job.
		stale := LeaseResult{Lease: l.ID, Job: l.Job, Worker: "manual", Fingerprint: l.Fingerprint, Error: "boom"}
		if status := postJSON(t, srv.URL, manualToken, "/v1/dist/result", stale, nil); status != http.StatusOK {
			t.Fatalf("stale error POST: HTTP %d", status)
		}
		if p := j.Progress(); p.State != "running" || p.DonePoints != len(l.Points) {
			t.Fatalf("after duplicate+stale merge: %+v", p)
		}
		testWorker(t, srv.URL, "")
		if got := waitTable(t, j); got != want {
			t.Fatal("table after duplicate/stale merges differs from direct")
		}
	})

	t.Run("live error fails job", func(t *testing.T) {
		c, srv := testCoordinator(t, Config{LeasePoints: 1})
		j, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		_, brokenToken := registerManual(t, srv.URL, "", "broken")
		l := manualLease(t, srv.URL, brokenToken, "broken")
		res := LeaseResult{Lease: l.ID, Job: l.Job, Worker: "broken", Fingerprint: l.Fingerprint, Error: "decoder exploded"}
		if status := postJSON(t, srv.URL, brokenToken, "/v1/dist/result", res, nil); status != http.StatusOK {
			t.Fatalf("error result POST: HTTP %d", status)
		}
		if _, err := j.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "decoder exploded") {
			t.Fatalf("job error = %v", err)
		}
		if p := j.Progress(); p.State != "failed" {
			t.Fatalf("state %s, want failed", p.State)
		}
	})

	t.Run("fingerprint mismatch refused", func(t *testing.T) {
		c, srv := testCoordinator(t, Config{LeasePoints: 1})
		j, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		_, skewedToken := registerManual(t, srv.URL, "", "skewed")
		l := manualLease(t, srv.URL, skewedToken, "skewed")
		res := LeaseResult{Lease: l.ID, Job: l.Job, Worker: "skewed", Fingerprint: "deadbeef",
			Points: []sweep.PointTally{{Point: l.Points[0], N: spec.Packets, OK: []int{0, 0}}}}
		if status := postJSON(t, srv.URL, skewedToken, "/v1/dist/result", res, nil); status != http.StatusConflict {
			t.Fatalf("skewed result POST: HTTP %d, want 409", status)
		}
		if p := j.Progress(); p.State != "running" || p.DonePoints != 0 {
			t.Fatalf("after refused result: %+v", p)
		}
		// The refused lease's points must be re-issuable.
		testWorker(t, srv.URL, "")
		if got := waitTable(t, j); got != want {
			t.Fatal("table after refused result differs from direct")
		}
	})
}
