package dist

import (
	"io"
	"math"
	"time"

	"repro/internal/obs"
)

// FleetStats is one aggregated snapshot of a coordinator's fleet state,
// computed at read time from the registries the coordinator already
// maintains (no sampling loop). Served under /v1/status and rendered as
// cpr_dist_* Prometheus series by WritePrometheus.
type FleetStats struct {
	WorkersActive   int     `json:"workers_active"`
	WorkersDraining int     `json:"workers_draining"`
	LeasesInflight  int     `json:"leases_inflight"`
	QueueDepth      int     `json:"queue_depth"` // unleased incomplete points across running jobs
	JobsRunning     int     `json:"jobs_running"`
	JobsDone        int     `json:"jobs_done"`
	JobsFailed      int     `json:"jobs_failed"`
	LeaseEstSeconds float64 `json:"lease_est_seconds"` // max per-point EWMA across running jobs
	LeasesGranted   int64   `json:"leases_granted"`
	LeaseExpiries   int64   `json:"lease_expiries"` // expired + dropped leases
	RequeuedPoints  int64   `json:"requeued_points"`
	Revocations     int64   `json:"revocations"`
	FleetEvents     int     `json:"fleet_events"`    // total emitted this life
	SSESubscribers  int     `json:"sse_subscribers"` // live fleet-stream subscribers
	SSEDropped      int64   `json:"sse_dropped"`     // subscribers dropped for falling behind
	// OldestProgressSec is the progress age of the stalest live lease:
	// seconds since it last advanced its heartbeat packet count (0 with no
	// live leases). A value that keeps growing while heartbeats keep
	// landing is the wedged-worker signature the stuck-lease detector
	// exists for.
	OldestProgressSec float64 `json:"oldest_progress_sec"`
	// HeartbeatSec/LongPollSec/TTLSec echo the pacing the coordinator
	// advertises at registration, so stream consumers (the supervisor's
	// stuck thresholds, dashboards) can calibrate against the fleet's
	// actual cadence instead of guessing.
	HeartbeatSec float64 `json:"heartbeat_sec"`
	LongPollSec  float64 `json:"long_poll_sec"`
	TTLSec       float64 `json:"ttl_sec"`
}

// Stats assembles a FleetStats snapshot. Each job and registry lock is
// taken briefly in the sanctioned order (j.mu alone, then wmu alone,
// then fmu alone); the snapshot is consistent per subsystem, not
// globally atomic — fine for telemetry.
func (c *Coordinator) Stats() FleetStats {
	s := FleetStats{
		LeasesGranted:  c.leasesGranted.Load(),
		LeaseExpiries:  c.leaseExpiries.Load(),
		RequeuedPoints: c.requeuedPts.Load(),
		Revocations:    c.revocations.Load(),
		SSEDropped:     c.sseDropped.Load(),
		HeartbeatSec:   c.cfg.Heartbeat.Seconds(),
		LongPollSec:    c.cfg.LongPoll.Seconds(),
		TTLSec:         c.cfg.LeaseTTL.Seconds(),
	}
	now := time.Now()
	for _, j := range c.Jobs() {
		j.mu.Lock()
		switch {
		case !j.finished:
			s.JobsRunning++
			s.LeasesInflight += len(j.leases)
			s.QueueDepth += len(j.pending)
			if j.estPerPoint > s.LeaseEstSeconds {
				s.LeaseEstSeconds = j.estPerPoint
			}
			for _, l := range j.leases {
				if age := now.Sub(l.progress).Seconds(); age > s.OldestProgressSec {
					s.OldestProgressSec = age
				}
			}
		case j.err != nil:
			s.JobsFailed++
		default:
			s.JobsDone++
		}
		j.mu.Unlock()
	}
	c.wmu.Lock()
	for _, ws := range c.workers {
		switch ws.state {
		case workerActive:
			s.WorkersActive++
		case workerDraining:
			s.WorkersDraining++
		}
	}
	c.wmu.Unlock()
	c.fmu.Lock()
	s.FleetEvents = c.fleetSeq
	s.SSESubscribers = len(c.fleetSubs)
	c.fmu.Unlock()
	return s
}

// WritePrometheus renders the fleet snapshot as cpr_dist_* series in
// Prometheus text format. Instance-scoped (not in the obs.Default
// registry) so tests and embedders may run many coordinators per
// process; serve mode appends it to the /metrics response.
func (c *Coordinator) WritePrometheus(w io.Writer) {
	s := c.Stats()
	obs.WriteHeader(w, "cpr_dist_workers", "gauge", "Registered workers by lifecycle state.")
	obs.WriteSample(w, "cpr_dist_workers", float64(s.WorkersActive), obs.Label{Name: "state", Value: "active"})
	obs.WriteSample(w, "cpr_dist_workers", float64(s.WorkersDraining), obs.Label{Name: "state", Value: "draining"})
	obs.WriteHeader(w, "cpr_dist_jobs", "gauge", "Coordinator jobs by state.")
	obs.WriteSample(w, "cpr_dist_jobs", float64(s.JobsRunning), obs.Label{Name: "state", Value: "running"})
	obs.WriteSample(w, "cpr_dist_jobs", float64(s.JobsDone), obs.Label{Name: "state", Value: "done"})
	obs.WriteSample(w, "cpr_dist_jobs", float64(s.JobsFailed), obs.Label{Name: "state", Value: "failed"})
	obs.WriteHeader(w, "cpr_dist_leases_inflight", "gauge", "Live leases across running jobs.")
	obs.WriteSample(w, "cpr_dist_leases_inflight", float64(s.LeasesInflight))
	obs.WriteHeader(w, "cpr_dist_queue_depth", "gauge", "Unleased incomplete points across running jobs.")
	obs.WriteSample(w, "cpr_dist_queue_depth", float64(s.QueueDepth))
	obs.WriteHeader(w, "cpr_dist_lease_est_seconds", "gauge", "Adaptive lease sizing estimate: max per-point EWMA seconds across running jobs.")
	obs.WriteSample(w, "cpr_dist_lease_est_seconds", s.LeaseEstSeconds)
	obs.WriteHeader(w, "cpr_dist_leases_granted_total", "counter", "Leases granted this coordinator life.")
	obs.WriteSample(w, "cpr_dist_leases_granted_total", float64(s.LeasesGranted))
	obs.WriteHeader(w, "cpr_dist_lease_expiries_total", "counter", "Leases expired or dropped and re-queued.")
	obs.WriteSample(w, "cpr_dist_lease_expiries_total", float64(s.LeaseExpiries))
	obs.WriteHeader(w, "cpr_dist_requeued_points_total", "counter", "Points returned to the pending queue by lease expiry/drop.")
	obs.WriteSample(w, "cpr_dist_requeued_points_total", float64(s.RequeuedPoints))
	obs.WriteHeader(w, "cpr_dist_revocations_total", "counter", "Worker tokens revoked.")
	obs.WriteSample(w, "cpr_dist_revocations_total", float64(s.Revocations))
	obs.WriteHeader(w, "cpr_dist_fleet_events_total", "counter", "Fleet events emitted this coordinator life.")
	obs.WriteSample(w, "cpr_dist_fleet_events_total", float64(s.FleetEvents))
	obs.WriteHeader(w, "cpr_dist_fleet_subscribers", "gauge", "Live fleet event-stream subscribers.")
	obs.WriteSample(w, "cpr_dist_fleet_subscribers", float64(s.SSESubscribers))
	obs.WriteHeader(w, "cpr_dist_fleet_dropped_total", "counter", "Fleet subscribers dropped for falling behind.")
	obs.WriteSample(w, "cpr_dist_fleet_dropped_total", float64(s.SSEDropped))
	obs.WriteHeader(w, "cpr_dist_oldest_progress_seconds", "gauge", "Progress age of the stalest live lease (0 with none).")
	obs.WriteSample(w, "cpr_dist_oldest_progress_seconds", s.OldestProgressSec)
}

// WorkerStats is a worker's own operational counters plus its current
// lease, served by the worker's -obs endpoint (GET /v1/status) alongside
// the engine metrics — the same one-call snapshot shape the other roles
// expose, so the supervisor and humans probe every role uniformly.
type WorkerStats struct {
	Name            string `json:"name"`
	Worker          string `json:"worker,omitempty"` // coordinator-assigned id
	Draining        bool   `json:"draining"`
	Leases          int64  `json:"leases"`
	Polls           int64  `json:"polls"`
	Retries         int64  `json:"retries"`
	Reregistrations int64  `json:"reregistrations"`
	Results         int64  `json:"results"`
	// Lease/LeaseJob name the lease currently executing (empty when the
	// worker is idle or parked on a long-poll).
	Lease    string `json:"lease,omitempty"`
	LeaseJob string `json:"lease_job,omitempty"`
	// CPUCores is the most recent process CPU rate sample in cores
	// (0 until the -cpu-budget watchdog has taken two samples).
	CPUCores float64 `json:"cpu_cores,omitempty"`
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	s := WorkerStats{
		Name:            w.cfg.ID,
		Worker:          w.WorkerID(),
		Draining:        w.drain.Load(),
		Leases:          w.leases.Load(),
		Polls:           w.polls.Load(),
		Retries:         w.retries.Load(),
		Reregistrations: w.reregs.Load(),
		Results:         w.results.Load(),
		CPUCores:        math.Float64frombits(w.cpuRate.Load()),
	}
	if cur, ok := w.curLease.Load().(curLease); ok {
		s.Lease, s.LeaseJob = cur.lease, cur.job
	}
	return s
}

// WritePrometheus renders the worker's counters as cpr_dist_worker_*
// series. Instance-scoped for the same reason as the coordinator's.
func (w *Worker) WritePrometheus(out io.Writer) {
	s := w.Stats()
	obs.WriteHeader(out, "cpr_dist_worker_leases_total", "counter", "Leases granted to this worker.")
	obs.WriteSample(out, "cpr_dist_worker_leases_total", float64(s.Leases))
	obs.WriteHeader(out, "cpr_dist_worker_polls_total", "counter", "Lease requests issued (long-polls).")
	obs.WriteSample(out, "cpr_dist_worker_polls_total", float64(s.Polls))
	obs.WriteHeader(out, "cpr_dist_worker_retries_total", "counter", "Backoff sleeps taken after failed coordinator calls.")
	obs.WriteSample(out, "cpr_dist_worker_retries_total", float64(s.Retries))
	obs.WriteHeader(out, "cpr_dist_worker_reregistrations_total", "counter", "Transparent re-registrations after a 401.")
	obs.WriteSample(out, "cpr_dist_worker_reregistrations_total", float64(s.Reregistrations))
	obs.WriteHeader(out, "cpr_dist_worker_results_total", "counter", "Lease results delivered to the coordinator.")
	obs.WriteSample(out, "cpr_dist_worker_results_total", float64(s.Results))
	obs.WriteHeader(out, "cpr_dist_worker_draining", "gauge", "1 when a drain has been requested.")
	v := 0.0
	if s.Draining {
		v = 1
	}
	obs.WriteSample(out, "cpr_dist_worker_draining", v)
	obs.WriteHeader(out, "cpr_dist_worker_lease_inflight", "gauge", "1 while a lease is executing locally.")
	inflight := 0.0
	if s.Lease != "" {
		inflight = 1
	}
	obs.WriteSample(out, "cpr_dist_worker_lease_inflight", inflight)
	obs.WriteHeader(out, "cpr_dist_worker_cpu_cores", "gauge", "Most recent process CPU rate sample (cores; 0 until sampled).")
	obs.WriteSample(out, "cpr_dist_worker_cpu_cores", s.CPUCores)
}
