package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeLegacyJournal hand-writes a legacy JSON-lines journal (nothing in
// the repo writes the format any more).
func writeLegacyJournal(t *testing.T, path string, hdr JournalHeader, pts []PointTally) {
	t.Helper()
	var b strings.Builder
	line, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(line)
	b.WriteByte('\n')
	for _, p := range pts {
		line, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReadLegacyJournalSemantics pins the legacy parser's documented
// rules: duplicate lines for a point are last-wins, and a torn trailing
// line (kill -9 mid-append) is dropped.
func TestReadLegacyJournalSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	hdr := JournalHeader{V: 1, Spec: Spec{Experiment: "fig8", Packets: 4, PSDUBytes: 60}, Points: 6}
	writeLegacyJournal(t, path, hdr, []PointTally{
		{Point: 1, N: 4, OK: []int{1, 2}},
		{Point: 1, N: 4, OK: []int{3, 4}}, // duplicate: last wins
	})
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, clean...), []byte(`{"point":2,"n":4,"ok":[3`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	got, restored, err := ReadLegacyJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Points != hdr.Points || got.Spec.Experiment != "fig8" {
		t.Fatalf("header round trip: %+v", got)
	}
	if len(restored) != 1 {
		t.Fatalf("restored = %+v, want exactly point 1", restored)
	}
	if p := restored[1]; p.OK[0] != 3 || p.OK[1] != 4 {
		t.Fatalf("point 1 = %+v, want the last duplicate", p)
	}
}

// TestReadLegacyJournalRejectsGarbage pins that foreign or corrupt files
// are refused with a diagnosable error instead of silently restoring junk.
func TestReadLegacyJournalRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]struct {
		content string
		wantErr string
	}{
		"no newline":     {`{"v":1`, "torn journal header"},
		"not json":       {"hello world\n", "bad header"},
		"bad version":    {`{"v":9,"spec":{},"points":1}` + "\n", "unsupported version"},
		"corrupt point":  {`{"v":1,"spec":{},"points":2}` + "\nnot-json\n", "corrupt point line"},
		"out of range":   {`{"v":1,"spec":{},"points":2}` + "\n" + `{"point":7,"n":1,"ok":[0]}` + "\n", "outside [0,2)"},
		"negative point": {`{"v":1,"spec":{},"points":2}` + "\n" + `{"point":-1,"n":1,"ok":[0]}` + "\n", "outside [0,2)"},
	}
	i := 0
	for name, tc := range cases {
		i++
		path := filepath.Join(dir, fmt.Sprintf("j%d.jsonl", i))
		if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := ReadLegacyJournal(path)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}

// TestMigrateDir pins the one-shot migration: a legacy journal's points
// land in the store under their content-address keys (a subsequent sweep
// restores them without recomputing), the file is renamed *.migrated,
// and an unparsable file is skipped and left in place.
func TestMigrateDir(t *testing.T) {
	// Compute ground-truth tallies once, store-lessly.
	e := testEngine()
	spec := testSpec()
	full := submitAndWait(t, e, spec)
	e.Close()

	dir := t.TempDir()
	pts := make([]PointTally, len(full.Points))
	for i, arms := range full.Points {
		ok := make([]int, len(arms))
		for a, pt := range arms {
			ok[a] = pt.OK
		}
		pts[i] = PointTally{Point: i, N: arms[0].N, OK: ok}
	}
	writeLegacyJournal(t, filepath.Join(dir, "old.jsonl"),
		JournalHeader{V: 1, Spec: spec.Normalised(), Points: len(pts)}, pts)
	if err := os.WriteFile(filepath.Join(dir, "junk.jsonl"), []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	st := testStore(t, dir)
	res, err := MigrateDir(dir, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Journals != 1 || res.Points != len(pts) || len(res.Skipped) != 1 {
		t.Fatalf("migrate result = %+v", res)
	}
	if _, err := os.Stat(filepath.Join(dir, "old.jsonl.migrated")); err != nil {
		t.Fatal("imported journal not renamed")
	}
	if _, err := os.Stat(filepath.Join(dir, "junk.jsonl")); err != nil {
		t.Fatal("unparsable journal removed")
	}

	// The migrated points serve a fresh sweep with zero packets executed.
	e2 := New(Config{Workers: 4, ShardPackets: 2, PoolSize: 4, Store: st})
	defer e2.Close()
	j, err := e2.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p := j.Progress(); p.RestoredPoints != len(pts) {
		t.Fatalf("restored %d of %d migrated points", p.RestoredPoints, len(pts))
	}
	checkSameResults(t, full.Points, got.Points)
}
