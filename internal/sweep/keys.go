package sweep

import (
	"repro/internal/experiments"
	"repro/internal/sweep/store"
)

// PlanKeys derives the content-address store key for every point of plan.
// pooled/poolSize/poolSeed describe the interferer waveform pool the
// tallies were (or will be) computed under; pool-less callers pass
// false, 0, 0. The plan fingerprint is computed once and shared across
// all points.
func PlanKeys(plan *experiments.SweepPlan, pooled bool, poolSize int, poolSeed int64) []store.Key {
	fp := plan.Fingerprint()
	keys := make([]store.Key, len(plan.Points))
	for i := range keys {
		keys[i] = store.KeyFor(fp, plan.PointIdentity(i), pooled, poolSize, poolSeed)
	}
	return keys
}
