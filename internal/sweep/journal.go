package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sync"
)

// Journal file layout (JSON lines):
//
//	{"v":1,"spec":{…normalised spec…},"points":N}     ← header, written once
//	{"point":7,"n":2000,"ok":[1523,1892]}             ← one per completed point
//
// The header's spec is the submitted spec with fidelity defaults filled
// and the checkpoint path cleared (Spec.Normalised), so a file can be
// moved and still match. Point lines are appended in completion order
// (not point order) as each point finishes; "ok" is indexed like the
// point's receiver arms. On replay the file is read line by line: lines
// for in-range points restore those points, and execution continues with
// the rest. A truncated trailing line (a crash mid-append) is dropped.
// Duplicate lines for the same point are legal — the last one wins;
// every writer in this repo computes point tallies deterministically, so
// duplicates are bit-identical and the choice is immaterial, but
// last-wins is the documented, pinned behaviour.
//
// The same format backs two consumers: the engine's per-sweep checkpoint
// (-checkpoint, resume-at-first-incomplete-point) and the distributed
// coordinator's per-job durable state (internal/sweep/dist), which
// replays the journal directory on restart.

// JournalHeader is the first line of a journal file. For pooled sweeps it
// also records the waveform pool's identity: a point computed from one
// pool must never be merged with points from another (different size or
// seed means different interferer waveforms AND a different per-tile draw
// range).
type JournalHeader struct {
	V        int   `json:"v"`
	Spec     Spec  `json:"spec"`
	Points   int   `json:"points"`
	PoolSize int   `json:"pool_size,omitempty"`
	PoolSeed int64 `json:"pool_seed,omitempty"`
}

// JournalPoint is one completed-point line: the point's plan index, its
// packet count and its per-arm success tallies. The distributed tier also
// uses it as the wire form of a finished point (dist.LeaseResult).
type JournalPoint struct {
	Point int   `json:"point"`
	N     int   `json:"n"`
	OK    []int `json:"ok"`
}

// Journal appends completed points to an open journal file. Safe for
// concurrent use; Append after Close is a no-op.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// openCheckpoint opens (or creates) the engine checkpoint at path for a
// job described by hdr (normalised spec, point count, pool identity).
// When the file already exists its header must match; the restored map
// holds its completed points.
func openCheckpoint(path string, hdr JournalHeader) (map[int]JournalPoint, *Journal, error) {
	restored := make(map[int]JournalPoint)
	data, err := os.ReadFile(path)
	switch {
	case err == nil && len(data) == 0:
		// A crash between file creation and the header write leaves a
		// zero-byte file; treat it as fresh rather than refusing resume
		// forever. (Non-empty unparsable content still refuses below — it
		// may be a foreign file we must not clobber.)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, nil, err
		}
		ck, err := writeHeader(f, hdr)
		return restored, ck, err
	case err == nil:
		got, restored, validLen, err := parseJournal(data)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
		}
		if !reflect.DeepEqual(got, hdr) {
			return nil, nil, fmt.Errorf("sweep: checkpoint %s: spec mismatch (checkpoint belongs to a different sweep or pool)", path)
		}
		ck, err := ResumeJournal(path, validLen)
		if err != nil {
			return nil, nil, err
		}
		return restored, ck, nil
	case os.IsNotExist(err):
		ck, err := CreateJournal(path, hdr)
		return restored, ck, err
	default:
		return nil, nil, err
	}
}

// CreateJournal creates a fresh journal at path (failing if a file exists
// there) and writes the header line.
func CreateJournal(path string, hdr JournalHeader) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return writeHeader(f, hdr)
}

// ReadJournal parses the journal at path: its header, the completed
// points it records (duplicate lines for a point: last wins), and the
// byte length of the valid newline-terminated prefix — everything past it
// is a torn trailing line from an interrupted append. The header is
// validated structurally (version, point indexes in range) but not
// against any expected spec; callers resuming a known job compare the
// header themselves.
func ReadJournal(path string) (JournalHeader, map[int]JournalPoint, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return JournalHeader{}, nil, 0, err
	}
	hdr, restored, validLen, err := parseJournal(data)
	if err != nil {
		return JournalHeader{}, nil, 0, fmt.Errorf("sweep: journal %s: %w", path, err)
	}
	return hdr, restored, validLen, nil
}

// ResumeJournal opens an existing journal for appending, truncating any
// torn trailing line at validLen (as returned by ReadJournal) so new
// lines start on a clean boundary.
func ResumeJournal(path string, validLen int64) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && validLen < fi.Size() {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Journal{f: f}, nil
}

// writeHeader writes the header line to a fresh (or emptied) journal and
// wraps the file for appending.
func writeHeader(f *os.File, hdr JournalHeader) (*Journal, error) {
	line, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f}, nil
}

// parseJournal validates the header structurally and returns it, the
// completed points recorded in data (last line wins for a repeated point)
// and the byte length of the valid newline-terminated prefix (a torn
// final line from an interrupted append is excluded).
func parseJournal(data []byte) (JournalHeader, map[int]JournalPoint, int64, error) {
	var hdr JournalHeader
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return hdr, nil, 0, fmt.Errorf("empty or torn journal header")
	}
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return hdr, nil, 0, fmt.Errorf("bad header: %w", err)
	}
	if hdr.V != 1 {
		return hdr, nil, 0, fmt.Errorf("unsupported version %d", hdr.V)
	}
	restored := make(map[int]JournalPoint)
	validLen := int64(nl + 1)
	rest := data[nl+1:]
	for len(rest) > 0 {
		end := bytes.IndexByte(rest, '\n')
		if end < 0 {
			break // torn final line: only fully written points count
		}
		line := rest[:end]
		if len(line) > 0 {
			var cp JournalPoint
			if err := json.Unmarshal(line, &cp); err != nil {
				return hdr, nil, 0, fmt.Errorf("corrupt point line: %w", err)
			}
			if cp.Point < 0 || cp.Point >= hdr.Points {
				return hdr, nil, 0, fmt.Errorf("point %d outside [0,%d)", cp.Point, hdr.Points)
			}
			restored[cp.Point] = cp
		}
		validLen += int64(end + 1)
		rest = rest[end+1:]
	}
	return hdr, restored, validLen, nil
}

// Append writes one completed-point line.
func (c *Journal) Append(p JournalPoint) error {
	line, err := json.Marshal(p)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	_, err = c.f.Write(append(line, '\n'))
	return err
}

// Close flushes and closes the file; later appends are no-ops.
func (c *Journal) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}
