// Package store is the content-addressed durable result store behind
// sweep checkpointing and distributed-job durability: a crash-safe,
// compact binary format for completed measurement points, keyed by what
// a point IS rather than which job computed it — so repeated sweeps and
// cross-job duplicate points are served from disk instead of the fleet.
//
// # Content-address key scheme
//
// A record's key is sha256 over four components:
//
//	"cpr-store|v1" | plan fingerprint | pool identity | point identity
//
// The plan fingerprint is experiments.SweepPlan.Fingerprint — a digest
// of every point's decision-determining configuration — and the point
// identity is SweepPlan.PointIdentity(i) for the stored point, so two
// jobs (or two coordinator lives, or an engine and a coordinator) agree
// on a key exactly when they would compute bit-identical tallies for the
// point. The pool identity (pooled flag, pool size, pool seed) is keyed
// separately because it changes the interferer draw sequence without
// appearing in the point identity: pooled and pool-less tallies for the
// same point must never alias. Tallies in this repo are deterministic,
// so a key collision between DIFFERENT tallies would require a sha256
// collision; duplicate Puts of the same key are no-ops.
//
// # Record format
//
// A store directory holds immutable segment files, "seg-<n>.seg", each
// written in full via create-temp → write → fsync → rename → fsync(dir)
// (Options.NoSync skips both fsyncs for tests and benches). A segment
// is a 5-byte header — magic "CPRS" plus a format version byte — and a
// run of framed records:
//
//	uvarint  payload length
//	uint32le CRC32-C of the payload
//	payload:
//	    key      32 bytes
//	    uvarint  n        packets attempted
//	    uvarint  arms     receiver-arm count
//	    uint8    width    bits per tally = bits.Len(n)
//	    packed   ceil(arms·width/8) bytes, LSB-first bit-packed tallies
//
// Per-arm success tallies lie in [0, n], so each is bit-packed at
// exactly the width n requires — a fig8-scale record is ~50 bytes
// against ~90 for its JSON-lines ancestor, and decode is a fixed-shape
// scan with no parsing ambiguity. Encodings are canonical (minimal
// width, zero padding bits); decode rejects non-canonical forms.
//
// # Recovery guarantees
//
// Open replays every segment and tolerates arbitrary damage without
// ever surfacing a corrupted tally:
//
//   - A torn tail (kill -9 or power loss mid-write on a filesystem that
//     let a partially-synced segment survive) parses as a clean prefix:
//     every fully-framed, CRC-valid record before the tear is restored,
//     the rest of the file is skipped.
//   - A bit-flipped record fails its CRC (or the canonical-form checks)
//     and parsing of that segment stops at the last trustworthy record —
//     framing beyond a corrupt length prefix cannot be trusted.
//   - A foreign or truncated-to-garbage file (bad magic/version) is
//     skipped whole.
//
// Damage is counted (cpr_store_corrupt_records_total, RecoveryStats)
// and never fatal: a salvaged store is simply a smaller cache, and the
// engine or fleet recomputes the missing points — deterministically, so
// the final tables are byte-identical either way. FuzzStoreRecovery
// pins all of this against arbitrary truncations and byte corruptions.
//
// # Eviction / GC
//
// Unbounded by default, the store accepts a byte budget
// (Options.MaxBytes, wired from -store-max-bytes). After every Put the
// least-recently-hit whole segments are evicted — file deleted, records
// dropped from the index — until the store fits. "Hit" means a tally
// actually displaced work: the same decision sites that count
// cpr_store_hits_total call Touch, so mere index probes (Get, Locate)
// do not refresh a segment. Segments holding any pinned key are never
// victims: engines and coordinators Pin a job's full key set while the
// job is live, so records a running job may restore from cannot be
// collected under it, even if that leaves the store over budget until
// the job finishes. Eviction is deliberately coarse (whole segments)
// because segments are immutable and append-only; an evicted point is
// not an error, just a future recompute (and re-Put) like any other
// cache miss. Evictions are counted in cpr_store_evicted_segments_total,
// cpr_store_evicted_records_total and cpr_store_evicted_bytes_total.
//
// The store itself never reads the wall clock — Put and Touch take the
// caller's now, and reopened segments inherit their file mtime — so
// eviction order is reproducible under test clocks and survives
// restarts.
package store
