package store

import (
	"bytes"
	"testing"
)

// fuzzSeedSegment builds a valid multi-record segment plus the per-record
// framed byte ranges, so the fuzz body can tell which records precede any
// damage site.
func fuzzSeedSegment() (seg []byte, recs []Record, ends []int) {
	recs = []Record{
		{Key: testKey(1), Tally: Tally{N: 2000, OK: []int{1999, 0, 1234, 7}}},
		{Key: testKey(2), Tally: Tally{N: 0, OK: []int{0}}},
		{Key: testKey(3), Tally: Tally{N: 7, OK: []int{7, 3, 0, 1, 2}}},
		{Key: testKey(4), Tally: Tally{N: 1 << 20, OK: []int{1 << 19, 12345}}},
	}
	seg = append(seg, segMagic...)
	for _, r := range recs {
		seg = appendRecord(seg, r)
		ends = append(ends, len(seg))
	}
	return seg, recs, ends
}

// FuzzStoreRecovery corrupts a valid segment with one truncation and one
// byte overwrite, then asserts parseSegment never panics, never emits a
// tally that differs from the original record under its key, and always
// salvages every record that lies fully before the damage.
func FuzzStoreRecovery(f *testing.F) {
	seg, _, _ := fuzzSeedSegment()
	f.Add(len(seg), 0, byte(0))
	f.Add(0, 0, byte(0xff))
	f.Add(len(seg)-3, 10, byte(0x80))
	f.Add(5, len(seg)-1, byte(1))
	f.Fuzz(func(t *testing.T, truncAt, pos int, val byte) {
		orig, recs, ends := fuzzSeedSegment()
		data := append([]byte(nil), orig...)
		if truncAt < 0 {
			truncAt = 0
		}
		if truncAt > len(data) {
			truncAt = len(data)
		}
		data = data[:truncAt]
		flipped := false
		if pos >= 0 && pos < len(data) && data[pos] != val {
			data[pos] = val
			flipped = true
		}

		byKey := make(map[Key]Tally)
		for _, r := range recs {
			byKey[r.Key] = r.Tally
		}
		var got []Record
		parseSegment(data, func(r Record, _ int64) { got = append(got, r) })

		// Nothing corrupted may surface: every emitted record must be
		// byte-identical to the original under its key.
		for _, r := range got {
			want, ok := byKey[r.Key]
			if !ok {
				t.Fatalf("salvaged record with unknown key %x", r.Key[:4])
			}
			if r.Tally.N != want.N || !equalInts(r.Tally.OK, want.OK) {
				t.Fatalf("salvaged tally %+v differs from original %+v", r.Tally, want)
			}
		}

		// Every record fully before the damage must be salvaged.
		damage := truncAt
		if flipped && pos < damage {
			damage = pos
		}
		intact := 0
		for _, end := range ends {
			if end <= damage {
				intact++
			}
		}
		if len(got) < intact {
			t.Fatalf("salvaged %d records, want at least the %d intact before damage at %d",
				len(got), intact, damage)
		}
		// Salvage order must be the original prefix order.
		for i := 0; i < intact; i++ {
			if !bytes.Equal(got[i].Key[:], recs[i].Key[:]) {
				t.Fatalf("salvage order broken at %d", i)
			}
		}
	})
}
