package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testNow is the fixed caller-supplied clock for test Puts: the store
// takes time from its callers, never from time.Now.
var testNow = time.Unix(1700000000, 0)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, stats, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 0 || stats.Records != 0 {
		t.Fatalf("fresh store reported stats %+v", stats)
	}
	recs := []Record{
		{Key: testKey(1), Tally: Tally{N: 2000, OK: []int{1999, 0, 1234, 7}}},
		{Key: testKey(2), Tally: Tally{N: 0, OK: []int{0}}},
		{Key: testKey(3), Tally: Tally{N: 1, OK: []int{1, 0, 1}}},
	}
	if err := s.Put(testNow, recs...); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		got, ok := s.Get(r.Key)
		if !ok {
			t.Fatalf("key %x missing after Put", r.Key[:4])
		}
		if got.N != r.Tally.N || !equalInts(got.OK, r.Tally.OK) {
			t.Fatalf("got %+v want %+v", got, r.Tally)
		}
	}
	// Get must hand out copies, not aliases of the index.
	got, _ := s.Get(recs[0].Key)
	got.OK[0] = -999
	again, _ := s.Get(recs[0].Key)
	if again.OK[0] != 1999 {
		t.Fatal("Get aliases internal state")
	}
	if s.Len() != 3 {
		t.Fatalf("Len=%d want 3", s.Len())
	}
}

func TestReopenRestoresIndex(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testNow, Record{Key: testKey(1), Tally: Tally{N: 9, OK: []int{3, 9}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testNow, Record{Key: testKey(2), Tally: Tally{N: 5, OK: []int{5}}}); err != nil {
		t.Fatal(err)
	}
	s2, stats, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 2 || stats.Records != 2 || stats.DamagedSegments != 0 {
		t.Fatalf("reopen stats %+v", stats)
	}
	got, ok := s2.Get(testKey(1))
	if !ok || got.N != 9 || !equalInts(got.OK, []int{3, 9}) {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
	// New segments after reopen must not clobber old ones.
	if err := s2.Put(testNow, Record{Key: testKey(3), Tally: Tally{N: 1, OK: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 3 {
		t.Fatalf("want 3 segments, got %v", segs)
	}
}

func TestPutDeduplicates(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Key: testKey(7), Tally: Tally{N: 4, OK: []int{2}}}
	if err := s.Put(testNow, r); err != nil {
		t.Fatal(err)
	}
	// Same key again, even with a different tally: no-op, no new segment.
	if err := s.Put(testNow, Record{Key: testKey(7), Tally: Tally{N: 8, OK: []int{8}}}); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("duplicate Put wrote a segment: %v", segs)
	}
	got, _ := s.Get(testKey(7))
	if got.N != 4 {
		t.Fatalf("duplicate Put overwrote tally: %+v", got)
	}
}

func TestPutRejectsInvalidTally(t *testing.T) {
	s, _, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Tally{
		{N: -1, OK: []int{0}},
		{N: 3, OK: nil},
		{N: 3, OK: []int{4}},
		{N: 3, OK: []int{-1}},
		{N: 3, OK: make([]int, maxArms+1)},
	}
	for i, tl := range bad {
		if err := s.Put(testNow, Record{Key: testKey(byte(i)), Tally: tl}); err == nil {
			t.Fatalf("tally %+v accepted", tl)
		}
	}
}

func TestTornTailSalvagesPrefix(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testNow,
		Record{Key: testKey(1), Tally: Tally{N: 10, OK: []int{4, 10, 0}}},
		Record{Key: testKey(2), Tally: Tally{N: 10, OK: []int{1, 2, 3}}},
	); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-00000000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the second record's payload.
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, stats, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || stats.DamagedSegments != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if _, ok := s2.Get(testKey(1)); !ok {
		t.Fatal("intact prefix record lost")
	}
	if _, ok := s2.Get(testKey(2)); ok {
		t.Fatal("torn record surfaced")
	}
}

func TestBitFlipStopsSegment(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testNow,
		Record{Key: testKey(1), Tally: Tally{N: 100, OK: []int{42}}},
		Record{Key: testKey(2), Tally: Tally{N: 100, OK: []int{43}}},
		Record{Key: testKey(3), Tally: Tally{N: 100, OK: []int{44}}},
	); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-00000000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the second record's payload (well past the
	// first frame: header 5 + frame ≈ 1+4+40).
	data[len(segMagic)+60] ^= 0x10
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, stats, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DamagedSegments != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if got, ok := s2.Get(testKey(1)); !ok || got.OK[0] != 42 {
		t.Fatalf("first record not salvaged: %+v ok=%v", got, ok)
	}
	if _, ok := s2.Get(testKey(2)); ok {
		t.Fatal("bit-flipped record surfaced")
	}
}

func TestForeignFileSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000005.seg"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, stats, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DamagedSegments != 1 || stats.Records != 0 {
		t.Fatalf("stats %+v", stats)
	}
	// The damaged file's number is still burned for new segments.
	if err := s.Put(testNow, Record{Key: testKey(1), Tally: Tally{N: 1, OK: []int{1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-00000006.seg")); err != nil {
		t.Fatal("new segment did not skip past damaged number")
	}
}

func TestKeyForPoolIdentity(t *testing.T) {
	fp, id := "fingerprint", "point 0"
	base := KeyFor(fp, id, false, 0, 0)
	if KeyFor(fp, id, false, 99, 7) != base {
		t.Fatal("pool-less keys must canonicalize size/seed to zero")
	}
	pooled := KeyFor(fp, id, true, 4, 1)
	if pooled == base {
		t.Fatal("pooled and pool-less tallies alias")
	}
	if KeyFor(fp, id, true, 4, 2) == pooled {
		t.Fatal("pool seed not keyed")
	}
	if KeyFor(fp, id, true, 8, 1) == pooled {
		t.Fatal("pool size not keyed")
	}
	if KeyFor(fp, "point 1", true, 4, 1) == pooled {
		t.Fatal("point identity not keyed")
	}
	if KeyFor("other", id, true, 4, 1) == pooled {
		t.Fatal("fingerprint not keyed")
	}
}

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := AtomicWrite(path, []byte("one"), false); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWrite(path, []byte("two"), true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(data, []byte("two")) {
		t.Fatalf("data=%q err=%v", data, err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
