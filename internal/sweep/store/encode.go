package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
)

// Encoding limits. Records beyond these are refused on write and treated
// as corrupt on read: a flipped bit in a length or count field must not
// drive a multi-gigabyte allocation during recovery.
const (
	maxPacketsPerPoint = 1 << 30
	maxArms            = 4096
	maxPayload         = 32 + 2*binary.MaxVarintLen64 + 1 + (maxArms*64+7)/8
)

// segMagic opens every segment file: "CPRS" plus the format version.
var segMagic = []byte{'C', 'P', 'R', 'S', 1}

// castagnoli is the CRC32-C table (the SSE4.2-accelerated polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// validTally reports whether t is encodable: a non-negative packet count
// within limits and per-arm tallies in [0, t.N].
func validTally(t Tally) error {
	if t.N < 0 || t.N > maxPacketsPerPoint {
		return fmt.Errorf("store: packet count %d outside [0,%d]", t.N, maxPacketsPerPoint)
	}
	if len(t.OK) == 0 || len(t.OK) > maxArms {
		return fmt.Errorf("store: arm count %d outside [1,%d]", len(t.OK), maxArms)
	}
	for a, v := range t.OK {
		if v < 0 || v > t.N {
			return fmt.Errorf("store: arm %d tally %d outside [0,%d]", a, v, t.N)
		}
	}
	return nil
}

// appendPayload appends the canonical payload encoding of r.
func appendPayload(buf []byte, r Record) []byte {
	width := bits.Len(uint(r.Tally.N))
	buf = append(buf, r.Key[:]...)
	buf = binary.AppendUvarint(buf, uint64(r.Tally.N))
	buf = binary.AppendUvarint(buf, uint64(len(r.Tally.OK)))
	buf = append(buf, byte(width))
	return appendPackedBits(buf, r.Tally.OK, width)
}

// appendRecord appends the framed record (length, CRC32-C, payload).
func appendRecord(buf []byte, r Record) []byte {
	payload := appendPayload(nil, r)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// decodePayload parses one CRC-verified payload, enforcing the canonical
// form: minimal bit width, exact packed length, zero padding bits, every
// tally within [0, n].
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < len(r.Key) {
		return r, fmt.Errorf("store: payload shorter than a key")
	}
	copy(r.Key[:], p)
	p = p[len(r.Key):]
	n, used := binary.Uvarint(p)
	if used <= 0 || n > maxPacketsPerPoint {
		return r, fmt.Errorf("store: bad packet count")
	}
	p = p[used:]
	arms, used := binary.Uvarint(p)
	if used <= 0 || arms == 0 || arms > maxArms {
		return r, fmt.Errorf("store: bad arm count")
	}
	p = p[used:]
	if len(p) == 0 {
		return r, fmt.Errorf("store: missing bit width")
	}
	width := int(p[0])
	p = p[1:]
	if width != bits.Len(uint(n)) {
		return r, fmt.Errorf("store: non-canonical bit width %d for n=%d", width, n)
	}
	want := (int(arms)*width + 7) / 8
	if len(p) != want {
		return r, fmt.Errorf("store: packed tallies are %d bytes, want %d", len(p), want)
	}
	ok, err := unpackBits(p, int(arms), width)
	if err != nil {
		return r, err
	}
	r.Tally.N = int(n)
	r.Tally.OK = ok
	for a, v := range ok {
		if v > r.Tally.N {
			return r, fmt.Errorf("store: arm %d tally %d exceeds n=%d", a, v, r.Tally.N)
		}
	}
	return r, nil
}

// appendPackedBits bit-packs vals at width bits each, LSB-first.
func appendPackedBits(buf []byte, vals []int, width int) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, (len(vals)*width+7)/8)...)
	out := buf[start:]
	bit := 0
	for _, v := range vals {
		for b := 0; b < width; b++ {
			if v&(1<<b) != 0 {
				out[bit>>3] |= 1 << (bit & 7)
			}
			bit++
		}
	}
	return buf
}

// unpackBits reverses appendPackedBits and rejects non-zero padding bits
// (a canonical encoding leaves them clear; set ones mean corruption).
func unpackBits(p []byte, arms, width int) ([]int, error) {
	out := make([]int, arms)
	bit := 0
	for i := range out {
		v := 0
		for b := 0; b < width; b++ {
			if p[bit>>3]&(1<<(bit&7)) != 0 {
				v |= 1 << b
			}
			bit++
		}
		out[i] = v
	}
	for ; bit < len(p)*8; bit++ {
		if p[bit>>3]&(1<<(bit&7)) != 0 {
			return nil, fmt.Errorf("store: non-zero padding bits")
		}
	}
	return out, nil
}

// parseSegment scans one segment's bytes, emitting every intact record of
// the longest valid prefix along with its frame's byte offset in the
// file. It never panics and never emits a record that failed its CRC or
// canonical-form checks: at the first torn or corrupt frame the rest of
// the segment is skipped (framing beyond it cannot be trusted) and
// damaged reports true. A file that is not a segment at all (bad magic
// or version) emits nothing and reports damaged.
func parseSegment(data []byte, emit func(r Record, off int64)) (records int, damaged bool) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		return 0, true
	}
	rest := data[len(segMagic):]
	for len(rest) > 0 {
		off := int64(len(data) - len(rest))
		plen, used := binary.Uvarint(rest)
		if used <= 0 || plen == 0 || plen > maxPayload {
			return records, true
		}
		rest = rest[used:]
		if len(rest) < 4+int(plen) {
			return records, true // torn tail: frame extends past EOF
		}
		sum := binary.LittleEndian.Uint32(rest)
		payload := rest[4 : 4+plen]
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, true
		}
		r, err := decodePayload(payload)
		if err != nil {
			return records, true
		}
		emit(r, off)
		records++
		rest = rest[4+plen:]
	}
	return records, false
}
