package store

import (
	"fmt"
	"testing"
)

func benchRecord(i int) Record {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	return Record{Key: k, Tally: Tally{N: 2000, OK: []int{1999, 1500, 1234, 7}}}
}

func BenchmarkStoreEncode(b *testing.B) {
	r := benchRecord(1)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendRecord(buf[:0], r)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkStoreDecode(b *testing.B) {
	frame := appendRecord(nil, benchRecord(1))
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n, damaged := parseSegment(append(append([]byte(nil), segMagic...), frame...), func(Record) {})
		if n != 1 || damaged {
			b.Fatalf("n=%d damaged=%v", n, damaged)
		}
	}
}

func BenchmarkStoreLookup(b *testing.B) {
	s, _, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	const points = 1024
	recs := make([]Record, points)
	for i := range recs {
		recs[i] = benchRecord(i)
	}
	if err := s.Put(recs...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(recs[i%points].Key); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	for _, batch := range []int{1, 30} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			s, _, err := Open(b.TempDir(), Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				recs := make([]Record, batch)
				for j := range recs {
					recs[j] = benchRecord(i*batch + j)
				}
				if err := s.Put(recs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
