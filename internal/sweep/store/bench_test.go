package store

import (
	"fmt"
	"os"
	"testing"
)

func benchRecord(i int) Record {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[2] = byte(i >> 16)
	k[3] = byte(i >> 24)
	return Record{Key: k, Tally: Tally{N: 2000, OK: []int{1999, 1500, 1234, 7}}}
}

func BenchmarkStoreEncode(b *testing.B) {
	r := benchRecord(1)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendRecord(buf[:0], r)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkStoreDecode(b *testing.B) {
	frame := appendRecord(nil, benchRecord(1))
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n, damaged := parseSegment(append(append([]byte(nil), segMagic...), frame...), func(Record, int64) {})
		if n != 1 || damaged {
			b.Fatalf("n=%d damaged=%v", n, damaged)
		}
	}
}

func BenchmarkStoreLookup(b *testing.B) {
	s, _, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	const points = 1024
	recs := make([]Record, points)
	for i := range recs {
		recs[i] = benchRecord(i)
	}
	if err := s.Put(testNow, recs...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(recs[i%points].Key); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStorePutFresh measures the full fresh-record Put path: encode,
// atomic segment write (NoSync), index and eviction bookkeeping. Its
// predecessor (BenchmarkStorePut, retired in the PR9 trajectory) built
// keys from only the low 16 bits of the record counter, so long runs
// silently degenerated into measuring the duplicate no-op path — ns/op
// swung 29x with b.N. Here every record is unique, and the store is
// wiped outside the timer every window segments so directory growth — an
// artefact of benchmark accumulation, not of real sweeps, which put a
// bounded point set — never enters the measurement.
func BenchmarkStorePutFresh(b *testing.B) {
	for _, batch := range []int{1, 30} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			const window = 512
			dir := b.TempDir()
			s, _, err := Open(dir, Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%window == 0 {
					b.StopTimer()
					if err := os.RemoveAll(dir); err != nil {
						b.Fatal(err)
					}
					if err := os.MkdirAll(dir, 0o755); err != nil {
						b.Fatal(err)
					}
					if s, _, err = Open(dir, Options{NoSync: true}); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				recs := make([]Record, batch)
				for j := range recs {
					recs[j] = benchRecord(i*batch + j)
				}
				if err := s.Put(testNow, recs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStorePutDup measures the duplicate fast path: a Put whose
// records are all already stored must cost index lookups only — no
// segment file, no fsync, no eviction scan.
func BenchmarkStorePutDup(b *testing.B) {
	s, _, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]Record, 30)
	for j := range recs {
		recs[j] = benchRecord(j)
	}
	if err := s.Put(testNow, recs...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(testNow, recs...); err != nil {
			b.Fatal(err)
		}
	}
}
