package store

import "repro/internal/obs"

// Store counters, exposed on /metrics via obs.Default. Counting policy:
// decision sites count, Get does not — a hit is recorded when a cached
// tally actually displaces work (engine restore, coordinator absorb),
// never by mere index probes, so repeated scans cannot inflate the
// numbers.
var (
	// Hits counts points served from the store instead of being computed.
	Hits = obs.NewCounter("cpr_store_hits_total",
		"Sweep points served from the result store instead of recomputed.")
	// Misses counts points a job needed but the store did not hold.
	Misses = obs.NewCounter("cpr_store_misses_total",
		"Sweep points absent from the result store at job submit.")
	// Dedupes counts result uploads for points that were already done.
	Dedupes = obs.NewCounter("cpr_store_dedupes_total",
		"Duplicate point results discarded because the point was already stored.")
	// LateAccepts counts results accepted from leases no longer live.
	LateAccepts = obs.NewCounter("cpr_store_late_accepts_total",
		"Point results accepted from expired or revoked leases.")
	// Corrupt counts damaged segments skipped (in part or whole) on Open.
	Corrupt = obs.NewCounter("cpr_store_corrupt_records_total",
		"Store segments with torn or corrupt records skipped during recovery.")
	// EvictedSegments counts whole segments removed by the MaxBytes GC.
	EvictedSegments = obs.NewCounter("cpr_store_evicted_segments_total",
		"Store segments evicted by the -store-max-bytes LRU policy.")
	// EvictedRecords counts records dropped from the index by eviction.
	EvictedRecords = obs.NewCounter("cpr_store_evicted_records_total",
		"Point records dropped from the store index by segment eviction.")
	// EvictedBytes counts segment bytes reclaimed by eviction.
	EvictedBytes = obs.NewCounter("cpr_store_evicted_bytes_total",
		"Segment bytes reclaimed by the -store-max-bytes LRU policy.")
)
