package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// segFiles lists the segment files currently on disk.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func TestEvictionLRUHoldsBudget(t *testing.T) {
	dir := t.TempDir()
	// One fig8-shaped record is ~50 bytes framed; budget for about two
	// single-record segments so the third Put must evict the coldest.
	s, _, err := Open(dir, Options{NoSync: true, MaxBytes: 140})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	for i := 0; i < 2; i++ {
		r := Record{Key: testKey(byte(i + 1)), Tally: Tally{N: 2000, OK: []int{1, 2, 3, 4}}}
		if err := s.Put(base.Add(time.Duration(i)*time.Second), r); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh segment 0 so segment 1 becomes the LRU victim.
	s.Touch(testKey(1), base.Add(10*time.Second))
	if err := s.Put(base.Add(2*time.Second),
		Record{Key: testKey(3), Tally: Tally{N: 2000, OK: []int{5, 6, 7, 8}}}); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > 140 {
		t.Fatalf("store at %d bytes, budget 140", s.Bytes())
	}
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("touched record evicted ahead of colder one")
	}
	if _, ok := s.Get(testKey(2)); ok {
		t.Fatal("LRU record survived eviction")
	}
	if _, ok := s.Get(testKey(3)); !ok {
		t.Fatal("fresh record evicted")
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-00000001.seg")); !os.IsNotExist(err) {
		t.Fatalf("evicted segment file still on disk (err=%v)", err)
	}
	// A reopened store sees only the survivors.
	s2, stats, err := Open(dir, Options{NoSync: true, MaxBytes: 140})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Fatalf("reopen found %d records, want 2", stats.Records)
	}
	if _, ok := s2.Get(testKey(2)); ok {
		t.Fatal("evicted record resurrected on reopen")
	}
}

func TestEvictionSkipsPinnedSegments(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{NoSync: true, MaxBytes: 60})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	pinned := Record{Key: testKey(1), Tally: Tally{N: 100, OK: []int{50}}}
	release := s.Pin(pinned.Key)
	if err := s.Put(base, pinned); err != nil {
		t.Fatal(err)
	}
	// Each additional Put blows the budget; only unpinned segments may go.
	for i := 2; i <= 4; i++ {
		r := Record{Key: testKey(byte(i)), Tally: Tally{N: 100, OK: []int{int(i)}}}
		if err := s.Put(base.Add(time.Duration(i)*time.Second), r); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(pinned.Key); !ok {
		t.Fatal("pinned record evicted")
	}
	if got := s.Len(); got > 2 {
		t.Fatalf("eviction kept %d records under a one-segment budget", got)
	}
	// Released pins make the segment collectable again.
	release()
	release() // idempotent
	if err := s.Put(base.Add(time.Hour),
		Record{Key: testKey(9), Tally: Tally{N: 100, OK: []int{9}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(pinned.Key); ok {
		t.Fatal("released record still immune to eviction")
	}
}

func TestEvictedPointRecomputable(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{NoSync: true, MaxBytes: 60})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	r := Record{Key: testKey(1), Tally: Tally{N: 10, OK: []int{4}}}
	if err := s.Put(base, r); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(base.Add(time.Second),
		Record{Key: testKey(2), Tally: Tally{N: 10, OK: []int{5}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(r.Key); ok {
		t.Fatal("expected first record evicted under one-segment budget")
	}
	// A re-Put of the evicted key is fresh, not a dedupe no-op.
	if err := s.Put(base.Add(2*time.Second), r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(r.Key)
	if !ok || got.N != 10 || got.OK[0] != 4 {
		t.Fatalf("recomputed record not stored: %+v ok=%v", got, ok)
	}
}

func TestLocateReportsOffsets(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: testKey(1), Tally: Tally{N: 10, OK: []int{1}}},
		{Key: testKey(2), Tally: Tally{N: 10, OK: []int{2}}},
	}
	if err := s.Put(testNow, recs[0], recs[1]); err != nil {
		t.Fatal(err)
	}
	loc0, ok0 := s.Locate(recs[0].Key)
	loc1, ok1 := s.Locate(recs[1].Key)
	if !ok0 || !ok1 {
		t.Fatal("Locate missed stored keys")
	}
	if loc0.Segment != 0 || loc1.Segment != 0 {
		t.Fatalf("segments %d,%d want 0,0", loc0.Segment, loc1.Segment)
	}
	if loc0.Offset != int64(len(segMagic)) || loc1.Offset <= loc0.Offset {
		t.Fatalf("offsets %d,%d", loc0.Offset, loc1.Offset)
	}
	// Locations survive reopen (rebuilt from framing, not payloads).
	s2, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Locate(recs[1].Key); !ok || got != loc1 {
		t.Fatalf("reopen Locate %+v ok=%v want %+v", got, ok, loc1)
	}
	if _, ok := s.Locate(testKey(99)); ok {
		t.Fatal("Locate invented a missing key")
	}
}
