package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Key content-addresses one completed measurement point. See the package
// doc for the derivation; build one with KeyFor.
type Key [sha256.Size]byte

// Tally is the durable result for one point: packets attempted and the
// per-receiver-arm success counts.
type Tally struct {
	N  int
	OK []int
}

// Record pairs a key with its tally.
type Record struct {
	Key   Key
	Tally Tally
}

// Location names where a record's frame lives: the segment number and
// the frame's byte offset within the segment file. It is index state
// (rebuilt from the framing on Open), letting history/query layers
// reference records without re-reading payloads.
type Location struct {
	Segment int
	Offset  int64
}

// Options configures Open.
type Options struct {
	// NoSync skips the fsync of segment data and of the directory on
	// every write. Tests and benches only: a crash can then lose or
	// tear acknowledged records (recovery still salvages the rest).
	NoSync bool

	// MaxBytes, when positive, bounds the total bytes of live segment
	// files. After every Put the least-recently-hit whole segments are
	// evicted (file removed, records dropped from the index) until the
	// store fits, skipping segments holding any pinned record. Zero
	// means unbounded.
	MaxBytes int64
}

// RecoveryStats reports what Open found on disk.
type RecoveryStats struct {
	Segments        int // segment files scanned
	Records         int // intact records restored
	DamagedSegments int // segments with a torn tail, corrupt record, or bad magic
}

// entry is one indexed record: the tally plus where its frame lives.
type entry struct {
	tally Tally
	seg   int
	off   int64
}

// segInfo is the per-segment eviction state.
type segInfo struct {
	bytes   int64
	lastHit time.Time
	keys    []Key
}

// Store is a content-addressed result store over one directory. All
// methods are safe for concurrent use. The store itself never reads the
// wall clock: Put and Touch take the current time from the caller, so
// recorded arrival/hit times are the caller's notion of "now".
type Store struct {
	dir      string
	noSync   bool
	maxBytes int64

	mu      sync.Mutex
	idx     map[Key]entry
	segs    map[int]*segInfo
	pins    map[Key]int
	total   int64 // bytes across indexed segments
	nextSeg int
}

// KeyFor derives the content-address key for one sweep point:
// sha256("cpr-store|v1" | fingerprint | pool identity | identity).
// fingerprint is experiments.SweepPlan.Fingerprint(), identity the
// plan's PointIdentity for the point. Pool-less callers pass
// pooled=false (size and seed are then canonicalized to zero).
func KeyFor(fingerprint, identity string, pooled bool, poolSize int, poolSeed int64) Key {
	if !pooled {
		poolSize, poolSeed = 0, 0
	}
	h := sha256.New()
	h.Write([]byte("cpr-store|v1"))
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	var pool [17]byte
	if pooled {
		pool[0] = 1
	}
	binary.LittleEndian.PutUint64(pool[1:], uint64(poolSize))
	binary.LittleEndian.PutUint64(pool[9:], uint64(poolSeed))
	h.Write(pool[:])
	h.Write([]byte{0})
	h.Write([]byte(identity))
	var k Key
	h.Sum(k[:0])
	return k
}

// Open loads (creating if needed) the store at dir, salvaging every
// intact record from its segments. Damage is reported in RecoveryStats
// and counted in cpr_store_corrupt_records_total; it is never fatal.
// Each restored segment's last-hit time starts at its file mtime, so
// eviction order survives restarts without the store reading the clock.
func Open(dir string, opts Options) (*Store, RecoveryStats, error) {
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		noSync:   opts.NoSync,
		maxBytes: opts.MaxBytes,
		idx:      make(map[Key]entry),
		segs:     make(map[int]*segInfo),
		pins:     make(map[Key]int),
	}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return nil, stats, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		n := segNumber(name)
		if n >= s.nextSeg {
			s.nextSeg = n + 1
		}
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, stats, fmt.Errorf("store: %w", err)
		}
		stats.Segments++
		si := &segInfo{bytes: int64(len(data))}
		if fi, err := os.Stat(name); err == nil {
			si.lastHit = fi.ModTime()
		}
		rec, damaged := parseSegment(data, func(r Record, off int64) {
			s.idx[r.Key] = entry{tally: r.Tally, seg: n, off: off}
			si.keys = append(si.keys, r.Key)
		})
		stats.Records += rec
		if damaged {
			stats.DamagedSegments++
			Corrupt.Inc()
		}
		// Only segments that contributed records join the eviction
		// bookkeeping: a foreign or fully-corrupt file is left alone
		// rather than deleted by a policy that cannot know what it is.
		if rec > 0 && n >= 0 {
			s.segs[n] = si
			s.total += si.bytes
		}
	}
	// Stray temp files are aborted writes from a previous life.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) > 0 {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	return s, stats, nil
}

// segNumber parses the numeric part of a "seg-<n>.seg" path, -1 if malformed.
func segNumber(path string) int {
	base := filepath.Base(path)
	base = strings.TrimPrefix(base, "seg-")
	base = strings.TrimSuffix(base, ".seg")
	n, err := strconv.Atoi(base)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// Get returns the stored tally for k. The returned OK slice is a copy.
func (s *Store) Get(k Key) (Tally, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx[k]
	if !ok {
		return Tally{}, false
	}
	out := Tally{N: e.tally.N, OK: make([]int, len(e.tally.OK))}
	copy(out.OK, e.tally.OK)
	return out, true
}

// Locate reports where k's record frame lives without touching the
// payload — the probe history/query layers use to count stored points.
func (s *Store) Locate(k Key) (Location, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx[k]
	if !ok {
		return Location{}, false
	}
	return Location{Segment: e.seg, Offset: e.off}, true
}

// Touch marks k's segment as hit at the caller's now, refreshing its
// position in the eviction LRU. Call it where a stored tally actually
// displaces work (the same decision sites that count Hits).
func (s *Store) Touch(k Key, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx[k]
	if !ok {
		return
	}
	if si := s.segs[e.seg]; si != nil && now.After(si.lastHit) {
		si.lastHit = now
	}
}

// Pin marks keys as referenced by a live job so eviction never removes
// the segments holding them (present now or written later). The returned
// release is idempotent and must be called when the job finishes.
func (s *Store) Pin(keys ...Key) (release func()) {
	pinned := append([]Key(nil), keys...)
	s.mu.Lock()
	for _, k := range pinned {
		s.pins[k]++
	}
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			for _, k := range pinned {
				if s.pins[k]--; s.pins[k] <= 0 {
					delete(s.pins, k)
				}
			}
			s.mu.Unlock()
		})
	}
}

// Len reports how many distinct points the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Bytes reports the total size of indexed segment files.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Put durably appends recs as one new segment, skipping keys already
// present (duplicate Puts are no-ops). The segment is written whole to a
// temp file, fsynced, renamed into place, and the directory fsynced —
// unless the store was opened with NoSync. OK slices are copied. now is
// the caller's wall clock; it stamps the segment's arrival for the
// eviction LRU (the store never calls time.Now itself). When a MaxBytes
// budget is set, Put evicts least-recently-hit unpinned segments after
// appending until the store fits again.
func (s *Store) Put(now time.Time, recs ...Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg := s.nextSeg
	// One pass prepares the index entries alongside the encoded segment;
	// they are committed to the index only after the file is on disk. All
	// OK copies share one backing array, sliced per record afterwards (the
	// spans survive okBuf reallocations, the subslices would not). The
	// buffers are allocated on the first fresh record so an all-duplicate
	// Put — the store-replay path — allocates nothing.
	var (
		buf   []byte
		keys  []Key
		ents  []entry
		spans []int
		okBuf []int
	)
	for _, r := range recs {
		if _, dup := s.idx[r.Key]; dup {
			continue
		}
		if err := validTally(r.Tally); err != nil {
			return err
		}
		if keys == nil {
			buf = append(make([]byte, 0, 64*len(recs)), segMagic...)
			keys = make([]Key, 0, len(recs))
			ents = make([]entry, 0, len(recs))
			spans = make([]int, 1, len(recs)+1)
			okBuf = make([]int, 0, 8*len(recs))
		}
		off := int64(len(buf))
		buf = appendRecord(buf, r)
		okBuf = append(okBuf, r.Tally.OK...)
		spans = append(spans, len(okBuf))
		keys = append(keys, r.Key)
		ents = append(ents, entry{tally: Tally{N: r.Tally.N}, seg: seg, off: off})
	}
	if len(keys) == 0 {
		return nil
	}
	final := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.seg", seg))
	if err := atomicWrite(final, buf, !s.noSync); err != nil {
		return err
	}
	s.nextSeg++
	for i, k := range keys {
		ents[i].tally.OK = okBuf[spans[i]:spans[i+1]:spans[i+1]]
		s.idx[k] = ents[i]
	}
	s.segs[seg] = &segInfo{bytes: int64(len(buf)), lastHit: now, keys: keys}
	s.total += int64(len(buf))
	s.evictLocked()
	return nil
}

// evictLocked removes least-recently-hit segments until the store fits
// its MaxBytes budget. Segments holding any pinned key are skipped, so a
// live job's restore set can never be collected out from under it; if
// everything over budget is pinned the store stays over budget.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.total > s.maxBytes {
		victim := -1
		var oldest time.Time
		for n, si := range s.segs {
			if s.segPinnedLocked(n, si) {
				continue
			}
			if victim < 0 || si.lastHit.Before(oldest) {
				victim, oldest = n, si.lastHit
			}
		}
		if victim < 0 {
			return
		}
		si := s.segs[victim]
		// Removal need not be durable: a crash that resurrects the file
		// just re-evicts it after the next Put.
		os.Remove(filepath.Join(s.dir, fmt.Sprintf("seg-%08d.seg", victim)))
		dropped := int64(0)
		for _, k := range si.keys {
			// A key can be re-homed by a later segment (post-eviction
			// recompute); only drop it if this segment still owns it.
			if e, ok := s.idx[k]; ok && e.seg == victim {
				delete(s.idx, k)
				dropped++
			}
		}
		delete(s.segs, victim)
		s.total -= si.bytes
		EvictedSegments.Inc()
		EvictedRecords.Add(dropped)
		EvictedBytes.Add(si.bytes)
	}
}

// segPinnedLocked reports whether segment n holds any pinned record.
func (s *Store) segPinnedLocked(n int, si *segInfo) bool {
	if len(s.pins) == 0 {
		return false
	}
	for _, k := range si.keys {
		if s.pins[k] > 0 {
			if e, ok := s.idx[k]; ok && e.seg == n {
				return true
			}
		}
	}
	return false
}

// Close releases the store. The index is memory-only and every segment
// is already durable, so this is currently a no-op kept for symmetry.
func (s *Store) Close() error { return nil }

// AtomicWrite writes data to path via a temp file in the same directory,
// renaming into place; with sync it fsyncs the data before the rename and
// the directory after. Exposed for sibling durable state (job manifests)
// that must share the store's crash-safety discipline.
func AtomicWrite(path string, data []byte, sync bool) error {
	return atomicWrite(path, data, sync)
}

func atomicWrite(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if sync {
		d, err := os.Open(dir)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer d.Close()
		if err := d.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}
