package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Key content-addresses one completed measurement point. See the package
// doc for the derivation; build one with KeyFor.
type Key [sha256.Size]byte

// Tally is the durable result for one point: packets attempted and the
// per-receiver-arm success counts.
type Tally struct {
	N  int
	OK []int
}

// Record pairs a key with its tally.
type Record struct {
	Key   Key
	Tally Tally
}

// Options configures Open.
type Options struct {
	// NoSync skips the fsync of segment data and of the directory on
	// every write. Tests and benches only: a crash can then lose or
	// tear acknowledged records (recovery still salvages the rest).
	NoSync bool
}

// RecoveryStats reports what Open found on disk.
type RecoveryStats struct {
	Segments        int // segment files scanned
	Records         int // intact records restored
	DamagedSegments int // segments with a torn tail, corrupt record, or bad magic
}

// Store is a content-addressed result store over one directory. All
// methods are safe for concurrent use.
type Store struct {
	dir    string
	noSync bool

	mu      sync.Mutex
	idx     map[Key]Tally
	nextSeg int
}

// KeyFor derives the content-address key for one sweep point:
// sha256("cpr-store|v1" | fingerprint | pool identity | identity).
// fingerprint is experiments.SweepPlan.Fingerprint(), identity the
// plan's PointIdentity for the point. Pool-less callers pass
// pooled=false (size and seed are then canonicalized to zero).
func KeyFor(fingerprint, identity string, pooled bool, poolSize int, poolSeed int64) Key {
	if !pooled {
		poolSize, poolSeed = 0, 0
	}
	h := sha256.New()
	h.Write([]byte("cpr-store|v1"))
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	var pool [17]byte
	if pooled {
		pool[0] = 1
	}
	binary.LittleEndian.PutUint64(pool[1:], uint64(poolSize))
	binary.LittleEndian.PutUint64(pool[9:], uint64(poolSeed))
	h.Write(pool[:])
	h.Write([]byte{0})
	h.Write([]byte(identity))
	var k Key
	h.Sum(k[:0])
	return k
}

// Open loads (creating if needed) the store at dir, salvaging every
// intact record from its segments. Damage is reported in RecoveryStats
// and counted in cpr_store_corrupt_records_total; it is never fatal.
func Open(dir string, opts Options) (*Store, RecoveryStats, error) {
	var stats RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, noSync: opts.NoSync, idx: make(map[Key]Tally)}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return nil, stats, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		if n := segNumber(name); n >= s.nextSeg {
			s.nextSeg = n + 1
		}
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, stats, fmt.Errorf("store: %w", err)
		}
		stats.Segments++
		rec, damaged := parseSegment(data, func(r Record) { s.idx[r.Key] = r.Tally })
		stats.Records += rec
		if damaged {
			stats.DamagedSegments++
			Corrupt.Inc()
		}
	}
	// Stray temp files are aborted writes from a previous life.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) > 0 {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	return s, stats, nil
}

// segNumber parses the numeric part of a "seg-<n>.seg" path, -1 if malformed.
func segNumber(path string) int {
	base := filepath.Base(path)
	base = strings.TrimPrefix(base, "seg-")
	base = strings.TrimSuffix(base, ".seg")
	n, err := strconv.Atoi(base)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// Get returns the stored tally for k. The returned OK slice is a copy.
func (s *Store) Get(k Key) (Tally, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.idx[k]
	if !ok {
		return Tally{}, false
	}
	out := Tally{N: t.N, OK: make([]int, len(t.OK))}
	copy(out.OK, t.OK)
	return out, true
}

// Len reports how many distinct points the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Put durably appends recs as one new segment, skipping keys already
// present (duplicate Puts are no-ops). The segment is written whole to a
// temp file, fsynced, renamed into place, and the directory fsynced —
// unless the store was opened with NoSync. OK slices are copied.
func (s *Store) Put(recs ...Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := append([]byte(nil), segMagic...)
	fresh := make([]Record, 0, len(recs))
	for _, r := range recs {
		if _, dup := s.idx[r.Key]; dup {
			continue
		}
		if err := validTally(r.Tally); err != nil {
			return err
		}
		buf = appendRecord(buf, r)
		fresh = append(fresh, r)
	}
	if len(fresh) == 0 {
		return nil
	}
	final := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.seg", s.nextSeg))
	if err := atomicWrite(final, buf, !s.noSync); err != nil {
		return err
	}
	s.nextSeg++
	for _, r := range fresh {
		ok := make([]int, len(r.Tally.OK))
		copy(ok, r.Tally.OK)
		s.idx[r.Key] = Tally{N: r.Tally.N, OK: ok}
	}
	return nil
}

// Close releases the store. The index is memory-only and every segment
// is already durable, so this is currently a no-op kept for symmetry.
func (s *Store) Close() error { return nil }

// AtomicWrite writes data to path via a temp file in the same directory,
// renaming into place; with sync it fsyncs the data before the rename and
// the directory after. Exposed for sibling durable state (job manifests)
// that must share the store's crash-safety discipline.
func AtomicWrite(path string, data []byte, sync bool) error {
	return atomicWrite(path, data, sync)
}

func atomicWrite(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if sync {
		d, err := os.Open(dir)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer d.Close()
		if err := d.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}
