package supervise

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
)

// Spawner abstracts "start one more worker". The supervisor decides
// when; the spawner decides how — a local process (LocalSpawner), an
// in-process dist.Worker (the tests' fake), or anything that can be
// started by name and observed until it exits.
type Spawner interface {
	// Spawn starts a worker that will join the fleet under the given
	// self-reported name. The name is how the supervisor later matches
	// the process against the coordinator's registry, so the spawned
	// worker MUST register with exactly this name.
	Spawn(name string) (Proc, error)
}

// Proc is a handle on one spawned worker's lifetime.
type Proc interface {
	// Done closes when the worker process has exited (for any reason).
	Done() <-chan struct{}
	// Err reports how it exited: nil for a clean exit, the failure
	// otherwise. Valid only after Done is closed.
	Err() error
	// Kill hard-stops the worker (SIGKILL-equivalent). Idempotent; used
	// to reap revoked workers and spawns that never register.
	Kill()
}

// LocalSpawner starts workers as local child processes: Command plus
// "-worker-name <name>" appended, typically the running cprecycle-bench
// binary with -worker flags. Each worker's combined stdout/stderr goes
// to <LogDir>/<name>.log and its pid to <LogDir>/<name>.pid (so smoke
// tests and operators can find, kill or SIGSTOP a specific spawn).
type LocalSpawner struct {
	// Command is the argv to run (Command[0] is the binary). Required.
	Command []string
	// LogDir receives per-worker .log and .pid files; created if
	// missing. Empty inherits the supervisor's stdout/stderr and writes
	// no pid files.
	LogDir string
}

func (s *LocalSpawner) Spawn(name string) (Proc, error) {
	if len(s.Command) == 0 {
		return nil, fmt.Errorf("supervise: LocalSpawner needs a command")
	}
	args := append(append([]string(nil), s.Command[1:]...), "-worker-name", name)
	cmd := exec.Command(s.Command[0], args...)
	var logf *os.File
	if s.LogDir != "" {
		if err := os.MkdirAll(s.LogDir, 0o755); err != nil {
			return nil, fmt.Errorf("supervise: %w", err)
		}
		f, err := os.Create(filepath.Join(s.LogDir, name+".log"))
		if err != nil {
			return nil, fmt.Errorf("supervise: %w", err)
		}
		logf = f
		cmd.Stdout = f
		cmd.Stderr = f
	} else {
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		if logf != nil {
			logf.Close()
		}
		return nil, fmt.Errorf("supervise: starting worker: %w", err)
	}
	if s.LogDir != "" {
		pid := []byte(strconv.Itoa(cmd.Process.Pid) + "\n")
		_ = os.WriteFile(filepath.Join(s.LogDir, name+".pid"), pid, 0o644)
	}
	p := &localProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		p.err = cmd.Wait()
		if logf != nil {
			logf.Close()
		}
		close(p.done)
	}()
	return p, nil
}

type localProc struct {
	cmd  *exec.Cmd
	done chan struct{}
	err  error // written before done closes
	kill sync.Once
}

func (p *localProc) Done() <-chan struct{} { return p.done }

func (p *localProc) Err() error {
	select {
	case <-p.done:
		return p.err
	default:
		return nil
	}
}

func (p *localProc) Kill() {
	p.kill.Do(func() { _ = p.cmd.Process.Kill() })
}
