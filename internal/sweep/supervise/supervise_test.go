package supervise

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/sweep/dist"
)

func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testSpec mirrors the dist package's reduced fig8 sweep: six points.
func testSpec() sweep.Spec {
	return sweep.Spec{Experiment: "fig8", Packets: 4, PSDUBytes: 60, Seed: 3, Axis: []float64{-10, -20}}
}

func directTable(t *testing.T, spec sweep.Spec) string {
	t.Helper()
	req, err := spec.Request(nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := experiments.RunSweepPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	return tb.Render()
}

func testCoordinator(t *testing.T, cfg dist.Config) (*dist.Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	cfg.Log = testLogger(t)
	c, err := dist.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, srv
}

// workerSpawner spawns real in-process dist.Workers that register under
// the supervisor-assigned name — the production shape of the fake.
type workerSpawner struct {
	t     *testing.T
	url   string
	token string

	mu    sync.Mutex
	count int
}

func (s *workerSpawner) Spawn(name string) (Proc, error) {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	w, err := dist.StartWorker(dist.WorkerConfig{
		Coordinator: s.url,
		Token:       s.token,
		ID:          name,
		Engine:      sweep.Config{Workers: 2, ShardPackets: 2},
		Heartbeat:   50 * time.Millisecond,
		RetryBase:   10 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
		Log:         testLogger(s.t),
	})
	if err != nil {
		return nil, err
	}
	return &workerProc{w: w}, nil
}

func (s *workerSpawner) spawned() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

type workerProc struct{ w *dist.Worker }

func (p *workerProc) Done() <-chan struct{} { return p.w.Done() }
func (p *workerProc) Err() error            { return nil }
func (p *workerProc) Kill()                 { p.w.Close() }

// crashSpawner hands out procs that have already died.
type crashSpawner struct {
	mu     sync.Mutex
	spawns []time.Time
}

func (s *crashSpawner) Spawn(name string) (Proc, error) {
	s.mu.Lock()
	s.spawns = append(s.spawns, time.Now())
	s.mu.Unlock()
	done := make(chan struct{})
	close(done)
	return &deadProc{done: done}, nil
}

func (s *crashSpawner) times() []time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Time(nil), s.spawns...)
}

type deadProc struct{ done chan struct{} }

func (p *deadProc) Done() <-chan struct{} { return p.done }
func (p *deadProc) Err() error            { return fmt.Errorf("exit status 1") }
func (p *deadProc) Kill()                 {}

func waitTable(t *testing.T, j *dist.Job) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table.Render()
}

// waitUntil polls cond every few milliseconds until it holds or the
// deadline kills the test.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func postJSON(t *testing.T, url, token, path string, body, out any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestSupervisorScalesAndCompletes is the happy path: an empty fleet, a
// submitted job, a supervisor that spawns workers up to its cap, the
// sweep completing byte-identically to the direct path, and the fleet
// scaling back to zero once idle.
func TestSupervisorScalesAndCompletes(t *testing.T) {
	spec := testSpec()
	want := directTable(t, spec)
	c, srv := testCoordinator(t, dist.Config{LeasePoints: 1, Token: "sup-secret"})
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	sp := &workerSpawner{t: t, url: srv.URL, token: "sup-secret"}
	s, err := Start(Config{
		Coordinator: srv.URL,
		Token:       "sup-secret",
		Spawner:     sp,
		MaxWorkers:  2,
		Interval:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if got := waitTable(t, j); got != want {
		t.Fatalf("supervised table differs from direct:\n%s\nvs\n%s", got, want)
	}
	if sp.spawned() == 0 {
		t.Fatal("supervisor completed the job without spawning anyone")
	}
	if sp.spawned() > 2 {
		t.Fatalf("supervisor spawned %d workers with MaxWorkers 2", sp.spawned())
	}
	// Idle fleet, MinWorkers 0: every worker must be drained away.
	waitUntil(t, 30*time.Second, "fleet to scale to zero", func() bool {
		for _, wi := range c.WorkerInfos() {
			if wi.State == workerActive || wi.State == workerDraining {
				return false
			}
		}
		return true
	})
	st := s.Stats()
	if st.Crashes != 0 {
		t.Fatalf("clean scale-down recorded %d crashes", st.Crashes)
	}
	if st.ScaleDowns == 0 {
		t.Fatal("fleet scaled to zero without a recorded scale-down")
	}
}

// TestSupervisorResumes is the chaos case the supervisor's
// statelessness exists for: a supervisor killed (no shutdown, workers
// orphaned) mid-scale-up and replaced. The successor must adopt the
// orphan rather than duplicate it — total spawns across both lives stay
// within the target — and the sweep still completes byte-identically.
func TestSupervisorResumes(t *testing.T) {
	spec := testSpec()
	spec.Packets = 16 // stretch the job so the handover happens mid-flight
	want := directTable(t, spec)
	c, srv := testCoordinator(t, dist.Config{LeasePoints: 1, Token: "sup-secret"})
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	sp1 := &workerSpawner{t: t, url: srv.URL, token: "sup-secret"}
	cfg := Config{
		Coordinator: srv.URL,
		Token:       "sup-secret",
		MaxWorkers:  2,
		Interval:    20 * time.Millisecond,
	}
	cfg.Spawner = sp1
	s1, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Let the first spawn register, then kill s1 mid-scale-up: its loop
	// stops dead but its workers are not shut down — they are now
	// orphans, exactly the kill -9 aftermath.
	waitUntil(t, 30*time.Second, "first worker to register", func() bool {
		for _, wi := range c.WorkerInfos() {
			if wi.State == workerActive {
				return true
			}
		}
		return false
	})
	s1.Close()

	sp2 := &workerSpawner{t: t, url: srv.URL, token: "sup-secret"}
	cfg.Spawner = sp2
	s2, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	if got := waitTable(t, j); got != want {
		t.Fatalf("table after supervisor handover differs from direct:\n%s\nvs\n%s", got, want)
	}
	// No duplicate spawns: the successor counted the orphan toward the
	// target, so both lives together never exceeded MaxWorkers.
	if total := sp1.spawned() + sp2.spawned(); total > 2 {
		t.Fatalf("two supervisor lives spawned %d workers for a target capped at 2", total)
	}
	waitUntil(t, 30*time.Second, "successor to converge", func() bool {
		return s2.Stats().Converges > 0 && s2.Stats().ConvergeErrors == 0
	})
	// The successor drains the fleet — including the adopted orphan —
	// once idle.
	waitUntil(t, 30*time.Second, "fleet to scale to zero", func() bool {
		for _, wi := range c.WorkerInfos() {
			if wi.State == workerActive || wi.State == workerDraining {
				return false
			}
		}
		return true
	})
}

// TestCrashLoopQuarantine pins the circuit breaker: a spawner whose
// workers die instantly is retried with (jittered, exponential,
// capped) backoff exactly CrashLimit times and then quarantined — no
// further spawns, a quarantine counter tick, and a
// supervisor-quarantine fleet event.
func TestCrashLoopQuarantine(t *testing.T) {
	c, srv := testCoordinator(t, dist.Config{Token: "sup-secret"})
	sp := &crashSpawner{}
	base := 20 * time.Millisecond
	s, err := Start(Config{
		Coordinator:      srv.URL,
		Token:            "sup-secret",
		Spawner:          sp,
		MinWorkers:       1, // demand without needing a job
		MaxWorkers:       2,
		Interval:         5 * time.Millisecond,
		CrashLimit:       4,
		CrashWindow:      time.Minute,
		Quarantine:       time.Hour, // never lifts inside the test
		SpawnBackoffBase: base,
		SpawnBackoffMax:  80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	waitUntil(t, 30*time.Second, "crash-loop quarantine", func() bool {
		return s.Stats().Quarantined
	})
	// Quarantined means quarantined: give the loop time to misbehave,
	// then check no spawn landed past the limit.
	time.Sleep(20 * s.cfg.Interval)
	st := s.Stats()
	if st.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", st.Quarantines)
	}
	if st.Crashes != 4 {
		t.Fatalf("crashes = %d, want exactly CrashLimit (4)", st.Crashes)
	}
	times := sp.times()
	if len(times) != 4 {
		t.Fatalf("spawn attempts = %d, want exactly CrashLimit (4)", len(times))
	}
	// Backoff bounds: after n recent crashes the next spawn waits at
	// least half of base·2^(n-1) (the jitter floor) and at most
	// SpawnBackoffMax plus scheduling slack.
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		floor := (base << (i - 1)) / 2
		if max := 80 * time.Millisecond; floor > max/2 {
			floor = max / 2
		}
		if gap < floor {
			t.Fatalf("spawn %d→%d gap %v under backoff floor %v", i-1, i, gap, floor)
		}
		if gap > 5*time.Second {
			t.Fatalf("spawn %d→%d gap %v absurdly over the 80ms cap", i-1, i, gap)
		}
	}
	past, _, cancel := c.SubscribeFleet(-1)
	cancel()
	found := false
	for _, ev := range past {
		if ev.Type == "supervisor-quarantine" {
			found = true
		}
	}
	if !found {
		t.Fatal("no supervisor-quarantine event in the fleet stream")
	}
}

// TestStuckDrainEscalation pins both prongs of the stuck detector
// against hand-driven workers, with the supervisor in observe-and-heal
// mode (no spawner):
//
//   - a worker that heartbeats its lease dutifully but never advances a
//     packet is drained as wedged, and when it ignores the drain for
//     StuckGrace the drain escalates to a revocation that re-queues its
//     lease;
//   - a worker that registers and then goes silent while the TTL
//     machinery sees nothing (no lease to expire) is drained as a
//     zombie.
func TestStuckDrainEscalation(t *testing.T) {
	c, srv := testCoordinator(t, dist.Config{
		LeasePoints: 1,
		LeaseTTL:    60 * time.Second, // TTL must NOT be what saves us
		LongPoll:    50 * time.Millisecond,
		Token:       "sup-secret",
	})
	if _, err := c.Submit(testSpec()); err != nil {
		t.Fatal(err)
	}

	// The wedged worker: registers, takes a lease, heartbeats forever
	// with zero packet progress, ignoring drain directives.
	var reg dist.RegisterResponse
	if status := postJSON(t, srv.URL, "sup-secret", "/v1/dist/register", dist.RegisterRequest{Worker: "wedged"}, &reg); status != http.StatusOK {
		t.Fatalf("registering wedged worker: HTTP %d", status)
	}
	var lease dist.LeaseResponse
	if status := postJSON(t, srv.URL, reg.Token, "/v1/dist/lease", dist.LeaseRequest{Worker: "wedged"}, &lease); status != http.StatusOK || lease.Lease == nil {
		t.Fatalf("wedged worker lease: HTTP %d, lease=%v", status, lease.Lease)
	}
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	revoked := make(chan struct{})
	go func() {
		var once sync.Once
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				var hr dist.HeartbeatResponse
				status := postJSON(t, srv.URL, reg.Token, "/v1/dist/heartbeat",
					dist.Heartbeat{Worker: "wedged", Lease: lease.Lease.ID, DonePackets: 0}, &hr)
				if status == http.StatusForbidden {
					once.Do(func() { close(revoked) })
					return
				}
			}
		}
	}()

	// The zombie: registers and is never heard from again.
	if status := postJSON(t, srv.URL, "sup-secret", "/v1/dist/register", dist.RegisterRequest{Worker: "zombie"}, new(dist.RegisterResponse)); status != http.StatusOK {
		t.Fatalf("registering zombie worker: HTTP %d", status)
	}

	s, err := Start(Config{
		Coordinator: srv.URL,
		Token:       "sup-secret",
		Interval:    20 * time.Millisecond,
		StuckAfter:  200 * time.Millisecond,
		StuckGrace:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	state := func(name string) string {
		for _, wi := range c.WorkerInfos() {
			if wi.Name == name {
				return wi.State
			}
		}
		return "gone"
	}
	waitUntil(t, 30*time.Second, "wedged worker to be drained", func() bool {
		return state("wedged") != workerActive
	})
	waitUntil(t, 30*time.Second, "wedged worker to be revoked", func() bool {
		return state("wedged") == workerRevoked
	})
	select {
	case <-revoked:
	case <-time.After(30 * time.Second):
		t.Fatal("revoked worker's heartbeats were never rejected with 403")
	}
	waitUntil(t, 30*time.Second, "zombie worker to be drained", func() bool {
		return state("zombie") != workerActive
	})
	st := s.Stats()
	if st.StuckDrains < 2 {
		t.Fatalf("stuck drains = %d, want ≥ 2 (wedged + zombie)", st.StuckDrains)
	}
	if st.StuckRevokes < 1 {
		t.Fatalf("stuck revokes = %d, want ≥ 1", st.StuckRevokes)
	}
	// The revocation re-queued the wedged lease; a real worker finishes
	// the sweep.
	past, _, cancel := c.SubscribeFleet(-1)
	cancel()
	var sawStuck bool
	for _, ev := range past {
		if ev.Type == "supervisor-stuck" {
			sawStuck = true
		}
	}
	if !sawStuck {
		t.Fatal("no supervisor-stuck event in the fleet stream")
	}
}
