package supervise

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/sweep/dist"
)

// coordClient is the supervisor's view of the coordinator: the
// join-secret-authenticated admin surface under /v1/dist/. Every method
// takes a context so converge passes can carry their own deadlines and
// Shutdown can keep working after the control loop's context died.
type coordClient struct {
	base  string
	token string
	http  *http.Client
}

func (c *coordClient) do(ctx context.Context, method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func (c *coordClient) stats(ctx context.Context) (dist.FleetStats, error) {
	var s dist.FleetStats
	status, err := c.do(ctx, http.MethodGet, "/v1/dist/stats", nil, &s)
	if err == nil && status != http.StatusOK {
		err = fmt.Errorf("supervise: GET /v1/dist/stats: HTTP %d", status)
	}
	return s, err
}

// workers pages through the full registry (newest first, as served).
func (c *coordClient) workers(ctx context.Context) ([]dist.WorkerInfo, error) {
	var out []dist.WorkerInfo
	cursor := ""
	for {
		path := "/v1/dist/workers?limit=500"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		var page api.List[dist.WorkerInfo]
		status, err := c.do(ctx, http.MethodGet, path, nil, &page)
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("supervise: GET /v1/dist/workers: HTTP %d", status)
		}
		out = append(out, page.Items...)
		if page.NextCursor == "" {
			return out, nil
		}
		cursor = page.NextCursor
	}
}

// workerAction POSTs a drain or revoke for one worker. 404 is not an
// error to the caller: the worker left between observe and actuate,
// which is the control loop's normal weather.
func (c *coordClient) workerAction(ctx context.Context, id, action string) error {
	status, err := c.do(ctx, http.MethodPost, "/v1/dist/workers/"+id+"/"+action, nil, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK && status != http.StatusNotFound {
		return fmt.Errorf("supervise: %s %s: HTTP %d", action, id, status)
	}
	return nil
}

// annotate injects a supervisor-* event into the fleet stream.
// Best-effort: an annotation that cannot land must never stall the
// control loop, so errors are returned for logging only.
func (c *coordClient) annotate(ctx context.Context, typ, worker, detail string) error {
	status, err := c.do(ctx, http.MethodPost, "/v1/dist/annotate",
		dist.AnnotateRequest{Type: typ, Worker: worker, Detail: detail}, nil)
	if err == nil && status != http.StatusOK {
		err = fmt.Errorf("supervise: annotate: HTTP %d", status)
	}
	return err
}

// events opens the fleet SSE stream, resuming after lastSeq when ≥ 0
// via Last-Event-ID. The caller owns the returned body.
func (c *coordClient) events(ctx context.Context, lastSeq int) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/dist/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if lastSeq >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastSeq))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("supervise: GET /v1/dist/events: HTTP %d", resp.StatusCode)
	}
	return resp.Body, nil
}
