package supervise

import (
	"bufio"
	"io"
	"strings"
)

// scanSSE reads a text/event-stream body line by line, calling emit for
// each "field: value" line and emit("", "") at each blank-line event
// boundary. It returns when the stream ends (nil on EOF, the read error
// otherwise). Only the subset of the SSE grammar the coordinator emits
// is handled: id, event and data fields plus comment lines (ignored).
func scanSSE(r io.Reader, emit func(field, value string)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			emit("", "")
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		default:
			field, value, _ := strings.Cut(line, ":")
			emit(field, strings.TrimPrefix(value, " "))
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return err
	}
	return nil
}
