// Package supervise is the dist tier's autoscaling supervisor: the
// control loop that turns the fleet primitives PR-by-PR hardening left
// behind (revocable tokens, graceful drain, adaptive lease estimates,
// the /v1/dist/events stream) into a self-driving fleet.
//
// # The control loop
//
// A Supervisor is a borg/k8s-shaped observe → decide → actuate loop
// over the coordinator's admin API. Each converge pass it
//
//   - observes: GET /v1/dist/stats (queue depth, in-flight leases, the
//     per-point latency EWMA, the fleet's pacing) and GET
//     /v1/dist/workers (the registry, including each worker's
//     point-progress age);
//   - decides: a target worker count — enough workers that the pending
//     queue drains in about Config.DrainTarget at the observed
//     per-point latency, clamped to [MinWorkers, MaxWorkers], one
//     worker per pending point while no latency estimate exists yet,
//     and MinWorkers when the fleet is idle (MinWorkers 0 scales to
//     zero);
//   - actuates: spawns through the pluggable Spawner when below target
//     (at most one spawn per pass, so each new worker registers and
//     re-shapes the stats before the next is committed), and drains the
//     least-loaded workers when above it.
//
// Passes run every Config.Interval, and immediately when the fleet SSE
// stream (GET /v1/dist/events, consumed with Last-Event-ID resume)
// reports a lifecycle event or a spawned process exits — the ticker is
// the fallback, the event stream the fast path.
//
// # Scale-down is always drain
//
// The supervisor never revokes a worker to shed capacity. Scale-down
// uses graceful drain exclusively: the victim finishes its in-flight
// lease, reports it, deregisters and exits, and no points re-queue. The
// two exceptions to "never revoke" are not scale-downs at all: a stuck
// worker that cannot complete its drain (below) is eventually cut off
// so its lease can requeue, and the registry entry of a worker whose
// spawned process this supervisor watched die is revoked on sight —
// the corpse cannot honour a drain, and revocation re-queues its lease
// immediately instead of waiting out the TTL.
//
// # Crash-loop circuit breaker
//
// Spawn failures and worker crashes (a spawned process exiting with an
// error, or exiting at all within CrashWindow of its spawn without
// being asked to) gate further spawning behind a jittered exponential
// backoff that grows with the number of recent crashes. CrashLimit
// crashes inside CrashWindow open the breaker: the supervisor
// quarantines spawning for Config.Quarantine — surfaced as the
// cpr_supervisor_quarantined gauge, a quarantines counter and a
// "supervisor-quarantine" fleet event — instead of respawning a doomed
// worker forever. When the quarantine lapses the crash history is
// forgiven and spawning half-opens again.
//
// # Stuck-lease detection
//
// The TTL machinery only catches workers that stop heartbeating. A
// worker can also wedge while heartbeating dutifully — deadlocked
// compute, a SIGSTOPped or livelocked process — which no timeout sees.
// The detector drains a worker in either of two states: its freshest
// lease has made zero point progress for Config.StuckAfter
// (WorkerInfo.LastProgressSec, fed by the coordinator's per-lease
// progress timestamps), or it is registered active with no lease and
// has not contacted the coordinator for StuckAfter beyond the fleet's
// long-poll bound (a zombie — a healthy idle worker re-polls every
// long-poll period). A worker already draining (scale-down or operator
// action) that goes equally silent joins the stuck set too: a healthy
// draining worker heartbeats its last lease or deregisters, so silence
// means the drain can never complete. A stuck worker that still has
// not left StuckGrace after detection cannot be cooperating; it is
// revoked so its lease re-queues immediately, and if it is one of ours
// the process is reaped.
//
// # Statelessness and resume
//
// The supervisor keeps no durable state. After kill -9 a restarted
// supervisor rebuilds its world view from GET /v1/dist/workers and the
// event stream: registered workers count toward the target no matter
// who spawned them, so orphans of a previous supervisor life are
// adopted rather than duplicated, and the fleet converges to the same
// target. (Only a spawn that had not yet registered at the moment of
// death can be transiently duplicated; the surplus drains on a later
// pass.)
//
// # Metrics
//
// Stats()/WritePrometheus expose the cpr_supervisor_* families:
// target/live worker gauges, spawn/spawn-failure/crash/quarantine and
// scale-down counters, stuck-drain and stuck-revoke counters, converge
// pass/error counters and the count of fleet events consumed.
// Instance-scoped, like the coordinator's cpr_dist_* series;
// cmd/cprecycle-bench -supervisor mounts them on its -obs endpoint.
package supervise

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"math"
	mrand "math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweep/dist"
)

// Config parameterises a Supervisor.
type Config struct {
	// Coordinator is the coordinator's base URL. Required.
	Coordinator string
	// Token is the fleet join secret; the supervisor speaks the
	// join-secret-authenticated admin surface (may be empty for open
	// coordinators).
	Token string
	// Spawner starts new workers. Nil runs the supervisor in
	// observe-and-heal mode: stuck detection and scale-down still act,
	// scale-up deficits are only logged.
	Spawner Spawner
	// MinWorkers/MaxWorkers clamp the target (defaults 0 and 4).
	// MinWorkers 0 lets an idle fleet scale to zero.
	MinWorkers int
	MaxWorkers int
	// Interval is the converge cadence (default 2s). Fleet events and
	// process exits trigger immediate passes regardless.
	Interval time.Duration
	// DrainTarget is the wall-clock the fleet should need to drain the
	// pending queue (default 30s): target ≈ queue × est-per-point ÷
	// DrainTarget. Smaller means more aggressive scale-up.
	DrainTarget time.Duration
	// StuckAfter is how long a lease may make zero point progress — or
	// an idle worker may go silent beyond the long-poll bound — before
	// the worker is drained as stuck (default 2m).
	StuckAfter time.Duration
	// StuckGrace is how long a stuck-drained worker gets to leave before
	// the drain is escalated to a revocation (default StuckAfter).
	StuckGrace time.Duration
	// CrashWindow/CrashLimit define the circuit breaker: CrashLimit
	// crashes within CrashWindow quarantine spawning (defaults 1m, 5).
	// An unrequested exit within CrashWindow of its spawn counts as a
	// crash even when clean — a worker that cannot stay up is a crash
	// loop whatever its exit status.
	CrashWindow time.Duration
	CrashLimit  int
	// Quarantine is how long the opened breaker suppresses spawning
	// before the crash history is forgiven (default 5m).
	Quarantine time.Duration
	// SpawnBackoffBase/SpawnBackoffMax bound the jittered exponential
	// backoff applied after crashes and spawn failures (defaults 1s,
	// 30s).
	SpawnBackoffBase time.Duration
	SpawnBackoffMax  time.Duration
	// RegisterGrace is how long a spawned process may take to appear in
	// the coordinator's registry. Until then it counts as live (so one
	// spawn is not doubled); past it, it is killed and counted as a
	// crash (default 30s, floored at 3× Interval).
	RegisterGrace time.Duration
	// HTTPClient overrides the default client (tests inject the
	// httptest transport). No client-level timeout: the SSE stream is
	// long-lived; converge calls carry per-request contexts.
	HTTPClient *http.Client
	// Log receives structured operational logs. Nil discards them.
	Log *slog.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.Coordinator == "" {
		return c, fmt.Errorf("supervise: supervisor needs a coordinator URL")
	}
	c.Coordinator = strings.TrimRight(c.Coordinator, "/")
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 4
	}
	if c.MinWorkers < 0 {
		c.MinWorkers = 0
	}
	if c.MinWorkers > c.MaxWorkers {
		c.MinWorkers = c.MaxWorkers
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.DrainTarget <= 0 {
		c.DrainTarget = 30 * time.Second
	}
	if c.StuckAfter <= 0 {
		c.StuckAfter = 2 * time.Minute
	}
	if c.StuckGrace <= 0 {
		c.StuckGrace = c.StuckAfter
	}
	if c.CrashWindow <= 0 {
		c.CrashWindow = time.Minute
	}
	if c.CrashLimit <= 0 {
		c.CrashLimit = 5
	}
	if c.Quarantine <= 0 {
		c.Quarantine = 5 * time.Minute
	}
	if c.SpawnBackoffBase <= 0 {
		c.SpawnBackoffBase = time.Second
	}
	if c.SpawnBackoffMax <= 0 {
		c.SpawnBackoffMax = 30 * time.Second
	}
	if c.RegisterGrace <= 0 {
		c.RegisterGrace = 30 * time.Second
	}
	if min := 3 * c.Interval; c.RegisterGrace < min {
		c.RegisterGrace = min
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	return c, nil
}

// procState tracks one spawn this supervisor life owns. Guarded by
// Supervisor.mu.
type procState struct {
	name     string
	proc     Proc
	spawned  time.Time
	draining bool // we asked the coordinator to drain it; a clean exit is expected
	killed   bool // we hard-killed it; any exit is expected
}

// Supervisor converges the fleet onto a demand-derived worker count.
// Start it with Start; stop the loop with Close (the fleet keeps
// running) or Shutdown (owned workers are drained first).
type Supervisor struct {
	cfg    Config
	log    *slog.Logger
	client *coordClient
	prefix string // life-unique spawn-name prefix
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	kick   chan struct{}

	mu               sync.Mutex
	procs            map[string]*procState // by worker name
	nameSeq          int
	crashTimes       []time.Time
	nextSpawnAt      time.Time
	quarantinedUntil time.Time
	stuckDrainedAt   map[string]time.Time // worker id → when stuck-drained
	lastTarget       int
	lastLive         int

	spawns         atomic.Int64
	spawnFailures  atomic.Int64
	crashes        atomic.Int64
	quarantines    atomic.Int64
	scaleDowns     atomic.Int64
	stuckDrains    atomic.Int64
	stuckRevokes   atomic.Int64
	converges      atomic.Int64
	convergeErrors atomic.Int64
	events         atomic.Int64
}

// Start validates cfg and starts the control loop and the fleet event
// watcher. The supervisor is immediately resumable state: its first
// pass adopts whatever workers the registry already holds.
func Start(cfg Config) (*Supervisor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, 3)
	if _, err := rand.Read(raw); err != nil {
		return nil, fmt.Errorf("supervise: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Supervisor{
		cfg:            cfg,
		log:            cfg.Log.With("component", "supervisor"),
		client:         &coordClient{base: cfg.Coordinator, token: cfg.Token, http: cfg.HTTPClient},
		prefix:         "sup-" + hex.EncodeToString(raw),
		ctx:            ctx,
		cancel:         cancel,
		kick:           make(chan struct{}, 1),
		procs:          make(map[string]*procState),
		stuckDrainedAt: make(map[string]time.Time),
	}
	s.wg.Add(2)
	go s.loop()
	go s.watchEvents()
	s.log.Info("supervisor started", "coordinator", cfg.Coordinator,
		"min", cfg.MinWorkers, "max", cfg.MaxWorkers, "interval", cfg.Interval,
		"stuck_after", cfg.StuckAfter)
	return s, nil
}

// Close stops the control loop without touching the fleet: workers keep
// running (statelessness is the point — a successor supervisor adopts
// them). Idempotent.
func (s *Supervisor) Close() {
	s.cancel()
	s.wg.Wait()
}

// Shutdown stops the control loop and then winds down every worker this
// life spawned: each is drained (graceful, in-flight leases finish) and
// waited for until ctx expires, when the stragglers are killed. Workers
// it merely adopted are left alone.
func (s *Supervisor) Shutdown(ctx context.Context) {
	s.Close()
	s.mu.Lock()
	owned := make(map[string]*procState, len(s.procs))
	for name, ps := range s.procs {
		owned[name] = ps
	}
	s.mu.Unlock()
	if len(owned) == 0 {
		return
	}
	if workers, err := s.client.workers(ctx); err == nil {
		for _, wi := range workers {
			if ps, ok := owned[wi.Name]; ok && wi.State == workerActive {
				ps.draining = true
				if err := s.client.workerAction(ctx, wi.ID, "drain"); err != nil {
					s.log.Warn("shutdown drain failed", "worker", wi.ID, "err", err)
				}
			}
		}
	} else {
		s.log.Warn("shutdown could not list workers; killing spawns", "err", err)
	}
	for name, ps := range owned {
		select {
		case <-ps.proc.Done():
		case <-ctx.Done():
			s.log.Warn("shutdown deadline passed, killing worker", "name", name)
			ps.proc.Kill()
		}
	}
}

// Kick requests an immediate converge pass (non-blocking; passes
// coalesce).
func (s *Supervisor) Kick() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// loop is the supervisor's life: converge, then sleep until the ticker,
// a kick, or shutdown.
func (s *Supervisor) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		s.converge()
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		case <-s.kick:
		}
	}
}

// action is one actuation (an HTTP call) decided under s.mu and run
// after it is released.
type action func(ctx context.Context)

// converge runs one observe → decide → actuate pass.
func (s *Supervisor) converge() {
	s.converges.Add(1)
	ctx, cancel := context.WithTimeout(s.ctx, 15*time.Second)
	defer cancel()
	st, err := s.client.stats(ctx)
	if err == nil {
		var workers []dist.WorkerInfo
		if workers, err = s.client.workers(ctx); err == nil {
			for _, act := range s.decide(st, workers, time.Now()) {
				act(ctx)
			}
			return
		}
	}
	if s.ctx.Err() == nil {
		s.convergeErrors.Add(1)
		s.log.Warn("converge pass could not observe the coordinator", "err", err)
	}
}

// decide computes this pass's actuations. It holds s.mu throughout and
// performs no I/O; every decision is returned as an action.
func (s *Supervisor) decide(st dist.FleetStats, workers []dist.WorkerInfo, now time.Time) []action {
	var acts []action
	s.mu.Lock()
	defer s.mu.Unlock()

	acts = append(acts, s.detectStuckLocked(workers, st, now)...)

	regByName := make(map[string]dist.WorkerInfo, len(workers))
	active := 0
	for _, wi := range workers {
		regByName[wi.Name] = wi
		if wi.State != workerActive {
			continue
		}
		if strings.HasPrefix(wi.Name, s.prefix+"-") {
			if _, alive := s.procs[wi.Name]; !alive {
				// This life spawned it and watched the process die; the
				// registry has not caught up (a kill -9'd worker reads as
				// "active" until its lease TTLs and it is pruned). Revoke
				// on sight: a dead process cannot honour a drain, and
				// revocation re-queues its lease now instead of at TTL
				// expiry. Not counted live, so its replacement can spawn
				// this pass.
				id := wi.ID
				s.log.Warn("revoking registry entry of dead spawned worker", "worker", id, "name", wi.Name)
				acts = append(acts, func(ctx context.Context) {
					if err := s.client.workerAction(ctx, id, "revoke"); err != nil {
						s.log.Warn("dead-worker revoke failed", "worker", id, "err", err)
					}
				})
				continue
			}
		}
		active++
	}

	// Reconcile owned processes against the registry: count the not yet
	// registered as live (so a fresh spawn is not doubled), kill spawns
	// that never registered within grace, reap revoked ones.
	pending := 0
	for name, ps := range s.procs {
		wi, registered := regByName[name]
		switch {
		case ps.killed:
		case !registered && now.Sub(ps.spawned) < s.cfg.RegisterGrace:
			pending++
		case !registered:
			ps.killed = true
			ps.proc.Kill()
			s.log.Warn("spawned worker never registered, killing", "name", name,
				"grace", s.cfg.RegisterGrace)
			s.recordCrashLocked(now, &acts)
		case wi.State == workerRevoked:
			// Cut off (stuck escalation or admin action): the process is
			// dead to the fleet either way; reap it.
			ps.killed = true
			ps.proc.Kill()
			s.log.Warn("reaping revoked worker", "name", name, "worker", wi.ID)
		}
	}

	live := active + pending
	target := s.targetFor(st)
	s.lastTarget, s.lastLive = target, live

	if live < target {
		acts = append(acts, s.scaleUpLocked(now)...)
	} else if live > target && active > 0 {
		acts = append(acts, s.scaleDownLocked(workers, live-target)...)
	}
	return acts
}

// targetFor maps fleet demand to a worker count: size the fleet so the
// pending queue drains in about DrainTarget at the observed per-point
// latency; one worker per pending point while no estimate exists (the
// first completed point seeds it); at least one worker while any lease
// is still in flight; MinWorkers when idle.
func (s *Supervisor) targetFor(st dist.FleetStats) int {
	t := 0
	switch {
	case st.QueueDepth == 0:
		// Nothing unleased. In-flight leases are already owned by live
		// workers; they only need the fleet to not scale to zero under
		// them (handled below).
	case st.LeaseEstSeconds <= 0:
		t = st.QueueDepth
	default:
		t = int(math.Ceil(float64(st.QueueDepth) * st.LeaseEstSeconds / s.cfg.DrainTarget.Seconds()))
	}
	if (st.QueueDepth > 0 || st.LeasesInflight > 0) && t < 1 {
		t = 1
	}
	if t < s.cfg.MinWorkers {
		t = s.cfg.MinWorkers
	}
	if t > s.cfg.MaxWorkers {
		t = s.cfg.MaxWorkers
	}
	return t
}

// scaleUpLocked commits at most one spawn: rate-limiting scale-up to
// one worker per pass lets each spawn register and re-shape the stats
// before more capacity is committed, and gives the crash-loop breaker a
// clean attempt boundary. Callers hold s.mu.
func (s *Supervisor) scaleUpLocked(now time.Time) []action {
	if s.cfg.Spawner == nil {
		s.log.Warn("below target but no spawner configured",
			"target", s.lastTarget, "live", s.lastLive)
		return nil
	}
	if !s.quarantinedUntil.IsZero() {
		if now.Before(s.quarantinedUntil) {
			return nil
		}
		// Half-open: the quarantine lapsed; forgive the crash history and
		// try again.
		s.quarantinedUntil = time.Time{}
		s.crashTimes = nil
		s.log.Info("quarantine lifted, resuming spawning")
	}
	if now.Before(s.nextSpawnAt) {
		return nil
	}
	s.nameSeq++
	name := fmt.Sprintf("%s-%d", s.prefix, s.nameSeq)
	proc, err := s.cfg.Spawner.Spawn(name)
	if err != nil {
		s.spawnFailures.Add(1)
		s.log.Warn("spawn failed", "name", name, "err", err)
		var acts []action
		s.recordCrashLocked(now, &acts)
		return acts
	}
	ps := &procState{name: name, proc: proc, spawned: now}
	s.procs[name] = ps
	s.spawns.Add(1)
	s.wg.Add(1)
	go s.watchProc(ps)
	s.log.Info("spawned worker", "name", name, "target", s.lastTarget, "live", s.lastLive)
	return []action{func(ctx context.Context) {
		if err := s.client.annotate(ctx, "supervisor-spawn", "", name); err != nil {
			s.log.Debug("annotate failed", "err", err)
		}
	}}
}

// scaleDownLocked drains the excess workers — always drain, never
// revoke: the victims finish their in-flight leases and nothing
// re-queues. Victims are the least disruptive first: fewest live
// leases, then least recent progress, then youngest. Callers hold s.mu.
func (s *Supervisor) scaleDownLocked(workers []dist.WorkerInfo, excess int) []action {
	cands := make([]dist.WorkerInfo, 0, len(workers))
	for _, wi := range workers {
		if wi.State == workerActive {
			cands = append(cands, wi)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Leases != cands[b].Leases {
			return cands[a].Leases < cands[b].Leases
		}
		return cands[a].AgeSec < cands[b].AgeSec
	})
	if excess > len(cands) {
		excess = len(cands)
	}
	var acts []action
	for _, wi := range cands[:excess] {
		if ps, ok := s.procs[wi.Name]; ok {
			ps.draining = true
		}
		s.scaleDowns.Add(1)
		s.log.Info("scaling down, draining worker", "worker", wi.ID, "name", wi.Name,
			"leases", wi.Leases, "target", s.lastTarget, "live", s.lastLive)
		id := wi.ID
		acts = append(acts, func(ctx context.Context) {
			if err := s.client.workerAction(ctx, id, "drain"); err != nil {
				s.log.Warn("drain failed", "worker", id, "err", err)
			}
		})
	}
	return acts
}

// detectStuckLocked finds workers the TTL machinery cannot see failing:
// heartbeating leases with zero point progress for StuckAfter, and
// active lease-less workers silent beyond the long-poll bound plus
// StuckAfter. Both are drained; a stuck worker still registered
// StuckGrace after its drain is escalated to a revocation so its lease
// re-queues. Callers hold s.mu.
func (s *Supervisor) detectStuckLocked(workers []dist.WorkerInfo, st dist.FleetStats, now time.Time) []action {
	var acts []action
	zombieAfter := s.cfg.StuckAfter.Seconds() + st.LongPollSec
	seen := make(map[string]bool, len(workers))
	for _, wi := range workers {
		seen[wi.ID] = true
		switch wi.State {
		case workerActive:
			wedged := wi.LastProgressSec > s.cfg.StuckAfter.Seconds()
			zombie := wi.Leases == 0 && wi.IdleSec > zombieAfter
			if !wedged && !zombie {
				continue
			}
			reason := "zero lease progress"
			if zombie {
				reason = "silent beyond long-poll bound"
			}
			s.stuckDrainedAt[wi.ID] = now
			s.stuckDrains.Add(1)
			s.log.Warn("stuck worker, draining", "worker", wi.ID, "name", wi.Name,
				"reason", reason, "last_progress_sec", wi.LastProgressSec, "idle_sec", wi.IdleSec)
			id, detail := wi.ID, fmt.Sprintf("drained %s: %s", wi.ID, reason)
			acts = append(acts, func(ctx context.Context) {
				if err := s.client.workerAction(ctx, id, "drain"); err != nil {
					s.log.Warn("stuck drain failed", "worker", id, "err", err)
				}
				if err := s.client.annotate(ctx, "supervisor-stuck", id, detail); err != nil {
					s.log.Debug("annotate failed", "err", err)
				}
			})
		case workerDraining:
			at, tracked := s.stuckDrainedAt[wi.ID]
			if !tracked {
				if wi.IdleSec <= zombieAfter {
					continue
				}
				// A drain this worker is not acting on — a scale-down or
				// operator drain of a worker that then wedged. Healthy
				// draining workers either heartbeat their last lease or
				// deregister; silence beyond the long-poll bound means
				// neither. Start the stuck clock; revocation follows at
				// StuckGrace.
				s.stuckDrainedAt[wi.ID] = now
				s.stuckDrains.Add(1)
				s.log.Warn("draining worker gone silent, starting stuck clock",
					"worker", wi.ID, "name", wi.Name, "idle_sec", wi.IdleSec)
				id, detail := wi.ID, fmt.Sprintf("draining worker %s silent beyond long-poll bound", wi.ID)
				acts = append(acts, func(ctx context.Context) {
					if err := s.client.annotate(ctx, "supervisor-stuck", id, detail); err != nil {
						s.log.Debug("annotate failed", "err", err)
					}
				})
				continue
			}
			if now.Sub(at) < s.cfg.StuckGrace {
				continue
			}
			// The one sanctioned revocation: a drain a wedged worker
			// cannot acknowledge would strand its lease until TTL —
			// forever, if it is still heartbeating. Cut it off.
			delete(s.stuckDrainedAt, wi.ID)
			s.stuckRevokes.Add(1)
			s.log.Warn("stuck worker ignored its drain, revoking", "worker", wi.ID, "name", wi.Name)
			id := wi.ID
			acts = append(acts, func(ctx context.Context) {
				if err := s.client.workerAction(ctx, id, "revoke"); err != nil {
					s.log.Warn("stuck revoke failed", "worker", id, "err", err)
				}
				if err := s.client.annotate(ctx, "supervisor-stuck", id, "revoked "+id+": drain not acknowledged"); err != nil {
					s.log.Debug("annotate failed", "err", err)
				}
			})
		default:
			delete(s.stuckDrainedAt, wi.ID)
		}
	}
	for id := range s.stuckDrainedAt {
		if !seen[id] {
			delete(s.stuckDrainedAt, id) // it left; the drain worked
		}
	}
	return acts
}

// recordCrashLocked folds one crash or spawn failure into the breaker:
// the recent-crash window slides, the next spawn backs off jittered-
// exponentially in the number of recent crashes, and at CrashLimit the
// breaker opens. Callers hold s.mu; actions are appended to *acts.
func (s *Supervisor) recordCrashLocked(now time.Time, acts *[]action) {
	s.crashes.Add(1)
	keep := s.crashTimes[:0]
	for _, t := range s.crashTimes {
		if now.Sub(t) <= s.cfg.CrashWindow {
			keep = append(keep, t)
		}
	}
	s.crashTimes = append(keep, now)
	n := len(s.crashTimes)
	d := s.cfg.SpawnBackoffBase << (n - 1)
	if d <= 0 || d > s.cfg.SpawnBackoffMax {
		d = s.cfg.SpawnBackoffMax
	}
	d = d/2 + time.Duration(mrand.Int63n(int64(d/2)+1))
	s.nextSpawnAt = now.Add(d)
	if n >= s.cfg.CrashLimit && s.quarantinedUntil.IsZero() {
		s.quarantinedUntil = now.Add(s.cfg.Quarantine)
		s.quarantines.Add(1)
		s.log.Error("crash loop detected, quarantining spawns",
			"crashes", n, "window", s.cfg.CrashWindow, "quarantine", s.cfg.Quarantine)
		detail := fmt.Sprintf("%d crashes in %s; spawning quarantined for %s", n, s.cfg.CrashWindow, s.cfg.Quarantine)
		*acts = append(*acts, func(ctx context.Context) {
			if err := s.client.annotate(ctx, "supervisor-quarantine", "", detail); err != nil {
				s.log.Debug("annotate failed", "err", err)
			}
		})
	}
}

// watchProc waits for one owned process to exit, applies crash
// accounting, and kicks the loop so replacement is immediate.
func (s *Supervisor) watchProc(ps *procState) {
	defer s.wg.Done()
	select {
	case <-s.ctx.Done():
		return
	case <-ps.proc.Done():
	}
	err := ps.proc.Err()
	now := time.Now()
	var acts []action
	s.mu.Lock()
	delete(s.procs, ps.name)
	uptime := now.Sub(ps.spawned)
	expected := ps.draining || ps.killed
	crash := !expected && (err != nil || uptime < s.cfg.CrashWindow)
	if crash {
		s.recordCrashLocked(now, &acts)
	}
	s.mu.Unlock()
	if crash {
		s.log.Warn("worker crashed", "name", ps.name, "uptime", uptime.Round(time.Millisecond), "err", err)
	} else {
		s.log.Info("worker exited", "name", ps.name, "uptime", uptime.Round(time.Millisecond), "err", err)
	}
	if len(acts) > 0 {
		ctx, cancel := context.WithTimeout(s.ctx, 10*time.Second)
		for _, act := range acts {
			act(ctx)
		}
		cancel()
	}
	s.Kick()
}

// watchEvents consumes the fleet SSE stream so lifecycle changes
// trigger immediate converge passes; the stream resumes with
// Last-Event-ID across reconnects. Purely an accelerant: with the
// stream down, the ticker still converges every Interval.
func (s *Supervisor) watchEvents() {
	defer s.wg.Done()
	lastSeq := -1
	for s.ctx.Err() == nil {
		err := s.streamEvents(&lastSeq)
		if s.ctx.Err() != nil {
			return
		}
		if err != nil {
			s.log.Debug("fleet event stream broke, reconnecting", "err", err)
		}
		select {
		case <-s.ctx.Done():
			return
		case <-time.After(s.cfg.Interval/2 + time.Duration(mrand.Int63n(int64(s.cfg.Interval/2)+1))):
		}
	}
}

// streamEvents consumes one connection's worth of fleet events,
// tracking the last seen seq for resume.
func (s *Supervisor) streamEvents(lastSeq *int) error {
	body, err := s.client.events(s.ctx, *lastSeq)
	if err != nil {
		return err
	}
	defer body.Close()
	var id, typ string
	return scanSSE(body, func(field, value string) {
		switch field {
		case "id":
			id = value
		case "event":
			typ = value
		case "":
			if typ == "" {
				return
			}
			if n, err := fmt.Sscanf(id, "%d", lastSeq); n != 1 || err != nil {
				// keep the previous resume point
			}
			s.events.Add(1)
			switch typ {
			case "worker-join", "worker-leave", "worker-drain", "worker-revoke",
				"lease-expire", "job-submit", "job-done", "job-failed":
				s.Kick()
			}
			id, typ = "", ""
		}
	})
}
