package supervise

import (
	"io"
	"time"

	"repro/internal/obs"
)

// Worker registry states as reported by WorkerInfo.State.
const (
	workerActive   = "active"
	workerDraining = "draining"
	workerRevoked  = "revoked"
)

// Stats is a point-in-time snapshot of the supervisor's control loop.
type Stats struct {
	// TargetWorkers/LiveWorkers are the last converge pass's computed
	// target and observed fleet size (registered active plus spawns not
	// yet registered).
	TargetWorkers int `json:"target_workers"`
	LiveWorkers   int `json:"live_workers"`
	// OwnedProcs is the number of processes this supervisor life spawned
	// that are still running.
	OwnedProcs int `json:"owned_procs"`
	// Quarantined reports whether the crash-loop breaker is open, and
	// QuarantineRemainingSec how long until spawning half-opens again.
	Quarantined            bool    `json:"quarantined"`
	QuarantineRemainingSec float64 `json:"quarantine_remaining_sec,omitempty"`
	// RecentCrashes is the crash count inside the sliding CrashWindow.
	RecentCrashes int `json:"recent_crashes"`

	Spawns         int64 `json:"spawns"`
	SpawnFailures  int64 `json:"spawn_failures"`
	Crashes        int64 `json:"crashes"`
	Quarantines    int64 `json:"quarantines"`
	ScaleDowns     int64 `json:"scale_downs"`
	StuckDrains    int64 `json:"stuck_drains"`
	StuckRevokes   int64 `json:"stuck_revokes"`
	Converges      int64 `json:"converges"`
	ConvergeErrors int64 `json:"converge_errors"`
	// Events counts fleet SSE events consumed from /v1/dist/events.
	Events int64 `json:"events"`
}

// Stats snapshots the supervisor.
func (s *Supervisor) Stats() Stats {
	now := time.Now()
	s.mu.Lock()
	st := Stats{
		TargetWorkers: s.lastTarget,
		LiveWorkers:   s.lastLive,
		OwnedProcs:    len(s.procs),
	}
	if !s.quarantinedUntil.IsZero() && now.Before(s.quarantinedUntil) {
		st.Quarantined = true
		st.QuarantineRemainingSec = s.quarantinedUntil.Sub(now).Seconds()
	}
	for _, t := range s.crashTimes {
		if now.Sub(t) <= s.cfg.CrashWindow {
			st.RecentCrashes++
		}
	}
	s.mu.Unlock()
	st.Spawns = s.spawns.Load()
	st.SpawnFailures = s.spawnFailures.Load()
	st.Crashes = s.crashes.Load()
	st.Quarantines = s.quarantines.Load()
	st.ScaleDowns = s.scaleDowns.Load()
	st.StuckDrains = s.stuckDrains.Load()
	st.StuckRevokes = s.stuckRevokes.Load()
	st.Converges = s.converges.Load()
	st.ConvergeErrors = s.convergeErrors.Load()
	st.Events = s.events.Load()
	return st
}

// WritePrometheus emits the cpr_supervisor_* families in Prometheus
// text exposition format. Instance-scoped, like the coordinator's
// cpr_dist_* series.
func (s *Supervisor) WritePrometheus(w io.Writer) {
	st := s.Stats()
	obs.WriteHeader(w, "cpr_supervisor_target_workers", "gauge", "Worker count the last converge pass aimed for.")
	obs.WriteSample(w, "cpr_supervisor_target_workers", float64(st.TargetWorkers))
	obs.WriteHeader(w, "cpr_supervisor_live_workers", "gauge", "Fleet size the last converge pass observed (registered active plus pending spawns).")
	obs.WriteSample(w, "cpr_supervisor_live_workers", float64(st.LiveWorkers))
	obs.WriteHeader(w, "cpr_supervisor_owned_procs", "gauge", "Worker processes spawned by this supervisor life that are still running.")
	obs.WriteSample(w, "cpr_supervisor_owned_procs", float64(st.OwnedProcs))
	obs.WriteHeader(w, "cpr_supervisor_quarantined", "gauge", "1 while the crash-loop breaker has spawning quarantined.")
	q := 0.0
	if st.Quarantined {
		q = 1
	}
	obs.WriteSample(w, "cpr_supervisor_quarantined", q)
	obs.WriteHeader(w, "cpr_supervisor_recent_crashes", "gauge", "Crashes and spawn failures inside the sliding crash window.")
	obs.WriteSample(w, "cpr_supervisor_recent_crashes", float64(st.RecentCrashes))

	obs.WriteHeader(w, "cpr_supervisor_spawns_total", "counter", "Workers spawned.")
	obs.WriteSample(w, "cpr_supervisor_spawns_total", float64(st.Spawns))
	obs.WriteHeader(w, "cpr_supervisor_spawn_failures_total", "counter", "Spawn attempts that failed outright.")
	obs.WriteSample(w, "cpr_supervisor_spawn_failures_total", float64(st.SpawnFailures))
	obs.WriteHeader(w, "cpr_supervisor_crashes_total", "counter", "Unrequested worker exits and spawn failures, as fed to the crash-loop breaker.")
	obs.WriteSample(w, "cpr_supervisor_crashes_total", float64(st.Crashes))
	obs.WriteHeader(w, "cpr_supervisor_quarantines_total", "counter", "Times the crash-loop breaker opened.")
	obs.WriteSample(w, "cpr_supervisor_quarantines_total", float64(st.Quarantines))
	obs.WriteHeader(w, "cpr_supervisor_scale_downs_total", "counter", "Workers drained to shed excess capacity.")
	obs.WriteSample(w, "cpr_supervisor_scale_downs_total", float64(st.ScaleDowns))
	obs.WriteHeader(w, "cpr_supervisor_stuck_drains_total", "counter", "Workers drained by the stuck-lease detector.")
	obs.WriteSample(w, "cpr_supervisor_stuck_drains_total", float64(st.StuckDrains))
	obs.WriteHeader(w, "cpr_supervisor_stuck_revokes_total", "counter", "Stuck drains escalated to revocation.")
	obs.WriteSample(w, "cpr_supervisor_stuck_revokes_total", float64(st.StuckRevokes))
	obs.WriteHeader(w, "cpr_supervisor_converges_total", "counter", "Converge passes run.")
	obs.WriteSample(w, "cpr_supervisor_converges_total", float64(st.Converges))
	obs.WriteHeader(w, "cpr_supervisor_converge_errors_total", "counter", "Converge passes that could not observe the coordinator.")
	obs.WriteSample(w, "cpr_supervisor_converge_errors_total", float64(st.ConvergeErrors))
	obs.WriteHeader(w, "cpr_supervisor_events_total", "counter", "Fleet SSE events consumed.")
	obs.WriteSample(w, "cpr_supervisor_events_total", float64(st.Events))
}
