package history

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/sweep/store"
)

// Handler mounts the read-only history query surface over ix and st:
//
//	GET /v1/history/experiments        per-experiment run summaries
//	GET /v1/history/sweeps             recorded sweeps, newest first;
//	                                   ?experiment= ?fingerprint=
//	                                   ?since=UNIX ?until=UNIX filters,
//	                                   ?limit=/?cursor= pagination
//	GET /v1/history/sweeps/{fp}/table  the stored sweep reassembled into
//	                                   its standard rendered table
//	                                   (byte-identical to the live
//	                                   /v1/jobs/{id}/table output)
//	GET /v1/history/diff?a=FP&b=FP     per-point tally deltas between two
//	                                   recorded sweeps
//
// Errors use the shared envelope: 404 unknown fingerprint, 409 when a
// table has store gaps (evicted or never-stored points, indices listed)
// or the binary plans a recorded spec differently (version skew), 400
// bad parameters. The surface is read-only by construction — callers
// mount it behind the same bearer auth as the rest of /v1.
func Handler(ix *Index, st *store.Store) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/history/experiments", func(w http.ResponseWriter, r *http.Request) {
		Queries.Inc()
		_ = api.WriteJSON(w, http.StatusOK, ix.Experiments())
	})

	mux.HandleFunc("GET /v1/history/sweeps", func(w http.ResponseWriter, r *http.Request) {
		Queries.Inc()
		p, err := api.ParsePage(r, 100, 1000)
		if err != nil {
			api.Error(w, http.StatusBadRequest, err)
			return
		}
		f := Filter{
			Experiment:  r.URL.Query().Get("experiment"),
			Fingerprint: r.URL.Query().Get("fingerprint"),
		}
		if f.Since, err = unixParam(r, "since"); err != nil {
			api.Error(w, http.StatusBadRequest, err)
			return
		}
		if f.Until, err = unixParam(r, "until"); err != nil {
			api.Error(w, http.StatusBadRequest, err)
			return
		}
		_ = api.WriteJSON(w, http.StatusOK, api.Paginate(ix.Sweeps(f), p))
	})

	mux.HandleFunc("GET /v1/history/sweeps/{fp}/table", func(w http.ResponseWriter, r *http.Request) {
		Queries.Inc()
		tb, err := ix.Table(r.PathValue("fp"), st)
		if err != nil {
			writeHistoryErr(w, err)
			return
		}
		// Identical rendering to the live jobs table handler, so a stored
		// sweep's table is byte-for-byte the one the original run served.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tb.Render())
	})

	mux.HandleFunc("GET /v1/history/diff", func(w http.ResponseWriter, r *http.Request) {
		Queries.Inc()
		a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
		if a == "" || b == "" {
			api.Errorf(w, http.StatusBadRequest, "diff needs ?a=FINGERPRINT&b=FINGERPRINT")
			return
		}
		d, err := ix.CompareSweeps(a, b, st)
		if err != nil {
			writeHistoryErr(w, err)
			return
		}
		_ = api.WriteJSON(w, http.StatusOK, d)
	})

	return mux
}

// writeHistoryErr maps the package's typed errors onto envelope statuses.
func writeHistoryErr(w http.ResponseWriter, err error) {
	var missing *MissingPointsError
	switch {
	case errors.Is(err, ErrUnknownFingerprint):
		api.Error(w, http.StatusNotFound, err)
	case errors.As(err, &missing), errors.Is(err, ErrStalePlan):
		api.Error(w, http.StatusConflict, err)
	default:
		api.Error(w, http.StatusInternalServerError, err)
	}
}

// unixParam parses an optional Unix-seconds query parameter.
func unixParam(r *http.Request, name string) (int64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: want Unix seconds", name, s)
	}
	return n, nil
}
