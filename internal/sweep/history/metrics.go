package history

import "repro/internal/obs"

// History metrics follow the repo-wide cpr_ naming scheme (see
// internal/obs): cpr_history_* counts index writes and query traffic.
var (
	RunsRecorded = obs.NewCounter("cpr_history_runs_recorded_total",
		"Sweep submissions recorded in the history index.")
	Queries = obs.NewCounter("cpr_history_queries_total",
		"GET /v1/history/* requests served (all endpoints).")
	TableBuilds = obs.NewCounter("cpr_history_table_builds_total",
		"Stored sweeps reassembled into tables without re-running.")
	Diffs = obs.NewCounter("cpr_history_diffs_total",
		"Point-by-point sweep diffs computed.")
)
