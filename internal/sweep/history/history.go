// Package history is the results-history index over the content-addressed
// result store (internal/sweep/store): a small, persistent, incrementally
// maintained record of which sweeps ran — experiment id, plan fingerprint,
// normalised spec, pool identity, run times — that powers the read-only
// GET /v1/history/* query surface (see Handler).
//
// The index is deliberately separate from the store. The store holds
// per-point tallies keyed by content address and answers "is this exact
// point done?"; it has no notion of a sweep. The history index holds one
// entry per distinct plan fingerprint ever submitted and remembers enough
// of the spec to rebuild that plan later, so stored sweeps can be listed,
// re-assembled into their tables (Table) and compared point-by-point
// (Diff) without re-running a packet and without scanning segment
// payloads: plans are rebuilt from specs (planning draws no waveforms),
// keys are recomputed, and tallies come from the store's in-memory index.
//
// Persistence is a JSON-lines sidecar, history.jsonl, in the store
// directory: one line per recorded run, appended (and fsynced unless
// Options.NoSync) at submission. Reopening replays the lines; unparsable
// lines — a torn tail from a crash mid-append, a foreign file — are
// skipped, never fatal, mirroring the store's salvage discipline. Like
// the store, the index never reads the wall clock: callers pass run
// times into Record.
package history

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/sweep/store"
	"repro/internal/wifi"
)

// indexFile is the sidecar's name inside the store directory.
const indexFile = "history.jsonl"

// Sweep is one distinct sweep plan the index has seen: the aggregate of
// every run that fingerprinted identically.
type Sweep struct {
	Experiment  string     `json:"experiment"`
	Fingerprint string     `json:"fingerprint"`
	Spec        sweep.Spec `json:"spec"`
	// Points is the plan's measurement-point count.
	Points int `json:"points"`
	// PoolSize/PoolSeed are the waveform-pool identity the runs keyed
	// their stored tallies under (zero for pool-less sweeps).
	PoolSize int   `json:"pool_size,omitempty"`
	PoolSeed int64 `json:"pool_seed,omitempty"`
	// Runs counts recorded submissions of this exact plan.
	Runs int `json:"runs"`
	// FirstRunUnix/LastRunUnix bracket those submissions (caller clock,
	// Unix seconds).
	FirstRunUnix int64 `json:"first_run_unix"`
	LastRunUnix  int64 `json:"last_run_unix"`
}

// ExperimentSummary aggregates every sweep of one experiment id.
type ExperimentSummary struct {
	Experiment string `json:"experiment"`
	// Sweeps counts distinct plan fingerprints seen for the experiment.
	Sweeps int `json:"sweeps"`
	// Runs sums recorded submissions across those sweeps.
	Runs int `json:"runs"`
	// LatestFingerprint is the fingerprint of the most recently run sweep.
	LatestFingerprint string `json:"latest_fingerprint"`
	LastRunUnix       int64  `json:"last_run_unix"`
}

// Options configures Open.
type Options struct {
	// NoSync skips fsync on appends (tests).
	NoSync bool
}

// runLine is the JSONL wire form of one recorded run.
type runLine struct {
	V           int        `json:"v"`
	Fingerprint string     `json:"fp"`
	Spec        sweep.Spec `json:"spec"`
	Points      int        `json:"points"`
	PoolSize    int        `json:"pool_size,omitempty"`
	PoolSeed    int64      `json:"pool_seed,omitempty"`
	Unix        int64      `json:"unix"`
}

// planInfo caches one fingerprint's rebuilt plan and derived identities.
type planInfo struct {
	plan *experiments.SweepPlan
	keys []store.Key
	ids  []string
}

// Index is the in-memory history, mirrored to history.jsonl.
type Index struct {
	mu     sync.Mutex
	path   string
	noSync bool
	sweeps map[string]*Sweep    // by fingerprint
	plans  map[string]*planInfo // lazy rebuilt-plan cache, by fingerprint
}

// Open loads (creating if absent) the history index sidecar in dir —
// normally the store directory, so index and store travel together.
// Unparsable lines are counted in skipped and otherwise ignored.
func Open(dir string, opts Options) (*Index, int, error) {
	ix := &Index{
		path:   filepath.Join(dir, indexFile),
		noSync: opts.NoSync,
		sweeps: make(map[string]*Sweep),
		plans:  make(map[string]*planInfo),
	}
	f, err := os.Open(ix.path)
	if errors.Is(err, os.ErrNotExist) {
		return ix, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("history: %w", err)
	}
	defer f.Close()
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var l runLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil || l.V != 1 || l.Fingerprint == "" {
			skipped++ // torn tail or foreign line: salvage the rest
			continue
		}
		ix.absorb(l)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("history: reading %s: %w", ix.path, err)
	}
	return ix, skipped, nil
}

// absorb folds one run line into the in-memory aggregate.
func (ix *Index) absorb(l runLine) {
	s := ix.sweeps[l.Fingerprint]
	if s == nil {
		s = &Sweep{
			Experiment:   l.Spec.Experiment,
			Fingerprint:  l.Fingerprint,
			Spec:         l.Spec,
			Points:       l.Points,
			PoolSize:     l.PoolSize,
			PoolSeed:     l.PoolSeed,
			FirstRunUnix: l.Unix,
			LastRunUnix:  l.Unix,
		}
		ix.sweeps[l.Fingerprint] = s
	}
	s.Runs++
	if l.Unix < s.FirstRunUnix {
		s.FirstRunUnix = l.Unix
	}
	if l.Unix >= s.LastRunUnix {
		// A fingerprint hashes point identities, which exclude the pool,
		// so pooled and pool-less runs of one spec share it while keying
		// their stored tallies apart. The index keeps one entry per
		// fingerprint; the latest run's spec and pool identity win, and
		// Table/Diff address that variant's records.
		s.LastRunUnix = l.Unix
		s.Spec = l.Spec
		s.PoolSize, s.PoolSeed = l.PoolSize, l.PoolSeed
	}
}

// Record notes one submission of spec at the caller-supplied time (the
// index, like the store, never reads the wall clock itself). The plan is
// rebuilt to derive its fingerprint — planning draws no waveforms, so
// this costs string formatting, not IFFTs. poolSize/poolSeed are the
// engine's resolved pool identity; they are canonicalised to zero for
// pool-less specs exactly as store.KeyFor does. Returns the fingerprint.
func (ix *Index) Record(spec sweep.Spec, poolSize int, poolSeed int64, now time.Time) (string, error) {
	spec = spec.Normalised()
	if !spec.Pool {
		poolSize, poolSeed = 0, 0
	}
	pi, err := buildPlan(spec, poolSize, poolSeed)
	if err != nil {
		return "", err
	}
	fp := pi.plan.Fingerprint()
	l := runLine{
		V:           1,
		Fingerprint: fp,
		Spec:        spec,
		Points:      len(pi.plan.Points),
		PoolSize:    poolSize,
		PoolSeed:    poolSeed,
		Unix:        now.Unix(),
	}
	line, err := json.Marshal(l)
	if err != nil {
		return "", err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	f, err := os.OpenFile(ix.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return "", fmt.Errorf("history: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return "", fmt.Errorf("history: %w", err)
	}
	if !ix.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return "", fmt.Errorf("history: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("history: %w", err)
	}
	ix.absorb(l)
	ix.plans[fp] = pi
	RunsRecorded.Inc()
	return fp, nil
}

// Filter narrows Sweeps listings. Zero values match everything.
type Filter struct {
	Experiment  string
	Fingerprint string
	// Since/Until bound LastRunUnix inclusively; zero means unbounded.
	Since int64
	Until int64
}

// Sweeps lists the recorded sweeps matching f, most recently run first
// (ties broken by fingerprint for a stable order).
func (ix *Index) Sweeps(f Filter) []Sweep {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make([]Sweep, 0, len(ix.sweeps))
	for _, s := range ix.sweeps {
		if f.Experiment != "" && s.Experiment != f.Experiment {
			continue
		}
		if f.Fingerprint != "" && s.Fingerprint != f.Fingerprint {
			continue
		}
		if f.Since != 0 && s.LastRunUnix < f.Since {
			continue
		}
		if f.Until != 0 && s.LastRunUnix > f.Until {
			continue
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LastRunUnix != out[j].LastRunUnix {
			return out[i].LastRunUnix > out[j].LastRunUnix
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Experiments summarises the index per experiment id, sorted by id.
func (ix *Index) Experiments() []ExperimentSummary {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	byExp := make(map[string]*ExperimentSummary)
	for _, s := range ix.sweeps {
		e := byExp[s.Experiment]
		if e == nil {
			e = &ExperimentSummary{Experiment: s.Experiment}
			byExp[s.Experiment] = e
		}
		e.Sweeps++
		e.Runs += s.Runs
		if s.LastRunUnix > e.LastRunUnix || e.LatestFingerprint == "" {
			e.LastRunUnix = s.LastRunUnix
			e.LatestFingerprint = s.Fingerprint
		}
	}
	out := make([]ExperimentSummary, 0, len(byExp))
	for _, e := range byExp {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Experiment < out[j].Experiment })
	return out
}

// Lookup returns the recorded sweep for a fingerprint.
func (ix *Index) Lookup(fp string) (Sweep, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	s, ok := ix.sweeps[fp]
	if !ok {
		return Sweep{}, false
	}
	return *s, true
}

// ErrUnknownFingerprint reports a fingerprint the index has never seen.
var ErrUnknownFingerprint = errors.New("history: unknown sweep fingerprint")

// ErrStalePlan reports that rebuilding a recorded spec no longer yields
// the recorded fingerprint — the binary plans differently than the one
// that ran the sweep (version skew), so its stored points cannot be
// addressed. The same guard the distributed tier applies to leases.
var ErrStalePlan = errors.New("history: recorded spec no longer plans to its recorded fingerprint (version skew)")

// MissingPointsError reports stored-sweep reassembly that found gaps:
// points of the plan the store does not (or no longer) hold(s) — never
// written, or evicted by the store's GC.
type MissingPointsError struct {
	Fingerprint string
	Indices     []int // plan point indices, ascending
	Total       int   // plan point count
}

func (e *MissingPointsError) Error() string {
	return fmt.Sprintf("history: sweep %s: %d of %d points not in store (indices %v)",
		e.Fingerprint, len(e.Indices), e.Total, e.Indices)
}

// buildPlan rebuilds spec's plan with a never-encoded placeholder pool
// (planning draws no waveforms; pool entries encode lazily) and derives
// its content-address keys and point identities.
func buildPlan(spec sweep.Spec, poolSize int, poolSeed int64) (*planInfo, error) {
	var pool *wifi.WaveformPool
	if spec.Pool {
		pool = wifi.NewWaveformPool(poolSize, poolSeed)
	}
	req, err := spec.Request(pool)
	if err != nil {
		return nil, err
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		return nil, err
	}
	pi := &planInfo{
		plan: plan,
		keys: sweep.PlanKeys(plan, spec.Pool, poolSize, poolSeed),
		ids:  make([]string, len(plan.Points)),
	}
	for i := range plan.Points {
		pi.ids[i] = plan.PointIdentity(i)
	}
	return pi, nil
}

// planFor returns the (cached) rebuilt plan for a recorded fingerprint,
// verifying the rebuild still fingerprints identically.
func (ix *Index) planFor(fp string) (*planInfo, error) {
	ix.mu.Lock()
	if pi, ok := ix.plans[fp]; ok {
		ix.mu.Unlock()
		return pi, nil
	}
	s, ok := ix.sweeps[fp]
	if !ok {
		ix.mu.Unlock()
		return nil, ErrUnknownFingerprint
	}
	spec, size, seed := s.Spec, s.PoolSize, s.PoolSeed
	ix.mu.Unlock()

	pi, err := buildPlan(spec, size, seed)
	if err != nil {
		return nil, err
	}
	if got := pi.plan.Fingerprint(); got != fp {
		return nil, fmt.Errorf("%w: recorded %s, rebuilt %s", ErrStalePlan, fp, got)
	}
	ix.mu.Lock()
	ix.plans[fp] = pi
	ix.mu.Unlock()
	return pi, nil
}

// Table reassembles the recorded sweep fp into its standard table from
// stored tallies alone — no packets run, no segment payloads read (the
// store answers from its in-memory index). Returns ErrUnknownFingerprint
// for fingerprints never recorded and a *MissingPointsError naming the
// exact gaps when the store holds only part of the sweep.
func (ix *Index) Table(fp string, st *store.Store) (*experiments.Table, error) {
	pi, err := ix.planFor(fp)
	if err != nil {
		return nil, err
	}
	results := make([][]experiments.PSRPoint, len(pi.plan.Points))
	var missing []int
	for i, key := range pi.keys {
		tl, ok := st.Get(key)
		if !ok {
			missing = append(missing, i)
			continue
		}
		cfg := pi.plan.Points[i].Cfg
		if tl.N != cfg.Packets || len(tl.OK) != len(cfg.Receivers) {
			// A key collision cannot do this; a mispatched store can.
			return nil, fmt.Errorf("history: sweep %s point %d: stored tally shape %d/%d arms, plan wants %d/%d",
				fp, i, tl.N, len(tl.OK), cfg.Packets, len(cfg.Receivers))
		}
		pts := make([]experiments.PSRPoint, len(cfg.Receivers))
		for a, kind := range cfg.Receivers {
			pts[a] = experiments.PSRPoint{Kind: kind, OK: tl.OK[a], N: tl.N}
		}
		results[i] = pts
	}
	if missing != nil {
		return nil, &MissingPointsError{Fingerprint: fp, Indices: missing, Total: len(pi.keys)}
	}
	TableBuilds.Inc()
	return pi.plan.Assemble(results)
}

// ArmDelta is one receiver arm's tally difference at a shared point.
type ArmDelta struct {
	Arm string `json:"arm"`
	OKA int    `json:"ok_a"`
	OKB int    `json:"ok_b"`
	// Delta is OKB-OKA.
	Delta int `json:"delta"`
}

// DiffPoint is one shared measurement point whose stored tallies differ.
type DiffPoint struct {
	Identity string     `json:"identity"`
	IndexA   int        `json:"index_a"`
	IndexB   int        `json:"index_b"`
	NA       int        `json:"n_a"`
	NB       int        `json:"n_b"`
	Arms     []ArmDelta `json:"arms,omitempty"`
}

// Diff compares two recorded sweeps point-by-point from the store.
type Diff struct {
	A string `json:"a"`
	B string `json:"b"`
	// Shared counts points present in both plans (matched by identity).
	Shared int `json:"shared"`
	// OnlyA/OnlyB list point identities exclusive to one plan — the
	// explicit report of mismatched point sets.
	OnlyA []string `json:"only_a,omitempty"`
	OnlyB []string `json:"only_b,omitempty"`
	// MissingA/MissingB list shared identities whose tally the store
	// lacks on that side (never stored, or evicted).
	MissingA []string `json:"missing_a,omitempty"`
	MissingB []string `json:"missing_b,omitempty"`
	// Points lists the shared, both-stored points whose tallies differ.
	Points []DiffPoint `json:"points,omitempty"`
	// Equal: identical point sets, every point stored on both sides,
	// zero tally deltas.
	Equal bool `json:"equal"`
}

// CompareSweeps diffs the stored tallies of two recorded sweeps. Points
// are matched across the plans by identity, so sweeps over different
// axes/arms report their exclusive points in OnlyA/OnlyB rather than
// failing. Like Table, it reads only in-memory indexes.
func (ix *Index) CompareSweeps(a, b string, st *store.Store) (*Diff, error) {
	pa, err := ix.planFor(a)
	if err != nil {
		return nil, fmt.Errorf("sweep a: %w", err)
	}
	pb, err := ix.planFor(b)
	if err != nil {
		return nil, fmt.Errorf("sweep b: %w", err)
	}
	ixB := make(map[string]int, len(pb.ids))
	for j, id := range pb.ids {
		ixB[id] = j
	}
	d := &Diff{A: a, B: b}
	seenB := make(map[int]bool, len(pb.ids))
	for i, id := range pa.ids {
		j, ok := ixB[id]
		if !ok {
			d.OnlyA = append(d.OnlyA, id)
			continue
		}
		seenB[j] = true
		d.Shared++
		ta, okA := st.Get(pa.keys[i])
		tb, okB := st.Get(pb.keys[j])
		if !okA {
			d.MissingA = append(d.MissingA, id)
		}
		if !okB {
			d.MissingB = append(d.MissingB, id)
		}
		if !okA || !okB {
			continue
		}
		dp := DiffPoint{Identity: id, IndexA: i, IndexB: j, NA: ta.N, NB: tb.N}
		arms := pa.plan.Points[i].Cfg.Receivers
		differ := ta.N != tb.N || len(ta.OK) != len(tb.OK)
		for x := 0; x < len(ta.OK) && x < len(tb.OK); x++ {
			if ta.OK[x] != tb.OK[x] {
				differ = true
			}
			name := fmt.Sprintf("arm%d", x)
			if x < len(arms) {
				name = arms[x].String()
			}
			if ta.OK[x] != tb.OK[x] {
				dp.Arms = append(dp.Arms, ArmDelta{Arm: name, OKA: ta.OK[x], OKB: tb.OK[x], Delta: tb.OK[x] - ta.OK[x]})
			}
		}
		if differ {
			d.Points = append(d.Points, dp)
		}
	}
	for j, id := range pb.ids {
		if !seenB[j] {
			d.OnlyB = append(d.OnlyB, id)
		}
	}
	d.Equal = len(d.OnlyA) == 0 && len(d.OnlyB) == 0 &&
		len(d.MissingA) == 0 && len(d.MissingB) == 0 && len(d.Points) == 0
	Diffs.Inc()
	return d, nil
}
