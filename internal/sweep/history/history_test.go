package history

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

// testNow mirrors the store tests: the index takes time from callers,
// never from time.Now.
var testNow = time.Unix(1700000000, 0)

// smallSpec is a cheap two-point sweep: planning it draws no waveforms,
// so tests stay fast even though the experiment is real.
func smallSpec() sweep.Spec {
	return sweep.Spec{Experiment: "fig5", Packets: 8, PSDUBytes: 40, Seed: 3, Axis: []float64{0, 5}}
}

func openAll(t *testing.T) (*Index, *store.Store, string) {
	t.Helper()
	dir := t.TempDir()
	ix, skipped, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("fresh index skipped %d lines", skipped)
	}
	st, _, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return ix, st, dir
}

// fillStore Puts a deterministic synthetic tally for every point of fp's
// plan, exactly shaped to the plan, and returns the tallies.
func fillStore(t *testing.T, ix *Index, st *store.Store, fp string) [][]experiments.PSRPoint {
	t.Helper()
	pi, err := ix.planFor(fp)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]experiments.PSRPoint, len(pi.plan.Points))
	for i, key := range pi.keys {
		cfg := pi.plan.Points[i].Cfg
		ok := make([]int, len(cfg.Receivers))
		pts := make([]experiments.PSRPoint, len(cfg.Receivers))
		for a := range ok {
			ok[a] = (i + a) % (cfg.Packets + 1)
			pts[a] = experiments.PSRPoint{Kind: cfg.Receivers[a], OK: ok[a], N: cfg.Packets}
		}
		if err := st.Put(testNow, store.Record{Key: key, Tally: store.Tally{N: cfg.Packets, OK: ok}}); err != nil {
			t.Fatal(err)
		}
		results[i] = pts
	}
	return results
}

func TestRecordAggregatesAndPersists(t *testing.T) {
	ix, _, dir := openAll(t)
	spec := smallSpec()
	fp, err := ix.Record(spec, 0, 0, testNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 32 {
		t.Fatalf("fingerprint %q", fp)
	}
	fp2, err := ix.Record(spec, 0, 0, testNow.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Fatalf("same spec fingerprinted %s then %s", fp, fp2)
	}
	other := spec
	other.Seed = 4
	if _, err := ix.Record(other, 0, 0, testNow.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}

	sweeps := ix.Sweeps(Filter{})
	if len(sweeps) != 2 {
		t.Fatalf("want 2 sweeps, got %+v", sweeps)
	}
	// Newest-first: the seed-4 sweep ran last.
	if sweeps[0].Spec.Seed != 4 || sweeps[1].Runs != 2 {
		t.Fatalf("order/aggregation wrong: %+v", sweeps)
	}
	if sweeps[1].FirstRunUnix != testNow.Unix() || sweeps[1].LastRunUnix != testNow.Add(time.Hour).Unix() {
		t.Fatalf("run time bracket wrong: %+v", sweeps[1])
	}

	exps := ix.Experiments()
	if len(exps) != 1 || exps[0].Experiment != "fig5" || exps[0].Sweeps != 2 || exps[0].Runs != 3 {
		t.Fatalf("experiments summary %+v", exps)
	}
	if exps[0].LatestFingerprint == fp {
		t.Fatal("latest fingerprint should be the seed-4 sweep")
	}

	// Reopen replays the sidecar identically.
	ix2, skipped, err := Open(dir, Options{NoSync: true})
	if err != nil || skipped != 0 {
		t.Fatalf("reopen: %v skipped=%d", err, skipped)
	}
	if got := ix2.Sweeps(Filter{}); len(got) != 2 || got[1].Runs != 2 {
		t.Fatalf("reopen lost history: %+v", got)
	}
}

func TestOpenSalvagesTornTail(t *testing.T) {
	ix, _, dir := openAll(t)
	if _, err := ix.Record(smallSpec(), 0, 0, testNow); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, indexFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a torn final line; foreign lines may
	// predate the format. Both must be skipped, not fatal.
	torn := append([]byte("not json\n"), data...)
	torn = append(torn, []byte(`{"v":1,"fp":"abc","spec"`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	ix2, skipped, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Fatalf("skipped=%d want 2", skipped)
	}
	if got := ix2.Sweeps(Filter{}); len(got) != 1 || got[0].Runs != 1 {
		t.Fatalf("intact line lost: %+v", got)
	}
}

func TestTableReassemblesFromStore(t *testing.T) {
	ix, st, _ := openAll(t)
	fp, err := ix.Record(smallSpec(), 0, 0, testNow)
	if err != nil {
		t.Fatal(err)
	}
	results := fillStore(t, ix, st, fp)

	tb, err := ix.Table(fp, st)
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := ix.planFor(fp)
	want, err := pi.plan.Assemble(results)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Render() != want.Render() {
		t.Fatalf("stored table diverges:\n%s\nvs\n%s", tb.Render(), want.Render())
	}
}

func TestTableReportsMissingPoints(t *testing.T) {
	ix, st, _ := openAll(t)
	fp, err := ix.Record(smallSpec(), 0, 0, testNow)
	if err != nil {
		t.Fatal(err)
	}
	// Empty store: every point is a gap, indices listed explicitly.
	_, err = ix.Table(fp, st)
	var missing *MissingPointsError
	if !errors.As(err, &missing) {
		t.Fatalf("err=%v", err)
	}
	if len(missing.Indices) != missing.Total || missing.Indices[0] != 0 {
		t.Fatalf("missing %+v", missing)
	}

	if _, err := ix.Table("0123456789abcdef0123456789abcdef", st); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("unknown fp err=%v", err)
	}
}

func TestDiffIdenticalSweepIsEqual(t *testing.T) {
	ix, st, _ := openAll(t)
	fp, err := ix.Record(smallSpec(), 0, 0, testNow)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, ix, st, fp)
	d, err := ix.CompareSweeps(fp, fp, st)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal || len(d.Points) != 0 || d.Shared == 0 {
		t.Fatalf("self-diff not equal: %+v", d)
	}
}

func TestDiffReportsMismatchedPointSets(t *testing.T) {
	ix, st, _ := openAll(t)
	a := smallSpec()
	b := smallSpec()
	b.Axis = []float64{5, 10} // shares the 5 point with a's {0, 5}
	fpA, err := ix.Record(a, 0, 0, testNow)
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := ix.Record(b, 0, 0, testNow)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, ix, st, fpA)
	fillStore(t, ix, st, fpB)
	d, err := ix.CompareSweeps(fpA, fpB, st)
	if err != nil {
		t.Fatal(err)
	}
	if d.Equal {
		t.Fatalf("mismatched point sets reported equal: %+v", d)
	}
	if len(d.OnlyA) == 0 || len(d.OnlyB) == 0 {
		t.Fatalf("exclusive points not reported: %+v", d)
	}
	if d.Shared == 0 {
		t.Fatalf("shared axis point not matched: %+v", d)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	ix, st, _ := openAll(t)
	fp, err := ix.Record(smallSpec(), 0, 0, testNow)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, ix, st, fp)
	srv := httptest.NewServer(Handler(ix, st))
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Experiments summary.
	resp, body := get("/v1/history/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments: %d %s", resp.StatusCode, body)
	}
	var exps []ExperimentSummary
	if err := json.Unmarshal(body, &exps); err != nil || len(exps) != 1 || exps[0].LatestFingerprint != fp {
		t.Fatalf("experiments body %s err=%v", body, err)
	}

	// Sweeps listing, filters and pagination edges.
	resp, body = get("/v1/history/sweeps?experiment=fig5&limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweeps: %d %s", resp.StatusCode, body)
	}
	var page api.List[Sweep]
	if err := json.Unmarshal(body, &page); err != nil || len(page.Items) != 1 || page.NextCursor != "" {
		t.Fatalf("sweeps page %s err=%v", body, err)
	}
	resp, body = get("/v1/history/sweeps?cursor=99")
	var empty api.List[Sweep]
	if err := json.Unmarshal(body, &empty); err != nil || len(empty.Items) != 0 {
		t.Fatalf("cursor past end: %d %s", resp.StatusCode, body)
	}
	resp, body = get("/v1/history/sweeps?experiment=nope")
	if err := json.Unmarshal(body, &empty); err != nil || len(empty.Items) != 0 {
		t.Fatalf("filter miss: %d %s", resp.StatusCode, body)
	}
	if resp, body = get("/v1/history/sweeps?since=zzz"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: %d %s", resp.StatusCode, body)
	}

	// Table: OK, and the envelope on unknown / incomplete fingerprints.
	resp, body = get("/v1/history/sweeps/" + fp + "/table")
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("table: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "==") {
		t.Fatalf("table body does not look rendered: %q", body)
	}
	resp, body = get("/v1/history/sweeps/ffffffffffffffffffffffffffffffff/table")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fp: %d %s", resp.StatusCode, body)
	}
	var envelope api.ErrorBody
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != "not_found" {
		t.Fatalf("unknown fp envelope %s err=%v", body, err)
	}

	// Diff: equal self-diff, bad params, unknown side.
	resp, body = get("/v1/history/diff?a=" + fp + "&b=" + fp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff: %d %s", resp.StatusCode, body)
	}
	var d Diff
	if err := json.Unmarshal(body, &d); err != nil || !d.Equal {
		t.Fatalf("diff body %s err=%v", body, err)
	}
	if resp, body = get("/v1/history/diff?a=" + fp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("diff missing b: %d %s", resp.StatusCode, body)
	}
	if resp, body = get("/v1/history/diff?a=" + fp + "&b=ffffffffffffffffffffffffffffffff"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("diff unknown b: %d %s", resp.StatusCode, body)
	}
}

// TestTableAfterEviction pins the GC interaction: an evicted point makes
// the stored sweep partial, and the table endpoint says exactly which
// points are gone instead of fabricating a table.
func TestTableAfterEviction(t *testing.T) {
	ix, _, dir := openAll(t)
	fp, err := ix.Record(smallSpec(), 0, 0, testNow)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ix.planFor(fp)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny budget: each Put lands in its own segment and evicts the
	// previous one, so only the last point survives.
	st, _, err := store.Open(dir, store.Options{NoSync: true, MaxBytes: 120})
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range pi.keys {
		cfg := pi.plan.Points[i].Cfg
		ok := make([]int, len(cfg.Receivers))
		if err := st.Put(testNow.Add(time.Duration(i)*time.Second), store.Record{Key: key, Tally: store.Tally{N: cfg.Packets, OK: ok}}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = ix.Table(fp, st)
	var missing *MissingPointsError
	if !errors.As(err, &missing) {
		t.Fatalf("err=%v (store bytes=%d)", err, st.Bytes())
	}
	if len(missing.Indices) == 0 || len(missing.Indices) >= len(pi.keys) {
		t.Fatalf("eviction gaps %+v of %d", missing, len(pi.keys))
	}
}
