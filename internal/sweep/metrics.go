package sweep

import (
	"repro/internal/obs"
)

// Engine-level sweep metrics. Job transitions are guarded by the same
// j.finished checks that make fail/finalize idempotent, so the running
// gauge is decremented exactly once per job however it ends.
var (
	jobsSubmitted = obs.NewCounter("cpr_sweep_jobs_total", "Sweep jobs by terminal state (submitted counts admissions).",
		obs.Label{Name: "state", Value: "submitted"})
	jobsDone = obs.NewCounter("cpr_sweep_jobs_total", "Sweep jobs by terminal state (submitted counts admissions).",
		obs.Label{Name: "state", Value: "done"})
	jobsFailed = obs.NewCounter("cpr_sweep_jobs_total", "Sweep jobs by terminal state (submitted counts admissions).",
		obs.Label{Name: "state", Value: "failed"})
	jobsRunning = obs.NewGauge("cpr_sweep_jobs_running", "Sweep jobs currently running in this engine.")
	pointsDone  = obs.NewCounter("cpr_sweep_points_done_total", "Sweep points completed (all shards merged).")
)
