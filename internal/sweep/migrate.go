package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep/store"
	"repro/internal/wifi"
)

// ImportLegacyJournal reads the legacy JSON-lines journal at path and
// Puts every completed point it records into st under the point's
// content-address key. The journal's own header supplies the spec and
// pool identity (a pooled journal keys under its recorded pool size and
// seed, exactly as the engine that wrote it would have). Returns how many
// points were imported; already-stored points are skipped by Put.
func ImportLegacyJournal(path string, st *store.Store) (int, error) {
	hdr, restored, err := ReadLegacyJournal(path)
	if err != nil {
		return 0, err
	}
	spec := hdr.Spec.Normalised()
	// Planning draws no waveforms, so a never-encoded pool matching the
	// journal's recorded identity suffices (pool entries encode lazily).
	var pool *wifi.WaveformPool
	if spec.Pool {
		pool = wifi.NewWaveformPool(hdr.PoolSize, hdr.PoolSeed)
	}
	req, err := spec.Request(pool)
	if err != nil {
		return 0, err
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		return 0, err
	}
	if hdr.Points != len(plan.Points) {
		return 0, fmt.Errorf("sweep: journal %s: header says %d points, plan has %d", path, hdr.Points, len(plan.Points))
	}
	keys := PlanKeys(plan, spec.Pool, hdr.PoolSize, hdr.PoolSeed)
	recs := make([]store.Record, 0, len(restored))
	for idx, cp := range restored {
		ps := plan.Points[idx]
		if cp.N != ps.Cfg.Packets || len(cp.OK) != len(ps.Cfg.Receivers) {
			return 0, fmt.Errorf("sweep: journal %s: point %d shape mismatch", path, idx)
		}
		recs = append(recs, store.Record{Key: keys[idx], Tally: store.Tally{N: cp.N, OK: cp.OK}})
	}
	if err := st.Put(time.Now(), recs...); err != nil {
		return 0, err
	}
	return len(recs), nil
}

// MigrateResult reports what MigrateDir found.
type MigrateResult struct {
	Journals int      // journals imported
	Points   int      // points imported across them
	Skipped  []string // journals left in place because they could not be parsed
}

// MigrateDir imports every legacy "*.jsonl" journal in dir into st,
// renaming each successfully imported file to "<name>.migrated" so the
// migration is one-shot. Unparsable journals are skipped (listed in
// Skipped) and left untouched — they may be foreign files. This is the
// one-shot migration path for store directories that used to be journal
// directories.
func MigrateDir(dir string, st *store.Store) (MigrateResult, error) {
	var res MigrateResult
	names, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return res, err
	}
	for _, name := range names {
		n, err := ImportLegacyJournal(name, st)
		if err != nil {
			res.Skipped = append(res.Skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if err := os.Rename(name, name+".migrated"); err != nil {
			return res, err
		}
		res.Journals++
		res.Points += n
	}
	return res, nil
}
