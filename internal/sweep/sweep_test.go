package sweep

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// testSpec is a reduced-fidelity fig8 sweep: two SIRs × three MCS modes,
// five packets each — small enough for CI, sharded enough (ShardPackets 2)
// to exercise the merge paths.
func testSpec() Spec {
	return Spec{Experiment: "fig8", Packets: 5, PSDUBytes: 60, Seed: 3, Axis: []float64{-10, -20}}
}

func testEngine() *Engine {
	return New(Config{Workers: 4, ShardPackets: 2, PoolSize: 4})
}

// runDirect executes the same sweep on the sequential engine-less path.
func runDirect(t *testing.T, e *Engine, spec Spec) (*experiments.Table, [][]experiments.PSRPoint) {
	t.Helper()
	req, err := spec.Request(e.Pool())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]experiments.PSRPoint, len(plan.Points))
	for i := range plan.Points {
		if results[i], err = experiments.RunPSR(plan.Points[i].Cfg); err != nil {
			t.Fatal(err)
		}
	}
	tb, err := plan.Assemble(results)
	if err != nil {
		t.Fatal(err)
	}
	return tb, results
}

func submitAndWait(t *testing.T, e *Engine, spec Spec) *Result {
	t.Helper()
	j, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkSameResults(t *testing.T, want, got [][]experiments.PSRPoint) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("point count %d vs %d", len(got), len(want))
	}
	for i := range want {
		for a := range want[i] {
			if want[i][a] != got[i][a] {
				t.Fatalf("point %d arm %d: engine %+v, direct %+v", i, a, got[i][a], want[i][a])
			}
		}
	}
}

// TestEngineMatchesDirect pins the engine's core guarantee: sharded
// execution produces bit-identical per-point counts and an identical
// rendered table to the direct sequential path, with and without the
// shared waveform pool.
func TestEngineMatchesDirect(t *testing.T) {
	e := testEngine()
	defer e.Close()
	for _, pool := range []bool{false, true} {
		spec := testSpec()
		spec.Pool = pool
		wantTable, wantResults := runDirect(t, e, spec)
		res := submitAndWait(t, e, spec)
		checkSameResults(t, wantResults, res.Points)
		if res.Table.Render() != wantTable.Render() {
			t.Errorf("pool=%v: rendered tables differ:\n%s\nvs\n%s", pool, res.Table.Render(), wantTable.Render())
		}
	}
}

// TestEnginePoolDeterministic pins that pooled sweeps are reproducible:
// two engines (fresh pools) at the same seed produce identical tables.
func TestEnginePoolDeterministic(t *testing.T) {
	spec := testSpec()
	spec.Axis = []float64{-15}
	spec.Pool = true
	var renders []string
	for i := 0; i < 2; i++ {
		e := testEngine()
		res := submitAndWait(t, e, spec)
		renders = append(renders, res.Table.Render())
		e.Close()
	}
	if renders[0] != renders[1] {
		t.Fatalf("pooled sweep not deterministic:\n%s\nvs\n%s", renders[0], renders[1])
	}
}

// TestCheckpointResume pins the round trip: a completed job writes one
// line per point; truncating the file to a prefix and resubmitting
// restores exactly the surviving points and still produces bit-identical
// results; resubmitting the full checkpoint executes zero packets.
func TestCheckpointResume(t *testing.T) {
	e := testEngine()
	defer e.Close()
	path := filepath.Join(t.TempDir(), "fig8.ckpt")
	spec := testSpec()
	spec.Checkpoint = path

	full := submitAndWait(t, e, spec)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	nPoints := len(full.Points)
	if len(lines) != 1+nPoints {
		t.Fatalf("checkpoint has %d lines, want header+%d points", len(lines), nPoints)
	}

	// Simulate an interruption: keep the header and the first two
	// completed points (plus a torn partial line, which must be ignored).
	trunc := strings.Join(lines[:3], "\n") + "\n" + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(path, []byte(trunc), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p := j.Progress(); p.RestoredPoints != 2 {
		t.Fatalf("restored %d points, want 2", p.RestoredPoints)
	}
	checkSameResults(t, full.Points, res.Points)

	// A complete checkpoint resumes without executing any packet.
	j2, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p := j2.Progress()
	if p.RestoredPoints != nPoints || p.DonePackets != p.Packets || p.State != "done" {
		t.Fatalf("full resume progress = %+v", p)
	}
	checkSameResults(t, full.Points, res2.Points)
}

// TestCheckpointSpecMismatch pins that a checkpoint from a different
// sweep is refused instead of silently merged.
func TestCheckpointSpecMismatch(t *testing.T) {
	e := testEngine()
	defer e.Close()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	spec := testSpec()
	spec.Checkpoint = path
	submitAndWait(t, e, spec)

	other := spec
	other.Seed++
	if _, err := e.Submit(context.Background(), other); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mismatched checkpoint accepted (err=%v)", err)
	}

	// A pooled checkpoint is tied to the pool's identity: an engine with a
	// different pool seed must refuse it (its waveforms differ).
	pooled := testSpec()
	pooled.Pool = true
	pooled.Checkpoint = filepath.Join(t.TempDir(), "pooled.ckpt")
	submitAndWait(t, e, pooled)
	e2 := New(Config{Workers: 2, ShardPackets: 2, PoolSize: 4, PoolSeed: 99})
	defer e2.Close()
	if _, err := e2.Submit(context.Background(), pooled); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("pooled checkpoint accepted by a differently-seeded pool (err=%v)", err)
	}
}

// TestRemove pins job pruning: removed jobs disappear from the engine's
// table (running ones are cancelled first).
func TestRemove(t *testing.T) {
	e := testEngine()
	defer e.Close()
	j, err := e.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !e.Remove(j.ID) {
		t.Fatal("Remove reported missing job")
	}
	if e.Job(j.ID) != nil || len(e.Jobs()) != 0 {
		t.Fatal("job still listed after Remove")
	}
	if e.Remove(j.ID) {
		t.Fatal("second Remove reported success")
	}
}

// TestCancel pins cooperative cancellation: a cancelled job unblocks
// waiters with context.Canceled and reports the failed state.
func TestCancel(t *testing.T) {
	e := New(Config{Workers: 2, ShardPackets: 1})
	defer e.Close()
	spec := testSpec()
	spec.Packets = 500 // long enough that cancellation lands mid-flight
	j, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	if _, err := j.Wait(context.Background()); err != context.Canceled {
		t.Fatalf("Wait after cancel = %v", err)
	}
	if p := j.Progress(); p.State != "failed" {
		t.Fatalf("state = %s", p.State)
	}
}

// TestSpecValidation pins the submission-time failure paths.
func TestSpecValidation(t *testing.T) {
	e := testEngine()
	defer e.Close()
	if _, err := e.Submit(context.Background(), Spec{Experiment: "fig6a"}); err == nil {
		t.Fatal("non-sweep experiment accepted")
	}
	if _, err := e.Submit(context.Background(), Spec{Experiment: "fig8", Receivers: []string{"bogus"}}); err == nil {
		t.Fatal("unknown receiver accepted")
	}
	if _, err := e.Submit(context.Background(), Spec{Experiment: "fig8", MCS: []string{"FM radio"}}); err == nil {
		t.Fatal("unknown MCS accepted")
	}
}
