package sweep

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sweep/store"
)

// testSpec is a reduced-fidelity fig8 sweep: two SIRs × three MCS modes,
// five packets each — small enough for CI, sharded enough (ShardPackets 2)
// to exercise the merge paths.
func testSpec() Spec {
	return Spec{Experiment: "fig8", Packets: 5, PSDUBytes: 60, Seed: 3, Axis: []float64{-10, -20}}
}

func testEngine() *Engine {
	return New(Config{Workers: 4, ShardPackets: 2, PoolSize: 4})
}

// testStore opens a NoSync store in a fresh temp dir.
func testStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, _, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// testEngineStore is testEngine checkpointing through a store at dir.
func testEngineStore(t *testing.T, dir string) *Engine {
	t.Helper()
	return New(Config{Workers: 4, ShardPackets: 2, PoolSize: 4, Store: testStore(t, dir)})
}

// runDirect executes the same sweep on the sequential engine-less path.
func runDirect(t *testing.T, e *Engine, spec Spec) (*experiments.Table, [][]experiments.PSRPoint) {
	t.Helper()
	req, err := spec.Request(e.Pool())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]experiments.PSRPoint, len(plan.Points))
	for i := range plan.Points {
		if results[i], err = experiments.RunPSR(plan.Points[i].Cfg); err != nil {
			t.Fatal(err)
		}
	}
	tb, err := plan.Assemble(results)
	if err != nil {
		t.Fatal(err)
	}
	return tb, results
}

func submitAndWait(t *testing.T, e *Engine, spec Spec) *Result {
	t.Helper()
	j, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkSameResults(t *testing.T, want, got [][]experiments.PSRPoint) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("point count %d vs %d", len(got), len(want))
	}
	for i := range want {
		for a := range want[i] {
			if want[i][a] != got[i][a] {
				t.Fatalf("point %d arm %d: engine %+v, direct %+v", i, a, got[i][a], want[i][a])
			}
		}
	}
}

// TestEngineMatchesDirect pins the engine's core guarantee: sharded
// execution produces bit-identical per-point counts and an identical
// rendered table to the direct sequential path, with and without the
// shared waveform pool.
func TestEngineMatchesDirect(t *testing.T) {
	e := testEngine()
	defer e.Close()
	for _, pool := range []bool{false, true} {
		spec := testSpec()
		spec.Pool = pool
		wantTable, wantResults := runDirect(t, e, spec)
		res := submitAndWait(t, e, spec)
		checkSameResults(t, wantResults, res.Points)
		if res.Table.Render() != wantTable.Render() {
			t.Errorf("pool=%v: rendered tables differ:\n%s\nvs\n%s", pool, res.Table.Render(), wantTable.Render())
		}
	}
}

// TestEnginePoolDeterministic pins that pooled sweeps are reproducible:
// two engines (fresh pools) at the same seed produce identical tables.
func TestEnginePoolDeterministic(t *testing.T) {
	spec := testSpec()
	spec.Axis = []float64{-15}
	spec.Pool = true
	var renders []string
	for i := 0; i < 2; i++ {
		e := testEngine()
		res := submitAndWait(t, e, spec)
		renders = append(renders, res.Table.Render())
		e.Close()
	}
	if renders[0] != renders[1] {
		t.Fatalf("pooled sweep not deterministic:\n%s\nvs\n%s", renders[0], renders[1])
	}
}

// TestStoreResume pins the store round trip: a completed job writes one
// record per point; deleting some segments and truncating another to a
// torn prefix, then resubmitting on a fresh engine over the same dir,
// restores exactly the surviving points and still produces bit-identical
// results; resubmitting against the intact store executes zero packets.
func TestStoreResume(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()

	e := testEngineStore(t, dir)
	full := submitAndWait(t, e, spec)
	e.Close()
	nPoints := len(full.Points)
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != nPoints {
		t.Fatalf("store has %d segments, want one per point (%d)", len(segs), nPoints)
	}

	// A complete store resumes without executing any packet.
	e2 := testEngineStore(t, dir)
	j2, err := e2.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p := j2.Progress()
	if p.RestoredPoints != nPoints || p.DonePackets != p.Packets || p.State != "done" {
		t.Fatalf("full resume progress = %+v", p)
	}
	checkSameResults(t, full.Points, res2.Points)
	e2.Close()

	// Simulate crash damage: delete two whole segments and tear a third
	// mid-record. The damaged points recompute; the rest restore.
	sort.Strings(segs)
	for _, s := range segs[:2] {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(segs[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[2], data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := testEngineStore(t, dir)
	defer e3.Close()
	j3, err := e3.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := j3.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p := j3.Progress(); p.RestoredPoints != nPoints-3 {
		t.Fatalf("restored %d points, want %d", p.RestoredPoints, nPoints-3)
	}
	checkSameResults(t, full.Points, res3.Points)
}

// TestStoreContentAddressing pins that the store never aliases across
// sweeps: a different seed, and a pooled sweep under a different pool
// identity, hit nothing (content-address miss) instead of being merged
// or refused — the store is a cache, not a per-job file.
func TestStoreContentAddressing(t *testing.T) {
	dir := t.TempDir()
	e := testEngineStore(t, dir)
	defer e.Close()
	spec := testSpec()
	submitAndWait(t, e, spec)

	other := spec
	other.Seed++
	j, err := e.Submit(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := j.Progress(); p.RestoredPoints != 0 {
		t.Fatalf("different seed restored %d points from the store", p.RestoredPoints)
	}

	// Pooled tallies key under the pool's identity: an engine with a
	// different pool seed must miss (its waveforms differ), while the
	// same identity restores in full.
	pooled := testSpec()
	pooled.Pool = true
	pj, err := e.Submit(context.Background(), pooled)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := pj.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{Workers: 2, ShardPackets: 2, PoolSize: 4, PoolSeed: 99, Store: testStore(t, dir)})
	defer e2.Close()
	j2, err := e2.Submit(context.Background(), pooled)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := j2.Progress(); p.RestoredPoints != 0 {
		t.Fatalf("differently-seeded pool restored %d points", p.RestoredPoints)
	}
	e3 := New(Config{Workers: 2, ShardPackets: 2, PoolSize: 4, Store: testStore(t, dir)})
	defer e3.Close()
	j3, err := e3.Submit(context.Background(), pooled)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := j3.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p := j3.Progress(); p.RestoredPoints != len(pres.Points) {
		t.Fatalf("same pool identity restored %d of %d points", p.RestoredPoints, len(pres.Points))
	}
	checkSameResults(t, pres.Points, res3.Points)
}

// TestRemove pins job pruning: removed jobs disappear from the engine's
// table (running ones are cancelled first).
func TestRemove(t *testing.T) {
	e := testEngine()
	defer e.Close()
	j, err := e.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !e.Remove(j.ID) {
		t.Fatal("Remove reported missing job")
	}
	if e.Job(j.ID) != nil || len(e.Jobs()) != 0 {
		t.Fatal("job still listed after Remove")
	}
	if e.Remove(j.ID) {
		t.Fatal("second Remove reported success")
	}
}

// TestCancel pins cooperative cancellation: a cancelled job unblocks
// waiters with context.Canceled and reports the failed state.
func TestCancel(t *testing.T) {
	e := New(Config{Workers: 2, ShardPackets: 1})
	defer e.Close()
	spec := testSpec()
	spec.Packets = 500 // long enough that cancellation lands mid-flight
	j, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	if _, err := j.Wait(context.Background()); err != context.Canceled {
		t.Fatalf("Wait after cancel = %v", err)
	}
	if p := j.Progress(); p.State != "failed" {
		t.Fatalf("state = %s", p.State)
	}
}

// TestSpecValidation pins the submission-time failure paths.
func TestSpecValidation(t *testing.T) {
	e := testEngine()
	defer e.Close()
	if _, err := e.Submit(context.Background(), Spec{Experiment: "fig6a"}); err == nil {
		t.Fatal("non-sweep experiment accepted")
	}
	if _, err := e.Submit(context.Background(), Spec{Experiment: "fig8", Receivers: []string{"bogus"}}); err == nil {
		t.Fatal("unknown receiver accepted")
	}
	if _, err := e.Submit(context.Background(), Spec{Experiment: "fig8", MCS: []string{"FM radio"}}); err == nil {
		t.Fatal("unknown MCS accepted")
	}
}
