package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep/store"
	"repro/internal/wifi"
)

// Config parameterises an Engine.
type Config struct {
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// ShardPackets is the maximum packets per shard (default 64): the
	// scheduling granularity and the cancellation latency bound.
	ShardPackets int
	// PoolSize is the number of pre-encoded waveforms per (grid, MCS) in
	// the shared pool jobs can opt into (default wifi.DefaultPoolSize).
	PoolSize int
	// PoolSeed seeds the pool's deterministic waveform generation.
	PoolSeed int64
	// Store, when set, is the content-addressed result store the engine
	// checkpoints through: completed points are written as they finish,
	// and at submit every point already present (same plan fingerprint,
	// pool identity and point identity) is restored instead of computed.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ShardPackets <= 0 {
		c.ShardPackets = 64
	}
	if c.PoolSize <= 0 {
		c.PoolSize = wifi.DefaultPoolSize
	}
	return c
}

// Engine is the sharded sweep service. One engine serves any number of
// concurrent jobs over a single bounded worker pool and owns the shared
// waveform pool. Create with New, submit with Submit, stop with Close.
type Engine struct {
	cfg  Config
	pool *wifi.WaveformPool

	tasks chan shard
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	closed bool
}

// shard is one schedulable unit: a packet range of one point of one job.
type shard struct {
	job   *Job
	point int
	lo    int
	hi    int
}

// New starts an engine with cfg.Workers workers.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:   cfg,
		pool:  wifi.NewWaveformPool(cfg.PoolSize, cfg.PoolSeed),
		tasks: make(chan shard),
		quit:  make(chan struct{}),
		jobs:  make(map[string]*Job),
	}
	for w := 0; w < cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Pool returns the engine's shared waveform pool.
func (e *Engine) Pool() *wifi.WaveformPool { return e.pool }

// PoolIdentity returns the pool size and seed the engine keys stored
// results under (post-defaults) — what history recording and store
// lookups outside the engine must use to reproduce its keys.
func (e *Engine) PoolIdentity() (size int, seed int64) {
	return e.cfg.PoolSize, e.cfg.PoolSeed
}

// Close stops the workers, cancelling any running jobs first.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	close(e.quit)
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case sh := <-e.tasks:
			e.runShard(sh)
		}
	}
}

func (e *Engine) runShard(sh shard) {
	j := sh.job
	ps := j.points[sh.point]
	if j.ctx.Err() != nil {
		j.completeShard(sh.point, nil, 0, j.ctx.Err())
		return
	}
	counts := make([]int, len(ps.plan.Receivers()))
	n, err := ps.plan.RunRange(j.ctx, sh.lo, sh.hi, counts)
	j.completeShard(sh.point, counts, n, err)
}

// Submit validates the spec, plans every point, restores any point the
// configured result store already holds, and schedules the remaining
// shards. The returned job is already running; cancelling ctx cancels it.
func (e *Engine) Submit(ctx context.Context, spec Spec) (*Job, error) {
	return e.submit(ctx, spec, nil)
}

// SubmitPoints is Submit restricted to a subset of the sweep plan's
// points (by plan index, any order, no duplicates): only those points are
// planned and executed, and the job produces per-point tallies but no
// assembled table (a table needs every point). This is the distributed
// worker's entry point — a lease names a point range of the full plan —
// but is usable by any caller that wants one slice of a sweep. Subset
// jobs read and write the result store like full jobs do: points are
// content-addressed, so a slice's tallies are interchangeable with a
// full run's.
func (e *Engine) SubmitPoints(ctx context.Context, spec Spec, points []int) (*Job, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: no points selected")
	}
	return e.submit(ctx, spec, points)
}

func (e *Engine) submit(ctx context.Context, spec Spec, subset []int) (*Job, error) {
	req, err := spec.Request(e.pool)
	if err != nil {
		return nil, err
	}
	plan, err := experiments.NewSweepPlan(req)
	if err != nil {
		return nil, err
	}
	active := make([]int, 0, len(plan.Points))
	if subset == nil {
		for i := range plan.Points {
			active = append(active, i)
		}
	} else {
		seen := make(map[int]bool, len(subset))
		for _, i := range subset {
			if i < 0 || i >= len(plan.Points) {
				return nil, fmt.Errorf("sweep: point %d outside [0,%d)", i, len(plan.Points))
			}
			if seen[i] {
				return nil, fmt.Errorf("sweep: point %d selected twice", i)
			}
			seen[i] = true
			active = append(active, i)
		}
	}

	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		Spec:   spec,
		plan:   plan,
		subset: subset != nil,
		active: len(active),
		ctx:    jctx,
		cancel: cancel,
		start:  time.Now(),
		done:   make(chan struct{}),
	}
	j.points = make([]*pointState, len(plan.Points))
	for _, i := range active {
		cfg := plan.Points[i].Cfg
		if cfg.IntraWorkers <= 0 {
			// The engine's shard pool already occupies every core
			// (packet-range shards of all jobs run concurrently), so the
			// auto intra-packet rule — which assumes the point runs alone
			// — would oversubscribe. Decode serially unless the spec asks
			// for intra-packet workers explicitly.
			cfg.IntraWorkers = 1
		}
		pp, err := experiments.PlanPSR(cfg)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
		j.points[i] = &pointState{plan: pp}
		j.totalPackets += int64(pp.Packets())
	}

	// Store restore before any shard runs: any active point whose
	// content-address key is already stored — same plan fingerprint, pool
	// identity and point identity, whichever job (or process life)
	// computed it — is restored instead of executed. The pool identity is
	// part of the key: points drawn from one waveform pool never alias
	// points from another or from the pool-less path.
	if st := e.cfg.Store; st != nil {
		j.store = st
		j.keys = PlanKeys(plan, spec.Pool, e.cfg.PoolSize, e.cfg.PoolSeed)
		// Pin the job's full key set for its lifetime: the MaxBytes GC
		// must never collect a record this job may still restore from or
		// has just written. Released in fail/finalize.
		j.unpin = st.Pin(j.keys...)
		now := time.Now()
		for _, idx := range active {
			ps := j.points[idx]
			t, ok := st.Get(j.keys[idx])
			if !ok {
				store.Misses.Inc()
				continue
			}
			if t.N != ps.plan.Packets() || len(t.OK) != len(ps.plan.Receivers()) {
				// A different fidelity under the same key is impossible
				// (packets and arms feed the point identity); treat a shape
				// mismatch as a miss rather than trusting it.
				store.Misses.Inc()
				continue
			}
			store.Hits.Inc()
			st.Touch(j.keys[idx], now)
			ps.ok = t.OK
			ps.n = t.N
			ps.done = true
			j.restoredPoints++
			j.donePackets.Add(int64(t.N))
			done := int(j.donePoints.Add(1))
			j.events = append(j.events, PointEvent{
				Seq: len(j.events), Point: idx, N: t.N, OK: t.OK,
				DonePoints: done, Points: j.active,
			})
		}
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("sweep: engine is closed")
	}
	e.nextID++
	j.ID = fmt.Sprintf("j%d", e.nextID)
	e.jobs[j.ID] = j
	e.order = append(e.order, j.ID)
	e.mu.Unlock()
	jobsSubmitted.Inc()
	jobsRunning.Add(1)

	// Decompose incomplete points into shards and count them before
	// feeding: completeShard must know each point's shard total.
	var shards []shard
	for _, i := range active {
		ps := j.points[i]
		if ps.done {
			continue
		}
		pkts := ps.plan.Packets()
		for lo := 0; lo < pkts; lo += e.cfg.ShardPackets {
			hi := lo + e.cfg.ShardPackets
			if hi > pkts {
				hi = pkts
			}
			ps.shardsLeft++
			shards = append(shards, shard{job: j, point: i, lo: lo, hi: hi})
		}
	}
	if len(shards) == 0 {
		j.finalize()
		return j, nil
	}
	go func() {
		for _, sh := range shards {
			select {
			case e.tasks <- sh:
			case <-j.ctx.Done():
				// Cancelled: account the unscheduled shards so the job
				// closes once in-flight ones drain.
				j.completeShard(sh.point, nil, 0, j.ctx.Err())
			case <-e.quit:
				return
			}
		}
	}()
	return j, nil
}

// Job returns a submitted job by id, or nil.
func (e *Engine) Job(id string) *Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobs[id]
}

// Remove cancels the job if it is still running and forgets it,
// releasing its results and plan — the pruning hook for long-running
// services, whose job table would otherwise grow monotonically. Reports
// whether the job existed. In-flight shards hold the job directly and
// drain harmlessly after removal.
func (e *Engine) Remove(id string) bool {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if ok {
		delete(e.jobs, id)
		for i, oid := range e.order {
			if oid == id {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	}
	e.mu.Unlock()
	if !ok {
		return false
	}
	j.Cancel() // no-op when already finished
	return true
}

// Jobs returns every submitted job in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.jobs[id])
	}
	return out
}

// pointState accumulates one measurement point's tallies across shards.
type pointState struct {
	plan *experiments.PSRPlan

	mu         sync.Mutex
	ok         []int
	n          int
	shardsLeft int
	done       bool
}

// Job is one submitted sweep. All methods are safe for concurrent use.
type Job struct {
	ID   string
	Spec Spec

	plan   *experiments.SweepPlan
	points []*pointState
	subset bool
	active int // points this job executes (== len(points) unless SubmitPoints)
	ctx    context.Context
	cancel context.CancelFunc
	store  *store.Store
	keys   []store.Key
	unpin  func()
	start  time.Time

	totalPackets   int64
	restoredPoints int
	donePackets    atomic.Int64
	donePoints     atomic.Int32

	mu       sync.Mutex
	err      error
	table    *experiments.Table
	results  [][]experiments.PSRPoint
	elapsed  time.Duration
	finished bool
	done     chan struct{}
	events   []PointEvent
	subs     map[int]chan PointEvent
	nextSub  int
}

// Result is a completed sweep: the rendered table plus the raw per-point,
// per-arm counts (aligned with the plan's points). Subset jobs
// (SubmitPoints) have a nil Table and nil rows for the points they did
// not run.
type Result struct {
	Table   *experiments.Table
	Points  [][]experiments.PSRPoint
	Elapsed time.Duration
}

// Progress is a snapshot of a job's execution state.
type Progress struct {
	ID             string  `json:"id"`
	Experiment     string  `json:"experiment"`
	State          string  `json:"state"` // "running", "done" or "failed"
	Points         int     `json:"points"`
	DonePoints     int     `json:"done_points"`
	RestoredPoints int     `json:"restored_points,omitempty"`
	Packets        int64   `json:"packets"`
	DonePackets    int64   `json:"done_packets"`
	ElapsedSec     float64 `json:"elapsed_sec"`
	Error          string  `json:"error,omitempty"`
}

// PointEvent is one completed measurement point as published to
// Subscribe streams (and, over SSE, to dashboards): the point's plan
// index and tallies plus the job-level completion counters at the moment
// it finished. Seq numbers a job's events 0,1,… in completion order;
// checkpoint-restored points replay first.
type PointEvent struct {
	Seq        int   `json:"seq"`
	Point      int   `json:"point"`
	N          int   `json:"n"`
	OK         []int `json:"ok"`
	DonePoints int   `json:"done_points"`
	Points     int   `json:"points"`
}

// Plan returns the job's sweep plan. Callers must treat it as read-only;
// the distributed worker uses it to fingerprint-check a lease against the
// coordinator's plan before trusting the point indexes.
func (j *Job) Plan() *experiments.SweepPlan { return j.plan }

// Subscribe returns every point completed so far (in completion order)
// plus a channel delivering each subsequent completion. The channel is
// buffered for the job's full point count — sends never block the
// engine's workers — and is closed when the job finishes (any outcome) or
// when cancel is called. Callers should pair the stream with Done /
// Progress to learn the final state.
func (j *Job) Subscribe() (past []PointEvent, ch <-chan PointEvent, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	past = append([]PointEvent(nil), j.events...)
	c := make(chan PointEvent, j.active+1)
	if j.finished {
		close(c)
		return past, c, func() {}
	}
	id := j.nextSub
	j.nextSub++
	if j.subs == nil {
		j.subs = make(map[int]chan PointEvent)
	}
	j.subs[id] = c
	return past, c, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if cc, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(cc)
		}
	}
}

// publishPoint records one completed point and fans it out to
// subscribers. Sends happen under j.mu, as do subscriber channel closes,
// so a send can never race a close; the per-subscriber buffer covers
// every possible event, so sends never block.
func (j *Job) publishPoint(point, n int, ok []int, donePoints int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	ev := PointEvent{
		Seq: len(j.events), Point: point, N: n, OK: append([]int(nil), ok...),
		DonePoints: donePoints, Points: j.active,
	}
	j.events = append(j.events, ev)
	for _, c := range j.subs {
		c <- ev
	}
}

// closeSubs closes every subscriber channel. Callers hold j.mu.
func (j *Job) closeSubs() {
	for id, c := range j.subs {
		delete(j.subs, id)
		close(c)
	}
}

// completeShard merges one shard's tallies (or failure) into its point.
func (j *Job) completeShard(point int, counts []int, n int, err error) {
	j.donePackets.Add(int64(n))
	if err != nil {
		j.fail(err)
		return
	}
	ps := j.points[point]
	ps.mu.Lock()
	if ps.ok == nil {
		ps.ok = make([]int, len(counts))
	}
	for i, c := range counts {
		ps.ok[i] += c
	}
	ps.n += n
	ps.shardsLeft--
	pointDone := ps.shardsLeft == 0 && !ps.done
	if pointDone {
		ps.done = true
	}
	okCopy := ps.ok
	nTotal := ps.n
	ps.mu.Unlock()
	if !pointDone {
		return
	}
	if j.store != nil {
		if err := j.store.Put(time.Now(), store.Record{Key: j.keys[point], Tally: store.Tally{N: nTotal, OK: okCopy}}); err != nil {
			j.fail(err)
			return
		}
	}
	done := int(j.donePoints.Add(1))
	pointsDone.Inc()
	j.publishPoint(point, nTotal, okCopy, done)
	if done == j.active {
		j.finalize()
	}
}

// fail records the job's first error and cancels the rest of its work.
func (j *Job) fail(err error) {
	j.mu.Lock()
	already := j.finished
	if !already {
		j.finished = true
		j.err = err
		j.elapsed = time.Since(j.start)
		j.closeSubs()
		if j.unpin != nil {
			j.unpin()
		}
	}
	j.mu.Unlock()
	if already {
		return
	}
	jobsFailed.Inc()
	jobsRunning.Add(-1)
	j.cancel()
	close(j.done)
}

// finalize assembles the result once every active point is complete.
// Subset jobs keep their per-point tallies but skip table assembly — the
// figure tables need every point of the plan.
func (j *Job) finalize() {
	results := make([][]experiments.PSRPoint, len(j.points))
	for i, ps := range j.points {
		if ps == nil {
			continue
		}
		arms := ps.plan.Receivers()
		pts := make([]experiments.PSRPoint, len(arms))
		for a, k := range arms {
			pts[a] = experiments.PSRPoint{Kind: k, OK: ps.ok[a], N: ps.n}
		}
		results[i] = pts
	}
	var table *experiments.Table
	var err error
	if !j.subset {
		table, err = j.plan.Assemble(results)
	}
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return
	}
	j.finished = true
	j.err = err
	j.table = table
	j.results = results
	j.elapsed = time.Since(j.start)
	j.closeSubs()
	if j.unpin != nil {
		j.unpin()
	}
	j.mu.Unlock()
	if err != nil {
		jobsFailed.Inc()
	} else {
		jobsDone.Inc()
	}
	jobsRunning.Add(-1)
	j.cancel()
	close(j.done)
}

// Cancel aborts the job; in-flight shards stop at the next packet
// boundary. Wait then returns context.Canceled.
func (j *Job) Cancel() { j.fail(context.Canceled) }

// Done returns a channel closed when the job finishes (any outcome).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes, ctx expires, or the job fails.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return &Result{Table: j.table, Points: j.results, Elapsed: j.elapsed}, nil
}

// Progress returns a snapshot of the job's execution state.
func (j *Job) Progress() Progress {
	p := Progress{
		ID:             j.ID,
		Experiment:     j.Spec.Experiment,
		State:          "running",
		Points:         j.active,
		DonePoints:     int(j.donePoints.Load()),
		RestoredPoints: j.restoredPoints,
		Packets:        j.totalPackets,
		DonePackets:    j.donePackets.Load(),
		ElapsedSec:     time.Since(j.start).Seconds(),
	}
	j.mu.Lock()
	if j.finished {
		p.ElapsedSec = j.elapsed.Seconds()
		if j.err != nil {
			p.State = "failed"
			p.Error = j.err.Error()
		} else {
			p.State = "done"
		}
	}
	j.mu.Unlock()
	return p
}
