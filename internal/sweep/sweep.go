// Package sweep is the batch PSR sweep service: a long-running, sharded
// engine that executes the paper's packet-success-rate sweep experiments
// (Figs. 5, 8-12, 14 and the ablation studies) as jobs over a bounded
// worker pool with process-wide shared resources.
//
// A job is a declarative Spec naming an experiment plus fidelity options
// and optional axis/receiver/MCS overrides. The engine decomposes the
// experiment into its measurement points (experiments.SweepPlan), splits
// every point into fixed-size packet-range shards, and schedules all
// shards of all running jobs across one worker pool. Because each packet
// derives its RNG from (point seed, packet index), any sharding produces
// bit-identical per-point counts to the direct sequential
// experiments.RunPSR path — a property pinned by the engine equivalence
// tests.
//
// Shared across shards and jobs:
//
//   - a pre-encoded interferer waveform pool (wifi.WaveformPool), opted
//     into per job via Spec.Pool: tiles are picked with one RNG draw per
//     tile instead of encoding a fresh PPDU, cutting the tx-side IFFT
//     cost of a sweep; deterministic per seed, but a different draw
//     sequence than the pool-less path (which remains the default and is
//     what the same-seed regression pins);
//   - per-point segment plans, computed once at submission
//     (experiments.PlanPSR) instead of per packet;
//   - per-packet preamble trainings and lazily-fitted KDE models, shared
//     across the receiver arms of each packet (core.Training).
//
// Jobs expose atomic progress counters, context cancellation, and an
// optional content-addressed result store (internal/sweep/store): points
// are written to the store as they finish and any point the store
// already holds — keyed by plan fingerprint, pool identity and point
// identity, regardless of which job or process computed it — is restored
// at submit instead of executed. An interrupted sweep resubmitted
// against the same store resumes at the first missing point; a repeated
// identical sweep completes without running a packet.
package sweep

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/wifi"
)

// Spec declares one sweep job. The zero values of the fidelity fields
// select the paper's full fidelity (2000 packets of 400 bytes).
type Spec struct {
	// Experiment is the sweep id: one of experiments.SweepExperiments
	// ("fig5", "fig8", …, "ablation-decision", "delay-spread").
	Experiment string `json:"experiment"`
	// Packets per measurement point (default 2000, the paper's count).
	Packets int `json:"packets,omitempty"`
	// PSDUBytes is the victim packet size (default 400).
	PSDUBytes int `json:"psdu_bytes,omitempty"`
	// Seed is the base RNG seed (default 0; every point derives its own).
	Seed int64 `json:"seed,omitempty"`
	// Axis overrides the experiment's primary axis values (SIR dB, guard
	// MHz, segment count or delay spread, depending on the experiment).
	Axis []float64 `json:"axis,omitempty"`
	// Receivers overrides the receiver arms by name (experiments'
	// ReceiverKind names: "standard", "cprecycle", "oracle", …).
	Receivers []string `json:"receivers,omitempty"`
	// MCS restricts the multi-MCS figures to the named modes.
	MCS []string `json:"mcs,omitempty"`
	// Pool opts the job into the engine's shared pre-encoded interferer
	// waveform pool: substantially faster, same statistics, deterministic
	// per seed — but not packet-identical to the pool-less draw sequence.
	Pool bool `json:"pool,omitempty"`
}

// Request resolves the spec into an experiments.SweepRequest. pool is
// consulted only when the spec opts into the waveform pool; the
// distributed coordinator passes a never-encoded placeholder pool (pool
// entries encode lazily) because it plans jobs without running packets.
func (s Spec) Request(pool *wifi.WaveformPool) (experiments.SweepRequest, error) {
	req := experiments.SweepRequest{
		Experiment: s.Experiment,
		Options:    experiments.Options{Packets: s.Packets, PSDUBytes: s.PSDUBytes, Seed: s.Seed},
		Axis:       s.Axis,
		MCS:        s.MCS,
	}
	if s.Receivers != nil {
		arms := make([]experiments.ReceiverKind, 0, len(s.Receivers))
		for _, name := range s.Receivers {
			k, err := experiments.ParseReceiverKind(name)
			if err != nil {
				return req, err
			}
			arms = append(arms, k)
		}
		req.Receivers = arms
	}
	if s.Pool {
		if pool == nil {
			return req, fmt.Errorf("sweep: spec requests the waveform pool but the engine has none")
		}
		req.Pool = pool
	}
	return req, nil
}

// Normalised returns the spec with fidelity defaults filled — the form
// stored in job manifests and sent by the distributed coordinator to
// workers, so both sides plan from identical fields.
func (s Spec) Normalised() Spec {
	if s.Packets == 0 {
		s.Packets = 2000
	}
	if s.PSDUBytes == 0 {
		s.PSDUBytes = 400
	}
	return s
}
