package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Legacy JSON-lines journal layout (read-only; the writer was replaced by
// the content-addressed binary store in internal/sweep/store):
//
//	{"v":1,"spec":{…normalised spec…},"points":N}     ← header, written once
//	{"point":7,"n":2000,"ok":[1523,1892]}             ← one per completed point
//
// Point lines were appended in completion order; duplicate lines for the
// same point are legal with last-wins semantics (tallies in this repo are
// deterministic, so duplicates are bit-identical anyway). A truncated
// trailing line — a crash mid-append — is dropped. This parser survives
// only to migrate old journals into the store (MigrateDir); nothing in
// the repo writes this format any more.

// JournalHeader is the first line of a legacy journal file, reused as the
// coordinator's per-job manifest shape (internal/sweep/dist). For pooled
// sweeps it also records the waveform pool's identity: a point computed
// from one pool must never be merged with points from another (different
// size or seed means different interferer waveforms AND a different
// per-tile draw range).
type JournalHeader struct {
	V        int   `json:"v"`
	Spec     Spec  `json:"spec"`
	Points   int   `json:"points"`
	PoolSize int   `json:"pool_size,omitempty"`
	PoolSeed int64 `json:"pool_seed,omitempty"`
}

// PointTally is one completed point: its plan index, packet count and
// per-arm success tallies. It is the wire form of a finished point in the
// distributed tier (dist.LeaseResult) and the line format of legacy
// journals.
type PointTally struct {
	Point int   `json:"point"`
	N     int   `json:"n"`
	OK    []int `json:"ok"`
}

// ReadLegacyJournal parses the legacy JSON-lines journal at path: its
// header and the completed points it records (duplicate lines for a
// point: last wins; a torn trailing line is dropped). The header is
// validated structurally (version, point indexes in range) but not
// against any expected spec.
func ReadLegacyJournal(path string) (JournalHeader, map[int]PointTally, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return JournalHeader{}, nil, err
	}
	hdr, restored, err := parseLegacyJournal(data)
	if err != nil {
		return JournalHeader{}, nil, fmt.Errorf("sweep: journal %s: %w", path, err)
	}
	return hdr, restored, nil
}

func parseLegacyJournal(data []byte) (JournalHeader, map[int]PointTally, error) {
	var hdr JournalHeader
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return hdr, nil, fmt.Errorf("empty or torn journal header")
	}
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("bad header: %w", err)
	}
	if hdr.V != 1 {
		return hdr, nil, fmt.Errorf("unsupported version %d", hdr.V)
	}
	restored := make(map[int]PointTally)
	rest := data[nl+1:]
	for len(rest) > 0 {
		end := bytes.IndexByte(rest, '\n')
		if end < 0 {
			break // torn final line: only fully written points count
		}
		line := rest[:end]
		if len(line) > 0 {
			var cp PointTally
			if err := json.Unmarshal(line, &cp); err != nil {
				return hdr, nil, fmt.Errorf("corrupt point line: %w", err)
			}
			if cp.Point < 0 || cp.Point >= hdr.Points {
				return hdr, nil, fmt.Errorf("point %d outside [0,%d)", cp.Point, hdr.Points)
			}
			restored[cp.Point] = cp
		}
		rest = rest[end+1:]
	}
	return hdr, restored, nil
}
