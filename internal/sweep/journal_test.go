package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestJournalDuplicateLastWins pins the documented duplicate-line rule:
// when a journal records the same point twice (a re-leased point whose
// first result landed after all, a resumed coordinator re-appending), the
// LAST line wins — both on ReadJournal and through the engine's
// checkpoint-restore path.
func TestJournalDuplicateLastWins(t *testing.T) {
	e := testEngine()
	defer e.Close()
	path := filepath.Join(t.TempDir(), "dup.ckpt")
	spec := testSpec()
	spec.Checkpoint = path
	full := submitAndWait(t, e, spec)

	// Append a doctored duplicate of point 0 with recognisable tallies.
	arms := len(full.Points[0])
	doctored := JournalPoint{Point: 0, N: spec.Packets, OK: make([]int, arms)}
	for a := range doctored.OK {
		doctored.OK[a] = a + 1
	}
	line, err := json.Marshal(doctored)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, restored, _, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored[0]; got.OK[0] != 1 || got.OK[1] != 2 {
		t.Fatalf("ReadJournal point 0 = %+v, want the doctored duplicate", got)
	}

	// The engine restore path must agree: the resubmitted job restores
	// the doctored tallies verbatim (no recompute, last line wins).
	j, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for a := range res.Points[0] {
		if res.Points[0][a].OK != a+1 {
			t.Fatalf("restored point 0 = %+v, want doctored last-wins tallies", res.Points[0])
		}
	}
}

// TestReadJournalTornTail pins the torn-tail contract at the API level:
// ReadJournal excludes a half-written final line from both the restored
// set and validLen, and ResumeJournal truncates it so the next append
// starts on a clean boundary.
func TestReadJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	hdr := JournalHeader{V: 1, Spec: Spec{Experiment: "fig8", Packets: 4, PSDUBytes: 60}, Points: 6}
	jn, err := CreateJournal(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(JournalPoint{Point: 1, N: 4, OK: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	jn.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-line, exactly as kill -9 during an append would.
	torn := append(append([]byte{}, clean...), []byte(`{"point":2,"n":4,"ok":[3`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	got, restored, validLen, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, hdr) {
		t.Fatalf("header round trip: %+v vs %+v", got, hdr)
	}
	if len(restored) != 1 || restored[1].N != 4 {
		t.Fatalf("restored = %+v, want exactly the clean point", restored)
	}
	if validLen != int64(len(clean)) {
		t.Fatalf("validLen %d, want %d (the clean prefix)", validLen, len(clean))
	}

	jn2, err := ResumeJournal(path, validLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn2.Append(JournalPoint{Point: 3, N: 4, OK: []int{0, 0}}); err != nil {
		t.Fatal(err)
	}
	jn2.Close()
	_, restored, _, err = ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 2 {
		t.Fatalf("after truncate+append restored %d points, want 2", len(restored))
	}
	if _, torn := restored[2]; torn {
		t.Fatal("torn point 2 resurrected")
	}
}

// TestReadJournalRejectsGarbage pins that foreign or corrupt files are
// refused with a diagnosable error instead of silently restoring junk.
func TestReadJournalRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]struct {
		content string
		wantErr string
	}{
		"no newline":     {`{"v":1`, "torn journal header"},
		"not json":       {"hello world\n", "bad header"},
		"bad version":    {`{"v":9,"spec":{},"points":1}` + "\n", "unsupported version"},
		"corrupt point":  {`{"v":1,"spec":{},"points":2}` + "\nnot-json\n", "corrupt point line"},
		"out of range":   {`{"v":1,"spec":{},"points":2}` + "\n" + `{"point":7,"n":1,"ok":[0]}` + "\n", "outside [0,2)"},
		"negative point": {`{"v":1,"spec":{},"points":2}` + "\n" + `{"point":-1,"n":1,"ok":[0]}` + "\n", "outside [0,2)"},
	}
	i := 0
	for name, tc := range cases {
		i++
		path := filepath.Join(dir, fmt.Sprintf("j%d.jsonl", i))
		if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, err := ReadJournal(path)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}
