package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sync"
)

// Checkpoint file layout (JSON lines):
//
//	{"v":1,"spec":{…normalised spec…},"points":N}     ← header, written once
//	{"point":7,"n":2000,"ok":[1523,1892]}             ← one per completed point
//
// The header's spec is the submitted spec with fidelity defaults filled
// and the checkpoint path cleared, so a file can be moved and still
// match. Point lines are appended in completion order (not point order)
// as each point's last shard finishes; "ok" is indexed like the point's
// receiver arms. On resume the file is replayed: lines for in-range
// points with a matching header restore those points verbatim, and
// execution continues with the rest. A truncated trailing line (a crash
// mid-append) is ignored.

// checkpointHeader is the first line of a checkpoint file. For pooled
// sweeps it also records the waveform pool's identity: a point computed
// from one pool must never be merged with points from another (different
// size or seed means different interferer waveforms AND a different
// per-tile draw range).
type checkpointHeader struct {
	V        int   `json:"v"`
	Spec     Spec  `json:"spec"`
	Points   int   `json:"points"`
	PoolSize int   `json:"pool_size,omitempty"`
	PoolSeed int64 `json:"pool_seed,omitempty"`
}

// checkpointPoint is one completed-point line.
type checkpointPoint struct {
	Point int   `json:"point"`
	N     int   `json:"n"`
	OK    []int `json:"ok"`
}

// checkpointFile appends completed points to an open checkpoint.
type checkpointFile struct {
	mu sync.Mutex
	f  *os.File
}

// openCheckpoint opens (or creates) the checkpoint at path for a job
// described by hdr (normalised spec, point count, pool identity). When
// the file already exists its header must match; the restored map holds
// its completed points.
func openCheckpoint(path string, hdr checkpointHeader) (map[int]checkpointPoint, *checkpointFile, error) {
	restored := make(map[int]checkpointPoint)
	data, err := os.ReadFile(path)
	switch {
	case err == nil && len(data) == 0:
		// A crash between file creation and the header write leaves a
		// zero-byte file; treat it as fresh rather than refusing resume
		// forever. (Non-empty unparsable content still refuses below — it
		// may be a foreign file we must not clobber.)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, nil, err
		}
		ck, err := writeHeader(f, hdr)
		return restored, ck, err
	case err == nil:
		restored, validLen, err := parseCheckpoint(data, hdr)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		// Drop any torn trailing line from an interrupted append, so new
		// lines start on a clean boundary.
		if validLen < int64(len(data)) {
			if err := f.Truncate(validLen); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
		return restored, &checkpointFile{f: f}, nil
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, err
		}
		ck, err := writeHeader(f, hdr)
		return restored, ck, err
	default:
		return nil, nil, err
	}
}

// writeHeader writes the header line to a fresh (or emptied) checkpoint
// and wraps the file for appending.
func writeHeader(f *os.File, hdr checkpointHeader) (*checkpointFile, error) {
	line, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	return &checkpointFile{f: f}, nil
}

// parseCheckpoint validates the header against want (spec, point count
// and pool identity) and returns the completed points recorded in data
// plus the byte length of the valid newline-terminated prefix (a torn
// final line from an interrupted append is excluded).
func parseCheckpoint(data []byte, want checkpointHeader) (map[int]checkpointPoint, int64, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, 0, fmt.Errorf("empty or torn checkpoint header")
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, 0, fmt.Errorf("bad header: %w", err)
	}
	if hdr.V != 1 {
		return nil, 0, fmt.Errorf("unsupported version %d", hdr.V)
	}
	if !reflect.DeepEqual(hdr, want) {
		return nil, 0, fmt.Errorf("spec mismatch (checkpoint belongs to a different sweep or pool)")
	}
	nPoints := want.Points
	restored := make(map[int]checkpointPoint)
	validLen := int64(nl + 1)
	rest := data[nl+1:]
	for len(rest) > 0 {
		end := bytes.IndexByte(rest, '\n')
		if end < 0 {
			break // torn final line: only fully written points count
		}
		line := rest[:end]
		if len(line) > 0 {
			var cp checkpointPoint
			if err := json.Unmarshal(line, &cp); err != nil {
				return nil, 0, fmt.Errorf("corrupt point line: %w", err)
			}
			if cp.Point < 0 || cp.Point >= nPoints {
				return nil, 0, fmt.Errorf("point %d outside [0,%d)", cp.Point, nPoints)
			}
			restored[cp.Point] = cp
		}
		validLen += int64(end + 1)
		rest = rest[end+1:]
	}
	return restored, validLen, nil
}

// append writes one completed-point line.
func (c *checkpointFile) append(p checkpointPoint) error {
	line, err := json.Marshal(p)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	_, err = c.f.Write(append(line, '\n'))
	return err
}

// close flushes and closes the file; later appends are no-ops.
func (c *checkpointFile) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}
