package dsp

import "testing"

// TestSlideRotatedBinsEdgeCases covers the selection-driven corner cases
// of the sparse rotated slide: an empty selection is a no-op, the full-bin
// selection is exactly equivalent to SlideRotated, and delta values at or
// beyond the window size reduce mod N (including negative deltas).
func TestSlideRotatedBinsEdgeCases(t *testing.T) {
	const n = 64
	r := NewRand(37)
	x := randSignal(r, 3*n)
	s := MustSlidingDFT(n)
	diffs := make([]complex128, 3)
	for j := range diffs {
		diffs[j] = x[n+j] - x[j]
	}

	// Empty selection: no bin may change.
	bins := FFT(x[:n])
	before := append([]complex128(nil), bins...)
	s.SlideRotatedBins(bins, diffs, 7, nil)
	s.SlideRotatedBins(bins, diffs, 7, []int{})
	if d := MaxAbsDiff(bins, before); d != 0 {
		t.Fatalf("empty selection changed bins by %g", d)
	}

	// Full-bin selection ≡ SlideRotated, bit for bit.
	full := make([]int, n)
	for k := range full {
		full[k] = k
	}
	want := append([]complex128(nil), before...)
	s.SlideRotated(want, diffs, 7)
	s.SlideRotatedBins(bins, diffs, 7, full)
	for k := range bins {
		if bins[k] != want[k] {
			t.Fatalf("full selection bin %d: %v, want %v", k, bins[k], want[k])
		}
	}

	// Delta wraps: δ, δ±N and δ+2N must produce identical updates, and
	// δ = N must behave as δ = 0.
	for _, base := range []int{0, 1, n - 1} {
		ref := append([]complex128(nil), before...)
		s.SlideRotatedBins(ref, diffs, base, full)
		for _, delta := range []int{base + n, base + 2*n, base - n} {
			got := append([]complex128(nil), before...)
			s.SlideRotatedBins(got, diffs, delta, full)
			for k := range got {
				if got[k] != ref[k] {
					t.Fatalf("delta %d bin %d: %v, want %v (δ=%d)", delta, k, got[k], ref[k], base)
				}
			}
		}
	}

	// m = 0 is a no-op even with a selection; m > N panics.
	bins2 := append([]complex128(nil), before...)
	s.SlideRotatedBins(bins2, nil, 5, full)
	if d := MaxAbsDiff(bins2, before); d != 0 {
		t.Fatalf("zero-step slide changed bins by %g", d)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("oversized step did not panic")
			}
		}()
		s.SlideRotatedBins(bins2, make([]complex128, n+1), 5, full)
	}()
}

func TestCyclicShiftInto(t *testing.T) {
	r := NewRand(41)
	x := randSignal(r, 17)
	for _, k := range []int{0, 1, 5, 16, 17, 18, -1, -17, -40, 200} {
		want := CyclicShift(x, k)
		got := make([]complex128, len(x))
		CyclicShiftInto(got, x, k)
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("k=%d: CyclicShiftInto differs from CyclicShift by %g", k, d)
		}
		// Reference semantics: out[i] = x[(i+k) mod n].
		for i := range got {
			j := ((i+k)%len(x) + len(x)) % len(x)
			if got[i] != x[j] {
				t.Fatalf("k=%d: out[%d] = %v, want x[%d] = %v", k, i, got[i], j, x[j])
			}
		}
	}
	// Empty input and length mismatch.
	CyclicShiftInto(nil, nil, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("length mismatch did not panic")
			}
		}()
		CyclicShiftInto(make([]complex128, 3), x, 1)
	}()
}
