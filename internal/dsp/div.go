package dsp

import "math"

// Divisor precomputes the divisor-dependent half of complex division for a
// fixed divisor h. The runtime divides complex128 values with Smith's
// algorithm (Algorithm 116, CACM 1962) behind an out-of-line call,
// recomputing the divisor's ratio and denominator every time; receivers
// equalise hundreds of observations per symbol by the same per-subcarrier
// Ĥ, so hoisting that half pays per value.
//
// Div performs exactly the remaining operations of the runtime algorithm,
// so the quotient is bit-identical to v / h for finite v and finite
// nonzero h. (The only code path dropped is the C99 NaN/Inf fixup, which
// cannot trigger for such operands.)
type Divisor struct {
	swap         bool // took the |re(h)| < |im(h)| branch of Smith's algorithm
	ratio, denom float64
}

// NewDivisor returns the precomputed divider for h, which must be finite
// and nonzero for the bit-identity guarantee to hold.
func NewDivisor(h complex128) Divisor {
	if math.Abs(real(h)) >= math.Abs(imag(h)) {
		ratio := imag(h) / real(h)
		return Divisor{ratio: ratio, denom: real(h) + ratio*imag(h)}
	}
	ratio := real(h) / imag(h)
	return Divisor{swap: true, ratio: ratio, denom: imag(h) + ratio*real(h)}
}

// Div returns v / h (see type comment for the bit-identity contract).
func (d Divisor) Div(v complex128) complex128 {
	e, f := d.DivRI(real(v), imag(v))
	return complex(e, f)
}

// DivRI is Div on planar components: it returns the real and imaginary
// parts of complex(vr, vi) / h.
func (d Divisor) DivRI(vr, vi float64) (float64, float64) {
	if !d.swap {
		return (vr + vi*d.ratio) / d.denom, (vi - vr*d.ratio) / d.denom
	}
	return (vr*d.ratio + vi) / d.denom, (vi*d.ratio - vr) / d.denom
}
