package dsp

import (
	"encoding/binary"
	"math"
	"testing"
)

// Fuzz targets pinning the dispatched SIMD kernels bit-identical to the
// purego/scalar twins on arbitrary inputs. The harnesses sanitise raw
// bytes to finite float64s (the bit-exactness contract is stated for
// finite operands: NaN payload propagation through x86 vector ops
// depends on operand order, which the contract deliberately does not
// constrain), but otherwise sizes, deltas, bin selections and values are
// all fuzzer-chosen. On scalar-only machines/builds both paths coincide
// and the targets trivially pass.

// fuzzFloats derives n finite float64s from data, cycling as needed.
func fuzzFloats(data []byte, seed uint64, n int) []float64 {
	out := make([]float64, n)
	st := seed | 1
	for i := range out {
		var raw uint64
		if len(data) >= 8 {
			off := (i * 8) % len(data)
			var b [8]byte
			for j := range b {
				b[j] = data[(off+j)%len(data)]
			}
			raw = binary.LittleEndian.Uint64(b[:]) ^ st
		} else {
			raw = st
		}
		st = st*6364136223846793005 + 1442695040888963407
		f := math.Float64frombits(raw)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// Fold the bits to a modest finite value instead.
			f = float64(int64(raw%(1<<20))-1<<19) / 1024
		}
		out[i] = f
	}
	return out
}

func planarFromFloats(re, im []float64) Planar {
	p := NewPlanar(len(re))
	copy(p.Re, re)
	copy(p.Im, im)
	return p
}

func bitsEqual(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func fuzzComparePlanar(t *testing.T, ctx string, simd, scalar Planar) {
	t.Helper()
	if !bitsEqual(simd.Re, scalar.Re) || !bitsEqual(simd.Im, scalar.Im) {
		t.Fatalf("%s: SIMD result differs from scalar twin", ctx)
	}
}

func FuzzForwardPlanar(f *testing.F) {
	f.Add(uint8(8), uint64(1), true, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(5), uint64(99), false, []byte{0xff, 0x80, 0x01})
	f.Add(uint8(1), uint64(3), true, []byte{})
	f.Fuzz(func(t *testing.T, logN uint8, seed uint64, fwd bool, data []byte) {
		n := 1 << (int(logN)%10 + 1) // 2 .. 1024
		p := MustFFTPlan(n)
		re := fuzzFloats(data, seed, n)
		im := fuzzFloats(data, seed^0xabcdef, n)
		simd := planarFromFloats(re, im)
		scalar := planarFromFloats(re, im)
		if fwd {
			p.ForwardPlanar(simd)
			forceScalarDuring(func() { p.ForwardPlanar(scalar) })
		} else {
			p.InversePlanar(simd)
			forceScalarDuring(func() { p.InversePlanar(scalar) })
		}
		fuzzComparePlanar(t, "transformPlanar", simd, scalar)
	})
}

func FuzzSlideRotatedTab(f *testing.F) {
	f.Add(uint16(256), uint8(4), int16(60), uint64(7), true, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint16(12), uint8(1), int16(-3), uint64(1), false, []byte{9})
	f.Add(uint16(100), uint8(3), int16(999), uint64(42), true, []byte{0xaa, 0x55, 0x00, 0x10})
	f.Fuzz(func(t *testing.T, nRaw uint16, mRaw uint8, delta int16, seed uint64, alias bool, data []byte) {
		n := int(nRaw)%300 + 1
		m := int(mRaw)%8 + 1
		if m > n {
			m = n
		}
		s := MustSlidingDFT(n)
		// Fuzzer-shaped bin selection: a bitmask walk over [0, n) keeps
		// bins unique and produces arbitrary mixes of dense runs and
		// scattered singletons.
		var sel []int
		for k := 0; k < n; k++ {
			if len(data) == 0 {
				break
			}
			if data[k%len(data)]>>(k%8)&1 == 1 {
				sel = append(sel, k)
			}
		}
		tab, err := s.SlideTabFor(int(delta), m, sel)
		if err != nil {
			t.Fatal(err)
		}
		binsRe := fuzzFloats(data, seed, n)
		binsIm := fuzzFloats(data, seed^0x1111, n)
		dfRe := fuzzFloats(data, seed^0x2222, m)
		dfIm := fuzzFloats(data, seed^0x3333, m)
		diffs := planarFromFloats(dfRe, dfIm)
		src := planarFromFloats(binsRe, binsIm)
		if alias {
			simd := planarFromFloats(binsRe, binsIm)
			scalar := planarFromFloats(binsRe, binsIm)
			s.SlideRotatedTab(simd, simd, diffs, tab)
			forceScalarDuring(func() { s.SlideRotatedTab(scalar, scalar, diffs, tab) })
			fuzzComparePlanar(t, "SlideRotatedTab aliased", simd, scalar)
			return
		}
		outRe := fuzzFloats(data, seed^0x4444, n)
		outIm := fuzzFloats(data, seed^0x5555, n)
		simd := planarFromFloats(outRe, outIm)
		scalar := planarFromFloats(outRe, outIm)
		s.SlideRotatedTab(simd, src, diffs, tab)
		forceScalarDuring(func() { s.SlideRotatedTab(scalar, src, diffs, tab) })
		fuzzComparePlanar(t, "SlideRotatedTab", simd, scalar)
	})
}

func FuzzFreqShiftPlanar(f *testing.F) {
	f.Add(uint16(130), uint64(5), int64(3), uint64(math.Float64bits(3.7)), []byte{1, 2, 3, 4})
	f.Add(uint16(64), uint64(9), int64(-40), uint64(math.Float64bits(-0.25)), []byte{})
	f.Add(uint16(1), uint64(2), int64(1<<40), uint64(math.Float64bits(100.5)), []byte{7, 7})
	f.Fuzz(func(t *testing.T, nRaw uint16, seed uint64, start int64, shiftBits uint64, data []byte) {
		n := int(nRaw) % 400
		shift := math.Float64frombits(shiftBits)
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = float64(int64(shiftBits%4096) - 2048)
		}
		re := fuzzFloats(data, seed, n)
		im := fuzzFloats(data, seed^0x7777, n)
		simd := planarFromFloats(re, im)
		scalar := planarFromFloats(re, im)
		FreqShiftPlanar(simd, shift, 256, int(start%(1<<31)))
		forceScalarDuring(func() { FreqShiftPlanar(scalar, shift, 256, int(start%(1<<31))) })
		fuzzComparePlanar(t, "FreqShiftPlanar", simd, scalar)
	})
}
