package dsp

import (
	"fmt"
	"slices"
)

// SlideTab is a precomputed twiddle schedule for SlideRotatedTab: the
// e^{+i 2π k (δ−j) / N} factors of one rotated-domain slide of fixed step
// m restricted to a fixed bin selection, flattened in (bin-major, j-minor)
// order as re/im pairs. Receivers advance the same segment plan over every
// OFDM symbol, so the (delta, m, sel) triple of each slide recurs
// packet after packet; the table replaces all modular index arithmetic of
// SlideRotatedBins with one linear read stream. Tables are immutable and
// cached on the SlidingDFT, so they are safe for concurrent use.
type SlideTab struct {
	m   int
	sel []int
	tw  []float64 // len(sel)*m re/im pairs
	// SIMD layout (built by buildVec when assembly kernels are
	// available). Receiver bin selections are dominated by contiguous
	// subcarrier runs, so the schedule is split into dense vector runs —
	// maximal stretches of consecutive bins, in groups of asmLanes, with
	// their twiddles transposed to j-major lane vectors in twV so
	// slideTabASM reads one linear stream and needs no gathers. runs
	// holds (k0, twOff, groups) int triples, one per dense run, consumed
	// by the single slideTabASM call; scalarPos holds the positions
	// (indexes into sel) of every bin left over, which SlideRotatedTab
	// updates with the scalar loop. nil / empty on scalar-only builds.
	twV       []float64
	runs      []int
	scalarPos []int32
}

// Step returns the slide step m the table was built for.
func (t *SlideTab) Step() int { return t.m }

// Bins returns the bin selection the table was built for (not a copy; do
// not modify).
func (t *SlideTab) Bins() []int { return t.sel }

// tabKey identifies a cached slide table: the schedule depends on
// (delta mod n, m) and on the bin selection, folded to a hash here and
// verified on lookup.
type tabKey struct {
	base, m, selHash, selLen int
}

// selHash folds a bin selection to an FNV-1a style hash.
func selHash(sel []int) int {
	h := uint64(1469598103934665603)
	for _, k := range sel {
		h ^= uint64(k)
		h *= 1099511628211
	}
	return int(uint(h) >> 1)
}

// SlideTabFor returns the (process-cached, immutable) twiddle schedule for
// a rotated slide of step m with pre-slide ramp slope delta, restricted to
// the listed bins. All bins must be distinct and in [0, n); m must be in
// [1, n]. (A duplicated bin would make the result depend on update order
// when dst aliases src in SlideRotatedTab — and the SIMD layout processes
// bins in dense-run order, not sel order — so it is rejected here.)
func (s *SlidingDFT) SlideTabFor(delta, m int, sel []int) (*SlideTab, error) {
	n := s.n
	if m <= 0 || m > n {
		return nil, fmt.Errorf("dsp: SlideTabFor step %d outside [1,%d]", m, n)
	}
	base := (n - delta%n) % n
	if base < 0 {
		base += n
	}
	key := tabKey{base: base, m: m, selHash: selHash(sel), selLen: len(sel)}
	if v, ok := s.tabs.Load(key); ok {
		t := v.(*SlideTab)
		if slices.Equal(t.sel, sel) {
			return t, nil
		}
		// Hash collision: fall through and build an uncached table.
	}
	// Validation runs on the build path only — a cache hit already
	// guarantees a validated selection.
	seen := make(map[int]struct{}, len(sel))
	for _, k := range sel {
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("dsp: SlideTabFor duplicate bin %d", k)
		}
		seen[k] = struct{}{}
	}
	t := &SlideTab{m: m, sel: slices.Clone(sel), tw: make([]float64, 0, 2*m*len(sel))}
	for _, k := range sel {
		if k < 0 || k >= n {
			return nil, fmt.Errorf("dsp: SlideTabFor bin %d outside [0,%d)", k, n)
		}
		// The same index walk as SlideRotatedBins: start at (base·k) mod n,
		// step k per j. The stored values are copies of the same twiddle
		// table, so products computed from them are bit-identical.
		idx := (base * k) % n
		for j := 0; j < m; j++ {
			t.tw = append(t.tw, s.wP[2*idx], s.wP[2*idx+1])
			idx += k
			if idx >= n {
				idx -= n
			}
		}
	}
	t.buildVec()
	if v, loaded := s.tabs.LoadOrStore(key, t); loaded {
		if prev := v.(*SlideTab); slices.Equal(prev.sel, sel) {
			return prev, nil
		}
	}
	return t, nil
}

// SlideRotatedTab advances src's rotated spectrum by the table's step into
// dst at the table's selected bins only: dst[k] = src[k] + Σ_j diffs[j]·
// e^{+i 2π k (δ−j) / N}, in arithmetic identical to SlideRotatedBins (and
// its planar twin), fused with the copy so unselected dst bins are left
// untouched. diffs must hold exactly Step() samples. src and dst may alias
// (the update is per-bin in place); when they are distinct buffers the
// caller saves the full-window copy the in-place kernels require.
func (s *SlidingDFT) SlideRotatedTab(dst, src, diffs Planar, tab *SlideTab) {
	n := s.n
	if dst.Len() != n || src.Len() != n {
		panic(fmt.Sprintf("dsp: SlideRotatedTab bins length %d/%d, kernel size %d", dst.Len(), src.Len(), n))
	}
	m := tab.m
	if diffs.Len() != m {
		panic(fmt.Sprintf("dsp: SlideRotatedTab got %d diffs, table step %d", diffs.Len(), m))
	}
	sre, sim := src.Re, src.Im
	dre, dim := dst.Re, dst.Im
	tw := tab.tw
	if tab.runs != nil && simdEnabled() {
		// Vectorised path: the dense runs of consecutive bins in one
		// assembly call, then the scalar loop over the leftover bins —
		// arithmetic identical to the all-scalar path (bins are
		// independent and the j walk keeps the scalar operation order).
		slideTabASM(&dre[0], &dim[0], &sre[0], &sim[0],
			&diffs.Re[0], &diffs.Im[0], &tab.twV[0], &tab.runs[0], m, len(tab.runs)/3)
		if m == 4 {
			// Same unrolled shape as the scalar m == 4 specialisation
			// below (identical j order, so identical values).
			d0r, d0i := diffs.Re[0], diffs.Im[0]
			d1r, d1i := diffs.Re[1], diffs.Im[1]
			d2r, d2i := diffs.Re[2], diffs.Im[2]
			d3r, d3i := diffs.Re[3], diffs.Im[3]
			for _, b := range tab.scalarPos {
				k := tab.sel[b]
				p := 8 * int(b)
				t := tw[p : p+8 : p+8]
				accR, accI := sre[k], sim[k]
				accR += d0r*t[0] - d0i*t[1]
				accI += d0r*t[1] + d0i*t[0]
				accR += d1r*t[2] - d1i*t[3]
				accI += d1r*t[3] + d1i*t[2]
				accR += d2r*t[4] - d2i*t[5]
				accI += d2r*t[5] + d2i*t[4]
				accR += d3r*t[6] - d3i*t[7]
				accI += d3r*t[7] + d3i*t[6]
				dre[k] = accR
				dim[k] = accI
			}
			return
		}
		dfr, dfi := diffs.Re, diffs.Im
		for _, b := range tab.scalarPos {
			k := tab.sel[b]
			accR, accI := sre[k], sim[k]
			p := 2 * m * int(b)
			for j := 0; j < m; j++ {
				tr, ti := tw[p], tw[p+1]
				dr, di := dfr[j], dfi[j]
				accR += dr*tr - di*ti
				accI += dr*ti + di*tr
				p += 2
			}
			dre[k] = accR
			dim[k] = accI
		}
		return
	}
	switch m {
	case 4:
		// The dominant receiver shape (native-sample stride on an
		// oversampled grid): unrolled with the four diffs held in
		// registers across the whole bin loop.
		d0r, d0i := diffs.Re[0], diffs.Im[0]
		d1r, d1i := diffs.Re[1], diffs.Im[1]
		d2r, d2i := diffs.Re[2], diffs.Im[2]
		d3r, d3i := diffs.Re[3], diffs.Im[3]
		p := 0
		for _, k := range tab.sel {
			t := tw[p : p+8 : p+8]
			accR, accI := sre[k], sim[k]
			accR += d0r*t[0] - d0i*t[1]
			accI += d0r*t[1] + d0i*t[0]
			accR += d1r*t[2] - d1i*t[3]
			accI += d1r*t[3] + d1i*t[2]
			accR += d2r*t[4] - d2i*t[5]
			accI += d2r*t[5] + d2i*t[4]
			accR += d3r*t[6] - d3i*t[7]
			accI += d3r*t[7] + d3i*t[6]
			dre[k] = accR
			dim[k] = accI
			p += 8
		}
	case 2:
		d0r, d0i := diffs.Re[0], diffs.Im[0]
		d1r, d1i := diffs.Re[1], diffs.Im[1]
		p := 0
		for _, k := range tab.sel {
			t := tw[p : p+4 : p+4]
			accR, accI := sre[k], sim[k]
			accR += d0r*t[0] - d0i*t[1]
			accI += d0r*t[1] + d0i*t[0]
			accR += d1r*t[2] - d1i*t[3]
			accI += d1r*t[3] + d1i*t[2]
			dre[k] = accR
			dim[k] = accI
			p += 4
		}
	case 1:
		d0r, d0i := diffs.Re[0], diffs.Im[0]
		p := 0
		for _, k := range tab.sel {
			tr, ti := tw[p], tw[p+1]
			accR, accI := sre[k], sim[k]
			dre[k] = accR + (d0r*tr - d0i*ti)
			dim[k] = accI + (d0r*ti + d0i*tr)
			p += 2
		}
	default:
		dfr, dfi := diffs.Re, diffs.Im
		p := 0
		for _, k := range tab.sel {
			accR, accI := sre[k], sim[k]
			for j := 0; j < m; j++ {
				tr, ti := tw[p], tw[p+1]
				dr, di := dfr[j], dfi[j]
				accR += dr*tr - di*ti
				accI += dr*ti + di*tr
				p += 2
			}
			dre[k] = accR
			dim[k] = accI
		}
	}
}
