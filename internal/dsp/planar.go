package dsp

import (
	"fmt"
	"math"
)

// Planar holds a complex vector in planar (structure-of-arrays) layout:
// the real parts in Re and the imaginary parts in Im, index-aligned. The
// receiver hot kernels operate on this layout — two flat float64 streams
// vectorise and schedule better than interleaved []complex128, whose
// re/im pairs the compiler must keep as scalar pairs — and convert back
// to []complex128 only at algorithm boundaries (Interleave/Deinterleave).
//
// Invariants: len(Re) == len(Im), and Re and Im must not overlap. A
// Planar value is two slice headers; copying it aliases the same planes.
type Planar struct {
	Re, Im []float64
}

// NewPlanar returns a zeroed planar vector of length n with both planes
// carved from one allocation.
func NewPlanar(n int) Planar {
	buf := make([]float64, 2*n)
	return Planar{Re: buf[:n:n], Im: buf[n:]}
}

// Len returns the logical (complex) length.
func (p Planar) Len() int { return len(p.Re) }

// At returns element i as a complex128.
func (p Planar) At(i int) complex128 { return complex(p.Re[i], p.Im[i]) }

// Set stores v at element i.
func (p Planar) Set(i int, v complex128) {
	p.Re[i] = real(v)
	p.Im[i] = imag(v)
}

// Deinterleave splits src into dst's planes. Lengths must match. The
// conversion is exact (a bit-copy of each component).
func Deinterleave(dst Planar, src []complex128) {
	if dst.Len() != len(src) {
		panic(fmt.Sprintf("dsp: Deinterleave dst length %d, src length %d", dst.Len(), len(src)))
	}
	re, im := dst.Re, dst.Im
	for i, v := range src {
		re[i] = real(v)
		im[i] = imag(v)
	}
}

// Interleave merges src's planes into dst. Lengths must match. The
// conversion is exact (a bit-copy of each component).
func Interleave(dst []complex128, src Planar) {
	if src.Len() != len(dst) {
		panic(fmt.Sprintf("dsp: Interleave dst length %d, src length %d", len(dst), src.Len()))
	}
	re, im := src.Re, src.Im
	for i := range dst {
		dst[i] = complex(re[i], im[i])
	}
}

// CopyPlanar copies src into dst (lengths must match).
func CopyPlanar(dst, src Planar) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("dsp: CopyPlanar dst length %d, src length %d", dst.Len(), src.Len()))
	}
	copy(dst.Re, src.Re)
	copy(dst.Im, src.Im)
}

// Scale multiplies p in place by the real factor g. Values match the
// interleaved Scale exactly (the sign of a zero result may differ, which
// compares equal).
func (p Planar) Scale(g float64) {
	for i := range p.Re {
		p.Re[i] *= g
	}
	for i := range p.Im {
		p.Im[i] *= g
	}
}

// ForwardPlanar is Forward on planar data: the same radix-2 butterflies in
// the same order on split planes, so the output is bit-identical to the
// interleaved transform. On machines with SIMD support the butterfly
// stages run in assembly (see dispatch.go); the result is bit-identical
// either way.
func (p *FFTPlan) ForwardPlanar(x Planar) {
	if x.Len() != p.n {
		panic(fmt.Sprintf("dsp: ForwardPlanar length %d, plan size %d", x.Len(), p.n))
	}
	p.transformPlanar(x.Re, x.Im, true)
}

// InversePlanar is Inverse on planar data, including the 1/N scaling.
func (p *FFTPlan) InversePlanar(x Planar) {
	if x.Len() != p.n {
		panic(fmt.Sprintf("dsp: InversePlanar length %d, plan size %d", x.Len(), p.n))
	}
	p.transformPlanar(x.Re, x.Im, false)
	x.Scale(1 / float64(p.n))
}

// transformPlanar mirrors transform butterfly-for-butterfly: each complex
// operation is expanded to the float operations the compiler emits for the
// interleaved form ((ac−bd, ad+bc) products, adds/subs in the same order),
// so the two paths produce identical values.
func (p *FFTPlan) transformPlanar(re, im []float64, fwd bool) {
	if p.transformPlanarSIMD(re, im, fwd) {
		return
	}
	twP := p.fwdP
	if !fwd {
		twP = p.invP
	}
	n := p.n
	bitrevPlanar(p.revPairs, re, im)
	if n < 2 {
		return
	}
	// First stage (size 2): its only twiddle is w⁰ = (1, −0), whose
	// multiply reproduces the operand's value exactly, so the butterflies
	// reduce to add/sub pairs (value-identical to the generic stage).
	for j := 0; j+1 < n; j += 2 {
		xr, xi := re[j+1], im[j+1]
		re[j+1] = re[j] - xr
		im[j+1] = im[j] - xi
		re[j] = re[j] + xr
		im[j] = im[j] + xi
	}
	// Remaining stages run twiddle-outer: each twiddle is loaded once and
	// applied to every butterfly group at its offset (stride size), so the
	// inner loop touches only the data planes. Butterflies within a stage
	// are independent, so reordering them leaves every result bit-identical
	// to the one-group-at-a-time interleaved transform.
	for size := 4; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for j := 0; j < half; j++ {
			wr, wi := twP[2*step*j], twP[2*step*j+1]
			for lo := j; lo+half < n; lo += size {
				hi := lo + half
				xr, xi := re[hi], im[hi]
				tr := wr*xr - wi*xi
				ti := wr*xi + wi*xr
				re[hi] = re[lo] - tr
				im[hi] = im[lo] - ti
				re[lo] = re[lo] + tr
				im[lo] = im[lo] + ti
			}
		}
	}
}

// FreqShiftPlanar is FreqShift on planar data: the same phasor recurrence
// with the same resynchronisation cadence, value-identical to the
// interleaved kernel. On machines with SIMD support the per-sample
// rotation runs in assembly (the recurrence itself stays scalar, so the
// rotator values — and therefore the output — are bit-identical).
func FreqShiftPlanar(x Planar, shiftBins float64, n int, startSample int) {
	w := 2 * math.Pi * shiftBins / float64(n)
	ss, cs := math.Sincos(w)
	stepR, stepI := cs, ss
	if freqShiftPlanarSIMD(x, w, stepR, stepI, startSample) {
		return
	}
	var rotR, rotI float64
	re, im := x.Re, x.Im
	for t := range re {
		if t%freqShiftResync == 0 {
			s, c := math.Sincos(w * float64(startSample+t))
			rotR, rotI = c, s
		}
		xr, xi := re[t], im[t]
		re[t] = xr*rotR - xi*rotI
		im[t] = xr*rotI + xi*rotR
		rotR, rotI = rotR*stepR-rotI*stepI, rotR*stepI+rotI*stepR
	}
}

// SlidePlanar is Slide on planar data: identical per-bin update arithmetic
// on split planes.
func (s *SlidingDFT) SlidePlanar(bins, outgoing, incoming Planar) {
	n := s.n
	if bins.Len() != n {
		panic(fmt.Sprintf("dsp: SlidePlanar bins length %d, kernel size %d", bins.Len(), n))
	}
	m := outgoing.Len()
	if incoming.Len() != m {
		panic(fmt.Sprintf("dsp: SlidePlanar got %d outgoing but %d incoming samples", m, incoming.Len()))
	}
	if m == 0 {
		return
	}
	if m > n {
		panic(fmt.Sprintf("dsp: SlidePlanar step %d exceeds window size %d", m, n))
	}
	wp := s.wP
	rotStep := n - m
	if rotStep == n {
		rotStep = 0
	}
	rot := 0
	for k := 0; k < n; k++ {
		accR, accI := bins.Re[k], bins.Im[k]
		idx := 0
		for j := 0; j < m; j++ {
			dr := incoming.Re[j] - outgoing.Re[j]
			di := incoming.Im[j] - outgoing.Im[j]
			tr, ti := wp[2*idx], wp[2*idx+1]
			accR += dr*tr - di*ti
			accI += dr*ti + di*tr
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		tr, ti := wp[2*rot], wp[2*rot+1]
		bins.Re[k] = accR*tr - accI*ti
		bins.Im[k] = accR*ti + accI*tr
		rot += rotStep
		if rot >= n {
			rot -= n
		}
	}
}

// SlideRotatedPlanar is SlideRotated on planar data: the same rotated-
// domain multiply-add per (bin, diff), so the result is value-identical
// to the interleaved kernel.
func (s *SlidingDFT) SlideRotatedPlanar(bins, diffs Planar, delta int) {
	n := s.n
	if bins.Len() != n {
		panic(fmt.Sprintf("dsp: SlideRotatedPlanar bins length %d, kernel size %d", bins.Len(), n))
	}
	m := diffs.Len()
	if m == 0 {
		return
	}
	if m > n {
		panic(fmt.Sprintf("dsp: SlideRotatedPlanar step %d exceeds window size %d", m, n))
	}
	wp := s.wP
	base := (n - delta%n) % n
	if base < 0 {
		base += n
	}
	bre, bim := bins.Re, bins.Im
	start := 0
	if m == 4 {
		// The dominant receiver shape: the four diffs are loop-invariant
		// across bins, so the specialisation holds them in registers and
		// unrolls the twiddle walk (additions in the same j order as the
		// generic loop — value-identical).
		d0r, d0i := diffs.Re[0], diffs.Im[0]
		d1r, d1i := diffs.Re[1], diffs.Im[1]
		d2r, d2i := diffs.Re[2], diffs.Im[2]
		d3r, d3i := diffs.Re[3], diffs.Im[3]
		for k := 0; k < n; k++ {
			accR, accI := bre[k], bim[k]
			idx := start
			tr, ti := wp[2*idx], wp[2*idx+1]
			accR += d0r*tr - d0i*ti
			accI += d0r*ti + d0i*tr
			idx += k
			if idx >= n {
				idx -= n
			}
			tr, ti = wp[2*idx], wp[2*idx+1]
			accR += d1r*tr - d1i*ti
			accI += d1r*ti + d1i*tr
			idx += k
			if idx >= n {
				idx -= n
			}
			tr, ti = wp[2*idx], wp[2*idx+1]
			accR += d2r*tr - d2i*ti
			accI += d2r*ti + d2i*tr
			idx += k
			if idx >= n {
				idx -= n
			}
			tr, ti = wp[2*idx], wp[2*idx+1]
			accR += d3r*tr - d3i*ti
			accI += d3r*ti + d3i*tr
			bre[k] = accR
			bim[k] = accI
			start += base
			if start >= n {
				start -= n
			}
		}
		return
	}
	dre, dim := diffs.Re, diffs.Im
	for k := 0; k < n; k++ {
		accR, accI := bre[k], bim[k]
		idx := start
		for j := 0; j < m; j++ {
			tr, ti := wp[2*idx], wp[2*idx+1]
			dr, di := dre[j], dim[j]
			accR += dr*tr - di*ti
			accI += dr*ti + di*tr
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		bre[k] = accR
		bim[k] = accI
		start += base
		if start >= n {
			start -= n
		}
	}
}

// SlideRotatedBinsPlanar is SlideRotatedBins on planar data: only the
// listed bins are updated, in arithmetic identical to the full planar (and
// interleaved) update; unlisted bins are left untouched.
func (s *SlidingDFT) SlideRotatedBinsPlanar(bins, diffs Planar, delta int, sel []int) {
	n := s.n
	if bins.Len() != n {
		panic(fmt.Sprintf("dsp: SlideRotatedBinsPlanar bins length %d, kernel size %d", bins.Len(), n))
	}
	m := diffs.Len()
	if m == 0 {
		return
	}
	if m > n {
		panic(fmt.Sprintf("dsp: SlideRotatedBinsPlanar step %d exceeds window size %d", m, n))
	}
	wp := s.wP
	base := (n - delta%n) % n
	if base < 0 {
		base += n
	}
	dre, dim := diffs.Re, diffs.Im
	for _, k := range sel {
		accR, accI := bins.Re[k], bins.Im[k]
		idx := (base * k) % n
		for j := 0; j < m; j++ {
			tr, ti := wp[2*idx], wp[2*idx+1]
			dr, di := dre[j], dim[j]
			accR += dr*tr - di*ti
			accI += dr*ti + di*tr
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		bins.Re[k] = accR
		bins.Im[k] = accI
	}
}
