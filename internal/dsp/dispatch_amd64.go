//go:build !purego

package dsp

// asmLanes is the vector width (in float64 lanes) of the amd64 kernels:
// one 256-bit AVX2 register. The vector twiddle schedules (SlideTab.twV,
// FFTPlan.fwdV/invV) are laid out in groups of this many lanes.
const asmLanes = 4

// cpuid and xgetbv are implemented in asm_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// initASM detects AVX2 the standard way: OSXSAVE + AVX advertised by
// CPUID.1:ECX, YMM state enabled in XCR0, and AVX2 in CPUID.7.0:EBX.
// Anything missing leaves the scalar fallback in charge.
func initASM() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	const osxsave = 1 << 27
	const avx = 1 << 28
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsave == 0 || c1&avx == 0 {
		return
	}
	// XCR0 bits 1 (SSE) and 2 (YMM) must both be OS-enabled.
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 {
		return
	}
	const avx2 = 1 << 5
	_, b7, _, _ := cpuid(7, 0)
	if b7&avx2 == 0 {
		return
	}
	asmOK = true
	asmName = "avx2"
}
