//go:build !purego

package dsp

// asmLanes is the vector width (in float64 lanes) of the arm64 kernels:
// one 128-bit NEON register. The vector twiddle schedules (SlideTab.twV,
// FFTPlan.fwdV/invV) are laid out in groups of this many lanes.
const asmLanes = 2

// initASM enables the NEON kernels unconditionally: advanced SIMD with
// 64-bit floating point lanes is baseline on arm64, so there is nothing
// to detect.
func initASM() {
	asmOK = true
	asmName = "neon"
}
