package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func approxEq(a, b complex128, eps float64) bool {
	return cmplx.Abs(a-b) <= eps
}

func TestIsPow2(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 63: false, 64: true, 1024: true, 1000: false,
	}
	for n, want := range cases {
		if got := IsPow2(n); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 65: 128, 1000: 1024}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNextPow2PanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NextPow2(0)")
		}
	}()
	NextPow2(0)
}

func TestNewFFTPlanRejectsNonPow2(t *testing.T) {
	if _, err := NewFFTPlan(48); err == nil {
		t.Fatal("expected error for size 48")
	}
	if _, err := NewFFTPlan(0); err == nil {
		t.Fatal("expected error for size 0")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	X := FFT(x)
	for k, v := range X {
		if !approxEq(v, 1, tol) {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin k0 concentrates all energy in bin k0.
	const n, k0 = 64, 5
	x := make([]complex128, n)
	for t2 := range x {
		theta := 2 * math.Pi * float64(k0) * float64(t2) / float64(n)
		x[t2] = cmplx.Exp(complex(0, theta))
	}
	X := FFT(x)
	for k, v := range X {
		want := complex(0, 0)
		if k == k0 {
			want = complex(float64(n), 0)
		}
		if !approxEq(v, want, 1e-8) {
			t.Fatalf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := NewRand(1)
	for _, n := range []int{2, 4, 8, 64, 256} {
		x := r.CNVector(n, 1)
		fast := FFT(x)
		slow := DFTNaive(x)
		if d := MaxAbsDiff(fast, slow); d > 1e-7 {
			t.Fatalf("n=%d: FFT differs from naive DFT by %g", n, d)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	r := NewRand(2)
	f := func(seed int64) bool {
		rr := NewRand(seed)
		n := 1 << (1 + rr.Intn(9)) // 2..1024
		x := rr.CNVector(n, 1)
		y := IFFT(FFT(x))
		return MaxAbsDiff(x, y) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: r.Rand}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := NewRand(seed)
		n := 64
		a := rr.CNVector(n, 1)
		b := rr.CNVector(n, 1)
		alpha := complex(rr.NormFloat64(), rr.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = alpha*a[i] + b[i]
		}
		lhs := FFT(sum)
		fa, fb := FFT(a), FFT(b)
		rhs := make([]complex128, n)
		for i := range rhs {
			rhs[i] = alpha*fa[i] + fb[i]
		}
		return MaxAbsDiff(lhs, rhs) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy in time equals energy in frequency divided by N.
	f := func(seed int64) bool {
		rr := NewRand(seed)
		n := 128
		x := rr.CNVector(n, 1)
		et := Energy(x)
		ef := Energy(FFT(x)) / float64(n)
		return math.Abs(et-ef) < 1e-8*et+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicShiftTheoremProperty(t *testing.T) {
	// FFT of a circular left-shift by k multiplies bin f by e^{+i2πfk/N}.
	f := func(seed int64) bool {
		rr := NewRand(seed)
		n := 64
		k := rr.Intn(n)
		x := rr.CNVector(n, 1)
		shifted := FFT(CyclicShift(x, k))
		base := FFT(x)
		for bin := 0; bin < n; bin++ {
			theta := 2 * math.Pi * float64(bin) * float64(k) / float64(n)
			want := base[bin] * cmplx.Exp(complex(0, theta))
			if !approxEq(shifted[bin], want, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicShiftInverse(t *testing.T) {
	r := NewRand(3)
	x := r.CNVector(32, 1)
	y := CyclicShift(CyclicShift(x, 5), -5)
	if MaxAbsDiff(x, y) > tol {
		t.Fatal("shift then unshift is not identity")
	}
	z := CyclicShift(x, 32)
	if MaxAbsDiff(x, z) > tol {
		t.Fatal("full-length shift is not identity")
	}
}

func TestPlanReuseMatchesOneShot(t *testing.T) {
	r := NewRand(4)
	p := MustFFTPlan(64)
	for i := 0; i < 5; i++ {
		x := r.CNVector(64, 1)
		want := FFT(x)
		got := make([]complex128, 64)
		copy(got, x)
		p.Forward(got)
		if MaxAbsDiff(want, got) > tol {
			t.Fatalf("iteration %d: plan reuse mismatch", i)
		}
	}
}

func TestForwardPanicsOnWrongLength(t *testing.T) {
	p := MustFFTPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong length")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestFreqShiftMovesTone(t *testing.T) {
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1 // DC tone
	}
	FreqShift(x, 3, n, 0)
	X := FFT(x)
	if cmplx.Abs(X[3]) < float64(n)-1e-6 {
		t.Fatalf("expected energy at bin 3, |X[3]| = %v", cmplx.Abs(X[3]))
	}
	for k := range X {
		if k != 3 && cmplx.Abs(X[k]) > 1e-6 {
			t.Fatalf("leakage at bin %d: %v", k, cmplx.Abs(X[k]))
		}
	}
}

func TestFreqShiftPhaseContinuity(t *testing.T) {
	// Shifting one long block equals shifting two halves with startSample.
	r := NewRand(5)
	x := r.CNVector(100, 1)
	whole := make([]complex128, len(x))
	copy(whole, x)
	FreqShift(whole, 2.5, 64, 0)

	a := make([]complex128, 50)
	b := make([]complex128, 50)
	copy(a, x[:50])
	copy(b, x[50:])
	FreqShift(a, 2.5, 64, 0)
	FreqShift(b, 2.5, 64, 50)
	joined := append(a, b...)
	if MaxAbsDiff(whole, joined) > 1e-9 {
		t.Fatal("FreqShift not phase-continuous across blocks")
	}
}

func TestPowerAndEnergy(t *testing.T) {
	x := []complex128{3 + 4i, 0, 0, 0}
	if got := Energy(x); math.Abs(got-25) > tol {
		t.Fatalf("Energy = %v, want 25", got)
	}
	if got := Power(x); math.Abs(got-6.25) > tol {
		t.Fatalf("Power = %v, want 6.25", got)
	}
	if Power(nil) != 0 {
		t.Fatal("Power(nil) should be 0")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -10, 0, 3, 20} {
		if got := DB(FromDB(db)); math.Abs(got-db) > 1e-9 {
			t.Fatalf("DB(FromDB(%v)) = %v", db, got)
		}
	}
	if !math.IsInf(DB(0), -1) {
		t.Fatal("DB(0) should be -Inf")
	}
}

func TestScale(t *testing.T) {
	x := []complex128{1 + 1i, 2}
	Scale(x, 0.5)
	if !approxEq(x[0], 0.5+0.5i, tol) || !approxEq(x[1], 1, tol) {
		t.Fatalf("Scale wrong: %v", x)
	}
}

func TestAddIntoClipsOutOfRange(t *testing.T) {
	dst := make([]complex128, 4)
	AddInto(dst, []complex128{1, 2, 3}, -1) // first sample falls off the left
	want := []complex128{2, 3, 0, 0}
	if MaxAbsDiff(dst, want) > tol {
		t.Fatalf("AddInto negative offset: %v", dst)
	}
	dst2 := make([]complex128, 4)
	AddInto(dst2, []complex128{1, 2, 3}, 2) // last sample falls off the right
	want2 := []complex128{0, 0, 1, 2}
	if MaxAbsDiff(dst2, want2) > tol {
		t.Fatalf("AddInto tail clip: %v", dst2)
	}
}

func TestConvKnown(t *testing.T) {
	x := []complex128{1, 2, 3}
	h := []complex128{1, 1}
	got := Conv(x, h)
	want := []complex128{1, 3, 5, 3}
	if MaxAbsDiff(got, want) > tol {
		t.Fatalf("Conv = %v, want %v", got, want)
	}
	if Conv(nil, h) != nil {
		t.Fatal("Conv with empty input should be nil")
	}
}

func TestConvCommutesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := NewRand(seed)
		a := rr.CNVector(1+rr.Intn(20), 1)
		b := rr.CNVector(1+rr.Intn(20), 1)
		return MaxAbsDiff(Conv(a, b), Conv(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoCorrDetectsRepetition(t *testing.T) {
	r := NewRand(6)
	half := r.CNVector(32, 1)
	x := append(append([]complex128{}, half...), half...)
	c := AutoCorr(x, 32, 32)
	e := Energy(half)
	if math.Abs(cmplx.Abs(c)-e) > 1e-9 {
		t.Fatalf("|AutoCorr| = %v, want %v for perfect repetition", cmplx.Abs(c), e)
	}
}

func TestCrossCorrSelf(t *testing.T) {
	r := NewRand(7)
	x := r.CNVector(16, 1)
	c := CrossCorr(x, x)
	if math.Abs(real(c)-Energy(x)) > 1e-9 || math.Abs(imag(c)) > 1e-9 {
		t.Fatalf("CrossCorr(x,x) = %v, want energy %v", c, Energy(x))
	}
}

func TestStatsHelpers(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); math.Abs(m-5) > tol {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(x); math.Abs(v-32.0/7.0) > tol {
		t.Fatalf("Variance = %v", v)
	}
	if s := StdDev(x); math.Abs(s-math.Sqrt(32.0/7.0)) > tol {
		t.Fatalf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/degenerate stats should be 0")
	}
}

func TestCentroid(t *testing.T) {
	pts := []complex128{1 + 1i, -1 + 1i, 1 - 1i, -1 - 1i}
	if c := Centroid(pts); cmplx.Abs(c) > tol {
		t.Fatalf("Centroid of symmetric set = %v, want 0", c)
	}
	if Centroid(nil) != 0 {
		t.Fatal("Centroid(nil) should be 0")
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-0.5, -0.5},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42).CNVector(8, 1)
	b := NewRand(42).CNVector(8, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed must produce identical sequences")
	}
}

func TestCNVariance(t *testing.T) {
	r := NewRand(8)
	const n = 200000
	x := r.CNVector(n, 2.0)
	p := Power(x)
	if math.Abs(p-2.0) > 0.05 {
		t.Fatalf("CN power = %v, want ~2.0", p)
	}
	if r.CN(0) != 0 {
		t.Fatal("CN with zero variance should be 0")
	}
}

func TestRandBits(t *testing.T) {
	r := NewRand(9)
	bits := r.Bits(1000)
	ones := 0
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("bit value %d out of range", b)
		}
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("bit balance suspicious: %d ones of 1000", ones)
	}
}

func BenchmarkFFT64(b *testing.B) {
	p := MustFFTPlan(64)
	x := NewRand(1).CNVector(64, 1)
	buf := make([]complex128, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}

func BenchmarkFFT256(b *testing.B) {
	p := MustFFTPlan(256)
	x := NewRand(1).CNVector(256, 1)
	buf := make([]complex128, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}
