package dsp

import (
	"math"
	"strconv"
	"testing"
)

// The SIMD dispatch contract: every dispatched kernel must produce
// bit-identical results to its scalar Go twin for finite inputs (no FMA,
// no reassociation, scalar operation order per element — see
// dispatch.go). These tests run each kernel through the live dispatch
// path and through ForceScalar(true) on identical inputs and require
// float64-bit equality. On machines (or builds) without SIMD support
// both runs take the scalar path and the tests pass trivially; the CI
// purego job pins that configuration explicitly.

// forceScalarDuring runs fn with the scalar fallback forced, restoring
// the dispatch state after.
func forceScalarDuring(fn func()) {
	ForceScalar(true)
	defer ForceScalar(false)
	fn()
}

// requireBitsEqual fails unless a and b are bitwise identical float64
// slices.
func requireBitsEqual(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: index %d: %v (%#x) != %v (%#x)",
				ctx, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func requirePlanarBitsEqual(t *testing.T, ctx string, got, want Planar) {
	t.Helper()
	requireBitsEqual(t, ctx+" (re)", got.Re, want.Re)
	requireBitsEqual(t, ctx+" (im)", got.Im, want.Im)
}

func TestSIMDTransformPlanarMatchesScalar(t *testing.T) {
	t.Logf("dispatch: %s", SIMDName())
	r := NewRand(11)
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		p := MustFFTPlan(n)
		x := randSignal(r, n)
		for _, fwd := range []bool{true, false} {
			simd := planarOf(x)
			scalar := planarOf(x)
			if fwd {
				p.ForwardPlanar(simd)
				forceScalarDuring(func() { p.ForwardPlanar(scalar) })
			} else {
				p.InversePlanar(simd)
				forceScalarDuring(func() { p.InversePlanar(scalar) })
			}
			ctx := "forward"
			if !fwd {
				ctx = "inverse"
			}
			requirePlanarBitsEqual(t, ctx+"/"+strconv.Itoa(n), simd, scalar)
		}
	}
}

func TestSIMDSlideRotatedTabMatchesScalar(t *testing.T) {
	r := NewRand(13)
	type shape struct {
		name string
		sel  func(n int) []int
	}
	shapes := []shape{
		{"contiguous", func(n int) []int {
			sel := make([]int, 0, n/2)
			for k := n / 4; k < n/4+n/2 && k < n; k++ {
				sel = append(sel, k)
			}
			return sel
		}},
		{"gap", func(n int) []int {
			var sel []int
			for k := 2; k < n-2; k++ {
				if k != n/2 {
					sel = append(sel, k)
				}
			}
			return sel
		}},
		{"scattered", func(n int) []int {
			var sel []int
			for k := 0; k < n; k += 3 {
				sel = append(sel, k)
			}
			return sel
		}},
		{"short-runs", func(n int) []int {
			var sel []int
			for k := 0; k+2 < n; k += 5 {
				sel = append(sel, k, k+1, k+2)
			}
			return sel
		}},
		{"singleton", func(n int) []int { return []int{n - 1} }},
		{"empty", func(n int) []int { return nil }},
	}
	for _, n := range []int{4, 12, 64, 100, 256} {
		s := MustSlidingDFT(n)
		for _, m := range []int{1, 2, 3, 4} {
			if m > n {
				continue
			}
			for _, delta := range []int{0, 1, 7, -3, n + 5} {
				for _, sh := range shapes {
					sel := sh.sel(n)
					tab, err := s.SlideTabFor(delta, m, sel)
					if err != nil {
						t.Fatal(err)
					}
					bins := planarOf(randSignal(r, n))
					diffs := planarOf(randSignal(r, m))
					// Distinct dst/src.
					dstSIMD, dstScalar := NewPlanar(n), NewPlanar(n)
					base := planarOf(randSignal(r, n))
					CopyPlanar(dstSIMD, base)
					CopyPlanar(dstScalar, base)
					s.SlideRotatedTab(dstSIMD, bins, diffs, tab)
					forceScalarDuring(func() { s.SlideRotatedTab(dstScalar, bins, diffs, tab) })
					ctx := "tab/" + sh.name + "/n=" + strconv.Itoa(n) + "/m=" + strconv.Itoa(m)
					requirePlanarBitsEqual(t, ctx, dstSIMD, dstScalar)
					// Aliased dst == src.
					aSIMD, aScalar := NewPlanar(n), NewPlanar(n)
					CopyPlanar(aSIMD, bins)
					CopyPlanar(aScalar, bins)
					s.SlideRotatedTab(aSIMD, aSIMD, diffs, tab)
					forceScalarDuring(func() { s.SlideRotatedTab(aScalar, aScalar, diffs, tab) })
					requirePlanarBitsEqual(t, ctx+"/aliased", aSIMD, aScalar)
				}
			}
		}
	}
}

func TestSIMDFreqShiftPlanarMatchesScalar(t *testing.T) {
	r := NewRand(17)
	for _, n := range []int{1, 2, 3, 5, 8, 63, 64, 65, 127, 130, 256, 300} {
		x := randSignal(r, n)
		for _, shift := range []float64{0, 1, -2.5, 3.7, 31.03} {
			for _, start := range []int{0, 1, 64, 1000} {
				simd := planarOf(x)
				scalar := planarOf(x)
				FreqShiftPlanar(simd, shift, 256, start)
				forceScalarDuring(func() { FreqShiftPlanar(scalar, shift, 256, start) })
				requirePlanarBitsEqual(t, "freqshift/n="+strconv.Itoa(n), simd, scalar)
			}
		}
	}
}

func TestSlideTabForRejectsDuplicateBins(t *testing.T) {
	s := MustSlidingDFT(16)
	if _, err := s.SlideTabFor(3, 2, []int{1, 5, 1}); err == nil {
		t.Fatal("expected duplicate-bin error")
	}
}

func TestForceScalarToggle(t *testing.T) {
	avail := SIMDName()
	ForceScalar(true)
	if got := SIMDName(); got != "scalar" {
		t.Fatalf("forced scalar, SIMDName = %q", got)
	}
	ForceScalar(false)
	if got := SIMDName(); got != avail {
		t.Fatalf("restored dispatch, SIMDName = %q, want %q", got, avail)
	}
}
