// Package dsp provides the discrete-time signal processing primitives the
// rest of the repository is built on: complex-vector arithmetic, a radix-2
// FFT/IFFT, frequency shifting, correlation, power and dB conversions, and
// small statistics helpers.
//
// Everything operates on []complex128 in place where it safely can, and all
// transforms are deterministic: there is no hidden global state.
//
// # SIMD dispatch
//
// The three hottest planar kernels — SlidingDFT.SlideRotatedTab, the
// FFTPlan.ForwardPlanar/InversePlanar butterfly stages, and
// FreqShiftPlanar — have hand-written assembly fast paths: AVX2 on amd64
// (selected at package init by CPUID feature detection: OSXSAVE + AVX +
// YMM-enabled XCR0 + AVX2) and NEON on arm64 (baseline, always on). The
// Go loops remain the complete, universal fallback: builds tagged purego
// (and every other GOARCH) compile only the scalar code, and the
// ForceScalar test hook flips a live process onto the fallback at any
// time.
//
// The dispatch contract is bit-exactness: the SIMD kernels perform the
// same floating-point operations in the same per-element order as the
// scalar twins — plain vector multiply/add/subtract only, never FMA,
// never reassociation — so for finite inputs every result is
// bit-identical to the fallback (NaN payload propagation is the one
// place x86 vector semantics depend on operand order, which the
// contract does not constrain). Lanes always hold independent bins or
// samples; anything inherently serial (the FreqShiftPlanar phasor
// recurrence, bit-reversal) stays scalar inside the dispatched path.
// The equivalence tests and the FuzzForwardPlanar /
// FuzzSlideRotatedTab / FuzzFreqShiftPlanar targets pin dispatched
// against forced-scalar results bitwise, and the same-seed regression
// pins hold with SIMD enabled.
//
// To feed the vector loads as linear streams, the twiddle schedules are
// re-laid-out at build time (dsp.SlideTab splits its bin selection into
// dense runs of consecutive bins with lane-transposed twiddles;
// FFTPlan keeps stage-major vector twiddle tables). All vector memory
// access is unaligned; callers need no padding or alignment.
//
// # Planar layout
//
// The receiver hot kernels additionally exist in planar (split re/im,
// structure-of-arrays) form operating on the Planar buffer type: the FFT
// butterflies (FFTPlan.ForwardPlanar/InversePlanar), the sliding-DFT
// updates (SlidePlanar, SlideRotatedPlanar, SlideRotatedBinsPlanar and the
// precomputed-schedule SlideRotatedTab), and FreqShiftPlanar. Two flat
// float64 planes keep the inner loops free of the scalar-pair shuffling
// interleaved complex values force on the compiler. Every planar kernel
// performs the same floating-point operations in the same order as its
// interleaved twin, so results are value-identical (only the sign of a
// zero may differ, which compares equal); the exactness tests pin each
// pair against each other. Convert at algorithm boundaries only —
// Deinterleave on entry, Interleave on exit — and never inside a
// per-symbol loop; internal/ofdm's batch segment demodulation stays
// planar from the seed FFT through the last slide and hands planar
// windows to internal/rx, which interleaves single values at the
// equalizer boundary.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPow2 returns the smallest power of two >= n. It panics if n <= 0 or if
// the result would overflow an int.
func NextPow2(n int) int {
	if n <= 0 {
		panic("dsp: NextPow2 of non-positive length")
	}
	p := 1
	for p < n {
		if p > math.MaxInt/2 {
			panic("dsp: NextPow2 overflow")
		}
		p <<= 1
	}
	return p
}

// FFTPlan caches the twiddle factors and bit-reversal permutation for a
// fixed transform size so repeated transforms avoid recomputing them.
// A plan is safe for concurrent use once created.
type FFTPlan struct {
	n       int
	rev     []int
	fwd     []complex128 // forward twiddles e^{-i 2π k / n}, len n/2
	inv     []complex128 // inverse twiddles e^{+i 2π k / n}, len n/2
	scratch bool
	// Copies of fwd/inv as adjacent (re, im) float pairs for the planar
	// transforms (same values).
	fwdP, invP []float64
	// revPairs lists the (i, r) swaps of the bit-reversal permutation
	// (i < r only), so the planar transforms apply it without the
	// per-index comparison.
	revPairs []int32
	// Stage-major vector twiddle layouts for the SIMD butterfly stages
	// (see dispatch_asm.go); nil on scalar-only builds/machines or for
	// plans below 8 points. The values are copies of fwdP/invP.
	fwdV, invV   []float64
	fwdS2, invS2 []float64
}

// NewFFTPlan creates a plan for transforms of the given power-of-two size.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two", n)
	}
	p := &FFTPlan{n: n}
	p.rev = make([]int, n)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		p.rev[i] = r
	}
	for i, r := range p.rev {
		if i < r {
			p.revPairs = append(p.revPairs, int32(i), int32(r))
		}
	}
	half := n / 2
	p.fwd = make([]complex128, half)
	p.inv = make([]complex128, half)
	p.fwdP = make([]float64, 2*half)
	p.invP = make([]float64, 2*half)
	for k := 0; k < half; k++ {
		theta := 2 * math.Pi * float64(k) / float64(n)
		s, c := math.Sincos(theta)
		p.fwd[k] = complex(c, -s)
		p.inv[k] = complex(c, s)
		p.fwdP[2*k], p.fwdP[2*k+1] = c, -s
		p.invP[2*k], p.invP[2*k+1] = c, s
	}
	p.buildVecTwiddles()
	return p, nil
}

// bitrevPlanar applies the bit-reversal permutation to both planes via
// the precomputed swap list.
func bitrevPlanar(pairs []int32, re, im []float64) {
	for p := 0; p < len(pairs); p += 2 {
		i, r := pairs[p], pairs[p+1]
		re[i], re[r] = re[r], re[i]
		im[i], im[r] = im[r], im[i]
	}
}

// MustFFTPlan is NewFFTPlan but panics on error; intended for fixed,
// compile-time-known sizes.
func MustFFTPlan(n int) *FFTPlan {
	p, err := NewFFTPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// planCache holds one immutable FFTPlan per transform size for the whole
// process, so hot paths that construct transforms per packet (receivers,
// channels, modulators) never rebuild twiddle and bit-reversal tables.
var planCache sync.Map // int -> *FFTPlan

// PlanFor returns the process-wide shared plan for power-of-two size n,
// creating and caching it on first use. Plans are immutable after
// construction, so the returned plan is safe for concurrent use.
func PlanFor(n int) (*FFTPlan, error) {
	if v, ok := planCache.Load(n); ok {
		return v.(*FFTPlan), nil
	}
	p, err := NewFFTPlan(n)
	if err != nil {
		return nil, err
	}
	v, _ := planCache.LoadOrStore(n, p)
	return v.(*FFTPlan), nil
}

// MustPlanFor is PlanFor but panics on error.
func MustPlanFor(n int) *FFTPlan {
	p, err := PlanFor(n)
	if err != nil {
		panic(err)
	}
	return p
}

// twiddleTable returns the full-resolution forward twiddle table
// w[r] = e^{-i 2π r / n} for r in [0, n).
func twiddleTable(n int) []complex128 {
	w := make([]complex128, n)
	for r := 0; r < n; r++ {
		s, c := math.Sincos(2 * math.Pi * float64(r) / float64(n))
		w[r] = complex(c, -s)
	}
	return w
}

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

func (p *FFTPlan) transform(x []complex128, tw []complex128) {
	n := p.n
	for i, r := range p.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for j := start; j < start+half; j++ {
				t := tw[k] * x[j+half]
				x[j+half] = x[j] - t
				x[j] = x[j] + t
				k += step
			}
		}
	}
}

// Forward computes the in-place forward DFT
// X[k] = Σ_n x[n]·e^{-i2πkn/N} of a slice whose length equals the plan size.
func (p *FFTPlan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: Forward length %d, plan size %d", len(x), p.n))
	}
	p.transform(x, p.fwd)
}

// Inverse computes the in-place inverse DFT including the 1/N scaling,
// x[n] = (1/N) Σ_k X[k]·e^{+i2πkn/N}.
func (p *FFTPlan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: Inverse length %d, plan size %d", len(x), p.n))
	}
	p.transform(x, p.inv)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

// FFT returns the forward DFT of x in a fresh slice. The length of x must be
// a power of two. The plan is taken from the process-wide cache.
func FFT(x []complex128) []complex128 {
	p := MustPlanFor(len(x))
	out := make([]complex128, len(x))
	copy(out, x)
	p.Forward(out)
	return out
}

// IFFT returns the inverse DFT (with 1/N scaling) of x in a fresh slice.
// The plan is taken from the process-wide cache.
func IFFT(x []complex128) []complex128 {
	p := MustPlanFor(len(x))
	out := make([]complex128, len(x))
	copy(out, x)
	p.Inverse(out)
	return out
}

// DFTNaive computes the forward DFT directly in O(n²); used as a test oracle
// for the fast transform and for non-power-of-two lengths in analyses.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			theta := 2 * math.Pi * float64(k) * float64(t) / float64(n)
			s, c := math.Sincos(theta)
			acc += x[t] * complex(c, -s)
		}
		out[k] = acc
	}
	return out
}

// freqShiftResync bounds the phasor recurrence error in FreqShift: the
// rotator is recomputed exactly every freqShiftResync samples, so the
// accumulated error stays within a few machine epsilons.
const freqShiftResync = 64

// FreqShift multiplies x in place by e^{+i 2π (shift/n) t}, translating the
// spectrum up by shift FFT bins (of an n-point grid). startSample offsets the
// phase ramp so that consecutive blocks of one stream stay phase-continuous.
//
// The rotation uses a phasor recurrence (one complex multiply per sample)
// instead of a per-sample Sincos, resynchronised to the exact angle every
// freqShiftResync samples to keep the drift below ~1e-14 radians.
func FreqShift(x []complex128, shiftBins float64, n int, startSample int) {
	w := 2 * math.Pi * shiftBins / float64(n)
	ss, cs := math.Sincos(w)
	step := complex(cs, ss)
	var rot complex128
	for t := range x {
		if t%freqShiftResync == 0 {
			s, c := math.Sincos(w * float64(startSample+t))
			rot = complex(c, s)
		}
		x[t] *= rot
		rot *= step
	}
}

// CyclicShift returns x circularly shifted left by k samples
// (out[i] = x[(i+k) mod n]). Negative k shifts right. Allocates the
// result; hot paths should use CyclicShiftInto with a reused buffer.
func CyclicShift(x []complex128, k int) []complex128 {
	out := make([]complex128, len(x))
	CyclicShiftInto(out, x, k)
	return out
}

// CyclicShiftInto writes x circularly shifted left by k samples into dst
// (dst[i] = x[(i+k) mod n]), as two straight copies instead of a modulo
// per sample. dst must have the same length as x and must not alias it.
func CyclicShiftInto(dst, x []complex128, k int) {
	n := len(x)
	if len(dst) != n {
		panic(fmt.Sprintf("dsp: CyclicShiftInto dst length %d, src length %d", len(dst), n))
	}
	if n == 0 {
		return
	}
	k = ((k % n) + n) % n
	copy(dst, x[k:])
	copy(dst[n-k:], x[:k])
}

// Abs returns |v| via a plain sqrt. Unlike cmplx.Abs (math.Hypot) it does
// no overflow/underflow guarding, which is fine for the O(1)-magnitude
// baseband samples and constellation distances this repository works
// with, and several times faster — receivers evaluate it per (candidate,
// segment, subcarrier).
func Abs(v complex128) float64 {
	return math.Sqrt(real(v)*real(v) + imag(v)*imag(v))
}

// Power returns the mean squared magnitude of x; zero for an empty slice.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s / float64(len(x))
}

// Energy returns the total squared magnitude of x.
func Energy(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return s
}

// DB converts a linear power ratio to decibels. DB(0) returns -Inf.
func DB(p float64) float64 {
	return 10 * math.Log10(p)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// Scale multiplies x in place by the real factor g.
func Scale(x []complex128, g float64) {
	c := complex(g, 0)
	for i := range x {
		x[i] *= c
	}
}

// AddInto accumulates src into dst starting at dst[offset]; samples falling
// outside dst are ignored, so callers can mix arbitrarily offset signals.
func AddInto(dst, src []complex128, offset int) {
	for i, v := range src {
		j := offset + i
		if j < 0 || j >= len(dst) {
			continue
		}
		dst[j] += v
	}
}

// Conv returns the full linear convolution of x and h (length
// len(x)+len(h)-1); used by the multipath channel.
func Conv(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// AutoCorr returns Σ_t x[t]·conj(x[t+lag]) over the overlapping range;
// the building block of Schmidl–Cox style detectors.
func AutoCorr(x []complex128, lag, length int) complex128 {
	var acc complex128
	for t := 0; t < length && t+lag < len(x); t++ {
		acc += x[t] * cmplx.Conj(x[t+lag])
	}
	return acc
}

// CrossCorr returns Σ_t a[t]·conj(b[t]) over min(len(a), len(b)) samples.
func CrossCorr(a, b []complex128) complex128 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var acc complex128
	for t := 0; t < n; t++ {
		acc += a[t] * cmplx.Conj(b[t])
	}
	return acc
}

// Mean returns the arithmetic mean of a real sample set; zero if empty.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x; zero if len(x) < 2.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x)-1)
}

// StdDev returns the unbiased sample standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Centroid returns the arithmetic mean of a set of complex points; zero for
// an empty set. CPRecycle centres its decoding sphere on this value.
func Centroid(pts []complex128) complex128 {
	if len(pts) == 0 {
		return 0
	}
	var acc complex128
	for _, p := range pts {
		acc += p
	}
	return acc / complex(float64(len(pts)), 0)
}

// MaxAbsDiff returns the largest |a[i]-b[i]|; slices must be equally long.
func MaxAbsDiff(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("dsp: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := cmplx.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// WrapPhase maps an angle in radians to (-π, π] in constant time. Angles
// within one turn of the target interval (the overwhelmingly common case —
// e.g. differences of two wrapped phases) are corrected by a single exact
// add/subtract; anything farther out is reduced with math.Mod.
func WrapPhase(theta float64) float64 {
	switch {
	case theta > -math.Pi && theta <= math.Pi:
		return theta
	case theta > math.Pi && theta <= 3*math.Pi:
		return theta - 2*math.Pi
	case theta <= -math.Pi && theta > -3*math.Pi:
		return theta + 2*math.Pi
	}
	theta = math.Mod(theta+math.Pi, 2*math.Pi)
	if theta <= 0 {
		theta += 2 * math.Pi
	}
	return theta - math.Pi
}
