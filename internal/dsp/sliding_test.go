package dsp

import (
	"math"
	"testing"
)

// randSignal returns a deterministic complex test signal of length n.
func randSignal(r *Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

// TestSlidingDFTMatchesForward slides a window over a long random stream
// with every stride in 1..5 (and a mixed-stride walk) across several window
// sizes, comparing each slid spectrum against a direct transform of the same
// window. The tolerance bounds the per-slide numerical drift of the
// recurrence; hundreds of consecutive slides stay far below 1e-9.
func TestSlidingDFTMatchesForward(t *testing.T) {
	r := NewRand(42)
	for _, n := range []int{8, 64, 256} {
		plan := MustFFTPlan(n)
		x := randSignal(r, n+1024)
		for _, stride := range []int{1, 2, 3, 4, 5} {
			s := MustSlidingDFT(n)
			bins := make([]complex128, n)
			copy(bins, x[:n])
			plan.Forward(bins)
			want := make([]complex128, n)
			slides := 0
			for start := 0; start+stride+n <= len(x); start += stride {
				s.Slide(bins, x[start:start+stride], x[start+n:start+n+stride])
				slides++
				// Spot-check every few slides (and always the last) to keep
				// the O(n²) oracle cost down.
				if slides%7 != 0 && start+2*stride+n <= len(x) {
					continue
				}
				copy(want, x[start+stride:start+stride+n])
				plan.Forward(want)
				if d := MaxAbsDiff(bins, want); d > 1e-9 {
					t.Fatalf("n=%d stride=%d after %d slides: max diff %g", n, stride, slides, d)
				}
			}
			if slides < 100 {
				t.Fatalf("n=%d stride=%d: only %d slides exercised", n, stride, slides)
			}
		}
	}
}

// TestSlidingDFTMixedSteps advances by a different step each slide,
// including m = 0 (no-op) and a full window m = N.
func TestSlidingDFTMixedSteps(t *testing.T) {
	const n = 64
	r := NewRand(7)
	plan := MustFFTPlan(n)
	x := randSignal(r, 4*n)
	s := MustSlidingDFT(n)
	bins := make([]complex128, n)
	copy(bins, x[:n])
	plan.Forward(bins)
	want := make([]complex128, n)
	start := 0
	for _, m := range []int{0, 1, 3, 4, 2, n, 5, 1} {
		if start+m+n > len(x) {
			break
		}
		s.Slide(bins, x[start:start+m], x[start+n:start+n+m])
		start += m
		copy(want, x[start:start+n])
		plan.Forward(want)
		if d := MaxAbsDiff(bins, want); d > 1e-10 {
			t.Fatalf("after step %d (window at %d): max diff %g", m, start, d)
		}
	}
}

// TestSlidingDFTNonPow2 checks the kernel against the naive DFT for a
// window size the radix-2 FFT cannot handle.
func TestSlidingDFTNonPow2(t *testing.T) {
	const n = 12
	r := NewRand(3)
	x := randSignal(r, 5*n)
	s := MustSlidingDFT(n)
	bins := DFTNaive(x[:n])
	for start := 0; start+1+n <= 3*n; start++ {
		s.Slide(bins, x[start:start+1], x[start+n:start+n+1])
		want := DFTNaive(x[start+1 : start+1+n])
		if d := MaxAbsDiff(bins, want); d > 1e-9 {
			t.Fatalf("start %d: max diff %g", start+1, d)
		}
	}
}

func TestPlanForCachesAndTransforms(t *testing.T) {
	p1, err := PlanFor(128)
	if err != nil {
		t.Fatal(err)
	}
	p2 := MustPlanFor(128)
	if p1 != p2 {
		t.Fatal("PlanFor returned distinct plans for one size")
	}
	if _, err := PlanFor(100); err == nil {
		t.Fatal("PlanFor accepted a non-power-of-two size")
	}
	// A cached plan must behave exactly like a fresh one.
	r := NewRand(9)
	x := randSignal(r, 128)
	fresh := make([]complex128, 128)
	copy(fresh, x)
	MustFFTPlan(128).Forward(fresh)
	cached := make([]complex128, 128)
	copy(cached, x)
	p1.Forward(cached)
	if d := MaxAbsDiff(fresh, cached); d != 0 {
		t.Fatalf("cached plan diverges from fresh plan by %g", d)
	}
}

// wrapPhaseLoop is the original O(|θ|/π) reference implementation.
func wrapPhaseLoop(theta float64) float64 {
	for theta > math.Pi {
		theta -= 2 * math.Pi
	}
	for theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}

func TestWrapPhaseMatchesLoop(t *testing.T) {
	r := NewRand(17)
	for i := 0; i < 20000; i++ {
		theta := (r.Float64() - 0.5) * 8 * math.Pi
		got, want := WrapPhase(theta), wrapPhaseLoop(theta)
		tol := 0.0
		if math.Abs(theta) >= 3*math.Pi {
			tol = 1e-12 // far range uses math.Mod, LSB differences allowed
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("WrapPhase(%v) = %v, loop reference %v", theta, got, want)
		}
	}
	// One-turn-off inputs must be bit-identical to the reference (these feed
	// the KDE kernels).
	for i := 0; i < 20000; i++ {
		theta := (r.Float64() - 0.5) * 4 * math.Pi
		if got, want := WrapPhase(theta), wrapPhaseLoop(theta); got != want {
			t.Fatalf("WrapPhase(%v) = %v, want bit-identical %v", theta, got, want)
		}
	}
	if got := WrapPhase(1e9); got <= -math.Pi || got > math.Pi {
		t.Fatalf("WrapPhase(1e9) = %v out of range", got)
	}
}

func TestFreqShiftPhasorAccuracy(t *testing.T) {
	r := NewRand(23)
	n := 256
	x := randSignal(r, 5000)
	got := append([]complex128(nil), x...)
	FreqShift(got, 3.7, n, 129)
	want := append([]complex128(nil), x...)
	for ti := range want {
		theta := 2 * math.Pi * 3.7 / float64(n) * float64(129+ti)
		s, c := math.Sincos(theta)
		want[ti] *= complex(c, s)
	}
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("phasor recurrence drifts by %g from exact rotation", d)
	}
}

func BenchmarkSlidingDFTSlide4(b *testing.B) {
	const n = 256
	s := MustSlidingDFT(n)
	r := NewRand(1)
	x := randSignal(r, 2*n)
	bins := FFT(x[:n])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Slide(bins, x[:4], x[n:n+4])
	}
}

func BenchmarkForward256(b *testing.B) {
	const n = 256
	p := MustFFTPlan(n)
	r := NewRand(1)
	x := randSignal(r, n)
	buf := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}

func BenchmarkFreqShift(b *testing.B) {
	r := NewRand(1)
	x := randSignal(r, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FreqShift(x, 0.37, 256, 0)
	}
}

// TestSlideRotatedMatchesRampedForward checks the rotated-domain slide:
// starting from a ramped spectrum R_δ·DFT(w₀), successive slides must
// track R_{δ−Σm}·DFT(w_t) as computed directly.
func TestSlideRotatedMatchesRampedForward(t *testing.T) {
	const n = 64
	r := NewRand(11)
	plan := MustFFTPlan(n)
	x := randSignal(r, 6*n)
	s := MustSlidingDFT(n)

	ramp := func(bins []complex128, delta int) {
		for k := range bins {
			theta := 2 * math.Pi * float64(k) * float64(delta) / float64(n)
			sv, cv := math.Sincos(theta)
			bins[k] *= complex(cv, sv)
		}
	}

	delta := 16
	bins := make([]complex128, n)
	copy(bins, x[:n])
	plan.Forward(bins)
	ramp(bins, delta)

	sel := []int{0, 1, 5, 17, 40, 63}
	sparse := append([]complex128(nil), bins...)

	start := 0
	diffs := make([]complex128, 4)
	want := make([]complex128, n)
	for _, m := range []int{1, 4, 2, 3, 4, 1, 1} {
		d := diffs[:m]
		for j := 0; j < m; j++ {
			d[j] = x[start+n+j] - x[start+j]
		}
		s.SlideRotated(bins, d, delta)
		s.SlideRotatedBins(sparse, d, delta, sel)
		delta -= m
		start += m

		copy(want, x[start:start+n])
		plan.Forward(want)
		ramp(want, delta)
		if diff := MaxAbsDiff(bins, want); diff > 1e-10 {
			t.Fatalf("after slide to %d (δ=%d): diff %g", start, delta, diff)
		}
		for _, k := range sel {
			if d := cmplxAbs(sparse[k] - bins[k]); d != 0 {
				t.Fatalf("sparse bin %d differs from full update by %g", k, d)
			}
		}
	}
}

func cmplxAbs(v complex128) float64 {
	return math.Sqrt(real(v)*real(v) + imag(v)*imag(v))
}
