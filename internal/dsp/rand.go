package dsp

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the complex-valued helpers the simulator needs.
// Every experiment in the repository threads an explicit *Rand so runs are
// reproducible from a seed.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic generator seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// CN returns a sample of circularly-symmetric complex Gaussian noise with
// the given total variance (power): real and imaginary parts are each
// N(0, variance/2).
func (r *Rand) CN(variance float64) complex128 {
	s := sqrtHalf(variance)
	return complex(r.NormFloat64()*s, r.NormFloat64()*s)
}

// CNVector fills a fresh slice of n circularly-symmetric complex Gaussian
// samples with the given total variance.
func (r *Rand) CNVector(n int, variance float64) []complex128 {
	out := make([]complex128, n)
	s := sqrtHalf(variance)
	for i := range out {
		out[i] = complex(r.NormFloat64()*s, r.NormFloat64()*s)
	}
	return out
}

// Bits returns n uniformly random bits as a byte slice of 0/1 values.
func (r *Rand) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(2))
	}
	return out
}

// Bytes returns n uniformly random bytes.
func (r *Rand) Bytes(n int) []byte {
	out := make([]byte, n)
	r.Read(out)
	return out
}

func sqrtHalf(variance float64) float64 {
	if variance <= 0 {
		return 0
	}
	return math.Sqrt(variance / 2)
}
