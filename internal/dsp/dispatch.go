package dsp

import "sync/atomic"

// The planar hot kernels (SlideRotatedTab, the ForwardPlanar/InversePlanar
// butterfly stages, FreqShiftPlanar) have hand-written SIMD fast paths:
// AVX2 on amd64 (gated on runtime CPUID detection) and NEON on arm64
// (baseline, always available). The Go loops remain the universal scalar
// fallback and the reference semantics; the SIMD kernels perform the same
// floating-point operations in the same per-element order, use no FMA and
// no reassociation, so for finite inputs every result is bit-identical to
// the scalar twin (the equivalence and fuzz tests pin this). Builds with
// the purego tag (or any other GOARCH) compile only the scalar code.
//
// asmOK is set once, at package init, before any other goroutine can
// touch the package; scalarForced is the runtime kill switch.
var (
	asmOK        bool
	asmName      = "scalar"
	scalarForced atomic.Bool
)

// simdEnabled reports whether the dispatched kernels should take the SIMD
// fast path for this call.
func simdEnabled() bool { return asmOK && !scalarForced.Load() }

// ForceScalar disables (true) or re-enables (false) the SIMD fast paths at
// runtime, forcing every dispatched kernel through the scalar Go fallback.
// It is a test hook — the equivalence and fuzz tests run each kernel both
// ways and require bit-identical results — and is safe for concurrent use.
// Re-enabling is a no-op on machines without SIMD support (or under the
// purego build tag, where no SIMD kernels are compiled at all).
func ForceScalar(force bool) { scalarForced.Store(force) }

// SIMDName reports which kernel set the dispatched planar kernels are
// currently using: "avx2", "neon", or "scalar" (no support detected,
// purego build, or ForceScalar(true) in effect).
func SIMDName() string {
	if simdEnabled() {
		return asmName
	}
	return "scalar"
}
