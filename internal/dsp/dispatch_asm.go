//go:build (amd64 || arm64) && !purego

package dsp

import "math"

func init() { initASM() }

// The assembly kernels (asm_amd64.s / asm_arm64.s). All of them preserve
// the scalar operation order exactly — plain multiplies, adds and
// subtracts per lane, no FMA, no reassociation — so their results are
// bit-identical to the Go fallbacks for finite inputs. None of them
// retain or allocate memory; every pointer argument is a borrow for the
// duration of the call.

// slideTabASM runs the vectorised rotated-slide update over a SlideTab's
// dense runs: nruns (k0, twOff, groups) int triples at runs, each naming
// groups×asmLanes consecutive bins starting at bin k0. For each bin,
// dst[k] = src[k] + Σ_j diffs[j]·tw(k,j), with the twiddles streamed
// linearly from the lane-transposed twV layout.
//
//go:noescape
func slideTabASM(dre, dim, sre, sim, dfr, dfi, twV *float64, runs *int, m, nruns int)

// fftStage1ASM runs the size-2 butterfly stage (w⁰ add/sub pairs) over
// both planes. n must be a multiple of 4.
//
//go:noescape
func fftStage1ASM(re, im *float64, n int)

// fftStage2ASM runs the size-4 butterfly stage with the two stage
// twiddles pre-splatted in s2 (asmLanes re lanes then asmLanes im lanes).
// n must be a multiple of 8 on amd64 and of 4 on arm64.
//
//go:noescape
func fftStage2ASM(re, im, s2 *float64, n int)

// fftStageASM runs one generic butterfly stage of the given size ≥ 8,
// reading the stage's lane-grouped twiddle stream from tws (restarted for
// every size-sized block).
//
//go:noescape
func fftStageASM(re, im, tws *float64, n, size int)

// freqShiftApplyASM multiplies (re, im) by the precomputed rotator
// (rotR, rotI) elementwise. n must be a multiple of asmLanes.
//
//go:noescape
func freqShiftApplyASM(re, im, rotR, rotI *float64, n int)

// buildVecTwiddles lays the plan's twiddles out for the vector FFT
// stages: for the size-4 stage, its two twiddles splatted across asmLanes
// lanes (fwdS2/invS2); for every stage of size ≥ 8, the per-butterfly
// twiddles regrouped as [re×asmLanes, im×asmLanes] vector pairs in j
// order (fwdV/invV), one concatenated stream per stage. The values are
// copies of the scalar tables, so products computed from them are
// bit-identical. Sizes below 8 have too few butterflies per stage to fill
// a vector; those transforms stay scalar.
func (p *FFTPlan) buildVecTwiddles() {
	if !asmOK || p.n < 8 {
		return
	}
	p.fwdS2, p.fwdV = buildStageVecs(p.fwdP, p.n)
	p.invS2, p.invV = buildStageVecs(p.invP, p.n)
}

func buildStageVecs(twP []float64, n int) (s2, v []float64) {
	s2 = make([]float64, 2*asmLanes)
	step4 := n / 4
	for l := 0; l < asmLanes; l += 2 {
		s2[l] = twP[0]
		s2[l+1] = twP[2*step4]
		s2[asmLanes+l] = twP[1]
		s2[asmLanes+l+1] = twP[2*step4+1]
	}
	total := 0
	for size := 8; size <= n; size <<= 1 {
		total += size // half butterflies × (re, im) per stage
	}
	v = make([]float64, 0, total)
	for size := 8; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for j := 0; j < half; j += asmLanes {
			for l := 0; l < asmLanes; l++ {
				v = append(v, twP[2*step*(j+l)])
			}
			for l := 0; l < asmLanes; l++ {
				v = append(v, twP[2*step*(j+l)+1])
			}
		}
	}
	return s2, v
}

// transformPlanarSIMD runs the planar transform through the assembly
// butterfly stages. It reports false — leaving the data untouched — when
// the SIMD path is unavailable (no CPU support, ForceScalar, or a plan
// smaller than 8 points). Butterflies within a stage are independent, so
// the vector stages' different walk order (block-outer instead of
// twiddle-outer) leaves every result bit-identical to the scalar path.
func (p *FFTPlan) transformPlanarSIMD(re, im []float64, fwd bool) bool {
	if p.fwdV == nil || !simdEnabled() {
		return false
	}
	bitrevPlanar(p.revPairs, re, im)
	n := p.n
	fftStage1ASM(&re[0], &im[0], n)
	s2, twV := p.fwdS2, p.fwdV
	if !fwd {
		s2, twV = p.invS2, p.invV
	}
	fftStage2ASM(&re[0], &im[0], &s2[0], n)
	off := 0
	for size := 8; size <= n; size <<= 1 {
		fftStageASM(&re[0], &im[0], &twV[off], n, size)
		off += size
	}
	return true
}

// buildVec lays the schedule out for slideTabASM. Receiver bin
// selections are dominated by contiguous subcarrier stretches, so the
// bins are split into dense runs — maximal stretches of consecutive bins
// (in sel order), rounded down to whole asmLanes groups — whose loads and
// stores vectorise as plain contiguous moves, no gathers. Within each
// group the twiddles are transposed to j-major [re×asmLanes,
// im×asmLanes] vectors so the kernel reads twV as one linear stream.
// Every bin not covered by a run is recorded in scalarPos for the scalar
// loop. If no stretch is long enough to fill a vector, runs stays nil
// and SlideRotatedTab keeps its all-scalar specialisations.
func (t *SlideTab) buildVec() {
	if !asmOK || t.m == 0 || len(t.sel) < asmLanes {
		return
	}
	var runs []int
	var scalar []int32
	var twV []float64
	for i := 0; i < len(t.sel); {
		// Extend the stretch of consecutive bins starting at position i.
		e := i + 1
		for e < len(t.sel) && t.sel[e] == t.sel[e-1]+1 {
			e++
		}
		groups := (e - i) / asmLanes
		if groups > 0 {
			runs = append(runs, t.sel[i], len(twV), groups)
			for g := 0; g < groups; g++ {
				base := i + g*asmLanes
				for j := 0; j < t.m; j++ {
					for l := 0; l < asmLanes; l++ {
						twV = append(twV, t.tw[2*((base+l)*t.m+j)])
					}
					for l := 0; l < asmLanes; l++ {
						twV = append(twV, t.tw[2*((base+l)*t.m+j)+1])
					}
				}
			}
		}
		for b := i + groups*asmLanes; b < e; b++ {
			scalar = append(scalar, int32(b))
		}
		i = e
	}
	if runs == nil {
		return
	}
	t.twV, t.runs, t.scalarPos = twV, runs, scalar
}

// freqShiftPlanarSIMD is the vector fast path of FreqShiftPlanar. The
// phasor recurrence itself is inherently serial and stays scalar: each
// resync block's rotators are stepped into a small stack buffer with
// exactly the scalar path's arithmetic (same resync cadence, same
// recurrence expressions), and only the independent per-sample complex
// multiplies are vectorised. Reports false when the SIMD path is
// unavailable.
func freqShiftPlanarSIMD(x Planar, w, stepR, stepI float64, startSample int) bool {
	if !simdEnabled() || x.Len() < asmLanes {
		return false
	}
	var rotR, rotI [freqShiftResync]float64
	re, im := x.Re, x.Im
	for t0 := 0; t0 < len(re); t0 += freqShiftResync {
		bl := len(re) - t0
		if bl > freqShiftResync {
			bl = freqShiftResync
		}
		s, c := math.Sincos(w * float64(startSample+t0))
		rR, rI := c, s
		for i := 0; i < bl; i++ {
			rotR[i], rotI[i] = rR, rI
			rR, rI = rR*stepR-rI*stepI, rR*stepI+rI*stepR
		}
		vec := bl &^ (asmLanes - 1)
		if vec > 0 {
			freqShiftApplyASM(&re[t0], &im[t0], &rotR[0], &rotI[0], vec)
		}
		for i := vec; i < bl; i++ {
			xr, xi := re[t0+i], im[t0+i]
			re[t0+i] = xr*rotR[i] - xi*rotI[i]
			im[t0+i] = xr*rotI[i] + xi*rotR[i]
		}
	}
	return true
}
