//go:build !purego

#include "textflag.h"

// NEON kernels for the planar DSP hot paths, mirroring asm_amd64.s at a
// vector width of two float64 lanes. Contract (see dispatch.go): every
// kernel performs exactly the scalar fallback's floating-point
// operations per element, in the same order — vector fmul/fadd/fsub
// only, never FMA (fmla) — so results are bit-identical to the Go twins
// for finite inputs. Lanes are independent bins/samples, so processing
// two at a time does not reorder any dependent operation. No alignment
// is required.
//
// The Go assembler has no mnemonics for the arm64 floating-point vector
// arithmetic instructions, so those are emitted as WORD constants. Each
// macro name spells the operation and fixed registers (FMUL2D_V6_V2_V4 =
// fmul v6.2d, v2.2d, v4.2d); the encodings were generated and verified
// with llvm-mc. Everything structural (loads, stores, permutes, dup)
// uses native mnemonics.

#define FMUL2D_V6_V2_V4 WORD $0x6E64DC46 // fmul v6.2d, v2.2d, v4.2d
#define FMUL2D_V7_V3_V5 WORD $0x6E65DC67 // fmul v7.2d, v3.2d, v5.2d
#define FSUB2D_V6_V6_V7 WORD $0x4EE7D4C6 // fsub v6.2d, v6.2d, v7.2d
#define FADD2D_V0_V0_V6 WORD $0x4E66D400 // fadd v0.2d, v0.2d, v6.2d
#define FMUL2D_V6_V2_V5 WORD $0x6E65DC46 // fmul v6.2d, v2.2d, v5.2d
#define FMUL2D_V7_V3_V4 WORD $0x6E64DC67 // fmul v7.2d, v3.2d, v4.2d
#define FADD2D_V6_V6_V7 WORD $0x4E67D4C6 // fadd v6.2d, v6.2d, v7.2d
#define FADD2D_V1_V1_V6 WORD $0x4E66D421 // fadd v1.2d, v1.2d, v6.2d

#define FADD2D_V4_V2_V3 WORD $0x4E63D444 // fadd v4.2d, v2.2d, v3.2d
#define FSUB2D_V5_V2_V3 WORD $0x4EE3D445 // fsub v5.2d, v2.2d, v3.2d
#define FADD2D_V20_V18_V19 WORD $0x4E73D654 // fadd v20.2d, v18.2d, v19.2d
#define FSUB2D_V21_V18_V19 WORD $0x4EF3D655 // fsub v21.2d, v18.2d, v19.2d

#define FMUL2D_V2_V1_V30 WORD $0x6E7EDC22  // fmul v2.2d, v1.2d, v30.2d
#define FMUL2D_V3_V17_V31 WORD $0x6E7FDE23 // fmul v3.2d, v17.2d, v31.2d
#define FSUB2D_V2_V2_V3 WORD $0x4EE3D442   // fsub v2.2d, v2.2d, v3.2d
#define FMUL2D_V3_V17_V30 WORD $0x6E7EDE23 // fmul v3.2d, v17.2d, v30.2d
#define FMUL2D_V4_V1_V31 WORD $0x6E7FDC24  // fmul v4.2d, v1.2d, v31.2d
#define FADD2D_V3_V3_V4 WORD $0x4E64D463   // fadd v3.2d, v3.2d, v4.2d
#define FSUB2D_V1_V0_V2 WORD $0x4EE2D401   // fsub v1.2d, v0.2d, v2.2d
#define FADD2D_V0_V0_V2 WORD $0x4E62D400   // fadd v0.2d, v0.2d, v2.2d
#define FSUB2D_V17_V16_V3 WORD $0x4EE3D611 // fsub v17.2d, v16.2d, v3.2d
#define FADD2D_V16_V16_V3 WORD $0x4E63D610 // fadd v16.2d, v16.2d, v3.2d

#define FMUL2D_V4_V0_V2 WORD $0x6E62DC04 // fmul v4.2d, v0.2d, v2.2d
#define FMUL2D_V5_V1_V3 WORD $0x6E63DC25 // fmul v5.2d, v1.2d, v3.2d
#define FSUB2D_V4_V4_V5 WORD $0x4EE5D484 // fsub v4.2d, v4.2d, v5.2d
#define FMUL2D_V5_V0_V3 WORD $0x6E63DC05 // fmul v5.2d, v0.2d, v3.2d
#define FMUL2D_V6_V1_V2 WORD $0x6E62DC26 // fmul v6.2d, v1.2d, v2.2d
#define FADD2D_V5_V5_V6 WORD $0x4E66D4A5 // fadd v5.2d, v5.2d, v6.2d

// func slideTabASM(dre, dim, sre, sim, dfr, dfi, twV *float64, runs *int, m, nruns int)
//
// The dense runs of a SlideTab schedule: nruns (k0, twOff, groups)
// triples at runs, each covering groups×2 consecutive bins from bin k0.
// Per group: load src accumulators contiguously, stream m twiddle vector
// pairs from twV (tr×2 then ti×2 per j), accumulate accR += dr·tr −
// di·ti and accI += dr·ti + di·tr with the diff duplicated across lanes,
// store contiguously to dst.
TEXT ·slideTabASM(SB), NOSPLIT, $0-80
	MOVD dfr+32(FP), R4
	MOVD dfi+40(FP), R5
	MOVD runs+56(FP), R6
	MOVD m+64(FP), R7
	MOVD nruns+72(FP), R8
	CMP  $1, R8
	BLT  stDone

stRunLoop:
	MOVD 0(R6), R12 // k0
	MOVD dre+0(FP), R0
	ADD  R12<<3, R0, R0
	MOVD dim+8(FP), R1
	ADD  R12<<3, R1, R1
	MOVD sre+16(FP), R2
	ADD  R12<<3, R2, R2
	MOVD sim+24(FP), R3
	ADD  R12<<3, R3, R3
	MOVD 8(R6), R12 // twOff
	MOVD twV+48(FP), R9
	ADD  R12<<3, R9, R9
	MOVD 16(R6), R10 // groups
	ADD  $24, R6

stGLoop:
	VLD1 (R2), [V0.D2] // accR
	VLD1 (R3), [V1.D2] // accI
	MOVD $0, R11       // j

stJLoop:
	FMOVD (R4)(R11<<3), F16
	VDUP  V16.D[0], V2.D2 // dr
	FMOVD (R5)(R11<<3), F17
	VDUP  V17.D[0], V3.D2        // di
	VLD1.P 32(R9), [V4.D2, V5.D2] // tr, ti
	FMUL2D_V6_V2_V4               // dr*tr
	FMUL2D_V7_V3_V5               // di*ti
	FSUB2D_V6_V6_V7
	FADD2D_V0_V0_V6 // accR += dr*tr - di*ti
	FMUL2D_V6_V2_V5 // dr*ti
	FMUL2D_V7_V3_V4 // di*tr
	FADD2D_V6_V6_V7
	FADD2D_V1_V1_V6 // accI += dr*ti + di*tr
	ADD  $1, R11
	CMP  R7, R11
	BLT  stJLoop

	VST1.P [V0.D2], 16(R0)
	VST1.P [V1.D2], 16(R1)
	ADD  $16, R2
	ADD  $16, R3
	SUBS $1, R10
	BGT  stGLoop
	SUBS $1, R8
	BGT  stRunLoop

stDone:
	RET

// func fftStage1ASM(re, im *float64, n int)
//
// Size-2 butterflies on adjacent pairs: out[2i] = x[2i]+x[2i+1],
// out[2i+1] = x[2i]-x[2i+1], two pairs (four elements) per iteration via
// trn1/trn2 deinterleave and zip1/zip2 reinterleave. n must be a
// multiple of 4.
TEXT ·fftStage1ASM(SB), NOSPLIT, $0-24
	MOVD re+0(FP), R0
	MOVD im+8(FP), R1
	MOVD n+16(FP), R2

s1Loop:
	// re plane
	VLD1  (R0), [V0.D2, V1.D2]
	VTRN1 V1.D2, V0.D2, V2.D2 // [r0, r2]
	VTRN2 V1.D2, V0.D2, V3.D2 // [r1, r3]
	FADD2D_V4_V2_V3           // sums
	FSUB2D_V5_V2_V3           // diffs
	VZIP1 V5.D2, V4.D2, V0.D2 // [s0, d0]
	VZIP2 V5.D2, V4.D2, V1.D2 // [s1, d1]
	VST1.P [V0.D2, V1.D2], 32(R0)
	// im plane
	VLD1  (R1), [V16.D2, V17.D2]
	VTRN1 V17.D2, V16.D2, V18.D2
	VTRN2 V17.D2, V16.D2, V19.D2
	FADD2D_V20_V18_V19
	FSUB2D_V21_V18_V19
	VZIP1 V21.D2, V20.D2, V16.D2
	VZIP2 V21.D2, V20.D2, V17.D2
	VST1.P [V16.D2, V17.D2], 32(R1)
	SUBS $4, R2
	BGT  s1Loop
	RET

// func fftStage2ASM(re, im, s2 *float64, n int)
//
// Size-4 butterflies: at two lanes the vector width equals the half-
// block, so lo = [x0,x1] and hi = [x2,x3] load contiguously with no
// permutes; the stage's two twiddles arrive as [w0, w1] pairs in s2.
// n must be a multiple of 4.
TEXT ·fftStage2ASM(SB), NOSPLIT, $0-32
	MOVD re+0(FP), R0
	MOVD im+8(FP), R1
	MOVD s2+16(FP), R2
	MOVD n+24(FP), R3
	VLD1 (R2), [V30.D2, V31.D2] // wr = [w0r, w1r], wi = [w0i, w1i]

s2Loop:
	MOVD   R0, R4
	MOVD   R1, R5
	VLD1.P 32(R0), [V0.D2, V1.D2]   // loR, hiR (xr)
	VLD1.P 32(R1), [V16.D2, V17.D2] // loI, hiI (xi)
	FMUL2D_V2_V1_V30
	FMUL2D_V3_V17_V31
	FSUB2D_V2_V2_V3   // tr = wr*xr - wi*xi
	FMUL2D_V3_V17_V30
	FMUL2D_V4_V1_V31
	FADD2D_V3_V3_V4   // ti = wr*xi + wi*xr
	FSUB2D_V1_V0_V2   // hiR' = loR - tr
	FADD2D_V0_V0_V2   // loR' = loR + tr
	FSUB2D_V17_V16_V3 // hiI' = loI - ti
	FADD2D_V16_V16_V3 // loI' = loI + ti
	VST1 [V0.D2, V1.D2], (R4)
	VST1 [V16.D2, V17.D2], (R5)
	SUBS $4, R3
	BGT  s2Loop
	RET

// func fftStageASM(re, im, tws *float64, n, size int)
//
// One generic butterfly stage of size >= 8: for every size-sized block,
// walk j in twos with lo/hi half-a-block apart and the per-j twiddles
// streamed from tws (restarted per block). Same register convention —
// and therefore the same arithmetic encodings — as fftStage2ASM.
TEXT ·fftStageASM(SB), NOSPLIT, $0-40
	MOVD re+0(FP), R0
	MOVD im+8(FP), R1
	MOVD tws+16(FP), R2
	MOVD n+24(FP), R3
	MOVD size+32(FP), R4
	LSR  $1, R4, R5 // half
	LSL  $3, R5, R6 // half*8 bytes
	MOVD R3, R7     // elements remaining

gsOuter:
	MOVD R2, R8 // twiddle stream restarts per block
	MOVD R0, R9 // &re[lo]
	MOVD R1, R10 // &im[lo]
	ADD  R6, R9, R11  // &re[hi]
	ADD  R6, R10, R12 // &im[hi]
	MOVD R5, R13      // butterflies left in block

gsInner:
	VLD1.P 32(R8), [V30.D2, V31.D2] // wr, wi
	VLD1   (R11), [V1.D2]           // xr = re[hi]
	VLD1   (R12), [V17.D2]          // xi = im[hi]
	VLD1   (R9), [V0.D2]            // re[lo]
	VLD1   (R10), [V16.D2]          // im[lo]
	FMUL2D_V2_V1_V30
	FMUL2D_V3_V17_V31
	FSUB2D_V2_V2_V3   // tr = wr*xr - wi*xi
	FMUL2D_V3_V17_V30
	FMUL2D_V4_V1_V31
	FADD2D_V3_V3_V4   // ti = wr*xi + wi*xr
	FSUB2D_V1_V0_V2   // re[hi] = re[lo] - tr
	FADD2D_V0_V0_V2   // re[lo] += tr
	FSUB2D_V17_V16_V3 // im[hi] = im[lo] - ti
	FADD2D_V16_V16_V3 // im[lo] += ti
	VST1.P [V1.D2], 16(R11)
	VST1.P [V17.D2], 16(R12)
	VST1.P [V0.D2], 16(R9)
	VST1.P [V16.D2], 16(R10)
	SUBS $2, R13
	BGT  gsInner

	LSL  $3, R4, R13 // size*8 bytes
	ADD  R13, R0, R0
	ADD  R13, R1, R1
	SUBS R4, R7, R7
	BGT  gsOuter
	RET

// func freqShiftApplyASM(re, im, rotR, rotI *float64, n int)
//
// Elementwise complex multiply by the precomputed rotator:
// re' = re*rotR - im*rotI, im' = re*rotI + im*rotR. n must be a
// multiple of 2.
TEXT ·freqShiftApplyASM(SB), NOSPLIT, $0-40
	MOVD re+0(FP), R0
	MOVD im+8(FP), R1
	MOVD rotR+16(FP), R2
	MOVD rotI+24(FP), R3
	MOVD n+32(FP), R4

fsLoop:
	VLD1   (R0), [V0.D2]   // xr
	VLD1   (R1), [V1.D2]   // xi
	VLD1.P 16(R2), [V2.D2] // rotR
	VLD1.P 16(R3), [V3.D2] // rotI
	FMUL2D_V4_V0_V2
	FMUL2D_V5_V1_V3
	FSUB2D_V4_V4_V5 // xr*rotR - xi*rotI
	FMUL2D_V5_V0_V3
	FMUL2D_V6_V1_V2
	FADD2D_V5_V5_V6 // xr*rotI + xi*rotR
	VST1.P [V4.D2], 16(R0)
	VST1.P [V5.D2], 16(R1)
	SUBS $2, R4
	BGT  fsLoop
	RET
