package dsp

import (
	"math"
	"testing"
)

// planarOf returns a planar copy of x.
func planarOf(x []complex128) Planar {
	p := NewPlanar(len(x))
	Deinterleave(p, x)
	return p
}

// requirePlanarEqual fails unless p holds exactly the values of want.
// Planar kernels mirror their interleaved twins operation for operation,
// so equality here is exact value equality (MaxAbsDiff == 0, which treats
// -0 and +0 as equal — the only representation drift the planar forms can
// introduce, from real-scalar multiplies not simulating the interleaved
// form's multiply-by-complex(g,0) zero terms).
func requirePlanarEqual(t *testing.T, ctx string, p Planar, want []complex128) {
	t.Helper()
	got := make([]complex128, p.Len())
	Interleave(got, p)
	if d := MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("%s: planar differs from interleaved by %g", ctx, d)
	}
}

func TestPlanarConvertersRoundTrip(t *testing.T) {
	r := NewRand(5)
	x := randSignal(r, 77)
	p := planarOf(x)
	if p.Len() != len(x) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(x))
	}
	for i, v := range x {
		if p.At(i) != v {
			t.Fatalf("At(%d) = %v, want %v", i, p.At(i), v)
		}
	}
	back := make([]complex128, len(x))
	Interleave(back, p)
	if d := MaxAbsDiff(back, x); d != 0 {
		t.Fatalf("round trip drifts by %g", d)
	}
	p.Set(3, 2+9i)
	if p.Re[3] != 2 || p.Im[3] != 9 {
		t.Fatal("Set did not write both planes")
	}

	// Aliasing rule: a copied Planar value aliases the same planes.
	q := p
	q.Re[0] = 42
	if p.Re[0] != 42 {
		t.Fatal("copied Planar does not alias its planes")
	}
	// NewPlanar carves both planes from one backing array but they must
	// not overlap.
	n := NewPlanar(4)
	for i := range n.Re {
		n.Re[i] = 1
	}
	for _, v := range n.Im {
		if v != 0 {
			t.Fatal("NewPlanar planes overlap")
		}
	}

	// Length mismatches must panic rather than silently truncate.
	for name, f := range map[string]func(){
		"deinterleave": func() { Deinterleave(NewPlanar(3), x) },
		"interleave":   func() { Interleave(make([]complex128, 3), p) },
		"copy":         func() { CopyPlanar(NewPlanar(3), p) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s length mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestForwardInversePlanarMatchesInterleaved(t *testing.T) {
	r := NewRand(31)
	for _, n := range []int{4, 64, 256} {
		plan := MustFFTPlan(n)
		x := randSignal(r, n)

		fwd := append([]complex128(nil), x...)
		plan.Forward(fwd)
		pf := planarOf(x)
		plan.ForwardPlanar(pf)
		requirePlanarEqual(t, "forward", pf, fwd)

		inv := append([]complex128(nil), x...)
		plan.Inverse(inv)
		pi := planarOf(x)
		plan.InversePlanar(pi)
		requirePlanarEqual(t, "inverse", pi, inv)
	}
}

func TestSlidePlanarMatchesInterleaved(t *testing.T) {
	const n = 64
	r := NewRand(13)
	x := randSignal(r, 6*n)
	s := MustSlidingDFT(n)
	bins := FFT(x[:n])
	pbins := planarOf(bins)
	start := 0
	for _, m := range []int{1, 4, 3, 2, 4, 1} {
		s.Slide(bins, x[start:start+m], x[start+n:start+n+m])
		s.SlidePlanar(pbins, planarOf(x[start:start+m]), planarOf(x[start+n:start+n+m]))
		start += m
		requirePlanarEqual(t, "slide", pbins, bins)
	}
}

func TestSlideRotatedPlanarMatchesInterleaved(t *testing.T) {
	const n = 64
	r := NewRand(19)
	x := randSignal(r, 6*n)
	s := MustSlidingDFT(n)
	bins := FFT(x[:n])
	CorrectTestRamp(bins, 16, n)
	pbins := planarOf(bins)
	sel := []int{0, 3, 17, 40, 63}
	sparse := append([]complex128(nil), bins...)
	psparse := planarOf(bins)

	delta := 16
	start := 0
	for _, m := range []int{1, 4, 2, 3, 4} {
		diffs := make([]complex128, m)
		for j := range diffs {
			diffs[j] = x[start+n+j] - x[start+j]
		}
		pd := planarOf(diffs)
		s.SlideRotated(bins, diffs, delta)
		s.SlideRotatedPlanar(pbins, pd, delta)
		requirePlanarEqual(t, "rotated", pbins, bins)

		s.SlideRotatedBins(sparse, diffs, delta, sel)
		s.SlideRotatedBinsPlanar(psparse, pd, delta, sel)
		for _, k := range sel {
			if psparse.At(k) != sparse[k] {
				t.Fatalf("sparse planar bin %d: %v, want %v", k, psparse.At(k), sparse[k])
			}
		}

		delta -= m
		start += m
	}
}

// TestSlideRotatedTabMatchesBins pins the precomputed-schedule kernel to
// SlideRotatedBins: identical values at the selected bins, untouched
// elsewhere, both aliased (dst == src) and copying (dst != src).
func TestSlideRotatedTabMatchesBins(t *testing.T) {
	const n = 64
	r := NewRand(23)
	x := randSignal(r, 6*n)
	s := MustSlidingDFT(n)
	sel := []int{1, 2, 30, 31, 62}
	for _, m := range []int{1, 2, 3, 4, 5} {
		for _, delta := range []int{0, 5, 16, n, n + 3, -7} {
			want := FFT(x[:n])
			diffs := make([]complex128, m)
			for j := range diffs {
				diffs[j] = x[n+j] - x[j]
			}
			src := planarOf(want)
			dst := NewPlanar(n)
			for i := range dst.Re {
				dst.Re[i] = 999 // sentinel: unselected bins must stay untouched
				dst.Im[i] = -999
			}
			tab, err := s.SlideTabFor(delta, m, sel)
			if err != nil {
				t.Fatal(err)
			}
			s.SlideRotatedTab(dst, src, planarOf(diffs), tab)
			s.SlideRotatedBins(want, diffs, delta, sel)
			for _, k := range sel {
				if dst.At(k) != want[k] {
					t.Fatalf("m=%d delta=%d bin %d: tab %v, want %v", m, delta, k, dst.At(k), want[k])
				}
			}
			inSel := func(k int) bool {
				for _, s := range sel {
					if s == k {
						return true
					}
				}
				return false
			}
			for k := 0; k < n; k++ {
				if !inSel(k) && (dst.Re[k] != 999 || dst.Im[k] != -999) {
					t.Fatalf("m=%d delta=%d: unselected bin %d was written", m, delta, k)
				}
			}
			// Aliased (in-place) form.
			s.SlideRotatedTab(src, src, planarOf(diffs), tab)
			for _, k := range sel {
				if src.At(k) != want[k] {
					t.Fatalf("m=%d delta=%d bin %d aliased: %v, want %v", m, delta, k, src.At(k), want[k])
				}
			}
		}
	}
	// Cached tables must be shared.
	t1, err := s.SlideTabFor(9, 4, sel)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.SlideTabFor(9+n, 4, sel) // delta reduced mod n → same schedule
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("equivalent slide tables were not shared")
	}
	if _, err := s.SlideTabFor(1, 0, sel); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := s.SlideTabFor(1, 4, []int{n}); err == nil {
		t.Fatal("out-of-range bin accepted")
	}
}

func TestFreqShiftPlanarMatchesInterleaved(t *testing.T) {
	r := NewRand(29)
	x := randSignal(r, 1000)
	want := append([]complex128(nil), x...)
	FreqShift(want, 3.7, 256, 129)
	p := planarOf(x)
	FreqShiftPlanar(p, 3.7, 256, 129)
	requirePlanarEqual(t, "freqshift", p, want)
}

// BenchmarkPlanarForward256 measures the planar FFT butterflies at the
// receiver's composite-grid size (compare BenchmarkForward256).
func BenchmarkPlanarForward256(b *testing.B) {
	const n = 256
	p := MustFFTPlan(n)
	r := NewRand(1)
	x := planarOf(randSignal(r, n))
	buf := NewPlanar(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CopyPlanar(buf, x)
		p.ForwardPlanar(buf)
	}
}

// BenchmarkPlanarSlideRotatedTab measures the precomputed-schedule sparse
// rotated slide on the receiver hot-path shape: 52 selected bins of a
// 256-bin window, stride-4 diffs (compare BenchmarkSlidingDFTSlide4,
// which updates all 256 bins).
func BenchmarkPlanarSlideRotatedTab(b *testing.B) {
	const n = 256
	s := MustSlidingDFT(n)
	r := NewRand(1)
	x := randSignal(r, 2*n)
	bins := planarOf(FFT(x[:n]))
	diffs := planarOf(x[n : n+4])
	sel := make([]int, 0, 52)
	for k := 38; k <= 90; k++ {
		if k != 64 {
			sel = append(sel, k)
		}
	}
	tab, err := s.SlideTabFor(60, 4, sel)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SlideRotatedTab(bins, bins, diffs, tab)
	}
}

// BenchmarkPlanarForward256Scalar is BenchmarkPlanarForward256 with the
// SIMD dispatch forced off — the trajectory records both paths so the
// speedup (and any scalar regression) stays visible.
func BenchmarkPlanarForward256Scalar(b *testing.B) {
	ForceScalar(true)
	defer ForceScalar(false)
	BenchmarkPlanarForward256(b)
}

// BenchmarkPlanarSlideRotatedTabScalar is BenchmarkPlanarSlideRotatedTab
// with the SIMD dispatch forced off.
func BenchmarkPlanarSlideRotatedTabScalar(b *testing.B) {
	ForceScalar(true)
	defer ForceScalar(false)
	BenchmarkPlanarSlideRotatedTab(b)
}

// BenchmarkPlanarFreqShift measures the planar frequency shift over one
// data-symbol-sized window (compare BenchmarkFreqShift, which covers a
// whole packet).
func BenchmarkPlanarFreqShift(b *testing.B) {
	const n = 320
	r := NewRand(1)
	x := planarOf(randSignal(r, n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FreqShiftPlanar(x, 3.7, 256, i*n)
	}
}

// BenchmarkPlanarFreqShiftScalar is BenchmarkPlanarFreqShift with the
// SIMD dispatch forced off.
func BenchmarkPlanarFreqShiftScalar(b *testing.B) {
	ForceScalar(true)
	defer ForceScalar(false)
	BenchmarkPlanarFreqShift(b)
}

// CorrectTestRamp applies the rotated-domain ramp used by the SlideRotated
// tests: bins[k] *= e^{+i 2π k delta / n}.
func CorrectTestRamp(bins []complex128, delta, n int) {
	for k := range bins {
		s, c := math.Sincos(2 * math.Pi * float64(k) * float64(delta) / float64(n))
		bins[k] *= complex(c, s)
	}
}
