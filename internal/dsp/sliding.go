package dsp

import (
	"fmt"
	"sync"
)

// SlidingDFT incrementally advances a DFT window over a sample stream.
// Given the DFT X of the window [t, t+N), Slide produces the DFT of the
// window [t+m, t+m+N) in O(N·m) operations instead of an O(N log N)
// transform, using the per-bin update
//
//	X'[k] = (X[k] + Σ_{j<m} (x[t+N+j] − x[t+j])·e^{−i2πkj/N}) · e^{+i2πkm/N}.
//
// This is the paper's central compute saving opportunity: CPRecycle's P
// FFT windows per OFDM symbol share all but a few (stride) samples, so
// only the first window needs a full transform.
//
// The update multiplies exclusively by unit-magnitude twiddles, so the
// numerical drift relative to a direct transform grows only with machine
// epsilon per slide (≈1e-15 relative per step; see the exactness tests).
// Callers performing very long slide chains can reseed with a full FFT
// periodically — the CPRecycle receivers slide at most a few dozen times
// per seed, far below any threshold of concern.
//
// A SlidingDFT is safe for concurrent use once created: Slide writes only
// to the caller's bins slice.
type SlidingDFT struct {
	n int
	w []complex128 // w[r] = e^{-i 2π r / n}, full resolution
	// wP holds the same twiddles as adjacent (re, im) float pairs — the
	// layout the planar kernels read, one cache line per random index
	// instead of two gathers from split tables.
	wP []float64
	// tabs caches SlideTabFor schedules: tabKey -> *SlideTab. Hash
	// collisions are resolved by comparing the stored bin selection.
	tabs sync.Map
}

// NewSlidingDFT returns a sliding-DFT kernel for windows of length n.
// Unlike the radix-2 FFT, any positive n is supported.
func NewSlidingDFT(n int) (*SlidingDFT, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: SlidingDFT size %d must be positive", n)
	}
	s := &SlidingDFT{n: n, w: twiddleTable(n)}
	s.wP = make([]float64, 2*n)
	for r, v := range s.w {
		s.wP[2*r] = real(v)
		s.wP[2*r+1] = imag(v)
	}
	return s, nil
}

// MustSlidingDFT is NewSlidingDFT but panics on error.
func MustSlidingDFT(n int) *SlidingDFT {
	s, err := NewSlidingDFT(n)
	if err != nil {
		panic(err)
	}
	return s
}

// slidingCache mirrors planCache: one immutable kernel per window size for
// the whole process, so per-frame demodulators never rebuild the full
// twiddle table.
var slidingCache sync.Map // int -> *SlidingDFT

// SlidingFor returns the process-wide shared sliding-DFT kernel for window
// length n, creating and caching it on first use.
func SlidingFor(n int) (*SlidingDFT, error) {
	if v, ok := slidingCache.Load(n); ok {
		return v.(*SlidingDFT), nil
	}
	s, err := NewSlidingDFT(n)
	if err != nil {
		return nil, err
	}
	v, _ := slidingCache.LoadOrStore(n, s)
	return v.(*SlidingDFT), nil
}

// Size returns the window length the kernel was built for.
func (s *SlidingDFT) Size() int { return s.n }

// Slide advances bins — the DFT of the window starting at some sample t —
// by m = len(outgoing) samples in place. outgoing must hold the samples
// x[t : t+m] leaving the window and incoming the samples x[t+N : t+N+m]
// entering it. m may be any value in [0, N].
func (s *SlidingDFT) Slide(bins, outgoing, incoming []complex128) {
	n := s.n
	if len(bins) != n {
		panic(fmt.Sprintf("dsp: Slide bins length %d, kernel size %d", len(bins), n))
	}
	m := len(outgoing)
	if len(incoming) != m {
		panic(fmt.Sprintf("dsp: Slide got %d outgoing but %d incoming samples", m, len(incoming)))
	}
	if m == 0 {
		return
	}
	if m > n {
		panic(fmt.Sprintf("dsp: Slide step %d exceeds window size %d", m, n))
	}
	w := s.w
	// rotStep indexes w for the inverse rotation e^{+i2πkm/N} = w[(n-m)·k mod n].
	rotStep := n - m
	if rotStep == n {
		rotStep = 0
	}
	rot := 0
	for k := 0; k < n; k++ {
		acc := bins[k]
		// idx walks k·j mod n for j = 0..m-1 (step k per j).
		idx := 0
		for j := 0; j < m; j++ {
			acc += (incoming[j] - outgoing[j]) * w[idx]
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		bins[k] = acc * w[rot]
		rot += rotStep
		if rot >= n {
			rot -= n
		}
	}
}

// SlideRotated advances a ROTATED spectrum: bins is assumed to hold
// R_δ·DFT(window at t) where R_δ[k] = e^{+i 2π k δ / N} is a phase ramp of
// integer slope δ (e.g. an OFDM segment correction), and after the call it
// holds R_{δ−m}·DFT(window at t+m), with m = len(diffs).
//
// In the rotated domain the slide needs NO per-bin output rotation — the
// window advance and the ramp slope decrement cancel — so the whole update
// is m multiply-adds per bin:
//
//	bins'[k] = bins[k] + Σ_{j<m} diffs[j]·e^{+i 2π k (δ−j) / N}.
//
// diffs must hold x[t+N+j] − x[t+j] (the entering minus the leaving
// sample), pre-scaled by whatever constant the caller keeps the spectrum
// in (e.g. 1/N for ofdm demodulation). delta is δ, the ramp slope BEFORE
// the slide; it may be any integer ≥ m−1 ... in fact any value, it is
// reduced mod N.
func (s *SlidingDFT) SlideRotated(bins, diffs []complex128, delta int) {
	n := s.n
	if len(bins) != n {
		panic(fmt.Sprintf("dsp: SlideRotated bins length %d, kernel size %d", len(bins), n))
	}
	m := len(diffs)
	if m == 0 {
		return
	}
	if m > n {
		panic(fmt.Sprintf("dsp: SlideRotated step %d exceeds window size %d", m, n))
	}
	w := s.w
	// e^{+i 2π k c / N} = w[(n − c mod n)·k mod n]. For j = 0..m-1 the
	// slope c = δ−j increases the table step by 1 per j, so for bin k the
	// index walks start, start+k, start+2k, … where start corresponds to
	// c = δ.
	base := (n - delta%n) % n
	if base < 0 {
		base += n
	}
	start := 0
	for k := 0; k < n; k++ {
		acc := bins[k]
		idx := start
		for j := 0; j < m; j++ {
			acc += diffs[j] * w[idx]
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		bins[k] = acc
		start += base
		if start >= n {
			start -= n
		}
	}
}

// SlideRotatedBins is SlideRotated restricted to the listed DFT bins: only
// bins[k] for k in sel are updated, in identical arithmetic to the full
// update, so a receiver that consumes a fixed subcarrier subset can skip
// ~80% of the per-slide work on an oversampled grid. Unlisted bins are
// left untouched (stale).
func (s *SlidingDFT) SlideRotatedBins(bins, diffs []complex128, delta int, sel []int) {
	n := s.n
	if len(bins) != n {
		panic(fmt.Sprintf("dsp: SlideRotatedBins bins length %d, kernel size %d", len(bins), n))
	}
	m := len(diffs)
	if m == 0 {
		return
	}
	if m > n {
		panic(fmt.Sprintf("dsp: SlideRotatedBins step %d exceeds window size %d", m, n))
	}
	w := s.w
	base := (n - delta%n) % n
	if base < 0 {
		base += n
	}
	for _, k := range sel {
		acc := bins[k]
		idx := (base * k) % n
		for j := 0; j < m; j++ {
			acc += diffs[j] * w[idx]
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		bins[k] = acc
	}
}
