//go:build !purego

#include "textflag.h"

// AVX2 kernels for the planar DSP hot paths. Contract (see dispatch.go):
// every kernel performs exactly the scalar fallback's floating-point
// operations per element, in the same order — VMULPD/VADDPD/VSUBPD only,
// never FMA — so results are bit-identical to the Go twins for finite
// inputs. Lanes are independent bins/samples, so processing four at a
// time does not reorder any dependent operation. All loads and stores
// are unaligned (VMOVUPD/VMOVSD); callers need no alignment or padding.
// R14/R15 and X15 are avoided (g register and zero register in the Go
// internal ABI).

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func slideTabASM(dre, dim, sre, sim, dfr, dfi, twV *float64, runs *int, m, nruns int)
//
// The dense runs of a SlideTab schedule: nruns (k0, twOff, groups)
// triples at runs, each covering groups×4 consecutive bins from bin k0.
// Per group: load src accumulators contiguously, stream m twiddle vector
// pairs from twV (tr×4 then ti×4 per j), accumulate accR += dr·tr −
// di·ti and accI += dr·ti + di·tr with the diff broadcast across lanes,
// store contiguously to dst. m == 4 (the dominant receiver shape) keeps
// all four diffs broadcast in registers across all runs and unrolls the
// j walk.
TEXT ·slideTabASM(SB), NOSPLIT, $0-80
	MOVQ dfr+32(FP), R8
	MOVQ dfi+40(FP), R9
	MOVQ runs+56(FP), R11
	MOVQ m+64(FP), R12
	MOVQ nruns+72(FP), R13
	TESTQ R13, R13
	JLE  stDone
	CMPQ R12, $4
	JEQ  stM4Setup

stRunLoop:
	MOVQ 0(R11), AX // k0
	MOVQ dre+0(FP), DI
	LEAQ (DI)(AX*8), DI
	MOVQ dim+8(FP), SI
	LEAQ (SI)(AX*8), SI
	MOVQ sre+16(FP), DX
	LEAQ (DX)(AX*8), DX
	MOVQ sim+24(FP), CX
	LEAQ (CX)(AX*8), CX
	MOVQ 8(R11), BX // twOff
	MOVQ twV+48(FP), R10
	LEAQ (R10)(BX*8), R10
	MOVQ 16(R11), AX // groups
	ADDQ $24, R11

stGLoop:
	VMOVUPD (DX), Y0 // accR
	VMOVUPD (CX), Y1 // accI
	XORQ BX, BX

stJLoop:
	VBROADCASTSD (R8)(BX*8), Y2 // dr
	VBROADCASTSD (R9)(BX*8), Y3 // di
	VMOVUPD (R10), Y4           // tr
	VMOVUPD 32(R10), Y5         // ti
	ADDQ $64, R10
	VMULPD Y4, Y2, Y6 // dr*tr
	VMULPD Y5, Y3, Y7 // di*ti
	VSUBPD Y7, Y6, Y6
	VADDPD Y6, Y0, Y0 // accR += dr*tr - di*ti
	VMULPD Y5, Y2, Y6 // dr*ti
	VMULPD Y4, Y3, Y7 // di*tr
	VADDPD Y7, Y6, Y6
	VADDPD Y6, Y1, Y1 // accI += dr*ti + di*tr
	INCQ BX
	CMPQ BX, R12
	JLT  stJLoop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, (SI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, CX
	DECQ AX
	JG   stGLoop
	DECQ R13
	JG   stRunLoop
	JMP  stDone

stM4Setup:
	VBROADCASTSD 0(R8), Y6   // d0r
	VBROADCASTSD 8(R8), Y7   // d1r
	VBROADCASTSD 16(R8), Y8  // d2r
	VBROADCASTSD 24(R8), Y9  // d3r
	VBROADCASTSD 0(R9), Y10  // d0i
	VBROADCASTSD 8(R9), Y11  // d1i
	VBROADCASTSD 16(R9), Y12 // d2i
	VBROADCASTSD 24(R9), Y13 // d3i

stM4RunLoop:
	MOVQ 0(R11), AX // k0
	MOVQ dre+0(FP), DI
	LEAQ (DI)(AX*8), DI
	MOVQ dim+8(FP), SI
	LEAQ (SI)(AX*8), SI
	MOVQ sre+16(FP), DX
	LEAQ (DX)(AX*8), DX
	MOVQ sim+24(FP), CX
	LEAQ (CX)(AX*8), CX
	MOVQ 8(R11), BX // twOff
	MOVQ twV+48(FP), R10
	LEAQ (R10)(BX*8), R10
	MOVQ 16(R11), AX // groups
	ADDQ $24, R11

stM4Loop:
	VMOVUPD (DX), Y0 // accR
	VMOVUPD (CX), Y1 // accI

	// j = 0
	VMOVUPD (R10), Y2
	VMOVUPD 32(R10), Y3
	VMULPD Y2, Y6, Y4
	VMULPD Y3, Y10, Y5
	VSUBPD Y5, Y4, Y4
	VADDPD Y4, Y0, Y0
	VMULPD Y3, Y6, Y4
	VMULPD Y2, Y10, Y5
	VADDPD Y5, Y4, Y4
	VADDPD Y4, Y1, Y1
	// j = 1
	VMOVUPD 64(R10), Y2
	VMOVUPD 96(R10), Y3
	VMULPD Y2, Y7, Y4
	VMULPD Y3, Y11, Y5
	VSUBPD Y5, Y4, Y4
	VADDPD Y4, Y0, Y0
	VMULPD Y3, Y7, Y4
	VMULPD Y2, Y11, Y5
	VADDPD Y5, Y4, Y4
	VADDPD Y4, Y1, Y1
	// j = 2
	VMOVUPD 128(R10), Y2
	VMOVUPD 160(R10), Y3
	VMULPD Y2, Y8, Y4
	VMULPD Y3, Y12, Y5
	VSUBPD Y5, Y4, Y4
	VADDPD Y4, Y0, Y0
	VMULPD Y3, Y8, Y4
	VMULPD Y2, Y12, Y5
	VADDPD Y5, Y4, Y4
	VADDPD Y4, Y1, Y1
	// j = 3
	VMOVUPD 192(R10), Y2
	VMOVUPD 224(R10), Y3
	VMULPD Y2, Y9, Y4
	VMULPD Y3, Y13, Y5
	VSUBPD Y5, Y4, Y4
	VADDPD Y4, Y0, Y0
	VMULPD Y3, Y9, Y4
	VMULPD Y2, Y13, Y5
	VADDPD Y5, Y4, Y4
	VADDPD Y4, Y1, Y1
	ADDQ $256, R10

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, (SI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, CX
	DECQ AX
	JG   stM4Loop
	DECQ R13
	JG   stM4RunLoop

stDone:
	VZEROUPPER
	RET

// func fftStage1ASM(re, im *float64, n int)
//
// Size-2 butterflies on adjacent pairs: out[2i] = x[2i]+x[2i+1],
// out[2i+1] = x[2i]-x[2i+1], two pairs per vector via duplicate-even /
// duplicate-odd shuffles and an alternating blend of sums and diffs.
TEXT ·fftStage1ASM(SB), NOSPLIT, $0-24
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), BX
	XORQ AX, AX

s1Loop:
	CMPQ AX, BX
	JGE  s1Done
	VMOVUPD (DI)(AX*8), Y0
	VMOVDDUP Y0, Y1       // [r0, r0, r2, r2]
	VPERMILPD $15, Y0, Y2 // [r1, r1, r3, r3]
	VADDPD Y2, Y1, Y3     // sums
	VSUBPD Y2, Y1, Y4     // diffs
	VBLENDPD $10, Y4, Y3, Y3
	VMOVUPD Y3, (DI)(AX*8)
	VMOVUPD (SI)(AX*8), Y0
	VMOVDDUP Y0, Y1
	VPERMILPD $15, Y0, Y2
	VADDPD Y2, Y1, Y3
	VSUBPD Y2, Y1, Y4
	VBLENDPD $10, Y4, Y3, Y3
	VMOVUPD Y3, (SI)(AX*8)
	ADDQ $4, AX
	JMP  s1Loop

s1Done:
	VZEROUPPER
	RET

// func fftStage2ASM(re, im, s2 *float64, n int)
//
// Size-4 butterflies. Two adjacent blocks (8 elements) are split into
// lo = [x0,x1,x4,x5] and hi = [x2,x3,x6,x7] with 128-bit permutes; the
// stage's two twiddles arrive pre-splatted as [w0,w1,w0,w1] in s2.
TEXT ·fftStage2ASM(SB), NOSPLIT, $0-32
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ s2+16(FP), DX
	MOVQ n+24(FP), BX
	VMOVUPD (DX), Y12   // wr = [w0r, w1r, w0r, w1r]
	VMOVUPD 32(DX), Y13 // wi = [w0i, w1i, w0i, w1i]
	XORQ AX, AX

s2Loop:
	CMPQ AX, BX
	JGE  s2Done
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y1
	VPERM2F128 $0x20, Y1, Y0, Y2 // loR
	VPERM2F128 $0x31, Y1, Y0, Y3 // hiR (xr)
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y1
	VPERM2F128 $0x20, Y1, Y0, Y4 // loI
	VPERM2F128 $0x31, Y1, Y0, Y5 // hiI (xi)
	VMULPD Y12, Y3, Y6
	VMULPD Y13, Y5, Y7
	VSUBPD Y7, Y6, Y6 // tr = wr*xr - wi*xi
	VMULPD Y12, Y5, Y7
	VMULPD Y13, Y3, Y8
	VADDPD Y8, Y7, Y7 // ti = wr*xi + wi*xr
	VSUBPD Y6, Y2, Y3 // hiR' = loR - tr
	VADDPD Y6, Y2, Y2 // loR' = loR + tr
	VSUBPD Y7, Y4, Y5 // hiI' = loI - ti
	VADDPD Y7, Y4, Y4 // loI' = loI + ti
	VPERM2F128 $0x20, Y3, Y2, Y0
	VPERM2F128 $0x31, Y3, Y2, Y1
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y1, 32(DI)(AX*8)
	VPERM2F128 $0x20, Y5, Y4, Y0
	VPERM2F128 $0x31, Y5, Y4, Y1
	VMOVUPD Y0, (SI)(AX*8)
	VMOVUPD Y1, 32(SI)(AX*8)
	ADDQ $8, AX
	JMP  s2Loop

s2Done:
	VZEROUPPER
	RET

// func fftStageASM(re, im, tws *float64, n, size int)
//
// One generic butterfly stage of size >= 8: for every size-sized block,
// walk j in fours with lo/hi half-a-block apart (contiguous vectors) and
// the per-j twiddles streamed from tws (restarted per block).
TEXT ·fftStageASM(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ tws+16(FP), DX
	MOVQ n+24(FP), BX
	MOVQ size+32(FP), CX
	MOVQ CX, R8
	SHRQ $1, R8 // half
	MOVQ R8, R9
	SHLQ $3, R9 // half*8 bytes
	XORQ AX, AX // block base (elements)

gsOuter:
	CMPQ AX, BX
	JGE  gsDone
	MOVQ DX, R10           // twiddle stream restarts per block
	LEAQ (DI)(AX*8), R11   // &re[lo]
	LEAQ (SI)(AX*8), R12   // &im[lo]
	XORQ R13, R13          // j

gsInner:
	VMOVUPD (R10), Y12   // wr
	VMOVUPD 32(R10), Y13 // wi
	ADDQ $64, R10
	VMOVUPD (R11)(R9*1), Y0 // xr = re[hi]
	VMOVUPD (R12)(R9*1), Y1 // xi = im[hi]
	VMOVUPD (R11), Y2       // re[lo]
	VMOVUPD (R12), Y3       // im[lo]
	VMULPD Y12, Y0, Y4
	VMULPD Y13, Y1, Y5
	VSUBPD Y5, Y4, Y4 // tr = wr*xr - wi*xi
	VMULPD Y12, Y1, Y5
	VMULPD Y13, Y0, Y6
	VADDPD Y6, Y5, Y5 // ti = wr*xi + wi*xr
	VSUBPD Y4, Y2, Y0 // re[hi] = re[lo] - tr
	VSUBPD Y5, Y3, Y1 // im[hi] = im[lo] - ti
	VADDPD Y4, Y2, Y2 // re[lo] += tr
	VADDPD Y5, Y3, Y3 // im[lo] += ti
	VMOVUPD Y0, (R11)(R9*1)
	VMOVUPD Y1, (R12)(R9*1)
	VMOVUPD Y2, (R11)
	VMOVUPD Y3, (R12)
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $4, R13
	CMPQ R13, R8
	JLT  gsInner

	ADDQ CX, AX
	JMP  gsOuter

gsDone:
	VZEROUPPER
	RET

// func freqShiftApplyASM(re, im, rotR, rotI *float64, n int)
//
// Elementwise complex multiply by the precomputed rotator:
// re' = re*rotR - im*rotI, im' = re*rotI + im*rotR.
TEXT ·freqShiftApplyASM(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ rotR+16(FP), DX
	MOVQ rotI+24(FP), CX
	MOVQ n+32(FP), BX
	XORQ AX, AX

fsLoop:
	CMPQ AX, BX
	JGE  fsDone
	VMOVUPD (DI)(AX*8), Y0 // xr
	VMOVUPD (SI)(AX*8), Y1 // xi
	VMOVUPD (DX)(AX*8), Y2 // rotR
	VMOVUPD (CX)(AX*8), Y3 // rotI
	VMULPD Y2, Y0, Y4
	VMULPD Y3, Y1, Y5
	VSUBPD Y5, Y4, Y4 // xr*rotR - xi*rotI
	VMULPD Y3, Y0, Y5
	VMULPD Y2, Y1, Y6
	VADDPD Y6, Y5, Y5 // xr*rotI + xi*rotR
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, (SI)(AX*8)
	ADDQ $4, AX
	JMP  fsLoop

fsDone:
	VZEROUPPER
	RET
