//go:build purego || !(amd64 || arm64)

package dsp

// This build has no SIMD kernels: either the purego tag forced the scalar
// fallback at compile time, or the target architecture has no asm
// implementation. Every dispatch hook below is an inert stub, so the
// planar kernels run their scalar Go bodies unconditionally and the full
// test suite exercises exactly the fallback code (the CI purego job
// builds and tests this configuration).

// buildVecTwiddles is a no-op: without SIMD kernels no stage-vector
// twiddle layout is needed.
func (p *FFTPlan) buildVecTwiddles() {}

// transformPlanarSIMD always declines, sending the transform down the
// scalar butterfly stages.
func (p *FFTPlan) transformPlanarSIMD(re, im []float64, fwd bool) bool { return false }

// buildVec is a no-op: tab.runs stays nil, so SlideRotatedTab never
// dispatches.
func (t *SlideTab) buildVec() {}

// slideTabASM exists so SlideRotatedTab's (statically dead, since
// tab.runs is always nil here) dispatch branch compiles.
func slideTabASM(dre, dim, sre, sim, dfr, dfi, twV *float64, runs *int, m, nruns int) {
	panic("dsp: slideTabASM called without SIMD support")
}

// freqShiftPlanarSIMD always declines, keeping the scalar phasor loop.
func freqShiftPlanarSIMD(x Planar, w, stepR, stepI float64, startSample int) bool { return false }
