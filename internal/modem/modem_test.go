package modem

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

var allSchemes = []Scheme{BPSK, QPSK, QAM16, QAM64, QAM256}

func TestSchemeString(t *testing.T) {
	want := map[Scheme]string{
		BPSK: "BPSK", QPSK: "QPSK", QAM16: "16-QAM", QAM64: "64-QAM", QAM256: "256-QAM",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Error("unknown scheme String")
	}
}

func TestBitsPerSymbol(t *testing.T) {
	want := map[Scheme]int{BPSK: 1, QPSK: 2, QAM16: 4, QAM64: 6, QAM256: 8}
	for s, w := range want {
		if s.BitsPerSymbol() != w {
			t.Errorf("%v.BitsPerSymbol() = %d, want %d", s, s.BitsPerSymbol(), w)
		}
		if New(s).Size() != 1<<w {
			t.Errorf("%v size = %d, want %d", s, New(s).Size(), 1<<w)
		}
	}
}

func TestUnitAveragePower(t *testing.T) {
	for _, s := range allSchemes {
		c := New(s)
		if p := c.AveragePower(); math.Abs(p-1) > 1e-12 {
			t.Errorf("%v average power = %v, want 1", s, p)
		}
	}
}

func TestKnown80211Mappings(t *testing.T) {
	// Reference points straight from IEEE 802.11-2012 Table 18-10..18-12.
	qpsk := New(QPSK)
	k := 1 / math.Sqrt2
	cases := []struct {
		bits []byte
		want complex128
	}{
		{[]byte{0, 0}, complex(-k, -k)},
		{[]byte{0, 1}, complex(-k, k)},
		{[]byte{1, 0}, complex(k, -k)},
		{[]byte{1, 1}, complex(k, k)},
	}
	for _, cse := range cases {
		if got := qpsk.Map(cse.bits); cmplx.Abs(got-cse.want) > 1e-12 {
			t.Errorf("QPSK %v = %v, want %v", cse.bits, got, cse.want)
		}
	}

	q16 := New(QAM16)
	k16 := 1 / math.Sqrt(10)
	// b0b1 selects I: 00→-3 01→-1 11→+1 10→+3 (and same for Q from b2b3).
	c16 := []struct {
		bits []byte
		want complex128
	}{
		{[]byte{0, 0, 0, 0}, complex(-3*k16, -3*k16)},
		{[]byte{0, 1, 1, 1}, complex(-1*k16, 1*k16)},
		{[]byte{1, 0, 1, 0}, complex(3*k16, 3*k16)},
		{[]byte{1, 1, 0, 1}, complex(1*k16, -1*k16)},
	}
	for _, cse := range c16 {
		if got := q16.Map(cse.bits); cmplx.Abs(got-cse.want) > 1e-12 {
			t.Errorf("16QAM %v = %v, want %v", cse.bits, got, cse.want)
		}
	}

	q64 := New(QAM64)
	k64 := 1 / math.Sqrt(42)
	// 802.11 64-QAM axis: 000→-7 001→-5 011→-3 010→-1 110→1 111→3 101→5 100→7.
	c64 := []struct {
		bits []byte
		want complex128
	}{
		{[]byte{0, 0, 0, 0, 0, 0}, complex(-7*k64, -7*k64)},
		{[]byte{0, 1, 0, 1, 1, 0}, complex(-1*k64, 1*k64)},
		{[]byte{1, 0, 0, 1, 0, 0}, complex(7*k64, 7*k64)},
		{[]byte{1, 1, 1, 0, 0, 1}, complex(3*k64, -5*k64)},
	}
	for _, cse := range c64 {
		if got := q64.Map(cse.bits); cmplx.Abs(got-cse.want) > 1e-12 {
			t.Errorf("64QAM %v = %v, want %v", cse.bits, got, cse.want)
		}
	}
}

func TestGrayNeighbourProperty(t *testing.T) {
	// Adjacent levels on each axis must differ in exactly one bit (Gray).
	for _, s := range []Scheme{QAM16, QAM64, QAM256} {
		c := New(s)
		half := c.BitsPerSymbol() / 2
		type lv struct {
			level float64
			label int
		}
		var axis []lv
		for v := 0; v < 1<<half; v++ {
			axis = append(axis, lv{grayAxis(v, half), v})
		}
		for i := range axis {
			for j := range axis {
				if axis[j].level == axis[i].level+2 {
					diff := axis[i].label ^ axis[j].label
					if bitsSet(diff) != 1 {
						t.Errorf("%v: levels %v and %v labels differ in %d bits",
							s, axis[i].level, axis[j].level, bitsSet(diff))
					}
				}
			}
		}
	}
}

func bitsSet(v int) int {
	n := 0
	for v != 0 {
		n += v & 1
		v >>= 1
	}
	return n
}

func TestMapDemapRoundTripProperty(t *testing.T) {
	for _, s := range allSchemes {
		c := New(s)
		f := func(seed int64) bool {
			r := dsp.NewRand(seed)
			bits := r.Bits(c.BitsPerSymbol() * 20)
			syms := c.MapAll(bits)
			got := c.HardDemap(syms, nil)
			if len(got) != len(bits) {
				return false
			}
			for i := range bits {
				if bits[i] != got[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

func TestHardDemapWithModerateNoise(t *testing.T) {
	// Noise well below half the minimum distance must never flip a decision.
	for _, s := range allSchemes {
		c := New(s)
		r := dsp.NewRand(int64(s) + 10)
		margin := c.MinDistance() / 2 * 0.9
		for trial := 0; trial < 200; trial++ {
			idx := r.Intn(c.Size())
			angle := 2 * math.Pi * r.Float64()
			noisy := c.Point(idx) + cmplx.Rect(margin, angle)
			if got := c.Nearest(noisy); got != idx {
				t.Fatalf("%v: point %d misdecoded as %d with sub-margin noise", s, idx, got)
			}
		}
	}
}

func TestIndexBitsOfInverse(t *testing.T) {
	for _, s := range allSchemes {
		c := New(s)
		buf := make([]byte, c.BitsPerSymbol())
		for idx := 0; idx < c.Size(); idx++ {
			c.BitsOf(idx, buf)
			if got := c.Index(buf); got != idx {
				t.Fatalf("%v: Index(BitsOf(%d)) = %d", s, idx, got)
			}
		}
	}
}

func TestMapPanicsOnWrongBitCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(QPSK).Map([]byte{1})
}

func TestMapAllPanicsOnRaggedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(QAM16).MapAll(make([]byte, 6))
}

func TestWithinRadius(t *testing.T) {
	c := New(QPSK)
	k := 1 / math.Sqrt2
	// Centre on one lattice point with a radius that excludes the others.
	got := c.WithinRadius(complex(k, k), 0.1, nil)
	if len(got) != 1 || c.Point(got[0]) != complex(k, k) {
		t.Fatalf("WithinRadius tight = %v", got)
	}
	// Large radius returns everything, sorted by distance.
	all := c.WithinRadius(complex(k, k), 10, nil)
	if len(all) != 4 {
		t.Fatalf("WithinRadius wide returned %d points", len(all))
	}
	if c.Point(all[0]) != complex(k, k) {
		t.Fatal("WithinRadius not distance-sorted")
	}
	// Empty sphere.
	if got := c.WithinRadius(complex(100, 100), 0.5, nil); len(got) != 0 {
		t.Fatalf("expected empty sphere, got %v", got)
	}
}

func TestWithinRadiusSortedProperty(t *testing.T) {
	c := New(QAM64)
	f := func(seed int64) bool {
		r := dsp.NewRand(seed)
		centre := complex(r.NormFloat64(), r.NormFloat64())
		radius := 0.2 + r.Float64()
		idxs := c.WithinRadius(centre, radius, nil)
		prev := -1.0
		for _, idx := range idxs {
			d := cmplx.Abs(c.Point(idx) - centre)
			if d > radius+1e-12 || d < prev-1e-12 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMinDistance(t *testing.T) {
	// For square M²-QAM with 802.11 normalisation, dmin = 2/√norm².
	want := map[Scheme]float64{
		BPSK:  2,
		QPSK:  2 / math.Sqrt(2),
		QAM16: 2 / math.Sqrt(10),
		QAM64: 2 / math.Sqrt(42),
	}
	for s, w := range want {
		if got := New(s).MinDistance(); math.Abs(got-w) > 1e-12 {
			t.Errorf("%v MinDistance = %v, want %v", s, got, w)
		}
	}
}

func TestLLRSign(t *testing.T) {
	c := New(QPSK)
	// Receive exactly on the 11 point: every LLR must be negative (bit 1).
	k := 1 / math.Sqrt2
	llrs := c.LLR([]complex128{complex(k, k)}, 0.1, nil)
	if len(llrs) != 2 {
		t.Fatalf("LLR count = %d", len(llrs))
	}
	for i, l := range llrs {
		if l >= 0 {
			t.Errorf("LLR[%d] = %v, want negative for bit 1", i, l)
		}
	}
	// And on 00: every LLR positive.
	llrs = c.LLR([]complex128{complex(-k, -k)}, 0.1, nil)
	for i, l := range llrs {
		if l <= 0 {
			t.Errorf("LLR[%d] = %v, want positive for bit 0", i, l)
		}
	}
}

func TestLLRConsistentWithHardDecision(t *testing.T) {
	for _, s := range allSchemes {
		c := New(s)
		r := dsp.NewRand(int64(s) + 99)
		for trial := 0; trial < 100; trial++ {
			rx := complex(r.NormFloat64(), r.NormFloat64())
			hard := c.BitsOf(c.Nearest(rx), nil)
			llr := c.LLR([]complex128{rx}, 0.5, nil)
			for b := range hard {
				soft := byte(0)
				if llr[b] < 0 {
					soft = 1
				}
				if llr[b] != 0 && soft != hard[b] {
					t.Fatalf("%v: LLR sign disagrees with hard decision at bit %d (rx=%v)", s, b, rx)
				}
			}
		}
	}
}

func TestDeviationOf(t *testing.T) {
	d := DeviationOf(1+1i, 1)
	if math.Abs(d.Amp-1) > 1e-12 || math.Abs(d.Phase-math.Pi/2) > 1e-12 {
		t.Fatalf("DeviationOf = %+v", d)
	}
	z := DeviationOf(2-3i, 2-3i)
	if z.Amp != 0 {
		t.Fatalf("zero deviation amp = %v", z.Amp)
	}
}

func BenchmarkNearest64QAM(b *testing.B) {
	c := New(QAM64)
	r := dsp.NewRand(1)
	rx := r.CNVector(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Nearest(rx[i%len(rx)])
	}
}

func BenchmarkWithinRadius64QAM(b *testing.B) {
	c := New(QAM64)
	var dst []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = c.WithinRadius(0.3+0.2i, 0.5, dst[:0])
	}
}
