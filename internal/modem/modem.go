// Package modem implements the digital constellations used by 802.11a/g
// OFDM: BPSK, QPSK, 16-QAM, 64-QAM and (for the oversampling extension)
// 256-QAM, all Gray-coded and normalised to unit average power exactly as
// specified in IEEE 802.11-2012 §18.3.5.8.
//
// A Constellation is the "finite set of alphabet from the transmitter's
// codebook" (paper §3.1): its points are the lattice L = {l1 … lk} over
// which CPRecycle's fixed-sphere maximum-likelihood detector searches.
package modem

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
)

// Scheme identifies a modulation scheme.
type Scheme int

// Supported modulation schemes.
const (
	BPSK Scheme = iota
	QPSK
	QAM16
	QAM64
	QAM256
)

// String returns the conventional name of the scheme.
func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	case QAM256:
		return "256-QAM"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// BitsPerSymbol returns the number of bits carried per constellation point.
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	case QAM256:
		return 8
	default:
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
}

// Constellation holds the lattice points of a scheme together with the
// Gray bit labelling. The zero value is not usable; construct with New.
// A Constellation is immutable and safe for concurrent use.
type Constellation struct {
	scheme Scheme
	bits   int
	points []complex128 // indexed by the integer formed from the bit label
	norm   float64      // K_MOD scaling applied to the raw lattice
}

// New returns the constellation for the given scheme.
func New(s Scheme) *Constellation {
	c := &Constellation{scheme: s, bits: s.BitsPerSymbol()}
	switch s {
	case BPSK:
		c.norm = 1
		c.points = []complex128{complex(-1, 0), complex(1, 0)}
	case QPSK:
		c.norm = 1 / math.Sqrt2
		c.points = make([]complex128, 4)
		for idx := range c.points {
			i := grayAxis((idx>>1)&1, 1)
			q := grayAxis(idx&1, 1)
			c.points[idx] = complex(i*c.norm, q*c.norm)
		}
	case QAM16:
		c.norm = 1 / math.Sqrt(10)
		c.points = make([]complex128, 16)
		for idx := range c.points {
			i := grayAxis((idx>>2)&3, 2)
			q := grayAxis(idx&3, 2)
			c.points[idx] = complex(i*c.norm, q*c.norm)
		}
	case QAM64:
		c.norm = 1 / math.Sqrt(42)
		c.points = make([]complex128, 64)
		for idx := range c.points {
			i := grayAxis((idx>>3)&7, 3)
			q := grayAxis(idx&7, 3)
			c.points[idx] = complex(i*c.norm, q*c.norm)
		}
	case QAM256:
		c.norm = 1 / math.Sqrt(170)
		c.points = make([]complex128, 256)
		for idx := range c.points {
			i := grayAxis((idx>>4)&15, 4)
			q := grayAxis(idx&15, 4)
			c.points[idx] = complex(i*c.norm, q*c.norm)
		}
	default:
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
	return c
}

// grayAxis maps nb bits (as an integer v, first transmitted bit most
// significant) to the 802.11 Gray-coded PAM level on one axis:
// 1 bit: 0→-1 1→+1; 2 bits: 00→-3 01→-1 11→+1 10→+3; 3 and 4 bits extend
// the same reflected-Gray pattern.
func grayAxis(v, nb int) float64 {
	// Convert Gray label to its rank along the axis, then to a level.
	g := v
	b := g
	for shift := 1; shift < nb; shift++ {
		b ^= g >> shift
	}
	// b is now the binary rank 0..2^nb-1 from the most negative level.
	levels := 1 << nb
	return float64(2*b - levels + 1)
}

// Scheme returns the modulation scheme of the constellation.
func (c *Constellation) Scheme() Scheme { return c.scheme }

// BitsPerSymbol returns the number of bits per point.
func (c *Constellation) BitsPerSymbol() int { return c.bits }

// Size returns the number of lattice points.
func (c *Constellation) Size() int { return len(c.points) }

// Points returns the lattice. The returned slice must not be modified.
func (c *Constellation) Points() []complex128 { return c.points }

// Point returns the lattice point for a bit-label index in [0, Size).
func (c *Constellation) Point(idx int) complex128 { return c.points[idx] }

// Map converts BitsPerSymbol bits (0/1 bytes, first bit = most significant
// in the label, matching 802.11 bit ordering) to a lattice point.
func (c *Constellation) Map(bits []byte) complex128 {
	if len(bits) != c.bits {
		panic(fmt.Sprintf("modem: Map needs %d bits, got %d", c.bits, len(bits)))
	}
	return c.points[c.Index(bits)]
}

// Index converts a bit group to its integer lattice label.
func (c *Constellation) Index(bits []byte) int {
	idx := 0
	for _, b := range bits {
		idx = idx<<1 | int(b&1)
	}
	return idx
}

// BitsOf writes the bit label of lattice index idx into dst (length
// BitsPerSymbol) and returns dst.
func (c *Constellation) BitsOf(idx int, dst []byte) []byte {
	if dst == nil {
		dst = make([]byte, c.bits)
	}
	for i := 0; i < c.bits; i++ {
		dst[i] = byte(idx>>(c.bits-1-i)) & 1
	}
	return dst
}

// MapAll maps a bit stream (length must be a multiple of BitsPerSymbol)
// to a fresh slice of lattice points.
func (c *Constellation) MapAll(bits []byte) []complex128 {
	if len(bits)%c.bits != 0 {
		panic(fmt.Sprintf("modem: MapAll bit count %d not a multiple of %d", len(bits), c.bits))
	}
	out := make([]complex128, len(bits)/c.bits)
	for i := range out {
		out[i] = c.Map(bits[i*c.bits : (i+1)*c.bits])
	}
	return out
}

// Nearest returns the lattice index of the point closest (in Euclidean
// distance) to the received sample r.
func (c *Constellation) Nearest(r complex128) int {
	best, bestD := 0, math.Inf(1)
	for i, p := range c.points {
		d := sqAbs(r - p)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// HardDemap appends the bit label of the nearest lattice point for every
// received sample and returns the extended slice.
func (c *Constellation) HardDemap(rx []complex128, dst []byte) []byte {
	buf := make([]byte, c.bits)
	for _, r := range rx {
		c.BitsOf(c.Nearest(r), buf)
		dst = append(dst, buf...)
	}
	return dst
}

// LLR appends max-log-MAP log-likelihood ratios (positive = bit 0 more
// likely) for every bit of every received sample, given noise variance n0.
// Used by the soft Viterbi extension.
func (c *Constellation) LLR(rx []complex128, n0 float64, dst []float64) []float64 {
	if n0 <= 0 {
		n0 = 1e-9
	}
	for _, r := range rx {
		for b := 0; b < c.bits; b++ {
			d0, d1 := math.Inf(1), math.Inf(1)
			for idx, p := range c.points {
				d := sqAbs(r - p)
				if idx>>(c.bits-1-b)&1 == 0 {
					if d < d0 {
						d0 = d
					}
				} else if d < d1 {
					d1 = d
				}
			}
			dst = append(dst, (d1-d0)/n0)
		}
	}
	return dst
}

// WithinRadius appends the lattice indices whose points lie within Euclidean
// distance radius of centre, in increasing-distance order. This implements
// the fixed-sphere candidate selection of the paper's §4.2.
func (c *Constellation) WithinRadius(centre complex128, radius float64, dst []int) []int {
	r2 := radius * radius
	type cand struct {
		idx int
		d   float64
	}
	var cands []cand
	for i, p := range c.points {
		d := sqAbs(p - centre)
		if d <= r2 {
			cands = append(cands, cand{i, d})
		}
	}
	// insertion sort by distance; candidate sets are tiny
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, cd := range cands {
		dst = append(dst, cd.idx)
	}
	return dst
}

// MinDistance returns the minimum Euclidean distance between any two
// distinct lattice points (useful for choosing sphere radii).
func (c *Constellation) MinDistance() float64 {
	best := math.Inf(1)
	for i := range c.points {
		for j := i + 1; j < len(c.points); j++ {
			if d := cmplx.Abs(c.points[i] - c.points[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// AveragePower returns the mean squared magnitude over the lattice; 1.0 for
// all correctly normalised schemes.
func (c *Constellation) AveragePower() float64 {
	var s float64
	for _, p := range c.points {
		s += sqAbs(p)
	}
	return s / float64(len(c.points))
}

func sqAbs(v complex128) float64 {
	return real(v)*real(v) + imag(v)*imag(v)
}

// Deviation describes a received point relative to a lattice point in the
// decoupled amplitude/phase coordinates the paper's interference model uses
// (§4.1): A(X̂−X) and Φ(X̂−X).
type Deviation struct {
	Amp   float64 // |X̂ − X|
	Phase float64 // arg(X̂ − X) in (−π, π]
}

// DeviationOf returns the amplitude/phase deviation of received sample rx
// from lattice point ref.
func DeviationOf(rx, ref complex128) Deviation {
	d := rx - ref
	return Deviation{Amp: dsp.Abs(d), Phase: cmplx.Phase(d)}
}
