package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"repro/internal/channel"
)

// Point-range identity. The distributed sweep tier (internal/sweep/dist)
// hands out leases that name plan points by index only; the worker
// rebuilds the plan from the normalised spec on its side. That is only
// sound if both sides derive the same point list from the same spec, so a
// lease carries the plan's Fingerprint and the worker refuses leases
// whose fingerprint differs from its locally-built plan — catching
// version skew, axis-default drift, or a mispatched binary before any
// mismatched tallies are merged.

// PointIdentity returns a canonical one-line description of point i: the
// fields that determine its packet decisions (per-point seed, packet
// count, PSDU size, MCS, segment plan inputs, receiver arms, and the
// scenario's interference layout). Fields that cannot change results —
// worker counts, the waveform-pool pointer (whose identity travels
// separately in lease and journal headers), scratch configuration — are
// deliberately excluded, so identities are stable across hosts and
// parallelism settings.
func (p *SweepPlan) PointIdentity(i int) string {
	c := p.Points[i].Cfg
	arms := make([]string, len(c.Receivers))
	for a, k := range c.Receivers {
		arms[a] = k.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d pkts=%d bytes=%d mcs=%s segs=%d stride=%d arms=%s",
		p.Name, c.Seed, c.Packets, c.PSDUBytes, c.MCS.Name, c.NumSegments, c.StrideDivisor,
		strings.Join(arms, ","))
	if s := c.Scenario; s != nil {
		fmt.Fprintf(&b, " scen=q%d,c%d,snr%g,pad%d", s.Q, s.VictimCenter, s.SNRdB, s.Pad)
		writeTaps(&b, s.Channel)
		for _, in := range s.Interferers {
			fmt.Fprintf(&b, " int=off%d,sir%g,b%d,mcs%s,cfo%g", in.CenterOffset, in.SIRdB, in.BoundaryOffset, in.MCS.Name, in.CFO)
			writeTaps(&b, in.Channel)
		}
	}
	return b.String()
}

// writeTaps appends the multipath channel's exact tap values (the
// delay-spread sweep's points differ only by their per-point channel
// realisation, so tap counts alone would collide).
func writeTaps(b *strings.Builder, ch *channel.Multipath) {
	if ch == nil {
		return
	}
	b.WriteString(",ch=")
	for _, t := range ch.Taps {
		fmt.Fprintf(b, "%g%+gi;", real(t), imag(t))
	}
}

// Fingerprint hashes every point's identity (plus the plan name and point
// count) into a short hex digest: two plans agree on a fingerprint iff
// they would produce bit-identical per-point tallies for the same
// executor. It is intentionally cheap — string formatting over scalar
// config fields, no waveforms touched.
func (p *SweepPlan) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d\n", p.Name, len(p.Points))
	for i := range p.Points {
		io.WriteString(h, p.PointIdentity(i))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
