package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one header row plus data rows,
// mirroring the series of the corresponding paper figure or table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row where the first cell is a label and the rest
// are formatted with %.2f.
func (t *Table) AddFloatRow(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.2f", v))
	}
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned monospaced text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
