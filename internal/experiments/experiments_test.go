package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/wifi"
)

func opts() Options { return Options{Packets: 6, PSDUBytes: 60, Seed: 1} }

func TestReceiverKindString(t *testing.T) {
	names := map[ReceiverKind]string{
		Standard: "standard", Naive: "naive", Oracle: "oracle",
		CPRecycle: "cprecycle", CPRecycleNoTrack: "cprecycle-notrack", CPRecycleKDE: "cprecycle-kde",
	}
	for k, w := range names {
		if k.String() != w {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestOperatingSNRKnown(t *testing.T) {
	for _, m := range wifi.StandardMCS() {
		if OperatingSNR(m.Name) < 5 || OperatingSNR(m.Name) > 30 {
			t.Errorf("%s: suspicious operating SNR %v", m.Name, OperatingSNR(m.Name))
		}
	}
	if OperatingSNR("unknown") != 20 {
		t.Error("unknown MCS should default to 20")
	}
}

func TestRunPSRValidation(t *testing.T) {
	m, _ := wifi.MCSByName("QPSK 1/2")
	if _, err := RunPSR(LinkConfig{Packets: 0}); err == nil {
		t.Fatal("zero packets should fail")
	}
	if _, err := RunPSR(LinkConfig{Packets: 1, PSDUBytes: 2}); err == nil {
		t.Fatal("tiny PSDU should fail")
	}
	if _, err := RunPSR(LinkConfig{Packets: 1, PSDUBytes: 60, MCS: m}); err == nil {
		t.Fatal("no receivers should fail")
	}
}

func TestRunPSRCleanChannel(t *testing.T) {
	m, _ := wifi.MCSByName("QPSK 1/2")
	cfg := LinkConfig{
		Scenario:  ACIScenario(100, 57, 30), // effectively interference-free
		MCS:       m,
		PSDUBytes: 60,
		Packets:   4,
		Seed:      7,
		Receivers: []ReceiverKind{Standard, CPRecycle, Naive},
	}
	pts, err := RunPSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.N != 4 {
			t.Fatalf("%v: N = %d", p.Kind, p.N)
		}
		if p.Rate() != 1 {
			t.Fatalf("%v: clean-channel PSR = %v", p.Kind, p.Rate())
		}
	}
}

func TestRunPSRDeterministic(t *testing.T) {
	m, _ := wifi.MCSByName("16-QAM 1/2")
	cfg := LinkConfig{
		Scenario:  ACIScenario(-15, 57, 17),
		MCS:       m,
		PSDUBytes: 60,
		Packets:   5,
		Seed:      9,
		Receivers: []ReceiverKind{Standard, CPRecycle},
	}
	a, err := RunPSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	b, err := RunPSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].OK != b[i].OK {
			t.Fatalf("parallelism changed results: %v vs %v", a[i], b[i])
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddFloatRow("x", 3.14159)
	out := tb.Render()
	for _, want := range []string{"== T ==", "n", "a", "bb", "3.14"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Experiment(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 6 { // 4 Wi-Fi rows + 2 LTE rows
		t.Fatalf("Table 1 rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][2] != "64" || tb.Rows[0][3] != "16" {
		t.Fatalf("row 0 = %v", tb.Rows[0])
	}
}

func TestFig4aShape(t *testing.T) {
	tb, err := Fig4a(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 127 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Note, "oracle reduction") {
		t.Fatal("missing reduction summary")
	}
}

func TestFig4bShape(t *testing.T) {
	tb, err := Fig4b(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 || len(tb.Rows[0]) != 4 {
		t.Fatalf("unexpected shape %dx%d", len(tb.Rows), len(tb.Rows[0]))
	}
	// Normalised to the global maximum: every value ≤ 0 dB, exactly one
	// ≈ 0 somewhere, and the strongest-interference curve (SIR −30, col 3)
	// must sit well above the weakest (SIR −10, col 1) on average. The
	// per-segment swing within a curve must be large (>10 dB for −20 dB
	// SIR) — the paper's headline observation.
	var sum1, sum3 float64
	min2, max2 := 1e9, -1e9
	foundMax := false
	for _, row := range tb.Rows {
		var v1, v2, v3 float64
		if _, err := fscan(row[1], &v1); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[2], &v2); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[3], &v3); err != nil {
			t.Fatal(err)
		}
		for _, v := range []float64{v1, v2, v3} {
			if v > 1e-9 {
				t.Fatalf("normalised value %v > 0 dB", v)
			}
			if v > -0.01 {
				foundMax = true
			}
		}
		sum1 += v1
		sum3 += v3
		if v2 < min2 {
			min2 = v2
		}
		if v2 > max2 {
			max2 = v2
		}
	}
	if !foundMax {
		t.Fatal("no 0 dB global maximum")
	}
	if sum3 <= sum1 {
		t.Fatal("SIR -30 curve should dominate SIR -10")
	}
	if max2-min2 < 10 {
		t.Fatalf("per-segment variation only %.1f dB at SIR -20", max2-min2)
	}
}

func TestFig4cShape(t *testing.T) {
	tb, err := Fig4c(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2+5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig6aShape(t *testing.T) {
	tb, err := Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 40 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig6bShape(t *testing.T) {
	tb, err := Fig6b(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 20 || len(tb.Header) != 7 {
		t.Fatalf("unexpected shape")
	}
	// CDFs end near 1.
	last := tb.Rows[len(tb.Rows)-1]
	for col := 1; col < 7; col++ {
		var v float64
		if _, err := fscan(last[col], &v); err != nil {
			t.Fatal(err)
		}
		if v < 0.9 {
			t.Fatalf("CDF column %d ends at %v", col, v)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tb, err := Fig13(7, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 26 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// CPRecycle CDF dominates (shifted left): at every count its CDF ≥ std.
	for _, row := range tb.Rows {
		var s, c float64
		if _, err := fscan(row[1], &s); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[2], &c); err != nil {
			t.Fatal(err)
		}
		if c < s-1e-9 {
			t.Fatalf("CPRecycle CDF below standard at %s", row[0])
		}
	}
}

func fscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

func TestSoftReceiverKinds(t *testing.T) {
	m, _ := wifi.MCSByName("QPSK 1/2")
	cfg := LinkConfig{
		Scenario:  ACIScenario(100, 57, 30),
		MCS:       m,
		PSDUBytes: 60,
		Packets:   3,
		Seed:      13,
		Receivers: []ReceiverKind{StandardSoft, CPRecycleSoft},
	}
	pts, err := RunPSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Rate() != 1 {
			t.Fatalf("%v: clean-channel soft PSR = %v", p.Kind, p.Rate())
		}
	}
	if StandardSoft.String() != "standard-soft" || CPRecycleSoft.String() != "cprecycle-soft" {
		t.Fatal("soft kind names wrong")
	}
}
