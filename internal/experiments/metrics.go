package experiments

import (
	"repro/internal/obs"
)

// Packet-level spans recorded once per RunPacket. "tx" covers waveform
// synthesis + channel simulation (Scenario.Run); "train" covers the
// shared CPRecycle preamble training pass. The observe/decode stages of
// the same cpr_sweep_stage_seconds family are recorded inside
// internal/rx. All hooks are loop-granular: a few time.Now calls and
// atomic updates per ~1ms packet, zero allocations (see
// internal/obs BenchmarkPacketMetrics).
var (
	packetsTotal  = obs.NewCounter("cpr_sweep_packets_total", "Packets fully decoded across every receiver arm.")
	packetSeconds = obs.NewHistogram("cpr_sweep_packet_seconds", "Wall-clock seconds per packet across every receiver arm.", obs.DurationBuckets)
	stageTx       = obs.NewHistogram("cpr_sweep_stage_seconds", "Wall-clock seconds per receiver/sweep stage, one observation per packet.",
		obs.DurationBuckets, obs.Label{Name: "stage", Value: "tx"})
	stageTrain = obs.NewHistogram("cpr_sweep_stage_seconds", "Wall-clock seconds per receiver/sweep stage, one observation per packet.",
		obs.DurationBuckets, obs.Label{Name: "stage", Value: "train"})
)
