// Package experiments contains the workload generators, parameter sweeps
// and measurement harnesses that regenerate every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// experiment returns a Table whose rows mirror the series the paper plots;
// EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/interference"
	"repro/internal/ofdm"
	"repro/internal/rx"
	"repro/internal/wifi"
)

// ReceiverKind identifies one receiver arm of a comparison.
type ReceiverKind int

// The receiver arms used across experiments.
const (
	Standard ReceiverKind = iota
	Naive
	Oracle
	CPRecycle
	CPRecycleNoTrack
	CPRecycleKDE
	// StandardSoft and CPRecycleSoft use the soft-decision Viterbi
	// extension (rx.DecodeDataSoft).
	StandardSoft
	CPRecycleSoft
)

// String names the receiver kind.
func (k ReceiverKind) String() string {
	switch k {
	case Standard:
		return "standard"
	case Naive:
		return "naive"
	case Oracle:
		return "oracle"
	case CPRecycle:
		return "cprecycle"
	case CPRecycleNoTrack:
		return "cprecycle-notrack"
	case CPRecycleKDE:
		return "cprecycle-kde"
	case StandardSoft:
		return "standard-soft"
	case CPRecycleSoft:
		return "cprecycle-soft"
	default:
		return fmt.Sprintf("ReceiverKind(%d)", int(k))
	}
}

// ParseReceiverKind maps a receiver name (as produced by
// ReceiverKind.String) back to the kind.
func ParseReceiverKind(name string) (ReceiverKind, error) {
	for k := Standard; k <= CPRecycleSoft; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown receiver kind %q", name)
}

// OperatingSNR returns the calibrated operating point for an MCS — the
// paper picks the SNR at which that MCS "has the highest throughput".
func OperatingSNR(mcsName string) float64 {
	switch mcsName {
	case "BPSK 1/2":
		return 7
	case "BPSK 3/4":
		return 9
	case "QPSK 1/2":
		return 10
	case "QPSK 3/4":
		return 13
	case "16-QAM 1/2":
		return 17
	case "16-QAM 3/4":
		return 20
	case "64-QAM 2/3":
		return 25
	case "64-QAM 3/4":
		return 27
	default:
		return 20
	}
}

// LinkConfig describes one packet-success-rate measurement point.
type LinkConfig struct {
	// Scenario builds the interference layout. It is invoked once; its
	// Run method draws fresh randomness per packet.
	Scenario *interference.Scenario
	// MCS is the victim's modulation and coding scheme.
	MCS wifi.MCS
	// PSDUBytes is the victim packet size including FCS (paper: 400).
	PSDUBytes int
	// Packets is the number of packets to transmit (paper: 2000).
	Packets int
	// Seed makes the measurement reproducible.
	Seed int64
	// NumSegments is the paper's P (default 16).
	NumSegments int
	// StrideDivisor divides the native-sample segment stride; 2 enables
	// the §6 oversampling mode (segments every half native sample on an
	// oversampled composite grid). Default 1.
	StrideDivisor int
	// Receivers lists the arms to decode each packet with.
	Receivers []ReceiverKind
	// Workers bounds the packet-level parallelism (default: GOMAXPROCS).
	Workers int
	// IntraWorkers bounds the intra-packet parallelism: the number of
	// goroutines rx.DecodeDataParallel fans one packet's OFDM symbols
	// across (per decodable arm). 1 forces the serial decode; 0 picks
	// GOMAXPROCS / packet-workers, i.e. the cores packet-level sharding
	// leaves idle — so a fully occupied sweep stays serial per packet
	// while a single-packet (or worker-starved) run uses the spare cores
	// to cut latency. Decisions are bit-identical at any setting.
	IntraWorkers int
	// CoreTweak, when set, adjusts the CPRecycle configuration of the
	// CPRecycle* arms (used by the ablation benches to sweep sphere
	// radius, bandwidth selector, pooling mode, …).
	CoreTweak func(*core.Config)
}

// PSRPoint is the packet success rate of one receiver arm.
type PSRPoint struct {
	Kind ReceiverKind
	OK   int
	N    int
}

// Rate returns the success fraction.
func (p PSRPoint) Rate() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.OK) / float64(p.N)
}

// segmentPlanFor builds the receiver's segment plan for a grid: num
// segments at native-sample stride (divided by strideDiv for the §6
// oversampling mode), clear of the channel's delay spread.
func segmentPlanFor(g ofdm.Grid, num int, ch *channel.Multipath, strideDiv int) ([]int, error) {
	q := g.NFFT / 64
	if q < 1 {
		q = 1
	}
	stride := q
	if strideDiv > 1 {
		stride = q / strideDiv
		if stride < 1 {
			stride = 1
		}
	}
	minOff := q // at least one native sample of ISI margin
	if ch != nil {
		minOff = (ch.DelaySpread() + 1) * q
	}
	if minOff > g.CP {
		minOff = g.CP
	}
	return ofdm.SegmentPlan(g.CP, stride, num, minOff)
}

// PSRPlan is a validated measurement point with every packet-invariant
// resource resolved once: normalised configuration and the receiver
// segment plan (previously recomputed per packet). It is the unit the
// sweep engine shards — RunPacket/RunRange execute any subrange of the
// point's packets, and because every packet derives its own seed from the
// packet index, any partition of [0, Packets) tallies to bit-identical
// counts.
//
// A PSRPlan is immutable and safe for concurrent RunPacket/RunRange calls
// from multiple goroutines.
type PSRPlan struct {
	cfg   LinkConfig
	segs  []int
	intra int // resolved intra-packet decode workers (≥ 1)
}

// PlanPSR validates cfg, fills defaults and computes the segment plan.
func PlanPSR(cfg LinkConfig) (*PSRPlan, error) {
	if cfg.Packets <= 0 {
		return nil, fmt.Errorf("experiments: no packets configured")
	}
	if cfg.PSDUBytes < 5 {
		return nil, fmt.Errorf("experiments: PSDU too small")
	}
	if len(cfg.Receivers) == 0 {
		return nil, fmt.Errorf("experiments: no receivers configured")
	}
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("experiments: no scenario configured")
	}
	if cfg.NumSegments == 0 {
		cfg.NumSegments = 16
	}
	segs, err := segmentPlanFor(cfg.Scenario.VictimGrid(), cfg.NumSegments, cfg.Scenario.Channel, cfg.StrideDivisor)
	if err != nil {
		return nil, err
	}
	intra := cfg.IntraWorkers
	if intra <= 0 {
		// Auto: hand each packet the cores that packet-level sharding
		// leaves idle (when packets outnumber cores there are none and
		// the per-packet decode stays serial).
		pw := cfg.Workers
		if pw <= 0 {
			pw = runtime.GOMAXPROCS(0)
		}
		if pw > cfg.Packets {
			pw = cfg.Packets
		}
		intra = runtime.GOMAXPROCS(0) / pw
		if intra < 1 {
			intra = 1
		}
	}
	return &PSRPlan{cfg: cfg, segs: segs, intra: intra}, nil
}

// Config returns the plan's normalised configuration.
func (p *PSRPlan) Config() LinkConfig { return p.cfg }

// Packets returns the number of packets the point measures.
func (p *PSRPlan) Packets() int { return p.cfg.Packets }

// Receivers returns the receiver arms, in result order.
func (p *PSRPlan) Receivers() []ReceiverKind { return p.cfg.Receivers }

// RunRange executes packets [lo, hi), accumulating each arm's success
// count into okCounts (indexed like Receivers) and returning the number
// of packets executed. ctx is checked between packets, so a cancelled
// sweep stops within one packet's work.
func (p *PSRPlan) RunRange(ctx context.Context, lo, hi int, okCounts []int) (int, error) {
	if lo < 0 || hi > p.cfg.Packets || lo > hi {
		return 0, fmt.Errorf("experiments: packet range [%d,%d) outside [0,%d)", lo, hi, p.cfg.Packets)
	}
	if len(okCounts) != len(p.cfg.Receivers) {
		return 0, fmt.Errorf("experiments: %d counters for %d receivers", len(okCounts), len(p.cfg.Receivers))
	}
	ok := make([]bool, len(p.cfg.Receivers))
	n := 0
	for pkt := lo; pkt < hi; pkt++ {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return n, ctx.Err()
			default:
			}
		}
		if err := p.RunPacket(pkt, ok); err != nil {
			return n, err
		}
		n++
		for i, o := range ok {
			if o {
				okCounts[i]++
			}
		}
	}
	return n, nil
}

// RunPSR measures the packet success rate of each configured receiver arm
// over cfg.Packets independent packets. Packets are distributed across
// workers; each packet uses a deterministic per-index seed so results are
// independent of scheduling.
func RunPSR(cfg LinkConfig) ([]PSRPoint, error) {
	plan, err := PlanPSR(cfg)
	if err != nil {
		return nil, err
	}
	cfg = plan.cfg
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Packets {
		workers = cfg.Packets
	}

	// tally holds one worker's counts: ok is indexed like cfg.Receivers.
	// Plain slices instead of a per-packet map keep the accounting off the
	// hot path's allocation profile.
	type tally struct {
		ok []int
		n  int
	}
	results := make([]tally, workers)
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := tally{ok: make([]int, len(cfg.Receivers))}
			okBuf := make([]bool, len(cfg.Receivers))
			for pkt := w; pkt < cfg.Packets; pkt += workers {
				if err := plan.RunPacket(pkt, okBuf); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				t.n++
				for i, ok := range okBuf {
					if ok {
						t.ok[i]++
					}
				}
			}
			results[w] = t
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]PSRPoint, 0, len(cfg.Receivers))
	for i, k := range cfg.Receivers {
		p := PSRPoint{Kind: k}
		for _, t := range results {
			if t.ok != nil {
				p.OK += t.ok[i]
			}
			p.N += t.n
		}
		out = append(out, p)
	}
	return out, nil
}

// RunPacket transmits packet pkt through the scenario and decodes it with
// every configured arm, writing each arm's packet success into ok (indexed
// like Receivers). Each packet derives its own RNG from (Seed, pkt), so
// any executor — the striding workers of RunPSR or a sweep-engine shard —
// produces identical results for the same index.
func (p *PSRPlan) RunPacket(pkt int, ok []bool) error {
	pktStart := time.Now()
	cfg := p.cfg
	r := dsp.NewRand(cfg.Seed*1_000_003 + int64(pkt))
	psdu := wifi.BuildPSDU(r.Bytes(cfg.PSDUBytes - 4))
	c, err := cfg.Scenario.Run(r, psdu, cfg.MCS)
	stageTx.ObserveSince(pktStart)
	if err != nil {
		return err
	}
	f, err := rx.NewFrame(c.Grid, c.Samples, c.FrameStart)
	if err != nil {
		return err
	}
	segs := p.segs

	// The CPRecycle arms share one preamble training pass (and, through
	// it, any KDE fits with equal options); the deviations depend only on
	// (frame, segments), so sharing is bit-identical to per-arm training.
	var training *core.Training
	for ai, k := range cfg.Receivers {
		var decider rx.SymbolDecider
		soft := false
		switch k {
		case Standard:
			decider = rx.StandardDecider{}
		case StandardSoft:
			decider = rx.StandardDecider{}
			soft = true
		case Naive:
			decider = core.NaiveDecider{Segments: segs}
		case Oracle:
			decider = &core.OracleDecider{InterferenceOnly: c.InterferenceOnly, Segments: segs}
		case CPRecycle, CPRecycleNoTrack, CPRecycleKDE, CPRecycleSoft:
			// The arm gets its own copy of the plan's segment slice:
			// CoreTweak is a public hook and must not be able to mutate
			// the shared (concurrently read) plan through the alias.
			conf := core.Config{Segments: slices.Clone(segs)}
			if k == CPRecycleNoTrack {
				conf.NoPilotTracking = true
			}
			if k == CPRecycleKDE {
				conf.Decision = core.DecisionSphereKDE
			}
			if cfg.CoreTweak != nil {
				cfg.CoreTweak(&conf)
			}
			var cpr *core.Receiver
			var err error
			if slices.Equal(conf.Segments, segs) {
				if training == nil {
					trainStart := time.Now()
					training, err = core.Train(f, segs)
					stageTrain.ObserveSince(trainStart)
					if err != nil {
						return err
					}
				}
				cpr, err = core.NewReceiverFrom(f, training, conf)
			} else {
				// A CoreTweak changed the segment plan for this arm;
				// train it independently.
				cpr, err = core.NewReceiver(f, conf)
			}
			if err != nil {
				return err
			}
			decider = cpr
			soft = k == CPRecycleSoft
		default:
			return fmt.Errorf("experiments: unknown receiver kind %d", int(k))
		}
		var res rx.Result
		var err error
		switch {
		case soft && p.intra > 1:
			// The soft path fans over the same ParallelDecider pool with
			// the same symbol-ordered merge contract; deciders whose
			// state forbids forking fall back to serial inside, so
			// results are bit-identical either way.
			res, err = rx.DecodeDataSoftParallel(f, cfg.MCS, len(psdu), decider, p.intra)
		case soft:
			res, err = rx.DecodeDataSoft(f, cfg.MCS, len(psdu), decider)
		case p.intra > 1:
			// Fan this packet's symbols across the idle cores; deciders
			// whose state forbids forking fall back to serial inside,
			// so results are bit-identical either way.
			res, err = rx.DecodeDataParallel(f, cfg.MCS, len(psdu), decider, p.intra)
		default:
			res, err = rx.DecodeData(f, cfg.MCS, len(psdu), decider)
		}
		if err != nil {
			return err
		}
		ok[ai] = res.FCSOK && string(res.PSDU) == string(psdu)
	}
	packetsTotal.Inc()
	packetSeconds.ObserveSince(pktStart)
	return nil
}

// ACIScenario builds the canonical single adjacent-channel-interferer
// layout: 4× composite band, victim centred at bin 64, interferer offset
// by the given subcarrier count at the given SIR.
func ACIScenario(sirDB float64, offsetSC int, snrDB float64) *interference.Scenario {
	return &interference.Scenario{
		Q:            4,
		VictimCenter: 64,
		SNRdB:        snrDB,
		Channel:      channel.Indoor2Tap(),
		Interferers: []interference.Interferer{
			{CenterOffset: offsetSC, SIRdB: sirDB, Channel: channel.Indoor2Tap()},
		},
	}
}

// ACIScenarioDouble places interferers on both sides (Fig. 9: the victim on
// channel 10 with interferers on channels 7 and 13, ±48 subcarriers). Each
// interferer carries the full SIR power, as in the paper's experiment.
func ACIScenarioDouble(sirDB float64, offsetSC int, snrDB float64) *interference.Scenario {
	return &interference.Scenario{
		Q:            4,
		VictimCenter: 128,
		SNRdB:        snrDB,
		Channel:      channel.Indoor2Tap(),
		Interferers: []interference.Interferer{
			{CenterOffset: offsetSC, SIRdB: sirDB, Channel: channel.Indoor2Tap()},
			{CenterOffset: -offsetSC, SIRdB: sirDB, Channel: channel.Indoor2Tap()},
		},
	}
}

// CCIScenario builds the co-channel layout (native band, zero offset).
func CCIScenario(sirDB, snrDB float64) *interference.Scenario {
	return &interference.Scenario{
		Q:       1,
		SNRdB:   snrDB,
		Channel: channel.Indoor2Tap(),
		Interferers: []interference.Interferer{
			{CenterOffset: 0, SIRdB: sirDB, Channel: channel.Indoor2Tap()},
		},
	}
}

// CCIScenarioDouble is Fig. 12's layout: two equal co-channel interferers,
// each at sirDB+3 so their sum keeps the configured total SIR ("the total
// power of the interference remains the same").
func CCIScenarioDouble(sirDB, snrDB float64) *interference.Scenario {
	return &interference.Scenario{
		Q:       1,
		SNRdB:   snrDB,
		Channel: channel.Indoor2Tap(),
		Interferers: []interference.Interferer{
			{CenterOffset: 0, SIRdB: sirDB + 3, Channel: channel.Indoor2Tap()},
			{CenterOffset: 0, SIRdB: sirDB + 3, Channel: channel.Indoor2Tap()},
		},
	}
}
