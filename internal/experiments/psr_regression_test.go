package experiments

import (
	"context"
	"testing"

	"repro/internal/wifi"
)

// TestRunPSRSameSeedRegression pins the exact per-arm packet-success
// counts of two fixed-seed measurement points, covering every receiver
// arm, both scenario families (adjacent-channel on the 4× composite grid
// and co-channel on the native grid) and both decode paths (hard and
// soft).
//
// The sliding-DFT receiver rewrite was verified against the original
// one-FFT-per-window implementation with exactly these configurations:
// every count below matched the pre-rewrite code bit for bit (the seed
// window of each symbol is computed identically, and the slid windows
// agree to ~1e-15 — not enough to flip any decision). Any future change
// that alters these counts is changing receiver decisions, not just
// performance, and must be investigated.
func TestRunPSRSameSeedRegression(t *testing.T) {
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	aci := LinkConfig{
		Scenario:  ACIScenario(-15, 57, OperatingSNR(m.Name)),
		MCS:       m,
		PSDUBytes: 150,
		Packets:   30,
		Seed:      7,
		// Pin the SERIAL decode path regardless of host core count (the
		// auto rule would engage parallel decode on many-core machines;
		// TestRunPSRParallelDecodeRegression covers that path).
		IntraWorkers: 1,
		Receivers:    []ReceiverKind{Standard, Naive, Oracle, CPRecycle, CPRecycleKDE, CPRecycleSoft},
	}
	checkPSR(t, "ACI", aci, map[ReceiverKind]int{
		Standard:      10,
		Naive:         17,
		Oracle:        27,
		CPRecycle:     18,
		CPRecycleKDE:  16,
		CPRecycleSoft: 22,
	})

	m2, err := wifi.MCSByName("QPSK 3/4")
	if err != nil {
		t.Fatal(err)
	}
	cci := LinkConfig{
		Scenario:     CCIScenario(8, OperatingSNR(m2.Name)),
		MCS:          m2,
		PSDUBytes:    100,
		Packets:      20,
		Seed:         11,
		IntraWorkers: 1,
		Receivers:    []ReceiverKind{Standard, CPRecycle, CPRecycleNoTrack},
	}
	checkPSR(t, "CCI", cci, map[ReceiverKind]int{
		Standard:         5,
		CPRecycle:        5,
		CPRecycleNoTrack: 5,
	})
}

// TestRunRangeShardedMatchesRegression proves the property the sweep
// engine relies on: executing a point's packets as arbitrary disjoint
// ranges (PSRPlan.RunRange — the engine's shard primitive) tallies to
// exactly the same pinned counts as the direct RunPSR path, because every
// packet derives its RNG purely from (seed, packet index). The pinned
// values are the same as TestRunPSRSameSeedRegression's ACI point.
func TestRunRangeShardedMatchesRegression(t *testing.T) {
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinkConfig{
		Scenario:  ACIScenario(-15, 57, OperatingSNR(m.Name)),
		MCS:       m,
		PSDUBytes: 150,
		Packets:   30,
		Seed:      7,
		Receivers: []ReceiverKind{Standard, Naive, Oracle, CPRecycle, CPRecycleKDE, CPRecycleSoft},
	}
	plan, err := PlanPSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Uneven shards, out of order — the merge must not care.
	shards := [][2]int{{13, 30}, {0, 7}, {7, 13}}
	counts := make([]int, len(cfg.Receivers))
	total := 0
	for _, s := range shards {
		n, err := plan.RunRange(context.Background(), s[0], s[1], counts)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != cfg.Packets {
		t.Fatalf("sharded run executed %d packets, want %d", total, cfg.Packets)
	}
	want := map[ReceiverKind]int{
		Standard:      10,
		Naive:         17,
		Oracle:        27,
		CPRecycle:     18,
		CPRecycleKDE:  16,
		CPRecycleSoft: 22,
	}
	for i, k := range cfg.Receivers {
		if counts[i] != want[k] {
			t.Errorf("%s: sharded OK = %d, want %d — sharding changed receiver decisions", k, counts[i], want[k])
		}
	}
}

// TestRunPSRParallelDecodeRegression re-runs the ACI regression point with
// intra-packet parallel decode forced on (2 symbol workers per packet):
// rx.DecodeDataParallel merges per-symbol decisions in symbol order and
// fork-refusing deciders (the live-updating CPRecycle arms) fall back to
// serial, so every pinned count must match the serial path byte for byte.
func TestRunPSRParallelDecodeRegression(t *testing.T) {
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := LinkConfig{
		Scenario:     ACIScenario(-15, 57, OperatingSNR(m.Name)),
		MCS:          m,
		PSDUBytes:    150,
		Packets:      30,
		Seed:         7,
		IntraWorkers: 2,
		Receivers:    []ReceiverKind{Standard, Naive, Oracle, CPRecycle, CPRecycleKDE, CPRecycleSoft},
	}
	checkPSR(t, "ACI-parallel", cfg, map[ReceiverKind]int{
		Standard:      10,
		Naive:         17,
		Oracle:        27,
		CPRecycle:     18,
		CPRecycleKDE:  16,
		CPRecycleSoft: 22,
	})
}

func checkPSR(t *testing.T, name string, cfg LinkConfig, want map[ReceiverKind]int) {
	t.Helper()
	pts, err := RunPSR(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, p := range pts {
		if p.N != cfg.Packets {
			t.Errorf("%s %s: N = %d, want %d", name, p.Kind, p.N, cfg.Packets)
		}
		if w, ok := want[p.Kind]; !ok || p.OK != w {
			t.Errorf("%s %s: OK = %d, want %d — receiver decisions changed", name, p.Kind, p.OK, w)
		}
	}
}
