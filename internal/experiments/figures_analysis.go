package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/interference"
	"repro/internal/kde"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/ofdm"
	"repro/internal/rx"
	"repro/internal/wifi"
)

// analysisScenario realises one ACI composite for the signal-analysis
// figures and returns the frame, the composite and the victim MCS.
func analysisScenario(seed int64, sirDB float64, psduBytes int) (*rx.Frame, *interference.Composite, wifi.MCS, error) {
	s := ACIScenario(sirDB, 57, 1000) // noise off: isolate interference
	r := dsp.NewRand(seed)
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		return nil, nil, m, err
	}
	psdu := wifi.BuildPSDU(r.Bytes(psduBytes - 4))
	c, err := s.Run(r, psdu, m)
	if err != nil {
		return nil, nil, m, err
	}
	f, err := rx.NewFrame(c.Grid, c.Samples, c.FrameStart)
	if err != nil {
		return nil, nil, m, err
	}
	return f, c, m, nil
}

// Table1 renders the paper's Table 1 (cyclic prefix across 802.11
// standards) plus the LTE figures quoted in §2.2.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: Cyclic Prefix in 802.11 standards",
		Header: []string{"Standard", "Bandwidth", "FFT", "CP", "CP(short)", "Duration(us)"},
	}
	for _, s := range ofdm.Table1() {
		short := "-"
		if s.CPShort > 0 {
			short = fmt.Sprintf("%d", s.CPShort)
		}
		t.AddRow(s.Standard, fmt.Sprintf("%.0f MHz", s.BandwidthHz/1e6),
			fmt.Sprintf("%d", s.FFTSize), fmt.Sprintf("%d", s.CPSize), short,
			fmt.Sprintf("%.1f", s.DurationUs))
	}
	for _, l := range ofdm.LTETable() {
		t.AddRow("LTE ("+l.Kind+")", "-", "-", "-", "-", fmt.Sprintf("%.1f", l.DurationUs))
	}
	return t
}

// Fig4a measures the interference power spectrum seen by the standard
// window and by the per-subcarrier best segment (Oracle), averaged over
// data symbols, for a single ACI interferer at −20 dB SIR with a
// 4-subcarrier guard. Powers are in dB relative to the victim's mean
// occupied-subcarrier signal power, mirroring Fig. 4a's normalised axis.
func Fig4a(seed int64) (*Table, error) {
	f, c, _, err := analysisScenario(seed, -20, 400)
	if err != nil {
		return nil, err
	}
	segs, err := segmentPlanFor(c.Grid, 16, nil, 1)
	if err != nil {
		return nil, err
	}
	const nSym = 20
	oracle, std, err := core.OracleSpectrum(c.InterferenceOnly, c.Grid, f.DataSymbolStart(0), nSym, segs)
	if err != nil {
		return nil, err
	}

	// Victim signal power per occupied bin, from the interference-free part.
	vict := make([]complex128, len(c.Samples))
	for i := range vict {
		vict[i] = c.Samples[i] - c.InterferenceOnly[i]
	}
	d, err := ofdm.NewDemodulator(c.Grid)
	if err != nil {
		return nil, err
	}
	var sigP float64
	var nBins int
	for k := 0; k < nSym; k++ {
		bins, err := d.Standard(vict, f.DataSymbolStart(k))
		if err != nil {
			return nil, err
		}
		for sc := -26; sc <= 26; sc++ {
			if sc == 0 {
				continue
			}
			v := bins[c.Grid.Bin(sc)]
			sigP += real(v)*real(v) + imag(v)*imag(v)
			nBins++
		}
	}
	sigP /= float64(nBins)

	t := &Table{
		Title:  "Fig 4a: interference power per subcarrier, Standard vs Oracle",
		Note:   "ACI at SIR -20 dB, 4-subcarrier guard; dB relative to victim signal power",
		Header: []string{"subcarrier", "standard(dB)", "oracle(dB)"},
	}
	var inStd, inOra float64
	for sc := -26; sc <= 100; sc++ {
		bin := c.Grid.Bin(sc)
		sdb := dsp.DB(std[bin] / sigP)
		odb := dsp.DB(oracle[bin] / sigP)
		t.AddRow(fmt.Sprintf("%d", sc), fmt.Sprintf("%.1f", sdb), fmt.Sprintf("%.1f", odb))
		if sc >= -26 && sc <= 26 && sc != 0 {
			inStd += std[bin]
			inOra += oracle[bin]
		}
	}
	t.Note += fmt.Sprintf("; in-band oracle reduction %.1f dB", dsp.DB(inStd/inOra))
	return t, nil
}

// Fig4b measures the interference power at the victim's band-edge data
// subcarrier (+26) across the 16 FFT segments of a single OFDM symbol for
// SIR −10/−20/−30 dB (the paper plots one symbol: the per-symbol nulls are
// exactly what the Oracle exploits and averaging would smooth them away).
// Powers are in dB relative to the strongest curve's maximum, so both the
// SIR spacing and the per-segment variation are visible.
func Fig4b(seed int64) (*Table, error) {
	sirs := []float64{-10, -20, -30}
	series := make([][]float64, len(sirs))
	var segsLen int
	for si, sir := range sirs {
		f, c, _, err := analysisScenario(seed+int64(si)*17, sir, 200)
		if err != nil {
			return nil, err
		}
		segs, err := segmentPlanFor(c.Grid, 16, nil, 1)
		if err != nil {
			return nil, err
		}
		segsLen = len(segs)
		pw, err := core.SegmentInterferencePower(c.InterferenceOnly, c.Grid, f.DataSymbolStart(0), segs)
		if err != nil {
			return nil, err
		}
		acc := make([]float64, len(segs))
		bin := c.Grid.Bin(26)
		for j := range segs {
			acc[j] = pw[j][bin]
		}
		series[si] = acc
	}
	t := &Table{
		Title:  "Fig 4b: interference power vs FFT segment (subcarrier +26, one OFDM symbol)",
		Note:   "dB relative to the global maximum across curves",
		Header: []string{"segment", "SIR-10dB", "SIR-20dB", "SIR-30dB"},
	}
	var globalMax float64
	for si := range series {
		for _, v := range series[si] {
			if v > globalMax {
				globalMax = v
			}
		}
	}
	for j := 0; j < segsLen; j++ {
		cells := []string{fmt.Sprintf("%d", j+1)}
		for si := range series {
			cells = append(cells, fmt.Sprintf("%.1f", dsp.DB(series[si][j]/globalMax)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig4c reproduces the constellation illustration: the two BPSK lattice
// points and the received signal of one band-edge subcarrier across five
// FFT segments under strong ACI, showing the outlier that defeats simple
// averaging.
func Fig4c(seed int64) (*Table, error) {
	f, c, _, err := analysisScenario(seed, -20, 100)
	if err != nil {
		return nil, err
	}
	_ = c
	segs, err := segmentPlanFor(c.Grid, 5, nil, 1)
	if err != nil {
		return nil, err
	}
	obs, err := f.ObserveSegments(0, segs)
	if err != nil {
		return nil, err
	}
	bpsk := modem.New(modem.BPSK)
	t := &Table{
		Title:  "Fig 4c: received signal in 5 FFT segments vs BPSK lattice",
		Header: []string{"point", "re", "im"},
	}
	for i, p := range bpsk.Points() {
		t.AddRow(fmt.Sprintf("lattice-%d", i), fmt.Sprintf("%.3f", real(p)), fmt.Sprintf("%.3f", imag(p)))
	}
	scs := ofdm.DataSubcarriers()
	idx := 0
	for i, sc := range scs {
		if sc == 26 {
			idx = i
		}
	}
	for j := range obs {
		v := obs[j].Data[idx]
		t.AddRow(fmt.Sprintf("segment-%d", j+1), fmt.Sprintf("%.3f", real(v)), fmt.Sprintf("%.3f", imag(v)))
	}
	return t, nil
}

// Fig6a evaluates a univariate Gaussian KDE over an illustrative sample set
// at three bandwidths, reproducing the over/under-smoothing picture.
func Fig6a() (*Table, error) {
	samples := []float64{-4.5, -4.2, -3.8, -1.1, -0.7, 0.2, 0.5, 0.9, 1.3, 4.8, 5.5, 9.4}
	t := &Table{
		Title:  "Fig 6a: kernel density estimation with varying bandwidth",
		Header: []string{"x", "bw=1", "bw=2", "bw=3"},
	}
	var us []*kde.Univariate
	for _, bw := range []float64{1, 2, 3} {
		u, err := kde.NewUnivariate(samples, bw)
		if err != nil {
			return nil, err
		}
		us = append(us, u)
	}
	for x := -10.0; x <= 15.0; x += 0.5 {
		cells := []string{fmt.Sprintf("%.1f", x)}
		for _, u := range us {
			cells = append(cells, fmt.Sprintf("%.4f", u.Density(x)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig6b compares, for SIR −10/−20/−30 dB, the CDF of the amplitude
// deviations observed on data symbols against the CDF predicted by the
// preamble-trained density — the model-accuracy check of Fig. 6b.
// Deviations are reported as interference power in dB.
func Fig6b(seed int64) (*Table, error) {
	sirs := []float64{-10, -20, -30}
	type curve struct {
		sample *kde.Univariate // empirical via KDE for a smooth CDF
		model  *kde.Univariate
	}
	curves := make([]curve, len(sirs))
	for si, sir := range sirs {
		f, c, mcsV, err := analysisScenario(seed+int64(si), sir, 400)
		if err != nil {
			return nil, err
		}
		segs, err := segmentPlanFor(c.Grid, 16, nil, 1)
		if err != nil {
			return nil, err
		}
		// Preamble model samples: deviation amplitudes at band-edge
		// subcarriers pooled over segments, observed in one sliding-DFT
		// batch over all segments.
		preAll, err := f.ObservePreambleAll(segs)
		if err != nil {
			return nil, err
		}
		var trainAmps []float64
		scs := ofdm.DataSubcarriers()
		for j := range segs {
			for i, sc := range scs {
				if sc < 15 {
					continue
				}
				for s := 0; s < 2; s++ {
					d := preAll[j][s][i] - ofdm.LTFValue(sc)
					trainAmps = append(trainAmps, powDB(d))
				}
			}
		}
		// Data-symbol deviations from the known transmitted points (via
		// the interference-free stream).
		vict := make([]complex128, len(c.Samples))
		for i := range vict {
			vict[i] = c.Samples[i] - c.InterferenceOnly[i]
		}
		fClean, err := rx.NewFrame(c.Grid, vict, c.FrameStart)
		if err != nil {
			return nil, err
		}
		cons := modem.New(mcsV.Scheme)
		var dataAmps []float64
		for k := 0; k < 10; k++ {
			truth, err := (rx.StandardDecider{}).DecideSymbol(fClean, k, cons)
			if err != nil {
				return nil, err
			}
			obs, err := f.ObserveSegments(k, segs)
			if err != nil {
				return nil, err
			}
			for i, sc := range scs {
				if sc < 15 {
					continue
				}
				for j := range obs {
					dataAmps = append(dataAmps, powDB(obs[j].Data[i]-cons.Point(truth[i])))
				}
			}
		}
		sm, err := kde.NewUnivariate(dataAmps, kde.Silverman(dataAmps))
		if err != nil {
			return nil, err
		}
		md, err := kde.NewUnivariate(trainAmps, kde.Silverman(trainAmps))
		if err != nil {
			return nil, err
		}
		curves[si] = curve{sample: sm, model: md}
	}
	t := &Table{
		Title:  "Fig 6b: CDF of interference power — data samples vs preamble density estimate",
		Header: []string{"power(dB)", "samp-10", "model-10", "samp-20", "model-20", "samp-30", "model-30"},
	}
	for p := -70.0; p <= 30.0; p += 2.5 {
		cells := []string{fmt.Sprintf("%.1f", p)}
		for _, cv := range curves {
			cells = append(cells, fmt.Sprintf("%.3f", cv.sample.CDF(p)), fmt.Sprintf("%.3f", cv.model.CDF(p)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// powDB converts a complex deviation to its power in dB (floored).
func powDB(d complex128) float64 {
	p := real(d)*real(d) + imag(d)*imag(d)
	if p < 1e-9 {
		p = 1e-9
	}
	return 10 * math.Log10(p)
}

// Fig13 reproduces the interfering-neighbour CDF of the office deployment.
// The detection threshold is calibrated so the standard receiver's density
// matches the paper's (>80 % of APs with at least 12 interfering
// neighbours); CPRecycle tolerates gainDB more interference.
func Fig13(seed int64, gainDB float64) (*Table, error) {
	b := netsim.PaperBuilding()
	// Calibrate the threshold to the paper's standard-receiver density.
	threshold := -70.0
	for th := -95.0; th <= -50; th += 0.5 {
		res, err := netsim.Fig13(b, seed, th, gainDB)
		if err != nil {
			return nil, err
		}
		atLeast12 := 0
		for _, n := range res.StandardCounts {
			if n >= 12 {
				atLeast12++
			}
		}
		if float64(atLeast12) <= 0.85*float64(len(res.StandardCounts)) {
			threshold = th
			break
		}
	}
	res, err := netsim.Fig13(b, seed, threshold, gainDB)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Fig 13: CDF of interfering neighbours (40-AP office)",
		Note: fmt.Sprintf("threshold %.1f dBm, CPRecycle gain %.0f dB; medians std=%d cpr=%d",
			threshold, gainDB, netsim.MedianNeighbors(res.StandardCounts), netsim.MedianNeighbors(res.CPRecycleCounts)),
		Header: []string{"neighbours", "CDF-standard", "CDF-cprecycle"},
	}
	cdfAt := func(counts []int, x int) float64 {
		n := 0
		for _, c := range counts {
			if c <= x {
				n++
			}
		}
		return float64(n) / float64(len(counts))
	}
	for x := 0; x <= 25; x++ {
		t.AddRow(fmt.Sprintf("%d", x),
			fmt.Sprintf("%.3f", cdfAt(res.StandardCounts, x)),
			fmt.Sprintf("%.3f", cdfAt(res.CPRecycleCounts, x)))
	}
	return t, nil
}
