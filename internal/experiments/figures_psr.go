package experiments

// The packet-success-rate figures (Figs. 5, 8-12, 14 and the ablation /
// delay-spread studies) are declarative sweep plans — see sweep_plans.go —
// and these wrappers run them on the direct sequential path. The sweep
// engine (internal/sweep) runs the same plans sharded across a worker
// pool with shared waveform/plan caches; both paths produce bit-identical
// packet decisions for the same options.

// Options scales the packet-level experiments: Packets per measurement
// point and the base Seed. The paper transmits 2000 packets of 400 bytes
// per point; benches use smaller values (the PSR estimate converges fast).
type Options struct {
	Packets   int
	PSDUBytes int
	Seed      int64
}

// Defaults fills unset options.
func (o Options) defaults() Options {
	if o.Packets == 0 {
		o.Packets = 2000
	}
	if o.PSDUBytes == 0 {
		o.PSDUBytes = 400
	}
	return o
}

// runNamedSweep builds and sequentially runs a named sweep plan.
func runNamedSweep(name string, o Options) (*Table, error) {
	p, err := NewSweepPlan(SweepRequest{Experiment: name, Options: o})
	if err != nil {
		return nil, err
	}
	return RunSweepPlan(p)
}

// Fig5 measures packet success rate versus guard band for the Standard
// receiver, the Naive decoder and the Oracle at SIR −10/−20/−30 dB with
// QPSK 3/4 — the motivation experiment of Fig. 5a-c.
func Fig5(o Options) (*Table, error) { return runNamedSweep("fig5", o) }

// Fig8 is the single adjacent-channel interferer experiment: the paper's
// channel-11 victim with a channel-8 interferer (15 MHz / 48-subcarrier
// offset, overlapping 20 MHz channels).
func Fig8(o Options) (*Table, error) { return runNamedSweep("fig8", o) }

// Fig9 is the two-interferer ACI experiment: victim on channel 10 with
// interferers on channels 7 and 13 (±48 subcarriers).
func Fig9(o Options) (*Table, error) { return runNamedSweep("fig9", o) }

// Fig10 measures PSR versus guard band for 16-QAM 1/2 at SIR −10/−20/−30
// with and without CPRecycle — the legacy-transmitter coexistence
// experiment.
func Fig10(o Options) (*Table, error) { return runNamedSweep("fig10", o) }

// Fig11 is the single co-channel interferer experiment.
func Fig11(o Options) (*Table, error) { return runNamedSweep("fig11", o) }

// Fig12 is the two co-channel interferer experiment (equal split of the
// total interference power).
func Fig12(o Options) (*Table, error) { return runNamedSweep("fig12", o) }

// Fig14 measures PSR versus the number of FFT segments used by CPRecycle
// (as % of the CP) for 16-QAM at SIR −10/−20/−30 under ACI — the
// complexity/benefit saturation study of §6.
func Fig14(o Options) (*Table, error) { return runNamedSweep("fig14", o) }

// AblationDecision compares the decision-rule realisations (and the Naive
// and Oracle references) across an ACI SIR sweep — the design-choice study
// of DESIGN.md §5.
func AblationDecision(o Options) (*Table, error) { return runNamedSweep("ablation-decision", o) }

// DelaySpreadSweep reproduces the §6 discussion accompanying Fig. 14:
// CPRecycle keeps recovering packets even when a large share of the cyclic
// prefix is ISI-affected. It sweeps the channel's delay spread (shrinking
// the ISI-free region from 94 % to ~40 % of the CP) under ACI at −15 dB
// with 16-QAM and reports Standard vs CPRecycle PSR.
func DelaySpreadSweep(o Options) (*Table, error) { return runNamedSweep("delay-spread", o) }

// AblationSoftDecoding compares hard-decision decoding (paper-faithful)
// with the soft-decision extension (rx.DecodeDataSoft) for both the
// standard receiver and CPRecycle across an ACI sweep.
func AblationSoftDecoding(o Options) (*Table, error) { return runNamedSweep("ablation-soft", o) }
