package experiments

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/interference"
	"repro/internal/wifi"
)

// Options scales the packet-level experiments: Packets per measurement
// point and the base Seed. The paper transmits 2000 packets of 400 bytes
// per point; benches use smaller values (the PSR estimate converges fast).
type Options struct {
	Packets   int
	PSDUBytes int
	Seed      int64
}

// Defaults fills unset options.
func (o Options) defaults() Options {
	if o.Packets == 0 {
		o.Packets = 2000
	}
	if o.PSDUBytes == 0 {
		o.PSDUBytes = 400
	}
	return o
}

// psrCells runs one measurement point and formats the PSR (in %) of each
// receiver, in the order given.
func psrCells(cfg LinkConfig) ([]string, error) {
	pts, err := RunPSR(cfg)
	if err != nil {
		return nil, err
	}
	cells := make([]string, 0, len(pts))
	for _, p := range pts {
		cells = append(cells, fmt.Sprintf("%.1f", 100*p.Rate()))
	}
	return cells, nil
}

// Fig5 measures packet success rate versus guard band for the Standard
// receiver, the Naive decoder and the Oracle at SIR −10/−20/−30 dB with
// QPSK 3/4 — the motivation experiment of Fig. 5a-c.
func Fig5(o Options) (*Table, error) {
	o = o.defaults()
	m, err := wifi.MCSByName("QPSK 3/4")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 5: PSR vs guard band — Standard / Naive / Oracle (QPSK 3/4)",
		Header: []string{"SIR(dB)", "guard(MHz)", "standard", "naive", "oracle"},
	}
	for _, sir := range []float64{-10, -20, -30} {
		for _, guard := range []float64{0, 1.25, 2.5, 5, 10, 15, 20} {
			cfg := LinkConfig{
				Scenario:  ACIScenario(sir, interference.OffsetForGuardMHz(guard), OperatingSNR(m.Name)),
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   o.Packets,
				Seed:      o.Seed + int64(sir*100) + int64(guard*10),
				Receivers: []ReceiverKind{Standard, Naive, Oracle},
			}
			cells, err := psrCells(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(append([]string{fmt.Sprintf("%.0f", sir), fmt.Sprintf("%.2f", guard)}, cells...)...)
		}
	}
	return t, nil
}

// figPSRvsSIR is the shared harness for Figs. 8, 9, 11 and 12: PSR versus
// SIR for the paper's three MCS modes, with and without CPRecycle.
func figPSRvsSIR(title string, o Options, sirs []float64, scen func(sir, snr float64) *interference.Scenario) (*Table, error) {
	o = o.defaults()
	t := &Table{
		Title:  title,
		Header: []string{"SIR(dB)"},
	}
	mcses := wifi.PaperMCS()
	for _, m := range mcses {
		t.Header = append(t.Header, m.Name+" std", m.Name+" cpr")
	}
	for _, sir := range sirs {
		cells := []string{fmt.Sprintf("%.0f", sir)}
		for _, m := range mcses {
			cfg := LinkConfig{
				Scenario:  scen(sir, OperatingSNR(m.Name)),
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   o.Packets,
				Seed:      o.Seed + int64(sir*100) + int64(m.Mbps),
				Receivers: []ReceiverKind{Standard, CPRecycle},
			}
			c, err := psrCells(cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c...)
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig8 is the single adjacent-channel interferer experiment: the paper's
// channel-11 victim with a channel-8 interferer (15 MHz / 48-subcarrier
// offset, overlapping 20 MHz channels).
func Fig8(o Options) (*Table, error) {
	return figPSRvsSIR(
		"Fig 8: PSR vs SIR — single adjacent-channel interferer",
		o,
		[]float64{10, 5, 0, -5, -10, -15, -20, -25, -30, -40},
		func(sir, snr float64) *interference.Scenario {
			return ACIScenario(sir, interference.Channel80211Offset(3), snr)
		})
}

// Fig9 is the two-interferer ACI experiment: victim on channel 10 with
// interferers on channels 7 and 13 (±48 subcarriers).
func Fig9(o Options) (*Table, error) {
	return figPSRvsSIR(
		"Fig 9: PSR vs SIR — two adjacent-channel interferers",
		o,
		[]float64{10, 5, 0, -5, -10, -15, -20, -25, -30, -40},
		func(sir, snr float64) *interference.Scenario {
			return ACIScenarioDouble(sir, interference.Channel80211Offset(3), snr)
		})
}

// Fig10 measures PSR versus guard band for 16-QAM 1/2 at SIR −10/−20/−30
// with and without CPRecycle — the legacy-transmitter coexistence
// experiment.
func Fig10(o Options) (*Table, error) {
	o = o.defaults()
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 10: PSR vs guard band — 16-QAM 1/2, with/without CPRecycle",
		Header: []string{"guard(MHz)", "std -10dB", "cpr -10dB", "std -20dB", "cpr -20dB", "std -30dB", "cpr -30dB"},
	}
	for _, guard := range []float64{0, 1.25, 2.5, 5, 7.5, 10, 15, 20, 25, 30} {
		cells := []string{fmt.Sprintf("%.2f", guard)}
		for _, sir := range []float64{-10, -20, -30} {
			cfg := LinkConfig{
				Scenario:  ACIScenario(sir, interference.OffsetForGuardMHz(guard), OperatingSNR(m.Name)),
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   o.Packets,
				Seed:      o.Seed + int64(sir*100) + int64(guard*10),
				Receivers: []ReceiverKind{Standard, CPRecycle},
			}
			c, err := psrCells(cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c...)
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig11 is the single co-channel interferer experiment.
func Fig11(o Options) (*Table, error) {
	return figPSRvsSIR(
		"Fig 11: PSR vs SIR — single co-channel interferer",
		o,
		[]float64{40, 30, 20, 15, 10, 5, 0, -5, -10},
		func(sir, snr float64) *interference.Scenario { return CCIScenario(sir, snr) })
}

// Fig12 is the two co-channel interferer experiment (equal split of the
// total interference power).
func Fig12(o Options) (*Table, error) {
	return figPSRvsSIR(
		"Fig 12: PSR vs SIR — two co-channel interferers",
		o,
		[]float64{40, 30, 20, 15, 10, 5, 0, -5, -10},
		func(sir, snr float64) *interference.Scenario { return CCIScenarioDouble(sir, snr) })
}

// Fig14 measures PSR versus the number of FFT segments used by CPRecycle
// (as % of the CP) for 16-QAM at SIR −10/−20/−30 under ACI — the
// complexity/benefit saturation study of §6.
func Fig14(o Options) (*Table, error) {
	o = o.defaults()
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 14: PSR vs number of FFT segments (ACI, 16-QAM 1/2)",
		Header: []string{"segments", "%ofCP", "SIR-10dB", "SIR-20dB", "SIR-30dB"},
	}
	for _, nseg := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16} {
		cells := []string{fmt.Sprintf("%d", nseg), fmt.Sprintf("%.0f", float64(nseg)/16*100)}
		for _, sir := range []float64{-10, -20, -30} {
			cfg := LinkConfig{
				Scenario:    ACIScenario(sir, 57, OperatingSNR(m.Name)),
				MCS:         m,
				PSDUBytes:   o.PSDUBytes,
				Packets:     o.Packets,
				Seed:        o.Seed + int64(sir*100) + int64(nseg),
				NumSegments: nseg,
				Receivers:   []ReceiverKind{CPRecycle},
			}
			c, err := psrCells(cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c...)
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// AblationDecision compares the decision-rule realisations (and the Naive
// and Oracle references) across an ACI SIR sweep — the design-choice study
// of DESIGN.md §5.
func AblationDecision(o Options) (*Table, error) {
	o = o.defaults()
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: decision rules (ACI, QPSK 1/2)",
		Header: []string{"SIR(dB)", "standard", "naive", "kde-sphere", "no-track", "cprecycle", "oracle"},
	}
	for _, sir := range []float64{-10, -15, -20, -25} {
		cfg := LinkConfig{
			Scenario:  ACIScenario(sir, 57, OperatingSNR(m.Name)),
			MCS:       m,
			PSDUBytes: o.PSDUBytes,
			Packets:   o.Packets,
			Seed:      o.Seed + int64(sir*100),
			Receivers: []ReceiverKind{Standard, Naive, CPRecycleKDE, CPRecycleNoTrack, CPRecycle, Oracle},
		}
		cells, err := psrCells(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(append([]string{fmt.Sprintf("%.0f", sir)}, cells...)...)
	}
	return t, nil
}

// DelaySpreadSweep reproduces the §6 discussion accompanying Fig. 14:
// CPRecycle keeps recovering packets even when a large share of the cyclic
// prefix is ISI-affected. It sweeps the channel's delay spread (shrinking
// the ISI-free region from 94 % to ~40 % of the CP) under ACI at −15 dB
// with 16-QAM and reports Standard vs CPRecycle PSR.
func DelaySpreadSweep(o Options) (*Table, error) {
	o = o.defaults()
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§6: PSR vs channel delay spread (ACI -15 dB, 16-QAM 1/2)",
		Header: []string{"delay(samples)", "ISI-free(%ofCP)", "standard", "cprecycle"},
	}
	for _, spread := range []int{1, 3, 5, 7, 10} {
		// Average over several channel realisations per point: a single
		// frequency-selective draw dominates the PSR otherwise.
		const realisations = 4
		var stdOK, cprOK, n int
		for rz := 0; rz < realisations; rz++ {
			scen := ACIScenario(-15, 57, OperatingSNR(m.Name))
			ch := channel.Exponential(dsp.NewRand(o.Seed+int64(spread*100+rz)), spread+1, 2)
			scen.Channel = ch
			scen.Interferers[0].Channel = ch
			cfg := LinkConfig{
				Scenario:  scen,
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   (o.Packets + realisations - 1) / realisations,
				Seed:      o.Seed + int64(spread*1000+rz),
				Receivers: []ReceiverKind{Standard, CPRecycle},
			}
			pts, err := RunPSR(cfg)
			if err != nil {
				return nil, err
			}
			stdOK += pts[0].OK
			cprOK += pts[1].OK
			n += pts[0].N
		}
		isiFree := 100 * float64(16-(spread+1)) / 16
		t.AddRow(fmt.Sprintf("%d", spread), fmt.Sprintf("%.0f", isiFree),
			fmt.Sprintf("%.1f", 100*float64(stdOK)/float64(n)),
			fmt.Sprintf("%.1f", 100*float64(cprOK)/float64(n)))
	}
	return t, nil
}

// AblationSoftDecoding compares hard-decision decoding (paper-faithful)
// with the soft-decision extension (rx.DecodeDataSoft) for both the
// standard receiver and CPRecycle across an ACI sweep.
func AblationSoftDecoding(o Options) (*Table, error) {
	o = o.defaults()
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: hard vs soft Viterbi decoding (ACI, 16-QAM 1/2)",
		Header: []string{"SIR(dB)", "std-hard", "std-soft", "cpr-hard", "cpr-soft"},
	}
	for _, sir := range []float64{-5, -10, -15} {
		cfg := LinkConfig{
			Scenario:  ACIScenario(sir, 57, OperatingSNR(m.Name)),
			MCS:       m,
			PSDUBytes: o.PSDUBytes,
			Packets:   o.Packets,
			Seed:      o.Seed + int64(sir*100),
			Receivers: []ReceiverKind{Standard, StandardSoft, CPRecycle, CPRecycleSoft},
		}
		cells, err := psrCells(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(append([]string{fmt.Sprintf("%.0f", sir)}, cells...)...)
	}
	return t, nil
}
