package experiments

import (
	"fmt"
	"sort"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/interference"
	"repro/internal/wifi"
)

// SweepPoint is one independent measurement point of a sweep plan.
type SweepPoint struct {
	// Cfg is the point's RunPSR configuration.
	Cfg LinkConfig
}

// SweepPlan is a PSR figure experiment decomposed into independent
// measurement points plus an assembler that formats the figure's table
// from their results. The points are what the sweep engine schedules; the
// direct path (RunSweepPlan) executes them sequentially in order, exactly
// like the pre-decomposition figure functions did.
type SweepPlan struct {
	// Name is the experiment id ("fig8", …).
	Name string
	// Title is the table title.
	Title string
	// Points lists the measurement points in canonical order.
	Points []SweepPoint
	// Assemble formats the table from per-point results aligned with
	// Points (results[i][a] is point i, receiver arm a).
	Assemble func(results [][]PSRPoint) (*Table, error)
}

// TotalPackets sums the packets across all points.
func (p *SweepPlan) TotalPackets() int {
	n := 0
	for _, pt := range p.Points {
		n += pt.Cfg.Packets
	}
	return n
}

// SweepRequest parameterises a named PSR sweep experiment.
type SweepRequest struct {
	// Experiment is the sweep id — see SweepExperiments.
	Experiment string
	// Options scales every point (packets, PSDU bytes, base seed).
	Options Options
	// Axis, when non-nil, overrides the experiment's primary axis values:
	// SIR dB for the PSR-vs-SIR figures and ablations, guard MHz for
	// fig5/fig10, segment count for fig14, delay-spread samples for
	// delay-spread.
	Axis []float64
	// Receivers, when non-nil, overrides the receiver arms of every
	// point; table columns follow the arm names.
	Receivers []ReceiverKind
	// MCS, when non-nil, restricts the multi-MCS figures (fig8/9/11/12)
	// to the named modes.
	MCS []string
	// Pool, when set, draws interferer tile waveforms from this shared
	// pre-encoded pool (see wifi.WaveformPool): much faster, same
	// statistics, deterministic per seed — but a different RNG draw
	// sequence than the pool-less path.
	Pool *wifi.WaveformPool
}

// RunSweepPlan executes the plan's points sequentially in order — the
// direct, engine-less path — and assembles the table.
func RunSweepPlan(p *SweepPlan) (*Table, error) {
	results := make([][]PSRPoint, len(p.Points))
	for i := range p.Points {
		pts, err := RunPSR(p.Points[i].Cfg)
		if err != nil {
			return nil, err
		}
		results[i] = pts
	}
	return p.Assemble(results)
}

// sweepBuilders maps experiment ids to plan constructors.
var sweepBuilders = map[string]func(SweepRequest) (*SweepPlan, error){
	"fig5":              fig5Plan,
	"fig8":              fig8Plan,
	"fig9":              fig9Plan,
	"fig10":             fig10Plan,
	"fig11":             fig11Plan,
	"fig12":             fig12Plan,
	"fig14":             fig14Plan,
	"ablation-decision": ablationDecisionPlan,
	"ablation-soft":     ablationSoftPlan,
	"delay-spread":      delaySpreadPlan,
}

// SweepExperiments lists the experiment ids NewSweepPlan accepts, sorted.
func SweepExperiments() []string {
	names := make([]string, 0, len(sweepBuilders))
	for n := range sweepBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsSweepExperiment reports whether name is a PSR sweep (decomposable for
// the engine) as opposed to an analysis experiment.
func IsSweepExperiment(name string) bool {
	_, ok := sweepBuilders[name]
	return ok
}

// NewSweepPlan builds the sweep plan for a named PSR experiment.
func NewSweepPlan(req SweepRequest) (*SweepPlan, error) {
	b, ok := sweepBuilders[req.Experiment]
	if !ok {
		return nil, fmt.Errorf("experiments: %q is not a sweep experiment (have %v)", req.Experiment, SweepExperiments())
	}
	req.Options = req.Options.defaults()
	p, err := b(req)
	if err != nil {
		return nil, err
	}
	p.Name = req.Experiment
	if req.Pool != nil {
		for i := range p.Points {
			p.Points[i].Cfg.Scenario.Pool = req.Pool
		}
	}
	return p, nil
}

// axisOr returns the request's axis override or the default.
func axisOr(req SweepRequest, def []float64) []float64 {
	if req.Axis != nil {
		return req.Axis
	}
	return def
}

// intAxis converts an axis override to integers, rejecting fractional or
// out-of-range values instead of silently truncating them.
func intAxis(vals []float64, min int, what string) ([]int, error) {
	out := make([]int, len(vals))
	for i, v := range vals {
		n := int(v)
		if float64(n) != v || n < min {
			return nil, fmt.Errorf("experiments: %s %v must be an integer ≥ %d", what, v, min)
		}
		out[i] = n
	}
	return out, nil
}

// receiversOr returns the request's receiver override or the default.
func receiversOr(req SweepRequest, def []ReceiverKind) []ReceiverKind {
	if req.Receivers != nil {
		return req.Receivers
	}
	return def
}

// paperMCSFor returns the paper's MCS list filtered by the request.
func paperMCSFor(req SweepRequest) ([]wifi.MCS, error) {
	all := wifi.PaperMCS()
	if req.MCS == nil {
		return all, nil
	}
	var out []wifi.MCS
	for _, name := range req.MCS {
		found := false
		for _, m := range all {
			if m.Name == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: MCS %q is not one of the paper's modes", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty MCS selection")
	}
	return out, nil
}

// armLabel is the column label of a receiver arm in the PSR-vs-SIR tables.
func armLabel(k ReceiverKind) string {
	switch k {
	case Standard:
		return "std"
	case CPRecycle:
		return "cpr"
	default:
		return k.String()
	}
}

// cellsOf formats one point's per-arm PSR percentages.
func cellsOf(pts []PSRPoint) []string {
	cells := make([]string, 0, len(pts))
	for _, p := range pts {
		cells = append(cells, fmt.Sprintf("%.1f", 100*p.Rate()))
	}
	return cells
}

// figPSRvsSIRPlan is the shared constructor for Figs. 8, 9, 11 and 12:
// PSR versus SIR for the paper's MCS modes, one point per (SIR, MCS).
func figPSRvsSIRPlan(title string, req SweepRequest, defSIRs []float64, scen func(sir, snr float64) *interference.Scenario) (*SweepPlan, error) {
	o := req.Options
	sirs := axisOr(req, defSIRs)
	arms := receiversOr(req, []ReceiverKind{Standard, CPRecycle})
	mcses, err := paperMCSFor(req)
	if err != nil {
		return nil, err
	}
	p := &SweepPlan{Title: title}
	for _, sir := range sirs {
		for _, m := range mcses {
			p.Points = append(p.Points, SweepPoint{Cfg: LinkConfig{
				Scenario:  scen(sir, OperatingSNR(m.Name)),
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   o.Packets,
				Seed:      o.Seed + int64(sir*100) + int64(m.Mbps),
				Receivers: arms,
			}})
		}
	}
	p.Assemble = func(results [][]PSRPoint) (*Table, error) {
		t := &Table{Title: title, Header: []string{"SIR(dB)"}}
		for _, m := range mcses {
			for _, k := range arms {
				t.Header = append(t.Header, m.Name+" "+armLabel(k))
			}
		}
		i := 0
		for _, sir := range sirs {
			cells := []string{fmt.Sprintf("%.0f", sir)}
			for range mcses {
				cells = append(cells, cellsOf(results[i])...)
				i++
			}
			t.AddRow(cells...)
		}
		return t, nil
	}
	return p, nil
}

func fig8Plan(req SweepRequest) (*SweepPlan, error) {
	return figPSRvsSIRPlan(
		"Fig 8: PSR vs SIR — single adjacent-channel interferer",
		req,
		[]float64{10, 5, 0, -5, -10, -15, -20, -25, -30, -40},
		func(sir, snr float64) *interference.Scenario {
			return ACIScenario(sir, interference.Channel80211Offset(3), snr)
		})
}

func fig9Plan(req SweepRequest) (*SweepPlan, error) {
	return figPSRvsSIRPlan(
		"Fig 9: PSR vs SIR — two adjacent-channel interferers",
		req,
		[]float64{10, 5, 0, -5, -10, -15, -20, -25, -30, -40},
		func(sir, snr float64) *interference.Scenario {
			return ACIScenarioDouble(sir, interference.Channel80211Offset(3), snr)
		})
}

func fig11Plan(req SweepRequest) (*SweepPlan, error) {
	return figPSRvsSIRPlan(
		"Fig 11: PSR vs SIR — single co-channel interferer",
		req,
		[]float64{40, 30, 20, 15, 10, 5, 0, -5, -10},
		func(sir, snr float64) *interference.Scenario { return CCIScenario(sir, snr) })
}

func fig12Plan(req SweepRequest) (*SweepPlan, error) {
	return figPSRvsSIRPlan(
		"Fig 12: PSR vs SIR — two co-channel interferers",
		req,
		[]float64{40, 30, 20, 15, 10, 5, 0, -5, -10},
		func(sir, snr float64) *interference.Scenario { return CCIScenarioDouble(sir, snr) })
}

func fig5Plan(req SweepRequest) (*SweepPlan, error) {
	o := req.Options
	m, err := wifi.MCSByName("QPSK 3/4")
	if err != nil {
		return nil, err
	}
	sirs := []float64{-10, -20, -30}
	guards := axisOr(req, []float64{0, 1.25, 2.5, 5, 10, 15, 20})
	arms := receiversOr(req, []ReceiverKind{Standard, Naive, Oracle})
	p := &SweepPlan{Title: "Fig 5: PSR vs guard band — Standard / Naive / Oracle (QPSK 3/4)"}
	for _, sir := range sirs {
		for _, guard := range guards {
			p.Points = append(p.Points, SweepPoint{Cfg: LinkConfig{
				Scenario:  ACIScenario(sir, interference.OffsetForGuardMHz(guard), OperatingSNR(m.Name)),
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   o.Packets,
				Seed:      o.Seed + int64(sir*100) + int64(guard*10),
				Receivers: arms,
			}})
		}
	}
	p.Assemble = func(results [][]PSRPoint) (*Table, error) {
		t := &Table{Title: p.Title, Header: []string{"SIR(dB)", "guard(MHz)"}}
		for _, k := range arms {
			t.Header = append(t.Header, k.String())
		}
		i := 0
		for _, sir := range sirs {
			for _, guard := range guards {
				t.AddRow(append([]string{fmt.Sprintf("%.0f", sir), fmt.Sprintf("%.2f", guard)}, cellsOf(results[i])...)...)
				i++
			}
		}
		return t, nil
	}
	return p, nil
}

func fig10Plan(req SweepRequest) (*SweepPlan, error) {
	o := req.Options
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		return nil, err
	}
	guards := axisOr(req, []float64{0, 1.25, 2.5, 5, 7.5, 10, 15, 20, 25, 30})
	sirs := []float64{-10, -20, -30}
	arms := receiversOr(req, []ReceiverKind{Standard, CPRecycle})
	p := &SweepPlan{Title: "Fig 10: PSR vs guard band — 16-QAM 1/2, with/without CPRecycle"}
	for _, guard := range guards {
		for _, sir := range sirs {
			p.Points = append(p.Points, SweepPoint{Cfg: LinkConfig{
				Scenario:  ACIScenario(sir, interference.OffsetForGuardMHz(guard), OperatingSNR(m.Name)),
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   o.Packets,
				Seed:      o.Seed + int64(sir*100) + int64(guard*10),
				Receivers: arms,
			}})
		}
	}
	p.Assemble = func(results [][]PSRPoint) (*Table, error) {
		t := &Table{Title: p.Title, Header: []string{"guard(MHz)"}}
		for _, sir := range sirs {
			for _, k := range arms {
				t.Header = append(t.Header, fmt.Sprintf("%s %.0fdB", armLabel(k), sir))
			}
		}
		i := 0
		for _, guard := range guards {
			cells := []string{fmt.Sprintf("%.2f", guard)}
			for range sirs {
				cells = append(cells, cellsOf(results[i])...)
				i++
			}
			t.AddRow(cells...)
		}
		return t, nil
	}
	return p, nil
}

func fig14Plan(req SweepRequest) (*SweepPlan, error) {
	o := req.Options
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		return nil, err
	}
	nsegs, err := intAxis(axisOr(req, []float64{1, 2, 4, 6, 8, 10, 12, 14, 16}), 1, "fig14 segment count")
	if err != nil {
		return nil, err
	}
	sirs := []float64{-10, -20, -30}
	arms := receiversOr(req, []ReceiverKind{CPRecycle})
	p := &SweepPlan{Title: "Fig 14: PSR vs number of FFT segments (ACI, 16-QAM 1/2)"}
	for _, nseg := range nsegs {
		for _, sir := range sirs {
			p.Points = append(p.Points, SweepPoint{Cfg: LinkConfig{
				Scenario:    ACIScenario(sir, 57, OperatingSNR(m.Name)),
				MCS:         m,
				PSDUBytes:   o.PSDUBytes,
				Packets:     o.Packets,
				Seed:        o.Seed + int64(sir*100) + int64(nseg),
				NumSegments: nseg,
				Receivers:   arms,
			}})
		}
	}
	p.Assemble = func(results [][]PSRPoint) (*Table, error) {
		t := &Table{Title: p.Title, Header: []string{"segments", "%ofCP"}}
		for _, sir := range sirs {
			t.Header = append(t.Header, fmt.Sprintf("SIR%.0fdB", sir))
		}
		i := 0
		for _, nseg := range nsegs {
			cells := []string{fmt.Sprintf("%d", nseg), fmt.Sprintf("%.0f", float64(nseg)/16*100)}
			for range sirs {
				cells = append(cells, cellsOf(results[i])...)
				i++
			}
			t.AddRow(cells...)
		}
		return t, nil
	}
	return p, nil
}

func ablationDecisionPlan(req SweepRequest) (*SweepPlan, error) {
	o := req.Options
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		return nil, err
	}
	sirs := axisOr(req, []float64{-10, -15, -20, -25})
	arms := receiversOr(req, []ReceiverKind{Standard, Naive, CPRecycleKDE, CPRecycleNoTrack, CPRecycle, Oracle})
	p := &SweepPlan{Title: "Ablation: decision rules (ACI, QPSK 1/2)"}
	for _, sir := range sirs {
		p.Points = append(p.Points, SweepPoint{Cfg: LinkConfig{
			Scenario:  ACIScenario(sir, 57, OperatingSNR(m.Name)),
			MCS:       m,
			PSDUBytes: o.PSDUBytes,
			Packets:   o.Packets,
			Seed:      o.Seed + int64(sir*100),
			Receivers: arms,
		}})
	}
	header := []string{"SIR(dB)", "standard", "naive", "kde-sphere", "no-track", "cprecycle", "oracle"}
	if req.Receivers != nil {
		header = []string{"SIR(dB)"}
		for _, k := range arms {
			header = append(header, k.String())
		}
	}
	p.Assemble = func(results [][]PSRPoint) (*Table, error) {
		t := &Table{Title: p.Title, Header: header}
		for i, sir := range sirs {
			t.AddRow(append([]string{fmt.Sprintf("%.0f", sir)}, cellsOf(results[i])...)...)
		}
		return t, nil
	}
	return p, nil
}

func ablationSoftPlan(req SweepRequest) (*SweepPlan, error) {
	o := req.Options
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		return nil, err
	}
	sirs := axisOr(req, []float64{-5, -10, -15})
	arms := receiversOr(req, []ReceiverKind{Standard, StandardSoft, CPRecycle, CPRecycleSoft})
	p := &SweepPlan{Title: "Ablation: hard vs soft Viterbi decoding (ACI, 16-QAM 1/2)"}
	for _, sir := range sirs {
		p.Points = append(p.Points, SweepPoint{Cfg: LinkConfig{
			Scenario:  ACIScenario(sir, 57, OperatingSNR(m.Name)),
			MCS:       m,
			PSDUBytes: o.PSDUBytes,
			Packets:   o.Packets,
			Seed:      o.Seed + int64(sir*100),
			Receivers: arms,
		}})
	}
	header := []string{"SIR(dB)", "std-hard", "std-soft", "cpr-hard", "cpr-soft"}
	if req.Receivers != nil {
		header = []string{"SIR(dB)"}
		for _, k := range arms {
			header = append(header, k.String())
		}
	}
	p.Assemble = func(results [][]PSRPoint) (*Table, error) {
		t := &Table{Title: p.Title, Header: header}
		for i, sir := range sirs {
			t.AddRow(append([]string{fmt.Sprintf("%.0f", sir)}, cellsOf(results[i])...)...)
		}
		return t, nil
	}
	return p, nil
}

// delaySpreadRealisations is the per-point channel-realisation count of
// the §6 delay-spread study.
const delaySpreadRealisations = 4

func delaySpreadPlan(req SweepRequest) (*SweepPlan, error) {
	o := req.Options
	m, err := wifi.MCSByName("16-QAM 1/2")
	if err != nil {
		return nil, err
	}
	spreads, err := intAxis(axisOr(req, []float64{1, 3, 5, 7, 10}), 0, "delay spread")
	if err != nil {
		return nil, err
	}
	arms := receiversOr(req, []ReceiverKind{Standard, CPRecycle})
	p := &SweepPlan{Title: "§6: PSR vs channel delay spread (ACI -15 dB, 16-QAM 1/2)"}
	for _, spread := range spreads {
		// Average over several channel realisations per point: a single
		// frequency-selective draw dominates the PSR otherwise.
		for rz := 0; rz < delaySpreadRealisations; rz++ {
			scen := ACIScenario(-15, 57, OperatingSNR(m.Name))
			ch := channel.Exponential(dsp.NewRand(o.Seed+int64(spread*100+rz)), spread+1, 2)
			scen.Channel = ch
			scen.Interferers[0].Channel = ch
			p.Points = append(p.Points, SweepPoint{Cfg: LinkConfig{
				Scenario:  scen,
				MCS:       m,
				PSDUBytes: o.PSDUBytes,
				Packets:   (o.Packets + delaySpreadRealisations - 1) / delaySpreadRealisations,
				Seed:      o.Seed + int64(spread*1000+rz),
				Receivers: arms,
			}})
		}
	}
	p.Assemble = func(results [][]PSRPoint) (*Table, error) {
		t := &Table{Title: p.Title, Header: []string{"delay(samples)", "ISI-free(%ofCP)"}}
		for _, k := range arms {
			t.Header = append(t.Header, k.String())
		}
		i := 0
		for _, spread := range spreads {
			ok := make([]int, len(arms))
			n := 0
			for rz := 0; rz < delaySpreadRealisations; rz++ {
				for a := range arms {
					ok[a] += results[i][a].OK
				}
				n += results[i][0].N
				i++
			}
			isiFree := 100 * float64(16-(spread+1)) / 16
			cells := []string{fmt.Sprintf("%d", spread), fmt.Sprintf("%.0f", isiFree)}
			for a := range arms {
				cells = append(cells, fmt.Sprintf("%.1f", 100*float64(ok[a])/float64(n)))
			}
			t.AddRow(cells...)
		}
		return t, nil
	}
	return p, nil
}
