package experiments

import (
	"strings"
	"testing"
)

func planFor(t *testing.T, req SweepRequest) *SweepPlan {
	t.Helper()
	p, err := NewSweepPlan(req)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFingerprintStable pins that a plan's fingerprint is a pure function
// of the spec: rebuilding the same request reproduces it, and it ignores
// execution-only knobs (worker counts) — the properties the distributed
// lease protocol relies on to match coordinator and worker plans.
func TestFingerprintStable(t *testing.T) {
	for _, name := range SweepExperiments() {
		req := SweepRequest{Experiment: name, Options: Options{Packets: 4, PSDUBytes: 60, Seed: 7}}
		a := planFor(t, req)
		b := planFor(t, req)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: fingerprint not reproducible", name)
		}
		// Execution-only knobs must not change identity.
		c := planFor(t, req)
		for i := range c.Points {
			c.Points[i].Cfg.Workers = 3
			c.Points[i].Cfg.IntraWorkers = 2
		}
		if a.Fingerprint() != c.Fingerprint() {
			t.Errorf("%s: fingerprint depends on worker counts", name)
		}
	}
}

// TestFingerprintDiscriminates pins that every spec field a lease could
// silently disagree on — seed, fidelity, axis, receivers, MCS — changes
// the fingerprint.
func TestFingerprintDiscriminates(t *testing.T) {
	base := SweepRequest{Experiment: "fig8", Options: Options{Packets: 4, PSDUBytes: 60, Seed: 7}}
	fp := planFor(t, base).Fingerprint()
	variants := map[string]SweepRequest{
		"seed":      {Experiment: "fig8", Options: Options{Packets: 4, PSDUBytes: 60, Seed: 8}},
		"packets":   {Experiment: "fig8", Options: Options{Packets: 5, PSDUBytes: 60, Seed: 7}},
		"bytes":     {Experiment: "fig8", Options: Options{Packets: 4, PSDUBytes: 64, Seed: 7}},
		"axis":      {Experiment: "fig8", Options: base.Options, Axis: []float64{-10, -20}},
		"receivers": {Experiment: "fig8", Options: base.Options, Receivers: []ReceiverKind{Standard}},
		"mcs":       {Experiment: "fig8", Options: base.Options, MCS: []string{"QPSK 1/2"}},
		"exp":       {Experiment: "fig9", Options: base.Options},
	}
	for what, req := range variants {
		if got := planFor(t, req).Fingerprint(); got == fp {
			t.Errorf("changing %s did not change the fingerprint", what)
		}
	}
}

// TestPointIdentityDistinct pins that no two points of a plan share an
// identity line (the delay-spread points differ only by channel taps).
func TestPointIdentityDistinct(t *testing.T) {
	for _, name := range SweepExperiments() {
		p := planFor(t, SweepRequest{Experiment: name, Options: Options{Packets: 4, PSDUBytes: 60, Seed: 7}})
		seen := make(map[string]int, len(p.Points))
		for i := range p.Points {
			id := p.PointIdentity(i)
			if !strings.Contains(id, name) {
				t.Fatalf("%s point %d identity %q lacks the plan name", name, i, id)
			}
			if j, dup := seen[id]; dup {
				t.Errorf("%s: points %d and %d share identity %q", name, j, i, id)
			}
			seen[id] = i
		}
	}
}
