package rx

import (
	"fmt"
	"math/cmplx"

	"repro/internal/dsp"
	"repro/internal/ofdm"
)

// Frame binds a received sample stream to one PPDU whose preamble starts at
// a known sample index, and provides channel-equalised subcarrier
// observations for any OFDM symbol and any cyclic-prefix FFT segment.
// It is the common substrate of every receiver variant in the repository.
//
// Multi-segment observation methods (ObserveSegments, ObservePreambleAll)
// run on the demodulator's planar batch sliding-DFT path — split re/im
// windows from the seed FFT to the last slide, interleaved back to
// complex128 per value at the equalizer boundary — and return buffers
// owned by the Frame that are reused by the next call on the same Frame;
// copy anything that must outlive the next observation. A Frame is not
// safe for concurrent use; parallel symbol decoders give each worker its
// own view via ScratchFork.
type Frame struct {
	grid    ofdm.Grid
	samples []complex128
	start   int
	demod   *ofdm.Demodulator
	h       []complex128 // per-bin channel estimate
	scs     []int        // data subcarriers
	pilots  []int

	// Immutable per-frame lookup tables (shared with ScratchFork views):
	// the FFT bin and channel estimate of each data/pilot subcarrier, so
	// the per-symbol loops skip the Bin() modulo and Ĥ gather.
	selBins   []int // FFT bins of the 52 used subcarriers, for sparse slides
	dataBins  []int // FFT bin per data subcarrier (scs order)
	pilotBins []int // FFT bin per pilot subcarrier (pilots order)
	hData     []complex128
	hPilot    []complex128
	// Precomputed Smith dividers for the equalisation by Ĥ (bit-identical
	// to dividing by hData/hPilot; see dsp.Divisor).
	hDataDiv  []dsp.Divisor
	hPilotDiv []dsp.Divisor

	// Reused observation scratch (see type comment).
	segP   []dsp.Planar  // batch planar demodulation windows
	obs    []Observation // equalised observations handed to callers
	preSeg [][2][]complex128
	oneOff [1]int       // single-offset scratch for ObserveSymbol
	pconj  []complex128 // per-call conjugated pilot references
	pref   []complex128 // per-call pilot references
}

// NewFrame creates a frame view and estimates the channel from the two LTF
// symbols using the standard (CP-skipping) FFT window.
func NewFrame(g ofdm.Grid, samples []complex128, preambleStart int) (*Frame, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	d, err := ofdm.NewDemodulator(g)
	if err != nil {
		return nil, err
	}
	f := &Frame{
		grid:    g,
		samples: samples,
		start:   preambleStart,
		demod:   d,
		scs:     ofdm.DataSubcarriers(),
		pilots:  ofdm.PilotSubcarriers(),
	}
	// Every observation this frame serves reads only the 52 used
	// subcarriers, so slid segment windows are updated sparsely at their
	// bins (the paper's composite grids leave ~80% of bins unused).
	for sc := -26; sc <= 26; sc++ {
		if sc == 0 {
			continue
		}
		f.selBins = append(f.selBins, g.Bin(sc))
	}
	for _, sc := range f.scs {
		f.dataBins = append(f.dataBins, g.Bin(sc))
	}
	for _, sc := range f.pilots {
		f.pilotBins = append(f.pilotBins, g.Bin(sc))
	}
	f.pconj = make([]complex128, len(f.pilots))
	f.pref = make([]complex128, len(f.pilots))
	if err := f.estimateChannel(); err != nil {
		return nil, err
	}
	return f, nil
}

// ScratchFork returns a view of the frame for one worker goroutine of a
// parallel symbol decode: it shares every immutable input — the sample
// stream, grid, channel estimate and bin tables — but owns its demodulator
// and observation scratch, so observations on the fork never race with (or
// clobber the buffers of) observations on the parent or on sibling forks.
// The shared state is read-only after NewFrame, making concurrent
// observations on different forks safe.
func (f *Frame) ScratchFork() (*Frame, error) {
	d, err := ofdm.NewDemodulator(f.grid)
	if err != nil {
		return nil, err
	}
	g := *f
	g.demod = d
	g.segP = nil
	g.obs = nil
	g.preSeg = nil
	g.pconj = make([]complex128, len(f.pilots))
	g.pref = make([]complex128, len(f.pilots))
	return &g, nil
}

// estimateChannel averages the LTF observations over both training symbols
// and over several ISI-free FFT segments of each (interference components
// rotate across segments while the signal component is constant, so the
// average suppresses them), then smooths Ĥ across neighbouring subcarriers
// (the physical channel has a delay spread of a couple of samples, so its
// frequency response is smooth, whereas interference leakage is bursty in
// frequency). Every receiver variant shares this estimate.
func (f *Frame) estimateChannel() error {
	starts := ofdm.LTFSymbolStarts(f.grid)
	// Segment stride of one native sample; use the upper half of the CP,
	// which is ISI-free for any delay spread up to CP/2.
	stride := f.grid.NFFT / 64
	if stride < 1 {
		stride = 1
	}
	var offsets []int
	for o := f.grid.CP / 2; o <= f.grid.CP; o += stride {
		offsets = append(offsets, o)
	}
	sum := make([]complex128, f.grid.NFFT)
	n := 0
	for _, s := range starts {
		var err error
		f.segP, err = f.demod.SegmentsOnPlanar(f.samples, f.start+s, offsets, f.selBins, f.segP)
		if err != nil {
			return fmt.Errorf("rx: channel estimation: %w", err)
		}
		for _, w := range f.segP[:len(offsets)] {
			// Only the selected (used-subcarrier) bins are valid in slid
			// windows — and only they feed the estimate below.
			for _, i := range f.selBins {
				sum[i] += complex(w.Re[i], w.Im[i])
			}
			n++
		}
	}
	raw := make([]complex128, 53) // indexed by sc+26
	for sc := -26; sc <= 26; sc++ {
		l := ofdm.LTFValue(sc)
		if l == 0 {
			continue
		}
		raw[sc+26] = sum[f.grid.Bin(sc)] / (complex(float64(n), 0) * l)
	}
	// Frequency smoothing: 5-wide moving average over used subcarriers.
	f.h = make([]complex128, f.grid.NFFT)
	for sc := -26; sc <= 26; sc++ {
		if ofdm.LTFValue(sc) == 0 {
			continue
		}
		var acc complex128
		var cnt int
		for d := -2; d <= 2; d++ {
			j := sc + d
			if j < -26 || j > 26 || ofdm.LTFValue(j) == 0 {
				continue
			}
			acc += raw[j+26]
			cnt++
		}
		f.h[f.grid.Bin(sc)] = acc / complex(float64(cnt), 0)
	}
	f.hData = make([]complex128, len(f.scs))
	f.hDataDiv = make([]dsp.Divisor, len(f.scs))
	for i, b := range f.dataBins {
		f.hData[i] = f.h[b]
		f.hDataDiv[i] = dsp.NewDivisor(f.h[b])
	}
	f.hPilot = make([]complex128, len(f.pilots))
	f.hPilotDiv = make([]dsp.Divisor, len(f.pilots))
	for i, b := range f.pilotBins {
		f.hPilot[i] = f.h[b]
		f.hPilotDiv[i] = dsp.NewDivisor(f.h[b])
	}
	return nil
}

// Grid returns the frame's grid.
func (f *Frame) Grid() ofdm.Grid { return f.grid }

// Samples returns the underlying sample stream (not a copy).
func (f *Frame) Samples() []complex128 { return f.samples }

// Start returns the preamble start sample index.
func (f *Frame) Start() int { return f.start }

// ChannelEstimate returns the per-bin channel estimate Ĥ (zero on unused
// bins). The returned slice must not be modified.
func (f *Frame) ChannelEstimate() []complex128 { return f.h }

// ChannelAt returns Ĥ at a signed subcarrier index.
func (f *Frame) ChannelAt(sc int) complex128 { return f.h[f.grid.Bin(sc)] }

// SignalStart returns the sample index of the SIGNAL symbol's CP start.
func (f *Frame) SignalStart() int {
	return f.start + ofdm.PreambleLen(f.grid)
}

// DataSymbolStart returns the sample index of DATA symbol k's CP start.
func (f *Frame) DataSymbolStart(k int) int {
	return f.SignalStart() + (k+1)*f.grid.SymLen()
}

// Observation holds one OFDM symbol's equalised data-subcarrier values for
// one FFT segment, in ofdm.DataSubcarriers order.
type Observation struct {
	// Data holds X̂[f] for the 48 data subcarriers.
	Data []complex128
	// CPE is the common phase error removed using the pilots (radians).
	CPE float64
	// PilotDev is the mean absolute deviation of this window's four
	// equalised pilots from their expected values — a per-symbol,
	// per-segment interference probe (only set by ObserveSegments).
	PilotDev float64
}

// symbolCounter maps a symbol index (-1 = SIGNAL, 0.. = data) to the pilot
// polarity counter.
func symbolCounter(symIdx int) int { return symIdx + 1 }

// pilotRefs fills the per-call pilot reference tables for a symbol index:
// pref[p] is the expected pilot value, pconj[p] its conjugate.
func (f *Frame) pilotRefs(ctr int) {
	for p, sc := range f.pilots {
		v := ofdm.PilotValue(ctr, sc)
		f.pref[p] = v
		f.pconj[p] = cmplx.Conj(v)
	}
}

// ObserveSymbol demodulates the FFT segment starting cpOffset samples into
// the CP of symbol symIdx (-1 for SIGNAL, ≥0 for data), corrects the
// segment phase ramp (Eq. 2), equalises by Ĥ, and removes the common phase
// error estimated from the four pilots of the same window. The returned
// observation's Data buffer is Frame-owned scratch, reused by later
// observations on this Frame.
func (f *Frame) ObserveSymbol(symIdx, cpOffset int) (Observation, error) {
	symStart := f.DataSymbolStart(symIdx) // DataSymbolStart(-1) is the SIGNAL symbol
	f.oneOff[0] = cpOffset                // validated by the demodulator
	var err error
	f.segP, err = f.demod.SegmentsPlanar(f.samples, symStart, f.oneOff[:], f.segP)
	if err != nil {
		return Observation{}, err
	}
	return f.observationFromBins(f.segP[0], symIdx)
}

func (f *Frame) observationFromBins(w dsp.Planar, symIdx int) (Observation, error) {
	// Equalise pilots and estimate common phase error.
	var acc complex128
	f.pilotRefs(symbolCounter(symIdx))
	for p, bin := range f.pilotBins {
		if f.hPilot[p] == 0 {
			continue
		}
		acc += f.hPilotDiv[p].Div(complex(w.Re[bin], w.Im[bin])) * f.pconj[p]
	}
	cpe := cmplx.Phase(acc)
	rot := cmplx.Exp(complex(0, -cpe))

	obs := Observation{Data: f.observationScratch(1)[0].Data, CPE: cpe}
	for i, bin := range f.dataBins {
		if f.hData[i] == 0 {
			return Observation{}, fmt.Errorf("rx: no channel estimate at subcarrier %d", f.scs[i])
		}
		obs.Data[i] = f.hDataDiv[i].Div(complex(w.Re[bin], w.Im[bin])) * rot
	}
	return obs, nil
}

// DataSubcarrierCount returns the number of data subcarriers (48).
func (f *Frame) DataSubcarrierCount() int { return len(f.scs) }

// ObserveSegments returns observations of symbol symIdx for every CP offset
// in segments, in order. Unlike repeated ObserveSymbol calls, the common
// phase error is estimated ONCE from the pilots pooled across all segments:
// the signal's CPE is identical in every (phase-corrected) segment while
// interference on the pilots rotates from segment to segment, so pooling
// suppresses it — the multi-window receivers get the full benefit of the
// recycled prefix on their phase tracking too.
//
// The windows are demodulated in one planar batch (seed FFT + sliding-DFT
// updates on split re/im planes, converted to complex128 value by value at
// this equalizer boundary) and the returned observations live in
// Frame-owned scratch that the next multi-segment observation on this
// Frame reuses; copy anything that must be retained.
func (f *Frame) ObserveSegments(symIdx int, segments []int) ([]Observation, error) {
	symStart := f.DataSymbolStart(symIdx)
	var err error
	f.segP, err = f.demod.SegmentsOnPlanar(f.samples, symStart, segments, f.selBins, f.segP)
	if err != nil {
		return nil, err
	}
	f.pilotRefs(symbolCounter(symIdx))
	var acc complex128
	for _, w := range f.segP[:len(segments)] {
		for p, bin := range f.pilotBins {
			if f.hPilot[p] == 0 {
				continue
			}
			acc += f.hPilotDiv[p].Div(complex(w.Re[bin], w.Im[bin])) * f.pconj[p]
		}
	}
	cpe := cmplx.Phase(acc)
	rot := cmplx.Exp(complex(0, -cpe))
	out := f.observationScratch(len(segments))
	for i := range out {
		w := f.segP[i]
		wre, wim := w.Re, w.Im
		obs := &out[i]
		obs.CPE = cpe
		obs.PilotDev = 0
		data := obs.Data
		for j, bin := range f.dataBins {
			if f.hData[j] == 0 {
				return nil, fmt.Errorf("rx: no channel estimate at subcarrier %d", f.scs[j])
			}
			data[j] = f.hDataDiv[j].Div(complex(wre[bin], wim[bin])) * rot
		}
		var pdev float64
		var np int
		for p, bin := range f.pilotBins {
			if f.hPilot[p] == 0 {
				continue
			}
			pdev += dsp.Abs(f.hPilotDiv[p].Div(complex(wre[bin], wim[bin]))*rot - f.pref[p])
			np++
		}
		if np > 0 {
			obs.PilotDev = pdev / float64(np)
		}
	}
	return out, nil
}

// observationScratch returns n reusable observations with Data buffers
// sized for the data subcarriers.
func (f *Frame) observationScratch(n int) []Observation {
	if cap(f.obs) < n {
		grown := make([]Observation, n)
		copy(grown, f.obs[:cap(f.obs)])
		f.obs = grown
	}
	f.obs = f.obs[:n]
	for i := range f.obs {
		if len(f.obs[i].Data) != len(f.scs) {
			f.obs[i].Data = make([]complex128, len(f.scs))
		}
	}
	return f.obs
}

// ObservePreambleAll returns the equalised LTF observations of every CP
// offset in segments in one batch: out[i][s][j] is segment i, training
// symbol s, data subcarrier j (DataSubcarriers order), i.e. the received
// value divided by Ĥ — CPRecycle's interference-model training inputs (the
// known transmitted value is ofdm.LTFValue). Each LTF symbol costs one
// seed FFT plus len(segments)-1 sliding-DFT updates, where the
// one-FFT-per-window equivalent would pay a full FFT per (segment,
// symbol).
//
// Like ObserveSegments, the returned buffers are Frame-owned scratch.
func (f *Frame) ObservePreambleAll(segments []int) ([][2][]complex128, error) {
	if cap(f.preSeg) < len(segments) {
		grown := make([][2][]complex128, len(segments))
		copy(grown, f.preSeg[:cap(f.preSeg)])
		f.preSeg = grown
	}
	f.preSeg = f.preSeg[:len(segments)]
	for i := range f.preSeg {
		for s := 0; s < 2; s++ {
			if len(f.preSeg[i][s]) != len(f.scs) {
				f.preSeg[i][s] = make([]complex128, len(f.scs))
			}
		}
	}
	starts := ofdm.LTFSymbolStarts(f.grid)
	for s, st := range starts {
		var err error
		f.segP, err = f.demod.SegmentsOnPlanar(f.samples, f.start+st, segments, f.selBins, f.segP)
		if err != nil {
			return nil, err
		}
		for i, w := range f.segP[:len(segments)] {
			vals := f.preSeg[i][s]
			for j, bin := range f.dataBins {
				if f.hData[j] == 0 {
					return nil, fmt.Errorf("rx: no channel estimate at subcarrier %d", f.scs[j])
				}
				vals[j] = f.hDataDiv[j].Div(complex(w.Re[bin], w.Im[bin]))
			}
		}
	}
	return f.preSeg, nil
}

// NoiseEstimate returns the mean squared deviation of the equalised LTF
// observations from the known LTF values — an SNR-cum-interference power
// estimate receivers use for soft demapping.
func (f *Frame) NoiseEstimate() (float64, error) {
	f.oneOff[0] = f.grid.CP
	pre, err := f.ObservePreambleAll(f.oneOff[:])
	if err != nil {
		return 0, err
	}
	var sum float64
	var n int
	for _, vals := range pre[0] {
		for j, sc := range f.scs {
			d := vals[j] - ofdm.LTFValue(sc)
			sum += real(d)*real(d) + imag(d)*imag(d)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("rx: no observations for noise estimate")
	}
	return sum / float64(n), nil
}

// SubcarrierPower returns the received power spectrum averaged over count
// standard-window symbols starting at symbol index first (useful for the
// Fig. 4a interference-spectrum analyses): the mean |Y[bin]|² per bin.
func (f *Frame) SubcarrierPower(first, count int) ([]float64, error) {
	out := make([]float64, f.grid.NFFT)
	for k := first; k < first+count; k++ {
		bins, err := f.demod.Standard(f.samples, f.DataSymbolStart(k))
		if err != nil {
			return nil, err
		}
		for i, v := range bins {
			out[i] += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	for i := range out {
		out[i] /= float64(count)
	}
	return out, nil
}
