package rx

import (
	"fmt"
	"time"

	"repro/internal/coding"
	"repro/internal/modem"
	"repro/internal/wifi"
)

// SymbolDecider turns one data OFDM symbol's observations into hard
// constellation decisions, one lattice index per data subcarrier. This is
// the plug point shared by the standard slicer, the paper's Naive and
// Oracle reference decoders, and CPRecycle's fixed-sphere ML decoder.
type SymbolDecider interface {
	// DecideSymbol returns the decided lattice indices for data symbol
	// symIdx of the frame, in ofdm.DataSubcarriers order.
	DecideSymbol(f *Frame, symIdx int, cons *modem.Constellation) ([]int, error)
}

// StandardDecider is the conventional receiver: it discards the cyclic
// prefix (uses the standard FFT window only) and slices each subcarrier to
// the nearest lattice point.
type StandardDecider struct{}

// DecideSymbol implements SymbolDecider.
func (StandardDecider) DecideSymbol(f *Frame, symIdx int, cons *modem.Constellation) ([]int, error) {
	obs, err := f.ObserveSymbol(symIdx, f.Grid().CP)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(obs.Data))
	for i, v := range obs.Data {
		out[i] = cons.Nearest(v)
	}
	return out, nil
}

// Result reports the outcome of decoding one frame's DATA field.
type Result struct {
	// PSDU is the recovered service-data unit (before FCS removal).
	PSDU []byte
	// FCSOK reports whether the frame check sequence verified.
	FCSOK bool
	// ScramblerSeed is the recovered 7-bit scrambler initial state.
	ScramblerSeed uint8
}

// DecodeData runs the full 802.11 DATA pipeline for a frame with known MCS
// and PSDU length (the experiment harness's genie-aided path — both
// receiver arms get identical framing so packet success isolates the
// decision stage): per-symbol decisions via the decider, deinterleave,
// depuncture, Viterbi, descramble with seed recovery, FCS check.
func DecodeData(f *Frame, mcs wifi.MCS, psduLen int, decider SymbolDecider) (Result, error) {
	nSyms := mcs.SymbolsForPSDU(psduLen)
	cons := modem.New(mcs.Scheme)
	il := coding.MustInterleaver(mcs.Ncbps, mcs.Nbpsc)
	nb := cons.BitsPerSymbol()

	obsStart := time.Now()
	coded := make([]byte, 0, nSyms*mcs.Ncbps)
	bitBuf := make([]byte, nb)
	for k := 0; k < nSyms; k++ {
		idxs, err := decider.DecideSymbol(f, k, cons)
		if err != nil {
			return Result{}, fmt.Errorf("rx: symbol %d: %w", k, err)
		}
		if len(idxs) != f.DataSubcarrierCount() {
			return Result{}, fmt.Errorf("rx: decider returned %d decisions", len(idxs))
		}
		blk := make([]byte, 0, mcs.Ncbps)
		for _, idx := range idxs {
			cons.BitsOf(idx, bitBuf)
			blk = append(blk, bitBuf...)
		}
		coded = append(coded, il.Deinterleave(blk)...)
	}
	stageObserve.ObserveSince(obsStart)

	return decodeCodedData(coded, mcs, psduLen, nSyms)
}

// decodeCodedData runs the post-decision half of the DATA pipeline on the
// deinterleaved coded bit stream: depuncture, anchored Viterbi,
// descramble, FCS. Shared by the serial and parallel decode paths.
func decodeCodedData(coded []byte, mcs wifi.MCS, psduLen, nSyms int) (Result, error) {
	defer stageDecode.ObserveSince(time.Now())
	nInfo := nSyms * mcs.Ndbps
	vit := coding.NewViterbi()
	// The DATA stream's scrambled pad bits follow the six tail bits, so the
	// encoder does not end in the zero state — but it IS in the zero state
	// right after the tail. Anchor the payload traceback there so pad-bit
	// channel errors can never corrupt PSDU bits (best-final-state
	// traceback can reach into the payload when the pad is shorter than
	// the survivor-merge depth).
	bits, err := vit.DecodePuncturedAnchored(coding.HardToLLR(coded), mcs.Rate, nInfo, wifi.DataAnchorBit(psduLen, nInfo))
	if err != nil {
		return Result{}, err
	}
	return finishData(bits, psduLen)
}

// finishData descrambles decoded DATA bits (recovering the scrambler seed
// from the seven zero SERVICE bits), extracts the PSDU and checks its FCS.
func finishData(bits []byte, psduLen int) (Result, error) {
	if len(bits) < 16+8*psduLen {
		return Result{}, fmt.Errorf("rx: %d decoded bits for %d-octet PSDU", len(bits), psduLen)
	}
	seed := RecoverScramblerSeed(bits)
	coding.NewScrambler(seed).Apply(bits)
	psdu := coding.BitsToBytes(bits[16 : 16+8*psduLen])
	_, ok := coding.CheckFCS(psdu)
	return Result{PSDU: psdu, FCSOK: ok, ScramblerSeed: seed}, nil
}

// RecoverScramblerSeed derives the transmitter's scrambler initial state
// from the first seven scrambled SERVICE bits, which the standard defines
// as zeros: the received bits therefore equal the scrambling sequence, and
// because the LFSR feeds its output back, pushing those seven bits through
// the register reconstructs the state at step 7. Rewinding seven steps
// yields the initial seed; equivalently, descrambling with the state built
// directly from the 7 bits and treating positions 0-6 as known zeros.
// This function returns the seed whose full sequence starts with bits[0:7].
func RecoverScramblerSeed(scrambled []byte) uint8 {
	if len(scrambled) < 7 {
		return coding.DefaultScramblerSeed
	}
	// Search the 127 possible seeds for the one reproducing the first 7
	// observed scrambling bits. The space is tiny and this is robust to the
	// feedback-register algebra.
	for seed := uint8(1); seed < 128; seed++ {
		s := coding.NewScrambler(seed)
		match := true
		for i := 0; i < 7; i++ {
			if s.NextBit() != scrambled[i]&1 {
				match = false
				break
			}
		}
		if match {
			return seed
		}
	}
	return coding.DefaultScramblerSeed
}

// DecodeSignal decodes the SIGNAL symbol of a frame using the standard FFT
// window and returns the advertised MCS and PSDU length.
func DecodeSignal(f *Frame) (wifi.MCS, int, error) {
	obs, err := f.ObserveSymbol(-1, f.Grid().CP)
	if err != nil {
		return wifi.MCS{}, 0, err
	}
	bpsk := modem.New(modem.BPSK)
	llrs := bpsk.LLR(obs.Data, 1, nil)
	return wifi.DecodeSignalSymbolLLRs(llrs, coding.NewViterbi())
}

// DecodeFrame is the fully self-contained receive path used by the
// examples: decode SIGNAL, then DATA with the given decider.
func DecodeFrame(f *Frame, decider SymbolDecider) (Result, wifi.MCS, error) {
	mcs, psduLen, err := DecodeSignal(f)
	if err != nil {
		return Result{}, wifi.MCS{}, fmt.Errorf("rx: SIGNAL: %w", err)
	}
	res, err := DecodeData(f, mcs, psduLen, decider)
	return res, mcs, err
}
