// Package rx implements the standard IEEE 802.11a/g OFDM receiver chain
// the paper's GNU Radio receiver provides (Fig. 7, minus the CPRecycle
// blocks): Schmidl–Cox packet detection on the short training field,
// coarse/fine carrier-frequency-offset estimation and correction, LTF
// channel estimation, per-segment equalisation with pilot phase tracking,
// ISI-free region detection (§6), and the demap → deinterleave →
// depuncture → Viterbi → descramble → FCS pipeline.
//
// The per-symbol decision step is abstracted behind SymbolDecider so the
// standard minimum-distance slicer, the paper's Naive and Oracle reference
// decoders, and the CPRecycle maximum-likelihood decoder (internal/core)
// all share the surrounding chain.
//
// Frame's multi-segment observation methods (ObserveSegments,
// ObservePreambleAll) demodulate all P windows of a symbol in one batch on
// the planar sliding-DFT path, sparsely at the 52 used subcarrier bins,
// and hand out Frame-owned scratch buffers — the per-symbol hot path
// performs no allocation. DecodeDataParallel fans the per-symbol
// decisions of one packet across workers (per-worker Frame.ScratchFork
// scratch, ParallelDecider forks, symbol-ordered merge) with output
// bit-identical to the serial DecodeData.
package rx

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
	"repro/internal/ofdm"
)

// SyncResult reports packet detection and CFO estimation.
type SyncResult struct {
	// FrameStart is the estimated sample index of the preamble start.
	FrameStart int
	// CFO is the estimated carrier frequency offset in subcarrier
	// spacings, unambiguous within ±0.5 (from the LTF repetition).
	CFO float64
	// CoarseCFO is the STF-based estimate; diagnostic only, biased under
	// strong interference.
	CoarseCFO float64
	// Metric is the peak normalised autocorrelation metric in [0,1].
	Metric float64
}

// Synchronize detects an 802.11 preamble in samples using the Schmidl–Cox
// autocorrelation over the periodic STF, refines timing by
// cross-correlating with the known LTF, and estimates CFO (coarse from the
// STF period, fine from the LTF repetition). It returns an error when no
// plateau exceeds the detection threshold.
func Synchronize(samples []complex128, g ofdm.Grid) (SyncResult, error) {
	n := g.NFFT
	period := n / 4 // STF periodicity
	win := 2 * n    // long window over the STF for a stable plateau metric
	if len(samples) < ofdm.PreambleLen(g)+g.SymLen() {
		return SyncResult{}, fmt.Errorf("rx: %d samples too short for a preamble", len(samples))
	}

	// Schmidl–Cox style metric M(d) = |P(d)|² / R(d)² with lag = period.
	best, bestAt := 0.0, -1
	limit := len(samples) - win - period
	for d := 0; d < limit; d++ {
		var p complex128
		var r float64
		for t := d; t < d+win; t++ {
			p += samples[t] * cmplx.Conj(samples[t+period])
			v := samples[t+period]
			r += real(v)*real(v) + imag(v)*imag(v)
		}
		if r <= 1e-30 {
			continue
		}
		m := cmplx.Abs(p) / r
		if m > best {
			best, bestAt = m, d
		}
	}
	if bestAt < 0 || best < 0.5 {
		return SyncResult{}, fmt.Errorf("rx: no preamble detected (peak metric %.3f)", best)
	}

	// Coarse CFO from the STF autocorrelation phase: a CFO of ε subcarrier
	// spacings rotates by 2π·ε·period/n over one period. Used only as a
	// sanity reference — under strong interference its phase is biased, so
	// the fine LTF estimate below is authoritative.
	pc := dsp.AutoCorr(samples[bestAt:], period, win)
	coarse := -cmplx.Phase(pc) / (2 * math.Pi * float64(period) / float64(n))

	// Refine timing by cross-correlating with both clean LTF bodies around
	// the plateau (the plateau start is ambiguous within the periodic STF;
	// using both bodies disambiguates body 1 from body 2, since only the
	// true alignment matches 2·n samples).
	mod := ofdm.MustModulator(g)
	ltfBody := mod.Symbol(ofdm.LTFValues())[g.CP:]
	template := append(append([]complex128{}, ltfBody...), ltfBody...)
	bodyOff := n*5/2 + n/2 // offset of first LTF body within the preamble
	searchLo := bestAt - 2*n
	if searchLo < 0 {
		searchLo = 0
	}
	searchHi := bestAt + 3*n
	bestXC, bestStart := 0.0, bestAt
	for d := searchLo; d <= searchHi && d+bodyOff+2*n <= len(samples); d++ {
		xc := cmplx.Abs(dsp.CrossCorr(samples[d+bodyOff:d+bodyOff+2*n], template))
		if xc > bestXC {
			bestXC, bestStart = xc, d
		}
	}

	// Fine CFO from the two LTF repetitions (lag n). Unambiguous for
	// offsets within ±0.5 subcarrier spacings (±156 kHz at 20 MHz — far
	// beyond the ±25 ppm oscillators 802.11 allows), so no integer-bin
	// resolution is attempted: under strong interference the coarse STF
	// phase is too biased to resolve it reliably.
	fineStart := bestStart + bodyOff
	var fine float64
	if fineStart+2*n <= len(samples) {
		pf := dsp.AutoCorr(samples[fineStart:], n, n)
		fine = -cmplx.Phase(pf) / (2 * math.Pi)
	}
	return SyncResult{FrameStart: bestStart, CFO: fine, CoarseCFO: coarse, Metric: best}, nil
}

// CorrectCFO removes a CFO estimate (in subcarrier spacings of the grid)
// from samples in place, phase-referenced to sample index 0.
func CorrectCFO(samples []complex128, cfo float64, g ofdm.Grid) {
	dsp.FreqShift(samples, -cfo, g.NFFT, 0)
}

// ISIFreeDetect estimates the first ISI-free cyclic-prefix offset of
// received OFDM symbols by the correlation method the paper cites in §6
// ([4,37,43,57]): for each CP offset o, correlate the CP samples with the
// symbol-tail samples they should replicate, averaged over the given symbol
// starts, and report the smallest o whose normalised correlation exceeds
// threshold (e.g. 0.8). Returns g.CP (no usable segments beyond the
// standard window) when nothing correlates.
func ISIFreeDetect(samples []complex128, symStarts []int, g ofdm.Grid, threshold float64) int {
	n, cp := g.NFFT, g.CP
	for o := 0; o < cp; o++ {
		// Correlate only the single CP sample at offset o with its body
		// replica, across all symbols: pooling the whole CP range would let
		// the many ISI-free samples mask the corrupted head.
		var num complex128
		var ea, eb float64
		for _, s := range symStarts {
			if s < 0 || s+cp+n > len(samples) {
				continue
			}
			a := samples[s+o]
			b := samples[s+n+o]
			num += a * cmplx.Conj(b)
			ea += real(a)*real(a) + imag(a)*imag(a)
			eb += real(b)*real(b) + imag(b)*imag(b)
		}
		if ea <= 0 || eb <= 0 {
			continue
		}
		if cmplx.Abs(num)/math.Sqrt(ea*eb) >= threshold {
			return o
		}
	}
	return cp
}
