package rx

import (
	"repro/internal/obs"
)

// Per-stage receiver spans. The "observe" stage covers per-symbol
// observation + decision (ObserveSymbol / DecideSymbol / deinterleave);
// "decode" covers the post-decision half (depuncture + Viterbi +
// descramble + FCS). Both are recorded once per packet at loop
// granularity — never per symbol — so instrumentation stays a handful
// of atomics against a ~1ms packet and the symbol-level kernels
// (Frame.ObserveSegments and friends) are untouched.
const stageSecondsHelp = "Wall-clock seconds per receiver/sweep stage, one observation per packet."

var (
	stageObserve = obs.NewHistogram("cpr_sweep_stage_seconds", stageSecondsHelp,
		obs.DurationBuckets, obs.Label{Name: "stage", Value: "observe"})
	stageDecode = obs.NewHistogram("cpr_sweep_stage_seconds", stageSecondsHelp,
		obs.DurationBuckets, obs.Label{Name: "stage", Value: "decode"})
)
