package rx

import (
	"fmt"
	"math/cmplx"
	"sort"
	"sync"
	"time"

	"repro/internal/coding"
	"repro/internal/modem"
	"repro/internal/wifi"
)

// SoftSymbolDecider extends SymbolDecider with per-subcarrier decision
// confidences, enabling soft-decision Viterbi decoding. Confidences are
// non-negative relative weights: 0 marks an erasure (the decision carries
// no information), larger values mark more trustworthy subcarriers. Only
// relative magnitudes within a frame matter.
//
// Soft decoding is an extension beyond the paper (its GNU Radio receiver
// and CPRecycle's symbol-level ML output are hard-decision); it lets the
// Viterbi decoder discount the subcarriers the interference model marks as
// hopeless instead of consuming their bit errors at full weight.
type SoftSymbolDecider interface {
	SymbolDecider
	// DecideSymbolSoft returns lattice decisions plus a confidence per
	// data subcarrier.
	DecideSymbolSoft(f *Frame, symIdx int, cons *modem.Constellation) (idxs []int, conf []float64, err error)
}

// DecideSymbolSoft implements SoftSymbolDecider for the standard receiver:
// the confidence of each subcarrier is its distance margin between the two
// nearest lattice points.
func (StandardDecider) DecideSymbolSoft(f *Frame, symIdx int, cons *modem.Constellation) ([]int, []float64, error) {
	obs, err := f.ObserveSymbol(symIdx, f.Grid().CP)
	if err != nil {
		return nil, nil, err
	}
	idxs := make([]int, len(obs.Data))
	conf := make([]float64, len(obs.Data))
	for i, v := range obs.Data {
		best := cons.Nearest(v)
		idxs[i] = best
		d1 := cmplx.Abs(v - cons.Point(best))
		d2 := d1
		first := true
		for li, p := range cons.Points() {
			if li == best {
				continue
			}
			d := cmplx.Abs(v - p)
			if first || d < d2 {
				d2 = d
				first = false
			}
		}
		conf[i] = (d2 - d1) / cons.MinDistance()
	}
	return idxs, conf, nil
}

// softSymbolLLRs decides symbol k on f with the soft decider and writes
// the symbol's deinterleaved per-bit weights into dst (a Ncbps-sized slot
// of the packet-wide LLR stream). blk and bitBuf are caller-provided
// scratch.
func softSymbolLLRs(f *Frame, soft SoftSymbolDecider, k int, cons *modem.Constellation,
	il *coding.Interleaver, bitBuf []byte, blk, dst []float64) error {
	idxs, conf, err := soft.DecideSymbolSoft(f, k, cons)
	if err != nil {
		return err
	}
	if len(idxs) != f.DataSubcarrierCount() || len(conf) != len(idxs) {
		return fmt.Errorf("rx: soft decider returned %d/%d entries", len(idxs), len(conf))
	}
	nb := len(bitBuf)
	w := normalizeConfidences(conf)
	for i, idx := range idxs {
		cons.BitsOf(idx, bitBuf)
		for b, bit := range bitBuf {
			v := w[i]
			if bit == 1 {
				v = -v
			}
			blk[i*nb+b] = v
		}
	}
	il.DeinterleaveLLRInto(dst, blk)
	return nil
}

// decodeLLRData runs the soft Viterbi over a packet's assembled LLR
// stream and finishes the PSDU.
func decodeLLRData(llrs []float64, mcs wifi.MCS, psduLen, nSyms int) (Result, error) {
	defer stageDecode.ObserveSince(time.Now())
	nInfo := nSyms * mcs.Ndbps
	vit := coding.NewViterbi()
	bits, err := vit.DecodePuncturedAnchored(llrs, mcs.Rate, nInfo, wifi.DataAnchorBit(psduLen, nInfo))
	if err != nil {
		return Result{}, err
	}
	return finishData(bits, psduLen)
}

// DecodeDataSoft mirrors DecodeData but uses the decider's per-subcarrier
// confidences as bit weights for the Viterbi decoder. Deciders that do not
// implement SoftSymbolDecider fall back to hard (unit-weight) decoding.
func DecodeDataSoft(f *Frame, mcs wifi.MCS, psduLen int, decider SymbolDecider) (Result, error) {
	soft, ok := decider.(SoftSymbolDecider)
	if !ok {
		return DecodeData(f, mcs, psduLen, decider)
	}
	nSyms := mcs.SymbolsForPSDU(psduLen)
	cons := modem.New(mcs.Scheme)
	il := coding.MustInterleaver(mcs.Ncbps, mcs.Nbpsc)

	obsStart := time.Now()
	llrs := make([]float64, nSyms*mcs.Ncbps)
	bitBuf := make([]byte, cons.BitsPerSymbol())
	blk := make([]float64, mcs.Ncbps)
	for k := 0; k < nSyms; k++ {
		if err := softSymbolLLRs(f, soft, k, cons, il, bitBuf, blk, llrs[k*mcs.Ncbps:(k+1)*mcs.Ncbps]); err != nil {
			return Result{}, fmt.Errorf("rx: symbol %d: %w", k, err)
		}
	}
	stageObserve.ObserveSince(obsStart)
	return decodeLLRData(llrs, mcs, psduLen, nSyms)
}

// DecodeDataSoftParallel is DecodeDataSoft with the per-symbol soft
// decisions fanned across up to workers goroutines, mirroring
// DecodeDataParallel: each worker decides a stride of the symbol indices
// on its own Frame.ScratchFork view and ForkDecider clone, and every
// symbol's deinterleaved weights land in its own slot of the packet-wide
// LLR stream, so the weights entering the Viterbi decoder — and therefore
// the Result — are bit-identical to the serial path. It falls back to the
// serial DecodeDataSoft when workers <= 1, the decider cannot fork (or a
// fork loses the soft interface), and to the hard-decision
// DecodeDataParallel when the decider has no soft interface at all.
func DecodeDataSoftParallel(f *Frame, mcs wifi.MCS, psduLen int, decider SymbolDecider, workers int) (Result, error) {
	soft, ok := decider.(SoftSymbolDecider)
	if !ok {
		return DecodeDataParallel(f, mcs, psduLen, decider, workers)
	}
	nSyms := mcs.SymbolsForPSDU(psduLen)
	if workers > nSyms {
		workers = nSyms
	}
	pd, okP := decider.(ParallelDecider)
	if workers <= 1 || !okP {
		return DecodeDataSoft(f, mcs, psduLen, decider)
	}
	// Fork frames and deciders up front; any refusal falls back to serial
	// before any goroutine starts.
	frames := make([]*Frame, workers)
	softs := make([]SoftSymbolDecider, workers)
	frames[0], softs[0] = f, soft
	for w := 1; w < workers; w++ {
		fork, okF := pd.ForkDecider()
		if !okF {
			return DecodeDataSoft(f, mcs, psduLen, decider)
		}
		sfork, okS := fork.(SoftSymbolDecider)
		if !okS {
			return DecodeDataSoft(f, mcs, psduLen, decider)
		}
		fw, err := f.ScratchFork()
		if err != nil {
			return Result{}, err
		}
		frames[w], softs[w] = fw, sfork
	}

	obsStart := time.Now()
	llrs := make([]float64, nSyms*mcs.Ncbps)
	errs := make([]error, nSyms)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			frame, dec := frames[w], softs[w]
			cons := modem.New(mcs.Scheme)
			il := coding.MustInterleaver(mcs.Ncbps, mcs.Nbpsc)
			bitBuf := make([]byte, cons.BitsPerSymbol())
			blk := make([]float64, mcs.Ncbps)
			for k := w; k < nSyms; k += workers {
				if err := softSymbolLLRs(frame, dec, k, cons, il, bitBuf, blk, llrs[k*mcs.Ncbps:(k+1)*mcs.Ncbps]); err != nil {
					errs[k] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("rx: symbol %d: %w", k, err)
		}
	}
	stageObserve.ObserveSince(obsStart)
	return decodeLLRData(llrs, mcs, psduLen, nSyms)
}

// normalizeConfidences maps raw confidences to weights with median 1,
// clipped to [0, 4] so a few very confident subcarriers cannot drown the
// rest of the trellis.
func normalizeConfidences(conf []float64) []float64 {
	sorted := append([]float64(nil), conf...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if med <= 1e-9 {
		med = 1e-9
	}
	out := make([]float64, len(conf))
	for i, c := range conf {
		w := c / med
		if w < 0 {
			w = 0
		}
		if w > 4 {
			w = 4
		}
		out[i] = w
	}
	return out
}
