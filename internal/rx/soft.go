package rx

import (
	"fmt"
	"math/cmplx"
	"sort"

	"repro/internal/coding"
	"repro/internal/modem"
	"repro/internal/wifi"
)

// SoftSymbolDecider extends SymbolDecider with per-subcarrier decision
// confidences, enabling soft-decision Viterbi decoding. Confidences are
// non-negative relative weights: 0 marks an erasure (the decision carries
// no information), larger values mark more trustworthy subcarriers. Only
// relative magnitudes within a frame matter.
//
// Soft decoding is an extension beyond the paper (its GNU Radio receiver
// and CPRecycle's symbol-level ML output are hard-decision); it lets the
// Viterbi decoder discount the subcarriers the interference model marks as
// hopeless instead of consuming their bit errors at full weight.
type SoftSymbolDecider interface {
	SymbolDecider
	// DecideSymbolSoft returns lattice decisions plus a confidence per
	// data subcarrier.
	DecideSymbolSoft(f *Frame, symIdx int, cons *modem.Constellation) (idxs []int, conf []float64, err error)
}

// DecideSymbolSoft implements SoftSymbolDecider for the standard receiver:
// the confidence of each subcarrier is its distance margin between the two
// nearest lattice points.
func (StandardDecider) DecideSymbolSoft(f *Frame, symIdx int, cons *modem.Constellation) ([]int, []float64, error) {
	obs, err := f.ObserveSymbol(symIdx, f.Grid().CP)
	if err != nil {
		return nil, nil, err
	}
	idxs := make([]int, len(obs.Data))
	conf := make([]float64, len(obs.Data))
	for i, v := range obs.Data {
		best := cons.Nearest(v)
		idxs[i] = best
		d1 := cmplx.Abs(v - cons.Point(best))
		d2 := d1
		first := true
		for li, p := range cons.Points() {
			if li == best {
				continue
			}
			d := cmplx.Abs(v - p)
			if first || d < d2 {
				d2 = d
				first = false
			}
		}
		conf[i] = (d2 - d1) / cons.MinDistance()
	}
	return idxs, conf, nil
}

// DecodeDataSoft mirrors DecodeData but uses the decider's per-subcarrier
// confidences as bit weights for the Viterbi decoder. Deciders that do not
// implement SoftSymbolDecider fall back to hard (unit-weight) decoding.
func DecodeDataSoft(f *Frame, mcs wifi.MCS, psduLen int, decider SymbolDecider) (Result, error) {
	soft, ok := decider.(SoftSymbolDecider)
	if !ok {
		return DecodeData(f, mcs, psduLen, decider)
	}
	nSyms := mcs.SymbolsForPSDU(psduLen)
	cons := modem.New(mcs.Scheme)
	il := coding.MustInterleaver(mcs.Ncbps, mcs.Nbpsc)
	nb := cons.BitsPerSymbol()

	llrs := make([]float64, 0, nSyms*mcs.Ncbps)
	bitBuf := make([]byte, nb)
	blk := make([]float64, mcs.Ncbps)
	for k := 0; k < nSyms; k++ {
		idxs, conf, err := soft.DecideSymbolSoft(f, k, cons)
		if err != nil {
			return Result{}, fmt.Errorf("rx: symbol %d: %w", k, err)
		}
		if len(idxs) != f.DataSubcarrierCount() || len(conf) != len(idxs) {
			return Result{}, fmt.Errorf("rx: soft decider returned %d/%d entries", len(idxs), len(conf))
		}
		w := normalizeConfidences(conf)
		for i, idx := range idxs {
			cons.BitsOf(idx, bitBuf)
			for b, bit := range bitBuf {
				v := w[i]
				if bit == 1 {
					v = -v
				}
				blk[i*nb+b] = v
			}
		}
		llrs = append(llrs, il.DeinterleaveLLR(blk)...)
	}

	nInfo := nSyms * mcs.Ndbps
	vit := coding.NewViterbi()
	bits, err := vit.DecodePuncturedAnchored(llrs, mcs.Rate, nInfo, wifi.DataAnchorBit(psduLen, nInfo))
	if err != nil {
		return Result{}, err
	}
	return finishData(bits, psduLen)
}

// normalizeConfidences maps raw confidences to weights with median 1,
// clipped to [0, 4] so a few very confident subcarriers cannot drown the
// rest of the trellis.
func normalizeConfidences(conf []float64) []float64 {
	sorted := append([]float64(nil), conf...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if med <= 1e-9 {
		med = 1e-9
	}
	out := make([]float64, len(conf))
	for i, c := range conf {
		w := c / med
		if w < 0 {
			w = 0
		}
		if w > 4 {
			w = 4
		}
		out[i] = w
	}
	return out
}
