package rx

import (
	"bytes"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/coding"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/ofdm"
	"repro/internal/wifi"
)

// buildFrame transmits a PPDU through the given channel/noise and returns
// the frame view plus ground truth.
func buildFrame(t testing.TB, seed int64, mcsName string, psduLen int, ch *channel.Multipath, snrDB float64, pad int) (*Frame, *wifi.PPDU, []byte) {
	t.Helper()
	r := dsp.NewRand(seed)
	mcs, err := wifi.MCSByName(mcsName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wifi.TxConfig{Grid: ofdm.Native80211Grid(), MCS: mcs, Gain: 1}
	psdu := wifi.BuildPSDU(r.Bytes(psduLen - 4))
	p, err := wifi.BuildPPDU(cfg, psdu)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]complex128, pad+len(p.Samples)+pad)
	dsp.AddInto(stream, p.Samples, pad)
	if ch != nil {
		stream = ch.Apply(stream)
	}
	if snrDB < 1000 {
		sigPower := dsp.Power(p.Samples)
		channel.AWGN(r, stream, channel.NoisePowerForSNR(sigPower, snrDB))
	}
	f, err := NewFrame(cfg.Grid, stream, pad)
	if err != nil {
		t.Fatal(err)
	}
	return f, p, psdu
}

func TestFrameChannelEstimateClean(t *testing.T) {
	f, _, _ := buildFrame(t, 1, "QPSK 1/2", 50, nil, 10000, 10)
	for sc := -26; sc <= 26; sc++ {
		if sc == 0 {
			continue
		}
		if h := f.ChannelAt(sc); cmplx.Abs(h-1) > 1e-6 {
			t.Fatalf("H[%d] = %v, want 1", sc, h)
		}
	}
}

func TestFrameChannelEstimateMultipath(t *testing.T) {
	// The estimator smooths Ĥ across ±2 subcarriers (robustness against
	// interference bursts in frequency), which biases the estimate by a
	// few percent where the channel ripples — well below the operating
	// noise floor. Verify the estimate lands within that budget.
	ch := channel.Indoor2Tap()
	f, _, _ := buildFrame(t, 2, "QPSK 1/2", 50, ch, 10000, 10)
	want := ch.FrequencyResponse(64)
	for sc := -26; sc <= 26; sc++ {
		if sc == 0 {
			continue
		}
		bin := f.Grid().Bin(sc)
		if d := cmplx.Abs(f.ChannelAt(sc) - want[bin]); d > 0.06*cmplx.Abs(want[bin]) {
			t.Fatalf("H[%d] = %v, want %v (dev %.3f)", sc, f.ChannelAt(sc), want[bin], d)
		}
	}
}

func TestObserveSymbolRecoversConstellation(t *testing.T) {
	f, p, _ := buildFrame(t, 3, "16-QAM 1/2", 80, channel.Indoor2Tap(), 10000, 7)
	cons := modem.New(p.Cfg.MCS.Scheme)
	for k := 0; k < 3; k++ {
		obs, err := f.ObserveSymbol(k, f.Grid().CP)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range obs.Data {
			idx := cons.Nearest(v)
			// Within a tenth of the decision distance: limited only by
			// the channel smoothing bias, not noise.
			if cmplx.Abs(v-cons.Point(idx)) > 0.2*cons.MinDistance() {
				t.Fatalf("symbol %d sc %d: %v not on lattice", k, i, v)
			}
		}
	}
}

func TestObserveSymbolSegmentsAgreeWithoutInterference(t *testing.T) {
	// Proposition 3.1 end-to-end: all ISI-free segments yield the same
	// equalised values (channel delay spread 1 → offsets ≥ 1 are ISI-free).
	f, _, _ := buildFrame(t, 4, "QPSK 1/2", 60, channel.Indoor2Tap(), 10000, 5)
	ref, err := f.ObserveSymbol(0, f.Grid().CP)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{1, 4, 8, 12, 15} {
		obs, err := f.ObserveSymbol(0, off)
		if err != nil {
			t.Fatal(err)
		}
		if d := dsp.MaxAbsDiff(ref.Data, obs.Data); d > 1e-5 {
			t.Fatalf("segment %d deviates by %g", off, d)
		}
	}
}

func TestObservePreambleMatchesLTF(t *testing.T) {
	f, _, _ := buildFrame(t, 5, "QPSK 1/2", 60, channel.Indoor2Tap(), 10000, 5)
	pre, err := f.ObservePreambleAll([]int{8})
	if err != nil {
		t.Fatal(err)
	}
	obs := pre[0]
	scs := ofdm.DataSubcarriers()
	for s := 0; s < 2; s++ {
		for j, sc := range scs {
			want := ofdm.LTFValue(sc)
			if cmplx.Abs(obs[s][j]-want) > 0.08 {
				t.Fatalf("LTF %d sc %d: got %v want %v", s, sc, obs[s][j], want)
			}
		}
	}
}

func TestNoiseEstimateTracksSNR(t *testing.T) {
	f10, _, _ := buildFrame(t, 6, "QPSK 1/2", 60, nil, 10, 5)
	f25, _, _ := buildFrame(t, 6, "QPSK 1/2", 60, nil, 25, 5)
	n10, err := f10.NoiseEstimate()
	if err != nil {
		t.Fatal(err)
	}
	n25, err := f25.NoiseEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if n10 < n25*10 {
		t.Fatalf("noise estimates not ordered: 10dB→%v 25dB→%v", n10, n25)
	}
}

func TestDecodeDataCleanAllMCS(t *testing.T) {
	for _, mcs := range wifi.StandardMCS() {
		f, _, psdu := buildFrame(t, 7, mcs.Name, 100, channel.Indoor2Tap(), 10000, 5)
		res, err := DecodeData(f, mcs, len(psdu), StandardDecider{})
		if err != nil {
			t.Fatalf("%s: %v", mcs.Name, err)
		}
		if !res.FCSOK || !bytes.Equal(res.PSDU, psdu) {
			t.Fatalf("%s: clean decode failed", mcs.Name)
		}
	}
}

func TestDecodeDataAtOperatingSNR(t *testing.T) {
	// Each paper MCS at its calibrated operating SNR must decode reliably.
	cases := []struct {
		name string
		snr  float64
	}{
		{"QPSK 1/2", 10}, {"16-QAM 1/2", 17}, {"64-QAM 2/3", 25},
	}
	for _, c := range cases {
		ok := 0
		const trials = 20
		for i := 0; i < trials; i++ {
			f, _, psdu := buildFrame(t, int64(100+i), c.name, 100, channel.Indoor2Tap(), c.snr, 5)
			mcs, _ := wifi.MCSByName(c.name)
			res, err := DecodeData(f, mcs, len(psdu), StandardDecider{})
			if err != nil {
				t.Fatal(err)
			}
			if res.FCSOK && bytes.Equal(res.PSDU, psdu) {
				ok++
			}
		}
		if ok < trials*9/10 {
			t.Fatalf("%s at %v dB: only %d/%d packets", c.name, c.snr, ok, trials)
		}
	}
}

func TestDecodeDataRecoversScramblerSeed(t *testing.T) {
	r := dsp.NewRand(8)
	mcs, _ := wifi.MCSByName("QPSK 1/2")
	for _, seed := range []uint8{0x5D, 0x01, 0x7F, 0x2A} {
		cfg := wifi.TxConfig{Grid: ofdm.Native80211Grid(), MCS: mcs, ScramblerSeed: seed, Gain: 1}
		psdu := wifi.BuildPSDU(r.Bytes(40))
		p, err := wifi.BuildPPDU(cfg, psdu)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFrame(cfg.Grid, p.Samples, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DecodeData(f, mcs, len(psdu), StandardDecider{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.FCSOK || res.ScramblerSeed != seed {
			t.Fatalf("seed %#x: FCS=%v recovered=%#x", seed, res.FCSOK, res.ScramblerSeed)
		}
	}
}

func TestRecoverScramblerSeedDirect(t *testing.T) {
	for _, seed := range []uint8{1, 0x5D, 0x7F} {
		seq := coding.NewScrambler(seed).Sequence(7)
		if got := RecoverScramblerSeed(seq); got != seed {
			t.Fatalf("seed %#x recovered as %#x", seed, got)
		}
	}
	if RecoverScramblerSeed([]byte{1}) != coding.DefaultScramblerSeed {
		t.Fatal("short input should fall back to default")
	}
}

func TestDecodeSignal(t *testing.T) {
	f, p, _ := buildFrame(t, 9, "64-QAM 2/3", 120, channel.Indoor2Tap(), 30, 5)
	mcs, n, err := DecodeSignal(f)
	if err != nil {
		t.Fatal(err)
	}
	if mcs.Name != "64-QAM 2/3" || n != p.PSDULen {
		t.Fatalf("SIGNAL decoded as %s/%d", mcs.Name, n)
	}
}

func TestDecodeFrameSelfContained(t *testing.T) {
	f, _, psdu := buildFrame(t, 10, "16-QAM 1/2", 90, channel.Indoor2Tap(), 25, 5)
	res, mcs, err := DecodeFrame(f, StandardDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if mcs.Name != "16-QAM 1/2" || !res.FCSOK || !bytes.Equal(res.PSDU, psdu) {
		t.Fatal("DecodeFrame failed")
	}
}

func TestSynchronizeFindsFrame(t *testing.T) {
	for _, pad := range []int{50, 333, 1000} {
		f, _, _ := buildFrame(t, int64(11+pad), "QPSK 1/2", 60, channel.Indoor2Tap(), 20, pad)
		res, err := Synchronize(f.Samples(), f.Grid())
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		if d := res.FrameStart - pad; d < -2 || d > 2 {
			t.Fatalf("pad %d: frame start %d (error %d)", pad, res.FrameStart, d)
		}
		if res.Metric < 0.8 {
			t.Fatalf("pad %d: weak metric %v", pad, res.Metric)
		}
	}
}

func TestSynchronizeEstimatesCFO(t *testing.T) {
	f, _, _ := buildFrame(t, 12, "QPSK 1/2", 60, nil, 30, 100)
	stream := append([]complex128{}, f.Samples()...)
	const trueCFO = 0.13
	channel.ApplyCFO(stream, trueCFO, 64, 0)
	res, err := Synchronize(stream, f.Grid())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CFO-trueCFO) > 0.02 {
		t.Fatalf("CFO estimate %v, want %v", res.CFO, trueCFO)
	}
	// And correcting it restores decodability.
	CorrectCFO(stream, res.CFO, f.Grid())
	f2, err := NewFrame(f.Grid(), stream, res.FrameStart)
	if err != nil {
		t.Fatal(err)
	}
	mcs, _ := wifi.MCSByName("QPSK 1/2")
	resD, err := DecodeData(f2, mcs, 60, StandardDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if !resD.FCSOK {
		t.Fatal("decode after CFO correction failed")
	}
}

func TestSynchronizeRejectsNoise(t *testing.T) {
	r := dsp.NewRand(13)
	noise := r.CNVector(2000, 1)
	if _, err := Synchronize(noise, ofdm.Native80211Grid()); err == nil {
		t.Fatal("pure noise should not synchronize")
	}
	if _, err := Synchronize(make([]complex128, 10), ofdm.Native80211Grid()); err == nil {
		t.Fatal("short input should fail")
	}
}

func TestSynchronizeCFOProperty(t *testing.T) {
	f, _, _ := buildFrame(t, 14, "QPSK 1/2", 40, nil, 35, 80)
	base := f.Samples()
	fn := func(seed int64) bool {
		r := dsp.NewRand(seed)
		cfo := (r.Float64() - 0.5) * 0.4 // ±0.2 subcarrier spacings
		stream := append([]complex128{}, base...)
		channel.ApplyCFO(stream, cfo, 64, 0)
		res, err := Synchronize(stream, ofdm.Native80211Grid())
		if err != nil {
			return false
		}
		return math.Abs(res.CFO-cfo) < 0.03
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestISIFreeDetect(t *testing.T) {
	// Channel with delay spread d: offsets < d are ISI-affected. The
	// detector should return approximately d.
	r := dsp.NewRand(15)
	for _, d := range []int{0, 2, 5} {
		taps := make([]complex128, d+1)
		taps[0] = 1
		if d > 0 {
			taps[d] = complex(0.6, 0.2) // strong echo so ISI is detectable
		}
		ch := channel.NewMultipath(taps)
		f, p, _ := buildFrame(t, int64(16+d), "QPSK 1/2", 400, ch, 30, 5)
		var starts []int
		for k := 0; k < p.NumDataSymbols; k++ {
			starts = append(starts, f.DataSymbolStart(k))
		}
		got := ISIFreeDetect(f.Samples(), starts, f.Grid(), 0.92)
		if got < d || got > d+2 {
			t.Fatalf("delay %d: detected ISI-free offset %d", d, got)
		}
	}
	_ = r
}

func TestObserveSegmentsBatch(t *testing.T) {
	f, _, _ := buildFrame(t, 17, "QPSK 1/2", 50, nil, 10000, 5)
	segs, err := ofdm.SegmentPlan(16, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := f.ObserveSegments(0, segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 4 {
		t.Fatalf("got %d observations", len(obs))
	}
	for i := 1; i < len(obs); i++ {
		if dsp.MaxAbsDiff(obs[0].Data, obs[i].Data) > 1e-6 {
			t.Fatal("clean segments should agree")
		}
	}
}

func TestNewFrameErrors(t *testing.T) {
	if _, err := NewFrame(ofdm.Grid{NFFT: 48}, make([]complex128, 100), 0); err == nil {
		t.Fatal("bad grid should fail")
	}
	if _, err := NewFrame(ofdm.Native80211Grid(), make([]complex128, 10), 0); err == nil {
		t.Fatal("short samples should fail")
	}
}

func BenchmarkDecodeData400BQPSK(b *testing.B) {
	f, _, psdu := buildFrame(b, 1, "QPSK 1/2", 400, channel.Indoor2Tap(), 15, 5)
	mcs, _ := wifi.MCSByName("QPSK 1/2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeData(f, mcs, len(psdu), StandardDecider{}); err != nil {
			b.Fatal(err)
		}
	}
}
