package rx

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/coding"
	"repro/internal/modem"
	"repro/internal/wifi"
)

// ParallelDecider is implemented by SymbolDeciders whose per-symbol
// decisions are independent given the frame, so DecodeDataParallel can fan
// symbols across workers. ForkDecider returns a decider equivalent to the
// receiver but with its own scratch state, or ok == false when the
// decider's current configuration makes decisions order-dependent (e.g.
// CPRecycle's §4.3 continuous model update folds each decoded symbol's
// residuals into the next symbol's scales) — DecodeDataParallel then falls
// back to the serial path, keeping output identical either way.
type ParallelDecider interface {
	SymbolDecider
	ForkDecider() (SymbolDecider, bool)
}

// ForkDecider implements ParallelDecider: the standard slicer is
// stateless, so the decider forks to itself.
func (d StandardDecider) ForkDecider() (SymbolDecider, bool) { return d, true }

// DecodeDataParallel is DecodeData with the per-symbol decisions fanned
// across up to workers goroutines. Each worker decides a stride of the
// symbol indices on its own Frame.ScratchFork view and ForkDecider clone,
// and the deinterleaved coded blocks are merged in symbol order, so the
// bit stream entering the Viterbi decoder — and therefore the Result — is
// bit-identical to the serial path. When workers <= 1, the decider does
// not implement ParallelDecider, or its state forbids forking, the serial
// DecodeData runs instead.
func DecodeDataParallel(f *Frame, mcs wifi.MCS, psduLen int, decider SymbolDecider, workers int) (Result, error) {
	nSyms := mcs.SymbolsForPSDU(psduLen)
	if workers > nSyms {
		workers = nSyms
	}
	pd, ok := decider.(ParallelDecider)
	if workers <= 1 || !ok {
		return DecodeData(f, mcs, psduLen, decider)
	}
	// Fork frames and deciders up front; any refusal falls back to serial
	// before any goroutine starts.
	frames := make([]*Frame, workers)
	deciders := make([]SymbolDecider, workers)
	frames[0], deciders[0] = f, decider
	for w := 1; w < workers; w++ {
		fork, okF := pd.ForkDecider()
		if !okF {
			return DecodeData(f, mcs, psduLen, decider)
		}
		fw, err := f.ScratchFork()
		if err != nil {
			return Result{}, err
		}
		frames[w], deciders[w] = fw, fork
	}

	obsStart := time.Now()
	coded := make([]byte, nSyms*mcs.Ncbps)
	errs := make([]error, nSyms)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			frame, dec := frames[w], deciders[w]
			cons := modem.New(mcs.Scheme)
			il := coding.MustInterleaver(mcs.Ncbps, mcs.Nbpsc)
			nb := cons.BitsPerSymbol()
			bitBuf := make([]byte, nb)
			blk := make([]byte, 0, mcs.Ncbps)
			for k := w; k < nSyms; k += workers {
				idxs, err := dec.DecideSymbol(frame, k, cons)
				if err != nil {
					errs[k] = err
					return
				}
				if len(idxs) != frame.DataSubcarrierCount() {
					errs[k] = fmt.Errorf("rx: decider returned %d decisions", len(idxs))
					return
				}
				blk = blk[:0]
				for _, idx := range idxs {
					cons.BitsOf(idx, bitBuf)
					blk = append(blk, bitBuf...)
				}
				il.DeinterleaveInto(coded[k*mcs.Ncbps:(k+1)*mcs.Ncbps], blk)
			}
		}(w)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("rx: symbol %d: %w", k, err)
		}
	}
	stageObserve.ObserveSince(obsStart)
	return decodeCodedData(coded, mcs, psduLen, nSyms)
}
