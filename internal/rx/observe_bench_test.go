package rx

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/ofdm"
	"repro/internal/wifi"
)

// benchFrame builds a Fig. 8-style frame: a QPSK packet on the 4×
// composite grid with mild noise, plus the 16-segment plan.
func benchFrame(b *testing.B) (*Frame, []int) {
	b.Helper()
	g := ofdm.WideGrid(64, 16, 4, 64)
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		b.Fatal(err)
	}
	r := dsp.NewRand(3)
	psdu := wifi.BuildPSDU(r.Bytes(146))
	p, err := wifi.BuildPPDU(wifi.TxConfig{Grid: g, MCS: m, Gain: 1}, psdu)
	if err != nil {
		b.Fatal(err)
	}
	samples := make([]complex128, len(p.Samples)+200)
	copy(samples[100:], p.Samples)
	channel.AWGN(r, samples, channel.NoisePowerForSNR(dsp.Power(p.Samples), 25))
	f, err := NewFrame(g, samples, 100)
	if err != nil {
		b.Fatal(err)
	}
	segs, err := ofdm.SegmentPlan(g.CP, 4, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	return f, segs
}

// BenchmarkObserveSegments measures the batch multi-window observation of
// one data symbol — the per-symbol hot path of every CPRecycle-family
// receiver (one seed FFT + 15 sparse sliding-DFT updates, zero
// allocations after the first call).
func BenchmarkObserveSegments(b *testing.B) {
	f, segs := benchFrame(b)
	if _, err := f.ObserveSegments(0, segs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ObserveSegments(0, segs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveSymbolPerSegment measures the same 16 windows through
// repeated single-window observations — the shape of the pre-batch hot
// path, one full FFT per window (pooled-pilot CPE handling aside).
func BenchmarkObserveSymbolPerSegment(b *testing.B) {
	f, segs := benchFrame(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, off := range segs {
			if _, err := f.ObserveSymbol(0, off); err != nil {
				b.Fatal(err)
			}
		}
	}
}
