package rx

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/ofdm"
	"repro/internal/wifi"
)

// parallelTestFrame builds a decodable noisy frame plus its transmitted
// PSDU and MCS.
func parallelTestFrame(t *testing.T, snrDB float64) (*Frame, wifi.MCS, []byte) {
	t.Helper()
	g := ofdm.WideGrid(64, 16, 2, 32)
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	r := dsp.NewRand(71)
	psdu := wifi.BuildPSDU(r.Bytes(96))
	p, err := wifi.BuildPPDU(wifi.TxConfig{Grid: g, MCS: m, Gain: 1}, psdu)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]complex128, len(p.Samples)+120)
	copy(samples[60:], p.Samples)
	channel.AWGN(r, samples, channel.NoisePowerForSNR(dsp.Power(p.Samples), snrDB))
	f, err := NewFrame(g, samples, 60)
	if err != nil {
		t.Fatal(err)
	}
	return f, m, psdu
}

// TestDecodeDataParallelMatchesSerial pins the parallel decode to the
// serial one bit for bit across worker counts, including worker counts
// that exceed the symbol count. The noise level is chosen so some symbols
// carry bit errors — the merge must preserve them identically, not just
// reproduce a clean packet.
func TestDecodeDataParallelMatchesSerial(t *testing.T) {
	for _, snr := range []float64{30, 4} {
		f, m, _ := parallelTestFrame(t, snr)
		want, err := DecodeData(f, m, 100, StandardDecider{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 7, 1000} {
			got, err := DecodeDataParallel(f, m, 100, StandardDecider{}, workers)
			if err != nil {
				t.Fatalf("snr=%v workers=%d: %v", snr, workers, err)
			}
			if !bytes.Equal(got.PSDU, want.PSDU) || got.FCSOK != want.FCSOK || got.ScramblerSeed != want.ScramblerSeed {
				t.Fatalf("snr=%v workers=%d: parallel decode diverged from serial", snr, workers)
			}
		}
	}
}

// forkRefusingDecider wraps StandardDecider but refuses to fork, forcing
// the serial fallback.
type forkRefusingDecider struct{ StandardDecider }

func (forkRefusingDecider) ForkDecider() (SymbolDecider, bool) { return nil, false }

// countingDecider counts DecideSymbol invocations. It deliberately does
// NOT implement ParallelDecider (no embedding, which would promote
// StandardDecider.ForkDecider), so DecodeDataParallel must fall back to
// the serial path.
type countingDecider struct {
	std   StandardDecider
	calls int
}

func (c *countingDecider) DecideSymbol(f *Frame, symIdx int, cons *modem.Constellation) ([]int, error) {
	c.calls++
	return c.std.DecideSymbol(f, symIdx, cons)
}

// TestDecodeDataParallelFallbacks checks the serial fallbacks: a decider
// that is not a ParallelDecider, and one whose ForkDecider refuses.
func TestDecodeDataParallelFallbacks(t *testing.T) {
	f, m, _ := parallelTestFrame(t, 30)
	want, err := DecodeData(f, m, 100, StandardDecider{})
	if err != nil {
		t.Fatal(err)
	}
	cd := &countingDecider{}
	got, err := DecodeDataParallel(f, m, 100, cd, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cd.calls != m.SymbolsForPSDU(100) {
		t.Fatalf("non-parallel decider saw %d calls, want %d (serial fallback)", cd.calls, m.SymbolsForPSDU(100))
	}
	if !bytes.Equal(got.PSDU, want.PSDU) {
		t.Fatal("fallback decode diverged")
	}
	got, err = DecodeDataParallel(f, m, 100, forkRefusingDecider{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.PSDU, want.PSDU) {
		t.Fatal("fork-refusing fallback decode diverged")
	}
}

// TestScratchForkObservationsMatch checks that observations on a fork are
// bit-identical to observations on the parent frame.
func TestScratchForkObservationsMatch(t *testing.T) {
	f, _, _ := parallelTestFrame(t, 20)
	segs, err := ofdm.SegmentPlan(f.Grid().CP, 2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	fork, err := f.ScratchFork()
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.ObserveSegments(1, segs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fork.ObserveSegments(1, segs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].CPE != want[i].CPE || got[i].PilotDev != want[i].PilotDev {
			t.Fatalf("segment %d: fork CPE/PilotDev diverge", i)
		}
		if d := dsp.MaxAbsDiff(got[i].Data, want[i].Data); d != 0 {
			t.Fatalf("segment %d: fork observations differ by %g", i, d)
		}
		// The fork must answer from its own scratch, not the parent's —
		// that independence is what makes concurrent observation safe.
		if &got[i].Data[0] == &want[i].Data[0] {
			t.Fatalf("segment %d: fork handed out the parent's scratch buffer", i)
		}
	}
}
