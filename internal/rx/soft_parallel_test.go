package rx

import (
	"bytes"
	"testing"

	"repro/internal/modem"
)

// TestDecodeDataSoftParallelMatchesSerial pins the parallel soft decode
// to the serial one bit for bit across worker counts, including worker
// counts that exceed the symbol count. The low-SNR case makes some
// subcarrier confidences genuinely informative (and some symbols carry
// bit errors), so the symbol-ordered LLR merge is exercised on weights
// that actually change the trellis, not just on a clean packet.
func TestDecodeDataSoftParallelMatchesSerial(t *testing.T) {
	for _, snr := range []float64{30, 4} {
		f, m, _ := parallelTestFrame(t, snr)
		want, err := DecodeDataSoft(f, m, 100, StandardDecider{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 7, 1000} {
			got, err := DecodeDataSoftParallel(f, m, 100, StandardDecider{}, workers)
			if err != nil {
				t.Fatalf("snr=%v workers=%d: %v", snr, workers, err)
			}
			if !bytes.Equal(got.PSDU, want.PSDU) || got.FCSOK != want.FCSOK || got.ScramblerSeed != want.ScramblerSeed {
				t.Fatalf("snr=%v workers=%d: parallel soft decode diverged from serial", snr, workers)
			}
		}
	}
}

// hardOnlyDecider implements ParallelDecider but not SoftSymbolDecider,
// so DecodeDataSoftParallel must route it to the hard-decision
// DecodeDataParallel (mirroring DecodeDataSoft's hard fallback).
type hardOnlyDecider struct{}

func (hardOnlyDecider) DecideSymbol(f *Frame, symIdx int, cons *modem.Constellation) ([]int, error) {
	return StandardDecider{}.DecideSymbol(f, symIdx, cons)
}
func (d hardOnlyDecider) ForkDecider() (SymbolDecider, bool) { return d, true }

// softForkRefuser is a soft decider whose ForkDecider refuses, forcing
// the serial soft fallback.
type softForkRefuser struct{ StandardDecider }

func (softForkRefuser) ForkDecider() (SymbolDecider, bool) { return nil, false }

// softForkLoser forks successfully but its fork is hard-only, so the
// parallel soft path must fall back to serial soft decoding rather than
// silently dropping the confidences.
type softForkLoser struct{ StandardDecider }

func (softForkLoser) ForkDecider() (SymbolDecider, bool) { return hardOnlyDecider{}, true }

func TestDecodeDataSoftParallelFallbacks(t *testing.T) {
	f, m, _ := parallelTestFrame(t, 4)
	wantSoft, err := DecodeDataSoft(f, m, 100, StandardDecider{})
	if err != nil {
		t.Fatal(err)
	}
	wantHard, err := DecodeData(f, m, 100, StandardDecider{})
	if err != nil {
		t.Fatal(err)
	}

	got, err := DecodeDataSoftParallel(f, m, 100, hardOnlyDecider{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.PSDU, wantHard.PSDU) || got.FCSOK != wantHard.FCSOK {
		t.Fatal("hard-only decider did not match the hard parallel path")
	}

	got, err = DecodeDataSoftParallel(f, m, 100, softForkRefuser{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.PSDU, wantSoft.PSDU) || got.FCSOK != wantSoft.FCSOK {
		t.Fatal("fork-refusing soft decider did not match serial soft decode")
	}

	got, err = DecodeDataSoftParallel(f, m, 100, softForkLoser{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.PSDU, wantSoft.PSDU) || got.FCSOK != wantSoft.FCSOK {
		t.Fatal("soft-losing fork did not fall back to serial soft decode")
	}
}
