package rx

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/modem"
	"repro/internal/wifi"
)

func TestStandardSoftMatchesHardDecisions(t *testing.T) {
	f, p, _ := buildFrame(t, 30, "16-QAM 1/2", 80, channel.Indoor2Tap(), 20, 5)
	cons := modem.New(p.Cfg.MCS.Scheme)
	for k := 0; k < 3; k++ {
		hard, err := (StandardDecider{}).DecideSymbol(f, k, cons)
		if err != nil {
			t.Fatal(err)
		}
		soft, conf, err := (StandardDecider{}).DecideSymbolSoft(f, k, cons)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hard {
			if hard[i] != soft[i] {
				t.Fatalf("symbol %d sc %d: hard %d vs soft %d", k, i, hard[i], soft[i])
			}
			if conf[i] < 0 {
				t.Fatalf("negative confidence %v", conf[i])
			}
		}
	}
}

func TestDecodeDataSoftCleanChannel(t *testing.T) {
	for _, name := range []string{"QPSK 1/2", "64-QAM 2/3"} {
		f, _, psdu := buildFrame(t, 31, name, 100, channel.Indoor2Tap(), 10000, 5)
		mcs, _ := wifi.MCSByName(name)
		res, err := DecodeDataSoft(f, mcs, len(psdu), StandardDecider{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.FCSOK || !bytes.Equal(res.PSDU, psdu) {
			t.Fatalf("%s: clean soft decode failed", name)
		}
	}
}

func TestDecodeDataSoftAtLeastAsGoodAsHard(t *testing.T) {
	// Over noisy packets near the MCS cliff, soft decoding must not lose
	// to hard decoding.
	mcs, _ := wifi.MCSByName("16-QAM 1/2")
	hardOK, softOK := 0, 0
	const trials = 20
	for i := 0; i < trials; i++ {
		f, _, psdu := buildFrame(t, int64(200+i), "16-QAM 1/2", 150, channel.Indoor2Tap(), 14.5, 5)
		rh, err := DecodeData(f, mcs, len(psdu), StandardDecider{})
		if err != nil {
			t.Fatal(err)
		}
		if rh.FCSOK {
			hardOK++
		}
		rs, err := DecodeDataSoft(f, mcs, len(psdu), StandardDecider{})
		if err != nil {
			t.Fatal(err)
		}
		if rs.FCSOK {
			softOK++
		}
	}
	t.Logf("near-cliff 16-QAM at 14.5 dB: hard %d/%d, soft %d/%d", hardOK, trials, softOK, trials)
	if softOK < hardOK {
		t.Fatalf("soft (%d) must not lose to hard (%d)", softOK, hardOK)
	}
}

func TestDecodeDataSoftFallsBackForHardDecider(t *testing.T) {
	// A decider without the soft interface silently uses the hard path.
	f, _, psdu := buildFrame(t, 32, "QPSK 1/2", 60, channel.Indoor2Tap(), 25, 5)
	mcs, _ := wifi.MCSByName("QPSK 1/2")
	type hardOnly struct{ SymbolDecider }
	res, err := DecodeDataSoft(f, mcs, len(psdu), hardOnly{StandardDecider{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FCSOK || !bytes.Equal(res.PSDU, psdu) {
		t.Fatal("fallback decode failed")
	}
}

func TestNormalizeConfidences(t *testing.T) {
	w := normalizeConfidences([]float64{0, 1, 2, 100})
	if w[0] != 0 {
		t.Fatal("zero stays zero")
	}
	if w[3] != 4 {
		t.Fatalf("clipping failed: %v", w[3])
	}
	// All-zero input must not divide by zero.
	z := normalizeConfidences([]float64{0, 0, 0})
	for _, v := range z {
		if v != 0 {
			t.Fatal("all-zero confidences should stay zero")
		}
	}
}
