package core

import (
	"testing"

	"repro/internal/modem"
	"repro/internal/rx"
	"repro/internal/wifi"
)

func consFor(m wifi.MCS) *modem.Constellation { return modem.New(m.Scheme) }

func TestCPRecycleSoftMatchesHardDecisions(t *testing.T) {
	s := aciScenario(-15, 17, 57)
	f, _, m := runScenario(t, s, 900, "16-QAM 1/2", 60)
	segs := segments16(t, f.Grid())
	hardRx, err := NewReceiver(f, Config{Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	softRx, err := NewReceiver(f, Config{Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	cons := consFor(m)
	for k := 0; k < 4; k++ {
		hard, err := hardRx.DecideSymbol(f, k, cons)
		if err != nil {
			t.Fatal(err)
		}
		soft, conf, err := softRx.DecideSymbolSoft(f, k, cons)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hard {
			if hard[i] != soft[i] {
				t.Fatalf("symbol %d sc %d: hard %d vs soft %d", k, i, hard[i], soft[i])
			}
			if conf[i] < 0 {
				t.Fatalf("negative confidence")
			}
		}
	}
}

func TestCPRecycleSoftDecodesUnderACI(t *testing.T) {
	var hardOK, softOK int
	const trials = 8
	for i := 0; i < trials; i++ {
		s := aciScenario(-15, 17, 57)
		f, _, m := runScenario(t, s, int64(950+i), "16-QAM 1/2", 100)
		segs := segments16(t, f.Grid())
		h, err := NewReceiver(f, Config{Segments: segs})
		if err != nil {
			t.Fatal(err)
		}
		rh, err := rx.DecodeData(f, m, 100, h)
		if err != nil {
			t.Fatal(err)
		}
		if rh.FCSOK {
			hardOK++
		}
		sRx, err := NewReceiver(f, Config{Segments: segs})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := rx.DecodeDataSoft(f, m, 100, sRx)
		if err != nil {
			t.Fatal(err)
		}
		if rs.FCSOK {
			softOK++
		}
	}
	t.Logf("CPRecycle ACI -15dB 16-QAM: hard %d/%d, soft %d/%d", hardOK, trials, softOK, trials)
	if softOK < hardOK {
		t.Fatalf("soft (%d) must not lose to hard (%d)", softOK, hardOK)
	}
}

func TestSphereKDESoftUnitConfidence(t *testing.T) {
	s := aciScenario(-10, 17, 57)
	f, _, m := runScenario(t, s, 990, "QPSK 1/2", 50)
	segs := segments16(t, f.Grid())
	r, err := NewReceiver(f, Config{Segments: segs, Decision: DecisionSphereKDE})
	if err != nil {
		t.Fatal(err)
	}
	_, conf, err := r.DecideSymbolSoft(f, 0, consFor(m))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conf {
		if c != 1 {
			t.Fatalf("sphere-KDE confidence %v, want 1", c)
		}
	}
}
