package core

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/ofdm"
	"repro/internal/rx"
)

// NaiveDecider is the simple statistical decoder of §3.3 (the authors'
// earlier ShiftFFT, Eq. 3): it picks the lattice point minimising the
// summed Euclidean deviation of the received values over all segments,
// l* = argmin_l Σ_j |X̂ʲ − l|. The paper uses it to motivate CPRecycle's
// probabilistic model; it works at mild interference and collapses below
// −10 dB SIR.
type NaiveDecider struct {
	// Segments lists the CP offsets to combine.
	Segments []int
}

// ForkDecider implements rx.ParallelDecider: the naive decoder holds no
// cross-symbol state, so it forks to itself.
func (n NaiveDecider) ForkDecider() (rx.SymbolDecider, bool) { return n, true }

// DecideSymbol implements rx.SymbolDecider.
func (n NaiveDecider) DecideSymbol(f *rx.Frame, symIdx int, cons *modem.Constellation) ([]int, error) {
	if len(n.Segments) == 0 {
		return nil, fmt.Errorf("core: naive decoder has no segments")
	}
	obs, err := f.ObserveSegments(symIdx, n.Segments)
	if err != nil {
		return nil, err
	}
	nSC := f.DataSubcarrierCount()
	out := make([]int, nSC)
	for i := 0; i < nSC; i++ {
		best, bestSum := 0, math.Inf(1)
		for li, l := range cons.Points() {
			sum := 0.0
			for j := range obs {
				sum += dsp.Abs(obs[j].Data[i] - l)
			}
			if sum < bestSum {
				bestSum, best = sum, li
			}
		}
		out[i] = best
	}
	return out, nil
}

// OracleDecider is the impractical upper bound of §3.2: it observes the
// interference in isolation (the simulator provides the interference-plus-
// noise waveform that the paper obtains "by muting the sender") and, for
// every subcarrier of every symbol, picks the FFT segment with the lowest
// interference power before slicing to the nearest lattice point.
type OracleDecider struct {
	// InterferenceOnly is the received stream with the sender muted,
	// sample-aligned with the frame's stream.
	InterferenceOnly []complex128
	// Segments lists the CP offsets to choose from.
	Segments []int

	demod *ofdm.Demodulator
	ip    []dsp.Planar // reused interference window buffers
	sel   []int        // data-subcarrier bins, for sparse slides
	out   []int
}

// ForkDecider implements rx.ParallelDecider: per-symbol oracle choices
// depend only on the interference stream, so a fork is a fresh decider
// over the same inputs (demodulation scratch is rebuilt lazily).
func (o *OracleDecider) ForkDecider() (rx.SymbolDecider, bool) {
	return &OracleDecider{InterferenceOnly: o.InterferenceOnly, Segments: o.Segments}, true
}

// DecideSymbol implements rx.SymbolDecider.
func (o *OracleDecider) DecideSymbol(f *rx.Frame, symIdx int, cons *modem.Constellation) ([]int, error) {
	if len(o.Segments) == 0 {
		return nil, fmt.Errorf("core: oracle has no segments")
	}
	if o.demod == nil || o.demod.Grid() != f.Grid() {
		d, err := ofdm.NewDemodulator(f.Grid())
		if err != nil {
			return nil, err
		}
		o.demod = d
		o.sel = o.sel[:0]
		for _, sc := range ofdm.DataSubcarriers() {
			o.sel = append(o.sel, f.Grid().Bin(sc))
		}
	}
	obs, err := f.ObserveSegments(symIdx, o.Segments)
	if err != nil {
		return nil, err
	}
	symStart := f.DataSymbolStart(symIdx)
	// Interference power per (segment, bin). Equalisation scales every
	// segment of a subcarrier identically, so raw bin power preserves the
	// per-subcarrier ordering the oracle needs. The windows come from the
	// planar batch sliding-DFT path, reusing the decider's buffers.
	ip, err := o.demod.SegmentsOnPlanar(o.InterferenceOnly, symStart, o.Segments, o.sel, o.ip)
	if err != nil {
		return nil, fmt.Errorf("core: oracle interference window: %w", err)
	}
	o.ip = ip
	g := f.Grid()
	scs := ofdm.DataSubcarriers()
	if len(o.out) != len(scs) {
		o.out = make([]int, len(scs))
	}
	out := o.out
	for i, sc := range scs {
		bin := g.Bin(sc)
		bestJ, bestP := 0, math.Inf(1)
		for j := range o.Segments {
			vr, vi := ip[j].Re[bin], ip[j].Im[bin]
			p := vr*vr + vi*vi
			if p < bestP {
				bestP, bestJ = p, j
			}
		}
		out[i] = cons.Nearest(obs[bestJ].Data[i])
	}
	return out, nil
}

// SegmentInterferencePower measures, for the OFDM symbol starting at
// symStart in an interference-only stream, the interference power at every
// (segment, bin): the quantity plotted in Fig. 4a/4b. Powers are in linear
// units; convert with dsp.DB. The windows come from the batch sliding-DFT
// path (one seed FFT plus incremental updates), like every receiver path.
func SegmentInterferencePower(interference []complex128, g ofdm.Grid, symStart int, segments []int) ([][]float64, error) {
	d, err := ofdm.NewDemodulator(g)
	if err != nil {
		return nil, err
	}
	segBins, err := d.SegmentsPlanar(interference, symStart, segments, nil)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(segments))
	for j, w := range segBins {
		row := make([]float64, w.Len())
		for k := range row {
			row[k] = w.Re[k]*w.Re[k] + w.Im[k]*w.Im[k]
		}
		out[j] = row
	}
	return out, nil
}

// OracleSpectrum returns, per bin, the minimum over segments of the
// interference power (what an Oracle receiver leaves behind) and the
// standard window's interference power, averaged over count symbols —
// the two curves of Fig. 4a.
func OracleSpectrum(interference []complex128, g ofdm.Grid, firstSymStart, count int, segments []int) (oracle, standard []float64, err error) {
	oracle = make([]float64, g.NFFT)
	standard = make([]float64, g.NFFT)
	for s := 0; s < count; s++ {
		start := firstSymStart + s*g.SymLen()
		pw, err := SegmentInterferencePower(interference, g, start, segments)
		if err != nil {
			return nil, nil, err
		}
		for bin := 0; bin < g.NFFT; bin++ {
			minP := math.Inf(1)
			for j := range segments {
				if pw[j][bin] < minP {
					minP = pw[j][bin]
				}
			}
			oracle[bin] += minP
			standard[bin] += pw[len(segments)-1][bin] // last segment = standard window
		}
	}
	for bin := 0; bin < g.NFFT; bin++ {
		oracle[bin] /= float64(count)
		standard[bin] /= float64(count)
	}
	return oracle, standard, nil
}
