package core

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/interference"
	"repro/internal/kde"
	"repro/internal/modem"
	"repro/internal/ofdm"
	"repro/internal/rx"
	"repro/internal/wifi"
)

func mcs(t testing.TB, name string) wifi.MCS {
	t.Helper()
	m, err := wifi.MCSByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runScenario realises a scenario and returns the frame plus composite.
func runScenario(t testing.TB, s *interference.Scenario, seed int64, mcsName string, psduLen int) (*rx.Frame, *interference.Composite, wifi.MCS) {
	t.Helper()
	r := dsp.NewRand(seed)
	m := mcs(t, mcsName)
	psdu := wifi.BuildPSDU(r.Bytes(psduLen - 4))
	c, err := s.Run(r, psdu, m)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rx.NewFrame(c.Grid, c.Samples, c.FrameStart)
	if err != nil {
		t.Fatal(err)
	}
	return f, c, m
}

// aciScenario is the paper's single adjacent-channel interferer layout:
// 4× composite band, victim at bin 64, interferer offset by the given
// subcarriers (57 = 4-subcarrier guard, §3.2).
func aciScenario(sirDB, snrDB float64, offset int) *interference.Scenario {
	return &interference.Scenario{
		Q:            4,
		VictimCenter: 64,
		SNRdB:        snrDB,
		Channel:      channel.Indoor2Tap(),
		Interferers: []interference.Interferer{
			{CenterOffset: offset, SIRdB: sirDB, Channel: channel.Indoor2Tap()},
		},
	}
}

// segments16 is the paper's default plan: 16 segments across the ISI-free
// CP (stride Q on the composite grid = 1 native sample), skipping the
// offsets corrupted by the 1-sample channel delay spread.
func segments16(t testing.TB, g ofdm.Grid) []int {
	t.Helper()
	q := g.NFFT / 64
	segs, err := ofdm.SegmentPlan(g.CP, q, 16, 2*q)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func decodeWith(t testing.TB, f *rx.Frame, m wifi.MCS, psduLen int, d rx.SymbolDecider) bool {
	t.Helper()
	res, err := rx.DecodeData(f, m, psduLen, d)
	if err != nil {
		t.Fatal(err)
	}
	return res.FCSOK
}

func TestConfigValidate(t *testing.T) {
	g := ofdm.Native80211Grid()
	bad := []Config{
		{},
		{Segments: []int{-1}},
		{Segments: []int{17}},
		{Segments: []int{5, 5}},
		{Segments: []int{8, 4}},
		{Segments: []int{4}, Radius: -1},
	}
	for i, c := range bad {
		if c.Validate(g) == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	good := Config{Segments: []int{2, 9, 16}}
	if err := good.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestReceiverTrainsOnCleanFrame(t *testing.T) {
	s := &interference.Scenario{Q: 1, SNRdB: 30, Channel: channel.Indoor2Tap()}
	f, _, m := runScenario(t, s, 1, "QPSK 1/2", 50)
	segs, err := ofdm.SegmentPlan(16, 1, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	cpr, err := NewReceiver(f, Config{Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	if cpr.NumSegments() != 15 {
		t.Fatalf("segments = %d", cpr.NumSegments())
	}
	// Deviations on a clean 30 dB frame are small: model amplitudes peak
	// near zero.
	mdl := cpr.ModelFor(0)
	if mdl == nil {
		t.Fatal("pooled model missing")
	}
	if mdl.NumSamples() != 2*cpr.NumSegments() {
		t.Fatalf("model samples = %d", mdl.NumSamples())
	}
	if mdl.Density(0.05, 0) < mdl.Density(2, 0) {
		t.Fatal("clean model should concentrate near zero deviation")
	}
	// And decoding still works.
	if !decodeWith(t, f, m, 50, cpr) {
		t.Fatal("CPRecycle failed on a clean frame")
	}
}

// symbolErrors counts decision errors of a decider against the ground
// truth obtained from the interference-free stream.
func symbolErrors(t testing.TB, f *rx.Frame, c *interference.Composite, m wifi.MCS, d rx.SymbolDecider, nSym int) int {
	t.Helper()
	vict := make([]complex128, len(c.Samples))
	for i := range vict {
		vict[i] = c.Samples[i] - c.InterferenceOnly[i]
	}
	fClean, err := rx.NewFrame(c.Grid, vict, c.FrameStart)
	if err != nil {
		t.Fatal(err)
	}
	cons := modem.New(m.Scheme)
	errs := 0
	for k := 0; k < nSym; k++ {
		truth, err := (rx.StandardDecider{}).DecideSymbol(fClean, k, cons)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.DecideSymbol(f, k, cons)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != truth[i] {
				errs++
			}
		}
	}
	return errs
}

func TestCPRecycleBeatsStandardUnderACI(t *testing.T) {
	// The headline result: under strong adjacent-channel interference the
	// CPRecycle decisions carry far fewer symbol errors than the standard
	// receiver's, and packets decode where the standard receiver fails.
	var stdErrs, cprErrs, stdOK, cprOK int
	const trials = 5
	for i := 0; i < trials; i++ {
		s := aciScenario(-18, 10, 57)
		f, c, m := runScenario(t, s, int64(100+i), "QPSK 1/2", 100)
		segs := segments16(t, f.Grid())
		cpr, err := NewReceiver(f, Config{Segments: segs})
		if err != nil {
			t.Fatal(err)
		}
		stdErrs += symbolErrors(t, f, c, m, rx.StandardDecider{}, 15)
		cprErrs += symbolErrors(t, f, c, m, cpr, 15)
		if decodeWith(t, f, m, 100, rx.StandardDecider{}) {
			stdOK++
		}
		if decodeWith(t, f, m, 100, cpr) {
			cprOK++
		}
	}
	t.Logf("ACI -18dB QPSK: symbol errors std %d vs cpr %d; packets std %d/%d cpr %d/%d",
		stdErrs, cprErrs, stdOK, trials, cprOK, trials)
	if cprErrs*2 > stdErrs {
		t.Fatalf("CPRecycle symbol errors (%d) should be well below standard (%d)", cprErrs, stdErrs)
	}
	if cprOK <= stdOK && cprOK < trials {
		t.Fatalf("CPRecycle packets (%d) should beat standard (%d)", cprOK, stdOK)
	}
}

func TestDeciderOrderingACI(t *testing.T) {
	// Expected hierarchy at strong ACI: oracle ≈ cpr < naive < standard in
	// symbol errors, and the ablated variants trail the full receiver.
	errs := map[string]int{}
	const trials = 4
	for i := 0; i < trials; i++ {
		s := aciScenario(-22, 10, 57)
		f, c, m := runScenario(t, s, int64(300+i), "QPSK 1/2", 100)
		segs := segments16(t, f.Grid())
		cpr, err := NewReceiver(f, Config{Segments: segs})
		if err != nil {
			t.Fatal(err)
		}
		noTrack, err := NewReceiver(f, Config{Segments: segs, NoPilotTracking: true})
		if err != nil {
			t.Fatal(err)
		}
		kdeRx, err := NewReceiver(f, Config{Segments: segs, Decision: DecisionSphereKDE})
		if err != nil {
			t.Fatal(err)
		}
		for name, d := range map[string]rx.SymbolDecider{
			"std":     rx.StandardDecider{},
			"naive":   NaiveDecider{Segments: segs},
			"oracle":  &OracleDecider{InterferenceOnly: c.InterferenceOnly, Segments: segs},
			"cpr":     cpr,
			"noTrack": noTrack,
			"kde":     kdeRx,
		} {
			errs[name] += symbolErrors(t, f, c, m, d, 15)
		}
	}
	t.Logf("ACI -22dB QPSK symbol errors: %v", errs)
	if errs["cpr"] >= errs["std"] {
		t.Fatal("CPRecycle should beat the standard receiver")
	}
	if float64(errs["cpr"]) > 1.15*float64(errs["naive"]) {
		t.Fatal("CPRecycle should not trail the naive decoder meaningfully")
	}
	if errs["oracle"] >= errs["std"] {
		t.Fatal("oracle should beat the standard receiver")
	}
	// Ablations: disabling pilot tracking or falling back to the pooled
	// KDE product should not improve on the full receiver.
	if float64(errs["noTrack"]) < 0.95*float64(errs["cpr"]) {
		t.Fatalf("pilot tracking should help: cpr %d vs noTrack %d", errs["cpr"], errs["noTrack"])
	}
	if float64(errs["kde"]) < 0.95*float64(errs["cpr"]) {
		t.Fatalf("weighted decision should beat pooled KDE: cpr %d vs kde %d", errs["cpr"], errs["kde"])
	}
}

func TestNaiveDecoderWorksAtMildInterference(t *testing.T) {
	// Fig. 5a: at SIR −10 dB the naive decoder recovers packets.
	s := aciScenario(-10, 17, 57)
	f, _, m := runScenario(t, s, 300, "QPSK 1/2", 60)
	segs := segments16(t, f.Grid())
	if !decodeWith(t, f, m, 60, NaiveDecider{Segments: segs}) {
		t.Fatal("naive decoder should handle SIR -10 dB QPSK")
	}
}

func TestCPRecycleUnderCCI(t *testing.T) {
	// Co-channel interference: CPRecycle must never lose to the standard
	// receiver, must decode reliably at the moderate SIR where both
	// mechanisms coexist, and the oracle must show the larger headroom the
	// paper's Fig. 11 reports. (Practical CCI gains in this simulator are
	// smaller than the paper's testbed gains — see DESIGN.md §5 — because
	// equal-symbol-period co-channel interference offers little
	// per-segment diversity in a clean discrete-time model.)
	const trials = 6
	stdOK, cprOK := 0, 0
	var stdErrs, cprErrs, oracleErrs int
	for i := 0; i < trials; i++ {
		s := &interference.Scenario{
			Q:       1,
			SNRdB:   10,
			Channel: channel.Indoor2Tap(),
			Interferers: []interference.Interferer{
				{CenterOffset: 0, SIRdB: 10, Channel: channel.Indoor2Tap()},
			},
		}
		f, c, m := runScenario(t, s, int64(400+i), "QPSK 1/2", 60)
		segs, err := ofdm.SegmentPlan(16, 1, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		cpr, err := NewReceiver(f, Config{Segments: segs})
		if err != nil {
			t.Fatal(err)
		}
		if decodeWith(t, f, m, 60, rx.StandardDecider{}) {
			stdOK++
		}
		if decodeWith(t, f, m, 60, cpr) {
			cprOK++
		}
		stdErrs += symbolErrors(t, f, c, m, rx.StandardDecider{}, 10)
		cprErrs += symbolErrors(t, f, c, m, cpr, 10)
		oracleErrs += symbolErrors(t, f, c, m,
			&OracleDecider{InterferenceOnly: c.InterferenceOnly, Segments: segs}, 10)
	}
	t.Logf("CCI +10dB QPSK: packets std %d/%d cpr %d/%d; symbol errors std %d cpr %d oracle %d",
		stdOK, trials, cprOK, trials, stdErrs, cprErrs, oracleErrs)
	if cprOK < stdOK {
		t.Fatalf("CPRecycle (%d) should not lose to standard (%d)", cprOK, stdOK)
	}
	if cprOK < trials-1 {
		t.Fatalf("CPRecycle only %d/%d under moderate CCI", cprOK, trials)
	}
	if cprErrs > stdErrs {
		t.Fatalf("CPRecycle symbol errors (%d) exceed standard (%d)", cprErrs, stdErrs)
	}
	if oracleErrs > cprErrs {
		t.Fatalf("oracle (%d) should lower-bound CPRecycle (%d)", oracleErrs, cprErrs)
	}
}

func TestSegmentInterferenceVariation(t *testing.T) {
	// Fig. 4b: at a band-edge subcarrier, interference power varies
	// substantially (>10 dB) across FFT segments.
	s := aciScenario(-20, 10000, 57)
	f, c, _ := runScenario(t, s, 500, "QPSK 1/2", 60)
	segs := segments16(t, f.Grid())
	start := f.DataSymbolStart(0)
	pw, err := SegmentInterferencePower(c.InterferenceOnly, c.Grid, start, segs)
	if err != nil {
		t.Fatal(err)
	}
	bin := c.Grid.Bin(26) // nearest data subcarrier to the interferer
	minP, maxP := math.Inf(1), 0.0
	for j := range segs {
		if pw[j][bin] < minP {
			minP = pw[j][bin]
		}
		if pw[j][bin] > maxP {
			maxP = pw[j][bin]
		}
	}
	if spread := dsp.DB(maxP / minP); spread < 10 {
		t.Fatalf("segment interference spread only %.1f dB", spread)
	}
}

func TestOracleSpectrumReduction(t *testing.T) {
	// Fig. 4a: within the victim band, the oracle's per-subcarrier minimum
	// is far below the standard window's interference power on average.
	s := aciScenario(-20, 10000, 57)
	f, c, _ := runScenario(t, s, 600, "QPSK 1/2", 200)
	segs := segments16(t, f.Grid())
	oracle, std, err := OracleSpectrum(c.InterferenceOnly, c.Grid, f.DataSymbolStart(0), 20, segs)
	if err != nil {
		t.Fatal(err)
	}
	var sumO, sumS float64
	for sc := -26; sc <= 26; sc++ {
		if sc == 0 {
			continue
		}
		bin := c.Grid.Bin(sc)
		sumO += oracle[bin]
		sumS += std[bin]
	}
	reduction := dsp.DB(sumS / sumO)
	t.Logf("oracle in-band interference reduction: %.1f dB", reduction)
	if reduction < 6 {
		t.Fatalf("oracle reduction only %.1f dB", reduction)
	}
}

func TestEmptySphereFallback(t *testing.T) {
	// A microscopic radius forces the fallback path; decoding must still
	// work on a clean frame (fallback = nearest point to centroid).
	s := &interference.Scenario{Q: 1, SNRdB: 30, Channel: channel.Indoor2Tap()}
	f, _, m := runScenario(t, s, 700, "QPSK 1/2", 50)
	segs, err := ofdm.SegmentPlan(16, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cpr, err := NewReceiver(f, Config{Segments: segs, Radius: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !decodeWith(t, f, m, 50, cpr) {
		t.Fatal("fallback decoding failed")
	}
}

func TestPerSegmentModeFunctions(t *testing.T) {
	s := aciScenario(-10, 17, 57)
	f, _, m := runScenario(t, s, 800, "16-QAM 1/2", 50)
	segs := segments16(t, f.Grid())
	cpr, err := NewReceiver(f, Config{Segments: segs, PerSegment: true, Decision: DecisionSphereKDE})
	if err != nil {
		t.Fatal(err)
	}
	if cpr.ModelFor(0) != nil {
		t.Fatal("per-segment mode should not expose a pooled model")
	}
	// Should still decode at this mild interference.
	if !decodeWith(t, f, m, 50, cpr) {
		t.Fatal("per-segment CPRecycle failed")
	}
}

func TestBandwidthSelectorsBothWork(t *testing.T) {
	s := aciScenario(-10, 12, 57)
	f, _, m := runScenario(t, s, 900, "QPSK 1/2", 50)
	segs := segments16(t, f.Grid())
	for _, sel := range []kde.BandwidthSelector{kde.Silverman, kde.LSCV} {
		cpr, err := NewReceiver(f, Config{Segments: segs, Bandwidth: sel, Decision: DecisionSphereKDE})
		if err != nil {
			t.Fatal(err)
		}
		if !decodeWith(t, f, m, 50, cpr) {
			t.Fatal("decode failed with custom bandwidth selector")
		}
	}
}

func TestSingleSegmentDegradesToStandard(t *testing.T) {
	// "Gracefully degrades to a standard OFDM receiver with one FFT
	// segment": with only the CP-skipping window, CPRecycle's decisions
	// match the standard slicer on a clean frame.
	s := &interference.Scenario{Q: 1, SNRdB: 25, Channel: channel.Indoor2Tap()}
	f, _, m := runScenario(t, s, 1000, "16-QAM 1/2", 40)
	cpr, err := NewReceiver(f, Config{Segments: []int{16}})
	if err != nil {
		t.Fatal(err)
	}
	cons := modem.New(m.Scheme)
	for k := 0; k < 3; k++ {
		a, err := cpr.DecideSymbol(f, k, cons)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (rx.StandardDecider{}).DecideSymbol(f, k, cons)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("symbol %d sc %d: CPRecycle %d vs standard %d", k, i, a[i], b[i])
			}
		}
	}
}

func TestNaiveDeciderValidation(t *testing.T) {
	s := &interference.Scenario{Q: 1, SNRdB: 30}
	f, _, m := runScenario(t, s, 1100, "QPSK 1/2", 40)
	cons := modem.New(m.Scheme)
	if _, err := (NaiveDecider{}).DecideSymbol(f, 0, cons); err == nil {
		t.Fatal("naive decoder without segments should fail")
	}
	if _, err := (&OracleDecider{}).DecideSymbol(f, 0, cons); err == nil {
		t.Fatal("oracle without segments should fail")
	}
}

func BenchmarkCPRecycleDecideSymbol(b *testing.B) {
	s := aciScenario(-20, 17, 57)
	f, _, m := runScenario(b, s, 1, "16-QAM 1/2", 100)
	q := f.Grid().NFFT / 64
	segs, err := ofdm.SegmentPlan(f.Grid().CP, q, 16, 2*q)
	if err != nil {
		b.Fatal(err)
	}
	cpr, err := NewReceiver(f, Config{Segments: segs})
	if err != nil {
		b.Fatal(err)
	}
	cons := modem.New(m.Scheme)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpr.DecideSymbol(f, i%5, cons); err != nil {
			b.Fatal(err)
		}
	}
}
