package core

import (
	"math"

	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/rx"
)

// DecideSymbolSoft implements rx.SoftSymbolDecider for the CPRecycle
// receiver (model-weighted decision rule): the confidence of each
// subcarrier is the score margin between the best and second-best lattice
// candidate under the per-segment weighted metric — exactly the quantity
// the interference model says separates the hypotheses. Subcarriers whose
// model scales are saturated by interference in every segment produce tiny
// margins and are effectively erased for the Viterbi decoder.
func (r *Receiver) DecideSymbolSoft(f *rx.Frame, symIdx int, cons *modem.Constellation) ([]int, []float64, error) {
	obs, err := f.ObserveSegments(symIdx, r.cfg.Segments)
	if err != nil {
		return nil, nil, err
	}
	if r.cfg.Decision == DecisionSphereKDE {
		// The sphere-KDE realisation stays hard-decision (paper-literal);
		// give every decision unit confidence.
		idxs, err := r.decideSphereKDE(f, obs, cons)
		if err != nil {
			return nil, nil, err
		}
		conf := make([]float64, len(idxs))
		for i := range conf {
			conf[i] = 1
		}
		return idxs, conf, nil
	}
	return r.decideModelWeightedSoft(f, obs, cons)
}

// decideModelWeightedSoft is decideModelWeighted with margin extraction.
// Decisions are identical to the hard path (including the live-model
// update), so mixing hard and soft decoding of one frame stays coherent.
func (r *Receiver) decideModelWeightedSoft(f *rx.Frame, obs []rx.Observation, cons *modem.Constellation) ([]int, []float64, error) {
	P := len(obs)
	nSC := f.DataSubcarrierCount()
	radius := r.cfg.Radius
	if radius == 0 {
		radius = 1.5 * cons.MinDistance()
	}

	base := r.scale
	segMean := r.segMean
	if r.live != nil {
		base = r.live
		if len(r.liveMean) != P {
			r.liveMean = make([]float64, P)
		}
		segMean = r.liveMean
		for j := range base {
			var tot float64
			for _, v := range base[j] {
				tot += v
			}
			segMean[j] = tot / float64(len(base[j]))
		}
	}
	ratio := r.ratio[:P]
	for j := range obs {
		ratio[j] = 1
		if !r.cfg.NoPilotTracking && obs[j].PilotDev > 0 {
			ratio[j] = (obs[j].PilotDev + scaleFloor) / (segMean[j] + scaleFloor)
		}
	}

	out := r.out[:nSC]
	if len(r.conf) != nSC {
		r.conf = make([]float64, nSC)
	}
	conf := r.conf
	cands := r.cands
	w := r.w[:P]
	for i := 0; i < nSC; i++ {
		var centroid complex128
		var wsum float64
		for j := range obs {
			s := base[j][i] * ratio[j]
			if s < scaleFloor {
				s = scaleFloor
			}
			w[j] = 1 / s
			centroid += obs[j].Data[i] * complex(w[j], 0)
			wsum += w[j]
		}
		centroid /= complex(wsum, 0)
		cands = cons.WithinRadius(centroid, radius, cands[:0])
		switch len(cands) {
		case 0:
			out[i] = cons.Nearest(centroid)
			conf[i] = 0 // fallback decision: treat as erasure
		case 1:
			out[i] = cands[0]
			// Sole candidate in the sphere: maximally confident.
			conf[i] = 1
		default:
			best, second := math.Inf(1), math.Inf(1)
			bestLi := cands[0]
			for _, li := range cands {
				l := cons.Point(li)
				score := 0.0
				for j := range obs {
					score += dsp.Abs(obs[j].Data[i]-l) * w[j]
				}
				if score < best {
					second = best
					best, bestLi = score, li
				} else if score < second {
					second = score
				}
			}
			out[i] = bestLi
			// Normalise the margin by the total weight so confidences are
			// comparable across subcarriers with different scale profiles.
			conf[i] = (second - best) / wsum
		}
		if r.live != nil {
			p := cons.Point(out[i])
			for j := range obs {
				res := dsp.Abs(obs[j].Data[i] - p)
				r.live[j][i] = emaAlpha*r.live[j][i] + (1-emaAlpha)*(res+scaleFloor)
			}
		}
	}
	r.cands = cands
	return out, conf, nil
}
