package core
