// Package core implements the paper's contribution: the CPRecycle receiver
// (§4, Algorithm 1) together with the two reference decoders it is compared
// against, the Oracle (§3.2) and the Naive decoder (§3.3, Eq. 3).
//
// CPRecycle demodulates every ISI-free FFT segment of each OFDM symbol,
// corrects the deterministic per-segment phase ramp (handled by internal/rx
// via internal/ofdm), models the per-subcarrier interference from the
// amplitude/phase deviations of the preamble observations (§4.1, Eq. 4),
// and decides each subcarrier by maximum likelihood over the lattice points
// inside a fixed sphere (§4.2, Eq. 5).
//
// Two realisations of the ML detection are provided, selected by
// Config.Decision:
//
//   - DecisionModelWeighted (default): a robust per-segment weighted-L1
//     ML. Each segment's deviation is scaled by the interference level the
//     model predicts for that (subcarrier, segment), refreshed per symbol
//     from the four pilot subcarriers observed in the same FFT window. In
//     our discrete-time testbed this realisation reaches the Oracle's
//     symbol error rate (see the ablation benches).
//   - DecisionSphereKDE: the literal Eq. 4/5 pipeline — product of pooled
//     per-subcarrier Gaussian-kernel densities over all segments,
//     evaluated on the lattice points inside the sphere. Faithful to the
//     paper's formulas, but in our simulator its pooled (segment-
//     exchangeable) likelihood discards the persistent per-segment
//     interference structure and trails the weighted realisation; kept as
//     the reference and for the ablation study (DESIGN.md §5).
//
// All deciders plug into the shared 802.11 chain through rx.SymbolDecider,
// so packet-success comparisons isolate exactly the decision stage — the
// quantity the paper evaluates.
package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
	"repro/internal/kde"
	"repro/internal/modem"
	"repro/internal/ofdm"
	"repro/internal/rx"
)

// Decision selects the ML detection realisation.
type Decision int

const (
	// DecisionModelWeighted is the robust pilot-tracked weighted ML
	// (recommended; matches the Oracle in the simulator).
	DecisionModelWeighted Decision = iota
	// DecisionSphereKDE is the paper-literal Eq. 4/5 fixed-sphere KDE
	// product.
	DecisionSphereKDE
)

// String names the decision rule.
func (d Decision) String() string {
	switch d {
	case DecisionModelWeighted:
		return "model-weighted"
	case DecisionSphereKDE:
		return "sphere-kde"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Config parameterises a CPRecycle receiver.
type Config struct {
	// Segments lists the cyclic-prefix FFT window offsets to use, in
	// increasing order, as produced by ofdm.SegmentPlan. The number of
	// entries is the paper's P.
	Segments []int
	// Decision selects the ML realisation (see package comment).
	Decision Decision
	// Radius is the fixed-sphere radius R of Algorithm 1. Zero selects
	// 1.5× the constellation's minimum distance, which covers the handful
	// of neighbouring lattice points illustrated in Fig. 6c.
	Radius float64
	// Bandwidth selects the kernel bandwidths; nil uses kde.Silverman.
	// kde.LSCV is the paper's data-driven alternative.
	Bandwidth kde.BandwidthSelector
	// PerSegment trains one density per (subcarrier, segment) instead of
	// the paper's pooled per-subcarrier density (Eq. 4 pools all P·Np
	// deviations). Ablation for DecisionSphereKDE.
	PerSegment bool
	// FixedKernel disables the variable-bandwidth (Abramson) kernels the
	// paper calls for and uses plain fixed-bandwidth kernels. Ablation.
	FixedKernel bool
	// NoBackground disables the uniform background mixture added to each
	// density. Without it, deviations far from every training sample hit
	// the numerical log-density floor and randomise the ML comparison.
	// Ablation.
	NoBackground bool
	// NoPilotTracking freezes the interference model at its preamble
	// state instead of rescaling each segment's expected interference by
	// the per-symbol pilot deviations. Ablation for DecisionModelWeighted.
	NoPilotTracking bool
	// NoModelUpdate freezes the per-(segment, subcarrier) scales at their
	// preamble values instead of continuously refining them from decoded
	// symbols' residuals (§4.3: the model is "constantly updated").
	// Ablation for DecisionModelWeighted.
	NoModelUpdate bool
}

// Validate checks the configuration against a grid.
func (c Config) Validate(g ofdm.Grid) error {
	if len(c.Segments) == 0 {
		return fmt.Errorf("core: no FFT segments configured")
	}
	prev := -1
	for _, o := range c.Segments {
		if o < 0 || o > g.CP {
			return fmt.Errorf("core: segment offset %d outside [0,%d]", o, g.CP)
		}
		if o <= prev {
			return fmt.Errorf("core: segment offsets must be strictly increasing")
		}
		prev = o
	}
	if c.Radius < 0 {
		return fmt.Errorf("core: negative sphere radius")
	}
	return nil
}

// scaleFloor keeps reliability scales away from zero (a perfectly clean
// preamble segment still carries thermal noise at data time).
const scaleFloor = 0.02

// Receiver is a trained CPRecycle decoder for one frame. It implements
// rx.SymbolDecider. A Receiver is not safe for concurrent use: the
// decision methods reuse per-receiver scratch buffers, and the lattice
// index slice returned by DecideSymbol is overwritten by the next call.
type Receiver struct {
	cfg Config
	// tr is the shared preamble training (deviations, scales, lazily
	// fitted densities); possibly shared with other receiver arms
	// decoding the same frame.
	tr *Training
	// pooled[i] is the Eq. 4 density for data subcarrier i; in PerSegment
	// mode perSeg[j][i] holds segment j's density instead. In
	// model-weighted mode the densities are never consulted by the
	// decision rule, so they are fitted lazily on first use (ModelFor),
	// via the training's shared fit cache.
	pooled []*kde.Bivariate
	perSeg [][]*kde.Bivariate
	// scale[j][i] is the model's expected interference level (mean
	// preamble deviation amplitude) at segment j, subcarrier i. Shared
	// with the training; read-only.
	scale [][]float64
	// segMean[j] is scale[j][·] averaged over subcarriers — the reference
	// for the per-symbol pilot rescaling. Shared; read-only.
	segMean []float64
	// live[j][i] is the continuously updated scale (nil when
	// NoModelUpdate); it tracks the persistent per-packet interference
	// structure from decoded symbols' residuals. Receiver-owned.
	live [][]float64

	// Decision scratch, reused across symbols (no per-symbol allocation).
	out      []int
	cands    []int
	w        []float64
	ratio    []float64
	liveMean []float64
	pts      []complex128
	conf     []float64
}

// emaAlpha weights the running residual average: high enough to smooth
// per-symbol amplitude fluctuation, low enough to converge within a few
// symbols.
const emaAlpha = 0.6

// NewReceiver trains a CPRecycle receiver on the frame's preamble: for each
// data subcarrier it collects the amplitude/phase deviations of every
// (segment, training symbol) observation from the known LTF lattice point
// and fits the interference model (§4.1). Experiments decoding several
// receiver arms on the same frame should Train once and construct each arm
// with NewReceiverFrom instead.
func NewReceiver(f *rx.Frame, cfg Config) (*Receiver, error) {
	if err := cfg.Validate(f.Grid()); err != nil {
		return nil, err
	}
	t, err := Train(f, cfg.Segments)
	if err != nil {
		return nil, err
	}
	return NewReceiverFrom(f, t, cfg)
}

// NewReceiverFrom builds a receiver on a shared preamble Training, which
// must cover exactly cfg.Segments. The receiver reads the training's
// scales and densities but owns its continuously-updated model state, so
// any number of arms can share one Training.
func NewReceiverFrom(f *rx.Frame, t *Training, cfg Config) (*Receiver, error) {
	if err := cfg.Validate(f.Grid()); err != nil {
		return nil, err
	}
	if !t.matches(cfg.Segments) {
		return nil, fmt.Errorf("core: training covers segments %v, receiver wants %v", t.segments, cfg.Segments)
	}
	r := &Receiver{cfg: cfg, tr: t, scale: t.scale, segMean: t.segMean}
	nSC := t.nSC
	P := len(cfg.Segments)

	if !cfg.NoModelUpdate && cfg.Decision == DecisionModelWeighted {
		r.live = make([][]float64, P)
		for j := range r.scale {
			r.live[j] = append([]float64(nil), r.scale[j]...)
		}
	}
	r.out = make([]int, nSC)
	r.w = make([]float64, P)
	r.ratio = make([]float64, P)
	r.pts = make([]complex128, P)
	var err error
	if cfg.PerSegment {
		if r.perSeg, err = t.perSegment(cfg); err != nil {
			return nil, err
		}
		return r, nil
	}
	if cfg.Decision == DecisionModelWeighted {
		// The weighted-L1 rule never evaluates the Eq. 4 densities; they
		// are fitted lazily on first use (ModelFor) via the training's
		// shared cache — analyses see the same models either way.
		return r, nil
	}
	if r.pooled, err = t.pooled(cfg); err != nil {
		return nil, err
	}
	return r, nil
}

// ensurePooled fits (or fetches) the deferred pooled densities.
func (r *Receiver) ensurePooled() error {
	if r.pooled != nil {
		return nil
	}
	pooled, err := r.tr.pooled(r.cfg)
	if err != nil {
		return err
	}
	r.pooled = pooled
	return nil
}

// NumSegments returns P, the number of FFT segments in use.
func (r *Receiver) NumSegments() int { return len(r.cfg.Segments) }

// ModelFor returns the trained pooled density of data subcarrier i
// (by DataSubcarriers order); nil in per-segment mode. Exposed for the
// Fig. 6b density-accuracy analysis. In model-weighted mode the densities
// are fitted on the first call (the decision rule does not need them);
// should that deferred fit fail — the errors NewReceiver reports eagerly
// in the KDE decision modes — ModelFor also returns nil.
func (r *Receiver) ModelFor(i int) *kde.Bivariate {
	if r.cfg.PerSegment {
		return nil
	}
	if err := r.ensurePooled(); err != nil {
		return nil
	}
	if r.pooled == nil {
		return nil
	}
	return r.pooled[i]
}

// SegmentScale returns the model's expected interference amplitude at
// segment index j (into Config.Segments) and data subcarrier i.
func (r *Receiver) SegmentScale(j, i int) float64 { return r.scale[j][i] }

// ForkDecider implements rx.ParallelDecider: it returns a receiver
// sharing this one's immutable training (scales, lazily fitted densities)
// with fresh decision scratch, so workers of a parallel symbol decode
// never race. Forking is refused when the continuous model update (§4.3)
// is active — r.live carries decoded-symbol residuals from one symbol to
// the next, making decisions order-dependent — in which case callers must
// decode serially to stay bit-identical.
func (r *Receiver) ForkDecider() (rx.SymbolDecider, bool) {
	if r.live != nil {
		return nil, false
	}
	if r.cfg.Decision == DecisionSphereKDE && r.perSeg == nil {
		// Materialise the pooled densities once on the parent so forks
		// share the fitted models instead of racing to fit their own.
		if err := r.ensurePooled(); err != nil {
			return nil, false
		}
	}
	nSC := len(r.out)
	P := len(r.cfg.Segments)
	clone := &Receiver{
		cfg:     r.cfg,
		tr:      r.tr,
		pooled:  r.pooled,
		perSeg:  r.perSeg,
		scale:   r.scale,
		segMean: r.segMean,
		out:     make([]int, nSC),
		w:       make([]float64, P),
		ratio:   make([]float64, P),
		pts:     make([]complex128, P),
	}
	return clone, true
}

// DecideSymbol implements rx.SymbolDecider.
func (r *Receiver) DecideSymbol(f *rx.Frame, symIdx int, cons *modem.Constellation) ([]int, error) {
	obs, err := f.ObserveSegments(symIdx, r.cfg.Segments)
	if err != nil {
		return nil, err
	}
	if r.cfg.Decision == DecisionSphereKDE {
		return r.decideSphereKDE(f, obs, cons)
	}
	return r.decideModelWeighted(f, obs, cons)
}

// decideModelWeighted is the recommended realisation: per subcarrier,
// argmin over sphere candidates of Σ_j |X̂ʲ − l| / s_{j,i}, with the scale
// s_{j,i} = preamble scale × per-symbol pilot ratio. The weighted-L1 form
// is the ML under a per-segment Laplacian interference model and is robust
// to the heavy-tailed per-symbol leakage the kernel product mishandles.
func (r *Receiver) decideModelWeighted(f *rx.Frame, obs []rx.Observation, cons *modem.Constellation) ([]int, error) {
	P := len(obs)
	nSC := f.DataSubcarrierCount()
	radius := r.cfg.Radius
	if radius == 0 {
		radius = 1.5 * cons.MinDistance()
	}

	base := r.scale
	segMean := r.segMean
	if r.live != nil {
		base = r.live
		if len(r.liveMean) != P {
			r.liveMean = make([]float64, P)
		}
		segMean = r.liveMean
		for j := range base {
			var tot float64
			for _, v := range base[j] {
				tot += v
			}
			segMean[j] = tot / float64(len(base[j]))
		}
	}
	// Per-symbol pilot rescaling of each segment's expected interference.
	ratio := r.ratio[:P]
	for j := range obs {
		ratio[j] = 1
		if !r.cfg.NoPilotTracking && obs[j].PilotDev > 0 {
			ratio[j] = (obs[j].PilotDev + scaleFloor) / (segMean[j] + scaleFloor)
		}
	}

	out := r.out[:nSC]
	cands := r.cands
	w := r.w[:P]
	for i := 0; i < nSC; i++ {
		var centroid complex128
		var wsum float64
		for j := range obs {
			s := base[j][i] * ratio[j]
			if s < scaleFloor {
				s = scaleFloor
			}
			w[j] = 1 / s
			centroid += obs[j].Data[i] * complex(w[j], 0)
			wsum += w[j]
		}
		centroid /= complex(wsum, 0)
		cands = cons.WithinRadius(centroid, radius, cands[:0])
		if len(cands) == 0 {
			out[i] = cons.Nearest(centroid)
		} else {
			best, bestScore := cands[0], math.Inf(1)
			for _, li := range cands {
				l := cons.Point(li)
				score := 0.0
				for j := range obs {
					score += dsp.Abs(obs[j].Data[i]-l) * w[j]
				}
				if score < bestScore {
					bestScore, best = score, li
				}
			}
			out[i] = best
		}
		if r.live != nil {
			// Continuous model update (§4.3): fold this symbol's residuals
			// from the decided point into the running scales. Even when the
			// decision is wrong the residual is off by at most one lattice
			// spacing, so heavily interfered segments still stand out.
			p := cons.Point(out[i])
			for j := range obs {
				res := dsp.Abs(obs[j].Data[i] - p)
				r.live[j][i] = emaAlpha*r.live[j][i] + (1-emaAlpha)*(res+scaleFloor)
			}
		}
	}
	r.cands = cands
	return out, nil
}

// decideSphereKDE is the literal Algorithm 1 lines 9-13: centroid of the P
// observations, fixed sphere of radius R, argmax of the product of Eq. 4
// densities over segments.
func (r *Receiver) decideSphereKDE(f *rx.Frame, obs []rx.Observation, cons *modem.Constellation) ([]int, error) {
	if r.perSeg == nil {
		if err := r.ensurePooled(); err != nil {
			return nil, err
		}
	}
	radius := r.cfg.Radius
	if radius == 0 {
		radius = 1.5 * cons.MinDistance()
	}
	nSC := f.DataSubcarrierCount()
	out := r.out[:nSC]
	cands := r.cands
	pts := r.pts[:len(obs)]
	for i := 0; i < nSC; i++ {
		for j := range obs {
			pts[j] = obs[j].Data[i]
		}
		centroid := dsp.Centroid(pts)
		cands = cons.WithinRadius(centroid, radius, cands[:0])
		if len(cands) == 0 {
			// Graceful degradation: an empty sphere falls back to the
			// nearest lattice point to the centroid.
			out[i] = cons.Nearest(centroid)
			continue
		}
		best, bestScore := cands[0], math.Inf(-1)
		for _, li := range cands {
			l := cons.Point(li)
			score := 0.0
			for j := range pts {
				d := pts[j] - l
				amp := cmplx.Abs(d)
				ph := cmplx.Phase(d)
				if r.perSeg != nil {
					score += r.perSeg[j][i].LogDensity(amp, ph)
				} else {
					score += r.pooled[i].LogDensity(amp, ph)
				}
			}
			if score > bestScore {
				bestScore, best = score, li
			}
		}
		out[i] = best
	}
	r.cands = cands
	return out, nil
}
