package core

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/interference"
	"repro/internal/ofdm"
	"repro/internal/rx"
	"repro/internal/wifi"
)

// TestFullPipelineWithSync exercises the entire self-contained receive
// path the examples rely on: blind packet detection on the composite
// stream, CFO estimation and correction, SIGNAL decoding, CPRecycle
// training and DATA decoding — under a moderate adjacent-channel
// interferer and a victim carrier offset.
func TestFullPipelineWithSync(t *testing.T) {
	s := &interference.Scenario{
		Q:            4,
		VictimCenter: 64,
		SNRdB:        20,
		Channel:      channel.Indoor2Tap(),
		Interferers: []interference.Interferer{
			{CenterOffset: 57, SIRdB: 0, Channel: channel.Indoor2Tap()},
		},
	}
	r := dsp.NewRand(77)
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	psdu := wifi.BuildPSDU(r.Bytes(96))
	c, err := s.Run(r, psdu, m)
	if err != nil {
		t.Fatal(err)
	}
	// Impose a small victim CFO the receiver must estimate and remove.
	stream := append([]complex128{}, c.Samples...)
	const trueCFO = 0.08
	channel.ApplyCFO(stream, trueCFO, c.Grid.NFFT, 0)

	sync, err := rx.Synchronize(stream, c.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if d := sync.FrameStart - c.FrameStart; d < -2*4 || d > 2*4 {
		t.Fatalf("frame start %d, true %d", sync.FrameStart, c.FrameStart)
	}
	rx.CorrectCFO(stream, sync.CFO, c.Grid)

	f, err := rx.NewFrame(c.Grid, stream, sync.FrameStart)
	if err != nil {
		t.Fatal(err)
	}
	gotMCS, gotLen, err := rx.DecodeSignal(f)
	if err != nil {
		t.Fatal(err)
	}
	if gotMCS.Name != m.Name || gotLen != len(psdu) {
		t.Fatalf("SIGNAL decoded %s/%d, want %s/%d", gotMCS.Name, gotLen, m.Name, len(psdu))
	}

	q := c.Grid.NFFT / 64
	segs, err := ofdm.SegmentPlan(c.Grid.CP, q, 16, 2*q)
	if err != nil {
		t.Fatal(err)
	}
	cpr, err := NewReceiver(f, Config{Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.DecodeData(f, gotMCS, gotLen, cpr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FCSOK || !bytes.Equal(res.PSDU, psdu) {
		t.Fatal("full pipeline failed to deliver the PSDU")
	}
}

// TestISIFreeDetectionFeedsSegmentPlan verifies the §6 workflow: detect the
// ISI-free region from the received stream, build the segment plan from it,
// and decode with CPRecycle under a longer-delay channel.
func TestISIFreeDetectionFeedsSegmentPlan(t *testing.T) {
	ch := channel.NewMultipath([]complex128{1, 0, 0, 0.55 + 0.2i}) // 3-sample spread
	s := &interference.Scenario{
		Q:           1,
		SNRdB:       25,
		Channel:     ch,
		Interferers: nil,
	}
	r := dsp.NewRand(78)
	m, err := wifi.MCSByName("QPSK 1/2")
	if err != nil {
		t.Fatal(err)
	}
	psdu := wifi.BuildPSDU(r.Bytes(396))
	c, err := s.Run(r, psdu, m)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rx.NewFrame(c.Grid, c.Samples, c.FrameStart)
	if err != nil {
		t.Fatal(err)
	}
	var starts []int
	for k := 0; k < c.Victim.NumDataSymbols; k++ {
		starts = append(starts, f.DataSymbolStart(k))
	}
	isiFree := rx.ISIFreeDetect(c.Samples, starts, c.Grid, 0.9)
	if isiFree < 3 || isiFree > 5 {
		t.Fatalf("detected ISI-free offset %d, channel spread 3", isiFree)
	}
	segs, err := ofdm.SegmentPlan(c.Grid.CP, 1, 16, isiFree)
	if err != nil {
		t.Fatal(err)
	}
	cpr, err := NewReceiver(f, Config{Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.DecodeData(f, m, len(psdu), cpr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FCSOK {
		t.Fatal("decode with detected ISI-free plan failed")
	}
}

// TestCPRecycleOnWiderNumerology checks the receiver is not hard-wired to
// the 20 MHz numerology: an 802.11n-style 128-point grid (Table 1 row 2,
// embedded 2× oversampled) trains and decodes end to end.
func TestCPRecycleOnWiderNumerology(t *testing.T) {
	s := &interference.Scenario{
		Q:            2,
		VictimCenter: 32,
		SNRdB:        18,
		Channel:      channel.Indoor2Tap(),
		Interferers: []interference.Interferer{
			{CenterOffset: 57, SIRdB: -5, Channel: channel.Indoor2Tap()},
		},
	}
	f, _, m := runScenario(t, s, 1234, "QPSK 1/2", 80)
	if f.Grid().NFFT != 128 || f.Grid().CP != 32 {
		t.Fatalf("grid %+v", f.Grid())
	}
	segs, err := ofdm.SegmentPlan(f.Grid().CP, 2, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	cpr, err := NewReceiver(f, Config{Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	if !decodeWith(t, f, m, 80, cpr) {
		t.Fatal("128-point numerology decode failed")
	}
}
