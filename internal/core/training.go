package core

import (
	"fmt"
	"reflect"
	"slices"
	"sync"

	"repro/internal/kde"
	"repro/internal/modem"
	"repro/internal/ofdm"
	"repro/internal/rx"
)

// dev is one preamble deviation sample: the amplitude and phase of a
// received LTF observation's offset from its known lattice point.
type dev struct{ amp, ph float64 }

// Training is the preamble-derived interference model for one (frame,
// segment plan): the per-(segment, subcarrier, LTF symbol) deviations and
// the per-segment expected interference scales of §4.1. It holds
// everything receiver construction needs that does not depend on the
// receiver configuration, so the several CPRecycle arms an experiment
// decodes per packet — and any analysis probing the same frame — share
// one preamble pass instead of re-training per arm.
//
// The Eq. 4 kernel densities are fitted lazily, once per distinct fit
// configuration (bandwidth selector, kernel kind, background mixture),
// and cached on the Training; receivers with equal fit options share the
// fitted models. A Training is immutable after construction apart from
// that cache, which is mutex-guarded, so it is safe to share across
// receivers and goroutines.
type Training struct {
	segments []int
	nSC      int
	devs     [][][2]dev // [segment][subcarrier][LTF symbol]
	scale    [][]float64
	segMean  []float64

	mu         sync.Mutex
	pooledFits map[fitOptions][]*kde.Bivariate
	perSegFits map[fitOptions][][]*kde.Bivariate
}

// fitOptions identifies one KDE fit configuration in the shared cache.
// Only the package-level selectors (kde.Silverman, kde.LSCV) have usable
// function identity: closures such as kde.FixedBandwidth(h) share one
// code pointer for every h, so configurations using any other selector
// are never cached — each receiver fits its own models instead of
// silently inheriting another bandwidth's.
type fitOptions struct {
	bw           uintptr
	fixedKernel  bool
	noBackground bool
}

// fitOptionsOf resolves the configuration's selector and reports whether
// its fits may be shared through the training cache.
func fitOptionsOf(cfg Config) (key fitOptions, sel kde.BandwidthSelector, cacheable bool) {
	sel = cfg.Bandwidth
	if sel == nil {
		sel = kde.Silverman
	}
	p := reflect.ValueOf(sel).Pointer()
	cacheable = p == reflect.ValueOf(kde.Silverman).Pointer() || p == reflect.ValueOf(kde.LSCV).Pointer()
	return fitOptions{
		bw:           p,
		fixedKernel:  cfg.FixedKernel,
		noBackground: cfg.NoBackground,
	}, sel, cacheable
}

// Train runs CPRecycle's preamble training pass (§4.1) for the segment
// plan on the frame: one batched observation of every (segment, training
// symbol) window, deviations from the known LTF lattice points, and the
// per-(segment, subcarrier) expected interference scales.
func Train(f *rx.Frame, segments []int) (*Training, error) {
	if err := (Config{Segments: segments}).Validate(f.Grid()); err != nil {
		return nil, err
	}
	scs := ofdm.DataSubcarriers()
	nSC := len(scs)
	P := len(segments)

	// One batched pass over the preamble: every (segment, training symbol)
	// window via the sliding-DFT path instead of P independent full FFTs
	// per training symbol.
	pre, err := f.ObservePreambleAll(segments)
	if err != nil {
		return nil, fmt.Errorf("core: preamble training: %w", err)
	}
	t := &Training{
		segments: append([]int(nil), segments...),
		nSC:      nSC,
		devs:     make([][][2]dev, P),
		scale:    make([][]float64, P),
		segMean:  make([]float64, P),
	}
	for j := range segments {
		obs := pre[j]
		t.devs[j] = make([][2]dev, nSC)
		t.scale[j] = make([]float64, nSC)
		var tot float64
		for i, sc := range scs {
			want := ofdm.LTFValue(sc)
			var mean float64
			for s := 0; s < 2; s++ {
				d := modem.DeviationOf(obs[s][i], want)
				t.devs[j][i][s] = dev{d.Amp, d.Phase}
				mean += d.Amp
			}
			t.scale[j][i] = mean/2 + scaleFloor
			tot += t.scale[j][i]
		}
		t.segMean[j] = tot / float64(nSC)
	}
	return t, nil
}

// Segments returns the trained segment plan (not a copy; do not modify).
func (t *Training) Segments() []int { return t.segments }

// matches reports whether the training covers exactly the given plan.
func (t *Training) matches(segments []int) bool {
	return slices.Equal(segments, t.segments)
}

// fitFunc builds the single-density fit routine for a configuration:
// adaptive or fixed kernels, selector-chosen bandwidths, optional uniform
// background mixture.
func fitFunc(cfg Config) func(amps, phs []float64) (*kde.Bivariate, error) {
	_, sel, _ := fitOptionsOf(cfg)
	fitRaw := kde.NewBivariateAdaptive
	if cfg.FixedKernel {
		fitRaw = kde.NewBivariateAuto
	}
	return func(amps, phs []float64) (*kde.Bivariate, error) {
		m, err := fitRaw(amps, phs, sel)
		if err != nil {
			return nil, err
		}
		if !cfg.NoBackground {
			maxAmp := 1.0
			for _, a := range amps {
				if 2*a+2 > maxAmp {
					maxAmp = 2*a + 2
				}
			}
			m.SetBackground(0.05, maxAmp)
		}
		return m, nil
	}
}

// pooled returns the Eq. 4 pooled per-subcarrier densities for the fit
// configuration, fitting them on first use and sharing them with every
// receiver that asks with equal options.
func (t *Training) pooled(cfg Config) ([]*kde.Bivariate, error) {
	key, _, cacheable := fitOptionsOf(cfg)
	t.mu.Lock()
	defer t.mu.Unlock()
	if cacheable {
		if m, ok := t.pooledFits[key]; ok {
			return m, nil
		}
	}
	fit := fitFunc(cfg)
	P := len(t.segments)
	pooled := make([]*kde.Bivariate, t.nSC)
	for i := 0; i < t.nSC; i++ {
		amps := make([]float64, 0, 2*P)
		phs := make([]float64, 0, 2*P)
		for j := 0; j < P; j++ {
			for s := 0; s < 2; s++ {
				amps = append(amps, t.devs[j][i][s].amp)
				phs = append(phs, t.devs[j][i][s].ph)
			}
		}
		m, err := fit(amps, phs)
		if err != nil {
			return nil, err
		}
		pooled[i] = m
	}
	if cacheable {
		if t.pooledFits == nil {
			t.pooledFits = make(map[fitOptions][]*kde.Bivariate)
		}
		t.pooledFits[key] = pooled
	}
	return pooled, nil
}

// perSegment returns one density per (segment, subcarrier) — the
// PerSegment ablation's models — fitted lazily and shared like pooled.
func (t *Training) perSegment(cfg Config) ([][]*kde.Bivariate, error) {
	key, _, cacheable := fitOptionsOf(cfg)
	t.mu.Lock()
	defer t.mu.Unlock()
	if cacheable {
		if m, ok := t.perSegFits[key]; ok {
			return m, nil
		}
	}
	fit := fitFunc(cfg)
	perSeg := make([][]*kde.Bivariate, len(t.segments))
	for j := range t.segments {
		perSeg[j] = make([]*kde.Bivariate, t.nSC)
		for i := 0; i < t.nSC; i++ {
			amps := []float64{t.devs[j][i][0].amp, t.devs[j][i][1].amp}
			phs := []float64{t.devs[j][i][0].ph, t.devs[j][i][1].ph}
			m, err := fit(amps, phs)
			if err != nil {
				return nil, err
			}
			perSeg[j][i] = m
		}
	}
	if cacheable {
		if t.perSegFits == nil {
			t.perSegFits = make(map[fitOptions][][]*kde.Bivariate)
		}
		t.perSegFits[key] = perSeg
	}
	return perSeg, nil
}
